(* Integration tests: run every experiment at reduced scale and assert
   the paper-shape claims EXPERIMENTS.md records. *)

open Pdm_experiments

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

(* --- E1: Figure 1 --- *)

let fig1 = lazy (Figure1.run ~n:600 ())

let test_fig1_deterministic_rows_hit_bounds () =
  let r = Lazy.force fig1 in
  let basic = Figure1.find_row r "Section 4.1 (basic" in
  checkb "basic lookup worst = 1" true (basic.Figure1.lookup_worst = 1);
  checkb "basic update worst = 2" true (basic.Figure1.update_worst = 2);
  let frag = Figure1.find_row r "Section 4.1 (k" in
  checkb "fragmented lookup worst = 1" true (frag.Figure1.lookup_worst = 1);
  checkb "fragmented update worst = 2" true (frag.Figure1.update_worst = 2)

let test_fig1_cascade_averages () =
  let r = Lazy.force fig1 in
  let c = Figure1.find_row r "Section 4.3" in
  checkb "cascade lookup avg <= 1.5" true (c.Figure1.lookup_avg <= 1.5);
  checkb "cascade update avg <= 2.5" true (c.Figure1.update_avg <= 2.5);
  checkb "cascade deterministic" true c.Figure1.deterministic

let test_fig1_bandwidth_ordering () =
  let r = Lazy.force fig1 in
  let bw name = (Figure1.find_row r name).Figure1.bandwidth_bits in
  checkb "cascade ~BD beats cuckoo BD/2" true
    (bw "Section 4.3" > bw "cuckoo");
  checkb "cuckoo BD/2 beats hashing BD/log n" true
    (bw "cuckoo" > bw "hashing");
  checkb "two-level ~BD beats fragmented BD/log n" true
    (bw "[7]" > bw "Section 4.1 (k")

let test_fig1_randomized_rows_not_worst_case () =
  let r = Lazy.force fig1 in
  let tl = Figure1.find_row r "[7]" in
  (* The two-level structure's average is 1+e but its worst case
     exceeds 1 — the contrast with the deterministic rows. *)
  checkb "two-level worst above avg" true (tl.Figure1.lookup_worst >= 2);
  checkb "two-level avg near 1" true (tl.Figure1.lookup_avg < 1.5)

(* --- E2: Lemma 3 --- *)

let test_lemma3_bound_never_violated () =
  let r = Load_balance.run () in
  List.iter
    (fun p ->
      checkb
        (Printf.sprintf "n=%d v=%d d=%d k=%d: greedy %d <= bound %.1f"
           p.Load_balance.n p.Load_balance.v p.Load_balance.d
           p.Load_balance.k p.Load_balance.greedy_max p.Load_balance.bound)
        true
        (float_of_int p.Load_balance.greedy_max <= p.Load_balance.bound))
    r.Load_balance.points

let test_lemma3_greedy_close_to_average () =
  let r = Load_balance.run () in
  List.iter
    (fun p ->
      checkb "greedy within average + 4" true
        (float_of_int p.Load_balance.greedy_max <= p.Load_balance.average +. 4.0))
    r.Load_balance.points

let test_lemma3_beats_single_choice () =
  let r = Load_balance.run () in
  List.iter
    (fun p ->
      checkb "greedy <= single choice" true
        (p.Load_balance.greedy_max <= p.Load_balance.single_choice_max))
    r.Load_balance.points

(* --- E3: Lemmas 4-5 --- *)

let test_lemmas_4_5_hold () =
  let r = Unique_neighbors.run ~trials:5 () in
  List.iter
    (fun p ->
      checkb "lemma 4" true p.Unique_neighbors.lemma4_holds;
      checkb "lemma 5" true p.Unique_neighbors.lemma5_holds;
      checkb "eps below 1/4" true (p.Unique_neighbors.eps_worst < 0.25))
    r.Unique_neighbors.points

(* --- E4: Theorem 6 --- *)

let test_one_probe_experiment () =
  let r = One_probe_exp.run ~ns:[ 200; 400 ] () in
  List.iter
    (fun p ->
      checkb "all lookups single I/O" true p.One_probe_exp.lookups_all_single_io;
      check "no false positives" 0 p.One_probe_exp.false_positives;
      checkb "construction within 64x sort" true (p.One_probe_exp.ratio <= 64.0);
      checkb "peeling shallow" true (p.One_probe_exp.peel_rounds <= 10))
    r.One_probe_exp.points

(* --- E5: Theorem 7 --- *)

let test_dynamic_experiment () =
  let r = Dynamic_exp.run ~n:400 () in
  List.iter
    (fun p ->
      checkb "miss is exactly 1" true (p.Dynamic_exp.unsuccessful_avg = 1.0);
      checkb "hit within 1+e" true
        (p.Dynamic_exp.successful_avg <= p.Dynamic_exp.successful_bound);
      checkb "insert within 2+e" true
        (p.Dynamic_exp.insert_avg <= p.Dynamic_exp.insert_bound);
      checkb "worst logarithmic" true
        (p.Dynamic_exp.insert_worst <= p.Dynamic_exp.levels + 1))
    r.Dynamic_exp.points

(* --- E6: basic dictionary across block sizes --- *)

let test_basic_experiment () =
  let r = Basic_exp.run ~n:600 () in
  List.iter
    (fun p ->
      checkb "lookup worst = blocks/bucket" true
        (p.Basic_exp.lookup_worst = p.Basic_exp.bucket_blocks);
      checkb "insert worst = blocks/bucket + 1" true
        (p.Basic_exp.insert_worst <= p.Basic_exp.bucket_blocks + 1);
      checkb "load within bucket" true
        (p.Basic_exp.max_load <= p.Basic_exp.slots_per_bucket);
      checkb "stable placement" true p.Basic_exp.stable_placement)
    r.Basic_exp.points

(* --- E7: B-tree comparison --- *)

let test_btree_comparison () =
  let r = Btree_compare.run ~ns:[ 2000; 8000 ] () in
  List.iter
    (fun p ->
      checkb "dict random = 1" true (p.Btree_compare.dict_random_avg = 1.0);
      checkb "btree random = height" true
        (p.Btree_compare.btree_random_avg = float_of_int p.Btree_compare.btree_height);
      checkb "btree scans cheap" true
        (p.Btree_compare.btree_scan_per_block < p.Btree_compare.dict_scan_per_block))
    r.Btree_compare.points;
  (* The gap grows with n: at the largest n the dictionary wins by >= 2x
     even against a root-cached B-tree. *)
  let last = List.nth r.Btree_compare.points 1 in
  checkb "speedup >= 2 at large n" true (last.Btree_compare.speedup_random >= 2.0)

(* --- E8: Section 5 --- *)

let test_explicit_experiment () =
  let r = Explicit_exp.run ~trials:4 () in
  List.iter
    (fun p ->
      checkb "at least one level" true (p.Explicit_exp.levels >= 1);
      checkb "right side shrank" true (p.Explicit_exp.right_size < p.Explicit_exp.u);
      checkb "striping blows up by d" true
        (p.Explicit_exp.striped_v = p.Explicit_exp.degree * p.Explicit_exp.right_size);
      checkb "memory modelled" true (p.Explicit_exp.memory_words > 0))
    r.Explicit_exp.points

(* --- E9: global rebuilding --- *)

let test_rebuild_experiment () =
  let r = Rebuild_exp.run ~operations:1500 () in
  checkb "grew" true (r.Rebuild_exp.rebuilds >= 3);
  checkb "lookups stay 1" true
    (r.Rebuild_exp.lookup_avg = 1.0 && r.Rebuild_exp.lookup_worst = 1);
  checkb "insert worst O(1)" true (r.Rebuild_exp.insert_worst <= 16);
  checkb "overhead bounded" true (r.Rebuild_exp.overhead_factor <= 6.0);
  checkb "purge shrinks capacity" true
    (r.Rebuild_exp.capacity_after_purge < r.Rebuild_exp.peak_capacity / 2)

(* --- E10: bandwidth --- *)

let test_bandwidth_experiment () =
  let r = Bandwidth_exp.run ~n:300 () in
  check "five structures reported" 5 (List.length r.Bandwidth_exp.points);
  List.iter
    (fun p ->
      checkb
        (Printf.sprintf "%s within bound" p.Bandwidth_exp.name)
        true p.Bandwidth_exp.lookup_ok)
    r.Bandwidth_exp.points;
  let bw name =
    (List.find (fun p -> p.Bandwidth_exp.name = name) r.Bandwidth_exp.points)
      .Bandwidth_exp.bandwidth_bits
  in
  checkb "cascade O(BD) dominates" true
    (bw "Section 4.3 (cascade)" >= bw "cuckoo hashing")

(* --- table rendering --- *)

let test_table_rendering () =
  let t =
    Table.make ~title:"t" ~header:[ "a"; "bb" ] ~notes:[ "n" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let buf = Buffer.create 64 in
  let out = Format.formatter_of_buffer buf in
  Table.print ~out t;
  Format.pp_print_flush out ();
  let s = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec scan i =
      if i + nl > sl then false
      else if String.sub s i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  checkb "title" true (contains "== t ==");
  checkb "contains header" true (contains "bb");
  checkb "contains note" true (contains "note: n");
  checkb "pads columns" true (contains "333")

let test_table_width_mismatch () =
  checkb "row width checked" true
    (try
       ignore (Table.make ~title:"t" ~header:[ "a" ] [ [ "1"; "2" ] ]);
       false
     with Invalid_argument _ -> true)

let suite =
  let tc = Alcotest.test_case in
  [ ("experiments.figure1",
     [ tc "deterministic rows hit bounds" `Quick
         test_fig1_deterministic_rows_hit_bounds;
       tc "cascade averages" `Quick test_fig1_cascade_averages;
       tc "bandwidth ordering" `Quick test_fig1_bandwidth_ordering;
       tc "randomized rows drift" `Quick test_fig1_randomized_rows_not_worst_case ]);
    ("experiments.lemma3",
     [ tc "bound never violated" `Quick test_lemma3_bound_never_violated;
       tc "greedy close to average" `Quick test_lemma3_greedy_close_to_average;
       tc "beats single choice" `Quick test_lemma3_beats_single_choice ]);
    ("experiments.lemmas45", [ tc "hold on sweep" `Quick test_lemmas_4_5_hold ]);
    ("experiments.theorem6", [ tc "one-probe" `Quick test_one_probe_experiment ]);
    ("experiments.theorem7", [ tc "cascade sweep" `Quick test_dynamic_experiment ]);
    ("experiments.basic41", [ tc "block size sweep" `Quick test_basic_experiment ]);
    ("experiments.btree", [ tc "comparison" `Quick test_btree_comparison ]);
    ("experiments.section5", [ tc "telescope table" `Quick test_explicit_experiment ]);
    ("experiments.rebuild", [ tc "growth" `Quick test_rebuild_experiment ]);
    ("experiments.bandwidth", [ tc "sweep" `Quick test_bandwidth_experiment ]);
    ("experiments.table",
     [ tc "rendering" `Quick test_table_rendering;
       tc "width mismatch" `Quick test_table_width_mismatch ]) ]

(* --- E15: caching (appended) --- *)

let test_cache_experiment_shape () =
  let r = Cache_exp.run ~n:4000 ~lookups:2000 ~cache_sizes:[ 8; 2048 ] () in
  (match r.Cache_exp.points with
   | [ small; large ] ->
     (* With a tiny cache the B-tree pays its height; the dictionary
        is already at ~1. *)
     checkb "tiny cache: btree pays height" true
       (small.Cache_exp.btree_io_per_lookup
        >= float_of_int r.Cache_exp.btree_height -. 0.5);
     checkb "tiny cache: dict at ~1" true
       (small.Cache_exp.dict_io_per_lookup <= 1.01);
     checkb "big cache helps the btree" true
       (large.Cache_exp.btree_io_per_lookup
        < small.Cache_exp.btree_io_per_lookup /. 2.0)
   | _ -> Alcotest.fail "expected two points")

let suite =
  suite
  @ [ ("experiments.caching",
       [ Alcotest.test_case "E15 shape" `Quick test_cache_experiment_shape ]) ]

(* --- CSV rendering (appended) --- *)

let test_table_csv () =
  let t =
    Table.make ~title:"x" ~header:[ "a"; "b" ]
      [ [ "1"; "with, comma" ]; [ "q\"q"; "2" ] ]
  in
  Alcotest.(check string) "csv"
    "a,b\n1,\"with, comma\"\n\"q\"\"q\",2\n" (Table.to_csv t)

let suite =
  suite
  @ [ ("experiments.csv",
       [ Alcotest.test_case "csv escaping" `Quick test_table_csv ]) ]
