(* Tests for the Section 3 deterministic load balancing scheme. *)

open Pdm_loadbalance
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Expansion = Pdm_expander.Expansion
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_insert_returns_k_buckets () =
  let g = Seeded.striped ~seed:1 ~u:1000 ~v:40 ~d:8 in
  let lb = Greedy.create ~graph:g ~k:3 () in
  let chosen = Greedy.insert lb 42 in
  check "k placements" 3 (Array.length chosen);
  let nbrs = Array.to_list (Bipartite.neighbors g 42) in
  Array.iter (fun b -> checkb "chosen among neighbors" true (List.mem b nbrs)) chosen;
  check "items counted" 3 (Greedy.items lb)

let test_greedy_picks_least_loaded () =
  (* Deterministic graph: x's neighbors are buckets 0 and 1. *)
  let g = Bipartite.create ~striped:true ~u:10 ~v:2 ~d:2 (fun _ i -> i) in
  let lb = Greedy.create ~graph:g ~k:1 () in
  ignore (Greedy.insert lb 0);
  (* bucket 0 (tie) *)
  check "bucket 0 first" 1 (Greedy.load lb 0);
  ignore (Greedy.insert lb 1);
  (* now bucket 1 is emptier *)
  check "bucket 1 next" 1 (Greedy.load lb 1);
  ignore (Greedy.insert lb 2);
  check "back to bucket 0" 2 (Greedy.load lb 0)

let test_k_items_spread () =
  (* One vertex, k = 4 items, 4 neighbor buckets: greedy spreads them
     one per bucket. *)
  let g = Bipartite.create ~striped:true ~u:1 ~v:4 ~d:4 (fun _ i -> i) in
  let lb = Greedy.create ~graph:g ~k:4 () in
  ignore (Greedy.insert lb 0);
  Alcotest.(check (array int)) "one per bucket" [| 1; 1; 1; 1 |] (Greedy.loads lb)

let test_multiple_items_one_bucket_allowed () =
  (* d = 2 buckets, k = 4 items: buckets get 2 each. *)
  let g = Bipartite.create ~striped:true ~u:1 ~v:2 ~d:2 (fun _ i -> i) in
  let lb = Greedy.create ~graph:g ~k:4 () in
  ignore (Greedy.insert lb 0);
  Alcotest.(check (array int)) "two per bucket" [| 2; 2 |] (Greedy.loads lb)

let test_total_preserved () =
  let g = Seeded.striped ~seed:2 ~u:10_000 ~v:64 ~d:8 in
  let lb = Greedy.create ~graph:g ~k:2 () in
  let rng = Prng.create 5 in
  let keys = Sampling.distinct rng ~universe:10_000 ~count:500 in
  Greedy.insert_all lb keys;
  check "sum of loads" 1000 (Array.fold_left ( + ) 0 (Greedy.loads lb));
  check "items" 1000 (Greedy.items lb)

let test_lemma3_bound_holds_k1 () =
  (* Heavily loaded case n >> v: measured max load must respect the
     Lemma 3 bound computed from the measured expansion parameters.
     We use the formula with eps = delta = 1/6, which the seeded graph
     comfortably satisfies at these sizes (checked in
     test_expander.ml). *)
  let n = 4000 and v = 256 and d = 8 in
  let g = Seeded.striped ~seed:3 ~u:1_000_000 ~v ~d in
  let lb = Greedy.create ~graph:g ~k:1 () in
  let rng = Prng.create 7 in
  let keys = Sampling.distinct rng ~universe:1_000_000 ~count:n in
  Greedy.insert_all lb keys;
  let bound =
    Expansion.lemma3_bound ~n ~v ~d ~k:1 ~eps:(1. /. 6.) ~delta:(1. /. 6.)
  in
  let got = Greedy.max_load lb in
  checkb
    (Printf.sprintf "max load %d <= bound %.1f" got bound)
    true
    (float_of_int got <= bound)

let test_lemma3_bound_holds_k_many () =
  let n = 1000 and v = 504 and d = 12 and k = 4 in
  let g = Seeded.striped ~seed:4 ~u:1_000_000 ~v ~d in
  let lb = Greedy.create ~graph:g ~k () in
  let rng = Prng.create 9 in
  let keys = Sampling.distinct rng ~universe:1_000_000 ~count:n in
  Greedy.insert_all lb keys;
  let bound =
    Expansion.lemma3_bound ~n ~v ~d ~k ~eps:(1. /. 6.) ~delta:(1. /. 6.)
  in
  checkb "bound holds for k=4" true
    (float_of_int (Greedy.max_load lb) <= bound)

let test_greedy_beats_single_choice () =
  (* With n = v the greedy d-choice max load should be far below the
     single-choice max load. *)
  let n = 2048 and v = 2048 and d = 8 in
  let g = Seeded.striped ~seed:5 ~u:1_000_000 ~v ~d in
  let lb = Greedy.create ~graph:g ~k:1 () in
  let rng = Prng.create 11 in
  let keys = Sampling.distinct rng ~universe:1_000_000 ~count:n in
  Greedy.insert_all lb keys;
  let single = Baseline.max_load (Baseline.single_choice ~seed:1 ~v ~items:keys) in
  checkb
    (Printf.sprintf "greedy %d < single %d" (Greedy.max_load lb) single)
    true
    (Greedy.max_load lb < single)

let test_deterministic_replay () =
  let build () =
    let g = Seeded.striped ~seed:6 ~u:100_000 ~v:128 ~d:8 in
    let lb = Greedy.create ~graph:g ~k:1 () in
    let rng = Prng.create 13 in
    Greedy.insert_all lb (Sampling.distinct rng ~universe:100_000 ~count:1000);
    Greedy.loads lb
  in
  Alcotest.(check (array int)) "identical runs" (build ()) (build ())

let test_buckets_with_load_above () =
  let g = Bipartite.create ~striped:true ~u:4 ~v:2 ~d:2 (fun _ i -> i) in
  let lb = Greedy.create ~graph:g ~k:1 () in
  Greedy.insert_all lb [| 0; 1; 2; 3 |];
  (* Loads are (2, 2). *)
  check "B(1)" 2 (Greedy.buckets_with_load_above lb 1);
  check "B(2)" 0 (Greedy.buckets_with_load_above lb 2)

let test_baseline_counts () =
  let items = Array.init 100 (fun i -> i) in
  let loads = Baseline.single_choice ~seed:3 ~v:10 ~items in
  check "all placed" 100 (Array.fold_left ( + ) 0 loads);
  let rng = Prng.create 15 in
  let loads2 = Baseline.random_d_choice ~rng ~v:10 ~d:2 ~items in
  check "all placed (2-choice)" 100 (Array.fold_left ( + ) 0 loads2)

let test_random_two_choice_beats_one () =
  let items = Array.init 5000 (fun i -> i) in
  let v = 5000 in
  let one = Baseline.max_load (Baseline.single_choice ~seed:8 ~v ~items) in
  let rng = Prng.create 17 in
  let two = Baseline.max_load (Baseline.random_d_choice ~rng ~v ~d:2 ~items) in
  checkb (Printf.sprintf "two %d <= one %d" two one) true (two <= one)

let suite =
  let tc = Alcotest.test_case in
  [ ("loadbalance.greedy",
     [ tc "insert returns k buckets" `Quick test_insert_returns_k_buckets;
       tc "picks least loaded" `Quick test_greedy_picks_least_loaded;
       tc "k items spread" `Quick test_k_items_spread;
       tc "bucket sharing allowed" `Quick test_multiple_items_one_bucket_allowed;
       tc "totals preserved" `Quick test_total_preserved;
       tc "lemma 3 bound (k=1)" `Quick test_lemma3_bound_holds_k1;
       tc "lemma 3 bound (k=4)" `Quick test_lemma3_bound_holds_k_many;
       tc "beats single choice" `Quick test_greedy_beats_single_choice;
       tc "deterministic replay" `Quick test_deterministic_replay;
       tc "B(i) helper" `Quick test_buckets_with_load_above ]);
    ("loadbalance.baseline",
     [ tc "conservation" `Quick test_baseline_counts;
       tc "two choices beat one" `Quick test_random_two_choice_beats_one ]) ]
