(* Tests for the external multiway merge sort substrate. *)

open Pdm_sim
module Extsort = Pdm_extsort.Extsort
module Prng = Pdm_util.Prng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mk_sorter ?(disks = 4) ?(block_size = 4) ?(blocks = 256) ?(memory_items = 64)
    () =
  let pdm = Pdm.create ~disks ~block_size ~blocks_per_disk:blocks () in
  let view = Striping.create pdm in
  (pdm, Extsort.create view ~compare ~memory_items)

let run_sort sorter items =
  let n = Array.length items in
  let region = Extsort.region_superblocks sorter ~items:n in
  Extsort.write_region sorter ~region:0 items;
  let where = Extsort.sort sorter ~src_region:0 ~scratch_region:region ~items:n in
  let out = if where = `Src then 0 else region in
  Extsort.read_region sorter ~region:out ~count:n

let test_region_roundtrip () =
  let _, sorter = mk_sorter () in
  let items = Array.init 37 (fun i -> i * 3) in
  Extsort.write_region sorter ~region:2 items;
  Alcotest.(check (array int)) "roundtrip" items
    (Extsort.read_region sorter ~region:2 ~count:37)

let test_sort_small () =
  let _, sorter = mk_sorter () in
  let items = [| 5; 3; 9; 1; 4 |] in
  Alcotest.(check (array int)) "sorted" [| 1; 3; 4; 5; 9 |] (run_sort sorter items)

let test_sort_single_run () =
  (* Fits in memory: one run, no merge passes. *)
  let _, sorter = mk_sorter ~memory_items:64 () in
  let g = Prng.create 1 in
  let items = Array.init 60 (fun _ -> Prng.int g 1000) in
  let expected = Array.copy items in
  Array.sort compare expected;
  Alcotest.(check (array int)) "sorted" expected (run_sort sorter items)

let test_sort_multi_pass () =
  (* Memory = 2 superblocks (32 items), fan-in 2 at superblock 16:
     1000 items need several merge passes. *)
  let _, sorter = mk_sorter ~memory_items:32 ~blocks:512 () in
  let g = Prng.create 2 in
  let items = Array.init 1000 (fun _ -> Prng.int g 100_000) in
  let expected = Array.copy items in
  Array.sort compare expected;
  Alcotest.(check (array int)) "sorted" expected (run_sort sorter items)

let test_sort_with_duplicates () =
  let _, sorter = mk_sorter ~memory_items:32 ~blocks:512 () in
  let g = Prng.create 3 in
  let items = Array.init 500 (fun _ -> Prng.int g 10) in
  let expected = Array.copy items in
  Array.sort compare expected;
  Alcotest.(check (array int)) "sorted" expected (run_sort sorter items)

let test_sort_already_sorted () =
  let _, sorter = mk_sorter ~memory_items:32 ~blocks:512 () in
  let items = Array.init 300 (fun i -> i) in
  Alcotest.(check (array int)) "unchanged" items (run_sort sorter items)

let test_sort_reverse () =
  let _, sorter = mk_sorter ~memory_items:32 ~blocks:512 () in
  let items = Array.init 300 (fun i -> 300 - i) in
  let expected = Array.init 300 (fun i -> i + 1) in
  Alcotest.(check (array int)) "reversed" expected (run_sort sorter items)

let test_sort_empty_and_singleton () =
  let _, sorter = mk_sorter () in
  Alcotest.(check (array int)) "empty" [||] (run_sort sorter [||]);
  let _, sorter = mk_sorter () in
  Alcotest.(check (array int)) "singleton" [| 7 |] (run_sort sorter [| 7 |])

let test_io_cost_within_theory_factor () =
  (* Measured I/O should be within a small constant of the textbook
     formula (run formation reads/writes + merge passes). *)
  let pdm, sorter = mk_sorter ~memory_items:32 ~blocks:1024 () in
  let g = Prng.create 4 in
  let n = 2000 in
  let items = Array.init n (fun _ -> Prng.int g 1_000_000) in
  let region = Extsort.region_superblocks sorter ~items:n in
  Extsort.write_region sorter ~region:0 items;
  Stats.reset (Pdm.stats pdm);
  ignore (Extsort.sort sorter ~src_region:0 ~scratch_region:region ~items:n);
  let measured = Stats.parallel_ios (Stats.snapshot (Pdm.stats pdm)) in
  let theory =
    Extsort.theoretical_parallel_ios ~superblock:16 ~memory_items:32 ~items:n
  in
  checkb
    (Printf.sprintf "measured %d within 3x of theory %d" measured theory)
    true
    (measured <= 3 * theory && measured >= theory / 3)

let test_custom_comparator () =
  let pdm = Pdm.create ~disks:2 ~block_size:4 ~blocks_per_disk:128 () in
  let view = Striping.create pdm in
  let sorter =
    Extsort.create view ~compare:(fun (a, _) (b, _) -> compare a b)
      ~memory_items:16
  in
  let items = [| (3, "c"); (1, "a"); (2, "b") |] in
  Extsort.write_region sorter ~region:0 items;
  let where = Extsort.sort sorter ~src_region:0 ~scratch_region:64 ~items:3 in
  let out = if where = `Src then 0 else 64 in
  let sorted = Extsort.read_region sorter ~region:out ~count:3 in
  Alcotest.(check (list string)) "stable payloads" [ "a"; "b"; "c" ]
    (Array.to_list (Array.map snd sorted))

let prop_sort_random =
  QCheck.Test.make ~name:"extsort sorts arbitrary arrays" ~count:30
    QCheck.(array_of_size Gen.(int_range 0 400) (int_bound 10_000))
    (fun items ->
      let _, sorter = mk_sorter ~memory_items:32 ~blocks:512 () in
      let expected = Array.copy items in
      Array.sort compare expected;
      run_sort sorter items = expected)

let test_theory_formula () =
  check "tiny input is free" 0
    (Extsort.theoretical_parallel_ios ~superblock:16 ~memory_items:32 ~items:1);
  (* One memory-load: read + write each block once. *)
  check "single run" (2 * 2)
    (Extsort.theoretical_parallel_ios ~superblock:16 ~memory_items:32 ~items:32)

let suite =
  let tc = Alcotest.test_case in
  [ ("extsort",
     [ tc "region roundtrip" `Quick test_region_roundtrip;
       tc "sort small" `Quick test_sort_small;
       tc "single run" `Quick test_sort_single_run;
       tc "multi pass" `Quick test_sort_multi_pass;
       tc "duplicates" `Quick test_sort_with_duplicates;
       tc "already sorted" `Quick test_sort_already_sorted;
       tc "reverse input" `Quick test_sort_reverse;
       tc "empty and singleton" `Quick test_sort_empty_and_singleton;
       tc "I/O near theory" `Quick test_io_cost_within_theory_factor;
       tc "custom comparator" `Quick test_custom_comparator;
       tc "theory formula" `Quick test_theory_formula;
       QCheck_alcotest.to_alcotest prop_sort_random ]) ]
