(* Tests for expander graphs: interfaces, seeded constructions, measured
   expansion (Lemmas 4-5 checks), telescope product and Section 5. *)

open Pdm_expander
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Bipartite --- *)

let test_create_validates () =
  checkb "striped needs d | v" true
    (try
       ignore (Bipartite.create ~striped:true ~u:10 ~v:10 ~d:3 (fun _ i -> i));
       false
     with Invalid_argument _ -> true)

let test_neighbor_range_checked () =
  let g = Bipartite.create ~u:4 ~v:4 ~d:2 (fun _ _ -> 7) in
  checkb "f out of range detected" true
    (try
       ignore (Bipartite.neighbor g 0 0);
       false
     with Invalid_argument _ -> true)

let test_stripe_discipline_checked () =
  let g = Bipartite.create ~striped:true ~u:4 ~v:8 ~d:2 (fun _ _ -> 0) in
  (* neighbor 1 must land in stripe 1 = [4,8) but f returns 0. *)
  checkb "stripe violation detected" true
    (try
       ignore (Bipartite.neighbor g 0 1);
       false
     with Invalid_argument _ -> true)

let test_neighbors_and_stripes () =
  let g =
    Bipartite.create ~striped:true ~u:10 ~v:6 ~d:3 (fun x i -> (2 * i) + (x mod 2))
  in
  let ns = Bipartite.neighbors g 3 in
  Alcotest.(check (array int)) "neighbors" [| 1; 3; 5 |] ns;
  Alcotest.(check (pair int int)) "stripe decompose" (1, 1) (Bipartite.stripe_of g 3);
  Alcotest.(check (pair int int)) "neighbor_in_stripe" (2, 1)
    (Bipartite.neighbor_in_stripe g 3 2);
  check "stripe width" 2 (Bipartite.stripe_width g)

(* --- Seeded --- *)

let test_seeded_striped_stays_in_stripe () =
  let g = Seeded.striped ~seed:1 ~u:1000 ~v:60 ~d:6 in
  for x = 0 to 200 do
    for i = 0 to 5 do
      let y = Bipartite.neighbor g x i in
      check "stripe" i (y / 10)
    done
  done

let test_seeded_deterministic () =
  let g1 = Seeded.striped ~seed:7 ~u:100 ~v:20 ~d:4 in
  let g2 = Seeded.striped ~seed:7 ~u:100 ~v:20 ~d:4 in
  for x = 0 to 99 do
    Alcotest.(check (array int)) "same graph" (Bipartite.neighbors g1 x)
      (Bipartite.neighbors g2 x)
  done

let test_seeded_distinct_seeds () =
  let g1 = Seeded.striped ~seed:1 ~u:100 ~v:40 ~d:4 in
  let g2 = Seeded.striped ~seed:2 ~u:100 ~v:40 ~d:4 in
  let differs = ref false in
  for x = 0 to 99 do
    if Bipartite.neighbors g1 x <> Bipartite.neighbors g2 x then differs := true
  done;
  checkb "seeds differ" true !differs

(* --- Expansion --- *)

let test_gamma_exact () =
  (* Tiny explicit graph: x -> {x mod 2, 2 + x mod 3}. *)
  let g =
    Bipartite.create ~u:6 ~v:5 ~d:2 (fun x i ->
        if i = 0 then x mod 2 else 2 + (x mod 3))
  in
  check "gamma {0}" 2 (Expansion.gamma_size g [| 0 |]);
  (* S = {0,1}: neighbors {0,2} U {1,3} = 4. *)
  check "gamma {0,1}" 4 (Expansion.gamma_size g [| 0; 1 |]);
  (* S = {0,3}: 0 -> {0,2}, 3 -> {1,2}; gamma = {0,1,2}. *)
  check "gamma {0,3}" 3 (Expansion.gamma_size g [| 0; 3 |])

let test_unique_neighbors_exact () =
  let g =
    Bipartite.create ~u:6 ~v:5 ~d:2 (fun x i ->
        if i = 0 then x mod 2 else 2 + (x mod 3))
  in
  (* S = {0, 2}: edges 0->{0,2}, 2->{0,4}. Vertex 0 shared; 2 and 4
     unique. *)
  check "phi" 2 (Expansion.unique_neighbor_count g [| 0; 2 |]);
  let phi = Expansion.unique_neighbors g [| 0; 2 |] in
  Alcotest.(check (option int)) "owner of 2" (Some 0) (Hashtbl.find_opt phi 2);
  Alcotest.(check (option int)) "owner of 4" (Some 2) (Hashtbl.find_opt phi 4)

let test_multi_edge_not_unique () =
  (* Both edges of x go to vertex x: a multi-edge; Phi must be empty. *)
  let g = Bipartite.create ~u:3 ~v:3 ~d:2 (fun x _ -> x) in
  check "multi-edge kills uniqueness" 0
    (Expansion.unique_neighbor_count g [| 1 |])

let test_epsilon_of_set () =
  let g = Bipartite.create ~u:4 ~v:8 ~d:2 (fun x i -> (2 * x) + i) in
  (* Perfect expansion: gamma = d|S|. *)
  Alcotest.(check (float 1e-9)) "eps 0" 0.0 (Expansion.epsilon_of_set g [| 0; 1 |]);
  let g2 = Bipartite.create ~u:4 ~v:8 ~d:2 (fun _ i -> i) in
  (* Everyone shares the same two neighbors: gamma = 2, d|S| = 4. *)
  Alcotest.(check (float 1e-9)) "eps 1/2" 0.5 (Expansion.epsilon_of_set g2 [| 0; 1 |])

let test_seeded_expander_is_good () =
  (* A seeded striped graph with v = 4nd should have small measured
     eps for sets of size n. *)
  let n = 50 and d = 8 in
  let g = Seeded.striped ~seed:3 ~u:100_000 ~v:(4 * n * d) ~d in
  let rng = Prng.create 99 in
  let eps = Expansion.sampled_epsilon g ~rng ~set_size:n ~trials:30 in
  checkb (Printf.sprintf "eps=%.3f <= 1/6" eps) true (eps <= 1.0 /. 6.0)

let test_lemma4_on_seeded () =
  (* |Phi(S)| >= (1 - 2 eps) d |S| with eps measured on the same set. *)
  let n = 60 and d = 8 in
  let g = Seeded.striped ~seed:5 ~u:1_000_000 ~v:(4 * n * d) ~d in
  let rng = Prng.create 123 in
  for _ = 1 to 10 do
    let s = Sampling.distinct rng ~universe:1_000_000 ~count:n in
    let eps = Expansion.epsilon_of_set g s in
    let phi = Expansion.unique_neighbor_count g s in
    let bound = (1.0 -. (2.0 *. eps)) *. float_of_int (d * n) in
    checkb "lemma 4" true (float_of_int phi >= bound)
  done

let test_lemma5_on_seeded () =
  (* |S'| >= (1 - 2 eps / lambda) |S|. *)
  let n = 60 and d = 9 in
  let g = Seeded.striped ~seed:6 ~u:1_000_000 ~v:(4 * n * d) ~d in
  let rng = Prng.create 321 in
  let lambda = 1.0 /. 3.0 in
  for _ = 1 to 10 do
    let s = Sampling.distinct rng ~universe:1_000_000 ~count:n in
    let eps = Expansion.epsilon_of_set g s in
    let s' = Expansion.well_expanded_subset g ~lambda s in
    let bound = (1.0 -. (2.0 *. eps /. lambda)) *. float_of_int n in
    checkb "lemma 5" true (float_of_int (Array.length s') >= bound)
  done

let test_well_expanded_subset_exact () =
  (* Disjoint neighborhoods: every x owns all its neighbors. *)
  let g = Bipartite.create ~u:4 ~v:8 ~d:2 (fun x i -> (2 * x) + i) in
  let s' = Expansion.well_expanded_subset g ~lambda:0.5 [| 0; 2; 3 |] in
  Alcotest.(check (array int)) "all survive" [| 0; 2; 3 |] s'

let test_lemma3_bound_formula () =
  (* kn/((1-delta)v) + log_{(1-eps)d/k} v *)
  let b = Expansion.lemma3_bound ~n:1000 ~v:100 ~d:8 ~k:1 ~eps:0.0 ~delta:0.0 in
  Alcotest.(check (float 1e-6)) "formula"
    (10.0 +. (log 100.0 /. log 8.0)) b;
  checkb "k >= (1-eps)d rejected" true
    (try
       ignore (Expansion.lemma3_bound ~n:10 ~v:10 ~d:4 ~k:4 ~eps:0.0 ~delta:0.0);
       false
     with Invalid_argument _ -> true)

(* --- Telescope --- *)

let test_telescope_shape () =
  let f1 = Seeded.unstriped ~seed:1 ~u:10_000 ~v:400 ~d:3 in
  let f2 = Seeded.unstriped ~seed:2 ~u:400 ~v:100 ~d:4 in
  let g = Telescope.compose f1 f2 in
  check "u" 10_000 (Bipartite.u g);
  check "v" 100 (Bipartite.v g);
  check "d" 12 (Bipartite.d g)

let test_telescope_no_duplicate_neighbors () =
  let f1 = Seeded.unstriped ~seed:3 ~u:1000 ~v:50 ~d:3 in
  let f2 = Seeded.unstriped ~seed:4 ~u:50 ~v:40 ~d:4 in
  let g = Telescope.compose f1 f2 in
  for x = 0 to 200 do
    let ns = Array.to_list (Bipartite.neighbors g x) in
    check "distinct after remap" (List.length ns)
      (List.length (List.sort_uniq compare ns))
  done

let test_telescope_deterministic () =
  let mk () =
    Telescope.compose
      (Seeded.unstriped ~seed:5 ~u:500 ~v:60 ~d:3)
      (Seeded.unstriped ~seed:6 ~u:60 ~v:50 ~d:4)
  in
  let g1 = mk () and g2 = mk () in
  for x = 0 to 100 do
    Alcotest.(check (array int)) "same" (Bipartite.neighbors g1 x)
      (Bipartite.neighbors g2 x)
  done

let test_telescope_mismatch_rejected () =
  let f1 = Seeded.unstriped ~seed:1 ~u:100 ~v:50 ~d:2 in
  let f2 = Seeded.unstriped ~seed:2 ~u:40 ~v:30 ~d:2 in
  checkb "middle mismatch" true
    (try
       ignore (Telescope.compose f1 f2);
       false
     with Invalid_argument _ -> true)

let test_composed_epsilon () =
  Alcotest.(check (float 1e-9)) "error composition" 0.28
    (Telescope.composed_epsilon 0.1 0.2)

(* --- Trivial striping --- *)

let test_trivial_stripe () =
  let f = Seeded.unstriped ~seed:8 ~u:500 ~v:30 ~d:4 in
  let g = Trivial_stripe.stripe f in
  checkb "striped" true (Bipartite.is_striped g);
  check "v multiplied" 120 (Bipartite.v g);
  for x = 0 to 100 do
    for i = 0 to 3 do
      let y = Bipartite.neighbor g x i in
      check "stripe" i (y / 30);
      check "copy of original" (Bipartite.neighbor f x i) (y mod 30)
    done
  done

(* --- Semi-explicit (Section 5) --- *)

let test_corollary1_shape () =
  let graph, level = Semi_explicit.corollary1 ~seed:1 ~u:65536 ~beta:0.5 ~eps:0.25 in
  check "level u" 65536 level.Semi_explicit.level_u;
  check "right size" (Bipartite.v graph) level.Semi_explicit.level_v;
  checkb "v < u" true (Bipartite.v graph < 65536);
  checkb "memory modelled" true (level.Semi_explicit.level_memory > 0);
  check "degree" (Bipartite.d graph) level.Semi_explicit.level_d

let test_construct_shape () =
  let t = Semi_explicit.construct ~seed:2 ~capacity:64 ~u:65536 ~beta:0.5 ~eps:0.3 in
  check "left" 65536 (Bipartite.u t.Semi_explicit.graph);
  checkb "levels >= 1" true (List.length t.Semi_explicit.levels >= 1);
  check "degree = product"
    (List.fold_left (fun a l -> a * l.Semi_explicit.level_d) 1 t.Semi_explicit.levels)
    t.Semi_explicit.degree;
  checkb "right side shrank" true (t.Semi_explicit.right_size < 65536)

let test_construct_expands () =
  let t = Semi_explicit.construct ~seed:3 ~capacity:32 ~u:65536 ~beta:0.5 ~eps:0.3 in
  let g = t.Semi_explicit.graph in
  let rng = Prng.create 777 in
  (* Sets far below capacity should expand decently. *)
  let eps = Expansion.sampled_epsilon g ~rng ~set_size:8 ~trials:10 in
  checkb (Printf.sprintf "composed eps=%.3f < 0.9" eps) true (eps < 0.9)

let test_striped_for_pdm () =
  let t = Semi_explicit.construct ~seed:4 ~capacity:32 ~u:4096 ~beta:0.5 ~eps:0.3 in
  let g = Semi_explicit.striped_for_pdm t in
  checkb "striped" true (Bipartite.is_striped g);
  check "space blowup = d" (t.Semi_explicit.degree * t.Semi_explicit.right_size)
    (Bipartite.v g)

let suite =
  let tc = Alcotest.test_case in
  [ ("expander.bipartite",
     [ tc "create validates" `Quick test_create_validates;
       tc "neighbor range checked" `Quick test_neighbor_range_checked;
       tc "stripe discipline" `Quick test_stripe_discipline_checked;
       tc "neighbors and stripes" `Quick test_neighbors_and_stripes ]);
    ("expander.seeded",
     [ tc "stays in stripe" `Quick test_seeded_striped_stays_in_stripe;
       tc "deterministic" `Quick test_seeded_deterministic;
       tc "distinct seeds" `Quick test_seeded_distinct_seeds ]);
    ("expander.expansion",
     [ tc "gamma exact" `Quick test_gamma_exact;
       tc "unique neighbors exact" `Quick test_unique_neighbors_exact;
       tc "multi-edge not unique" `Quick test_multi_edge_not_unique;
       tc "epsilon of set" `Quick test_epsilon_of_set;
       tc "seeded expander quality" `Quick test_seeded_expander_is_good;
       tc "lemma 4 on seeded" `Quick test_lemma4_on_seeded;
       tc "lemma 5 on seeded" `Quick test_lemma5_on_seeded;
       tc "well-expanded exact" `Quick test_well_expanded_subset_exact;
       tc "lemma 3 closed form" `Quick test_lemma3_bound_formula ]);
    ("expander.telescope",
     [ tc "shape" `Quick test_telescope_shape;
       tc "no duplicate neighbors" `Quick test_telescope_no_duplicate_neighbors;
       tc "deterministic" `Quick test_telescope_deterministic;
       tc "mismatch rejected" `Quick test_telescope_mismatch_rejected;
       tc "error composition" `Quick test_composed_epsilon ]);
    ("expander.section5",
     [ tc "trivial stripe" `Quick test_trivial_stripe;
       tc "corollary 1 shape" `Quick test_corollary1_shape;
       tc "construct shape" `Quick test_construct_shape;
       tc "composed graph expands" `Quick test_construct_expands;
       tc "striped for pdm" `Quick test_striped_for_pdm ]) ]

(* --- exhaustive Lemma 10 verification on tiny graphs (appended) --- *)

let test_telescope_expansion_composes_exhaustively () =
  (* Tiny composition where every subset can be enumerated: the
     composed graph's exact epsilon must respect Lemma 10's
     1 - (1-e1)(1-e2) for set sizes within the composed capacity. *)
  let f1 = Seeded.unstriped ~seed:31 ~u:24 ~v:16 ~d:2 in
  let f2 = Seeded.unstriped ~seed:32 ~u:16 ~v:12 ~d:3 in
  let g = Telescope.compose f1 f2 in
  for size = 1 to 2 do
    let e1 = Expansion.exact_epsilon f1 ~set_size:size in
    let e2 = Expansion.exact_epsilon f2 ~set_size:(size * 2) in
    let eg = Expansion.exact_epsilon g ~set_size:size in
    (* The remap can only help, so measured composed error must not
       exceed the Lemma 10 composition of the parts' errors. *)
    checkb
      (Printf.sprintf "size %d: %.3f <= compose(%.3f, %.3f)" size eg e1 e2)
      true
      (eg <= Telescope.composed_epsilon e1 e2 +. 1e-9)
  done

let test_certify_seeded_small () =
  (* certify must agree exactly with the exhaustive epsilon: true just
     above it, false just below. *)
  let g = Seeded.striped ~seed:33 ~u:16 ~v:32 ~d:4 in
  let eps =
    Float.max
      (Expansion.exact_epsilon g ~set_size:1)
      (Expansion.exact_epsilon g ~set_size:2)
  in
  checkb "certified at exact eps" true
    (Expansion.certify g ~capacity:2 ~eps:(eps +. 1e-9));
  checkb "refused below exact eps" false
    (Expansion.certify g ~capacity:2 ~eps:(eps -. 0.01))

let suite =
  suite
  @ [ ("expander.exhaustive",
       [ Alcotest.test_case "lemma 10 composes (exhaustive)" `Quick
           test_telescope_expansion_composes_exhaustively;
         Alcotest.test_case "certify tiny seeded graph" `Quick
           test_certify_seeded_small ]) ]
