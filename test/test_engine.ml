(* Tests for the batched concurrent query engine: duplicate
   coalescing, round packing (one block per disk per round, with the
   sequential fallback when everything lands on one disk),
   replica-aware scheduling, structured failures carrying request ids,
   batch semantics, the Pdm.read_preferring primitive, and the cache
   coherence hooks the engine relies on. *)

open Pdm_sim
module Engine = Pdm_engine.Engine
module Adapters = Pdm_experiments.Adapters
module Engine_exp = Pdm_experiments.Engine_exp
module Trace = Pdm_workload.Trace
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling
module Checksum = Pdm_dictionary.Codec.Checksum

let tc = Alcotest.test_case
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let block_of t xs =
  let b = Array.make (Pdm.block_size t) None in
  List.iteri (fun i x -> b.(i) <- Some x) xs;
  b

(* A synthetic dictionary over a raw machine: key [k] probes the
   addresses [plan k]; the answer sums the blocks' first words, so a
   wrong or missing block changes the value. Every block of the
   machine holds [100 * disk + block]. *)
let decode_plan plan k =
  List.fold_left
    (fun acc (a : Pdm.addr) -> acc + (100 * a.Pdm.disk) + a.Pdm.block)
    0 (plan k)

let synthetic ?(replicas = 1) ?(disks = 8) ?(blocks = 8) ~plan () =
  let m = Pdm.create ~replicas ~disks ~block_size:4 ~blocks_per_disk:blocks () in
  for d = 0 to disks - 1 do
    for b = 0 to blocks - 1 do
      Pdm.write_one m { Pdm.disk = d; block = b } (block_of m [ (100 * d) + b ])
    done
  done;
  let decode bs =
    List.fold_left
      (fun acc (_, arr) -> match arr.(0) with Some v -> acc + v | None -> acc)
      0 bs
  in
  let lookup k =
    Engine.Fetch
      (plan k, fun bs -> Engine.Done (Some (Bytes.of_string (string_of_int (decode bs)))))
  in
  ( m,
    { Engine.name = "synthetic"; machine = m; lookup; insert = None;
      delete = None },
    fun k -> Bytes.of_string (string_of_int (decode_plan plan k)) )

let one_batch_config q =
  { Engine.max_batch = q; deadline_rounds = 1_000_000; cache_blocks = 0 }

let run_keys ?config dict keys =
  let config =
    match config with Some c -> c | None -> one_batch_config (List.length keys)
  in
  let eng = Engine.create ~config dict in
  List.iter (fun k -> ignore (Engine.submit eng (Engine.Lookup k))) keys;
  Engine.drain eng;
  (eng, Engine.take_outcomes eng)

(* --- coalescing --- *)

let test_all_same_key_coalesces () =
  (* 32 identical lookups: the 8 probe blocks are fetched once, in one
     round (one per disk), every other instance is coalesced. *)
  let plan _ = List.init 8 (fun d -> { Pdm.disk = d; block = 0 }) in
  let _, dict, expect = synthetic ~plan () in
  let keys = List.init 32 (fun _ -> 5) in
  let eng, outs = run_keys dict keys in
  let s = Engine.stats eng in
  check "served" 32 s.Engine.requests_served;
  check "blocks fetched once" 8 s.Engine.blocks_fetched;
  check "31 duplicates x 8 blocks coalesced" (31 * 8) s.Engine.coalesced;
  check "one parallel round" 1 s.Engine.rounds;
  List.iter
    (fun (o : Engine.outcome) ->
      Alcotest.(check (option bytes)) "answer" (Some (expect 5)) o.Engine.value)
    outs

let test_one_disk_sequential_fallback () =
  (* Every probe lands on disk 0: the executor degrades to one block
     per round — never more rounds than distinct blocks. *)
  let blocks = 4 in
  let plan k = [ { Pdm.disk = 0; block = k mod blocks } ] in
  let _, dict, expect = synthetic ~blocks ~plan () in
  let keys = List.init 16 (fun i -> i) in
  let eng, outs = run_keys dict keys in
  let s = Engine.stats eng in
  check "distinct blocks fetched" blocks s.Engine.blocks_fetched;
  check "coalesced the rest" (16 - blocks) s.Engine.coalesced;
  check "sequential fallback: one round per block" blocks s.Engine.rounds;
  List.iter
    (fun (o : Engine.outcome) ->
      Alcotest.(check (option bytes)) "answer"
        (Some (expect (Engine.request_key o.Engine.request)))
        o.Engine.value)
    outs

let test_zipf_batch_on_real_dictionary () =
  let n = 256 and queries = 256 in
  let universe = 1 lsl 18 in
  let scale = { Adapters.default_scale with universe; capacity = n; seed = 3 } in
  let members, _ =
    Sampling.disjoint_pair (Prng.create 3) ~universe ~count:n
  in
  let data =
    Array.map (fun k -> (k, Pdm_experiments.Common.value_bytes_of 8 k)) members
  in
  let ad = Adapters.engine_one_probe_static ~scale ~degree:8 ~data () in
  let ops =
    Trace.zipf_lookups ~rng:(Prng.create 17) ~keys:members ~count:queries
      ~s:1.2
  in
  let keys =
    Array.to_list ops
    |> List.filter_map (function Trace.Lookup k -> Some k | _ -> None)
  in
  let eng, outs = run_keys ad.Adapters.engine_dict keys in
  let s = Engine.stats eng in
  let disks = Pdm.disks ad.Adapters.engine_dict.Engine.machine in
  checkb "skew coalesces heavily" true (s.Engine.coalesced > queries);
  checkb "rounds well under Q" true
    (s.Engine.rounds <= (queries / disks * 5 / 4) + 1);
  checkb "utilization above half of D" true
    (Engine.mean_utilization eng >= 0.5 *. float_of_int disks);
  List.iter2
    (fun k (o : Engine.outcome) ->
      Alcotest.(check (option bytes)) "matches direct path"
        (ad.Adapters.direct_find k) o.Engine.value)
    keys outs

(* --- replica-aware scheduling --- *)

let test_replicas_split_hot_disk () =
  (* All 8 probed blocks live on logical disk 0; with r = 2 their
     second replicas sit on disk 1, so the least-loaded assignment
     halves the rounds. *)
  let blocks = 8 in
  let plan k = [ { Pdm.disk = 0; block = k mod blocks } ] in
  let _, dict, expect = synthetic ~replicas:2 ~disks:4 ~blocks ~plan () in
  let keys = List.init blocks (fun i -> i) in
  let eng, outs = run_keys dict keys in
  let s = Engine.stats eng in
  check "blocks" blocks s.Engine.blocks_fetched;
  check "two replica disks halve the rounds" (blocks / 2) s.Engine.rounds;
  List.iter
    (fun (o : Engine.outcome) ->
      Alcotest.(check (option bytes)) "answer"
        (Some (expect (Engine.request_key o.Engine.request)))
        o.Engine.value)
    outs

let test_killed_disk_failover_within_2x () =
  let blocks = 8 in
  let plan k = [ { Pdm.disk = 0; block = k mod blocks } ] in
  let m, dict, expect = synthetic ~replicas:2 ~disks:4 ~blocks ~plan () in
  Pdm.kill_disk m 0;
  let keys = List.init blocks (fun i -> i) in
  let eng, outs = run_keys dict keys in
  let s = Engine.stats eng in
  checkb "completes within 2x the healthy rounds" true
    (s.Engine.rounds <= 2 * (blocks / 2));
  List.iter
    (fun (o : Engine.outcome) ->
      Alcotest.(check (option bytes)) "answer survives the kill"
        (Some (expect (Engine.request_key o.Engine.request)))
        o.Engine.value)
    outs

let test_unreplicated_failure_carries_request_id () =
  let plan _ = [ { Pdm.disk = 2; block = 0 } ] in
  let m, dict, _ = synthetic ~disks:4 ~plan () in
  Pdm.kill_disk m 2;
  let eng =
    Engine.create
      ~config:{ Engine.max_batch = 1; deadline_rounds = 0; cache_blocks = 0 }
      dict
  in
  (match Engine.submit eng (Engine.Lookup 7) with
   | _ -> Alcotest.fail "expected Request_failed"
   | exception Engine.Request_failed { id; key; error } ->
     check "request id" 0 id;
     check "key" 7 key;
     checkb "structured payload" true (Backend.describe error <> None))

(* --- batch semantics --- *)

let test_deadline_closes_batch () =
  let plan _ = [ { Pdm.disk = 0; block = 0 } ] in
  let _, dict, _ = synthetic ~plan () in
  let eng =
    Engine.create
      ~config:{ Engine.max_batch = 100; deadline_rounds = 2; cache_blocks = 0 }
      dict
  in
  ignore (Engine.submit eng (Engine.Lookup 1));
  ignore (Engine.submit eng (Engine.Lookup 2));
  check "still queued" 2 (Engine.queue_length eng);
  Engine.idle_round eng;
  check "deadline not reached" 2 (Engine.queue_length eng);
  Engine.idle_round eng;
  check "deadline fired" 0 (Engine.queue_length eng);
  let outs = Engine.take_outcomes eng in
  check "both served" 2 (List.length outs);
  check "one batch" 1 (Engine.stats eng).Engine.batches;
  List.iter
    (fun (o : Engine.outcome) ->
      checkb "latency counts queueing" true (Engine.latency o >= 2))
    outs

let test_insert_visible_to_same_batch_lookup () =
  let scale =
    { Adapters.default_scale with universe = 1 lsl 18; capacity = 64; seed = 5 }
  in
  let ad = Adapters.engine_cascade ~scale () in
  let eng =
    Engine.create ~config:(one_batch_config 4) ad.Adapters.engine_dict
  in
  let v = Pdm_experiments.Common.value_bytes_of 8 1234 in
  (* Lookup submitted before the insert — inserts still run first. *)
  ignore (Engine.submit eng (Engine.Lookup 1234));
  ignore (Engine.submit eng (Engine.Insert (1234, v)));
  Engine.drain eng;
  match Engine.take_outcomes eng with
  | [ lookup; insert ] ->
    checkb "lookup sees the batch's insert" true
      (lookup.Engine.value = Some v);
    checkb "insert acked" true (insert.Engine.value = None);
    checkb "insert rounds charged" true
      ((Engine.stats eng).Engine.insert_rounds > 0)
  | outs -> Alcotest.failf "expected 2 outcomes, got %d" (List.length outs)

let test_cascade_two_phase_through_engine () =
  let n = 64 in
  let scale =
    { Adapters.default_scale with universe = 1 lsl 18; capacity = n; seed = 7 }
  in
  let ad = Adapters.engine_cascade ~scale () in
  let members, absent =
    Sampling.disjoint_pair (Prng.create 7) ~universe:(1 lsl 18) ~count:n
  in
  let ins = Option.get ad.Adapters.engine_dict.Engine.insert in
  Array.iter
    (fun k -> ins k (Pdm_experiments.Common.value_bytes_of 8 k))
    members;
  let keys = Array.to_list members @ Array.to_list (Array.sub absent 0 16) in
  let eng, outs = run_keys ad.Adapters.engine_dict keys in
  ignore eng;
  List.iter2
    (fun k (o : Engine.outcome) ->
      Alcotest.(check (option bytes)) "cascade via engine = direct"
        (ad.Adapters.direct_find k) o.Engine.value)
    keys outs

(* --- Pdm.read_preferring --- *)

let test_read_preferring_uses_requested_replica () =
  let m : int Pdm.t =
    Pdm.create ~replicas:2 ~disks:4 ~block_size:4 ~blocks_per_disk:8 ()
  in
  let a = { Pdm.disk = 0; block = 3 } in
  Pdm.write_one m a (block_of m [ 42 ]);
  Alcotest.(check (list int)) "replica disks" [ 0; 1 ] (Pdm.replica_disks m a);
  Stats.reset (Pdm.stats m);
  (match Pdm.read_preferring m [ (a, 1) ] with
   | [ (_, arr) ] -> Alcotest.(check (option int)) "value" (Some 42) arr.(0)
   | _ -> Alcotest.fail "one block expected");
  let snap = Stats.snapshot (Pdm.stats m) in
  check "served by replica disk 1" 1 (Stats.disk_totals snap).(1);
  check "disk 0 untouched" 0 (Stats.disk_totals snap).(0)

let test_read_preferring_fails_over () =
  let m : int Pdm.t =
    Pdm.create ~replicas:2 ~disks:4 ~block_size:4 ~blocks_per_disk:8 ()
  in
  let a = { Pdm.disk = 0; block = 1 } in
  Pdm.write_one m a (block_of m [ 9 ]);
  Pdm.kill_disk m 1;
  (match Pdm.read_preferring m [ (a, 1) ] with
   | [ (_, arr) ] ->
     Alcotest.(check (option int)) "failover to replica 0" (Some 9) arr.(0)
   | _ -> Alcotest.fail "one block expected");
  Alcotest.check_raises "replica out of range"
    (Invalid_argument "Pdm.read_preferring: replica out of range") (fun () ->
      ignore (Pdm.read_preferring m [ (a, 2) ]))

let test_read_preferring_dedups () =
  let m : int Pdm.t =
    Pdm.create ~replicas:2 ~disks:4 ~block_size:4 ~blocks_per_disk:8 ()
  in
  let a = { Pdm.disk = 2; block = 0 } in
  Pdm.write_one m a (block_of m [ 5 ]);
  check "duplicates collapse" 1
    (List.length (Pdm.read_preferring m [ (a, 0); (a, 1) ]))

(* --- cache coherence with writers that bypass the cache --- *)

let test_cache_sees_direct_writes () =
  let m : int Pdm.t =
    Pdm.create ~disks:4 ~block_size:4 ~blocks_per_disk:8 ()
  in
  let c = Cache.create m ~capacity_blocks:4 in
  let a = { Pdm.disk = 1; block = 2 } in
  Pdm.write_one m a (block_of m [ 1 ]);
  Alcotest.(check (option int)) "first read" (Some 1) (Cache.read_one c a).(0);
  (* A writer that bypasses the cache (second handle, journal replay,
     repair): the listener must drop the stale copy. *)
  Pdm.write_one m a (block_of m [ 2 ]);
  Alcotest.(check (option int)) "write invalidates" (Some 2)
    (Cache.read_one c a).(0);
  Pdm.poke m a (block_of m [ 3 ]);
  Alcotest.(check (option int)) "poke invalidates" (Some 3)
    (Cache.read_one c a).(0);
  check "every re-read was a miss" 3 (Cache.misses c)

let test_cache_coherent_after_journal_replay () =
  let m : int Pdm.t =
    Pdm.create ~disks:4 ~block_size:8 ~blocks_per_disk:8 ()
  in
  let j = Journal.create m ~block_offset:4 ~capacity_blocks:8 in
  let c = Cache.create m ~capacity_blocks:4 in
  let a = { Pdm.disk = 0; block = 0 } in
  Pdm.write_one m a (block_of m [ 10 ]);
  Alcotest.(check (option int)) "cached old value" (Some 10)
    (Cache.read_one c a).(0);
  (* Committed but unapplied batch; recovery replays it through
     Pdm.write, which must invalidate the cached copy. *)
  (try Journal.log_and_apply j ~crash:Journal.After_commit [ (a, block_of m [ 11 ]) ]
   with Journal.Crashed -> ());
  (match Journal.recover m ~block_offset:4 ~capacity_blocks:8 with
   | `Replayed _ -> ()
   | `Clean | `Discarded -> Alcotest.fail "expected a replay");
  Alcotest.(check (option int)) "replayed value visible" (Some 11)
    (Cache.read_one c a).(0)

let test_cache_coherent_after_scrub_repair () =
  let m : int Pdm.t =
    Pdm.create ~replicas:2 ~integrity:Checksum.integrity ~disks:4
      ~block_size:8 ~blocks_per_disk:8 ()
  in
  let c = Cache.create m ~capacity_blocks:8 in
  let a = { Pdm.disk = 0; block = 0 } in
  let b = { Pdm.disk = 1; block = 0 } in
  Pdm.write_one m a (block_of m [ 21 ]);
  Pdm.write_one m b (block_of m [ 22 ]);
  ignore (Cache.read c [ a; b ]);
  check "both resident" 2 (Cache.resident c);
  Pdm.damage_stored m a ~replica:0;
  let r = Pdm.scrub m in
  checkb "scrub repaired the rot" true (r.Pdm.repaired_replicas >= 1);
  checkb "repaired block dropped from cache" true
    (Cache.find_cached c a = None);
  checkb "untouched block still resident" true
    (Cache.find_cached c b <> None);
  Alcotest.(check (option int)) "re-read sees repaired data" (Some 21)
    (Cache.read_one c a).(0)

(* --- the E18 experiment itself, at test scale --- *)

let test_engine_experiment_small () =
  let r =
    Engine_exp.run ~universe:(1 lsl 18) ~n:256 ~queries:512 ~degree:16
      ~seed:11 ()
  in
  checkb "within 1.25 ceil(Q/D) rounds" true r.Engine_exp.within_bound;
  checkb "identical answers" true r.Engine_exp.answers_match;
  checkb "utilization >= 0.8 D" true r.Engine_exp.utilization_ok;
  checkb "degraded within 2x" true r.Engine_exp.degraded_within_2x;
  checkb "degraded answers identical" true r.Engine_exp.degraded_match;
  checkb "beats unbatched" true
    (r.Engine_exp.engine_rounds < r.Engine_exp.unbatched_rounds)

(* Deletes run with the batch's updates, before its lookups, and
   encode their found/not-found bit through [Engine.deleted_value]. *)
let test_delete_through_engine () =
  let scale =
    { Adapters.default_scale with universe = 1 lsl 18; capacity = 64; seed = 11 }
  in
  let ad = Adapters.engine_cascade ~scale () in
  let eng =
    Engine.create ~config:(one_batch_config 8) ad.Adapters.engine_dict
  in
  let v = Pdm_experiments.Common.value_bytes_of 8 42 in
  ignore (Engine.submit eng (Engine.Insert (42, v)));
  Engine.drain eng;
  ignore (Engine.take_outcomes eng);
  ignore (Engine.submit eng (Engine.Lookup 42));
  ignore (Engine.submit eng (Engine.Delete 42));
  ignore (Engine.submit eng (Engine.Delete 43));
  Engine.drain eng;
  (match Engine.take_outcomes eng with
   | [ lookup; del_present; del_absent ] ->
     checkb "same-batch lookup sees the delete" true
       (lookup.Engine.value = None);
     checkb "delete of a present key" true
       (del_present.Engine.value = Engine.deleted_value true);
     checkb "delete of an absent key" true
       (del_absent.Engine.value = Engine.deleted_value false);
     checkb "direct find agrees" true (ad.Adapters.direct_find 42 = None)
   | outs -> Alcotest.failf "expected 3 outcomes, got %d" (List.length outs));
  checkb "deleted_value present" true
    (Engine.deleted_value true = Some Bytes.empty);
  checkb "deleted_value absent" true (Engine.deleted_value false = None)

(* Engine.guard is the one per-request failure-reporting path the CLI
   serve loops (single machine and cluster) share: structured storage
   errors become Request_failed carrying the request's id and key;
   anything unrecognized propagates untouched. *)
let test_guard_unifies_failure_reporting () =
  let storage =
    Backend.Disk_failed { Backend.disk = 3; block = 7; round = 1 }
  in
  (match Engine.guard ~id:9 ~key:1234 (fun () -> raise storage) with
   | _ -> Alcotest.fail "expected Request_failed"
   | exception Engine.Request_failed { id; key; error } ->
     check "request id" 9 id;
     check "request key" 1234 key;
     checkb "carries the storage error" true (error == storage));
  (match Engine.guard ~id:0 ~key:0 (fun () -> raise Exit) with
   | _ -> Alcotest.fail "expected Exit"
   | exception Exit -> ()
   | exception _ -> Alcotest.fail "unrecognized exceptions must propagate");
  check "guard passes values through" 7
    (Engine.guard ~id:1 ~key:2 (fun () -> 7));
  (* a custom describe widens recognition — the cluster path wraps
     Unavailable/Retries_exhausted the same way *)
  match
    Engine.guard ~id:4 ~key:5 ~describe:(fun _ -> Some "recognized")
      (fun () -> raise Exit)
  with
  | _ -> Alcotest.fail "expected Request_failed via custom describe"
  | exception Engine.Request_failed { id = 4; key = 5; error = Exit } -> ()
  | exception e -> raise e

let suite =
  [ ("engine.coalescing",
     [ tc "all-same-key batch" `Quick test_all_same_key_coalesces;
       tc "one-disk sequential fallback" `Quick
         test_one_disk_sequential_fallback;
       tc "zipf batch on real dictionary" `Quick
         test_zipf_batch_on_real_dictionary ]);
    ("engine.replicas",
     [ tc "least-loaded splits a hot disk" `Quick test_replicas_split_hot_disk;
       tc "killed disk: failover within 2x" `Quick
         test_killed_disk_failover_within_2x;
       tc "r=1 failure carries request id" `Quick
         test_unreplicated_failure_carries_request_id ]);
    ("engine.batching",
     [ tc "deadline closes a batch" `Quick test_deadline_closes_batch;
       tc "insert visible to same-batch lookup" `Quick
         test_insert_visible_to_same_batch_lookup;
       tc "cascade two-phase lookups" `Quick
         test_cascade_two_phase_through_engine;
       tc "delete semantics through the engine" `Quick
         test_delete_through_engine;
       tc "guard unifies failure reporting" `Quick
         test_guard_unifies_failure_reporting ]);
    ("pdm.read_preferring",
     [ tc "uses the requested replica" `Quick
         test_read_preferring_uses_requested_replica;
       tc "fails over and validates" `Quick test_read_preferring_fails_over;
       tc "dedups" `Quick test_read_preferring_dedups ]);
    ("cache.coherence",
     [ tc "direct writes and pokes invalidate" `Quick
         test_cache_sees_direct_writes;
       tc "journal replay invalidates" `Quick
         test_cache_coherent_after_journal_replay;
       tc "scrub repair invalidates" `Quick
         test_cache_coherent_after_scrub_repair ]);
    ("experiments.engine",
     [ tc "E18 at test scale" `Quick test_engine_experiment_small ]) ]
