(* Tests for the third wave of features: exhaustive expansion
   certification, the direct Theorem 6 construction, cascade and
   one-probe-dynamic deletions, and crash recovery. *)

open Pdm_sim
module Expansion = Pdm_expander.Expansion
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Basic = Pdm_dictionary.Basic_dict
module One_probe = Pdm_dictionary.One_probe_static
module Cascade = Pdm_dictionary.Dynamic_cascade
module Opd = Pdm_dictionary.One_probe_dynamic
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let universe = 1 lsl 20
let val8 k = Bytes.of_string (Printf.sprintf "%08d" (k mod 100_000_000))

(* --- exhaustive expansion --- *)

let test_exact_epsilon_known_graph () =
  (* Perfectly expanding graph: disjoint neighborhoods. *)
  let g = Bipartite.create ~u:6 ~v:12 ~d:2 (fun x i -> (2 * x) + i) in
  Alcotest.(check (float 1e-9)) "eps 0 at size 1" 0.0
    (Expansion.exact_epsilon g ~set_size:1);
  Alcotest.(check (float 1e-9)) "eps 0 at size 3" 0.0
    (Expansion.exact_epsilon g ~set_size:3);
  checkb "certified" true (Expansion.certify g ~capacity:3 ~eps:0.01)

let test_exact_epsilon_collision_graph () =
  (* Everyone shares the same two neighbors: sets of size 2 see
     eps = 1 - 2/4 = 1/2. *)
  let g = Bipartite.create ~u:5 ~v:4 ~d:2 (fun _ i -> i) in
  Alcotest.(check (float 1e-9)) "eps exactly 1/2" 0.5
    (Expansion.exact_epsilon g ~set_size:2);
  checkb "not a (2, 0.4)-expander" false (Expansion.certify g ~capacity:2 ~eps:0.4);
  checkb "is a (2, 0.6)-expander" true (Expansion.certify g ~capacity:2 ~eps:0.6)

let test_exact_vs_sampled () =
  (* Sampling can only under-estimate the exhaustive maximum. *)
  let g = Seeded.striped ~seed:3 ~u:18 ~v:12 ~d:3 in
  let exact = Expansion.exact_epsilon g ~set_size:3 in
  let rng = Prng.create 4 in
  let sampled = Expansion.sampled_epsilon g ~rng ~set_size:3 ~trials:20 in
  checkb "sampled <= exact" true (sampled <= exact +. 1e-9)

let test_exact_refuses_large () =
  let g = Seeded.striped ~seed:5 ~u:1000 ~v:100 ~d:2 in
  checkb "u too large" true
    (try
       ignore (Expansion.exact_epsilon g ~set_size:2);
       false
     with Invalid_argument _ -> true)

(* --- direct Theorem 6 construction --- *)

let build_both n =
  let cfg =
    { One_probe.universe; capacity = n; degree = 9; sigma_bits = 128;
      v_factor = 3; case = One_probe.Case_b; seed = 6 }
  in
  let rng = Prng.create 7 in
  let members = Sampling.distinct rng ~universe ~count:n in
  let data =
    Array.map (fun k -> (k, Common_payload.payload 128 k)) members
  in
  let sorting = One_probe.build ~construction:`Sorting ~block_words:64 cfg data in
  let direct = One_probe.build ~construction:`Direct ~block_words:64 cfg data in
  (members, data, sorting, direct)

let test_direct_construction_equivalent () =
  let members, data, sorting, direct = build_both 300 in
  ignore data;
  Array.iter
    (fun k ->
      Alcotest.(check (option string)) "same answers"
        (Option.map Bytes.to_string (One_probe.find sorting k))
        (Option.map Bytes.to_string (One_probe.find direct k));
      checkb "found" true (One_probe.mem direct k))
    members

let test_direct_construction_cheaper () =
  let _, _, sorting, direct = build_both 400 in
  let rs = One_probe.report sorting and rd = One_probe.report direct in
  checkb
    (Printf.sprintf "direct %d < sorting %d I/Os"
       rd.One_probe.construction_ios rs.One_probe.construction_ios)
    true
    (rd.One_probe.construction_ios < rs.One_probe.construction_ios);
  check "same peel depth" rs.One_probe.peel_rounds rd.One_probe.peel_rounds

let test_direct_single_io_lookups () =
  let members, _, _, direct = build_both 200 in
  let machine = One_probe.machine direct in
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (One_probe.find direct k)) members;
  check "1 I/O each" 200 (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

(* --- cascade deletions --- *)

let mk_cascade () =
  Cascade.create ~block_words:64
    { Cascade.universe; capacity = 300; degree = 15; sigma_bits = 128;
      epsilon = 1.0; v_factor = 3; seed = 8 }

let test_cascade_delete_roundtrip () =
  let t = mk_cascade () in
  let rng = Prng.create 9 in
  let keys = Sampling.distinct rng ~universe ~count:300 in
  let payload k = Common_payload.payload 128 k in
  Array.iter (fun k -> Cascade.insert t k (payload k)) keys;
  Array.iteri
    (fun i k -> if i mod 2 = 0 then checkb "delete hits" true (Cascade.delete t k))
    keys;
  check "half left" 150 (Cascade.size t);
  Array.iteri
    (fun i k ->
      if i mod 2 = 0 then checkb "gone" false (Cascade.mem t k)
      else
        Alcotest.(check string) "survivor intact"
          (Bytes.to_string (payload k))
          (Bytes.to_string (Option.get (Cascade.find t k))))
    keys;
  checkb "re-delete misses" false (Cascade.delete t keys.(0))

let test_cascade_delete_frees_fields () =
  (* Deleted keys' fields must be reusable: fill, delete all, refill. *)
  let t = mk_cascade () in
  let rng = Prng.create 10 in
  let a, b = Sampling.disjoint_pair rng ~universe ~count:300 in
  let payload k = Common_payload.payload 128 k in
  Array.iter (fun k -> Cascade.insert t k (payload k)) a;
  Array.iter (fun k -> ignore (Cascade.delete t k)) a;
  check "empty" 0 (Cascade.size t);
  Array.iter (fun k -> Cascade.insert t k (payload k)) b;
  check "refilled" 300 (Cascade.size t);
  Array.iter (fun k -> checkb "fresh keys live" true (Cascade.mem t k)) b

let test_cascade_delete_cost () =
  let t = mk_cascade () in
  Cascade.insert t 7 (Common_payload.payload 128 7);
  let machine = Cascade.machine t in
  Stats.reset (Pdm.stats machine);
  checkb "hit" true (Cascade.delete t 7);
  let s = Stats.snapshot (Pdm.stats machine) in
  (* level-1 key: 1 read round + 1 combined write round. *)
  check "2 I/Os" 2 (Stats.parallel_ios s);
  Stats.reset (Pdm.stats machine);
  checkb "miss" false (Cascade.delete t 4242);
  check "1 I/O for a miss" 1 (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let test_opd_delete () =
  let t =
    Opd.create ~block_words:64
      { Opd.universe; capacity = 200; degree = 9; sigma_bits = 128;
        levels = 5; v_factor = 3; seed = 11 }
  in
  let rng = Prng.create 12 in
  let keys = Sampling.distinct rng ~universe ~count:200 in
  Array.iter (fun k -> Opd.insert t k (Common_payload.payload 128 k)) keys;
  let machine = Opd.machine t in
  Stats.reset (Pdm.stats machine);
  checkb "delete hit" true (Opd.delete t keys.(0));
  check "2 I/Os worst case" 2
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)));
  checkb "gone" false (Opd.mem t keys.(0));
  check "size" 199 (Opd.size t)

(* --- crash recovery --- *)

let test_recover_rebuilds_state () =
  let cfg =
    Basic.plan ~universe ~capacity:200 ~block_words:64 ~degree:8
      ~value_bytes:8 ~seed:13 ()
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:64
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
  let rng = Prng.create 14 in
  let keys = Sampling.distinct rng ~universe ~count:200 in
  Array.iter (fun k -> Basic.insert d k (val8 k)) keys;
  ignore (Basic.delete d keys.(0));
  (* "Crash": drop the handle, recover from disk + config alone. *)
  let d' = Basic.recover ~machine ~disk_offset:0 ~block_offset:0 cfg in
  check "size recovered" 199 (Basic.size d');
  Array.iteri
    (fun i k ->
      if i > 0 then
        Alcotest.(check string) "values intact" (Bytes.to_string (val8 k))
          (Bytes.to_string (Option.get (Basic.find d' k))))
    keys;
  (* The recovered handle is fully operational. *)
  Basic.insert d' keys.(0) (val8 1);
  check "writable" 200 (Basic.size d')

let test_recover_tombstone_mode () =
  let cfg =
    Basic.plan ~tombstone:true ~universe ~capacity:100 ~block_words:64
      ~degree:8 ~value_bytes:8 ~seed:15 ()
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:64
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
  for k = 0 to 99 do Basic.insert d k (val8 k) done;
  for k = 0 to 29 do ignore (Basic.delete d k) done;
  let d' = Basic.recover ~machine ~disk_offset:0 ~block_offset:0 cfg in
  check "live size" 70 (Basic.size d');
  check "tombstones recovered" 30 (Basic.tombstones d')

let test_recover_io_cost () =
  let cfg =
    Basic.plan ~universe ~capacity:100 ~block_words:64 ~degree:8
      ~value_bytes:8 ~seed:16 ()
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:64
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
  for k = 0 to 99 do Basic.insert d k (val8 k) done;
  ignore d;
  Stats.reset (Pdm.stats machine);
  ignore (Basic.recover ~machine ~disk_offset:0 ~block_offset:0 cfg);
  check "one round per block row" (Basic.blocks_per_disk cfg)
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let suite =
  let tc = Alcotest.test_case in
  [ ("expander.exact",
     [ tc "known perfect graph" `Quick test_exact_epsilon_known_graph;
       tc "known collision graph" `Quick test_exact_epsilon_collision_graph;
       tc "sampled <= exact" `Quick test_exact_vs_sampled;
       tc "refuses large universes" `Quick test_exact_refuses_large ]);
    ("dictionary.direct_construction",
     [ tc "equivalent result" `Quick test_direct_construction_equivalent;
       tc "cheaper in I/O" `Quick test_direct_construction_cheaper;
       tc "single-I/O lookups" `Quick test_direct_single_io_lookups ]);
    ("dictionary.cascade_delete",
     [ tc "roundtrip" `Quick test_cascade_delete_roundtrip;
       tc "frees fields" `Quick test_cascade_delete_frees_fields;
       tc "cost" `Quick test_cascade_delete_cost;
       tc "one-probe dynamic delete" `Quick test_opd_delete ]);
    ("dictionary.recover",
     [ tc "rebuilds state" `Quick test_recover_rebuilds_state;
       tc "tombstone mode" `Quick test_recover_tombstone_mode;
       tc "I/O cost" `Quick test_recover_io_cost ]) ]

(* --- multi-group fields: huge satellites in one probe (appended) --- *)

let test_one_probe_huge_satellite () =
  (* sigma so large a field exceeds a block: the store spreads each
     field over several disk groups, and lookups stay at one parallel
     I/O on d x groups disks. *)
  let n = 120 and degree = 9 and block_words = 16 in
  let sigma_bits = 16 * 1024 in
  let cfg =
    { One_probe.universe; capacity = n; degree; sigma_bits; v_factor = 3;
      case = One_probe.Case_b; seed = 21 }
  in
  let rng = Prng.create 22 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:n in
  let data = Array.map (fun k -> (k, Common_payload.payload sigma_bits k)) members in
  let t = One_probe.build ~block_words cfg data in
  let machine = One_probe.machine t in
  checkb "uses several groups of d disks" true
    (Pdm.disks machine > degree && Pdm.disks machine mod degree = 0);
  Stats.reset (Pdm.stats machine);
  Array.iter
    (fun (k, v) ->
      match One_probe.find t k with
      | Some got ->
        Alcotest.(check string) "huge satellite intact" (Bytes.to_string v)
          (Bytes.to_string got)
      | None -> Alcotest.failf "member %d missing" k)
    data;
  Array.iter (fun k -> checkb "absent" false (One_probe.mem t k)) absent;
  check "1 I/O per lookup even at 16 kbit satellites" (2 * n)
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let suite =
  suite
  @ [ ("dictionary.multi_group",
       [ Alcotest.test_case "huge satellites, one probe" `Quick
           test_one_probe_huge_satellite ]) ]

(* --- bitvector membership [5] (appended) --- *)

module Bv = Pdm_dictionary.Bitvector_membership

let mk_bv ?(v_factor = 4) ?(n = 300) () =
  let rng = Prng.create 31 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:n in
  let blocks =
    Bv.blocks_per_disk_needed ~universe ~degree:8 ~v_factor ~block_words:64 ~n
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:64 ~blocks_per_disk:(max 1 blocks) ()
  in
  let t =
    Bv.build ~machine ~disk_offset:0 ~block_offset:0 ~universe ~degree:8
      ~v_factor ~seed:32 members
  in
  (machine, t, members, absent)

let test_bv_no_false_negatives () =
  let _, t, members, _ = mk_bv () in
  Array.iter (fun k -> checkb "member found" true (Bv.mem t k)) members

let test_bv_one_io () =
  let machine, t, members, absent = mk_bv () in
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Bv.mem t k)) members;
  Array.iter (fun k -> ignore (Bv.mem t k)) absent;
  check "1 I/O per query"
    (Array.length members + Array.length absent)
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let test_bv_false_positives_rare_and_shrinking () =
  let _, t4, _, absent = mk_bv ~v_factor:4 () in
  let fp4 =
    Array.fold_left (fun acc k -> if Bv.mem t4 k then acc + 1 else acc) 0 absent
  in
  checkb
    (Printf.sprintf "fp at v=4nd: %d/300 small" fp4)
    true
    (float_of_int fp4 /. 300.0 <= 0.05);
  let _, t8, _, absent8 = mk_bv ~v_factor:8 () in
  let fp8 =
    Array.fold_left (fun acc k -> if Bv.mem t8 k then acc + 1 else acc) 0
      absent8
  in
  checkb "more space, fewer false positives" true (fp8 <= fp4)

let test_bv_space_is_bits () =
  let _, t, members, _ = mk_bv () in
  check "v = 4nd bits" (4 * 300 * 8) (Bv.space_bits t);
  checkb "ones <= dn" true (Bv.ones t <= 8 * Array.length members)

let test_bv_measured_rate () =
  let _, t, _, _ = mk_bv () in
  let rate = Bv.false_positive_rate t ~trials:2000 ~seed:77 in
  checkb (Printf.sprintf "measured fp rate %.4f < 0.05" rate) true (rate < 0.05)

let suite =
  suite
  @ [ ("dictionary.bitvector",
       [ Alcotest.test_case "no false negatives" `Quick
           test_bv_no_false_negatives;
         Alcotest.test_case "one I/O" `Quick test_bv_one_io;
         Alcotest.test_case "false positives rare" `Quick
           test_bv_false_positives_rare_and_shrinking;
         Alcotest.test_case "space in bits" `Quick test_bv_space_is_bits;
         Alcotest.test_case "measured fp rate" `Quick test_bv_measured_rate ]) ]

(* --- case (b) dynamization (appended) --- *)

module Cb = Pdm_dictionary.Dynamic_cascade_b

let mk_cb ?(capacity = 300) () =
  Cb.create ~block_words:64
    { Cb.universe; capacity; degree = 15; sigma_bits = 128; epsilon = 1.0;
      v_factor = 3; seed = 41 }

let test_cb_roundtrip () =
  let t = mk_cb () in
  let rng = Prng.create 42 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  let payload k = Common_payload.payload 128 k in
  Array.iter (fun k -> Cb.insert t k (payload k)) members;
  check "size" 300 (Cb.size t);
  Array.iter
    (fun k ->
      Alcotest.(check string) "satellite" (Bytes.to_string (payload k))
        (Bytes.to_string (Option.get (Cb.find t k))))
    members;
  Array.iter (fun k -> checkb "absent" false (Cb.mem t k)) absent

let test_cb_cost_profile () =
  (* The "slightly weaker" trade: hits average 1 + eps, but misses
     cost a full pass over the levels. *)
  let t = mk_cb () in
  let rng = Prng.create 43 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  Array.iter (fun k -> Cb.insert t k (Common_payload.payload 128 k)) members;
  let machine = Cb.machine t in
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Cb.find t k)) members;
  let hit_total = Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)) in
  let hit_avg = float_of_int hit_total /. 300.0 in
  checkb (Printf.sprintf "hit avg %.3f <= 2" hit_avg) true (hit_avg <= 2.0);
  Stats.reset (Pdm.stats machine);
  ignore (Cb.find t absent.(0));
  check "miss costs the full level pass" (Cb.levels t)
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let test_cb_update_delete () =
  let t = mk_cb () in
  Cb.insert t 9 (Bytes.make 16 'a');
  Cb.insert t 9 (Bytes.make 16 'b');
  check "size 1" 1 (Cb.size t);
  Alcotest.(check string) "updated" (String.make 16 'b')
    (Bytes.to_string (Option.get (Cb.find t 9)));
  checkb "delete" true (Cb.delete t 9);
  checkb "gone" false (Cb.mem t 9);
  (* Freed fields are reusable. *)
  Cb.insert t 10 (Bytes.make 16 'c');
  checkb "reuse" true (Cb.mem t 10)

let test_cb_uses_d_disks_only () =
  let t = mk_cb () in
  check "d disks, not 2d" 15 (Pdm.disks (Cb.machine t))

let suite =
  suite
  @ [ ("dictionary.cascade_b",
       [ Alcotest.test_case "roundtrip" `Quick test_cb_roundtrip;
         Alcotest.test_case "cost profile (weaker misses)" `Quick
           test_cb_cost_profile;
         Alcotest.test_case "update and delete" `Quick test_cb_update_delete;
         Alcotest.test_case "d disks only" `Quick test_cb_uses_d_disks_only ]) ]

(* --- case (a) + direct construction (appended) --- *)

let test_case_a_direct_construction () =
  let n = 250 in
  let cfg =
    { One_probe.universe; capacity = n; degree = 9; sigma_bits = 128;
      v_factor = 3; case = One_probe.Case_a; seed = 61 }
  in
  let rng = Prng.create 62 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:n in
  let data = Array.map (fun k -> (k, Common_payload.payload 128 k)) members in
  let t = One_probe.build ~construction:`Direct ~block_words:64 cfg data in
  let machine = One_probe.machine t in
  Stats.reset (Pdm.stats machine);
  Array.iter
    (fun (k, v) ->
      match One_probe.find t k with
      | Some got ->
        Alcotest.(check string) "satellite" (Bytes.to_string v)
          (Bytes.to_string got)
      | None -> Alcotest.failf "member %d missing" k)
    data;
  Array.iter (fun k -> checkb "absent" false (One_probe.mem t k)) absent;
  check "1 I/O each" (2 * n)
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let suite =
  suite
  @ [ ("dictionary.case_a_direct",
       [ Alcotest.test_case "case (a) via direct construction" `Quick
           test_case_a_direct_construction ]) ]
