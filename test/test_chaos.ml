(* The deterministic message plane: transport fault injection,
   suspicion-based failover, idempotent retries, hedged reads — unit
   tests, qcheck properties, and the sim wiring. *)

module Transport = Pdm_cluster.Transport
module Detector = Pdm_cluster.Detector
module Cluster = Pdm_cluster.Cluster
module Topology = Pdm_cluster.Topology
module Config = Pdm_simtest.Sim_config
module Gen = Pdm_simtest.Sim_gen
module Schedule = Pdm_simtest.Sim_schedule
module Run = Pdm_simtest.Sim_run
module Explore = Pdm_simtest.Sim_explore
module Json = Pdm_simtest.Sim_json

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let val8 = Pdm_workload.Payload.value_bytes_of 8

(* --- transport --- *)

let faulty_spec ?(seed = 5) ?(drop = 0.1) ?(dup = 0.1) () =
  Transport.spec ~seed ~drop ~duplicate:dup ~reorder_window:3
    ~max_attempts:5 ~hedge_after:1 ()

(* the same spec replays the same deliveries, tick for tick *)
let test_transport_deterministic () =
  let play () =
    let tr = Transport.create (faulty_spec ()) in
    let log = ref [] in
    for op = 0 to 63 do
      Transport.set_window tr ~start:op ~len:1;
      for a = 0 to 2 do
        let d = Transport.attempt tr ~shard:(op mod 3) ~write:(op mod 2 = 0)
                  ~attempt:a in
        log := (d.Transport.request_delivered, d.Transport.replied,
                d.Transport.duplicate_lag, d.Transport.cost) :: !log
      done
    done;
    (!log, Transport.ticks tr, Transport.stats tr)
  in
  let l1, t1, s1 = play () and l2, t2, s2 = play () in
  checkb "same deliveries" true (l1 = l2);
  check "same ticks" t1 t2;
  checkb "same stats" true (s1 = s2);
  checkb "some faults fired" true
    (s1.Transport.drops > 0 || s1.Transport.timeouts > 0)

let test_transport_perfect_is_noop () =
  let tr = Transport.create Transport.perfect in
  Transport.set_window tr ~start:0 ~len:4;
  for a = 0 to 3 do
    let d = Transport.attempt tr ~shard:1 ~write:true ~attempt:a in
    checkb "delivered" true d.Transport.request_delivered;
    checkb "replied" true d.Transport.replied;
    checkb "no duplicate" true (d.Transport.duplicate_lag = None)
  done

let test_transport_pins () =
  let tr = Transport.create Transport.perfect in
  Transport.inject tr ~at:2
    { Transport.pin_shard = 0; kind = Transport.Pin_drop };
  Transport.inject tr ~at:4
    { Transport.pin_shard = 1;
      kind = Transport.Pin_partition { span = 3; symmetric = true } };
  Transport.inject tr ~at:4
    { Transport.pin_shard = 2;
      kind = Transport.Pin_partition { span = 3; symmetric = false } };
  (* before the pins: clean *)
  Transport.set_window tr ~start:0 ~len:1;
  let d = Transport.attempt tr ~shard:0 ~write:false ~attempt:0 in
  checkb "clean before pin" true d.Transport.replied;
  (* the pinned drop kills attempt 0's request, attempt 1 goes through *)
  Transport.set_window tr ~start:2 ~len:1;
  let d0 = Transport.attempt tr ~shard:0 ~write:false ~attempt:0 in
  let d1 = Transport.attempt tr ~shard:0 ~write:false ~attempt:1 in
  checkb "pinned drop loses request" false d0.Transport.request_delivered;
  checkb "retry delivered" true d1.Transport.replied;
  (* partitions open at their window and heal after the span *)
  Transport.set_window tr ~start:4 ~len:1;
  let sym = Transport.attempt tr ~shard:1 ~write:true ~attempt:0 in
  checkb "symmetric loses request" false sym.Transport.request_delivered;
  let asym = Transport.attempt tr ~shard:2 ~write:true ~attempt:0 in
  checkb "asymmetric delivers request" true asym.Transport.request_delivered;
  checkb "asymmetric loses reply" false asym.Transport.replied;
  Transport.set_window tr ~start:7 ~len:1;
  let healed = Transport.attempt tr ~shard:1 ~write:true ~attempt:0 in
  checkb "healed" true healed.Transport.replied

let test_transport_timeout_ladder () =
  let spec = faulty_spec () in
  let prev = ref 0 in
  for a = 0 to 7 do
    let t = Transport.timeout spec ~attempt:a in
    checkb "ladder monotone" true (t >= !prev);
    prev := t
  done

(* --- detector --- *)

let test_detector_suspicion () =
  let d = Detector.create () in
  checkb "fresh" false (Detector.suspected d 3);
  Detector.record_miss d 3;
  checkb "one miss not suspected" false (Detector.suspected d 3);
  Detector.record_miss d 3;
  checkb "threshold crossed" true (Detector.suspected d 3);
  check "one suspicion" 1 (Detector.suspicions d);
  Detector.record_miss d 3;
  check "still one suspicion" 1 (Detector.suspicions d);
  Detector.record_miss d 7;
  Detector.record_miss d 7;
  checkb "suspects sorted" true (Detector.suspects d = [ 3; 7 ]);
  Detector.record_reply d 3;
  checkb "reply heals" false (Detector.suspected d 3);
  check "heal counted" 1 (Detector.heals d);
  (* a reply from an unsuspected shard is not a heal *)
  Detector.record_miss d 9;
  Detector.record_reply d 9;
  check "no false heal" 1 (Detector.heals d);
  Detector.forget d 7;
  checkb "forgotten" true (Detector.suspects d = [])

(* --- qcheck properties --- *)

(* the backoff schedule is a pure function of (seed, op, attempt) *)
let prop_backoff_deterministic =
  QCheck.Test.make ~name:"backoff schedule deterministic per seed" ~count:200
    QCheck.(triple (int_bound 9999) (int_bound 999) (int_bound 8))
    (fun (seed, op, attempt) ->
      let s1 = faulty_spec ~seed () and s2 = faulty_spec ~seed () in
      let b = Transport.backoff s1 ~op ~attempt in
      b = Transport.backoff s2 ~op ~attempt
      && b >= Transport.timeout s1 ~attempt
      && Transport.backoff s1 ~op ~attempt = b)

(* no single exchange spends more than replicas * max_attempts
   transport attempts, whatever the seed and loss rate throw at it *)
let prop_retry_budget_bounded =
  QCheck.Test.make ~name:"retry budget never exceeded" ~count:25
    QCheck.(pair (int_bound 9999) (int_range 0 2))
    (fun (seed, drop10) ->
      let drop = float_of_int drop10 /. 10.0 in
      let max_attempts = 5 in
      let spec =
        Transport.spec ~seed ~drop ~duplicate:0.1 ~reorder_window:3
          ~max_attempts ~hedge_after:1 ()
      in
      let replicas = 2 in
      let c =
        Cluster.create
          ~config:
            { Cluster.default_config with
              Cluster.replicas; shard_capacity = 256; seed;
              net = Some spec }
          (Topology.standard ~shards:3)
      in
      let budget_ok = ref true in
      let attempts () =
        match Cluster.transport_stats c with
        | Some s -> s.Transport.attempts
        | None -> 0
      in
      let bound = replicas * max_attempts in
      for k = 0 to 63 do
        let before = attempts () in
        (try Cluster.insert c k (val8 k)
         with Cluster.Retries_exhausted _ -> ());
        if attempts () - before > bound then budget_ok := false
      done;
      for k = 0 to 63 do
        let before = attempts () in
        (try ignore (Cluster.find c k)
         with Cluster.Retries_exhausted _ -> ());
        if attempts () - before > bound then budget_ok := false
      done;
      !budget_ok)

(* duplicated write delivery is invisible: idempotency tokens make a
   cluster under heavy duplication answer bit-identically to one whose
   network never duplicates *)
let prop_duplicates_invisible =
  QCheck.Test.make ~name:"duplicate write delivery leaves state bit-identical"
    ~count:25
    QCheck.(int_bound 9999)
    (fun seed ->
      let build dup =
        let c =
          Cluster.create
            ~config:
              { Cluster.default_config with
                Cluster.replicas = 2; shard_capacity = 256; seed = 3;
                net =
                  Some
                    (Transport.spec ~seed ~drop:0.0 ~duplicate:dup
                       ~reorder_window:4 ~max_attempts:5 ~hedge_after:1 ()) }
            (Topology.standard ~shards:3)
        in
        (* overwrites and deletes so a late duplicate of an older write
           would be visible if it ever re-applied *)
        for k = 0 to 47 do Cluster.insert c k (val8 k) done;
        for k = 0 to 47 do
          if k mod 3 = 0 then Cluster.insert c k (val8 (k + 1000))
          else if k mod 3 = 1 then ignore (Cluster.delete c k)
        done;
        List.init 48 (fun k -> Cluster.find c k)
      in
      build 0.2 = build 0.0)

(* --- sim wiring --- *)

let net_cfg ~buggy ~seed =
  { (Config.default Config.Cluster) with
    Config.journaled = true; replicas = 2; shards = 3; seed; buggy;
    net = true; net_drop = 0.05; net_dup = 0.05; net_reorder = 3;
    net_hedge = true }

let test_sim_net_config_json () =
  let cfg = net_cfg ~buggy:false ~seed:11 in
  (match Config.of_json (Config.to_json cfg) with
   | Ok cfg' -> checkb "net config roundtrips" true (cfg = cfg')
   | Error m -> Alcotest.fail m);
  (* absent net fields parse as defaults: old repro headers stay valid *)
  (match Config.to_json { cfg with Config.net = false } with
   | Json.Obj fields ->
     let stripped =
       Json.Obj
         (List.filter
            (fun (k, _) -> not (String.length k >= 3 && String.sub k 0 3 = "net"))
            fields)
     in
     (match Config.of_json stripped with
      | Ok cfg' -> checkb "absent net fields default off" false cfg'.Config.net
      | Error m -> Alcotest.fail m)
   | _ -> Alcotest.fail "config json is not an object");
  (* net demands a replicated cluster *)
  checkb "net without replicas rejected" true
    (Config.validate { cfg with Config.replicas = 1 } <> Ok ())

let test_sim_net_schedule_json () =
  let sched =
    [ Schedule.Net_partition { at = 9; shard = 1; span = 8; symmetric = false };
      Schedule.Net_dup { at = 7; shard = 2 };
      Schedule.Net_drop { at = 3; shard = 0 } ]
  in
  (match Schedule.of_json (Schedule.to_json sched) with
   | Ok s -> checkb "net schedule roundtrips" true (Schedule.canonical sched = s)
   | Error m -> Alcotest.fail m);
  let c = Schedule.canonical sched in
  checkb "canonical sorts by op index" true
    (List.map Schedule.at c = [ 3; 7; 9 ])

let test_sim_net_clean_run () =
  let cfg = net_cfg ~buggy:false ~seed:11 in
  let ops = Gen.ops (Config.gen_spec ~count:96 cfg) in
  let r = Run.run cfg [] (Array.to_seq ops) in
  checkb "clean net run" true (Run.ok r);
  (* pinned message faults on a correct cluster never diverge either *)
  let sched =
    [ Schedule.Net_drop { at = 5; shard = 0 };
      Schedule.Net_dup { at = 11; shard = 1 };
      Schedule.Net_partition { at = 20; shard = 2; span = 8; symmetric = true } ]
  in
  let r = Run.run cfg sched (Array.to_seq ops) in
  checkb "faulted net run stays clean" true (Run.ok r)

(* the seeded token-dropping control: duplicates re-apply without
   dedup, and exploration must catch the divergence *)
let test_sim_net_buggy_caught () =
  let o = Explore.explore ~budget:120 ~count:80 (net_cfg ~buggy:true ~seed:11) in
  checkb "token dropping caught" true (o.Explore.divergent <> []);
  match o.Explore.shrunk with
  | None -> Alcotest.fail "buggy net failure did not shrink"
  | Some s ->
    checkb "shrunk case still fails" false
      (Run.ok s.Pdm_simtest.Sim_shrink.report)

(* --- availability end to end (mini E21) --- *)

let test_chaos_availability () =
  let n = 256 in
  let spec =
    Transport.spec ~seed:42 ~drop:0.05 ~duplicate:0.05 ~reorder_window:3
      ~max_attempts:6 ~hedge_after:1 ()
  in
  let c =
    Cluster.create
      ~config:
        { Cluster.default_config with
          Cluster.replicas = 2; shard_capacity = 512; seed = 42;
          net = Some spec }
      (Topology.standard ~shards:4)
  in
  for k = 0 to n - 1 do Cluster.insert c k (val8 k) done;
  (* cut one shard off mid-sweep; hedged reads keep every answer *)
  for k = 0 to n - 1 do
    if k = n / 3 then
      Cluster.inject_net c
        { Transport.pin_shard = 0;
          kind = Transport.Pin_partition { span = 60; symmetric = true } };
    match Cluster.find c k with
    | Some v -> checkb "value served" true (Bytes.equal v (val8 k))
    | None -> Alcotest.fail (Printf.sprintf "key %d unavailable" k)
  done;
  let st = Cluster.stats c in
  checkb "partition was noticed" true (st.Cluster.suspicions > 0);
  checkb "suspicion healed" true (st.Cluster.heals > 0);
  checkb "retries happened" true (st.Cluster.retries > 0);
  (match Cluster.transport_stats c with
   | Some ts ->
     check "router charge = transport ticks" ts.Transport.ticks
       st.Cluster.net_rounds
   | None -> Alcotest.fail "no transport stats");
  (* structured error payloads for the CLI guard *)
  checkb "unavailable describes" true
    (Cluster.describe (Cluster.Unavailable 5) <> None);
  checkb "retries-exhausted describes" true
    (Cluster.describe (Cluster.Retries_exhausted { key = 5; attempts = 7 })
     <> None)

let suite =
  [ ( "chaos",
      [ Alcotest.test_case "transport deterministic" `Quick
          test_transport_deterministic;
        Alcotest.test_case "perfect transport is a no-op" `Quick
          test_transport_perfect_is_noop;
        Alcotest.test_case "pins: drop + partitions" `Quick
          test_transport_pins;
        Alcotest.test_case "timeout ladder" `Quick
          test_transport_timeout_ladder;
        Alcotest.test_case "suspicion detector" `Quick test_detector_suspicion;
        Alcotest.test_case "sim net config json" `Quick
          test_sim_net_config_json;
        Alcotest.test_case "sim net schedule json" `Quick
          test_sim_net_schedule_json;
        Alcotest.test_case "sim net clean + pinned-fault runs" `Quick
          test_sim_net_clean_run;
        Alcotest.test_case "sim net buggy control caught" `Slow
          test_sim_net_buggy_caught;
        Alcotest.test_case "availability under partition" `Quick
          test_chaos_availability ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_backoff_deterministic; prop_retry_budget_bounded;
            prop_duplicates_invisible ] ) ]
