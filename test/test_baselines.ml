(* Tests for the randomized baselines: striped hash table, cuckoo,
   two-level trick, and the B-tree. *)

open Pdm_sim
module Hash_table = Pdm_baselines.Hash_table
module Cuckoo = Pdm_baselines.Cuckoo
module Two_level = Pdm_baselines.Two_level
module Btree = Pdm_baselines.Btree
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let universe = 1 lsl 22
let val8 k = Bytes.of_string (Printf.sprintf "%08d" (k mod 100_000_000))
let ios m = Stats.parallel_ios (Stats.snapshot (Pdm.stats m))

(* --- Hash table --- *)

let mk_hash ?(capacity = 400) ?(disks = 8) ?(block_words = 16) () =
  let cfg =
    Hash_table.plan ~universe ~capacity ~block_words ~disks ~value_bytes:8
      ~seed:5 ()
  in
  let machine =
    Pdm.create ~disks ~block_size:block_words
      ~blocks_per_disk:cfg.Hash_table.superblocks ()
  in
  (machine, Hash_table.create ~machine cfg)

let test_hash_roundtrip () =
  let _, h = mk_hash () in
  let rng = Prng.create 1 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:400 in
  Array.iter (fun k -> Hash_table.insert h k (val8 k)) members;
  check "size" 400 (Hash_table.size h);
  Array.iter
    (fun k ->
      Alcotest.(check string) "value" (Bytes.to_string (val8 k))
        (Bytes.to_string (Option.get (Hash_table.find h k))))
    members;
  Array.iter (fun k -> checkb "absent" false (Hash_table.mem h k)) absent

let test_hash_mostly_one_io () =
  let machine, h = mk_hash ~capacity:500 () in
  let rng = Prng.create 2 in
  let keys = Sampling.distinct rng ~universe ~count:500 in
  Array.iter (fun k -> Hash_table.insert h k (val8 k)) keys;
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Hash_table.find h k)) keys;
  let avg = float_of_int (ios machine) /. 500.0 in
  checkb (Printf.sprintf "avg lookup %.3f close to 1" avg) true (avg < 1.2)

let test_hash_update_and_delete () =
  let _, h = mk_hash () in
  Hash_table.insert h 10 (val8 1);
  Hash_table.insert h 10 (val8 2);
  check "update keeps size" 1 (Hash_table.size h);
  Alcotest.(check string) "updated" (Bytes.to_string (val8 2))
    (Bytes.to_string (Option.get (Hash_table.find h 10)));
  checkb "delete" true (Hash_table.delete h 10);
  checkb "gone" false (Hash_table.mem h 10);
  check "empty" 0 (Hash_table.size h)

let test_hash_tombstone_chains () =
  (* Deleting a key must not hide keys that probed past it. *)
  let _, h = mk_hash ~capacity:64 () in
  let rng = Prng.create 3 in
  let keys = Sampling.distinct rng ~universe ~count:64 in
  Array.iter (fun k -> Hash_table.insert h k (val8 k)) keys;
  (* Delete half, then verify the rest are all still reachable. *)
  Array.iteri (fun i k -> if i mod 2 = 0 then ignore (Hash_table.delete h k)) keys;
  Array.iteri
    (fun i k -> if i mod 2 = 1 then checkb "survivor reachable" true (Hash_table.mem h k))
    keys

let test_hash_can_degrade () =
  (* At very high load the probe chains grow: the whp caveat of the
     hashing rows in Figure 1. *)
  let cfg =
    Hash_table.plan ~utilization:0.98 ~universe ~capacity:900 ~block_words:4
      ~disks:2 ~value_bytes:8 ~seed:7 ()
  in
  let machine =
    Pdm.create ~disks:2 ~block_size:4 ~blocks_per_disk:cfg.Hash_table.superblocks ()
  in
  let h = Hash_table.create ~machine cfg in
  let rng = Prng.create 4 in
  let keys = Sampling.distinct rng ~universe ~count:880 in
  Array.iter (fun k -> Hash_table.insert h k (val8 k)) keys;
  checkb "probe chains appeared" true (Hash_table.max_probe_distance h > 0)

(* --- Cuckoo --- *)

let mk_cuckoo ?(capacity = 300) ?(disks = 8) ?(block_words = 16) () =
  let cfg =
    Cuckoo.plan ~universe ~capacity ~block_words ~disks ~value_bytes:8 ~seed:9 ()
  in
  let machine =
    Pdm.create ~disks ~block_size:block_words ~blocks_per_disk:cfg.Cuckoo.buckets ()
  in
  (machine, Cuckoo.create ~machine cfg)

let test_cuckoo_roundtrip () =
  let _, c = mk_cuckoo () in
  let rng = Prng.create 5 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  Array.iter (fun k -> Cuckoo.insert c k (val8 k)) members;
  check "size" 300 (Cuckoo.size c);
  Array.iter
    (fun k ->
      Alcotest.(check string) "value" (Bytes.to_string (val8 k))
        (Bytes.to_string (Option.get (Cuckoo.find c k))))
    members;
  Array.iter (fun k -> checkb "absent" false (Cuckoo.mem c k)) absent

let test_cuckoo_lookup_one_io () =
  let machine, c = mk_cuckoo () in
  let rng = Prng.create 6 in
  let keys = Sampling.distinct rng ~universe ~count:300 in
  Array.iter (fun k -> Cuckoo.insert c k (val8 k)) keys;
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Cuckoo.find c k)) keys;
  check "exactly 1 I/O per lookup" 300 (ios machine)

let test_cuckoo_update_delete () =
  let _, c = mk_cuckoo () in
  Cuckoo.insert c 3 (val8 1);
  Cuckoo.insert c 3 (val8 2);
  check "size" 1 (Cuckoo.size c);
  Alcotest.(check string) "updated" (Bytes.to_string (val8 2))
    (Bytes.to_string (Option.get (Cuckoo.find c 3)));
  checkb "delete" true (Cuckoo.delete c 3);
  checkb "gone" false (Cuckoo.mem c 3)

let test_cuckoo_survives_pressure () =
  (* Push utilization: kicks and possibly rehashes happen, but no keys
     are lost — at a worst-case I/O cost (the paper's point). *)
  let cfg =
    { (Cuckoo.plan ~universe ~capacity:300 ~block_words:4 ~disks:2
         ~value_bytes:8 ~seed:11 ())
      with Cuckoo.max_kicks = 8 }
  in
  let machine =
    Pdm.create ~disks:2 ~block_size:4 ~blocks_per_disk:cfg.Cuckoo.buckets ()
  in
  let c = Cuckoo.create ~machine cfg in
  let rng = Prng.create 7 in
  let keys = Sampling.distinct rng ~universe ~count:280 in
  Array.iter (fun k -> Cuckoo.insert c k (val8 k)) keys;
  Array.iter (fun k -> checkb "kept" true (Cuckoo.mem c k)) keys

(* --- Two-level --- *)

let mk_two_level ?(capacity = 300) ?(disks = 8) ?(block_words = 16) () =
  let cfg =
    Two_level.plan ~universe ~capacity ~block_words ~disks ~value_bytes:8
      ~seed:13 ()
  in
  let machine =
    Pdm.create ~disks ~block_size:block_words
      ~blocks_per_disk:(Two_level.superblocks_needed cfg ~block_words ~disks)
      ()
  in
  (machine, Two_level.create ~machine cfg)

let test_two_level_roundtrip () =
  let _, d = mk_two_level () in
  let rng = Prng.create 8 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  Array.iter (fun k -> Two_level.insert d k (val8 k)) members;
  check "size" 300 (Two_level.size d);
  Array.iter
    (fun k ->
      Alcotest.(check string) "value" (Bytes.to_string (val8 k))
        (Bytes.to_string (Option.get (Two_level.find d k))))
    members;
  Array.iter (fun k -> checkb "absent" false (Two_level.mem d k)) absent

let test_two_level_avg_near_one () =
  let machine, d = mk_two_level ~capacity:500 () in
  let rng = Prng.create 9 in
  let keys = Sampling.distinct rng ~universe ~count:500 in
  Array.iter (fun k -> Two_level.insert d k (val8 k)) keys;
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Two_level.find d k)) keys;
  let avg = float_of_int (ios machine) /. 500.0 in
  checkb (Printf.sprintf "avg %.3f = 1 + eps" avg) true (avg < 1.35 && avg >= 1.0)

let test_two_level_collisions_redirect () =
  let _, d = mk_two_level ~capacity:64 () in
  (* Force collisions by inserting more keys than slot_factor spreads
     thin; verify everything still resolves. *)
  let rng = Prng.create 10 in
  let keys = Sampling.distinct rng ~universe ~count:64 in
  Array.iter (fun k -> Two_level.insert d k (val8 k)) keys;
  Array.iter (fun k -> checkb "resolves" true (Two_level.mem d k)) keys

let test_two_level_delete_keeps_marker () =
  let _, d = mk_two_level ~capacity:200 () in
  let rng = Prng.create 11 in
  let keys = Sampling.distinct rng ~universe ~count:200 in
  Array.iter (fun k -> Two_level.insert d k (val8 k)) keys;
  (* Delete everything; remaining lookups must all miss cleanly. *)
  Array.iter (fun k -> checkb "delete" true (Two_level.delete d k)) keys;
  check "empty" 0 (Two_level.size d);
  Array.iter (fun k -> checkb "gone" false (Two_level.mem d k)) keys

(* --- B-tree --- *)

let mk_btree ?(disks = 8) ?(block_words = 16) ?(cache_levels = 0)
    ?(superblocks = 4096) () =
  let machine =
    Pdm.create ~disks ~block_size:block_words ~blocks_per_disk:superblocks ()
  in
  let t =
    Btree.create ~machine
      { Btree.universe; value_bytes = 8; cache_levels; superblocks }
  in
  (machine, t)

let test_btree_roundtrip () =
  let _, t = mk_btree () in
  let rng = Prng.create 12 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:2000 in
  Array.iter (fun k -> Btree.insert t k (val8 k)) members;
  check "size" 2000 (Btree.size t);
  Array.iter
    (fun k ->
      Alcotest.(check string) "value" (Bytes.to_string (val8 k))
        (Bytes.to_string (Option.get (Btree.find t k))))
    members;
  Array.iter (fun k -> checkb "absent" false (Btree.mem t k)) absent

let test_btree_height_logarithmic () =
  let _, t = mk_btree () in
  let rng = Prng.create 13 in
  let keys = Sampling.distinct rng ~universe ~count:5000 in
  Array.iter (fun k -> Btree.insert t k (val8 k)) keys;
  (* Fan-out >= (BD-3-1)/2 = 62: height should be about
     log_62 5000 rounded up, certainly <= 4. *)
  checkb (Printf.sprintf "height %d <= 4" (Btree.height t)) true
    (Btree.height t <= 4);
  checkb "height >= 2" true (Btree.height t >= 2)

let test_btree_lookup_costs_height () =
  let machine, t = mk_btree () in
  let rng = Prng.create 14 in
  let keys = Sampling.distinct rng ~universe ~count:3000 in
  Array.iter (fun k -> Btree.insert t k (val8 k)) keys;
  Stats.reset (Pdm.stats machine);
  ignore (Btree.find t keys.(42));
  check "lookup = height I/Os" (Btree.height t) (ios machine)

let test_btree_cache_levels () =
  let machine, t = mk_btree ~cache_levels:1 () in
  let rng = Prng.create 15 in
  let keys = Sampling.distinct rng ~universe ~count:3000 in
  Array.iter (fun k -> Btree.insert t k (val8 k)) keys;
  Stats.reset (Pdm.stats machine);
  ignore (Btree.find t keys.(7));
  check "root cached: height - 1 I/Os" (Btree.height t - 1) (ios machine)

let test_btree_ordered_iteration () =
  let _, t = mk_btree () in
  let keys = [| 50; 10; 30; 20; 40; 60; 5 |] in
  Array.iter (fun k -> Btree.insert t k (val8 k)) keys;
  let got = List.map fst (Btree.range t ~lo:0 ~hi:100) in
  Alcotest.(check (list int)) "sorted" [ 5; 10; 20; 30; 40; 50; 60 ] got;
  let mid = List.map fst (Btree.range t ~lo:15 ~hi:45) in
  Alcotest.(check (list int)) "window" [ 20; 30; 40 ] mid

let test_btree_range_large () =
  let _, t = mk_btree () in
  for k = 0 to 999 do Btree.insert t (k * 3) (val8 k) done;
  let got = Btree.range t ~lo:0 ~hi:3000 in
  check "all present in order" 1000 (List.length got);
  let sorted = List.map fst got in
  Alcotest.(check (list int)) "ascending" (List.init 1000 (fun i -> 3 * i)) sorted

let test_btree_update_delete () =
  let _, t = mk_btree () in
  Btree.insert t 5 (val8 1);
  Btree.insert t 5 (val8 2);
  check "update keeps size" 1 (Btree.size t);
  Alcotest.(check string) "updated" (Bytes.to_string (val8 2))
    (Bytes.to_string (Option.get (Btree.find t 5)));
  checkb "delete" true (Btree.delete t 5);
  checkb "gone" false (Btree.mem t 5);
  checkb "re-delete misses" false (Btree.delete t 5)

let test_btree_sequential_inserts () =
  (* Ascending inserts are the worst case for naive split logic. *)
  let _, t = mk_btree () in
  for k = 0 to 4999 do Btree.insert t k (val8 k) done;
  check "size" 5000 (Btree.size t);
  for k = 0 to 4999 do
    if not (Btree.mem t k) then Alcotest.failf "lost %d" k
  done

let suite =
  let tc = Alcotest.test_case in
  [ ("baselines.hash_table",
     [ tc "roundtrip" `Quick test_hash_roundtrip;
       tc "mostly 1 I/O" `Quick test_hash_mostly_one_io;
       tc "update and delete" `Quick test_hash_update_and_delete;
       tc "tombstones keep chains" `Quick test_hash_tombstone_chains;
       tc "degrades at high load" `Quick test_hash_can_degrade ]);
    ("baselines.cuckoo",
     [ tc "roundtrip" `Quick test_cuckoo_roundtrip;
       tc "lookup = 1 I/O" `Quick test_cuckoo_lookup_one_io;
       tc "update and delete" `Quick test_cuckoo_update_delete;
       tc "survives pressure" `Quick test_cuckoo_survives_pressure ]);
    ("baselines.two_level",
     [ tc "roundtrip" `Quick test_two_level_roundtrip;
       tc "avg near 1 I/O" `Quick test_two_level_avg_near_one;
       tc "collisions redirect" `Quick test_two_level_collisions_redirect;
       tc "delete keeps marker" `Quick test_two_level_delete_keeps_marker ]);
    ("baselines.btree",
     [ tc "roundtrip" `Quick test_btree_roundtrip;
       tc "height logarithmic" `Quick test_btree_height_logarithmic;
       tc "lookup costs height" `Quick test_btree_lookup_costs_height;
       tc "cache levels" `Quick test_btree_cache_levels;
       tc "ordered iteration" `Quick test_btree_ordered_iteration;
       tc "large range" `Quick test_btree_range_large;
       tc "update and delete" `Quick test_btree_update_delete;
       tc "sequential inserts" `Quick test_btree_sequential_inserts ]) ]
