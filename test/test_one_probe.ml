(* Tests for the field store, the Theorem 6 field codecs, and the
   one-probe static dictionary of Section 4.2. *)

open Pdm_sim
module Field_store = Pdm_dictionary.Field_store
module Field_codec = Pdm_dictionary.Field_codec
module One_probe = Pdm_dictionary.One_probe_static
module Seeded = Pdm_expander.Seeded
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Field_store --- *)

let mk_store ?(u = 10_000) ?(v = 240) ?(d = 8) ?(field_bits = 40)
    ?(block_words = 16) () =
  let graph = Seeded.striped ~seed:1 ~u ~v ~d in
  let field_words = Pdm_dictionary.Codec.words_for_bits field_bits in
  let fpb = max 1 (block_words / field_words) in
  let machine =
    Pdm.create ~disks:d ~block_size:block_words
      ~blocks_per_disk:(max 1 ((v / d / fpb) + 1)) ()
  in
  let fs =
    Field_store.create ~machine ~disk_offset:0 ~block_offset:0 ~graph
      ~field_bits
  in
  (machine, fs)

let field_value tag fs =
  let len = (Field_store.field_bits fs + 7) / 8 in
  Bytes.init len (fun i -> Char.chr ((tag + i) land 0xff))

let mask_last_bits fs b =
  (* Bits beyond field_bits come back as zero; zero them for compare. *)
  let bits = Field_store.field_bits fs in
  let out = Bytes.copy b in
  let total = 8 * Bytes.length b in
  for i = bits to total - 1 do
    let byte = i lsr 3 and off = i land 7 in
    Bytes.set out byte
      (Char.chr (Char.code (Bytes.get out byte) land lnot (0x80 lsr off) land 0xff))
  done;
  out

let test_fs_write_read () =
  let _, fs = mk_store () in
  let v0 = field_value 3 fs and v1 = field_value 90 fs in
  Field_store.write_fields fs [ (0, Some v0); (100, Some v1) ];
  (match Field_store.read_fields fs [ 0; 100; 7 ] with
   | [ (0, Some a); (100, Some b); (7, None) ] ->
     Alcotest.(check string) "field 0" (Bytes.to_string (mask_last_bits fs v0)) (Bytes.to_string a);
     Alcotest.(check string) "field 100" (Bytes.to_string (mask_last_bits fs v1)) (Bytes.to_string b)
   | _ -> Alcotest.fail "unexpected read_fields result")

let test_fs_clear () =
  let _, fs = mk_store () in
  Field_store.write_fields fs [ (5, Some (field_value 1 fs)) ];
  Field_store.write_fields fs [ (5, None) ];
  match Field_store.read_fields fs [ 5 ] with
  | [ (5, None) ] -> ()
  | _ -> Alcotest.fail "field not cleared"

let test_fs_lookup_is_one_io () =
  let machine, fs = mk_store () in
  Stats.reset (Pdm.stats machine);
  let addrs = Field_store.addresses fs 1234 in
  check "d addresses" 8 (List.length addrs);
  let _ = Pdm.read machine addrs in
  check "one parallel I/O" 1
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let test_fs_neighbors_same_block_share_io () =
  (* Fields in the same block on the same disk are fetched together. *)
  let machine, fs = mk_store () in
  Stats.reset (Pdm.stats machine);
  ignore (Field_store.read_fields fs [ 0; 1; 2 ]);
  (* fields 0,1,2 are in stripe 0 and likely the same block (fpb=8). *)
  let s = Stats.snapshot (Pdm.stats machine) in
  check "1 block read" 1 s.Stats.block_reads

let test_fs_preserves_block_sharing () =
  (* Writing one field must not disturb its block-mates. *)
  let _, fs = mk_store () in
  let a = field_value 10 fs and b = field_value 20 fs in
  Field_store.write_fields fs [ (0, Some a) ];
  Field_store.write_fields fs [ (1, Some b) ];
  match Field_store.read_fields fs [ 0; 1 ] with
  | [ (0, Some x); (1, Some y) ] ->
    Alcotest.(check string) "a survived" (Bytes.to_string (mask_last_bits fs a)) (Bytes.to_string x);
    Alcotest.(check string) "b written" (Bytes.to_string (mask_last_bits fs b)) (Bytes.to_string y)
  | _ -> Alcotest.fail "sharing broken"

let test_fs_bulk_write () =
  let machine, fs = mk_store () in
  let updates = List.init 60 (fun i -> (i * 4, field_value i fs)) in
  Stats.reset (Pdm.stats machine);
  Field_store.bulk_write fs updates;
  check "occupied" 60 (Field_store.count_occupied fs);
  checkb "duplicate rejected" true
    (try
       Field_store.bulk_write fs [ (0, field_value 1 fs); (0, field_value 2 fs) ];
       false
     with Invalid_argument _ -> true)

let test_fs_field_too_big () =
  checkb "field must fit block" true
    (try
       ignore (mk_store ~field_bits:(33 * 16) ~block_words:16 ());
       false
     with Invalid_argument _ -> true)

(* --- Field_codec, case (b) --- *)

let test_codec_b_roundtrip () =
  (* 4 assigned fields out of d = 7 is a strict majority. *)
  let field_bits = 30 and id_bits = 10 and sigma_bits = 64 and d = 7 in
  let satellite = Bytes.of_string "IOdictAB" in
  let indices = [ 1; 3; 4; 6 ] in
  let enc =
    Field_codec.encode_b ~field_bits ~id_bits ~id:513 ~satellite ~sigma_bits
      ~indices
  in
  check "four fields" 4 (List.length enc);
  let get i = List.assoc_opt i enc in
  match Field_codec.decode_b ~field_bits ~id_bits ~sigma_bits ~d get with
  | Some (id, merged) ->
    check "id" 513 id;
    Alcotest.(check string) "satellite" "IOdictAB" (Bytes.to_string merged)
  | None -> Alcotest.fail "decode_b failed"

let test_codec_b_no_majority () =
  let field_bits = 30 and id_bits = 10 and sigma_bits = 16 and d = 8 in
  (* Three of eight fields share an id: not a strict majority. *)
  let satellite = Bytes.of_string "zz" in
  let enc =
    Field_codec.encode_b ~field_bits ~id_bits ~id:7 ~satellite ~sigma_bits
      ~indices:[ 0; 1; 2 ]
  in
  let get i = List.assoc_opt i enc in
  checkb "no majority -> None" true
    (Field_codec.decode_b ~field_bits ~id_bits ~sigma_bits ~d get = None)

let test_codec_b_mixed_ids () =
  (* A majority id wins even when other fields hold a different id. *)
  let field_bits = 26 and id_bits = 10 and sigma_bits = 32 and d = 7 in
  let own =
    Field_codec.encode_b ~field_bits ~id_bits ~id:11 ~satellite:(Bytes.of_string "ABCD")
      ~sigma_bits ~indices:[ 0; 2; 4; 5 ]
  in
  let other =
    Field_codec.encode_b ~field_bits ~id_bits ~id:99 ~satellite:(Bytes.of_string "XY")
      ~sigma_bits:16 ~indices:[ 1; 6 ]
  in
  let all = own @ other in
  let get i = List.assoc_opt i all in
  match Field_codec.decode_b ~field_bits ~id_bits ~sigma_bits ~d get with
  | Some (id, merged) ->
    check "majority id" 11 id;
    Alcotest.(check string) "clean merge" "ABCD" (Bytes.to_string merged)
  | None -> Alcotest.fail "majority not found"

let test_codec_b_capacity_checked () =
  checkb "capacity" true
    (try
       ignore
         (Field_codec.encode_b ~field_bits:12 ~id_bits:10 ~id:0
            ~satellite:(Bytes.of_string "abcd") ~sigma_bits:32 ~indices:[ 0; 1 ]);
       false
     with Invalid_argument _ -> true)

(* --- Field_codec, case (a) --- *)

let test_codec_a_roundtrip () =
  let field_bits = 40 and sigma_bits = 96 in
  let satellite = Bytes.of_string "twelve bytes" in
  let indices = [ 0; 2; 3; 7 ] in
  let enc = Field_codec.encode_a ~field_bits ~indices ~satellite ~sigma_bits in
  let get i = List.assoc_opt i enc in
  match Field_codec.decode_a ~field_bits ~head:0 ~sigma_bits get with
  | Some merged ->
    Alcotest.(check string) "satellite" "twelve bytes" (Bytes.to_string merged)
  | None -> Alcotest.fail "decode_a failed"

let test_codec_a_pointer_overhead () =
  (* Pointer bits: deltas (2 + 1 + 4 ones) + 4 separators = 11. *)
  let indices = [ 0; 2; 3; 7 ] in
  check "capacity" ((4 * 40) - 11)
    (Field_codec.a_capacity_bits ~field_bits:40 ~indices)

let test_codec_a_missing_field () =
  let field_bits = 40 and sigma_bits = 64 in
  let enc =
    Field_codec.encode_a ~field_bits ~indices:[ 1; 4 ]
      ~satellite:(Bytes.of_string "IOdictAB") ~sigma_bits
  in
  (* Drop the tail field: decode must fail gracefully. *)
  let get i = if i = 1 then List.assoc_opt i enc else None in
  checkb "missing tail" true
    (Field_codec.decode_a ~field_bits ~head:1 ~sigma_bits get = None);
  checkb "missing head" true
    (Field_codec.decode_a ~field_bits ~head:4 ~sigma_bits get = None)

let test_codec_a_single_field () =
  let enc =
    Field_codec.encode_a ~field_bits:20 ~indices:[ 5 ]
      ~satellite:(Bytes.of_string "ab") ~sigma_bits:16
  in
  check "one field" 1 (List.length enc);
  let get i = List.assoc_opt i enc in
  match Field_codec.decode_a ~field_bits:20 ~head:5 ~sigma_bits:16 get with
  | Some b -> Alcotest.(check string) "payload" "ab" (Bytes.to_string b)
  | None -> Alcotest.fail "single-field decode failed"

let test_codec_a_capacity_checked () =
  checkb "too small" true
    (try
       ignore
         (Field_codec.encode_a ~field_bits:10 ~indices:[ 0; 1 ]
            ~satellite:(Bytes.of_string "abcd") ~sigma_bits:32);
       false
     with Invalid_argument _ -> true)

let prop_codec_a_random =
  QCheck.Test.make ~name:"case (a) roundtrip on random index sets" ~count:100
    QCheck.(pair (int_range 2 10) small_string)
    (fun (count, payload) ->
      QCheck.assume (String.length payload >= 1);
      let d = 16 in
      let count = min count d in
      let rng = Prng.create (Hashtbl.hash (count, payload)) in
      let indices =
        Array.to_list (Sampling.distinct rng ~universe:d ~count)
        |> List.sort compare
      in
      let sigma_bits = 8 * String.length payload in
      let field_bits = max 24 ((sigma_bits / count) + d + 2) in
      let enc =
        Field_codec.encode_a ~field_bits ~indices
          ~satellite:(Bytes.of_string payload) ~sigma_bits
      in
      let get i = List.assoc_opt i enc in
      Field_codec.decode_a ~field_bits ~head:(List.hd indices) ~sigma_bits get
      = Some (Bytes.of_string payload))

(* --- One_probe_static --- *)

let universe = 1 lsl 22

let mk_config ?(capacity = 300) ?(degree = 9) ?(sigma_bits = 128)
    ?(case = One_probe.Case_b) () =
  { One_probe.universe; capacity; degree; sigma_bits; v_factor = 3; case;
    seed = 17 }

let dataset ?(seed = 5) cfg n =
  let rng = Prng.create seed in
  let sigma_bytes = (cfg.One_probe.sigma_bits + 7) / 8 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:n in
  let data =
    Array.map
      (fun k ->
        (k, Bytes.init sigma_bytes (fun i -> Char.chr ((k + (i * 7)) land 0xff))))
      members
  in
  (data, absent)

let test_one_probe_b_roundtrip () =
  let cfg = mk_config () in
  let data, absent = dataset cfg 300 in
  let t = One_probe.build ~block_words:64 cfg data in
  Array.iter
    (fun (k, v) ->
      match One_probe.find t k with
      | Some got -> Alcotest.(check string) "satellite" (Bytes.to_string v) (Bytes.to_string got)
      | None -> Alcotest.failf "member %d missing" k)
    data;
  Array.iter
    (fun k -> checkb "absent" false (One_probe.mem t k))
    absent

let test_one_probe_a_roundtrip () =
  let cfg = mk_config ~case:One_probe.Case_a () in
  let data, absent = dataset cfg 300 in
  let t = One_probe.build ~block_words:64 cfg data in
  Array.iter
    (fun (k, v) ->
      match One_probe.find t k with
      | Some got -> Alcotest.(check string) "satellite" (Bytes.to_string v) (Bytes.to_string got)
      | None -> Alcotest.failf "member %d missing" k)
    data;
  Array.iter (fun k -> checkb "absent" false (One_probe.mem t k)) absent

let test_one_probe_single_io () =
  List.iter
    (fun case ->
      let cfg = mk_config ~case () in
      let data, absent = dataset cfg 200 in
      let t = One_probe.build ~block_words:64 cfg data in
      let machine = One_probe.machine t in
      Stats.reset (Pdm.stats machine);
      Array.iter (fun (k, _) -> ignore (One_probe.find t k)) data;
      Array.iter (fun k -> ignore (One_probe.find t k)) absent;
      let s = Stats.snapshot (Pdm.stats machine) in
      check "exactly 1 I/O per lookup"
        (Array.length data + Array.length absent)
        (Stats.parallel_ios s))
    [ One_probe.Case_b; One_probe.Case_a ]

let test_one_probe_construction_near_sort () =
  let cfg = mk_config ~capacity:500 () in
  let data, _ = dataset cfg 500 in
  let t = One_probe.build ~block_words:64 cfg data in
  let r = One_probe.report t in
  checkb "peeling terminates quickly" true (r.One_probe.peel_rounds <= 12);
  checkb
    (Printf.sprintf "construction %d within constant of sort %d"
       r.One_probe.construction_ios r.One_probe.sort_nd_ios)
    true
    (r.One_probe.construction_ios <= 40 * r.One_probe.sort_nd_ios)

let test_one_probe_space_formula () =
  (* Case (b) space: v fields of (lg n + ceil(sigma / (2d/3))) bits. *)
  let cfg = mk_config ~capacity:200 () in
  let data, _ = dataset cfg 200 in
  let t = One_probe.build ~block_words:64 cfg data in
  let r = One_probe.report t in
  let d = cfg.One_probe.degree in
  let v = 3 * cfg.One_probe.capacity * d in
  let expected_field_bits = 8 (* lg 200 *) + (128 / 6) + 1 in
  check "field bits" expected_field_bits r.One_probe.field_bits;
  check "space bits" (v * expected_field_bits) r.One_probe.space_bits

let test_one_probe_duplicate_keys_rejected () =
  let cfg = mk_config ~capacity:10 () in
  let payload = Bytes.make 16 'x' in
  checkb "duplicates" true
    (try
       ignore (One_probe.build ~block_words:64 cfg [| (1, payload); (1, payload) |]);
       false
     with Invalid_argument _ -> true)

let test_one_probe_no_false_positive_satellites () =
  (* Lookups of absent keys must not fabricate data even under heavy
     occupancy. *)
  let cfg = mk_config ~capacity:400 ~degree:12 () in
  let data, absent = dataset ~seed:11 cfg 400 in
  let t = One_probe.build ~block_words:64 cfg data in
  let wrong = ref 0 in
  Array.iter (fun k -> if One_probe.mem t k then incr wrong) absent;
  check "no false positives" 0 !wrong

let test_one_probe_deterministic () =
  let cfg = mk_config () in
  let data, _ = dataset cfg 100 in
  let t1 = One_probe.build ~block_words:64 cfg data in
  let t2 = One_probe.build ~block_words:64 cfg data in
  Array.iter
    (fun (k, _) ->
      Alcotest.(check (option string)) "same answers"
        (Option.map Bytes.to_string (One_probe.find t1 k))
        (Option.map Bytes.to_string (One_probe.find t2 k)))
    data

let suite =
  let tc = Alcotest.test_case in
  [ ("dictionary.field_store",
     [ tc "write/read" `Quick test_fs_write_read;
       tc "clear" `Quick test_fs_clear;
       tc "lookup is one I/O" `Quick test_fs_lookup_is_one_io;
       tc "block sharing on read" `Quick test_fs_neighbors_same_block_share_io;
       tc "block sharing on write" `Quick test_fs_preserves_block_sharing;
       tc "bulk write" `Quick test_fs_bulk_write;
       tc "field must fit block" `Quick test_fs_field_too_big ]);
    ("dictionary.field_codec",
     [ tc "case b roundtrip" `Quick test_codec_b_roundtrip;
       tc "case b no majority" `Quick test_codec_b_no_majority;
       tc "case b mixed ids" `Quick test_codec_b_mixed_ids;
       tc "case b capacity" `Quick test_codec_b_capacity_checked;
       tc "case a roundtrip" `Quick test_codec_a_roundtrip;
       tc "case a pointer overhead" `Quick test_codec_a_pointer_overhead;
       tc "case a missing field" `Quick test_codec_a_missing_field;
       tc "case a single field" `Quick test_codec_a_single_field;
       tc "case a capacity" `Quick test_codec_a_capacity_checked;
       QCheck_alcotest.to_alcotest prop_codec_a_random ]);
    ("dictionary.one_probe",
     [ tc "case b roundtrip" `Quick test_one_probe_b_roundtrip;
       tc "case a roundtrip" `Quick test_one_probe_a_roundtrip;
       tc "lookups are single I/O" `Quick test_one_probe_single_io;
       tc "construction near sort cost" `Quick test_one_probe_construction_near_sort;
       tc "space formula (case b)" `Quick test_one_probe_space_formula;
       tc "duplicate keys rejected" `Quick test_one_probe_duplicate_keys_rejected;
       tc "no false positives" `Quick test_one_probe_no_false_positive_satellites;
       tc "deterministic" `Quick test_one_probe_deterministic ]) ]
