(* Tests for the robustness subsystem: replicated placement with
   failover, the checksum envelope, disk death and scrub/repair, the
   write-ahead journal with crash injection, and the journaled
   dictionary update paths. *)

open Pdm_sim
module Codec = Pdm_dictionary.Codec
module Checksum = Pdm_dictionary.Codec.Checksum
module Basic = Pdm_dictionary.Basic_dict
module One_probe = Pdm_dictionary.One_probe_dynamic
module Cascade = Pdm_dictionary.Dynamic_cascade
module Repair_exp = Pdm_experiments.Repair_exp

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let ios t = Stats.parallel_ios (Stats.snapshot (Pdm.stats t))

let block_of t xs =
  let b = Array.make (Pdm.block_size t) None in
  List.iteri (fun i x -> b.(i) <- Some x) xs;
  b

let mk ?faults ?(replicas = 1) ?(spares = 0) ?integrity ?(disks = 4)
    ?(block_size = 8) ?(blocks = 16) () =
  Pdm.create ?faults ~replicas ~spares ?integrity ~disks ~block_size
    ~blocks_per_disk:blocks ()

(* --- replicated placement --- *)

let test_replicated_roundtrip () =
  let t : int Pdm.t = mk ~replicas:2 () in
  check "replicas" 2 (Pdm.replicas t);
  check "physical = logical" 4 (Pdm.physical_disks t);
  let a = { Pdm.disk = 1; block = 3 } in
  Pdm.write_one t a (block_of t [ 42 ]);
  check "both replicas allocated" 2 (Pdm.allocated_blocks t);
  Alcotest.(check (option int)) "reads back" (Some 42) (Pdm.read_one t a).(0)

let test_replicated_read_cost_matches_plain () =
  (* Healthy replicated reads prefer replica 0, which sits at the
     plain machine's addresses: same blocks, same rounds. *)
  let addrs =
    [ { Pdm.disk = 0; block = 0 }; { Pdm.disk = 0; block = 1 };
      { Pdm.disk = 1; block = 0 }; { Pdm.disk = 3; block = 5 } ]
  in
  let run t =
    List.iter (fun a -> Pdm.poke t a (block_of t [ a.Pdm.block ])) addrs;
    Stats.reset (Pdm.stats t);
    ignore (Pdm.read t addrs);
    ios t
  in
  check "same read rounds" (run (mk ())) (run (mk ~replicas:2 ()))

let test_kill_disk_failover () =
  let t : int Pdm.t = mk ~replicas:2 () in
  let a = { Pdm.disk = 2; block = 0 } in
  Pdm.write_one t a (block_of t [ 7 ]);
  Stats.reset (Pdm.stats t);
  Pdm.kill_disk t 2;
  checkb "health cache sees it" true (Pdm.disk_down t 2);
  (* The physical platter is destroyed — though [Pdm.peek] still
     answers from the surviving replica on disk 3. *)
  checkb "platter gone" true ((Pdm.backend t 2).Backend.peek 0 = None);
  checkb "peek serves the survivor" true
    (not (Array.for_all Option.is_none (Pdm.peek t a)));
  (* Known-down disk: the read goes straight to the surviving replica
     on disk 3 — no discovery round wasted. *)
  Alcotest.(check (option int)) "failover answer" (Some 7)
    (Pdm.read_one t a).(0);
  check "one round (health cache)" 1 (ios t)

let test_degraded_discovery_bounded () =
  (* A Fault-failed disk is discovered by the first failing transfer:
     that read pays one failover pass, later reads go straight to the
     survivor. *)
  let faults = Fault.spec ~fail:[ 1 ] () in
  let t : int Pdm.t = mk ~replicas:2 ~faults () in
  let a = { Pdm.disk = 1; block = 4 } in
  Pdm.poke t a (block_of t [ 9 ]);
  checkb "not yet observed" false (Pdm.disk_down t 1);
  Alcotest.(check (option int)) "first read fails over" (Some 9)
    (Pdm.read_one t a).(0);
  let discovery = ios t in
  checkb "discovery <= 2x healthy" true (discovery <= 2);
  checkb "now observed" true (Pdm.disk_down t 1);
  Alcotest.(check (option int)) "second read" (Some 9) (Pdm.read_one t a).(0);
  check "steady state: 1 round" (discovery + 1) (ios t)

let test_write_survives_dead_replica () =
  let t : int Pdm.t = mk ~replicas:2 () in
  let a = { Pdm.disk = 0; block = 0 } in
  Pdm.kill_disk t 1;
  (* Replica 1 of disk-0 blocks lives on disk 1 — dead. The write
     still lands on replica 0. *)
  Pdm.write_one t a (block_of t [ 5 ]);
  Alcotest.(check (option int)) "survivor serves" (Some 5)
    (Pdm.read_one t a).(0);
  (* With both replica homes dead the write must raise. *)
  Pdm.kill_disk t 0;
  checkb "no replica left: raises" true
    (try
       Pdm.write_one t a (block_of t [ 6 ]);
       false
     with Backend.Disk_failed _ -> true)

let test_all_replicas_dead_raises () =
  let t : int Pdm.t = mk ~replicas:2 () in
  let a = { Pdm.disk = 0; block = 2 } in
  Pdm.write_one t a (block_of t [ 1 ]);
  Pdm.kill_disk t 0;
  Pdm.kill_disk t 1;
  checkb "read raises Disk_failed" true
    (try
       ignore (Pdm.read_one t a);
       false
     with Backend.Disk_failed _ -> true)

(* Property (satellite): killing any <= r - 1 disks leaves every
   lookup answer identical to the fault-free machine. *)
let prop_availability_under_r_minus_1_failures =
  QCheck.Test.make ~name:"<= r-1 dead disks: answers unchanged" ~count:60
    QCheck.(triple (int_range 2 3) (int_bound 999) (int_bound 9999))
    (fun (r, kill_seed, data_seed) ->
      let disks = 5 and blocks = 6 in
      let reference : int Pdm.t = mk ~disks ~blocks () in
      let t : int Pdm.t = mk ~replicas:r ~spares:1 ~disks ~blocks () in
      let rng = Pdm_util.Prng.create data_seed in
      for d = 0 to disks - 1 do
        for b = 0 to blocks - 1 do
          if Pdm_util.Prng.int rng 3 > 0 then begin
            let v = Pdm_util.Prng.int rng 1_000_000 in
            let a = { Pdm.disk = d; block = b } in
            Pdm.write_one reference a (block_of reference [ v ]);
            Pdm.write_one t a (block_of t [ v ])
          end
        done
      done;
      (* Kill r - 1 distinct disks chosen by the seed. *)
      let krng = Pdm_util.Prng.create kill_seed in
      let killed = ref [] in
      while List.length !killed < r - 1 do
        let d = Pdm_util.Prng.int krng disks in
        if not (List.mem d !killed) then begin
          Pdm.kill_disk t d;
          killed := d :: !killed
        end
      done;
      (* Every block still answers exactly as the fault-free machine:
         replicas of one logical block sit on r consecutive disks, so
         r - 1 dead disks always leave a survivor. *)
      List.for_all
        (fun a -> Pdm.read_one t a = Pdm.read_one reference a)
        (List.concat_map
           (fun d -> List.init blocks (fun b -> { Pdm.disk = d; block = b }))
           (List.init disks (fun d -> d))))

(* --- checksum envelope --- *)

let test_checksum_seal_check () =
  let payload = [| Some 3; None; Some 0; Some (-17) |] in
  let sealed = Checksum.seal payload in
  check "one extra cell" (Array.length payload + 1) (Array.length sealed);
  checkb "roundtrip" true (Checksum.check sealed = Some payload);
  (* Any single-cell change is caught... *)
  for i = 0 to Array.length sealed - 1 do
    let bad = Array.copy sealed in
    bad.(i) <- (match bad.(i) with
                | Some v -> Some (v + 1)
                | None -> Some 0);
    checkb (Printf.sprintf "cell %d change detected" i) true
      (Checksum.check bad = None)
  done;
  (* ...and so is swapping two cells (position-sensitive sum). *)
  let swapped = Array.copy sealed in
  swapped.(0) <- sealed.(2);
  swapped.(2) <- sealed.(0);
  checkb "swap detected" true (Checksum.check swapped = None);
  (* None <-> Some 0 must differ. *)
  let zeroed = Array.copy sealed in
  zeroed.(1) <- Some 0;
  checkb "None vs Some 0 detected" true (Checksum.check zeroed = None)

let test_latent_rot_failover () =
  let t : int Pdm.t = mk ~replicas:2 ~integrity:Checksum.integrity () in
  let a = { Pdm.disk = 0; block = 1 } in
  Pdm.write_one t a (block_of t [ 11; 22 ]);
  Stats.reset (Pdm.stats t);
  Pdm.damage_stored t a ~replica:0;
  (* The damaged replica fails its checksum; the read fails over. *)
  let b = Pdm.read_one t a in
  Alcotest.(check (option int)) "intact answer" (Some 11) b.(0);
  checkb "paid a failover round" true (ios t >= 2);
  (* Rot on both replicas: nothing intact left. The exception names
     the physical replica that failed last, with the current round. *)
  Pdm.damage_stored t a ~replica:1;
  checkb "raises Corrupt_block" true
    (try
       ignore (Pdm.read_one t a);
       false
     with Backend.Corrupt_block { disk; block; round } ->
       disk >= 0 && block >= 0 && round > 0)

let test_wire_corruption_retried () =
  (* Unreplicated but checksummed: wire corruption (per-attempt) is
     detected and retried until a clean attempt lands. *)
  let faults = Fault.spec ~seed:3 ~max_retries:32 ~corrupt:[ (0, 0.5) ] () in
  let t : int Pdm.t = mk ~faults ~integrity:Checksum.integrity () in
  for b = 0 to 15 do
    Pdm.poke t { Pdm.disk = 0; block = b } (block_of t [ b * 7 ])
  done;
  Stats.reset (Pdm.stats t);
  for b = 0 to 15 do
    Alcotest.(check (option int))
      (Printf.sprintf "block %d correct" b)
      (Some (b * 7))
      (Pdm.read_one t { Pdm.disk = 0; block = b }).(0)
  done;
  checkb "corruption charged retries" true (ios t > 16)

let test_corruption_undetected_without_integrity () =
  (* The same wire corruption on an envelope-free machine silently
     returns mangled data — the reason the envelope exists. *)
  let faults = Fault.spec ~seed:3 ~corrupt:[ (0, 1.0) ] () in
  let t : int Pdm.t = mk ~faults () in
  let a = { Pdm.disk = 0; block = 0 } in
  Pdm.poke t a (block_of t [ 1; 2; 3 ]);
  checkb "mangled data delivered" true
    (Pdm.read_one t a <> Pdm.peek t a)

(* --- scrub and repair --- *)

let test_scrub_repairs_rot_in_place () =
  let t : int Pdm.t = mk ~replicas:2 ~integrity:Checksum.integrity () in
  for b = 0 to 7 do
    Pdm.write_one t { Pdm.disk = 0; block = b } (block_of t [ b ])
  done;
  for b = 0 to 2 do
    Pdm.damage_stored t { Pdm.disk = 0; block = b } ~replica:0
  done;
  let r = Pdm.scrub t in
  check "scanned" 8 r.Pdm.scanned_blocks;
  check "corrupt found" 3 r.Pdm.corrupt_replicas;
  check "repaired" 3 r.Pdm.repaired_replicas;
  check "in place, not remapped" 0 r.Pdm.remapped_replicas;
  check "nothing lost" 0 r.Pdm.lost_blocks;
  checkb "scan I/O charged" true (r.Pdm.scan_rounds > 0);
  checkb "repair I/O charged" true (r.Pdm.repair_rounds > 0);
  let r2 = Pdm.scrub t in
  check "verify: all intact" 16 r2.Pdm.intact_replicas;
  check "verify: nothing to repair" 0 r2.Pdm.repaired_replicas;
  check "verify: free of repair I/O" 0 r2.Pdm.repair_rounds

let test_scrub_rereplicates_onto_spare () =
  let t : int Pdm.t =
    mk ~replicas:2 ~spares:1 ~integrity:Checksum.integrity ()
  in
  for d = 0 to 3 do
    for b = 0 to 3 do
      Pdm.write_one t { Pdm.disk = d; block = b } (block_of t [ (10 * d) + b ])
    done
  done;
  Pdm.kill_disk t 2;
  let r = Pdm.scrub t in
  (* Disk 2 held replica 0 of its own 4 blocks and replica 1 of disk
     1's 4 blocks: 8 missing replicas, all re-homed on the spare. *)
  check "missing" 8 r.Pdm.missing_replicas;
  check "repaired" 8 r.Pdm.repaired_replicas;
  check "remapped to spare" 8 r.Pdm.remapped_replicas;
  check "nothing lost" 0 r.Pdm.lost_blocks;
  check "machine-level remap count" 8 (Pdm.remapped_replicas t);
  (* Full replication restored: kill another disk, answers survive. *)
  Pdm.kill_disk t 1;
  for d = 0 to 3 do
    for b = 0 to 3 do
      Alcotest.(check (option int))
        (Printf.sprintf "disk %d block %d alive" d b)
        (Some ((10 * d) + b))
        (Pdm.read_one t { Pdm.disk = d; block = b }).(0)
    done
  done;
  let r2 = Pdm.scrub t in
  checkb "second death repairable too" true
    (r2.Pdm.lost_blocks = 0 && r2.Pdm.unrepairable_replicas = 0)

let test_scrub_without_spare_reports_unrepairable () =
  let t : int Pdm.t = mk ~replicas:2 ~spares:0 () in
  let a = { Pdm.disk = 0; block = 0 } in
  Pdm.write_one t a (block_of t [ 3 ]);
  Pdm.kill_disk t 0;
  let r = Pdm.scrub t in
  check "missing seen" 1 r.Pdm.missing_replicas;
  check "nowhere to put it" 1 r.Pdm.unrepairable_replicas;
  check "survivor keeps the block" 0 r.Pdm.lost_blocks;
  Alcotest.(check (option int)) "still readable" (Some 3)
    (Pdm.read_one t a).(0)

(* --- write-ahead journal --- *)

let jm ?(disks = 4) ?(block_size = 8) () =
  (* Each journal entry costs block_size + 2 cells, so a capacity of
     12 blocks comfortably holds the <= 6-entry batches used here. *)
  let data_rows = 8 and jcap = 12 in
  let rows = Journal.rows ~disks ~capacity_blocks:jcap in
  let t : int Pdm.t =
    Pdm.create ~disks ~block_size ~blocks_per_disk:(data_rows + rows) ()
  in
  (t, Journal.create t ~block_offset:data_rows ~capacity_blocks:jcap)

let batch t vs =
  List.mapi
    (fun i v -> ({ Pdm.disk = i mod Pdm.disks t; block = i / 4 }, block_of t [ v ]))
    vs

let applied t vs =
  List.for_all
    (fun (a, b) -> Pdm.peek t a = b)
    (batch t vs)

let untouched t vs =
  List.for_all
    (fun (a, _) -> Array.for_all Option.is_none (Pdm.peek t a))
    (batch t vs)

let test_journal_plain_apply () =
  let t, j = jm () in
  Journal.log_and_apply j (batch t [ 1; 2; 3; 4; 5 ]);
  checkb "batch applied" true (applied t [ 1; 2; 3; 4; 5 ]);
  checkb "header cleared: recovery is clean" true
    (Journal.recover t ~block_offset:(Journal.block_offset j)
       ~capacity_blocks:(Journal.capacity_blocks j)
    = `Clean);
  checkb "journal I/O counted" true (ios t > 2)

let crash_outcomes =
  [ (Journal.Before_log, `Before);
    (Journal.During_log 1, `Before);
    (Journal.After_log, `Before);
    (Journal.After_commit, `After);
    (Journal.During_apply 1, `After);
    (Journal.After_apply, `After) ]

let test_journal_crash_matrix () =
  List.iter
    (fun (point, side) ->
      let t, j = jm () in
      let vs = [ 10; 20; 30; 40; 50 ] in
      checkb "crash raised" true
        (try
           Journal.log_and_apply j ~crash:point (batch t vs);
           false
         with Journal.Crashed -> true);
      let outcome =
        Journal.recover t ~block_offset:(Journal.block_offset j)
          ~capacity_blocks:(Journal.capacity_blocks j)
      in
      match side with
      | `Before ->
        checkb "not replayed" true
          (match outcome with `Replayed _ -> false | `Clean | `Discarded -> true);
        checkb "state wholly before" true (untouched t vs)
      | `After ->
        checkb "replayed" true
          (match outcome with `Replayed 5 -> true | _ -> false);
        checkb "state wholly after" true (applied t vs))
    crash_outcomes

(* Property (satellite): recovery is idempotent — replaying twice
   leaves exactly the state of replaying once, at every crash point
   and batch shape. *)
let prop_journal_recovery_idempotent =
  QCheck.Test.make ~name:"journal recovery idempotent" ~count:60
    QCheck.(pair (int_bound 5) (list_of_size Gen.(int_range 1 6) small_nat))
    (fun (point_ix, vs) ->
      let point = fst (List.nth crash_outcomes point_ix) in
      let t, j = jm () in
      (try Journal.log_and_apply j ~crash:point (batch t vs)
       with Journal.Crashed -> ());
      let off = Journal.block_offset j in
      let cap = Journal.capacity_blocks j in
      ignore (Journal.recover t ~block_offset:off ~capacity_blocks:cap);
      let dump1 =
        List.map (fun (a, _) -> Pdm.peek t a) (batch t vs)
      in
      let second = Journal.recover t ~block_offset:off ~capacity_blocks:cap in
      let dump2 =
        List.map (fun (a, _) -> Pdm.peek t a) (batch t vs)
      in
      second = `Clean && dump1 = dump2)

let test_journal_capacity_checked () =
  let t, j = jm () in
  checkb "oversized batch rejected" true
    (try
       Journal.log_and_apply j
         (List.init 40 (fun i ->
              ({ Pdm.disk = i mod 4; block = i / 8 }, block_of t [ i ])));
       false
     with Invalid_argument _ -> true)

(* --- journaled dictionaries --- *)

let op_cfg =
  { One_probe.universe = 1 lsl 14; capacity = 120; degree = 6;
    sigma_bits = 64; levels = 3; v_factor = 3; seed = 5 }

let test_journaled_dict_same_answers () =
  let plain = One_probe.create ~block_words:32 op_cfg in
  let j = One_probe.create ~journaled:true ~block_words:32 op_cfg in
  checkb "flag" true (One_probe.journaled j && not (One_probe.journaled plain));
  let payload k = Bytes.of_string (Printf.sprintf "%08d" k) in
  for k = 0 to 99 do
    One_probe.insert plain (k * 3) (payload k);
    One_probe.insert j (k * 3) (payload k)
  done;
  for k = 0 to 49 do
    ignore (One_probe.delete plain (k * 6));
    ignore (One_probe.delete j (k * 6))
  done;
  for k = 0 to 320 do
    Alcotest.(check (option string))
      (Printf.sprintf "find %d" k)
      (Option.map Bytes.to_string (One_probe.find plain k))
      (Option.map Bytes.to_string (One_probe.find j k))
  done;
  check "sizes agree" (One_probe.size plain) (One_probe.size j);
  (* Durability is paid for in counted rounds. *)
  checkb "journal costs more I/O" true
    (ios (One_probe.machine j) > ios (One_probe.machine plain))

let test_journaled_dict_crash_recovery () =
  let payload k = Bytes.of_string (Printf.sprintf "%08d" k) in
  List.iter
    (fun (point, survives) ->
      let t = One_probe.create ~journaled:true ~block_words:32 op_cfg in
      for k = 0 to 39 do
        One_probe.insert t k (payload k)
      done;
      One_probe.set_crash t (Some point);
      checkb "insert crashes" true
        (try
           One_probe.insert t 1000 (payload 1000);
           false
         with Journal.Crashed -> true);
      ignore (One_probe.recover t);
      (* Atomicity: the interrupted insert either wholly happened or
         wholly didn't; every earlier key is untouched either way. *)
      Alcotest.(check (option string))
        "interrupted key all-or-nothing"
        (if survives then Some (Bytes.to_string (payload 1000)) else None)
        (Option.map Bytes.to_string (One_probe.find t 1000));
      check "size rebuilt from disk" (if survives then 41 else 40)
        (One_probe.size t);
      for k = 0 to 39 do
        Alcotest.(check (option string))
          (Printf.sprintf "prior key %d intact" k)
          (Some (Bytes.to_string (payload k)))
          (Option.map Bytes.to_string (One_probe.find t k))
      done;
      (* The dictionary keeps working after recovery. *)
      One_probe.insert t 2000 (payload 2000);
      checkb "insert after recovery" true (One_probe.find t 2000 <> None))
    [ (Journal.Before_log, false); (Journal.After_log, false);
      (Journal.After_commit, true); (Journal.During_apply 1, true);
      (Journal.After_apply, true) ]

let test_journaled_cascade_crash_recovery () =
  let cfg =
    { Cascade.universe = 1 lsl 14; capacity = 150; degree = 15;
      sigma_bits = 64; epsilon = 1.0; v_factor = 3; seed = 2 }
  in
  let t = Cascade.create ~journaled:true ~block_words:32 cfg in
  let payload k = Bytes.of_string (Printf.sprintf "%08d" k) in
  for k = 0 to 59 do
    Cascade.insert t k (payload k)
  done;
  Cascade.set_crash t (Some Journal.After_commit);
  checkb "crash injected" true
    (try
       Cascade.insert t 777 (payload 777);
       false
     with Journal.Crashed -> true);
  (match Cascade.recover t with
   | `Replayed _ -> ()
   | `Clean | `Discarded -> Alcotest.fail "committed batch not replayed");
  checkb "replayed insert present" true (Cascade.find t 777 <> None);
  check "size correct" 61 (Cascade.size t);
  for k = 0 to 59 do
    checkb (Printf.sprintf "key %d intact" k) true (Cascade.find t k <> None)
  done

(* --- fast path unchanged --- *)

let test_fast_path_cost_identity () =
  (* An unreplicated, envelope-free, fault-free machine must charge
     exactly what the seed's closed-form fast path charged. *)
  let run t =
    Pdm.write t
      (List.init 4 (fun d -> ({ Pdm.disk = d; block = 0 }, block_of t [ d ])));
    ignore
      (Pdm.read t
         [ { Pdm.disk = 0; block = 0 }; { Pdm.disk = 0; block = 1 };
           { Pdm.disk = 2; block = 0 } ]);
    ignore (Pdm.read_one t { Pdm.disk = 3; block = 7 });
    Stats.snapshot (Pdm.stats t)
  in
  let plain = run (mk ()) in
  check "write rounds" 1 plain.Stats.parallel_writes;
  check "read rounds" 3 plain.Stats.parallel_reads;
  (* The same sequence on a machine exercising the scheduler (spare
     attached, so every request is scheduled) charges identically. *)
  let scheduled = run (mk ~spares:1 ()) in
  checkb "scheduler = closed form" true
    (plain.Stats.parallel_reads = scheduled.Stats.parallel_reads
    && plain.Stats.parallel_writes = scheduled.Stats.parallel_writes
    && plain.Stats.disk_reads = scheduled.Stats.disk_reads
    && plain.Stats.disk_writes = scheduled.Stats.disk_writes)

(* --- replicated persistence --- *)

let test_replicated_persistence () =
  let t : int Pdm.t =
    mk ~replicas:2 ~spares:1 ~integrity:Checksum.integrity ()
  in
  let a = { Pdm.disk = 0; block = 0 } in
  Pdm.write_one t a (block_of t [ 77 ]);
  Pdm.kill_disk t 1;
  ignore (Pdm.scrub t);
  let path = Filename.temp_file "pdm_repl" ".img" in
  Pdm.save_to_file t path;
  let t' : int Pdm.t = Pdm.load_from_file ~integrity:Checksum.integrity path in
  Sys.remove path;
  check "replicas survive" 2 (Pdm.replicas t');
  check "spares survive" 1 (Pdm.spares t');
  check "remap survives" (Pdm.remapped_replicas t) (Pdm.remapped_replicas t');
  checkb "health cache reset" false (Pdm.disk_down t' 1);
  Alcotest.(check (option int)) "data intact" (Some 77)
    (Pdm.read_one t' a).(0)

(* --- the repair experiment (E17 smoke: small n, fixed seed) --- *)

let test_repair_experiment () =
  let r = Repair_exp.run ~n:800 ~lookups:400 ~seed:13 () in
  checkb "100% available in every phase" true r.Repair_exp.all_available;
  checkb "identical answers in every phase" true r.Repair_exp.all_correct;
  checkb "degraded overhead <= 2x" true r.Repair_exp.degraded_within_2x;
  checkb "kill-recovery scrub remapped onto the spare" true
    (r.Repair_exp.scrub_after_kill.Pdm.remapped_replicas > 0);
  check "verify scrub finds nothing" 0
    r.Repair_exp.scrub_verify.Pdm.repaired_replicas;
  check "verify scrub loses nothing" 0 r.Repair_exp.scrub_verify.Pdm.lost_blocks;
  checkb "repair budget reported" true (r.Repair_exp.repair_ios > 0);
  (match r.Repair_exp.phases with
   | [ healthy; _; _; repaired ] ->
     checkb "costs return to baseline" true
       (repaired.Repair_exp.avg_io <= healthy.Repair_exp.avg_io +. 1e-9)
   | _ -> Alcotest.fail "expected four phases");
  let table = Repair_exp.to_table r in
  check "table rows" 4 (List.length table.Pdm_experiments.Table.rows)

let suite =
  let tc = Alcotest.test_case in
  [ ("replication",
     [ tc "replicated roundtrip" `Quick test_replicated_roundtrip;
       tc "healthy read cost = plain" `Quick
         test_replicated_read_cost_matches_plain;
       tc "kill_disk failover" `Quick test_kill_disk_failover;
       tc "discovery bounded, then cached" `Quick
         test_degraded_discovery_bounded;
       tc "write survives dead replica" `Quick
         test_write_survives_dead_replica;
       tc "all replicas dead raises" `Quick test_all_replicas_dead_raises ]);
    ("replication.properties",
     List.map QCheck_alcotest.to_alcotest
       [ prop_availability_under_r_minus_1_failures ]);
    ("integrity",
     [ tc "seal/check envelope" `Quick test_checksum_seal_check;
       tc "latent rot fails over" `Quick test_latent_rot_failover;
       tc "wire corruption retried" `Quick test_wire_corruption_retried;
       tc "undetected without envelope" `Quick
         test_corruption_undetected_without_integrity ]);
    ("scrub",
     [ tc "repairs rot in place" `Quick test_scrub_repairs_rot_in_place;
       tc "re-replicates onto spare" `Quick test_scrub_rereplicates_onto_spare;
       tc "no spare: unrepairable reported" `Quick
         test_scrub_without_spare_reports_unrepairable ]);
    ("journal",
     [ tc "plain apply" `Quick test_journal_plain_apply;
       tc "crash matrix: all-or-nothing" `Quick test_journal_crash_matrix;
       tc "capacity checked" `Quick test_journal_capacity_checked ]);
    ("journal.properties",
     List.map QCheck_alcotest.to_alcotest
       [ prop_journal_recovery_idempotent ]);
    ("journal.dictionaries",
     [ tc "journaled one-probe: same answers" `Quick
         test_journaled_dict_same_answers;
       tc "one-probe crash recovery" `Quick
         test_journaled_dict_crash_recovery;
       tc "cascade crash recovery" `Quick
         test_journaled_cascade_crash_recovery ]);
    ("robustness.fast_path",
     [ tc "fast path costs unchanged" `Quick test_fast_path_cost_identity ]);
    ("robustness.persistence",
     [ tc "replicated machine round-trips" `Quick
         test_replicated_persistence ]);
    ("experiments.repair",
     [ tc "E17 availability and repair" `Quick test_repair_experiment ]) ]
