(* Tests for the disk-backend subsystem: pluggable backends, the
   deterministic fault schedule, the round scheduler's retry and
   straggler accounting, and the per-round trace ring buffer with its
   JSONL round trip. *)

open Pdm_sim
module Fault_exp = Pdm_experiments.Fault_exp
module Table = Pdm_experiments.Table

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let ios t = Stats.parallel_ios (Stats.snapshot (Pdm.stats t))

let block_of t xs =
  let b = Array.make (Pdm.block_size t) None in
  List.iteri (fun i x -> b.(i) <- Some x) xs;
  b

let mk ?model ?stats ?trace ?faults ?backends ?(disks = 4) ?(block_size = 8)
    ?(blocks = 16) () =
  Pdm.create ?model ?stats ?trace ?faults ?backends ~disks ~block_size
    ~blocks_per_disk:blocks ()

(* A backend that fails the first [flaky_attempts] read attempts of
   every block in [flaky_blocks]. *)
let flaky_backend ~disk ~blocks ~flaky_blocks ~flaky_attempts ~max_retries =
  let inner = Backend.memory ~disk ~blocks in
  { inner with
    Backend.name = "flaky";
    max_retries;
    read =
      (fun ~attempt b ->
        if List.mem b flaky_blocks && attempt < flaky_attempts then
          Backend.Transient
        else inner.Backend.read ~attempt b) }

(* --- backends --- *)

let test_memory_backend () =
  let b : int Backend.t = Backend.memory ~disk:3 ~blocks:4 in
  check "disk" 3 b.Backend.disk;
  check "blocks" 4 b.Backend.blocks;
  checkb "starts empty" true (b.Backend.read ~attempt:0 2 = Backend.Data None);
  b.Backend.write 2 [| Some 7 |];
  checkb "written" true
    (b.Backend.read ~attempt:0 2 = Backend.Data (Some [| Some 7 |]));
  checkb "peek raw" true (b.Backend.peek 2 = Some [| Some 7 |]);
  check "cost healthy" 1 b.Backend.cost

let test_custom_backend_machine () =
  (* A machine over custom backends behaves like the default one. *)
  let t : int Pdm.t =
    mk ~backends:(fun d -> Backend.memory ~disk:d ~blocks:16) ()
  in
  let a = { Pdm.disk = 1; block = 2 } in
  Pdm.write_one t a (block_of t [ 5 ]);
  Alcotest.(check (option int)) "roundtrip" (Some 5) (Pdm.read_one t a).(0);
  check "2 I/Os" 2 (ios t);
  check "allocated" 1 (Pdm.allocated_blocks t)

let test_backend_geometry_checked () =
  checkb "bad capacity rejected" true
    (try
       ignore
         (mk ~backends:(fun d -> Backend.memory ~disk:d ~blocks:3) ()
           : int Pdm.t);
       false
     with Invalid_argument _ -> true);
  checkb "bad disk index rejected" true
    (try
       ignore
         (mk ~backends:(fun _ -> Backend.memory ~disk:0 ~blocks:16) ()
           : int Pdm.t);
       false
     with Invalid_argument _ -> true)

(* --- fault schedule --- *)

let test_fault_spec_deterministic () =
  let s = Fault.spec ~seed:7 ~transient:[ (0, 0.3) ] () in
  let h1 = Fault.transient_hit s ~disk:0 ~block:5 ~attempt:0 in
  for _ = 1 to 10 do
    checkb "same decision every time" h1
      (Fault.transient_hit s ~disk:0 ~block:5 ~attempt:0)
  done;
  (* A healthy disk never fails. *)
  checkb "healthy disk" false
    (Fault.transient_hit s ~disk:1 ~block:5 ~attempt:0);
  (* At p = 0.3, among 200 (block, attempt) pairs both outcomes occur. *)
  let hits = ref 0 in
  for b = 0 to 199 do
    if Fault.transient_hit s ~disk:0 ~block:b ~attempt:0 then incr hits
  done;
  checkb "some fail" true (!hits > 20);
  checkb "most succeed" true (!hits < 120)

let test_fault_wrap () =
  let s =
    Fault.spec ~seed:1 ~max_retries:5 ~stragglers:[ (2, 4) ] ~fail:[ 3 ] ()
  in
  let mem d = Backend.memory ~disk:d ~blocks:8 in
  let straggler = Fault.wrap s (mem 2) in
  check "straggler cost" 4 straggler.Backend.cost;
  check "retry budget" 5 straggler.Backend.max_retries;
  let dead = Fault.wrap s (mem 3) in
  checkb "dead reads Lost" true (dead.Backend.read ~attempt:0 0 = Backend.Lost);
  checkb "dead write raises" true
    (try
       dead.Backend.write 0 [| Some 1 |];
       false
     with Backend.Disk_failed { disk = 3; _ } -> true);
  let healthy = Fault.wrap s (mem 0) in
  check "healthy cost" 1 healthy.Backend.cost;
  checkb "peek bypasses faults" true (dead.Backend.peek 0 = None)

let test_fault_spec_validation () =
  checkb "bad probability" true
    (try ignore (Fault.spec ~transient:[ (0, 1.5) ] ()); false
     with Invalid_argument _ -> true);
  checkb "bad straggle" true
    (try ignore (Fault.spec ~stragglers:[ (0, 0) ] ()); false
     with Invalid_argument _ -> true);
  checkb "noop spec" true (Fault.is_noop (Fault.spec ()));
  checkb "non-noop spec" false
    (Fault.is_noop (Fault.spec ~fail:[ 1 ] ()))

(* --- scheduler: retries, stragglers, failures --- *)

let test_transient_retry_charged () =
  (* Disk 0 fails the first attempt of block 0: the read must succeed
     and cost one extra round. *)
  let t : int Pdm.t =
    mk
      ~backends:(fun d ->
        if d = 0 then
          flaky_backend ~disk:0 ~blocks:16 ~flaky_blocks:[ 0 ]
            ~flaky_attempts:1 ~max_retries:3
        else Backend.memory ~disk:d ~blocks:16)
      ()
  in
  Pdm.poke t { Pdm.disk = 0; block = 0 } (block_of t [ 42 ]);
  let b = Pdm.read_one t { Pdm.disk = 0; block = 0 } in
  Alcotest.(check (option int)) "data correct" (Some 42) b.(0);
  check "1 transfer + 1 retry = 2 rounds" 2 (ios t);
  let s = Stats.snapshot (Pdm.stats t) in
  check "one block delivered" 1 s.Stats.block_reads;
  check "delivered on disk 0" 1 s.Stats.disk_reads.(0)

let test_retry_overlaps_other_disks () =
  (* The retry round on disk 0 runs while disk 1's queue continues:
     total rounds = disk 0's 2 attempts, not 3. *)
  let t : int Pdm.t =
    mk
      ~backends:(fun d ->
        if d = 0 then
          flaky_backend ~disk:0 ~blocks:16 ~flaky_blocks:[ 0 ]
            ~flaky_attempts:1 ~max_retries:3
        else Backend.memory ~disk:d ~blocks:16)
      ()
  in
  ignore
    (Pdm.read t
       [ { Pdm.disk = 0; block = 0 }; { Pdm.disk = 1; block = 0 };
         { Pdm.disk = 1; block = 1 } ]);
  check "max(2, 2) rounds" 2 (ios t)

let test_retries_exhausted () =
  let t : int Pdm.t =
    mk
      ~backends:(fun d ->
        if d = 0 then
          flaky_backend ~disk:0 ~blocks:16 ~flaky_blocks:[ 3 ]
            ~flaky_attempts:100 ~max_retries:2
        else Backend.memory ~disk:d ~blocks:16)
      ()
  in
  checkb "raises after budget" true
    (try
       ignore (Pdm.read_one t { Pdm.disk = 0; block = 3 });
       false
     with Backend.Retries_exhausted { disk = 0; block = 3; attempts = 3; _ }
       -> true)

let test_straggler_charges_k () =
  let faults = Fault.spec ~stragglers:[ (1, 3) ] () in
  let t : int Pdm.t = mk ~faults () in
  ignore (Pdm.read_one t { Pdm.disk = 1; block = 0 });
  check "3 rounds for one block" 3 (ios t);
  (* Parallel request: healthy disks hide inside the straggler's k. *)
  ignore
    (Pdm.read t
       [ { Pdm.disk = 0; block = 1 }; { Pdm.disk = 1; block = 1 };
         { Pdm.disk = 2; block = 1 } ]);
  check "3 more rounds" 6 (ios t);
  (* Writes straggle too. *)
  Pdm.write_one t { Pdm.disk = 1; block = 2 } (block_of t [ 9 ]);
  check "write charged 3" 9 (ios t)

let test_straggler_queue_serialises () =
  let faults = Fault.spec ~stragglers:[ (0, 2) ] () in
  let t : int Pdm.t = mk ~faults () in
  ignore
    (Pdm.read t (List.init 3 (fun b -> { Pdm.disk = 0; block = b })));
  check "3 blocks x 2 rounds" 6 (ios t)

let test_failed_disk_raises () =
  let faults = Fault.spec ~fail:[ 2 ] () in
  let t : int Pdm.t = mk ~faults () in
  checkb "read raises" true
    (try
       ignore (Pdm.read_one t { Pdm.disk = 2; block = 0 });
       false
     with Backend.Disk_failed { disk = 2; _ } -> true);
  checkb "write raises" true
    (try
       Pdm.write_one t { Pdm.disk = 2; block = 0 } (block_of t [ 1 ]);
       false
     with Backend.Disk_failed { disk = 2; _ } -> true);
  (* Other disks still serve. *)
  ignore (Pdm.read_one t { Pdm.disk = 0; block = 0 });
  checkb "healthy disks fine" true (ios t >= 1)

let test_head_model_straggler () =
  let faults = Fault.spec ~stragglers:[ (0, 2) ] () in
  let t : int Pdm.t = mk ~model:Pdm.Parallel_heads ~disks:2 ~faults () in
  (* Two blocks on the slow disk, two channels: both transfers run in
     parallel, each occupying 2 rounds. *)
  ignore
    (Pdm.read t [ { Pdm.disk = 0; block = 0 }; { Pdm.disk = 0; block = 1 } ]);
  check "2 rounds" 2 (ios t)

(* --- faults disabled: scheduler equals closed form --- *)

let test_traced_machine_same_costs () =
  (* The same request sequence charges identical costs on the fast
     path and on the scheduler path (trace attached, no faults). *)
  let run t =
    ignore
      (Pdm.read t
         [ { Pdm.disk = 0; block = 0 }; { Pdm.disk = 0; block = 1 };
           { Pdm.disk = 1; block = 0 }; { Pdm.disk = 3; block = 7 } ]);
    Pdm.write t
      (List.init 4 (fun d -> ({ Pdm.disk = d; block = 2 }, block_of t [ d ])));
    ignore (Pdm.read_one t { Pdm.disk = 2; block = 2 });
    Stats.snapshot (Pdm.stats t)
  in
  let plain = run (mk ()) in
  let traced = run (mk ~trace:(Trace.create ()) ()) in
  check "read rounds" plain.Stats.parallel_reads traced.Stats.parallel_reads;
  check "write rounds" plain.Stats.parallel_writes traced.Stats.parallel_writes;
  check "blocks read" plain.Stats.block_reads traced.Stats.block_reads;
  Alcotest.(check (array int))
    "per-disk reads" plain.Stats.disk_reads traced.Stats.disk_reads;
  Alcotest.(check (array int))
    "per-disk writes" plain.Stats.disk_writes traced.Stats.disk_writes

(* --- dictionaries survive faults --- *)

let test_dictionary_correct_under_faults () =
  let module Basic = Pdm_dictionary.Basic_dict in
  let universe = 1 lsl 16 and n = 300 in
  let cfg =
    Basic.plan ~universe ~capacity:n ~block_words:32 ~degree:4 ~value_bytes:8
      ~seed:3 ()
  in
  let build faults =
    let machine =
      Pdm.create ?faults ~disks:4 ~block_size:32
        ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
    in
    (machine, Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg)
  in
  let payload k = Bytes.of_string (Printf.sprintf "%08d" k) in
  let faults =
    Fault.spec ~seed:11 ~max_retries:32
      ~transient:[ (0, 0.2); (3, 0.1) ]
      ~stragglers:[ (1, 2) ]
      ()
  in
  let m_clean, d_clean = build None in
  let m_faulty, d_faulty = build (Some faults) in
  for k = 0 to n - 1 do
    Basic.insert d_clean k (payload k);
    Basic.insert d_faulty k (payload k)
  done;
  (* Same answers on every lookup (hits, misses, deletes)... *)
  for k = 0 to n + 50 do
    Alcotest.(check (option string))
      (Printf.sprintf "find %d" k)
      (Option.map Bytes.to_string (Basic.find d_clean k))
      (Option.map Bytes.to_string (Basic.find d_faulty k))
  done;
  for k = 0 to 49 do
    checkb "delete agrees" (Basic.delete d_clean k) (Basic.delete d_faulty k)
  done;
  checkb "deleted gone" true (Basic.find d_faulty 0 = None);
  (* ...but the faulty run paid strictly more rounds, never fewer. *)
  checkb "no free re-reads" true (ios m_faulty > ios m_clean)

(* --- trace ring buffer + JSONL --- *)

let ev ?(shard = 0) ?(attempt = 0) ~round ~op ~per_disk ~retries ~degraded ()
    =
  { Trace.round; op; per_disk; retries; degraded; shard; attempt }

let test_ring_buffer () =
  let t = Trace.create ~capacity:3 () in
  check "empty" 0 (Trace.length t);
  for r = 1 to 5 do
    Trace.record t
      (ev ~round:r ~op:Trace.Read ~per_disk:[| r |] ~retries:0 ~degraded:false
         ())
  done;
  check "capped" 3 (Trace.length t);
  check "recorded" 5 (Trace.recorded t);
  check "dropped" 2 (Trace.dropped t);
  Alcotest.(check (list int))
    "keeps newest, oldest first" [ 3; 4; 5 ]
    (List.map (fun (e : Trace.event) -> e.round) (Trace.events t));
  Trace.clear t;
  check "cleared" 0 (Trace.length t);
  check "cleared recorded" 0 (Trace.recorded t);
  (* a shard-tagged buffer stamps its tag onto recorded events *)
  let t2 = Trace.create ~capacity:2 ~shard:7 () in
  check "buffer shard tag" 7 (Trace.shard t2);
  Trace.record t2
    (ev ~round:1 ~op:Trace.Read ~per_disk:[| 1 |] ~retries:0 ~degraded:false ());
  checkb "events stamped with buffer shard" true
    (match Trace.events t2 with
     | [ e ] -> e.Trace.shard = 7
     | _ -> false)

let test_event_json_roundtrip () =
  let e =
    ev ~shard:4 ~round:17 ~op:Trace.Write ~per_disk:[| 0; 3; 1 |] ~retries:2
      ~degraded:true ()
  in
  let line = Trace.event_to_json e in
  checkb "parses back equal" true (Trace.event_of_json line = Some e);
  (* Field order and whitespace are flexible; a line written before
     the shard tag existed (no "shard" field) parses as shard 0. *)
  checkb "reordered fields, shard defaults to 0" true
    (Trace.event_of_json
       {| { "degraded" : false , "per_disk" : [ 1 , 2 ] , "op" : "read" , "retries" : 0 , "round" : 3 } |}
    = Some
        (ev ~round:3 ~op:Trace.Read ~per_disk:[| 1; 2 |] ~retries:0
           ~degraded:false ()));
  checkb "empty per_disk" true
    (match Trace.event_of_json {|{"round":0,"op":"read","per_disk":[],"retries":0,"degraded":false}|} with
     | Some e -> e.Trace.per_disk = [||]
     | None -> false);
  checkb "garbage rejected" true (Trace.event_of_json "{nope}" = None);
  checkb "missing field rejected" true
    (Trace.event_of_json {|{"round":1,"op":"read"}|} = None);
  checkb "bad op rejected" true
    (Trace.event_of_json
       {|{"round":1,"op":"scan","per_disk":[1],"retries":0,"degraded":false}|}
    = None)

let test_jsonl_file_roundtrip_matches_stats () =
  (* Acceptance criterion: export a recorded run, re-read it, and the
     per-disk totals from the trace equal the Stats counters. *)
  let tr = Trace.create ~capacity:4096 () in
  let faults =
    Fault.spec ~seed:5 ~transient:[ (1, 0.3) ] ~stragglers:[ (2, 2) ] ()
  in
  let t : int Pdm.t = mk ~trace:tr ~faults ~disks:4 ~blocks:32 () in
  for b = 0 to 31 do
    Pdm.write t
      (List.init 4 (fun d -> ({ Pdm.disk = d; block = b }, block_of t [ d + b ])))
  done;
  let rng = Pdm_util.Prng.create 9 in
  for _ = 1 to 200 do
    let addrs =
      List.init
        (1 + Pdm_util.Prng.int rng 6)
        (fun _ ->
          { Pdm.disk = Pdm_util.Prng.int rng 4;
            block = Pdm_util.Prng.int rng 32 })
    in
    ignore (Pdm.read t addrs)
  done;
  check "nothing dropped" 0 (Trace.dropped tr);
  let path = Filename.temp_file "pdm_trace" ".jsonl" in
  Trace.export_jsonl tr path;
  let events = Trace.load_jsonl path in
  Sys.remove path;
  check "all events re-read" (Trace.length tr) (List.length events);
  checkb "identical after round trip" true (events = Trace.events tr);
  let reads, writes = Trace.per_disk_totals events in
  let s = Stats.snapshot (Pdm.stats t) in
  Alcotest.(check (array int)) "per-disk reads match stats" s.Stats.disk_reads
    reads;
  Alcotest.(check (array int)) "per-disk writes match stats"
    s.Stats.disk_writes writes;
  (* Round count is consistent too: every recorded round is one
     charged parallel I/O. *)
  check "rounds = parallel I/Os" (Stats.parallel_ios s) (Trace.recorded tr);
  (* And degraded rounds exist, since disk 2 straggles. *)
  checkb "degradation observed" true
    (List.exists (fun (e : Trace.event) -> e.degraded) events)

let test_jsonl_malformed_rejected () =
  let path = Filename.temp_file "pdm_bad" ".jsonl" in
  let oc = open_out path in
  output_string oc
    ("{\"round\":1,\"op\":\"read\",\"per_disk\":[1],\"retries\":0,\
      \"degraded\":false}\n"
    ^ "\n" (* blank lines are skipped, not errors *)
    ^ "this is not an event\n");
  close_out oc;
  (match Trace.load_jsonl_result path with
   | Ok _ -> Alcotest.fail "malformed line accepted"
   | Error err ->
     check "failing line number" 3 err.Trace.line;
     checkb "offending text carried" true
       (err.Trace.text = "this is not an event");
     checkb "path carried" true (err.Trace.path = path);
     checkb "printable" true
       (String.length (Format.asprintf "%a" Trace.pp_parse_error err) > 0));
  checkb "exception form agrees" true
    (try
       ignore (Trace.load_jsonl path);
       false
     with Trace.Malformed_line { line = 3; _ } -> true);
  Sys.remove path;
  (* A fully well-formed file loads the same way through both APIs. *)
  let ok = Filename.temp_file "pdm_ok" ".jsonl" in
  let oc = open_out ok in
  output_string oc
    "{\"round\":2,\"op\":\"write\",\"per_disk\":[0,1],\"retries\":1,\
     \"degraded\":true}\n";
  close_out oc;
  (match Trace.load_jsonl_result ok with
   | Ok [ e ] -> check "round parsed" 2 e.Trace.round
   | Ok _ | Error _ -> Alcotest.fail "well-formed file rejected");
  Sys.remove ok

let test_describe_structured_errors () =
  (* Storage exceptions carry (disk, block, round) and [describe]
     renders all of it; unrelated exceptions are left alone. *)
  let d = Backend.Disk_failed { disk = 4; block = 9; round = 17 } in
  (match Backend.describe d with
   | None -> Alcotest.fail "Disk_failed not described"
   | Some m ->
     let contains needle =
       let n = String.length needle and h = String.length m in
       let rec go i = i + n <= h && (String.sub m i n = needle || go (i + 1)) in
       go 0
     in
     checkb "mentions disk" true (contains "4");
     checkb "mentions block" true (contains "9");
     checkb "mentions round" true (contains "17"));
  checkb "retries described" true
    (Backend.describe
       (Backend.Retries_exhausted { disk = 0; block = 1; attempts = 3; round = 2 })
    <> None);
  checkb "corruption described" true
    (Backend.describe (Backend.Corrupt_block { disk = 0; block = 1; round = 2 })
    <> None);
  checkb "other exceptions ignored" true
    (Backend.describe Not_found = None)

let test_trace_retry_events () =
  let t : int Pdm.t =
    mk
      ~trace:(Trace.create ())
      ~backends:(fun d ->
        if d = 0 then
          flaky_backend ~disk:0 ~blocks:16 ~flaky_blocks:[ 0 ]
            ~flaky_attempts:1 ~max_retries:3
        else Backend.memory ~disk:d ~blocks:16)
      ()
  in
  ignore (Pdm.read_one t { Pdm.disk = 0; block = 0 });
  let tr = Option.get (Pdm.trace t) in
  let events = Trace.events tr in
  check "two rounds traced" 2 (List.length events);
  check "one retry recorded" 1
    (List.fold_left (fun a (e : Trace.event) -> a + e.retries) 0 events);
  checkb "retry round degraded" true
    (List.exists (fun (e : Trace.event) -> e.degraded) events)

let test_set_trace_midstream () =
  let t : int Pdm.t = mk () in
  ignore (Pdm.read_one t { Pdm.disk = 0; block = 0 });
  checkb "no trace yet" true (Pdm.trace t = None);
  let tr = Trace.create () in
  Pdm.set_trace t (Some tr);
  ignore (Pdm.read_one t { Pdm.disk = 1; block = 0 });
  check "round ids continue" 2
    (match Trace.events tr with
     | [ e ] -> e.Trace.round
     | _ -> -1);
  Pdm.set_trace t None;
  ignore (Pdm.read_one t { Pdm.disk = 2; block = 0 });
  check "detached: nothing new" 1 (Trace.recorded tr)

(* --- per-disk stats --- *)

let test_stats_per_disk () =
  let t : int Pdm.t = mk ~disks:3 () in
  ignore
    (Pdm.read t
       [ { Pdm.disk = 0; block = 0 }; { Pdm.disk = 0; block = 1 };
         { Pdm.disk = 2; block = 0 } ]);
  Pdm.write_one t { Pdm.disk = 1; block = 0 } (block_of t [ 1 ]);
  let s = Stats.snapshot (Pdm.stats t) in
  Alcotest.(check (array int)) "per-disk reads" [| 2; 0; 1 |] s.Stats.disk_reads;
  Alcotest.(check (array int)) "per-disk writes" [| 0; 1; 0 |]
    s.Stats.disk_writes;
  Alcotest.(check (array int)) "totals" [| 2; 1; 1 |] (Stats.disk_totals s);
  (match Stats.occupancy s with
   | Some o ->
     check "max load" 2 o.Stats.max_load;
     Alcotest.(check (float 1e-9)) "mean load" (4.0 /. 3.0) o.Stats.mean_load
   | None -> Alcotest.fail "expected occupancy");
  let txt = Format.asprintf "%a" Stats.pp s in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  checkb "pp mentions disk load" true (contains txt "disk load")

let test_stats_diff_add_padding () =
  let a =
    { Stats.zero with
      Stats.disk_reads = [| 1; 2 |]; block_reads = 3 }
  in
  let b =
    { Stats.zero with
      Stats.disk_reads = [| 1; 0; 5 |]; block_reads = 6 }
  in
  let sum = Stats.add a b in
  Alcotest.(check (array int)) "add pads" [| 2; 2; 5 |] sum.Stats.disk_reads;
  let d = Stats.diff ~after:b ~before:a in
  Alcotest.(check (array int)) "diff pads" [| 0; -2; 5 |] d.Stats.disk_reads;
  checkb "zero has no disks" true (Stats.occupancy Stats.zero = None)

let test_stats_reset_clears_disks () =
  let t : int Pdm.t = mk () in
  ignore (Pdm.read_one t { Pdm.disk = 2; block = 0 });
  Stats.reset (Pdm.stats t);
  let s = Stats.snapshot (Pdm.stats t) in
  check "disk counters cleared" 0 (Array.fold_left ( + ) 0 s.Stats.disk_reads)

(* --- persistence drops run-time configuration --- *)

let test_persistence_faultfree_reload () =
  let faults = Fault.spec ~stragglers:[ (0, 5) ] () in
  let t : int Pdm.t = mk ~faults ~trace:(Trace.create ()) () in
  Pdm.write_one t { Pdm.disk = 0; block = 1 } (block_of t [ 3 ]);
  let path = Filename.temp_file "pdm_faulty" ".img" in
  Pdm.save_to_file t path;
  let t' : int Pdm.t = Pdm.load_from_file path in
  Sys.remove path;
  checkb "faults not persisted" true (Pdm.faults t' = None);
  checkb "trace not persisted" true (Pdm.trace t' = None);
  Alcotest.(check (option int)) "data intact" (Some 3)
    (Pdm.read_one t' { Pdm.disk = 0; block = 1 }).(0);
  check "healthy costs again" 1 (ios t')

(* --- the fault experiment --- *)

let test_fault_experiment () =
  let r = Fault_exp.run ~n:400 ~lookups:300 ~seed:5 () in
  check "four scenarios" 4 (List.length r.Fault_exp.points);
  List.iter
    (fun (p : Fault_exp.point) ->
      checkb (p.scenario ^ " correct") true p.correct;
      checkb (p.scenario ^ " overhead >= 1") true (p.overhead >= 0.999))
    r.Fault_exp.points;
  (match r.Fault_exp.points with
   | free :: faulty ->
     check "fault-free has no retries" 0 free.Fault_exp.retries;
     checkb "some scenario degrades" true
       (List.exists (fun (p : Fault_exp.point) -> p.avg_io > free.avg_io) faulty)
   | [] -> Alcotest.fail "no points");
  let table = Fault_exp.to_table r in
  checkb "table has rows" true (List.length table.Table.rows = 4)

let suite =
  let tc = Alcotest.test_case in
  [ ("backend",
     [ tc "memory backend" `Quick test_memory_backend;
       tc "custom backends drive a machine" `Quick test_custom_backend_machine;
       tc "geometry checked" `Quick test_backend_geometry_checked ]);
    ("fault.schedule",
     [ tc "deterministic" `Quick test_fault_spec_deterministic;
       tc "wrap" `Quick test_fault_wrap;
       tc "validation" `Quick test_fault_spec_validation ]);
    ("fault.scheduler",
     [ tc "transient retry charged" `Quick test_transient_retry_charged;
       tc "retry overlaps other disks" `Quick test_retry_overlaps_other_disks;
       tc "retries exhausted" `Quick test_retries_exhausted;
       tc "straggler charges k" `Quick test_straggler_charges_k;
       tc "straggler serialises its queue" `Quick
         test_straggler_queue_serialises;
       tc "failed disk raises" `Quick test_failed_disk_raises;
       tc "head-model straggler" `Quick test_head_model_straggler;
       tc "traced machine, same costs" `Quick test_traced_machine_same_costs;
       tc "dictionary correct under faults" `Quick
         test_dictionary_correct_under_faults ]);
    ("trace",
     [ tc "ring buffer" `Quick test_ring_buffer;
       tc "event JSON roundtrip" `Quick test_event_json_roundtrip;
       tc "JSONL file roundtrip = stats" `Quick
         test_jsonl_file_roundtrip_matches_stats;
       tc "malformed JSONL rejected with context" `Quick
         test_jsonl_malformed_rejected;
       tc "structured storage errors described" `Quick
         test_describe_structured_errors;
       tc "retry events" `Quick test_trace_retry_events;
       tc "attach/detach midstream" `Quick test_set_trace_midstream ]);
    ("stats.per_disk",
     [ tc "counters and occupancy" `Quick test_stats_per_disk;
       tc "diff/add padding" `Quick test_stats_diff_add_padding;
       tc "reset clears" `Quick test_stats_reset_clears_disks ]);
    ("pdm.faulty_persistence",
     [ tc "reload is fault-free" `Quick test_persistence_faultfree_reload ]);
    ("experiments.faults",
     [ tc "E16 runs and stays correct" `Quick test_fault_experiment ]) ]
