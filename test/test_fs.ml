(* Tests for the mini file system (§1.2 made concrete). *)

open Pdm_sim
module Fs = Pdm_fs.Mini_fs
module Prng = Pdm_util.Prng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let small_config =
  { Fs.default_config with Fs.max_files = 64; max_blocks = 1024;
    blocks_per_file = 32; payload_bytes = 128 }

let block_of_string t s =
  ignore t;
  Bytes.of_string s

let padded expected got =
  (* Reads return whole padded blocks; compare the prefix. *)
  String.sub (Bytes.to_string got) 0 (String.length expected) = expected
  && Bytes.length got >= String.length expected

let test_create_write_read () =
  let t = Fs.format small_config in
  let h = Fs.create t "hello" in
  check "inode 0" 0 (Fs.handle_inode h);
  ignore (Fs.append t h (block_of_string t "block zero"));
  ignore (Fs.append t h (block_of_string t "block one"));
  check "length 2" 2 (Fs.handle_length h);
  (match Fs.read_block t h 0 with
   | Some b -> checkb "block 0" true (padded "block zero" b)
   | None -> Alcotest.fail "block 0 missing");
  (match Fs.read_block t h 1 with
   | Some b -> checkb "block 1" true (padded "block one" b)
   | None -> Alcotest.fail "block 1 missing");
  checkb "out of range" true (Fs.read_block t h 2 = None)

let test_open_refreshes_length () =
  let t = Fs.format small_config in
  let h = Fs.create t "f" in
  for i = 0 to 9 do
    ignore (Fs.append t h (block_of_string t (string_of_int i)))
  done;
  match Fs.open_file t "f" with
  | Some h' ->
    check "length persisted" 10 (Fs.handle_length h');
    checkb "content readable" true
      (padded "7" (Option.get (Fs.read_block t h' 7)))
  | None -> Alcotest.fail "file missing"

let test_random_read_is_one_io () =
  let t = Fs.format small_config in
  let h = Fs.create t "media" in
  for i = 0 to 31 do
    ignore (Fs.append t h (block_of_string t (Printf.sprintf "b%d" i)))
  done;
  let before = Fs.io_total t in
  let rng = Prng.create 5 in
  for _ = 1 to 100 do
    ignore (Fs.read_block t h (Prng.int rng 32))
  done;
  check "1 I/O per random block read" 100 (Fs.io_total t - before)

let test_overwrite_in_place () =
  let t = Fs.format small_config in
  let h = Fs.create t "w" in
  ignore (Fs.append t h (block_of_string t "old"));
  let before = Fs.io_total t in
  Fs.write_block t h 0 (block_of_string t "new");
  check "overwrite = 2 I/Os (no name-table touch)" 2 (Fs.io_total t - before);
  checkb "overwritten" true (padded "new" (Option.get (Fs.read_block t h 0)))

let test_hole_rejected () =
  let t = Fs.format small_config in
  let h = Fs.create t "h" in
  checkb "hole rejected" true
    (try
       Fs.write_block t h 3 (block_of_string t "x");
       false
     with Fs.Fs_error _ -> true)

let test_name_rules () =
  let t = Fs.format small_config in
  ignore (Fs.create t "a");
  checkb "duplicate name" true
    (try
       ignore (Fs.create t "a");
       false
     with Fs.Fs_error _ -> true);
  checkb "name too long" true
    (try
       ignore (Fs.create t "eightchr");
       false
     with Fs.Fs_error _ -> true);
  checkb "empty name" true
    (try
       ignore (Fs.create t "");
       false
     with Fs.Fs_error _ -> true)

let test_delete_frees_space () =
  let t = Fs.format small_config in
  let h = Fs.create t "tmp" in
  for i = 0 to 19 do
    ignore (Fs.append t h (block_of_string t (string_of_int i)))
  done;
  checkb "delete" true (Fs.delete t "tmp");
  checkb "gone" true (Fs.open_file t "tmp" = None);
  check "no files" 0 (Fs.file_count t);
  (* The freed blocks are reusable: fill a new file to the same size. *)
  let h2 = Fs.create t "tmp2" in
  for i = 0 to 19 do
    ignore (Fs.append t h2 (block_of_string t (string_of_int i)))
  done;
  check "refilled" 20 (Fs.handle_length h2)

let test_rename_leaves_data_in_place () =
  let t = Fs.format small_config in
  let h = Fs.create t "before" in
  ignore (Fs.append t h (block_of_string t "payload"));
  Fs.rename t ~old_name:"before" ~new_name:"after";
  checkb "old gone" true (Fs.open_file t "before" = None);
  (match Fs.open_file t "after" with
   | Some h' ->
     check "same inode (data untouched)" (Fs.handle_inode h)
       (Fs.handle_inode h');
     checkb "data readable" true
       (padded "payload" (Option.get (Fs.read_block t h' 0)))
   | None -> Alcotest.fail "renamed file missing");
  checkb "rename onto existing rejected" true
    (try
       ignore (Fs.create t "other");
       Fs.rename t ~old_name:"after" ~new_name:"other";
       false
     with Fs.Fs_error _ -> true)

let test_stat_and_files () =
  let t = Fs.format small_config in
  let a = Fs.create t "a" in
  ignore (Fs.append t a (block_of_string t "x"));
  ignore (Fs.append t a (block_of_string t "y"));
  ignore (Fs.create t "b");
  Alcotest.(check (option int)) "stat a" (Some 2) (Fs.stat t "a");
  Alcotest.(check (option int)) "stat b" (Some 0) (Fs.stat t "b");
  Alcotest.(check (option int)) "stat missing" None (Fs.stat t "zzz");
  let listing = List.sort compare (Fs.files t) in
  Alcotest.(check (list (pair string int))) "listing" [ ("a", 2); ("b", 0) ]
    listing

let test_many_files_survive () =
  let t = Fs.format small_config in
  for i = 0 to 49 do
    let h = Fs.create t (Printf.sprintf "f%02d" i) in
    for b = 0 to (i mod 5) do
      ignore (Fs.append t h (block_of_string t (Printf.sprintf "%d.%d" i b)))
    done
  done;
  check "files" 50 (Fs.file_count t);
  for i = 0 to 49 do
    let name = Printf.sprintf "f%02d" i in
    match Fs.open_file t name with
    | None -> Alcotest.failf "%s missing" name
    | Some h ->
      check (name ^ " length") ((i mod 5) + 1) (Fs.handle_length h);
      for b = 0 to i mod 5 do
        checkb "block content" true
          (padded
             (Printf.sprintf "%d.%d" i b)
             (Option.get (Fs.read_block t h b)))
      done
  done

let test_machines_and_stats () =
  let t = Fs.format small_config in
  check "two machines" 2 (List.length (Fs.machines t));
  List.iter
    (fun m -> checkb "stats live" true (Stats.parallel_ios (Stats.snapshot (Pdm.stats m)) >= 0))
    (Fs.machines t)

let suite =
  let tc = Alcotest.test_case in
  [ ("fs.mini",
     [ tc "create/write/read" `Quick test_create_write_read;
       tc "open refreshes length" `Quick test_open_refreshes_length;
       tc "random read = 1 I/O" `Quick test_random_read_is_one_io;
       tc "overwrite in place" `Quick test_overwrite_in_place;
       tc "holes rejected" `Quick test_hole_rejected;
       tc "name rules" `Quick test_name_rules;
       tc "delete frees space" `Quick test_delete_frees_space;
       tc "rename leaves data" `Quick test_rename_leaves_data_in_place;
       tc "stat and listing" `Quick test_stat_and_files;
       tc "many files" `Quick test_many_files_survive;
       tc "machines/stats" `Quick test_machines_and_stats ]) ]

(* --- persistence (appended) --- *)

let test_volume_save_load () =
  let t = Fs.format small_config in
  let h = Fs.create t "keepme" in
  for i = 0 to 9 do
    ignore (Fs.append t h (block_of_string t (Printf.sprintf "blk %d" i)))
  done;
  ignore (Fs.create t "other");
  let path = Filename.temp_file "volume" ".img" in
  Fs.save t path;
  let t' = Fs.load small_config path in
  Sys.remove path;
  check "files survive" 2 (Fs.file_count t');
  (match Fs.open_file t' "keepme" with
   | Some h' ->
     check "length" 10 (Fs.handle_length h');
     for i = 0 to 9 do
       checkb "block content" true
         (padded (Printf.sprintf "blk %d" i)
            (Option.get (Fs.read_block t' h' i)))
     done
   | None -> Alcotest.fail "file lost");
  (* The reloaded volume accepts new work and fresh inodes do not
     collide with old ones. *)
  let h2 = Fs.create t' "newone" in
  checkb "fresh inode" true (Fs.handle_inode h2 > Fs.handle_inode h);
  ignore (Fs.append t' h2 (block_of_string t' "post-load"));
  checkb "writable after load" true
    (padded "post-load" (Option.get (Fs.read_block t' h2 0)))

let suite =
  suite
  @ [ ("fs.persistence",
       [ Alcotest.test_case "save/load volume" `Quick test_volume_save_load ]) ]

(* --- resource limits (appended) --- *)

let test_volume_limits () =
  let tiny =
    { Fs.default_config with Fs.max_files = 2; max_blocks = 4;
      blocks_per_file = 3; payload_bytes = 64 }
  in
  let t = Fs.format tiny in
  ignore (Fs.create t "a");
  ignore (Fs.create t "b");
  checkb "file table full" true
    (try
       ignore (Fs.create t "c");
       false
     with Fs.Fs_error _ -> true);
  let h = Option.get (Fs.open_file t "a") in
  ignore (Fs.append t h (Bytes.of_string "1"));
  ignore (Fs.append t h (Bytes.of_string "2"));
  ignore (Fs.append t h (Bytes.of_string "3"));
  checkb "per-file length limit" true
    (try
       ignore (Fs.append t h (Bytes.of_string "4"));
       false
     with Fs.Fs_error _ -> true);
  let h2 = Option.get (Fs.open_file t "b") in
  ignore (Fs.append t h2 (Bytes.of_string "x"));
  checkb "volume block budget" true
    (try
       ignore (Fs.append t h2 (Bytes.of_string "y"));
       false
     with Fs.Fs_error _ -> true);
  (* Deleting releases budget. *)
  checkb "delete a" true (Fs.delete t "a");
  ignore (Fs.append t h2 (Bytes.of_string "y"));
  check "b grew after space freed" 2 (Fs.handle_length h2)

let suite =
  suite
  @ [ ("fs.limits",
       [ Alcotest.test_case "volume limits" `Quick test_volume_limits ]) ]
