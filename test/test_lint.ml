(* Tests for pdm-lint (the AST honesty/determinism checker) and the
   runtime sanitizer: one violating and one clean fixture per rule,
   suppression mechanics, file/line accuracy, output modes, the
   lint-cleanliness of the real tree, and the sanitizer's cross-checks
   (cost parity on/off plus two deliberately broken machines it must
   catch). *)

open Pdm_sim
module Lint = Pdm_lint_core.Lint
module Internal_memory = Pdm_sim.Internal_memory
module Sanitize = Pdm_sim.Sanitize

let tc = Alcotest.test_case
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- lint fixtures ------------------------------------------------ *)

let dict_path = "lib/dictionary/sample.ml"

let lint ?config ?(path = dict_path) src =
  Lint.check_source ?config ~has_mli:true ~path src

let rules findings = List.map (fun f -> f.Lint.rule) findings

let find_rule rule findings =
  List.find_opt (fun f -> f.Lint.rule = rule) findings

let has ?line rule findings =
  List.exists
    (fun f ->
      f.Lint.rule = rule
      && match line with None -> true | Some l -> f.Lint.line = l)
    findings

(* R1: direct backend I/O and uncounted peeks outside lib/pdm. *)

let test_r1_backend_bypass () =
  let fs = lint "let f be = Backend.read be ~attempt:0 3\n" in
  checkb "Backend.read flagged" true (has "R1" ~line:1 fs);
  let fs = lint "let f m = Pdm.backend m 0\n" in
  checkb "Pdm.backend flagged" true (has "R1" fs);
  (* The error surface of Backend stays legal everywhere. *)
  let fs = lint "let f e = Backend.describe e\nlet g e = e.Backend.disk\n" in
  checkb "Backend.describe clean" false (has "R1" fs);
  (* Inside lib/pdm the calls are the implementation, not a bypass. *)
  let fs =
    lint ~path:"lib/pdm/scheduler_bit.ml" "let f be = Backend.read be 3\n"
  in
  checkb "lib/pdm may call Backend" false (has "R1" fs)

let test_r1_peek_allowlist () =
  let src = "let f m a = Pdm.peek m a\n" in
  checkb "peek flagged in unlisted module" true (has "R1" (lint src));
  let fs = lint ~path:"lib/dictionary/basic_dict.ml" src in
  checkb "peek clean in allowlisted module" false (has "R1" fs);
  let config =
    { Lint.default_config with peek_allowlist = [ "sample" ] }
  in
  checkb "--allow-peek extends the list" false (has "R1" (lint ~config src))

(* R2: nondeterminism in the deterministic components. *)

let test_r2_determinism () =
  checkb "Random flagged in lib/dictionary" true
    (has "R2" (lint "let r () = Random.int 5\n"));
  checkb "Random fine in lib/experiments (seeded Prng rule is R2-scoped)"
    false
    (has "R2" (lint ~path:"lib/experiments/x_exp.ml" "let r () = Random.int 5\n"));
  checkb "Sys.time flagged even in experiments" true
    (has "R2" (lint ~path:"lib/experiments/x_exp.ml" "let t () = Sys.time ()\n"));
  checkb "Unix flagged" true
    (has "R2" (lint "let t () = Unix.gettimeofday ()\n"));
  checkb "Hashtbl.hash flagged" true
    (has "R2" (lint "let h x = Hashtbl.hash x\n"));
  checkb "Hashtbl.create ~random:true flagged" true
    (has "R2" (lint "let h () = Hashtbl.create ~random:true 16\n"));
  checkb "plain Hashtbl.create is deterministic by default" false
    (has "R2" (lint "let h () : (int, int) Hashtbl.t = Hashtbl.create 16\n"))

(* The audited Unix allowlist for the real-I/O component: exactly the
   syscalls DESIGN.md Â§13 names, and only under lib/io. *)
let test_r2_unix_io_allowlist () =
  checkb "allowlisted syscall clean in lib/io" false
    (has "R2"
       (lint ~path:"lib/io/raw_file.ml"
          "let f p = Unix.openfile p [ Unix.O_RDWR ] 0o600\n"));
  checkb "fsync clean in lib/io" false
    (has "R2" (lint ~path:"lib/io/raw_file.ml" "let f fd = Unix.fsync fd\n"));
  checkb "non-allowlisted Unix call still flagged in lib/io" true
    (has "R2"
       (lint ~path:"lib/io/raw_file.ml" "let t () = Unix.gettimeofday ()\n"));
  checkb "allowlisted syscall still flagged outside lib/io" true
    (has "R2" (lint ~path:"lib/engine/engine.ml" "let f fd = Unix.fsync fd\n"));
  checkb "allowlisted syscall still flagged in the default component" true
    (has "R2" (lint "let f fd = Unix.fsync fd\n"))

(* The audited Unix allowlist for the TCP daemon: socket-lifecycle
   syscalls (DESIGN.md §15), and only under lib/server. *)
let test_r2_unix_server_allowlist () =
  checkb "socket clean in lib/server" false
    (has "R2"
       (lint ~path:"lib/server/server.ml"
          "let f () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n"));
  checkb "select clean in lib/server" false
    (has "R2"
       (lint ~path:"lib/server/server.ml"
          "let f r = Unix.select r [] [] 0.2\n"));
  checkb "connect clean in lib/server client" false
    (has "R2"
       (lint ~path:"lib/server/client.ml"
          "let f fd a = Unix.connect fd a\n"));
  checkb "gettimeofday still flagged in lib/server" true
    (has "R2"
       (lint ~path:"lib/server/server.ml"
          "let t () = Unix.gettimeofday ()\n"));
  checkb "io-only syscall (fsync) flagged in lib/server" true
    (has "R2" (lint ~path:"lib/server/server.ml" "let f fd = Unix.fsync fd\n"));
  checkb "socket flagged outside lib/server" true
    (has "R2"
       (lint ~path:"lib/engine/engine.ml"
          "let f () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n"))

(* R3: partial functions in library code. *)

let test_r3_totality () =
  let src =
    "let a l = List.hd l\n\
     let b l = List.nth l 3\n\
     let c o = Option.get o\n\
     let d ar = Array.unsafe_get ar 0\n\
     let e () = assert false\n"
  in
  let fs = lint src in
  check "five R3 findings" 5
    (List.length (List.filter (fun r -> r = "R3") (rules fs)));
  List.iteri
    (fun i line ->
      checkb (Printf.sprintf "finding %d on line %d" i line) true
        (has "R3" ~line fs))
    [ 1; 2; 3; 4; 5 ];
  let fs =
    lint
      "let a = function [] -> None | x :: _ -> Some x\n\
       let b l = List.nth_opt l 3\n\
       let c () = assert (1 > 0)\n"
  in
  checkb "total versions clean" false (has "R3" fs)

(* R4: interface hygiene. *)

let test_r4_interfaces () =
  let fs = Lint.check_source ~has_mli:false ~path:dict_path "let x = 1\n" in
  checkb "missing .mli flagged" true (has "R4" fs);
  checkb "open of library wrapper flagged" true
    (has "R4" (lint "open Pdm_sim\nlet x = 1\n"));
  checkb "open of a submodule path flagged" true
    (has "R4" (lint "open Pdm_util.Imath\nlet x = 1\n"));
  checkb "stdlib open tolerated" false (has "R4" (lint "open Printf\n"));
  checkb "module alias is the sanctioned style" false
    (has "R4" (lint "module P = Pdm_sim.Pdm\n"))

(* Suppressions. *)

let allow rule reason = Printf.sprintf "(* pdm-lint: allow %s %s *)" rule reason

let test_suppression_valid () =
  let src =
    Printf.sprintf
      "let f = function\n\
      \  | Some v -> v\n\
      \  | None ->\n\
      \    %s\n\
      \    assert false\n"
      (allow "R3" "— caller guarantees Some by construction")
  in
  Alcotest.(check (list string)) "annotated assert suppressed" [] (rules (lint src))

let test_suppression_needs_reason () =
  let src = allow "R3" "" ^ "\nlet f () = assert false\n" in
  let fs = lint src in
  checkb "missing reason reported" true (has "syntax" fs);
  checkb "finding NOT suppressed without a reason" true (has "R3" fs)

let test_suppression_unknown_rule () =
  let fs = lint (allow "R9" "— because") in
  checkb "unknown rule reported" true (has "syntax" fs)

let test_suppression_unused () =
  let fs = lint (allow "R3" "— nothing here to allow") in
  (match find_rule "syntax" fs with
   | Some f -> checkb "named unused" true (f.Lint.name = "unused-suppression")
   | None -> Alcotest.fail "expected an unused-suppression finding")

let test_suppression_range_is_tight () =
  (* The allowance covers the comment through one line past its close;
     a violation two lines later is still reported. *)
  let src =
    allow "R3" "— stale annotation" ^ "\nlet a = 1\nlet b l = List.hd l\n"
  in
  let fs = lint src in
  checkb "out-of-range finding kept" true (has "R3" ~line:3 fs);
  checkb "and the suppression is unused" true (has "syntax" fs)

let test_suppression_wrong_rule () =
  let src = allow "R2" "— wrong rule entirely" ^ "\nlet f () = assert false\n" in
  let fs = lint src in
  checkb "R3 finding survives an R2 allowance" true (has "R3" fs)

(* Rule toggles, output modes, exit codes. *)

let test_rule_toggle () =
  let config = { Lint.default_config with enabled = [ Lint.R3 ] } in
  let src = "open Pdm_sim\nlet r () = Random.int (List.hd [])\n" in
  Alcotest.(check (list string)) "only R3 reported" [ "R3" ]
    (rules (lint ~config src))

let test_rule_names () =
  List.iter
    (fun r ->
      Alcotest.(check (option bool)) (Lint.rule_id r) (Some true)
        (Option.map (fun r' -> r' = r) (Lint.rule_of_string (Lint.rule_id r)));
      Alcotest.(check (option bool)) (Lint.rule_name r) (Some true)
        (Option.map (fun r' -> r' = r) (Lint.rule_of_string (Lint.rule_name r))))
    Lint.all_rules

let test_json_output () =
  let fs = lint "let a l = List.hd l (* \"quoted\" *)\n" in
  let json = Lint.to_json fs in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  checkb "array shape" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  checkb "rule field" true (contains "\"rule\":\"R3\"" json);
  checkb "file field" true (contains "\"file\":\"lib/dictionary/sample.ml\"" json);
  Alcotest.(check string) "empty list" "[]" (Lint.to_json [])

let test_exit_codes () =
  check "clean tree" 0 (Lint.exit_code []);
  check "findings" 1 (Lint.exit_code (lint "let a l = List.hd l\n"));
  let broken = lint "let let let\n" in
  checkb "unparsable reported as parse" true (has "parse" broken);
  check "parse failure" 2 (Lint.exit_code broken)

let test_text_rendering () =
  match lint "let a l = List.hd l\n" with
  | [ f ] ->
    Alcotest.(check string) "grep-able location prefix"
      "lib/dictionary/sample.ml:1:10:"
      (String.sub (Lint.to_text f) 0 (String.length "lib/dictionary/sample.ml:1:10:"))
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

(* --- the interprocedural rules (R5/R6/R7) ------------------------- *)

let has_substr needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let unit_ path src = { Lint.u_path = path; u_source = src; u_has_mli = true }

(* R5: the acceptance-criteria fixture. A deterministic-component
   function reaches Random.int three calls deep, across a module alias
   and a library wrapper — the old per-file R2 provably cannot see it
   (the helpers live in lib/experiments, where Random is legal), but
   the taint pass flags the frontier call site at its exact line. *)
let taint_units =
  [ unit_ "lib/engine/sample_round.ml"
      "module H = Pdm_experiments.Helper_a\nlet tick () = H.jitter 3\n";
    unit_ "lib/experiments/helper_a.ml"
      "let jitter n = Helper_b.noise n + 1\n";
    unit_ "lib/experiments/helper_b.ml" "let noise n = Random.int n\n" ]

let test_r5_indirect_taint () =
  let fs = (Lint.analyze taint_units).Lint.a_findings in
  checkb "R2 is clean on the deterministic file (the gap R5 closes)" false
    (List.exists
       (fun f ->
         f.Lint.rule = "R2" && f.Lint.file = "lib/engine/sample_round.ml")
       fs);
  checkb "R2 is clean everywhere (helpers may use Random)" false
    (has "R2" fs);
  (match find_rule "R5" fs with
   | Some f ->
     Alcotest.(check string) "flagged in the deterministic unit"
       "lib/engine/sample_round.ml" f.Lint.file;
     check "at the frontier call's line" 2 f.Lint.line;
     checkb "witness chain names the intermediate hop" true
       (has_substr "Helper_a.jitter" f.Lint.message);
     checkb "witness chain ends at the source" true
       (has_substr "Random.int" f.Lint.message)
   | None -> Alcotest.fail "expected an R5 finding");
  check "exactly one finding overall" 1 (List.length fs)

let test_r5_clean_helper () =
  let fs =
    (Lint.analyze
       [ unit_ "lib/engine/sample_round.ml"
           "module H = Pdm_experiments.Helper_a\nlet tick () = H.jitter 3\n";
         unit_ "lib/experiments/helper_a.ml" "let jitter n = n + 1\n" ])
      .Lint.a_findings
  in
  Alcotest.(check (list string)) "deterministic helper chain is clean" []
    (rules fs)

let test_r5_suppressible () =
  let det =
    "module H = Pdm_experiments.Helper_a\n"
    ^ "(* pdm-lint: allow R5 — jitter is only used for report pacing *)\n"
    ^ "let tick () = H.jitter 3\n"
  in
  let fs =
    (Lint.analyze
       [ unit_ "lib/engine/sample_round.ml" det;
         unit_ "lib/experiments/helper_a.ml" "let jitter n = Random.int n\n" ])
      .Lint.a_findings
  in
  Alcotest.(check (list string)) "reasoned allowance silences R5" []
    (rules fs)

(* R6: shared-state inventory over custom entry points. *)

let r6_config entries =
  { Lint.default_config with r6_entries = entries }

let r6_analyze src =
  Lint.analyze
    ~config:(r6_config [ "Sample_engine.loop" ])
    [ unit_ "lib/engine/sample_engine.ml" src ]

let test_r6_unguarded_flagged () =
  let src =
    "type t = { mutable count : int }\n\
     let bump t = t.count <- t.count + 1\n\
     let loop t = bump t\n"
  in
  let a = r6_analyze src in
  (match find_rule "R6" a.Lint.a_findings with
   | Some f ->
     check "at the mutation's line" 2 f.Lint.line;
     checkb "names the target" true (has_substr "t.count" f.Lint.message)
   | None -> Alcotest.fail "expected an R6 finding");
  match a.Lint.a_report with
  | Some r -> checkb "report lists it unguarded" true
                (has_substr "\"unguarded\": 1" r)
  | None -> Alcotest.fail "expected a shared-state report"

let test_r6_not_reachable_not_flagged () =
  (* Same mutation, but nothing reaches it from the entry points: no
     finding — the inventory is scoped to the round loop, not global. *)
  let src =
    "type t = { mutable count : int }\n\
     let bump t = t.count <- t.count + 1\n\
     let loop (_ : t) = ()\n"
  in
  checkb "unreachable mutation not flagged" false
    (has "R6" (r6_analyze src).Lint.a_findings)

let test_r6_guard_statuses () =
  let src =
    "type t = { mutable count : int; gauge : int Atomic.t }\n\
     (* pdm-lint: domain local — counter owned by the loop's domain *)\n\
     let bump t = t.count <- t.count + 1\n\
     let publish t = Atomic.set t.gauge 1\n\
     let scratch () =\n\
    \  let h = Hashtbl.create 8 in\n\
    \  Hashtbl.replace h 1 2;\n\
    \  Hashtbl.length h\n\
     let loop t = bump t; publish t; scratch ()\n"
  in
  let a = r6_analyze src in
  Alcotest.(check (list string)) "all three guard shapes lint clean" []
    (rules a.Lint.a_findings);
  match a.Lint.a_report with
  | Some r ->
    checkb "annotated status with its reason" true
      (has_substr "\"status\": \"annotated\"" r
       && has_substr "counter owned by the loop's domain" r);
    checkb "atomic status" true (has_substr "\"status\": \"atomic\"" r);
    checkb "local status for let-bound allocation" true
      (has_substr "\"status\": \"local\"" r);
    checkb "nothing unguarded" true (has_substr "\"unguarded\": 0" r)
  | None -> Alcotest.fail "expected a shared-state report"

let test_r6_report_byte_stable () =
  let src =
    "type t = { mutable a : int; mutable b : int }\n\
     (* pdm-lint: domain local — loop-owned counters *)\n\
     let bump t = t.a <- t.a + 1; t.b <- t.b + 1\n\
     let loop t = bump t\n"
  in
  match (r6_analyze src).Lint.a_report, (r6_analyze src).Lint.a_report with
  | Some r1, Some r2 -> Alcotest.(check string) "byte-identical" r1 r2
  | _ -> Alcotest.fail "expected shared-state reports"

(* R7: charge completeness. *)

let test_r7_uncharged_io_flagged () =
  let fs =
    (Lint.analyze
       [ unit_ "lib/pdm/sample_store.ml"
           "let raw b = Backend.read b ~attempt:0 3\n" ])
      .Lint.a_findings
  in
  match find_rule "R7" fs with
  | Some f ->
    Alcotest.(check string) "in the fixture file" "lib/pdm/sample_store.ml"
      f.Lint.file;
    check "at the I/O site's line" 1 f.Lint.line;
    checkb "names the uncovered definition" true
      (has_substr "Sample_store.raw" f.Lint.message)
  | None -> Alcotest.fail "expected an R7 finding"

let test_r7_charging_path_clean () =
  (* The definition charges the round ledger itself, and a helper that
     never charges is covered because its only caller does. *)
  let src =
    "type t = { mutable rounds_done : int }\n\
     let helper b = Backend.write b 0 [||]\n\
     let schedule t b =\n\
    \  t.rounds_done <- t.rounds_done + 1;\n\
    \  ignore (Backend.read b ~attempt:0 3);\n\
    \  helper b\n"
  in
  let fs =
    (Lint.analyze [ unit_ "lib/pdm/sample_store.ml" src ]).Lint.a_findings
  in
  checkb "charging entry point and covered helper are clean" false
    (has "R7" fs)

let test_r7_uncovered_caller_taints_helper () =
  (* One charging caller is not enough when another caller is never
     covered: the helper stays uncovered. *)
  let src =
    "type t = { mutable rounds_done : int }\n\
     let helper b = Backend.write b 0 [||]\n\
     let schedule t b = t.rounds_done <- t.rounds_done + 1; helper b\n\
     let stray b = helper b\n"
  in
  let fs =
    (Lint.analyze [ unit_ "lib/pdm/sample_store.ml" src ]).Lint.a_findings
  in
  checkb "helper flagged while one caller is uncovered" true
    (has "R7" ~line:2 fs)

(* Suppression-range widening over multi-line expressions (the PR 4
   matcher only covered the first line of a multi-line binding). *)

let test_suppression_covers_multiline_binding () =
  let src =
    allow "R3" "— the accumulator is provably non-empty here"
    ^ "\nlet f l =\n  let x = 1 in\n  List.hd l + x\n"
  in
  Alcotest.(check (list string)) "violation on the binding's last line" []
    (rules (lint src))

let test_unused_suppression_quotes_reason () =
  let fs = lint (allow "R3" "— stale excuse, should be visible") in
  match find_rule "syntax" fs with
  | Some f ->
    checkb "unused-suppression names it" true
      (f.Lint.name = "unused-suppression");
    checkb "reason text quoted in the message" true
      (has_substr "stale excuse, should be visible" f.Lint.message)
  | None -> Alcotest.fail "expected an unused-suppression finding"

(* Wrapper discovery from the dune files (no hand-maintained list). *)

let test_wrappers_from_dune () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let ws = Lint.wrappers_from_dune [ "../lib" ] in
    List.iter
      (fun w ->
        checkb (w ^ " discovered") true (List.mem w ws))
      [ "Pdm_sim"; "Pdm_io"; "Pdm_lint_core"; "Pdm_cluster" ];
    checkb "sorted and deduplicated" true
      (ws = List.sort_uniq compare ws)
  end

(* The real tree must be lint-clean under all seven rules — the CI
   gate, run from the test binary too so `dune runtest` alone catches a
   regression. dune copies the sources next to the test directory in
   _build; bin/bench/examples ride along with lib since PR 9. *)
let test_tree_is_clean () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let paths =
      List.filter
        (fun p -> Sys.file_exists p && Sys.is_directory p)
        [ "../lib"; "../bin"; "../bench"; "../examples" ]
    in
    let a = Lint.analyze_paths paths in
    Alcotest.(check (list string)) "tree lints clean under R1-R7" []
      (List.map Lint.to_text a.Lint.a_findings);
    let b = Lint.analyze_paths paths in
    match a.Lint.a_report, b.Lint.a_report with
    | Some r1, Some r2 ->
      Alcotest.(check string) "shared-state report is byte-stable" r1 r2;
      checkb "no unguarded shared state in the tree" true
        (has_substr "\"unguarded\": 0" r1);
      checkb "report covers the engine round loop" true
        (has_substr "Engine.run_batch" r1)
    | _ -> Alcotest.fail "expected a shared-state report"
  end

(* --- runtime sanitizer -------------------------------------------- *)

let block_of t xs =
  let b = Array.make (Pdm.block_size t) None in
  List.iteri (fun i x -> b.(i) <- Some x) xs;
  b

let small_workload t =
  let addrs =
    [ { Pdm.disk = 0; block = 0 }; { Pdm.disk = 0; block = 1 };
      { Pdm.disk = 1; block = 0 }; { Pdm.disk = 2; block = 5 } ]
  in
  Pdm.write t (List.map (fun a -> (a, block_of t [ a.Pdm.block ])) addrs);
  ignore (Pdm.read t addrs);
  ignore (Pdm.read_one t { Pdm.disk = 2; block = 5 });
  Stats.parallel_ios (Stats.snapshot (Pdm.stats t))

let test_sanitize_cost_parity () =
  (* Identical charged costs with the sanitizer on and off, on both the
     closed-form fast path and the round scheduler (replicas force the
     latter). *)
  let run ~sanitize ~replicas =
    Sanitize.with_sanitize sanitize (fun () ->
        small_workload
          (Pdm.create ~replicas ~disks:4 ~block_size:8 ~blocks_per_disk:16 ()))
  in
  check "fast path parity" (run ~sanitize:false ~replicas:1)
    (run ~sanitize:true ~replicas:1);
  check "scheduled path parity" (run ~sanitize:false ~replicas:2)
    (run ~sanitize:true ~replicas:2)

let test_sanitize_flag_restored () =
  (* Whatever the ambient value (PDM_SANITIZE=1 runs the suite with it
     on), with_sanitize must restore it even when the thunk raises. *)
  let ambient = Pdm.sanitize_enabled () in
  (try Sanitize.with_sanitize (not ambient) (fun () -> raise Exit)
   with Exit -> ());
  checkb "restored after an exception" ambient (Pdm.sanitize_enabled ())

let violation_check f =
  match f () with
  | _ -> Alcotest.fail "expected a Sanitizer_violation"
  | exception Sanitize.Sanitizer_violation v -> v.Sanitize.check

let test_sanitize_catches_zero_cost_backend () =
  (* A backend claiming cost 0 would let scheduled transfers ride for
     free; the sanitizer refuses to pop it from the queue. *)
  let backends d = { (Backend.memory ~disk:d ~blocks:16) with cost = 0 } in
  let t : int Pdm.t =
    Pdm.create ~backends ~disks:2 ~block_size:4 ~blocks_per_disk:16 ()
  in
  Alcotest.(check string) "backend-cost" "backend-cost"
    (Sanitize.with_sanitize true (fun () ->
         violation_check (fun () ->
             Pdm.read_one t { Pdm.disk = 0; block = 0 })))

let test_sanitize_catches_lying_envelope () =
  (* An envelope declaring overhead 2 whose seal returns a bare payload
     would silently understate every stored block's footprint. *)
  let liar : int Pdm.integrity =
    { tag = "liar"; overhead = 2; seal = Array.copy;
      check = (fun s -> Some (Array.copy s)) }
  in
  let t : int Pdm.t =
    Pdm.create ~integrity:liar ~disks:2 ~block_size:4 ~blocks_per_disk:8 ()
  in
  Alcotest.(check string) "integrity-envelope" "integrity-envelope"
    (Sanitize.with_sanitize true (fun () ->
         violation_check (fun () ->
             Pdm.write_one t { Pdm.disk = 0; block = 0 } (block_of t [ 1 ]))))

let test_sanitize_internal_memory_clean () =
  Sanitize.with_sanitize true (fun () ->
      let m = Internal_memory.create ~capacity_words:64 in
      Internal_memory.alloc m ~words:40;
      Internal_memory.free m ~words:16;
      Internal_memory.alloc m ~words:32;
      check "in_use tracked under sanitize" 56 (Internal_memory.in_use m);
      check "peak tracked under sanitize" 56 (Internal_memory.peak m))

let test_sanitize_describe () =
  let v = { Sanitize.check = "c"; round = 3; detail = "d" } in
  checkb "describes its own exception" true
    (Option.is_some (Sanitize.describe (Sanitize.Sanitizer_violation v)));
  checkb "ignores others" true (Option.is_none (Sanitize.describe Not_found))

let test_sanitize_faulty_machine_passes () =
  (* Retries and stragglers charge extra rounds; the sanitizer must
     agree with that accounting, not just the healthy case. *)
  let faults = Fault.spec ~transient:[ (1, 0.3) ] ~stragglers:[ (2, 2) ] () in
  Sanitize.with_sanitize true (fun () ->
      let t : int Pdm.t =
        Pdm.create ~faults ~disks:4 ~block_size:8 ~blocks_per_disk:16 ()
      in
      checkb "faulty workload completes sanitized" true (small_workload t > 0))

let suite =
  [ ("lint.rules",
     [ tc "R1 backend bypass" `Quick test_r1_backend_bypass;
       tc "R1 peek allowlist" `Quick test_r1_peek_allowlist;
       tc "R2 determinism" `Quick test_r2_determinism;
       tc "R2 audited Unix allowlist (lib/io)" `Quick
         test_r2_unix_io_allowlist;
       tc "R2 audited Unix allowlist (lib/server)" `Quick
         test_r2_unix_server_allowlist;
       tc "R3 totality" `Quick test_r3_totality;
       tc "R4 interfaces" `Quick test_r4_interfaces ]);
    ("lint.interprocedural",
     [ tc "R5 indirect taint (R2-invisible)" `Quick test_r5_indirect_taint;
       tc "R5 clean helper chain" `Quick test_r5_clean_helper;
       tc "R5 suppressible with a reason" `Quick test_r5_suppressible;
       tc "R6 unguarded reachable write" `Quick test_r6_unguarded_flagged;
       tc "R6 scoped to entry reachability" `Quick
         test_r6_not_reachable_not_flagged;
       tc "R6 guard statuses in the report" `Quick test_r6_guard_statuses;
       tc "R6 report byte-stable" `Quick test_r6_report_byte_stable;
       tc "R7 uncharged backend I/O" `Quick test_r7_uncharged_io_flagged;
       tc "R7 charging path clean" `Quick test_r7_charging_path_clean;
       tc "R7 one uncovered caller taints" `Quick
         test_r7_uncovered_caller_taints_helper ]);
    ("lint.suppressions",
     [ tc "valid allowance" `Quick test_suppression_valid;
       tc "reason required" `Quick test_suppression_needs_reason;
       tc "unknown rule" `Quick test_suppression_unknown_rule;
       tc "unused reported" `Quick test_suppression_unused;
       tc "range is tight" `Quick test_suppression_range_is_tight;
       tc "wrong rule does not mask" `Quick test_suppression_wrong_rule;
       tc "multi-line binding covered" `Quick
         test_suppression_covers_multiline_binding;
       tc "unused quotes its reason" `Quick
         test_unused_suppression_quotes_reason ]);
    ("lint.cli_contract",
     [ tc "rule toggles" `Quick test_rule_toggle;
       tc "rule naming round-trip" `Quick test_rule_names;
       tc "json output" `Quick test_json_output;
       tc "exit codes" `Quick test_exit_codes;
       tc "text rendering" `Quick test_text_rendering;
       tc "wrappers derived from dune files" `Quick test_wrappers_from_dune;
       tc "whole tree is clean" `Quick test_tree_is_clean ]);
    ("sanitize",
     [ tc "cost parity on/off" `Quick test_sanitize_cost_parity;
       tc "flag restored" `Quick test_sanitize_flag_restored;
       tc "catches zero-cost backend" `Quick
         test_sanitize_catches_zero_cost_backend;
       tc "catches lying envelope" `Quick test_sanitize_catches_lying_envelope;
       tc "internal memory accounting" `Quick
         test_sanitize_internal_memory_clean;
       tc "describe" `Quick test_sanitize_describe;
       tc "faulty machine passes" `Quick test_sanitize_faulty_machine_passes ]) ]
