(* Unit and property tests for Pdm_util. *)

open Pdm_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.next a = Prng.next b then incr same
  done;
  check "different seeds diverge" 0 !same

let test_prng_int_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    checkb "in range" true (v >= 0 && v < 10)
  done

let test_prng_int_covers () =
  let g = Prng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 5) <- true
  done;
  Array.iteri (fun i s -> checkb (Printf.sprintf "value %d seen" i) true s) seen

let test_prng_int_in () =
  let g = Prng.create 9 in
  for _ = 1 to 200 do
    let v = Prng.int_in g (-5) 5 in
    checkb "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_prng_split_independent () =
  let g = Prng.create 11 in
  let h = Prng.split g in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.next g = Prng.next h then incr same
  done;
  checkb "split streams differ" true (!same <= 1)

let test_hash2_stable () =
  check "stable" (Prng.hash2 ~seed:5 17 3) (Prng.hash2 ~seed:5 17 3);
  checkb "seed matters" true
    (Prng.hash2 ~seed:5 17 3 <> Prng.hash2 ~seed:6 17 3);
  checkb "arg order matters" true
    (Prng.hash2 ~seed:5 17 3 <> Prng.hash2 ~seed:5 3 17)

let test_hash_to_range () =
  for x = 0 to 200 do
    let v = Prng.hash_to_range ~seed:1 x 0 7 in
    checkb "in range" true (v >= 0 && v < 7)
  done

let test_shuffle_permutation () =
  let g = Prng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_float_range () =
  let g = Prng.create 17 in
  for _ = 1 to 1000 do
    let f = Prng.float g 1.0 in
    checkb "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

(* --- Imath --- *)

let test_cdiv () =
  check "7/2" 4 (Imath.cdiv 7 2);
  check "8/2" 4 (Imath.cdiv 8 2);
  check "0/5" 0 (Imath.cdiv 0 5);
  check "1/5" 1 (Imath.cdiv 1 5)

let test_logs () =
  check "floor_log2 1" 0 (Imath.floor_log2 1);
  check "floor_log2 7" 2 (Imath.floor_log2 7);
  check "floor_log2 8" 3 (Imath.floor_log2 8);
  check "ceil_log2 1" 0 (Imath.ceil_log2 1);
  check "ceil_log2 7" 3 (Imath.ceil_log2 7);
  check "ceil_log2 8" 3 (Imath.ceil_log2 8);
  check "ceil_log2 9" 4 (Imath.ceil_log2 9)

let test_pow2 () =
  checkb "is_pow2 1" true (Imath.is_pow2 1);
  checkb "is_pow2 6" false (Imath.is_pow2 6);
  checkb "is_pow2 0" false (Imath.is_pow2 0);
  check "next_pow2 5" 8 (Imath.next_pow2 5);
  check "next_pow2 8" 8 (Imath.next_pow2 8)

let test_pow () =
  check "3^0" 1 (Imath.pow 3 0);
  check "3^4" 81 (Imath.pow 3 4);
  check "2^10" 1024 (Imath.pow 2 10)

let test_ilog () =
  check "ilog 3 27" 3 (Imath.ilog ~base:3 27);
  check "ilog 3 26" 2 (Imath.ilog ~base:3 26);
  check "ilog 10 1" 0 (Imath.ilog ~base:10 1)

let test_round_up_to () =
  check "12->15" 15 (Imath.round_up_to ~multiple:5 12);
  check "15->15" 15 (Imath.round_up_to ~multiple:5 15);
  check "0->0" 0 (Imath.round_up_to ~multiple:5 0)

(* --- Bitbuf --- *)

let test_bitbuf_roundtrip () =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.add_bits w ~value:0b1011 ~width:4;
  Bitbuf.Writer.add_unary w 3;
  Bitbuf.Writer.add_bits w ~value:12345 ~width:20;
  Bitbuf.Writer.add_unary w 0;
  check "length" (4 + 4 + 20 + 1) (Bitbuf.Writer.length_bits w);
  let r = Bitbuf.Reader.of_writer w in
  check "bits" 0b1011 (Bitbuf.Reader.read_bits r ~width:4);
  check "unary" 3 (Bitbuf.Reader.read_unary r);
  check "bits2" 12345 (Bitbuf.Reader.read_bits r ~width:20);
  check "unary0" 0 (Bitbuf.Reader.read_unary r)

let test_bitbuf_seek () =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.add_bits w ~value:0xAB ~width:8;
  Bitbuf.Writer.add_bits w ~value:0xCD ~width:8;
  let r = Bitbuf.Reader.of_writer w in
  Bitbuf.Reader.seek r 8;
  check "second byte" 0xCD (Bitbuf.Reader.read_bits r ~width:8);
  Bitbuf.Reader.seek r 0;
  check "first byte" 0xAB (Bitbuf.Reader.read_bits r ~width:8)

let test_bitbuf_value_too_wide () =
  let w = Bitbuf.Writer.create () in
  Alcotest.check_raises "too wide" (Invalid_argument "Bitbuf.add_bits: value does not fit width")
    (fun () -> Bitbuf.Writer.add_bits w ~value:4 ~width:2)

let prop_bitbuf_words =
  QCheck.Test.make ~name:"bitbuf word roundtrip" ~count:200
    QCheck.(list (pair (int_bound ((1 lsl 16) - 1)) (int_range 1 16)))
    (fun entries ->
      let entries =
        List.map (fun (v, w) -> (v land ((1 lsl w) - 1), w)) entries
      in
      let w = Bitbuf.Writer.create () in
      List.iter (fun (v, wd) -> Bitbuf.Writer.add_bits w ~value:v ~width:wd) entries;
      let r = Bitbuf.Reader.of_writer w in
      List.for_all
        (fun (v, wd) -> Bitbuf.Reader.read_bits r ~width:wd = v)
        entries)

let prop_bitbuf_unary =
  QCheck.Test.make ~name:"bitbuf unary roundtrip" ~count:200
    QCheck.(list (int_bound 40))
    (fun ns ->
      let w = Bitbuf.Writer.create () in
      List.iter (Bitbuf.Writer.add_unary w) ns;
      let r = Bitbuf.Reader.of_writer w in
      List.for_all (fun n -> Bitbuf.Reader.read_unary r = n) ns)

(* --- Zipf --- *)

let test_zipf_uniform_degenerate () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  let p0 = Zipf.pmf z 0 and p9 = Zipf.pmf z 9 in
  Alcotest.(check (float 1e-9)) "uniform" p0 p9

let test_zipf_monotone () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  for k = 0 to 98 do
    checkb "pmf decreasing" true (Zipf.pmf z k >= Zipf.pmf z (k + 1))
  done

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:50 ~s:1.2 in
  let total = ref 0.0 in
  for k = 0 to 49 do
    total := !total +. Zipf.pmf z k
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total

let test_zipf_sample_range_and_skew () =
  let z = Zipf.create ~n:1000 ~s:1.1 in
  let g = Prng.create 21 in
  let low = ref 0 in
  for _ = 1 to 2000 do
    let k = Zipf.sample z g in
    checkb "rank in range" true (k >= 0 && k < 1000);
    if k < 10 then incr low
  done;
  checkb "skewed towards head" true (!low > 400)

(* --- Summary --- *)

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add_int s) [ 1; 2; 3; 4 ];
  check "count" 4 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Summary.max s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Summary.min s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Summary.total s)

let test_summary_percentile () =
  let s = Summary.create () in
  for i = 1 to 100 do Summary.add_int s i done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Summary.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Summary.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p1" 1.0 (Summary.percentile s 1.0)

let test_summary_stddev () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 2.0; 2.0 ];
  Alcotest.(check (float 1e-9)) "zero spread" 0.0 (Summary.stddev s)

(* --- Sampling --- *)

let test_sampling_distinct () =
  let g = Prng.create 31 in
  let keys = Sampling.distinct g ~universe:1000 ~count:200 in
  check "count" 200 (Array.length keys);
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun k ->
      checkb "in range" true (k >= 0 && k < 1000);
      checkb "distinct" false (Hashtbl.mem tbl k);
      Hashtbl.add tbl k ())
    keys

let test_sampling_dense () =
  let g = Prng.create 33 in
  let keys = Sampling.distinct g ~universe:10 ~count:10 in
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "all of universe" (Array.init 10 (fun i -> i)) sorted

let test_sampling_disjoint_pair () =
  let g = Prng.create 35 in
  let a, b = Sampling.disjoint_pair g ~universe:500 ~count:100 in
  let tbl = Hashtbl.create 256 in
  Array.iter (fun k -> Hashtbl.add tbl k ()) a;
  Array.iter (fun k -> checkb "disjoint" false (Hashtbl.mem tbl k)) b

let test_sampling_clustered () =
  let g = Prng.create 37 in
  let keys = Sampling.clustered g ~universe:100000 ~count:50 ~span:64 in
  let lo = Array.fold_left min max_int keys in
  let hi = Array.fold_left max 0 keys in
  checkb "within a 64-window" true (hi - lo < 64)

let suite =
  let tc = Alcotest.test_case in
  [ ("util.prng",
     [ tc "deterministic" `Quick test_prng_deterministic;
       tc "seed sensitivity" `Quick test_prng_seed_sensitivity;
       tc "int bounds" `Quick test_prng_int_bounds;
       tc "int covers range" `Quick test_prng_int_covers;
       tc "int_in range" `Quick test_prng_int_in;
       tc "split independence" `Quick test_prng_split_independent;
       tc "hash2 stable" `Quick test_hash2_stable;
       tc "hash_to_range bounds" `Quick test_hash_to_range;
       tc "shuffle is a permutation" `Quick test_shuffle_permutation;
       tc "float range" `Quick test_float_range ]);
    ("util.imath",
     [ tc "cdiv" `Quick test_cdiv;
       tc "logs" `Quick test_logs;
       tc "pow2 helpers" `Quick test_pow2;
       tc "pow" `Quick test_pow;
       tc "ilog" `Quick test_ilog;
       tc "round_up_to" `Quick test_round_up_to ]);
    ("util.bitbuf",
     [ tc "roundtrip" `Quick test_bitbuf_roundtrip;
       tc "seek" `Quick test_bitbuf_seek;
       tc "width check" `Quick test_bitbuf_value_too_wide;
       QCheck_alcotest.to_alcotest prop_bitbuf_words;
       QCheck_alcotest.to_alcotest prop_bitbuf_unary ]);
    ("util.zipf",
     [ tc "s=0 is uniform" `Quick test_zipf_uniform_degenerate;
       tc "pmf monotone" `Quick test_zipf_monotone;
       tc "pmf sums to 1" `Quick test_zipf_pmf_sums_to_one;
       tc "sample range and skew" `Quick test_zipf_sample_range_and_skew ]);
    ("util.summary",
     [ tc "basic stats" `Quick test_summary_basic;
       tc "percentiles" `Quick test_summary_percentile;
       tc "stddev" `Quick test_summary_stddev ]);
    ("util.sampling",
     [ tc "distinct" `Quick test_sampling_distinct;
       tc "dense universe" `Quick test_sampling_dense;
       tc "disjoint pair" `Quick test_sampling_disjoint_pair;
       tc "clustered" `Quick test_sampling_clustered ]) ]

(* --- varint (appended) --- *)

let prop_bitbuf_varint =
  QCheck.Test.make ~name:"bitbuf varint roundtrip" ~count:300
    QCheck.(list (frequency [ (3, int_bound 200); (1, int_bound max_int) ]))
    (fun ns ->
      let w = Bitbuf.Writer.create () in
      List.iter (Bitbuf.Writer.add_varint w) ns;
      let r = Bitbuf.Reader.of_writer w in
      List.for_all (fun n -> Bitbuf.Reader.read_varint r = n) ns)

let test_varint_sizes () =
  let bits n =
    let w = Bitbuf.Writer.create () in
    Bitbuf.Writer.add_varint w n;
    Bitbuf.Writer.length_bits w
  in
  Alcotest.(check int) "small = 1 byte" 8 (bits 0);
  Alcotest.(check int) "127 = 1 byte" 8 (bits 127);
  Alcotest.(check int) "128 = 2 bytes" 16 (bits 128);
  Alcotest.(check int) "2^14 = 3 bytes" 24 (bits (1 lsl 14))

let suite =
  suite
  @ [ ("util.varint",
       [ QCheck_alcotest.to_alcotest prop_bitbuf_varint;
         Alcotest.test_case "encoded sizes" `Quick test_varint_sizes ]) ]
