(* Tests for the sharded placement tier: topology algebra, the
   weighted-rendezvous placement properties (determinism across
   process-independent rebuilds, failure-domain spread, weight
   proportionality), migration plan minimality, the cluster front end
   (routing, scatter-gather, failover, journaled migrations with
   injected crashes), and the sim harness's cluster configs. *)

module Topology = Pdm_cluster.Topology
module Placement = Pdm_cluster.Placement
module Migration = Pdm_cluster.Migration
module Cluster = Pdm_cluster.Cluster
module Journal = Pdm_sim.Journal
module Config = Pdm_simtest.Sim_config
module Gen = Pdm_simtest.Sim_gen
module Run = Pdm_simtest.Sim_run
module Explore = Pdm_simtest.Sim_explore
module J = Pdm_simtest.Sim_json
module Payload = Pdm_workload.Payload

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let value_of k = Payload.value_bytes_of 8 k

(* --- topology --- *)

let test_topology_algebra () =
  let t = Topology.standard ~shards:4 in
  check "count" 4 (Topology.count t);
  check "version" 0 (Topology.version t);
  check "total weight" 4 (Topology.total_weight t);
  check "racks" 2 (List.length (Topology.racks t));
  let t2 =
    Topology.add_shard t { Topology.id = 9; weight = 2; host = 9; rack = 4 }
  in
  check "added" 5 (Topology.count t2);
  check "version bumped" 1 (Topology.version t2);
  check "weight updated" 6 (Topology.total_weight t2);
  checkb "original untouched" true (Topology.count t = 4);
  let t3 = Topology.reweight t2 9 ~weight:5 in
  check "reweighted total" 9 (Topology.total_weight t3);
  check "reweight bumps version" 2 (Topology.version t3);
  let t4 = Topology.remove_shard t3 0 in
  check "removed" 4 (Topology.count t4);
  checkb "gone" true (Topology.find t4 0 = None);
  (* invalid constructions *)
  let rejects f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "duplicate id rejected" true
    (rejects (fun () ->
         Topology.make
           [ { Topology.id = 1; weight = 1; host = 0; rack = 0 };
             { Topology.id = 1; weight = 1; host = 1; rack = 0 } ]));
  checkb "zero weight rejected" true
    (rejects (fun () ->
         Topology.make [ { Topology.id = 0; weight = 0; host = 0; rack = 0 } ]));
  checkb "empty rejected" true (rejects (fun () -> Topology.make []));
  checkb "removing last shard rejected" true
    (rejects (fun () ->
         Topology.remove_shard (Topology.standard ~shards:1) 0));
  checkb "adding existing id rejected" true
    (rejects (fun () ->
         Topology.add_shard t { Topology.id = 2; weight = 1; host = 7; rack = 7 }))

let test_topology_spec_roundtrip () =
  let t =
    Topology.make
      [ { Topology.id = 0; weight = 2; host = 0; rack = 0 };
        { Topology.id = 3; weight = 1; host = 1; rack = 0 };
        { Topology.id = 7; weight = 4; host = 2; rack = 1 } ]
  in
  (match Topology.of_spec_string (Topology.spec_string t) with
   | Ok t' ->
     checkb "shards survive" true (Topology.shards t' = Topology.shards t)
   | Error m -> Alcotest.fail m);
  checkb "garbage rejected" true
    (match Topology.of_spec_string "1:2:3" with Error _ -> true | Ok _ -> false);
  checkb "bad int rejected" true
    (match Topology.of_spec_string "a:0:0:1" with
     | Error _ -> true
     | Ok _ -> false)

(* --- placement properties (qcheck) --- *)

(* arbitrary small topologies: 2..10 shards, weights 1..4, two hosts
   per rack by default but occasionally denser racks *)
let topo_gen =
  QCheck.Gen.(
    let* n = int_range 2 10 in
    let* dense = bool in
    let* weights = array_size (return n) (int_range 1 4) in
    return
      (Topology.make
         (List.init n (fun i ->
              { Topology.id = i; weight = weights.(i); host = i;
                rack = (if dense then i / 3 else i / 2) }))))

let topo_arb =
  QCheck.make
    ~print:(fun t -> Topology.spec_string t)
    topo_gen

let prop_placement_deterministic =
  QCheck.Test.make ~name:"placement survives spec-string rebuild" ~count:200
    QCheck.(triple topo_arb (int_bound 1_000_000) (int_bound 1000))
    (fun (topo, seed, key) ->
      let r = min 3 (Topology.count topo) in
      let direct = Placement.replicas topo ~seed ~r key in
      match Topology.of_spec_string (Topology.spec_string topo) with
      | Error _ -> false
      | Ok topo' -> Placement.replicas topo' ~seed ~r key = direct)

let prop_replicas_distinct_domains =
  QCheck.Test.make ~name:"replicas spread across failure domains" ~count:200
    QCheck.(triple topo_arb (int_bound 1_000_000) (int_bound 1000))
    (fun (topo, seed, key) ->
      let r = min 3 (Topology.count topo) in
      let ids = Placement.replicas topo ~seed ~r key in
      let shards =
        List.filter_map (fun id -> Topology.find topo id) ids
      in
      let distinct l = List.sort_uniq compare l in
      let ids_distinct = List.length (distinct ids) = List.length ids in
      let racks = List.map (fun (s : Topology.shard) -> s.rack) shards in
      let rack_count = List.length (Topology.racks topo) in
      (* as many distinct racks as r and the topology allow *)
      let racks_ok =
        List.length (distinct racks) >= min r rack_count
      in
      List.length ids = r && ids_distinct && racks_ok)

let prop_weight_ratios =
  QCheck.Test.make ~name:"weight ratios respected within tolerance" ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      (* 2:1 weighted shards; per-unit-weight load must be flat *)
      let topo =
        Topology.make
          (List.init 6 (fun i ->
               { Topology.id = i; weight = (if i < 3 then 2 else 1);
                 host = i; rack = i / 2 }))
      in
      let total_weight = Topology.total_weight topo in
      let n = 20_000 in
      let counts = Array.make 6 0 in
      for key = 0 to n - 1 do
        let p = Placement.primary topo ~seed key in
        counts.(p) <- counts.(p) + 1
      done;
      List.for_all
        (fun (s : Topology.shard) ->
          let expected = float_of_int (n * s.weight) /. float_of_int total_weight in
          let got = float_of_int counts.(s.id) in
          abs_float (got -. expected) /. expected < 0.10)
        (Topology.shards topo))

(* --- migration plans --- *)

let test_migration_minimal_movement () =
  let seed = 11 and s = 5 in
  let topo = Topology.standard ~shards:s in
  let keys = List.init 5000 (fun i -> i * 7) in
  let grown =
    Topology.add_shard topo
      { Topology.id = s; weight = 1; host = s; rack = s / 2 }
  in
  let plan =
    Migration.plan ~old_topology:topo ~new_topology:grown ~seed ~replicas:1
      ~keys
  in
  check "keys considered" 5000 plan.Migration.keys_considered;
  let moved = Migration.moved_keys plan in
  let optimal = 5000 / (s + 1) in
  checkb "moves at least something" true (moved > 0);
  checkb
    (Printf.sprintf "moved %d <= 1.5x optimal %d" moved optimal)
    true
    (float_of_int moved <= 1.5 *. float_of_int optimal);
  (* rendezvous minimality: every move lands on the new shard, and
     untouched keys keep their placement *)
  List.iter
    (fun (m : Migration.move) ->
      checkb "move targets the new shard" true (List.mem s m.to_shards))
    plan.Migration.moves;
  let moved_set = List.map (fun (m : Migration.move) -> m.key) plan.Migration.moves in
  List.iter
    (fun k ->
      if not (List.mem k moved_set) then
        checkb "untouched key placement unchanged" true
          (Placement.replicas topo ~seed ~r:1 k
           = Placement.replicas grown ~seed ~r:1 k))
    (List.filteri (fun i _ -> i mod 97 = 0) keys)

(* --- cluster end-to-end --- *)

let small_config ~journaled ~replicas =
  { Cluster.default_config with
    Cluster.replicas; shard_capacity = 256; universe = 1 lsl 14;
    journaled; seed = 7 }

let populate c n =
  for k = 0 to n - 1 do
    Cluster.insert c (k * 3) (value_of (k * 3))
  done

let sweep_ok c n =
  let ok = ref true in
  for k = 0 to n - 1 do
    (match Cluster.find c (k * 3) with
     | Some v -> if not (Bytes.equal v (value_of (k * 3))) then ok := false
     | None -> ok := false);
    if Cluster.find c ((k * 3) + 1) <> None then ok := false
  done;
  !ok

let test_cluster_basic_ops () =
  let c =
    Cluster.create
      ~config:(small_config ~journaled:false ~replicas:2)
      (Topology.standard ~shards:4)
  in
  populate c 120;
  check "size" 120 (Cluster.size c);
  checkb "all present, absent absent" true (sweep_ok c 120);
  (* batched scatter-gather agrees with direct reads, duplicates and
     misses included *)
  let keys = [ 0; 3; 3; 6; 1; 300; 9; 0 ] in
  let batched = Cluster.find_batch c keys in
  let direct = List.map (Cluster.find c) keys in
  checkb "batch = direct" true (batched = direct);
  check "batch answer arity" (List.length keys) (List.length batched);
  (* the batch cost honest rounds on the slowest shard *)
  let st = Cluster.stats c in
  checkb "batch rounds charged" true (st.Cluster.batch_rounds > 0);
  checkb "every shard holds keys" true
    (List.for_all (fun (_, n) -> n > 0) (Cluster.shard_sizes c));
  (* r=2: every key is stored twice across the shards *)
  check "copies = 2N"
    (2 * 120)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Cluster.shard_sizes c));
  (* delete removes every copy *)
  checkb "delete reports presence" true (Cluster.delete c 0);
  checkb "delete of absent" false (Cluster.delete c 0);
  checkb "deleted gone" true (Cluster.find c 0 = None);
  check "size after delete" 119 (Cluster.size c)

let test_cluster_kill_shard_availability () =
  let c =
    Cluster.create
      ~config:(small_config ~journaled:false ~replicas:2)
      (Topology.standard ~shards:6)
  in
  populate c 200;
  Cluster.kill_shard c 3;
  checkb "shard down" true (Cluster.shard_down c 3);
  (* 100% availability: every key still answers correctly via its
     surviving replica *)
  checkb "all keys survive one shard kill" true (sweep_ok c 200);
  let st = Cluster.stats c in
  checkb "failovers counted" true (st.Cluster.failovers > 0);
  (* batched path fails over too *)
  let keys = List.init 200 (fun k -> k * 3) in
  let batched = Cluster.find_batch c keys in
  checkb "batched failover" true
    (List.for_all2
       (fun k v ->
         match v with Some b -> Bytes.equal b (value_of k) | None -> false)
       keys batched);
  (* updates keep working degraded: the dead shard just misses copies *)
  Cluster.insert c 601 (value_of 601);
  checkb "degraded insert readable" true
    (Cluster.find c 601 = Some (value_of 601))

let test_cluster_add_shard_migration () =
  let c =
    Cluster.create
      ~config:(small_config ~journaled:false ~replicas:1)
      (Topology.standard ~shards:4)
  in
  let n = 400 in
  populate c n;
  let report =
    Cluster.add_shard c { Topology.id = 4; weight = 1; host = 4; rack = 2 }
  in
  let optimal = n / 5 in
  checkb
    (Printf.sprintf "moved %d <= 1.5x optimal %d" report.Cluster.moved_keys
       optimal)
    true
    (float_of_int report.Cluster.moved_keys <= 1.5 *. float_of_int optimal);
  checkb "migration reads = moved keys" true
    (report.Cluster.reads = report.Cluster.moved_keys);
  checkb "migration charged rounds" true (report.Cluster.rounds > 0);
  checkb "all keys correct after growth" true (sweep_ok c n);
  checkb "new shard took keys" true
    (match List.assoc_opt 4 (Cluster.shard_sizes c) with
     | Some k -> k > 0
     | None -> false);
  (* remove it again: keys drain back, nothing lost *)
  let report2 = Cluster.remove_shard c 4 in
  checkb "drain moved the same keys" true
    (report2.Cluster.moved_keys = report.Cluster.moved_keys);
  checkb "all keys correct after drain" true (sweep_ok c n);
  checkb "shard state dropped" true
    (not (List.mem 4 (Cluster.shard_ids c)));
  (* reweight shifts load toward the heavier shard *)
  let before = List.assoc 0 (Cluster.shard_sizes c) in
  let r3 = Cluster.reweight c 0 ~weight:3 in
  checkb "reweight moved keys" true (r3.Cluster.moved_keys > 0);
  checkb "reweight correct" true (sweep_ok c n);
  checkb "shard 0 grew" true (List.assoc 0 (Cluster.shard_sizes c) > before)

let test_cluster_client_crash_visibility () =
  (* an armed crash on an update decides its visibility exactly as the
     journal protocol promises, replicated across shards *)
  List.iter
    (fun (point, survives, expect) ->
      let c =
        Cluster.create
          ~config:(small_config ~journaled:true ~replicas:2)
          (Topology.standard ~shards:3)
      in
      populate c 40;
      Cluster.set_crash c (Some point);
      (match Cluster.insert c 999 (value_of 999) with
       | () -> Alcotest.fail "armed crash did not fire"
       | exception Journal.Crashed -> ());
      let got = Cluster.recover c in
      checkb "recovery outcome matches journal promise" true
        (match (expect, got) with
         | `Clean, `Clean | `Discarded, `Discarded | `Replayed, `Replayed _ ->
           true
         | _ -> false);
      checkb "second recovery clean" true (Cluster.recover c = `Clean);
      checkb
        (Printf.sprintf "visibility matches protocol (%b)" survives)
        true
        (Cluster.find c 999 = (if survives then Some (value_of 999) else None));
      checkb "other keys untouched" true (sweep_ok c 40))
    [ (* pre-commit points leave the header empty (data blocks without
         a commit record are invisible), so recovery reports Clean *)
      (Journal.Before_log, false, `Clean);
      (Journal.After_log, false, `Clean);
      (Journal.After_commit, true, `Replayed);
      (* After_apply fires before the header clear: the committed log
         is still there and recovery (idempotently) replays it *)
      (Journal.After_apply, true, `Replayed) ]

let test_cluster_migration_crash_recovery () =
  (* crash injected into a migration move: lookups fall back to the
     old placement until recover re-executes the plan *)
  let crashes = ref 0 in
  List.iter
    (fun point ->
      List.iter
        (fun move_idx ->
          let c =
            Cluster.create
              ~config:(small_config ~journaled:true ~replicas:1)
              (Topology.standard ~shards:3)
          in
          let n = 60 in
          populate c n;
          (match
             Cluster.add_shard c ~crash:(move_idx, point)
               { Topology.id = 3; weight = 1; host = 3; rack = 1 }
           with
           | (_ : Cluster.migration_report) -> ()
             (* move_idx past the plan or the armed write skipped:
                migration completed *)
           | exception Journal.Crashed ->
             incr crashes;
             checkb "in flight" true (Cluster.migration_in_flight c);
             (* availability during the wreckage: every key answers
                via new home or old-placement fallback *)
             checkb "mid-crash sweep" true (sweep_ok c n);
             let st = Cluster.stats c in
             checkb "fallback used" true (st.Cluster.fallback_hits > 0);
             (match Cluster.recover c with
              | `Clean | `Discarded | `Replayed _ -> ());
             checkb "not in flight after recover" true
               (not (Cluster.migration_in_flight c)));
          checkb "post-recovery sweep" true (sweep_ok c n);
          checkb "second recover clean" true (Cluster.recover c = `Clean))
        [ 0; 3 ])
    [ Journal.Before_log; Journal.After_commit; Journal.After_apply ];
  checkb "crashes actually fired" true (!crashes >= 4)

let test_cluster_trace_shards () =
  let c =
    Cluster.create
      ~config:
        { (small_config ~journaled:false ~replicas:2) with
          Cluster.trace_rounds = 512 }
      (Topology.standard ~shards:3)
  in
  populate c 30;
  let evs = Cluster.trace_events c in
  checkb "traced" true (evs <> []);
  let shards =
    List.sort_uniq compare
      (List.map (fun (e : Pdm_sim.Trace.event) -> e.shard) evs)
  in
  check "all shards traced" 3 (List.length shards);
  (* shard-tagged JSONL round-trips *)
  List.iter
    (fun (e : Pdm_sim.Trace.event) ->
      checkb "event round-trips" true
        (Pdm_sim.Trace.event_of_json (Pdm_sim.Trace.event_to_json e) = Some e))
    (List.filteri (fun i _ -> i mod 17 = 0) evs)

(* --- sim harness cluster configs --- *)

let cluster_cfg =
  { (Config.default Config.Cluster) with
    Config.journaled = true; replicas = 2; capacity = 48; seed = 5 }

let test_sim_cluster_clean_run () =
  let ops = Gen.ops (Config.gen_spec ~count:96 cluster_cfg) in
  let r = Run.run cluster_cfg [] (Array.to_seq ops) in
  checkb "clean cluster run" true (Run.ok r);
  (* with a migration in the middle of the stream *)
  let cfg = { cluster_cfg with Config.migrate_at = 40 } in
  let r = Run.run cfg [] (Array.to_seq ops) in
  checkb "clean run across a live migration" true (Run.ok r);
  (* and with a shard kill *)
  let r =
    Run.run cfg
      [ Pdm_simtest.Sim_schedule.Kill { at = 10; disk = 1 } ]
      (Array.to_seq ops)
  in
  checkb "clean run across shard kill + migration" true (Run.ok r)

let test_sim_cluster_explore () =
  let out = Explore.explore ~budget:60 ~count:48 cluster_cfg in
  checkb "schedules explored" true (out.Explore.explored >= 30);
  check "no divergences" 0 (List.length out.Explore.divergent);
  check "all clean" out.Explore.explored out.Explore.clean

let test_sim_cluster_config_json () =
  (* new fields round-trip *)
  let cfg = { cluster_cfg with Config.migrate_at = 12 } in
  (match Config.of_json (Config.to_json cfg) with
   | Ok cfg' -> checkb "cluster config round-trips" true (cfg' = cfg)
   | Error m -> Alcotest.fail m);
  (* a pre-cluster config object (no shards/migrate_at fields) still
     parses, defaulting both *)
  let old = Config.default Config.One_probe_dynamic in
  let stripped =
    match Config.to_json old with
    | J.Obj fields ->
      J.Obj
        (List.filter
           (fun (k, _) -> k <> "shards" && k <> "migrate_at")
           fields)
    | j -> j
  in
  (match Config.of_json stripped with
   | Ok cfg' -> checkb "old repro config parses" true (cfg' = old)
   | Error m -> Alcotest.fail m);
  (* validation: the cluster knobs are rejected elsewhere *)
  checkb "shards on non-cluster rejected" true
    (match
       Config.validate { old with Config.shards = 3 }
     with
     | Error _ -> true
     | Ok () -> false);
  checkb "replicas > shards rejected" true
    (match Config.validate { cluster_cfg with Config.replicas = 9 } with
     | Error _ -> true
     | Ok () -> false);
  checkb "describe mentions topology" true
    (String.length (Config.describe { cluster_cfg with Config.migrate_at = 3 })
     > String.length "cluster")

let suite =
  [ ( "cluster",
      [ Alcotest.test_case "topology algebra" `Quick test_topology_algebra;
        Alcotest.test_case "topology spec roundtrip" `Quick
          test_topology_spec_roundtrip;
        Alcotest.test_case "migration minimal movement" `Quick
          test_migration_minimal_movement;
        Alcotest.test_case "basic ops + scatter-gather" `Quick
          test_cluster_basic_ops;
        Alcotest.test_case "kill-shard availability" `Quick
          test_cluster_kill_shard_availability;
        Alcotest.test_case "add/remove/reweight migrations" `Quick
          test_cluster_add_shard_migration;
        Alcotest.test_case "client crash visibility" `Quick
          test_cluster_client_crash_visibility;
        Alcotest.test_case "migration crash recovery" `Quick
          test_cluster_migration_crash_recovery;
        Alcotest.test_case "per-shard trace tags" `Quick
          test_cluster_trace_shards;
        Alcotest.test_case "sim clean runs" `Quick test_sim_cluster_clean_run;
        Alcotest.test_case "sim crash exploration" `Quick
          test_sim_cluster_explore;
        Alcotest.test_case "sim config json compat" `Quick
          test_sim_cluster_config_json ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_placement_deterministic; prop_replicas_distinct_domains;
            prop_weight_ratios ] ) ]
