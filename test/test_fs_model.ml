(* Model-based random-operation test for the mini file system: drive
   random create/append/overwrite/read/delete/rename sequences against
   Mini_fs and a reference model simultaneously. *)

module Fs = Pdm_fs.Mini_fs

type op =
  | Create of string
  | Append of string * string
  | Overwrite of string * int * string
  | Read of string * int
  | Delete of string
  | Rename of string * string
  | Stat of string

let names = [| "a"; "b"; "c"; "dd"; "ee"; "long7ch" |]

let op_gen =
  QCheck.Gen.(
    let name = map (fun i -> names.(i)) (int_bound (Array.length names - 1)) in
    let payload = map (fun i -> Printf.sprintf "data-%03d" i) (int_bound 999) in
    frequency
      [ (2, map (fun n -> Create n) name);
        (4, map2 (fun n p -> Append (n, p)) name payload);
        (2, map3 (fun n i p -> Overwrite (n, i, p)) name (int_bound 12) payload);
        (5, map2 (fun n i -> Read (n, i)) name (int_bound 12));
        (1, map (fun n -> Delete n) name);
        (1, map2 (fun a b -> Rename (a, b)) name name);
        (1, map (fun n -> Stat n) name) ])

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Create n -> "C" ^ n
             | Append (n, _) -> "A" ^ n
             | Overwrite (n, i, _) -> Printf.sprintf "W%s@%d" n i
             | Read (n, i) -> Printf.sprintf "R%s@%d" n i
             | Delete n -> "D" ^ n
             | Rename (a, b) -> Printf.sprintf "M%s>%s" a b
             | Stat n -> "S" ^ n)
           ops))
    QCheck.Gen.(list_size (int_range 1 80) op_gen)

let config =
  { Fs.default_config with Fs.max_files = 16; max_blocks = 512;
    blocks_per_file = 16; payload_bytes = 64 }

(* The model: name -> block list (newest state). *)
let run_both ops =
  let t = Fs.format config in
  let model : (string, string array) Hashtbl.t = Hashtbl.create 8 in
  let prefix_eq expected got =
    String.length (Bytes.to_string got) >= String.length expected
    && String.sub (Bytes.to_string got) 0 (String.length expected) = expected
  in
  List.for_all
    (fun op ->
      match op with
      | Create n -> (
        match Fs.create t n with
        | _ ->
          if Hashtbl.mem model n then false (* should have failed *)
          else begin
            Hashtbl.add model n [||];
            true
          end
        | exception Fs.Fs_error _ ->
          Hashtbl.mem model n || Hashtbl.length model >= config.Fs.max_files)
      | Append (n, p) -> (
        match (Fs.open_file t n, Hashtbl.find_opt model n) with
        | None, None -> true
        | Some h, Some blocks -> (
          match Fs.append t h (Bytes.of_string p) with
          | idx ->
            Hashtbl.replace model n (Array.append blocks [| p |]);
            idx = Array.length blocks
          | exception Fs.Fs_error _ ->
            Array.length blocks >= config.Fs.blocks_per_file)
        | _ -> false)
      | Overwrite (n, i, p) -> (
        match (Fs.open_file t n, Hashtbl.find_opt model n) with
        | None, None -> true
        | Some h, Some blocks when i < Array.length blocks ->
          Fs.write_block t h i (Bytes.of_string p);
          blocks.(i) <- p;
          true
        | Some h, Some blocks -> (
          (* i >= length: only i = length is a legal append. *)
          match Fs.write_block t h i (Bytes.of_string p) with
          | () ->
            if i = Array.length blocks then begin
              Hashtbl.replace model n (Array.append blocks [| p |]);
              true
            end
            else false
          | exception Fs.Fs_error _ ->
            i > Array.length blocks || i >= config.Fs.blocks_per_file)
        | _ -> false)
      | Read (n, i) -> (
        match (Fs.open_file t n, Hashtbl.find_opt model n) with
        | None, None -> true
        | Some h, Some blocks -> (
          match Fs.read_block t h i with
          | Some got -> i < Array.length blocks && prefix_eq blocks.(i) got
          | None -> i >= Array.length blocks)
        | _ -> false)
      | Delete n -> (
        let got = Fs.delete t n in
        let expected = Hashtbl.mem model n in
        Hashtbl.remove model n;
        got = expected)
      | Rename (a, b) -> (
        match Fs.rename t ~old_name:a ~new_name:b with
        | () -> (
          match Hashtbl.find_opt model a with
          | Some blocks when (not (Hashtbl.mem model b)) && a <> b ->
            Hashtbl.remove model a;
            Hashtbl.add model b blocks;
            true
          | _ -> false)
        | exception Fs.Fs_error _ ->
          (not (Hashtbl.mem model a)) || Hashtbl.mem model b)
      | Stat n ->
        Fs.stat t n
        = Option.map (fun b -> Array.length b) (Hashtbl.find_opt model n))
    ops

let fs_model_test =
  QCheck.Test.make ~name:"mini_fs agrees with a reference model" ~count:80
    ops_arbitrary run_both

let suite =
  [ ("fs.model", [ QCheck_alcotest.to_alcotest fs_model_test ]) ]
