(* Tests for the Section 4.1 basic dictionary (and the shared codec). *)

open Pdm_sim
module Basic = Pdm_dictionary.Basic_dict
module Codec = Pdm_dictionary.Codec
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_bytes = Alcotest.(check string)

(* --- Codec --- *)

let test_codec_words_roundtrip () =
  let b = Bytes.of_string "hello, parallel disks" in
  let words = Codec.words_of_bytes b in
  check_bytes "roundtrip" (Bytes.to_string b)
    (Bytes.to_string (Codec.bytes_of_words_len words ~len:(Bytes.length b)))

let test_codec_bit_level () =
  let b = Bytes.make 2 '\000' in
  Bytes.set b 0 '\xF0';
  let words = Codec.words_of_bits b ~nbits:4 in
  check "one word" 1 (Array.length words);
  (* 4 bits 1111 followed by 28 zero pad bits, MSB-first in the word. *)
  check "packing" (0xF lsl 28) words.(0);
  let back = Codec.bytes_of_words words ~nbits:4 in
  check_bytes "back" "\xF0" (Bytes.to_string back)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec bytes roundtrip" ~count:100 QCheck.string
    (fun s ->
      let b = Bytes.of_string s in
      Codec.bytes_of_words_len (Codec.words_of_bytes b) ~len:(Bytes.length b)
      = b)

let test_slots () =
  let block = Array.make 16 None in
  let width = 3 in
  check "slots per block" 5 (Codec.Slots.per_block ~block_words:16 ~width);
  Codec.Slots.write block ~width 0 (Some [| 10; 1; 2 |]);
  Codec.Slots.write block ~width 4 (Some [| 20; 3; 4 |]);
  check "count" 2 (Codec.Slots.count block ~width);
  Alcotest.(check (option int)) "find 20" (Some 4)
    (Codec.Slots.find_key block ~width ~key:20);
  Alcotest.(check (option int)) "missing" None
    (Codec.Slots.find_key block ~width ~key:99);
  Alcotest.(check (option int)) "first free" (Some 1)
    (Codec.Slots.first_free block ~width);
  Codec.Slots.write block ~width 0 None;
  check "after clear" 1 (Codec.Slots.count block ~width);
  Alcotest.(check (option int)) "freed" (Some 0)
    (Codec.Slots.first_free block ~width)

(* --- Basic dictionary --- *)

let universe = 1 lsl 20

let mk ?(capacity = 500) ?(block_words = 64) ?(degree = 8) ?(value_bytes = 8) ()
    =
  let cfg =
    Basic.plan ~universe ~capacity ~block_words ~degree ~value_bytes ~seed:42 ()
  in
  let machine =
    Pdm.create ~disks:degree ~block_size:block_words
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  (machine, Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg)

let value_of i = Bytes.of_string (Printf.sprintf "%08d" (i mod 100_000_000))

let test_insert_find () =
  let _, d = mk () in
  Basic.insert d 17 (value_of 17);
  (match Basic.find d 17 with
   | Some v -> check_bytes "value" "00000017" (Bytes.to_string v)
   | None -> Alcotest.fail "key not found");
  Alcotest.(check (option string)) "absent" None
    (Option.map Bytes.to_string (Basic.find d 18))

let test_update_in_place () =
  let _, d = mk () in
  Basic.insert d 5 (value_of 1);
  Basic.insert d 5 (value_of 2);
  check "size unchanged" 1 (Basic.size d);
  check_bytes "updated" "00000002"
    (Bytes.to_string (Option.get (Basic.find d 5)))

let test_bulk_and_membership () =
  let _, d = mk ~capacity:400 () in
  let rng = Prng.create 1 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:400 in
  Array.iter (fun k -> Basic.insert d k (value_of k)) members;
  check "size" 400 (Basic.size d);
  Array.iter
    (fun k ->
      match Basic.find d k with
      | Some v -> check_bytes "member value" (Bytes.to_string (value_of k)) (Bytes.to_string v)
      | None -> Alcotest.failf "member %d missing" k)
    members;
  Array.iter
    (fun k -> checkb "non-member absent" false (Basic.mem d k))
    absent

let test_lookup_is_one_io () =
  let machine, d = mk () in
  let rng = Prng.create 2 in
  let keys = Sampling.distinct rng ~universe ~count:300 in
  Array.iter (fun k -> Basic.insert d k (value_of k)) keys;
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Basic.find d k)) keys;
  let s = Stats.snapshot (Pdm.stats machine) in
  check "1 read round per lookup" 300 s.Stats.parallel_reads;
  check "no writes" 0 s.Stats.parallel_writes

let test_unsuccessful_lookup_one_io () =
  let machine, d = mk () in
  Basic.insert d 1 (value_of 1);
  Stats.reset (Pdm.stats machine);
  ignore (Basic.find d 999);
  check "1 I/O" 1 (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let test_insert_is_two_ios () =
  let machine, d = mk () in
  Stats.reset (Pdm.stats machine);
  Basic.insert d 7 (value_of 7);
  let s = Stats.snapshot (Pdm.stats machine) in
  check "read round" 1 s.Stats.parallel_reads;
  check "write round" 1 s.Stats.parallel_writes

let test_delete () =
  let machine, d = mk () in
  Basic.insert d 3 (value_of 3);
  Basic.insert d 4 (value_of 4);
  Stats.reset (Pdm.stats machine);
  checkb "delete hits" true (Basic.delete d 3);
  let s = Stats.snapshot (Pdm.stats machine) in
  check "delete = 2 I/Os" 2 (Stats.parallel_ios s);
  checkb "gone" false (Basic.mem d 3);
  checkb "other kept" true (Basic.mem d 4);
  checkb "delete misses" false (Basic.delete d 3);
  check "size" 1 (Basic.size d)

let test_slot_reuse_after_delete () =
  let _, d = mk ~capacity:100 () in
  for k = 0 to 99 do Basic.insert d k (value_of k) done;
  for k = 0 to 49 do ignore (Basic.delete d k) done;
  (* Freed slots must be reusable. *)
  for k = 200 to 249 do Basic.insert d k (value_of k) done;
  check "size" 100 (Basic.size d);
  for k = 200 to 249 do checkb "new keys present" true (Basic.mem d k) done

let test_capacity_enforced () =
  let _, d = mk ~capacity:10 () in
  for k = 0 to 9 do Basic.insert d k (value_of k) done;
  checkb "over capacity rejected" true
    (try
       Basic.insert d 100 (value_of 100);
       false
     with Invalid_argument _ -> true)

let test_max_load_respects_lemma3 () =
  let _, d = mk ~capacity:2000 () in
  let rng = Prng.create 3 in
  let keys = Sampling.distinct rng ~universe ~count:2000 in
  Array.iter (fun k -> Basic.insert d k (value_of k)) keys;
  checkb "no overflow; max load within slots" true
    (Basic.max_load d <= Basic.slots_per_bucket d)

let test_value_too_large_rejected () =
  let _, d = mk ~value_bytes:4 () in
  checkb "oversized value" true
    (try
       Basic.insert d 1 (Bytes.of_string "too large for four");
       false
     with Invalid_argument _ -> true)

let test_combined_fetch_decoding () =
  (* find_in must work from a combined fetch (the 2d-disk trick used by
     the composite structures). *)
  let machine, d = mk () in
  Basic.insert d 11 (value_of 11);
  let blocks = Pdm.read machine (Basic.addresses d 11) in
  (match Basic.find_in d 11 blocks with
   | Some v -> check_bytes "value via find_in" "00000011" (Bytes.to_string v)
   | None -> Alcotest.fail "find_in missed");
  Alcotest.(check (option string)) "absent via find_in" None
    (Option.map Bytes.to_string (Basic.find_in d 9999 (Pdm.read machine (Basic.addresses d 9999))))

let test_shared_machine_disk_offset () =
  (* Two dictionaries on disjoint disk groups of one machine: one
     combined read serves both in a single parallel I/O. *)
  let degree = 4 in
  let cfg =
    Basic.plan ~universe ~capacity:100 ~block_words:64 ~degree ~value_bytes:4
      ~seed:1 ()
  in
  let machine =
    Pdm.create ~disks:(2 * degree) ~block_size:64
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let d1 = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
  let d2 = Basic.create ~machine ~disk_offset:degree ~block_offset:0 cfg in
  Basic.insert d1 42 (Bytes.of_string "aaaa");
  Basic.insert d2 42 (Bytes.of_string "bbbb");
  Stats.reset (Pdm.stats machine);
  let blocks =
    Pdm.read machine (Basic.addresses d1 42 @ Basic.addresses d2 42)
  in
  check "combined read = 1 I/O" 1
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)));
  checkb "d1 decodes" true (Basic.find_in d1 42 blocks <> None);
  checkb "d2 decodes" true (Basic.find_in d2 42 blocks <> None)

let test_deterministic_layout () =
  let build () =
    let machine, d = mk ~capacity:200 () in
    let rng = Prng.create 9 in
    Array.iter
      (fun k -> Basic.insert d k (value_of k))
      (Sampling.distinct rng ~universe ~count:200);
    ignore machine;
    Basic.bucket_loads d
  in
  Alcotest.(check (array int)) "identical layouts" (build ()) (build ())

let prop_insert_find_random =
  QCheck.Test.make ~name:"basic dict stores what was inserted" ~count:20
    QCheck.(list_of_size Gen.(int_range 0 80) (int_bound (universe - 1)))
    (fun keys ->
      let keys = List.sort_uniq compare keys in
      let _, d = mk ~capacity:100 () in
      List.iter (fun k -> Basic.insert d k (value_of k)) keys;
      List.for_all (fun k -> Basic.find d k = Some (value_of k)) keys)

let suite =
  let tc = Alcotest.test_case in
  [ ("dictionary.codec",
     [ tc "words roundtrip" `Quick test_codec_words_roundtrip;
       tc "bit-level packing" `Quick test_codec_bit_level;
       tc "slots" `Quick test_slots;
       QCheck_alcotest.to_alcotest prop_codec_roundtrip ]);
    ("dictionary.basic",
     [ tc "insert and find" `Quick test_insert_find;
       tc "update in place" `Quick test_update_in_place;
       tc "bulk and membership" `Quick test_bulk_and_membership;
       tc "lookup costs 1 I/O" `Quick test_lookup_is_one_io;
       tc "unsuccessful lookup 1 I/O" `Quick test_unsuccessful_lookup_one_io;
       tc "insert costs 2 I/Os" `Quick test_insert_is_two_ios;
       tc "delete" `Quick test_delete;
       tc "slot reuse after delete" `Quick test_slot_reuse_after_delete;
       tc "capacity enforced" `Quick test_capacity_enforced;
       tc "max load within bucket" `Quick test_max_load_respects_lemma3;
       tc "oversized value rejected" `Quick test_value_too_large_rejected;
       tc "combined fetch decoding" `Quick test_combined_fetch_decoding;
       tc "shared machine / disk offsets" `Quick test_shared_machine_disk_offset;
       tc "deterministic layout" `Quick test_deterministic_layout;
       QCheck_alcotest.to_alcotest prop_insert_find_random ]) ]

(* --- bulk load (appended) --- *)

let test_bulk_load_matches_incremental () =
  let mk2 () = mk ~capacity:300 () in
  let rng = Prng.create 77 in
  let keys = Sampling.distinct rng ~universe ~count:300 in
  let data = Array.map (fun k -> (k, value_of k)) keys in
  let _, inc = mk2 () in
  Array.iter (fun (k, v) -> Basic.insert inc k v) data;
  let _, bulk = mk2 () in
  Basic.bulk_load bulk data;
  Alcotest.(check (array int)) "identical bucket layout"
    (Basic.bucket_loads inc) (Basic.bucket_loads bulk);
  Array.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) "same values"
        (Some (Bytes.to_string v))
        (Option.map Bytes.to_string (Basic.find bulk k)))
    data

let test_bulk_load_io_cost () =
  let machine, d = mk ~capacity:400 () in
  let rng = Prng.create 78 in
  let keys = Sampling.distinct rng ~universe ~count:400 in
  let data = Array.map (fun k -> (k, value_of k)) keys in
  Stats.reset (Pdm.stats machine);
  Basic.bulk_load d data;
  let s = Stats.snapshot (Pdm.stats machine) in
  check "no reads" 0 s.Stats.parallel_reads;
  (* Far fewer write rounds than the 400 of incremental loading. *)
  checkb
    (Printf.sprintf "%d write rounds << 400" s.Stats.parallel_writes)
    true
    (s.Stats.parallel_writes <= Basic.blocks_per_disk (Basic.config d))

let test_bulk_load_validation () =
  let _, d = mk ~capacity:10 () in
  checkb "duplicates rejected" true
    (try
       Basic.bulk_load d [| (1, value_of 1); (1, value_of 1) |];
       false
     with Invalid_argument _ -> true);
  let _, d = mk ~capacity:10 () in
  Basic.insert d 1 (value_of 1);
  checkb "non-empty rejected" true
    (try
       Basic.bulk_load d [| (2, value_of 2) |];
       false
     with Invalid_argument _ -> true)

let suite =
  suite
  @ [ ("dictionary.bulk_load",
       [ Alcotest.test_case "matches incremental" `Quick
           test_bulk_load_matches_incremental;
         Alcotest.test_case "I/O cost" `Quick test_bulk_load_io_cost;
         Alcotest.test_case "validation" `Quick test_bulk_load_validation ]) ]
