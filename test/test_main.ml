let () =
  (* PDM_SANITIZE=1 dune runtest replays the whole suite with the
     runtime honesty sanitizer cross-checking every charged round. *)
  (match Sys.getenv_opt "PDM_SANITIZE" with
   | None | Some "" | Some "0" -> ()
   | Some _ -> Pdm_sim.Pdm.set_sanitize true);
  Alcotest.run "pdm_dict"
    (List.concat [ Test_util.suite; Test_pdm.suite; Test_expander.suite;
        Test_loadbalance.suite; Test_extsort.suite; Test_basic_dict.suite;
        Test_one_probe.suite; Test_dynamic.suite;
        Test_baselines.suite; Test_workload.suite;
        Test_experiments.suite; Test_model.suite;
        Test_extensions.suite; Test_ablations.suite;
        Test_wave3.suite; Test_soak.suite; Test_fs.suite; Test_fs_model.suite; Test_properties.suite;
        Test_fault_trace.suite; Test_repair.suite; Test_engine.suite;
        Test_lint.suite; Test_sim.suite; Test_cluster.suite;
        Test_chaos.suite; Test_io.suite; Test_server.suite ])
