(* Tests for the parallel disk model simulator. *)

open Pdm_sim

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mk ?model ?(disks = 4) ?(block_size = 8) ?(blocks = 16) () =
  Pdm.create ?model ~disks ~block_size ~blocks_per_disk:blocks ()

let block_of t xs =
  let b = Array.make (Pdm.block_size t) None in
  List.iteri (fun i x -> b.(i) <- Some x) xs;
  b

(* --- basic storage semantics --- *)

let test_read_empty () =
  let t : int Pdm.t = mk () in
  let b = Pdm.read_one t { disk = 0; block = 0 } in
  check "block size" 8 (Array.length b);
  Array.iter (fun c -> checkb "empty" true (c = None)) b

let test_write_then_read () =
  let t = mk () in
  let a = { Pdm.disk = 1; block = 3 } in
  Pdm.write_one t a (block_of t [ 10; 20; 30 ]);
  let b = Pdm.read_one t a in
  Alcotest.(check (option int)) "slot 0" (Some 10) b.(0);
  Alcotest.(check (option int)) "slot 2" (Some 30) b.(2);
  Alcotest.(check (option int)) "slot 3" None b.(3)

let test_read_returns_copy () =
  let t = mk () in
  let a = { Pdm.disk = 0; block = 0 } in
  Pdm.write_one t a (block_of t [ 1 ]);
  let b = Pdm.read_one t a in
  b.(0) <- Some 999;
  let b' = Pdm.read_one t a in
  Alcotest.(check (option int)) "unchanged on disk" (Some 1) b'.(0)

let test_write_stores_copy () =
  let t = mk () in
  let a = { Pdm.disk = 0; block = 0 } in
  let img = block_of t [ 5 ] in
  Pdm.write_one t a img;
  img.(0) <- Some 42;
  Alcotest.(check (option int)) "snapshot semantics" (Some 5)
    (Pdm.read_one t a).(0)

(* --- I/O accounting --- *)

let ios t = Stats.parallel_ios (Stats.snapshot (Pdm.stats t))

let test_one_block_one_io () =
  let t : int Pdm.t = mk () in
  ignore (Pdm.read_one t { disk = 0; block = 0 });
  check "1 I/O" 1 (ios t)

let test_parallel_read_costs_one () =
  let t : int Pdm.t = mk ~disks:4 () in
  ignore
    (Pdm.read t (List.init 4 (fun d -> { Pdm.disk = d; block = d })));
  check "4 disks, 1 round" 1 (ios t)

let test_same_disk_costs_per_block () =
  let t : int Pdm.t = mk ~disks:4 () in
  ignore
    (Pdm.read t
       [ { disk = 2; block = 0 }; { disk = 2; block = 1 };
         { disk = 2; block = 2 } ]);
  check "3 blocks on one disk = 3 rounds" 3 (ios t)

let test_mixed_request_max_per_disk () =
  let t : int Pdm.t = mk ~disks:4 () in
  ignore
    (Pdm.read t
       [ { disk = 0; block = 0 }; { disk = 0; block = 1 };
         { disk = 1; block = 0 }; { disk = 2; block = 0 } ]);
  check "max per disk = 2" 2 (ios t)

let test_duplicates_coalesced () =
  let t : int Pdm.t = mk () in
  ignore
    (Pdm.read t [ { disk = 0; block = 0 }; { disk = 0; block = 0 } ]);
  check "duplicate read once" 1 (ios t);
  let s = Stats.snapshot (Pdm.stats t) in
  check "one block transferred" 1 s.Stats.block_reads

let test_disk_head_model () =
  let t : int Pdm.t = mk ~model:Pdm.Parallel_heads ~disks:4 () in
  (* 4 blocks on ONE disk still cost a single round with 4 heads. *)
  ignore
    (Pdm.read t (List.init 4 (fun b -> { Pdm.disk = 0; block = b })));
  check "heads: 1 round" 1 (ios t);
  ignore
    (Pdm.read t (List.init 5 (fun b -> { Pdm.disk = 0; block = b + 4 })));
  check "heads: ceil(5/4) = 2 more" 3 (ios t)

let test_write_accounting () =
  let t = mk ~disks:3 () in
  Pdm.write t
    (List.init 3 (fun d -> ({ Pdm.disk = d; block = 0 }, block_of t [ d ])));
  let s = Stats.snapshot (Pdm.stats t) in
  check "1 write round" 1 s.Stats.parallel_writes;
  check "3 blocks written" 3 s.Stats.block_writes;
  check "no reads" 0 s.Stats.parallel_reads

let test_rounds_for () =
  let t : int Pdm.t = mk ~disks:4 () in
  check "empty" 0 (Pdm.rounds_for t []);
  check "spread" 1
    (Pdm.rounds_for t [ { disk = 0; block = 0 }; { disk = 1; block = 5 } ]);
  check "clash" 2
    (Pdm.rounds_for t [ { disk = 0; block = 0 }; { disk = 0; block = 5 } ]);
  check "no I/O charged" 0 (ios t)

let test_measure () =
  let t : int Pdm.t = mk () in
  let (), cost =
    Stats.measure (Pdm.stats t) (fun () ->
        ignore (Pdm.read_one t { disk = 0; block = 0 }))
  in
  check "measured" 1 (Stats.parallel_ios cost);
  let (), cost2 = Stats.measure (Pdm.stats t) (fun () -> ()) in
  check "nothing measured" 0 (Stats.parallel_ios cost2)

let test_peek_poke_uncounted () =
  let t = mk () in
  Pdm.poke t { disk = 0; block = 0 } (block_of t [ 7 ]);
  let b = Pdm.peek t { disk = 0; block = 0 } in
  Alcotest.(check (option int)) "poked" (Some 7) b.(0);
  check "no I/O" 0 (ios t)

let test_bounds_checked () =
  let t : int Pdm.t = mk ~disks:2 ~blocks:4 () in
  Alcotest.check_raises "disk range" (Invalid_argument "Pdm: disk out of range")
    (fun () -> ignore (Pdm.read_one t { disk = 2; block = 0 }));
  Alcotest.check_raises "block range"
    (Invalid_argument "Pdm: block out of range") (fun () ->
      ignore (Pdm.read_one t { disk = 0; block = 4 }))

let test_wrong_block_length_rejected () =
  let t : int Pdm.t = mk () in
  Alcotest.check_raises "length" (Invalid_argument "Pdm.write: block has wrong length")
    (fun () -> Pdm.write_one t { disk = 0; block = 0 } [| Some 1 |])

let test_duplicate_write_rejected () =
  let t = mk () in
  Alcotest.check_raises "dup"
    (Invalid_argument "Pdm.write: duplicate address in one request")
    (fun () ->
      Pdm.write t
        [ ({ disk = 0; block = 0 }, block_of t [ 1 ]);
          ({ disk = 0; block = 0 }, block_of t [ 2 ]) ])

let test_allocated_blocks () =
  let t = mk () in
  check "nothing yet" 0 (Pdm.allocated_blocks t);
  Pdm.write_one t { disk = 0; block = 0 } (block_of t [ 1 ]);
  Pdm.write_one t { disk = 1; block = 1 } (block_of t [ 2 ]);
  Pdm.write_one t { disk = 0; block = 0 } (block_of t [ 3 ]);
  check "two distinct" 2 (Pdm.allocated_blocks t);
  check "capacity" (4 * 16 * 8) (Pdm.capacity_items t)

(* --- striping --- *)

let test_striping_roundtrip () =
  let t = mk ~disks:4 ~block_size:4 () in
  let s = Striping.create t in
  check "superblock size" 16 (Striping.superblock_size s);
  let sb = Array.init 16 (fun i -> if i mod 3 = 0 then Some i else None) in
  Striping.write s 5 sb;
  let back = Striping.read s 5 in
  Alcotest.(check (array (option int))) "roundtrip" sb back

let test_striping_costs_one_io () =
  let t : int Pdm.t = mk ~disks:4 ~block_size:4 () in
  let s = Striping.create t in
  ignore (Striping.read s 3);
  check "read = 1" 1 (ios t);
  Striping.write s 3 (Array.make 16 None);
  check "write adds 1" 2 (ios t)

let test_striping_many () =
  let t : int Pdm.t = mk ~disks:2 ~block_size:4 () in
  let s = Striping.create t in
  let got = Striping.read_many s [ 1; 3; 1 ] in
  check "two distinct superblocks" 2 (List.length got);
  check "two rounds" 2 (ios t)

let test_striping_slot_mapping () =
  (* Slot i·B + j of a superblock must live on disk i. *)
  let t = mk ~disks:3 ~block_size:2 () in
  let s = Striping.create t in
  let sb = Array.make 6 None in
  sb.(4) <- Some 99;
  (* slot 4 = disk 2, offset 0 *)
  Striping.write s 0 sb;
  let b = Pdm.peek t { disk = 2; block = 0 } in
  Alcotest.(check (option int)) "on disk 2" (Some 99) b.(0)

(* --- internal memory --- *)

let test_memory_accounting () =
  let m = Internal_memory.create ~capacity_words:100 in
  Internal_memory.alloc m ~words:60;
  Internal_memory.alloc m ~words:40;
  check "in use" 100 (Internal_memory.in_use m);
  Internal_memory.free m ~words:50;
  check "after free" 50 (Internal_memory.in_use m);
  check "peak" 100 (Internal_memory.peak m)

let test_memory_overflow () =
  let m = Internal_memory.create ~capacity_words:10 in
  Internal_memory.alloc m ~words:10;
  checkb "over capacity raises" true
    (try
       Internal_memory.alloc m ~words:1;
       false
     with Invalid_argument _ -> true)

let test_memory_unbounded () =
  let m = Internal_memory.unbounded () in
  Internal_memory.alloc m ~words:1_000_000;
  check "tracks peak" 1_000_000 (Internal_memory.peak m);
  Alcotest.(check (option int)) "no capacity" None (Internal_memory.capacity m)

let suite =
  let tc = Alcotest.test_case in
  [ ("pdm.storage",
     [ tc "read empty" `Quick test_read_empty;
       tc "write then read" `Quick test_write_then_read;
       tc "read returns copy" `Quick test_read_returns_copy;
       tc "write stores copy" `Quick test_write_stores_copy;
       tc "bounds checked" `Quick test_bounds_checked;
       tc "wrong block length" `Quick test_wrong_block_length_rejected;
       tc "duplicate write rejected" `Quick test_duplicate_write_rejected;
       tc "allocated blocks" `Quick test_allocated_blocks;
       tc "peek/poke uncounted" `Quick test_peek_poke_uncounted ]);
    ("pdm.accounting",
     [ tc "one block one I/O" `Quick test_one_block_one_io;
       tc "parallel read costs one" `Quick test_parallel_read_costs_one;
       tc "same disk costs per block" `Quick test_same_disk_costs_per_block;
       tc "mixed request" `Quick test_mixed_request_max_per_disk;
       tc "duplicates coalesced" `Quick test_duplicates_coalesced;
       tc "disk head model" `Quick test_disk_head_model;
       tc "write accounting" `Quick test_write_accounting;
       tc "rounds_for is free" `Quick test_rounds_for;
       tc "measure" `Quick test_measure ]);
    ("pdm.striping",
     [ tc "roundtrip" `Quick test_striping_roundtrip;
       tc "costs one I/O" `Quick test_striping_costs_one_io;
       tc "read_many" `Quick test_striping_many;
       tc "slot mapping" `Quick test_striping_slot_mapping ]);
    ("pdm.memory",
     [ tc "accounting" `Quick test_memory_accounting;
       tc "overflow" `Quick test_memory_overflow;
       tc "unbounded" `Quick test_memory_unbounded ]) ]

(* --- persistence (appended) --- *)

let test_save_load_roundtrip () =
  let t = mk ~disks:3 ~block_size:4 ~blocks:8 () in
  Pdm.write_one t { disk = 1; block = 2 } (block_of t [ 7; 8 ]);
  Pdm.write_one t { disk = 2; block = 5 } (block_of t [ 9 ]);
  let path = Filename.temp_file "pdm" ".img" in
  Pdm.save_to_file t path;
  let t' : int Pdm.t = Pdm.load_from_file path in
  Sys.remove path;
  check "disks" 3 (Pdm.disks t');
  check "block size" 4 (Pdm.block_size t');
  check "allocated" 2 (Pdm.allocated_blocks t');
  Alcotest.(check (option int)) "contents" (Some 8)
    (Pdm.read_one t' { disk = 1; block = 2 }).(1);
  check "counters reset to the one read" 1 (ios t')

let test_save_load_dictionary_survives () =
  (* End-to-end: a dictionary persisted and recovered across machines. *)
  let module Basic = Pdm_dictionary.Basic_dict in
  let cfg =
    Basic.plan ~universe:(1 lsl 16) ~capacity:100 ~block_words:32 ~degree:4
      ~value_bytes:8 ~seed:3 ()
  in
  let m1 =
    Pdm.create ~disks:4 ~block_size:32
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let d1 = Basic.create ~machine:m1 ~disk_offset:0 ~block_offset:0 cfg in
  for k = 0 to 99 do
    Basic.insert d1 k (Bytes.of_string (Printf.sprintf "%08d" k))
  done;
  let path = Filename.temp_file "pdm_dict" ".img" in
  Pdm.save_to_file m1 path;
  let m2 : int Pdm.t = Pdm.load_from_file path in
  Sys.remove path;
  let d2 = Basic.recover ~machine:m2 ~disk_offset:0 ~block_offset:0 cfg in
  check "size recovered across processes" 100 (Basic.size d2);
  for k = 0 to 99 do
    Alcotest.(check (option string)) "value"
      (Some (Printf.sprintf "%08d" k))
      (Option.map Bytes.to_string (Basic.find d2 k))
  done

let suite =
  suite
  @ [ ("pdm.persistence",
       [ Alcotest.test_case "save/load roundtrip" `Quick
           test_save_load_roundtrip;
         Alcotest.test_case "dictionary survives" `Quick
           test_save_load_dictionary_survives ]) ]

(* --- property tests on the cost model (appended) --- *)

let addr_gen ~disks ~blocks =
  QCheck.Gen.(
    map2 (fun d b -> { Pdm.disk = d; block = b }) (int_bound (disks - 1))
      (int_bound (blocks - 1)))

let addrs_arbitrary =
  QCheck.make
    ~print:(fun l ->
      String.concat ","
        (List.map (fun (a : Pdm.addr) -> Printf.sprintf "%d:%d" a.disk a.block) l))
    QCheck.Gen.(list_size (int_range 0 20) (addr_gen ~disks:4 ~blocks:8))

let prop_rounds_is_max_per_disk =
  QCheck.Test.make ~name:"rounds = max distinct blocks per disk" ~count:300
    addrs_arbitrary
    (fun addrs ->
      let t : int Pdm.t = mk ~disks:4 ~blocks:8 () in
      let distinct = List.sort_uniq compare addrs in
      let per_disk = Array.make 4 0 in
      List.iter
        (fun (a : Pdm.addr) -> per_disk.(a.disk) <- per_disk.(a.disk) + 1)
        distinct;
      Pdm.rounds_for t addrs = Array.fold_left max 0 per_disk)

let prop_read_charges_rounds_for =
  QCheck.Test.make ~name:"read charges exactly rounds_for" ~count:200
    addrs_arbitrary
    (fun addrs ->
      let t : int Pdm.t = mk ~disks:4 ~blocks:8 () in
      let expected = Pdm.rounds_for t addrs in
      Stats.reset (Pdm.stats t);
      ignore (Pdm.read t addrs);
      ios t = expected)

let prop_head_model_rounds =
  QCheck.Test.make ~name:"head model rounds = ceil(blocks/D)" ~count:200
    addrs_arbitrary
    (fun addrs ->
      let t : int Pdm.t = mk ~model:Pdm.Parallel_heads ~disks:4 ~blocks:8 () in
      let distinct = List.length (List.sort_uniq compare addrs) in
      Pdm.rounds_for t addrs = (distinct + 3) / 4)

let prop_write_read_roundtrip =
  QCheck.Test.make ~name:"write/read roundtrip arbitrary blocks" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 8) (pair (int_bound 7) (int_bound 255)))
    (fun writes ->
      let t : int Pdm.t = mk ~disks:2 ~block_size:4 ~blocks:8 () in
      (* Last write to each block wins. *)
      let model = Hashtbl.create 8 in
      List.iter
        (fun (b, v) ->
          let addr = { Pdm.disk = b mod 2; block = b / 2 } in
          let block = block_of t [ v ] in
          Pdm.write_one t addr block;
          Hashtbl.replace model addr v)
        writes;
      Hashtbl.fold
        (fun addr v acc -> acc && (Pdm.read_one t addr).(0) = Some v)
        model true)

let suite =
  suite
  @ [ ("pdm.properties",
       [ QCheck_alcotest.to_alcotest prop_rounds_is_max_per_disk;
         QCheck_alcotest.to_alcotest prop_read_charges_rounds_for;
         QCheck_alcotest.to_alcotest prop_head_model_rounds;
         QCheck_alcotest.to_alcotest prop_write_read_roundtrip ]) ]

(* --- LRU cache (appended) --- *)

let test_cache_hits_are_free () =
  let t : int Pdm.t = mk ~disks:2 () in
  let c = Cache.create t ~capacity_blocks:4 in
  let a = { Pdm.disk = 0; block = 1 } in
  ignore (Cache.read c [ a ]);
  check "first read misses" 1 (ios t);
  ignore (Cache.read c [ a ]);
  ignore (Cache.read c [ a ]);
  check "repeats are free" 1 (ios t);
  check "hits counted" 2 (Cache.hits c);
  check "misses counted" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  let t : int Pdm.t = mk ~disks:2 ~blocks:16 () in
  let c = Cache.create t ~capacity_blocks:2 in
  let a0 = { Pdm.disk = 0; block = 0 } in
  let a1 = { Pdm.disk = 0; block = 1 } in
  let a2 = { Pdm.disk = 0; block = 2 } in
  ignore (Cache.read c [ a0 ]);
  ignore (Cache.read c [ a1 ]);
  ignore (Cache.read c [ a0 ]);
  (* a1 is least recent; reading a2 must evict it. *)
  ignore (Cache.read c [ a2 ]);
  Stats.reset (Pdm.stats t);
  ignore (Cache.read c [ a0 ]);
  check "a0 still cached" 0 (ios t);
  ignore (Cache.read c [ a1 ]);
  check "a1 was evicted" 1 (ios t)

let test_cache_write_through () =
  let t = mk ~disks:2 () in
  let c = Cache.create t ~capacity_blocks:4 in
  let a = { Pdm.disk = 1; block = 3 } in
  Cache.write c [ (a, block_of t [ 5 ]) ];
  check "write forwarded" 1 (ios t);
  Alcotest.(check (option int)) "on disk" (Some 5) (Pdm.peek t a).(0);
  Stats.reset (Pdm.stats t);
  Alcotest.(check (option int)) "served from cache" (Some 5)
    (Cache.read_one c a).(0);
  check "no read I/O" 0 (ios t)

let test_cache_batch_larger_than_capacity () =
  let t : int Pdm.t = mk ~disks:4 ~blocks:16 () in
  let c = Cache.create t ~capacity_blocks:2 in
  let addrs = List.init 8 (fun i -> { Pdm.disk = i mod 4; block = i / 4 }) in
  let got = Cache.read c addrs in
  check "all blocks returned" 8 (List.length got);
  checkb "residency capped" true (Cache.resident c <= 2)

let test_cache_flush () =
  let t : int Pdm.t = mk () in
  let c = Cache.create t ~capacity_blocks:4 in
  ignore (Cache.read c [ { Pdm.disk = 0; block = 0 } ]);
  Cache.flush c;
  check "empty after flush" 0 (Cache.resident c);
  ignore (Cache.read c [ { Pdm.disk = 0; block = 0 } ]);
  check "re-fetched" 2 (ios t)

let suite =
  suite
  @ [ ("pdm.cache",
       [ Alcotest.test_case "hits are free" `Quick test_cache_hits_are_free;
         Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
         Alcotest.test_case "write-through" `Quick test_cache_write_through;
         Alcotest.test_case "batch larger than capacity" `Quick
           test_cache_batch_larger_than_capacity;
         Alcotest.test_case "flush" `Quick test_cache_flush ]) ]

(* --- write_many (appended) --- *)

let test_striping_write_many () =
  let t : int Pdm.t = mk ~disks:2 ~block_size:4 () in
  let s = Striping.create t in
  let sb v = Array.init 8 (fun i -> if i = 0 then Some v else None) in
  Striping.write_many s [ (1, sb 11); (3, sb 33) ];
  check "2 rounds for 2 superblocks" 2 (ios t);
  Alcotest.(check (option int)) "sb 1" (Some 11) (Striping.read s 1).(0);
  Alcotest.(check (option int)) "sb 3" (Some 33) (Striping.read s 3).(0)

let suite =
  suite
  @ [ ("pdm.striping_more",
       [ Alcotest.test_case "write_many" `Quick test_striping_write_many ]) ]

(* --- cost-model properties on the scheduler path (appended) ---

   [rounds_for] must equal the rounds [read] actually charges in both
   machine models, whether the request runs on the closed-form fast
   path or on the round-by-round scheduler (trace attached), and
   duplicate addresses must coalesce identically on all four paths. *)

let prop_head_read_charges_rounds_for =
  QCheck.Test.make ~name:"head model: read charges exactly rounds_for"
    ~count:200 addrs_arbitrary
    (fun addrs ->
      let t : int Pdm.t = mk ~model:Pdm.Parallel_heads ~disks:4 ~blocks:8 () in
      let expected = Pdm.rounds_for t addrs in
      ignore (Pdm.read t addrs);
      ios t = expected)

let scheduled_read_matches model addrs =
  let t : int Pdm.t =
    Pdm.create ?model ~trace:(Trace.create ()) ~disks:4 ~block_size:8
      ~blocks_per_disk:8 ()
  in
  let expected = Pdm.rounds_for t addrs in
  let result = Pdm.read t addrs in
  (* Scheduler charges exactly the closed form when disks are healthy,
     the trace saw one event per round, and coalescing still returns
     each distinct address exactly once. *)
  ios t = expected
  && Trace.recorded (Option.get (Pdm.trace t)) = expected
  && List.length result = List.length (List.sort_uniq compare addrs)

let prop_scheduled_read_charges_rounds_for =
  QCheck.Test.make
    ~name:"scheduler path (independent): read charges exactly rounds_for"
    ~count:200 addrs_arbitrary
    (fun addrs -> scheduled_read_matches None addrs)

let prop_scheduled_head_read_charges_rounds_for =
  QCheck.Test.make
    ~name:"scheduler path (heads): read charges exactly rounds_for" ~count:200
    addrs_arbitrary
    (fun addrs -> scheduled_read_matches (Some Pdm.Parallel_heads) addrs)

let prop_duplicates_coalesce =
  QCheck.Test.make ~name:"duplicated request list costs the same" ~count:200
    addrs_arbitrary
    (fun addrs ->
      let cost scheduled addrs =
        let t : int Pdm.t =
          if scheduled then
            Pdm.create ~trace:(Trace.create ()) ~disks:4 ~block_size:8
              ~blocks_per_disk:8 ()
          else mk ~disks:4 ~blocks:8 ()
        in
        ignore (Pdm.read t addrs);
        ios t
      in
      let doubled = addrs @ addrs in
      cost false doubled = cost false addrs
      && cost true doubled = cost true addrs)

let suite =
  suite
  @ [ ("pdm.properties_scheduler",
       [ QCheck_alcotest.to_alcotest prop_head_read_charges_rounds_for;
         QCheck_alcotest.to_alcotest prop_scheduled_read_charges_rounds_for;
         QCheck_alcotest.to_alcotest prop_scheduled_head_read_charges_rounds_for;
         QCheck_alcotest.to_alcotest prop_duplicates_coalesce ]) ]
