(* Soak tests: every adapter-wrapped structure survives a long mixed
   trace with periodic cross-checks against a reference model, and the
   E14 real-time experiment's headline shape holds. *)

open Pdm_experiments
module Trace = Pdm_workload.Trace
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let scale =
  { Adapters.universe = 1 lsl 20; capacity = 300; block_words = 64; seed = 7 }

(* Drive [ops] through an adapter and a Hashtbl model simultaneously;
   every [checkpoint] operations, cross-check a sample of keys and the
   size. *)
let soak (a : Adapters.t) ops keys =
  let model = Hashtbl.create 64 in
  let step = ref 0 in
  let crosscheck () =
    check
      (Printf.sprintf "%s: size at op %d" a.Adapters.name !step)
      (Hashtbl.length model) (a.Adapters.size ());
    Array.iteri
      (fun i k ->
        if i mod 7 = 0 then
          Alcotest.(check (option string))
            (Printf.sprintf "%s: key %d at op %d" a.Adapters.name k !step)
            (Option.map Bytes.to_string (Hashtbl.find_opt model k))
            (Option.map Bytes.to_string (a.Adapters.find k)))
      keys
  in
  Array.iter
    (fun op ->
      incr step;
      (match op with
       | Trace.Lookup k -> ignore (a.Adapters.find k)
       | Trace.Insert (k, v) ->
         a.Adapters.insert k v;
         Hashtbl.replace model k v
       | Trace.Delete k -> (
         match a.Adapters.delete with
         | Some d ->
           let got = d k in
           let expected = Hashtbl.mem model k in
           Hashtbl.remove model k;
           if got <> expected then
             Alcotest.failf "%s: delete disagreed at op %d" a.Adapters.name
               !step
         | None -> ()));
      if !step mod 1000 = 0 then crosscheck ())
    ops;
  crosscheck ()

let mk_trace (a : Adapters.t) keys =
  let rng = Prng.create 99 in
  Trace.mixed ~rng ~keys ~count:4000 ~lookup_fraction:0.5
    ~delete_fraction:0.4
    ~value_of:(fun k -> Common.value_bytes_of a.Adapters.value_bytes k)

let soak_test (mk : unit -> Adapters.t) () =
  let a = mk () in
  let rng = Prng.create 3 in
  (* Key pool below capacity so the structure never fills. *)
  let keys =
    Sampling.distinct rng ~universe:scale.Adapters.universe ~count:200
  in
  soak a (mk_trace a keys) keys

let test_realtime_shape () =
  let r = Realtime_exp.run ~trace_ops:4000 () in
  let det_worst =
    List.fold_left
      (fun acc row ->
        if row.Realtime_exp.deterministic then max acc row.Realtime_exp.worst
        else acc)
      0 r.Realtime_exp.rows
  in
  let rand_worst =
    List.fold_left
      (fun acc row ->
        if not row.Realtime_exp.deterministic then
          max acc row.Realtime_exp.worst
        else acc)
      0 r.Realtime_exp.rows
  in
  checkb
    (Printf.sprintf "deterministic tail %d <= randomized tail %d" det_worst
       rand_worst)
    true (det_worst <= rand_worst);
  List.iter
    (fun row ->
      if row.Realtime_exp.deterministic then
        checkb "deterministic worst stays tiny" true
          (row.Realtime_exp.worst <= 4))
    r.Realtime_exp.rows

let suite =
  let tc = Alcotest.test_case in
  [ ("soak",
     [ tc "basic" `Quick (soak_test (fun () -> Adapters.basic ~scale ()));
       tc "small-block" `Quick
         (soak_test (fun () -> Adapters.small_block ~scale ()));
       tc "cascade case (b)" `Quick
         (soak_test (fun () -> Adapters.cascade_b ~scale ()));
       tc "parallel instances" `Quick
         (soak_test (fun () -> Adapters.parallel_instances ~scale ()));
       tc "fragmented" `Quick
         (soak_test (fun () -> Adapters.fragmented ~scale ()));
       tc "cascade" `Quick (soak_test (fun () -> Adapters.cascade ~scale ()));
       tc "one-probe dynamic" `Quick
         (soak_test (fun () -> Adapters.one_probe_dynamic ~scale ()));
       tc "global rebuild" `Quick
         (soak_test (fun () -> Adapters.global_rebuild ~scale ()));
       tc "hash table" `Quick
         (soak_test (fun () -> Adapters.hash_table ~scale ()));
       tc "cuckoo" `Quick (soak_test (fun () -> Adapters.cuckoo ~scale ()));
       tc "two-level" `Quick
         (soak_test (fun () -> Adapters.two_level ~scale ()));
       tc "b-tree" `Quick (soak_test (fun () -> Adapters.btree ~scale ())) ]);
    ("soak.realtime", [ tc "E14 shape" `Quick test_realtime_shape ]) ]
