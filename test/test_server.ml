(* Tests for the pdm-serve daemon stack: wire-codec round trips for
   every frame type, malformed-frame handling (pure decoder and live
   connection — structured protocol errors, never a crash or a leaked
   connection), multi-domain determinism (same seeded workload on 1
   vs 2 domains answers byte-identically with identical per-shard
   ledgers), and a soak under chaos + overload (disk kill and scrub
   mid-run with zero wrong answers; a full admission queue answers a
   typed Busy for every rejected frame, never a silent drop). *)

module Wire = Pdm_server.Wire
module Server = Pdm_server.Server
module Client = Pdm_server.Client
module Data_plane = Pdm_server.Data_plane
module Loadgen = Pdm_server.Loadgen
module Sim_gen = Pdm_simtest.Sim_gen
module Prng = Pdm_util.Prng

let tc = Alcotest.test_case
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- wire codec: generators -------------------------------------- *)

let gen_key = QCheck.Gen.(map (fun i -> i land max_int) int)
let gen_rid = QCheck.Gen.(map (fun i -> i land 0xffffffff) int)
let gen_u16 = QCheck.Gen.int_bound 0xffff
let gen_value = QCheck.Gen.(map Bytes.of_string (string_size (int_bound 24)))
let gen_msg = QCheck.Gen.(string_size (int_bound 40))

let gen_op =
  QCheck.Gen.(
    oneof
      [ map (fun k -> Wire.Get k) gen_key;
        map2 (fun k v -> Wire.Insert (k, v)) gen_key gen_value;
        map (fun k -> Wire.Delete k) gen_key ])

let gen_request =
  QCheck.Gen.(
    oneof
      [ return Wire.Ping;
        map (fun o -> Wire.Op o) gen_op;
        map (fun ops -> Wire.Batch ops) (list_size (int_bound 8) gen_op);
        return Wire.Stats;
        map2 (fun shard disk -> Wire.Kill_disk { shard; disk }) gen_u16 gen_u16;
        map (fun shard -> Wire.Scrub { shard }) gen_u16 ])

let gen_result =
  QCheck.Gen.(
    oneof
      [ map (fun v -> Wire.Found v) gen_value;
        return Wire.Absent;
        return Wire.Inserted;
        map (fun b -> Wire.Deleted b) bool ])

let gen_stat =
  QCheck.Gen.(
    map2
      (fun shard (rounds, served, fetched) ->
        { Wire.shard; rounds; served; fetched })
      gen_u16
      (triple gen_key gen_key gen_key))

let gen_error_code =
  QCheck.Gen.oneofl
    [ Wire.Bad_version; Wire.Bad_opcode; Wire.Bad_length; Wire.Oversized;
      Wire.Server_error ]

let gen_reply =
  QCheck.Gen.(
    oneof
      [ return Wire.Pong;
        map (fun r -> Wire.Result r) gen_result;
        map (fun rs -> Wire.Results rs) (list_size (int_bound 8) gen_result);
        map (fun ss -> Wire.Stats_reply ss) (list_size (int_bound 5) gen_stat);
        return Wire.Admin_ok;
        return Wire.Busy;
        map (fun m -> Wire.Unavailable m) gen_msg;
        map2
          (fun code message -> Wire.Proto_error { code; message })
          gen_error_code gen_msg ])

(* A full frame starts with the u32 length prefix; the decoders take
   the payload alone. *)
let payload_of frame = Bytes.sub frame 4 (Bytes.length frame - 4)

let print_hex b =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init (Bytes.length b) (fun i -> Char.code (Bytes.get b i))))

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request frames roundtrip" ~count:300
    (QCheck.make
       ~print:(fun f -> print_hex (Wire.encode_request f))
       QCheck.Gen.(map2 (fun rid req -> { Wire.rid; req }) gen_rid gen_request))
    (fun f ->
      match Wire.decode_request (payload_of (Wire.encode_request f)) with
      | Ok f' -> f' = f
      | Error _ -> false)

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"reply frames roundtrip" ~count:300
    (QCheck.make
       ~print:(fun f -> print_hex (Wire.encode_reply f))
       QCheck.Gen.(map2 (fun rid rep -> { Wire.rid; rep }) gen_rid gen_reply))
    (fun f ->
      match Wire.decode_reply (payload_of (Wire.encode_reply f)) with
      | Ok f' -> f' = f
      | Error _ -> false)

(* The decoders are total: arbitrary bytes decode to Ok or a
   structured error, never an exception. *)
let prop_decoder_total =
  QCheck.Test.make ~name:"decoders never raise on garbage" ~count:500
    (QCheck.make ~print:(fun s -> print_hex (Bytes.of_string s))
       QCheck.Gen.(string_size (int_bound 64)))
    (fun s ->
      let b = Bytes.of_string s in
      (match Wire.decode_request b with Ok _ | Error _ -> true)
      && (match Wire.decode_reply b with Ok _ | Error _ -> true))

(* One canonical frame per request constructor (and one per reply
   constructor) — the deterministic every-frame-type round trip the
   random generator only covers in expectation. *)
let canonical_requests =
  [ Wire.Ping;
    Wire.Op (Wire.Get 42);
    Wire.Op (Wire.Insert (7, Bytes.of_string "payload"));
    Wire.Op (Wire.Delete max_int);
    Wire.Batch [];
    Wire.Batch
      [ Wire.Insert (1, Bytes.empty); Wire.Get 2; Wire.Delete 3 ];
    Wire.Stats;
    Wire.Kill_disk { shard = 3; disk = 0xffff };
    Wire.Scrub { shard = 0 } ]

let canonical_replies =
  [ Wire.Pong;
    Wire.Result (Wire.Found (Bytes.of_string "v"));
    Wire.Result Wire.Absent;
    Wire.Result Wire.Inserted;
    Wire.Result (Wire.Deleted true);
    Wire.Results [ Wire.Inserted; Wire.Deleted false; Wire.Absent ];
    Wire.Stats_reply
      [ { Wire.shard = 0; rounds = 12; served = 34; fetched = 56 };
        { Wire.shard = 1; rounds = max_int; served = 0; fetched = 1 } ];
    Wire.Admin_ok;
    Wire.Busy;
    Wire.Unavailable "disk 3 is gone";
    Wire.Proto_error { code = Wire.Oversized; message = "too big" } ]

let test_canonical_roundtrips () =
  List.iteri
    (fun i req ->
      let f = { Wire.rid = i; req } in
      match Wire.decode_request (payload_of (Wire.encode_request f)) with
      | Ok f' -> checkb "request roundtrips" true (f' = f)
      | Error (_, m) -> Alcotest.failf "request %d undecodable: %s" i m)
    canonical_requests;
  List.iteri
    (fun i rep ->
      let f = { Wire.rid = i * 1000; rep } in
      match Wire.decode_reply (payload_of (Wire.encode_reply f)) with
      | Ok f' -> checkb "reply roundtrips" true (f' = f)
      | Error (_, m) -> Alcotest.failf "reply %d undecodable: %s" i m)
    canonical_replies

(* --- wire codec: malformed payloads ------------------------------ *)

let code_of = function
  | Ok _ -> "ok"
  | Error (c, _) ->
    string_of_int (Wire.error_code_to_int c)

let test_decoder_malformed () =
  let valid = payload_of (Wire.encode_request { Wire.rid = 9; req = Wire.Op (Wire.Insert (5, Bytes.of_string "vv")) }) in
  (* every strict prefix is a structured truncation error *)
  for n = 0 to Bytes.length valid - 1 do
    match Wire.decode_request (Bytes.sub valid 0 n) with
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" n
    | Error ((Wire.Bad_length | Wire.Bad_version), _) -> ()
    | Error (c, m) ->
      Alcotest.failf "truncation to %d: unexpected %s (%s)"
        n (code_of (Error (c, m))) m
  done;
  (* trailing bytes are rejected, not ignored *)
  (match Wire.decode_request (Bytes.cat valid (Bytes.make 1 'x')) with
   | Error (Wire.Bad_length, _) -> ()
   | r -> Alcotest.failf "trailing byte: %s" (code_of r));
  (* wrong version byte *)
  let bad_version = Bytes.copy valid in
  Bytes.set bad_version 0 (Char.chr 9);
  (match Wire.decode_request bad_version with
   | Error (Wire.Bad_version, _) -> ()
   | r -> Alcotest.failf "bad version: %s" (code_of r));
  (* garbage opcode *)
  let bad_opcode = Bytes.copy valid in
  Bytes.set bad_opcode 1 (Char.chr 0x7f);
  (match Wire.decode_request bad_opcode with
   | Error (Wire.Bad_opcode, _) -> ()
   | r -> Alcotest.failf "bad opcode: %s" (code_of r));
  (* a value length prefix pointing past the frame *)
  let huge_value =
    let b = Buffer.create 32 in
    Buffer.add_char b (Char.chr Wire.version);
    Buffer.add_char b (Char.chr 3) (* Insert *);
    Buffer.add_string b "\x01\x00\x00\x00" (* rid *);
    Buffer.add_string b (String.make 8 '\x00') (* key *);
    Buffer.add_string b "\xff\xff\xff\x00" (* value len way past end *);
    Buffer.to_bytes b
  in
  (match Wire.decode_request huge_value with
   | Error (Wire.Bad_length, _) -> ()
   | r -> Alcotest.failf "runaway value length: %s" (code_of r))

let test_framing_oversized () =
  let f = Wire.Framing.create () in
  let prefix = Bytes.create 4 in
  let n = Wire.max_frame + 1 in
  Bytes.set prefix 0 (Char.chr (n land 0xff));
  Bytes.set prefix 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set prefix 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set prefix 3 (Char.chr ((n lsr 24) land 0xff));
  Wire.Framing.feed f prefix 4;
  (match Wire.Framing.next f with
   | `Oversized m -> check "oversized length surfaced" n m
   | `Frame _ | `Await -> Alcotest.fail "oversized prefix not detected");
  (* split delivery still assembles frames *)
  let g = Wire.Framing.create () in
  let frame = Wire.encode_request { Wire.rid = 1; req = Wire.Ping } in
  Bytes.iter
    (fun c ->
      checkb "await mid-frame" true (Wire.Framing.next g = `Await);
      Wire.Framing.feed g (Bytes.make 1 c) 1)
    (Bytes.sub frame 0 (Bytes.length frame - 1));
  Wire.Framing.feed g
    (Bytes.make 1 (Bytes.get frame (Bytes.length frame - 1))) 1;
  (match Wire.Framing.next g with
   | `Frame p -> checkb "byte-at-a-time assembly" true (p = payload_of frame)
   | `Await | `Oversized _ -> Alcotest.fail "frame not assembled")

(* --- live server helpers ----------------------------------------- *)

let small_config ?(shards = 2) ?(domains = 1) ?(queue_cap = 1024) () =
  let plane =
    { Data_plane.default_config with
      Data_plane.shards; universe = 1 lsl 16; shard_capacity = 192 }
  in
  { Server.plane; domains; queue_cap }

let with_server cfg f =
  let t = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let with_client t f =
  let c = Client.connect ~port:(Server.port t) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let raw_frame payload =
  let n = Bytes.length payload in
  let f = Bytes.create (4 + n) in
  Bytes.set f 0 (Char.chr (n land 0xff));
  Bytes.set f 1 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set f 2 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set f 3 (Char.chr ((n lsr 24) land 0xff));
  Bytes.blit payload 0 f 4 n;
  f

let expect_proto c code =
  match Client.wait c 0 with
  | Wire.Proto_error { code = got; _ } ->
    checkb "protocol error code" true (got = code)
  | r ->
    Alcotest.failf "expected Proto_error, got %s"
      (match r with
       | Wire.Pong -> "Pong"
       | Wire.Result _ -> "Result"
       | Wire.Results _ -> "Results"
       | Wire.Stats_reply _ -> "Stats_reply"
       | Wire.Admin_ok -> "Admin_ok"
       | Wire.Busy -> "Busy"
       | Wire.Unavailable _ -> "Unavailable"
       | Wire.Proto_error _ -> assert false)

let ping_alive c =
  match Client.call c Wire.Ping with
  | Wire.Pong -> ()
  | _ -> Alcotest.fail "connection did not answer a ping"

(* --- live server: malformed frames and the fuzzer ----------------- *)

let test_live_malformed_frames () =
  with_server (small_config ()) (fun t ->
      with_client t (fun c ->
          let valid =
            payload_of
              (Wire.encode_request { Wire.rid = 0; req = Wire.Ping })
          in
          (* wrong version: structured reply, connection survives *)
          let bad_version = Bytes.copy valid in
          Bytes.set bad_version 0 (Char.chr 3);
          Client.send_raw c (raw_frame bad_version);
          expect_proto c Wire.Bad_version;
          ping_alive c;
          (* garbage opcode *)
          let bad_opcode = Bytes.copy valid in
          Bytes.set bad_opcode 1 (Char.chr 0x6a);
          Client.send_raw c (raw_frame bad_opcode);
          expect_proto c Wire.Bad_opcode;
          ping_alive c;
          (* truncated body: frame shorter than its header needs *)
          Client.send_raw c (raw_frame (Bytes.sub valid 0 3));
          expect_proto c Wire.Bad_length;
          ping_alive c;
          (* admin op on an unknown shard: structured server error *)
          (match
             Client.call c (Wire.Kill_disk { shard = 999; disk = 0 })
           with
           | Wire.Proto_error { code = Wire.Server_error; _ } -> ()
           | _ -> Alcotest.fail "unknown shard must be a structured error");
          ping_alive c);
      (* oversized length prefix: reply then close — and only that
         connection dies *)
      with_client t (fun c ->
          let huge = Bytes.make 4 '\xff' in
          Client.send_raw c huge;
          expect_proto c Wire.Oversized;
          checkb "stream poisoned: connection closed" true
            (Client.drain c = []));
      with_client t ping_alive;
      let counters = Server.counters t in
      checkb "protocol errors counted" true
        (counters.Server.proto_errors >= 4))

(* 150 seeded-random frames (rid bytes pinned clear of the client's
   own rid space); whatever they decode to, the server must answer
   every subsequent ping — no crash, no wedged connection. *)
let test_live_fuzz_never_crashes () =
  with_server (small_config ()) (fun t ->
      with_client t (fun c ->
          let g = Prng.create 0xf022 in
          for _ = 1 to 150 do
            let n = Prng.int g 32 in
            let payload =
              Bytes.init n (fun _ -> Char.chr (Prng.int g 256))
            in
            if n >= 6 then begin
              (* pin the rid to 0xffffffff so a frame that happens to
                 decode cannot collide with the pings' rids *)
              Bytes.fill payload 2 4 '\xff'
            end;
            Client.send_raw c (raw_frame payload);
            ping_alive c
          done);
      with_client t ping_alive)

(* --- multi-domain determinism ------------------------------------ *)

let determinism_spec =
  { Sim_gen.default with
    Sim_gen.seed = 5; universe = 1 lsl 16; key_count = 64; count = 240;
    dist = Sim_gen.Zipf_skew 1.1; value_bytes = 8;
    lookup_fraction = 0.5; delete_fraction = 0.25 }

let run_workload ~domains ~queue_cap ~events spec =
  with_server (small_config ~shards:4 ~domains ~queue_cap ()) (fun t ->
      let scenario =
        { Loadgen.spec; conns = 1; mode = Loadgen.Closed; events }
      in
      let r =
        Loadgen.run
          ~name:(Printf.sprintf "test-d%d" domains)
          ~port:(Server.port t) scenario
      in
      (r, Server.counters t))

let test_multi_domain_determinism () =
  let r1, _ = run_workload ~domains:1 ~queue_cap:1024 ~events:[] determinism_spec in
  let r2, _ = run_workload ~domains:2 ~queue_cap:1024 ~events:[] determinism_spec in
  check "single-domain run answers everything" 0
    (r1.Loadgen.wrong + r1.Loadgen.busy + r1.Loadgen.unavailable
     + r1.Loadgen.proto_errors);
  check "multi-domain run answers everything" 0
    (r2.Loadgen.wrong + r2.Loadgen.busy + r2.Loadgen.unavailable
     + r2.Loadgen.proto_errors);
  checks "byte-identical answers" r1.Loadgen.answers_digest
    r2.Loadgen.answers_digest;
  checkb "identical per-shard ledgers" true
    (r1.Loadgen.shard_stats = r2.Loadgen.shard_stats);
  check "identical rounds" r1.Loadgen.rounds r2.Loadgen.rounds;
  check "identical ios" r1.Loadgen.ios r2.Loadgen.ios

(* --- soak: chaos and overload ------------------------------------ *)

let test_soak_chaos () =
  let spec =
    { Sim_gen.default with
      Sim_gen.seed = 11; universe = 1 lsl 16; key_count = 96; count = 360;
      dist = Sim_gen.Adversarial; value_bytes = 8;
      lookup_fraction = 0.5; delete_fraction = 0.25 }
  in
  let events =
    [ (120, Loadgen.Kill_disk { shard = 1; disk = 0 });
      (240, Loadgen.Scrub { shard = 1 }) ]
  in
  let chaos d =
    let r, counters = run_workload ~domains:d ~queue_cap:1024 ~events spec in
    check "every op answered" 360 r.Loadgen.requests;
    check "zero wrong answers under kill + scrub" 0 r.Loadgen.wrong;
    check "replication absorbs the kill" 0 r.Loadgen.unavailable;
    check "no protocol errors" 0 r.Loadgen.proto_errors;
    checkb "queue depth bounded" true (counters.Server.peak_depth <= 1024);
    r
  in
  let r1 = chaos 1 in
  let r2 = chaos 2 in
  checks "chaos run still deterministic across domains"
    r1.Loadgen.answers_digest r2.Loadgen.answers_digest;
  checkb "chaos ledgers identical" true
    (r1.Loadgen.shard_stats = r2.Loadgen.shard_stats)

let test_overload_typed_busy () =
  with_server (small_config ~queue_cap:1 ()) (fun t ->
      with_client t (fun c ->
          let n = 200 in
          (* values must be exactly the plane's configured value_bytes *)
          let value = Bytes.make 8 'v' in
          (* burst n pipelined single-key inserts into 1-deep mailboxes:
             some must bounce, and each bounce is a typed Busy echoing
             the frame's rid — never a dropped or unanswered frame *)
          let rids =
            Array.init n (fun i ->
                Client.send c (Wire.Op (Wire.Insert (i * 7, value))))
          in
          let admitted = Array.make n false in
          let busy = ref 0 in
          Array.iteri
            (fun i rid ->
              match Client.wait c rid with
              | Wire.Result Wire.Inserted -> admitted.(i) <- true
              | Wire.Busy -> incr busy
              | Wire.Unavailable m ->
                Alcotest.failf "op %d: unavailable: %s" i m
              | _ -> Alcotest.failf "op %d: unexpected reply" i)
            rids;
          checkb "overload produced typed Busy replies" true (!busy > 0);
          checkb "some frames were admitted" true (!busy < n);
          (* the server's own ledger agrees with what we saw *)
          let counters = Server.counters t in
          check "busy counter matches" !busy counters.Server.busy;
          checkb "mailbox depth never exceeded the cap" true
            (counters.Server.peak_depth <= 1);
          (* state is exactly the admitted prefix: a key answers Found
             iff its insert was admitted (closed-loop reads can't bounce) *)
          Array.iteri
            (fun i admitted_i ->
              match Client.call c (Wire.Op (Wire.Get (i * 7))) with
              | Wire.Result (Wire.Found v) ->
                checkb "found only admitted keys" true
                  (admitted_i && Bytes.equal v value)
              | Wire.Result Wire.Absent ->
                checkb "absent only bounced keys" false admitted_i
              | _ -> Alcotest.failf "get %d: unexpected reply" i)
            admitted))

let suite =
  [ ("server.wire",
     List.map QCheck_alcotest.to_alcotest
       [ prop_request_roundtrip; prop_reply_roundtrip; prop_decoder_total ]
     @ [ tc "canonical frames roundtrip" `Quick test_canonical_roundtrips;
         tc "malformed payloads are structured errors" `Quick
           test_decoder_malformed;
         tc "framing: oversized and split delivery" `Quick
           test_framing_oversized ]);
    ("server.live",
     [ tc "malformed frames keep the connection" `Quick
         test_live_malformed_frames;
       tc "seeded frame fuzzer never crashes the daemon" `Quick
         test_live_fuzz_never_crashes ]);
    ("server.determinism",
     [ tc "1 vs 2 domains: identical answers and ledgers" `Quick
         test_multi_domain_determinism ]);
    ("server.soak",
     [ tc "kill + scrub mid-run: zero wrong answers" `Quick test_soak_chaos;
       tc "overload answers typed Busy, never drops" `Quick
         test_overload_typed_busy ]) ]
