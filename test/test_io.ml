(* Tests for the real-I/O storage subsystem (lib/io): the zero-copy
   block codec, the file and mmap backends behind real machines, the
   mem<->file<->mmap differential (byte-identical answers, identical
   round/IO charges), journal crash durability across a process
   "restart" (a fresh machine over the same directory), the scratch
   directory cleanup guard, and the backend registry. *)

module Pdm = Pdm_sim.Pdm
module Journal = Pdm_sim.Journal
module Stats = Pdm_sim.Stats
module Registry = Pdm_sim.Backend_registry
module Codec = Pdm_io.Block_codec
module Raw = Pdm_io.Raw_file
module Store = Pdm_io.Store
module Config = Pdm_simtest.Sim_config
module Gen = Pdm_simtest.Sim_gen
module Run = Pdm_simtest.Sim_run
module Schedule = Pdm_simtest.Sim_schedule
module Sut = Pdm_simtest.Sim_sut
module W = Pdm_workload.Trace

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- block codec -------------------------------------------------- *)

let test_codec_roundtrip () =
  let slots = 7 in
  let bpb = Codec.bytes_per_block ~slots in
  check "sector-padded" 0 (bpb mod Codec.sector);
  checkb "covers the raw image" true (bpb >= 16 + 1 + (8 * slots));
  let buf = Codec.alloc (2 * bpb) in
  let payload =
    [| Some 0; None; Some (-1); Some max_int; Some min_int; Some 42; None |]
  in
  (* write at a non-zero offset to prove offsets are honored *)
  Codec.encode buf ~off:bpb ~slots (Some payload);
  checkb "written" true (Codec.written buf ~off:bpb);
  checkb "block 0 untouched" false (Codec.written buf ~off:0);
  (match Codec.decode buf ~off:bpb ~slots with
   | Some got -> checkb "payload roundtrips" true (got = payload)
   | None -> Alcotest.fail "decode lost the block");
  Codec.encode buf ~off:bpb ~slots None;
  checkb "erased" true (Codec.decode buf ~off:bpb ~slots = None)

let test_codec_absent_is_zeros () =
  let slots = 3 in
  let buf = Codec.alloc (Codec.bytes_per_block ~slots) in
  (* a freshly preallocated file reads as zeros: must mean absent *)
  checkb "all-zero image decodes as absent" true
    (Codec.decode buf ~off:0 ~slots = None)

let test_codec_geometry_mismatch () =
  let buf = Codec.alloc (Codec.bytes_per_block ~slots:8) in
  Codec.encode buf ~off:0 ~slots:8 (Some (Array.make 8 (Some 5)));
  (match Codec.decode buf ~off:0 ~slots:4 with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "slot-count mismatch must not decode")

(* --- raw file + O_DIRECT fallback --------------------------------- *)

let test_raw_file_direct_fallback () =
  Store.with_dir (fun dir ->
      let path = Filename.concat dir "probe.pdm" in
      let f = Raw.openfile ~path ~size:4096 ~direct:true () in
      (* O_DIRECT engages where the filesystem supports it and falls
         back silently elsewhere: either way the file must work *)
      let buf = Codec.aligned 512 in
      for i = 0 to 511 do
        Bigarray.Array1.set buf i (Char.chr ((i * 7) land 0xff))
      done;
      Raw.pwrite f buf ~pos:0 ~len:512 ~off:1024;
      Raw.fsync f;
      let back = Codec.aligned 512 in
      Raw.pread f back ~pos:0 ~len:512 ~off:1024;
      checkb "roundtrip through the raw file" true
        (let ok = ref true in
         for i = 0 to 511 do
           if Bigarray.Array1.get back i <> Bigarray.Array1.get buf i then
             ok := false
         done;
         !ok);
      (* unwritten preallocated bytes read as zeros *)
      Raw.pread f back ~pos:0 ~len:512 ~off:0;
      checkb "preallocated region reads zero" true
        (let ok = ref true in
         for i = 0 to 511 do
           if Bigarray.Array1.get back i <> '\000' then ok := false
         done;
         !ok);
      Raw.close f)

(* --- machines over real backends ---------------------------------- *)

let machine_of ~dir kind =
  Pdm.create
    ~factory:(Store.factory (Store.spec ~dir kind))
    ~disks:4 ~block_size:6 ~blocks_per_disk:5 ()

let test_file_machine_basic_ops () =
  Store.with_dir (fun dir ->
      let m = machine_of ~dir Store.File in
      let a = { Pdm.disk = 1; block = 2 } in
      let blk = [| Some 7; None; Some (-9); Some 0; None; Some 123 |] in
      Pdm.write_one m a blk;
      checkb "read back" true (Pdm.read_one m a = blk);
      checkb "unwritten reads empty" true
        (Pdm.read_one m { Pdm.disk = 0; block = 0 } = Array.make 6 None);
      check "one block allocated" 1 (Pdm.allocated_blocks m);
      checkb "peek sees it too" true (Pdm.peek m a = blk);
      let s = Stats.snapshot (Pdm.stats m) in
      check "two read rounds charged" 2 s.Stats.parallel_reads;
      check "one write round charged" 1 s.Stats.parallel_writes;
      Pdm.barrier m)

let test_file_machine_reopen () =
  Store.with_dir (fun dir ->
      let a = { Pdm.disk = 0; block = 1 } in
      let b = { Pdm.disk = 3; block = 4 } in
      let blk_a = [| Some 1; Some 2; Some 3; None; None; Some 6 |] in
      let blk_b = [| None; None; None; None; None; Some (-1) |] in
      (let m = machine_of ~dir Store.File in
       Pdm.write m [ (a, blk_a); (b, blk_b) ];
       Pdm.barrier m);
      (* a "new process": a fresh machine over the same directory *)
      let m2 = machine_of ~dir Store.File in
      checkb "block a survives reopen" true (Pdm.read_one m2 a = blk_a);
      checkb "block b survives reopen" true (Pdm.read_one m2 b = blk_b);
      checkb "unwritten block still absent" true
        (Pdm.peek m2 { Pdm.disk = 2; block = 0 } = Array.make 6 None))

let test_mmap_machine_ops_and_reopen () =
  Store.with_dir (fun dir ->
      let a = { Pdm.disk = 2; block = 0 } in
      let blk = [| Some 11; Some 22; None; Some 44; None; Some 66 |] in
      (let m = machine_of ~dir Store.Mmap in
       Pdm.write_one m a blk;
       checkb "mmap read back" true (Pdm.read_one m a = blk);
       Pdm.barrier m);
      let m2 = machine_of ~dir Store.Mmap in
      checkb "mmap block survives reopen" true (Pdm.read_one m2 a = blk);
      (* the two real backends share one on-disk format *)
      let m3 = machine_of ~dir Store.File in
      checkb "file backend reads what mmap wrote" true
        (Pdm.read_one m3 a = blk))

(* --- mem <-> file <-> mmap differential --------------------------- *)

(* Drive one op stream through a configured sut; answers as strings so
   divergences print. *)
let run_ops sut ops =
  Array.to_list ops
  |> List.map (fun op ->
         match op with
         | W.Lookup k -> (
           match sut.Sut.find k with
           | None -> "miss"
           | Some v -> "hit:" ^ Bytes.to_string v)
         | W.Insert (k, v) -> (
           match sut.Sut.insert with
           | Some ins ->
             ins k v;
             "ins"
           | None -> "noins")
         | W.Delete k -> (
           match sut.Sut.delete with
           | Some del -> if del k then "del:y" else "del:n"
           | None -> "nodel"))

let differential_case base_cfg =
  let spec = Config.gen_spec ~count:160 base_cfg in
  let ops = Gen.ops spec in
  let data = Gen.initial_data spec in
  let outcomes =
    List.map
      (fun backend ->
        let cfg = { base_cfg with Config.backend } in
        let sut = Sut.build cfg ~data in
        let answers = run_ops sut ops in
        let stats = Stats.snapshot (Pdm.stats sut.Sut.machine) in
        (backend, answers, stats))
      [ "mem"; "file"; "mmap" ]
  in
  match outcomes with
  | (_, mem_answers, mem_stats) :: rest ->
    List.iter
      (fun (backend, answers, stats) ->
        checkb
          (Printf.sprintf "%s answers byte-identical to mem" backend)
          true
          (answers = mem_answers);
        checkb
          (Printf.sprintf "%s charge ledger identical to mem" backend)
          true
          (stats = mem_stats))
      rest
  | [] -> Alcotest.fail "no outcomes"

let test_differential_basic () =
  differential_case (Config.default Config.Basic)

let test_differential_dynamic_journal () =
  differential_case
    { (Config.default Config.One_probe_dynamic) with Config.journaled = true }

let test_differential_cascade_journal () =
  differential_case
    { (Config.default Config.Dynamic_cascade) with Config.journaled = true }

let test_differential_static_engine () =
  differential_case
    { (Config.default Config.One_probe_static) with Config.engine = true }

(* The full model-checked differential runner on real backends,
   including a journal crash/recover schedule: every lookup answer,
   crash-visibility outcome and post-recovery sweep is checked against
   the pure model. *)
let run_model_checked cfg schedule =
  let ops = Gen.ops (Config.gen_spec ~count:120 cfg) in
  let report = Run.run cfg schedule (Array.to_seq ops) in
  checkb
    (Printf.sprintf "model-checked run clean on %s" (Config.describe cfg))
    true (Run.ok report);
  report

let test_model_checked_file_backends () =
  List.iter
    (fun backend ->
      ignore
        (run_model_checked
           { (Config.default Config.Basic) with Config.backend } []))
    [ "file"; "mmap" ]

let test_model_checked_crash_schedule () =
  let cfg =
    { (Config.default Config.One_probe_dynamic) with
      Config.journaled = true; backend = "file" }
  in
  (* crashes only fire on journaled updates: pin them to ops the
     generated stream actually mutates on *)
  let ops = Gen.ops (Config.gen_spec ~count:120 cfg) in
  let mutating =
    List.filter
      (fun i ->
        match ops.(i) with W.Insert _ | W.Delete _ -> true | W.Lookup _ -> false)
      (List.init (Array.length ops) Fun.id)
  in
  let pin n = List.nth_opt mutating n |> Option.value ~default:0 in
  let schedule =
    [ Schedule.Crash { at = pin 5; point = Journal.After_log };
      Schedule.Crash { at = pin 25; point = Journal.After_commit } ]
  in
  let report = Run.run cfg schedule (Array.to_seq ops) in
  checkb
    (Printf.sprintf "crash-schedule run clean on %s" (Config.describe cfg))
    true (Run.ok report);
  checkb "both crashes fired" true (report.Run.crashes >= 2);
  checkb "recoveries ran" true (report.Run.recoveries >= 2)

(* --- journal crash durability across a restart -------------------- *)

(* A machine with a journal region carved out at the top, on files. *)
let journaled_machine ~dir () =
  let disks = 4 and data_rows = 4 and jcap = 8 in
  let rows = Journal.rows ~disks ~capacity_blocks:jcap in
  let m =
    Pdm.create
      ~factory:(Store.factory (Store.spec ~dir Store.File))
      ~disks ~block_size:8 ~blocks_per_disk:(data_rows + rows) ()
  in
  (m, data_rows, jcap)

let batch =
  [ ({ Pdm.disk = 0; block = 0 }, Array.make 8 (Some 5));
    ({ Pdm.disk = 2; block = 1 }, Array.init 8 (fun i -> Some (i * i))) ]

let crash_then_restart point =
  Store.with_dir (fun dir ->
      (let m, data_rows, jcap = journaled_machine ~dir () in
       let j = Journal.create m ~block_offset:data_rows ~capacity_blocks:jcap in
       match Journal.log_and_apply j ~crash:point batch with
       | () -> Alcotest.fail "armed crash did not fire"
       | exception Journal.Crashed -> ());
      (* the "restart": everything in memory is gone, a fresh machine
         reopens the same files and recovery reads what is durable *)
      let m2, data_rows, jcap = journaled_machine ~dir () in
      let verdict =
        Journal.recover m2 ~block_offset:data_rows ~capacity_blocks:jcap
      in
      (verdict, m2))

let test_crash_before_commit_vanishes () =
  let verdict, m = crash_then_restart Journal.After_log in
  (* first-ever batch: the header block was never written, so the
     restart finds a clean journal — and must not replay the log *)
  checkb "uncommitted update invisible" true (verdict = `Clean);
  List.iter
    (fun (a, _) ->
      checkb "target untouched" true
        (Pdm.peek m a = Array.make 8 None))
    batch

let test_crash_after_commit_replays () =
  let verdict, m = crash_then_restart Journal.After_commit in
  checkb "committed log replayed" true (verdict = `Replayed 2);
  List.iter
    (fun (a, blk) ->
      checkb "journal-authoritative state rebuilt" true (Pdm.peek m a = blk))
    batch;
  (* recovery is idempotent: a second restart finds a clean log *)
  checkb "second recovery clean" true
    (Journal.recover m ~block_offset:4 ~capacity_blocks:8 = `Clean)

let test_crash_during_apply_replays () =
  let verdict, m = crash_then_restart (Journal.During_apply 1) in
  checkb "partially applied batch replayed" true (verdict = `Replayed 2);
  List.iter
    (fun (a, blk) -> checkb "target complete after replay" true
        (Pdm.peek m a = blk))
    batch

(* --- scratch-directory guard -------------------------------------- *)

let test_with_dir_cleans_up_on_failure () =
  let leaked = ref "" in
  (match
     Store.with_dir (fun dir ->
         leaked := dir;
         let m = machine_of ~dir Store.File in
         Pdm.write_one m { Pdm.disk = 0; block = 0 } (Array.make 6 (Some 1));
         failwith "simulated test failure")
   with
   | exception Failure _ -> ()
   | () -> Alcotest.fail "expected the body to raise");
  checkb "scratch dir removed despite the failure" false
    (Sys.file_exists !leaked)

let test_cleanup_dir_missing_is_noop () =
  Store.cleanup_dir "/tmp/pdm-io-definitely-not-there-421337"

(* --- registry + config wiring ------------------------------------- *)

let test_registry_resolves () =
  Store.install ();
  (match Registry.resolve "file" with
   | Error m -> Alcotest.fail m
   | Ok factory ->
     let m =
       Pdm.create ~factory ~disks:3 ~block_size:4 ~blocks_per_disk:2 ()
     in
     let a = { Pdm.disk = 1; block = 1 } in
     Pdm.write_one m a [| Some 1; None; Some 3; None |];
     checkb "registry-resolved backend works" true
       (Pdm.read_one m a = [| Some 1; None; Some 3; None |]));
  (match Registry.resolve "mem" with
   | Ok _ -> ()
   | Error m -> Alcotest.fail m);
  (match Registry.resolve "florp" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown kinds must not resolve");
  let kinds = List.map fst (Registry.kinds ()) in
  List.iter
    (fun k -> checkb (k ^ " registered") true (List.mem k kinds))
    [ "mem"; "file"; "mmap" ]

let test_config_backend_field () =
  let cfg = { (Config.default Config.Basic) with Config.backend = "file" } in
  (match Config.validate cfg with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  checks "describe mentions the backend" "basic+file" (Config.describe cfg);
  (match Config.of_json (Config.to_json cfg) with
   | Ok cfg' -> checkb "backend survives json roundtrip" true (cfg' = cfg)
   | Error m -> Alcotest.fail m);
  (* configs written before the field existed parse as mem *)
  (match Config.of_json (Config.to_json (Config.default Config.Basic)) with
   | Ok cfg' -> checks "default is mem" "mem" cfg'.Config.backend
   | Error m -> Alcotest.fail m);
  (match
     Config.validate
       { (Config.default Config.Basic) with Config.backend = "tape" }
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "unknown backend must not validate");
  (match
     Config.validate
       { (Config.default Config.Cluster) with Config.backend = "file" }
   with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "cluster + file backend must not validate")

let suite =
  [ ( "io",
      [ Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "codec: zeros mean absent" `Quick
          test_codec_absent_is_zeros;
        Alcotest.test_case "codec: geometry mismatch fails" `Quick
          test_codec_geometry_mismatch;
        Alcotest.test_case "raw file + O_DIRECT fallback" `Quick
          test_raw_file_direct_fallback;
        Alcotest.test_case "file machine: basic ops" `Quick
          test_file_machine_basic_ops;
        Alcotest.test_case "file machine: reopen" `Quick
          test_file_machine_reopen;
        Alcotest.test_case "mmap machine: ops + shared format" `Quick
          test_mmap_machine_ops_and_reopen;
        Alcotest.test_case "differential: basic" `Quick
          test_differential_basic;
        Alcotest.test_case "differential: dynamic journaled" `Quick
          test_differential_dynamic_journal;
        Alcotest.test_case "differential: cascade journaled" `Quick
          test_differential_cascade_journal;
        Alcotest.test_case "differential: static engine" `Quick
          test_differential_static_engine;
        Alcotest.test_case "model-checked runs on real backends" `Quick
          test_model_checked_file_backends;
        Alcotest.test_case "model-checked crash schedule on file" `Quick
          test_model_checked_crash_schedule;
        Alcotest.test_case "crash before commit vanishes on restart" `Quick
          test_crash_before_commit_vanishes;
        Alcotest.test_case "crash after commit replays on restart" `Quick
          test_crash_after_commit_replays;
        Alcotest.test_case "crash during apply replays on restart" `Quick
          test_crash_during_apply_replays;
        Alcotest.test_case "with_dir cleans up on failure" `Quick
          test_with_dir_cleans_up_on_failure;
        Alcotest.test_case "cleanup_dir on missing path" `Quick
          test_cleanup_dir_missing_is_noop;
        Alcotest.test_case "backend registry" `Quick test_registry_resolves;
        Alcotest.test_case "sim config backend field" `Quick
          test_config_backend_field ] ) ]
