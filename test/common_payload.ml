(* Shared deterministic payload generator for tests. *)
let payload sigma_bits k =
  Bytes.init
    ((sigma_bits + 7) / 8)
    (fun i -> Char.chr (Pdm_util.Prng.hash2 ~seed:424242 k i land 0xff))
