(* Shared deterministic payload generator for tests — a seeded view of
   the one workload-level generator (seed 424242 keeps the historical
   test fixtures bit-identical). *)
let payload sigma_bits k =
  Pdm_workload.Payload.sigma_payload ~seed:424242 ~sigma_bits k
