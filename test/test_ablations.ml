(* Tests for the ablation (E11) and extension (E12) experiments, plus
   the Greedy tie-break option they exercise. *)

open Pdm_experiments
module Greedy = Pdm_loadbalance.Greedy
module Seeded = Pdm_expander.Seeded

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

let test_tie_breaks_equivalent_quality () =
  let r = Ablation_exp.run () in
  let loads = List.map (fun p -> p.Ablation_exp.max_load) r.Ablation_exp.ties in
  check "three rules" 3 (List.length loads);
  let mn = List.fold_left min max_int loads
  and mx = List.fold_left max 0 loads in
  checkb "rules within 2 of each other" true (mx - mn <= 2)

let test_vfactor_failure_boundary () =
  let r = Ablation_exp.run () in
  let at f =
    List.find (fun p -> p.Ablation_exp.v_factor = f) r.Ablation_exp.vfactors
  in
  checkb "v_factor 1 fails" true ((at 1).Ablation_exp.peel_rounds = -1);
  checkb "v_factor 3 succeeds" true ((at 3).Ablation_exp.peel_rounds > 0);
  (* More slack -> fewer rounds. *)
  checkb "rounds shrink with slack" true
    ((at 6).Ablation_exp.peel_rounds <= (at 2).Ablation_exp.peel_rounds)

let test_degree_threshold_flat () =
  let r = Ablation_exp.run () in
  let ds = List.map (fun p -> p.Ablation_exp.min_degree) r.Ablation_exp.degrees in
  List.iter
    (fun d -> checkb "threshold small and > 1" true (d >= 2 && d <= 8))
    ds

let test_adversarial_patterns () =
  let r = Ablation_exp.run () in
  List.iter
    (fun p ->
      checkb
        (Printf.sprintf "%s: expander %d <= naive %d" p.Ablation_exp.pattern
           p.Ablation_exp.expander_max_load p.Ablation_exp.low_bits_max_load)
        true
        (p.Ablation_exp.expander_max_load <= p.Ablation_exp.low_bits_max_load))
    r.Ablation_exp.adversarial;
  (* The arithmetic progression must devastate the naive scheme. *)
  let ap =
    List.find
      (fun p -> p.Ablation_exp.expander_max_load < 100)
      (List.rev r.Ablation_exp.adversarial)
  in
  ignore ap;
  let worst_naive =
    List.fold_left
      (fun acc p -> max acc p.Ablation_exp.low_bits_max_load)
      0 r.Ablation_exp.adversarial
  in
  checkb "naive collapses on structured keys" true (worst_naive >= 1000)

let test_rotating_tie_changes_layout_not_quality () =
  let u = 1 lsl 18 and v = 256 and d = 8 in
  let keys = Array.init 2000 (fun i -> (i * 977) mod u) in
  let run tie =
    let lb = Greedy.create ~tie ~graph:(Seeded.striped ~seed:5 ~u ~v ~d) ~k:1 () in
    Greedy.insert_all lb keys;
    (Greedy.loads lb, Greedy.max_load lb)
  in
  let l1, m1 = run Greedy.First_stripe in
  let l2, m2 = run Greedy.Rotating in
  checkb "layouts differ" true (l1 <> l2);
  checkb "quality similar" true (abs (m1 - m2) <= 2)

let test_extensions_experiment_rows () =
  let r = Extensions_exp.run () in
  check "nine rows" 9 (List.length r.Extensions_exp.rows);
  let find name =
    List.find
      (fun row ->
        String.length row.Extensions_exp.name >= String.length name
        && String.sub row.Extensions_exp.name 0 (String.length name) = name)
      r.Extensions_exp.rows
  in
  (* Section 6 row: worst lookup 1/1, worst insert 2. *)
  let opd = find "one-probe dynamic" in
  checkb "1-I/O lookups and 2-I/O inserts" true
    (String.length opd.Extensions_exp.value >= 7
     && String.sub opd.Extensions_exp.value 0 7 = "1/1; 2;");
  let small = find "two-probe sub-blocks" in
  checkb "small-block wins at tiny B" true
    (String.sub small.Extensions_exp.value 0 1 = "2");
  let par = find "parallel instances" in
  checkb "batch = 2 I/Os" true
    (String.sub par.Extensions_exp.value 0 4 = "2.00")

let suite =
  let tc = Alcotest.test_case in
  [ ("experiments.ablations",
     [ tc "tie rules equivalent" `Quick test_tie_breaks_equivalent_quality;
       tc "v_factor boundary" `Quick test_vfactor_failure_boundary;
       tc "degree threshold" `Quick test_degree_threshold_flat;
       tc "adversarial patterns" `Quick test_adversarial_patterns;
       tc "rotating tie behaviour" `Quick test_rotating_tie_changes_layout_not_quality ]);
    ("experiments.extensions",
     [ tc "rows and headline values" `Quick test_extensions_experiment_rows ]) ]

(* --- E13: scale --- *)

let test_scale_no_violations () =
  let r = Scale_exp.run ~ns:[ 3000 ] () in
  check "two structures" 2 (List.length r.Scale_exp.points);
  List.iter
    (fun p ->
      check
        (Printf.sprintf "%s: zero violations" p.Scale_exp.structure)
        0 p.Scale_exp.bound_violations;
      checkb "worst within bound" true
        (p.Scale_exp.lookup_worst <= p.Scale_exp.lookup_bound
         && p.Scale_exp.insert_worst <= p.Scale_exp.insert_bound))
    r.Scale_exp.points

let suite =
  suite
  @ [ ("experiments.scale",
       [ Alcotest.test_case "no violations at scale" `Quick
           test_scale_no_violations ]) ]
