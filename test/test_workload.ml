(* Tests for the workload generators. *)

module Trace = Pdm_workload.Trace
module Fs = Pdm_workload.Fs_workload
module Prng = Pdm_util.Prng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_uniform_lookups () =
  let rng = Prng.create 1 in
  let keys = [| 10; 20; 30 |] in
  let ops = Trace.uniform_lookups ~rng ~keys ~count:100 in
  check "count" 100 (Array.length ops);
  Array.iter
    (function
      | Trace.Lookup k -> checkb "key from set" true (Array.mem k keys)
      | Trace.Insert _ | Trace.Delete _ -> Alcotest.fail "lookups only")
    ops

let test_zipf_lookups_skew () =
  let rng = Prng.create 2 in
  let keys = Array.init 100 (fun i -> i) in
  let ops = Trace.zipf_lookups ~rng ~keys ~count:2000 ~s:1.2 in
  let head = ref 0 in
  Array.iter
    (function
      | Trace.Lookup k -> if k < 10 then incr head
      | Trace.Insert _ | Trace.Delete _ -> ())
    ops;
  checkb "head-heavy" true (!head > 800)

let test_mixed_fractions () =
  let rng = Prng.create 3 in
  let keys = Array.init 50 (fun i -> i) in
  let ops =
    Trace.mixed ~rng ~keys ~count:2000 ~lookup_fraction:0.5
      ~delete_fraction:0.5 ~value_of:(fun _ -> Bytes.create 4)
  in
  let l = ref 0 and i = ref 0 and d = ref 0 in
  Array.iter
    (function
      | Trace.Lookup _ -> incr l
      | Trace.Insert _ -> incr i
      | Trace.Delete _ -> incr d)
    ops;
  check "all ops" 2000 (!l + !i + !d);
  checkb "roughly half lookups" true (!l > 800 && !l < 1200);
  checkb "inserts and deletes balanced" true (abs (!i - !d) < 200)

let test_negative_lookups_avoid () =
  let rng = Prng.create 4 in
  let avoid = Array.init 100 (fun i -> i) in
  let ops = Trace.negative_lookups ~rng ~universe:1000 ~avoid ~count:200 in
  Array.iter
    (function
      | Trace.Lookup k -> checkb "avoided" false (k < 100)
      | Trace.Insert _ | Trace.Delete _ -> Alcotest.fail "lookups only")
    ops

let test_apply_counts_hits () =
  let store = Hashtbl.create 16 in
  let hits =
    Trace.apply
      ~find:(Hashtbl.find_opt store)
      ~insert:(fun k v -> Hashtbl.replace store k v)
      ~delete:(fun k ->
        let had = Hashtbl.mem store k in
        Hashtbl.remove store k;
        had)
      [| Trace.Insert (1, Bytes.create 1); Trace.Lookup 1; Trace.Lookup 2;
         Trace.Delete 1; Trace.Lookup 1 |]
  in
  check "one hit" 1 hits

let test_fs_volume_shape () =
  let rng = Prng.create 5 in
  let vol = Fs.generate ~rng ~files:200 ~max_blocks_per_file:64 in
  check "files" 200 (Array.length (Fs.files vol));
  Array.iter
    (fun f ->
      checkb "block count in range" true (f.Fs.blocks >= 1 && f.Fs.blocks <= 64))
    (Fs.files vol);
  check "total blocks consistent"
    (Array.fold_left (fun a f -> a + f.Fs.blocks) 0 (Fs.files vol))
    (Fs.total_blocks vol);
  check "all_keys covers volume" (Fs.total_blocks vol)
    (Array.length (Fs.all_keys vol))

let test_fs_keys_unique_and_packed () =
  let rng = Prng.create 6 in
  let vol = Fs.generate ~rng ~files:100 ~max_blocks_per_file:32 in
  let keys = Fs.all_keys vol in
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun k ->
      checkb "within universe" true (k >= 0 && k < Fs.universe vol);
      checkb "unique" false (Hashtbl.mem tbl k);
      Hashtbl.add tbl k ())
    keys

let test_fs_random_reads_valid () =
  let rng = Prng.create 7 in
  let vol = Fs.generate ~rng ~files:100 ~max_blocks_per_file:32 in
  let keyset = Hashtbl.create 256 in
  Array.iter (fun k -> Hashtbl.add keyset k ()) (Fs.all_keys vol);
  let reads = Fs.random_reads vol ~rng ~count:500 in
  Array.iter
    (fun k -> checkb "read hits a real block" true (Hashtbl.mem keyset k))
    reads

let test_fs_sequential_scan () =
  let rng = Prng.create 8 in
  let vol = Fs.generate ~rng ~files:10 ~max_blocks_per_file:32 in
  let f = (Fs.files vol).(3) in
  let scan = Fs.sequential_scan vol ~file_id:3 in
  check "scan length" f.Fs.blocks (Array.length scan);
  Array.iteri
    (fun b k -> check "packed key" (Fs.key_of vol ~file_id:3 ~block:b) k)
    scan

let test_fs_payload_deterministic () =
  let rng = Prng.create 9 in
  let vol = Fs.generate ~rng ~files:10 ~max_blocks_per_file:8 in
  let a = Fs.block_payload vol ~file_id:1 ~block:0 ~bytes:16 in
  let b = Fs.block_payload vol ~file_id:1 ~block:0 ~bytes:16 in
  Alcotest.(check string) "stable" (Bytes.to_string a) (Bytes.to_string b);
  let c = Fs.block_payload vol ~file_id:1 ~block:1 ~bytes:16 in
  checkb "distinct blocks differ" true (a <> c)

let suite =
  let tc = Alcotest.test_case in
  [ ("workload.trace",
     [ tc "uniform lookups" `Quick test_uniform_lookups;
       tc "zipf skew" `Quick test_zipf_lookups_skew;
       tc "mixed fractions" `Quick test_mixed_fractions;
       tc "negative lookups" `Quick test_negative_lookups_avoid;
       tc "apply counts hits" `Quick test_apply_counts_hits ]);
    ("workload.fs",
     [ tc "volume shape" `Quick test_fs_volume_shape;
       tc "keys unique" `Quick test_fs_keys_unique_and_packed;
       tc "random reads valid" `Quick test_fs_random_reads_valid;
       tc "sequential scan" `Quick test_fs_sequential_scan;
       tc "payload deterministic" `Quick test_fs_payload_deterministic ]) ]
