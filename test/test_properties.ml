(* Cross-module property tests beyond the per-module suites. *)

module Bitbuf = Pdm_util.Bitbuf
module Prng = Pdm_util.Prng
module Zipf = Pdm_util.Zipf
module Codec = Pdm_dictionary.Codec
module Field_codec = Pdm_dictionary.Field_codec
module Greedy = Pdm_loadbalance.Greedy
module Seeded = Pdm_expander.Seeded
module Bipartite = Pdm_expander.Bipartite

(* Case (b) field codec: random ids, satellite sizes and index sets
   roundtrip as long as the capacity constraint holds. *)
let prop_codec_b_random =
  QCheck.Test.make ~name:"field codec case (b) roundtrip" ~count:150
    QCheck.(triple (int_bound 1023) small_string (int_range 4 7))
    (fun (id, payload, count) ->
      QCheck.assume (String.length payload >= 1);
      let d = 7 in
      let sigma_bits = 8 * String.length payload in
      let id_bits = 10 in
      let field_bits = id_bits + (sigma_bits / count) + 8 in
      let indices = List.init count (fun i -> i) in
      match
        Field_codec.encode_b ~field_bits ~id_bits ~id
          ~satellite:(Bytes.of_string payload) ~sigma_bits ~indices
      with
      | exception Invalid_argument _ ->
        (* capacity genuinely short for this draw *)
        count * (field_bits - id_bits) < sigma_bits
      | enc ->
        let get i = List.assoc_opt i enc in
        (match Field_codec.decode_b ~field_bits ~id_bits ~sigma_bits ~d get with
         | Some (id', merged) ->
           id' = id && Bytes.to_string merged = payload
         | None -> false))

(* Greedy invariants under arbitrary insertion streams. *)
let prop_greedy_invariants =
  QCheck.Test.make ~name:"greedy load invariants" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 200) (int_bound 9999))
              (int_range 1 4))
    (fun (keys, k) ->
      let g = Seeded.striped ~seed:9 ~u:10_000 ~v:64 ~d:8 in
      let lb = Greedy.create ~graph:g ~k () in
      List.iter (fun x -> ignore (Greedy.insert lb x)) keys;
      let loads = Greedy.loads lb in
      let total = Array.fold_left ( + ) 0 loads in
      total = k * List.length keys
      && Greedy.items lb = total
      && Array.for_all (fun l -> l >= 0) loads
      && Greedy.max_load lb = Array.fold_left max 0 loads)

(* Greedy placement always lands inside the vertex's neighborhood. *)
let prop_greedy_placement_legal =
  QCheck.Test.make ~name:"greedy placements are neighbors" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 9999))
    (fun keys ->
      let g = Seeded.striped ~seed:10 ~u:10_000 ~v:48 ~d:6 in
      let lb = Greedy.create ~graph:g ~k:2 () in
      List.for_all
        (fun x ->
          let nbrs = Array.to_list (Bipartite.neighbors g x) in
          Array.for_all (fun b -> List.mem b nbrs) (Greedy.insert lb x))
        keys)

(* Codec slots: arbitrary write/clear sequences keep count and
   find_key consistent with a model. *)
let prop_slots_model =
  QCheck.Test.make ~name:"block slots agree with a model" ~count:150
    QCheck.(list_of_size Gen.(int_range 1 60)
              (pair (int_bound 4) (option (int_bound 99))))
    (fun ops ->
      let width = 3 in
      let block = Array.make 16 None in
      let model = Array.make 5 None in
      List.iter
        (fun (slot, v) ->
          (match v with
           | Some key ->
             Codec.Slots.write block ~width slot (Some [| key; 0; 0 |]);
             model.(slot) <- Some key
           | None ->
             Codec.Slots.write block ~width slot None;
             model.(slot) <- None))
        ops;
      let model_count =
        Array.fold_left (fun a v -> if v = None then a else a + 1) 0 model
      in
      Codec.Slots.count block ~width = model_count
      && Array.for_all
           (fun v ->
             match v with
             | None -> true
             | Some key -> Codec.Slots.find_key block ~width ~key <> None)
           model)

(* Zipf CDF is monotone and the sampler respects it. *)
let prop_zipf_cdf =
  QCheck.Test.make ~name:"zipf sampler in range for any shape" ~count:60
    QCheck.(pair (int_range 1 500) (map (fun f -> Float.abs f *. 2.0) (float_bound_exclusive 1.0)))
    (fun (n, s) ->
      let z = Zipf.create ~n ~s in
      let g = Prng.create 3 in
      let ok = ref true in
      for _ = 1 to 50 do
        let k = Zipf.sample z g in
        if k < 0 || k >= n then ok := false
      done;
      let total = ref 0.0 in
      for k = 0 to n - 1 do total := !total +. Zipf.pmf z k done;
      !ok && Float.abs (!total -. 1.0) < 1e-6)

(* Mixed bit-stream roundtrip: interleave all three encodings. *)
let prop_bitbuf_mixed =
  QCheck.Test.make ~name:"bitbuf mixed encodings roundtrip" ~count:150
    QCheck.(list (triple (int_bound 2) (int_bound 500) (int_range 1 9)))
    (fun entries ->
      let w = Bitbuf.Writer.create () in
      List.iter
        (fun (kind, v, width) ->
          match kind with
          | 0 -> Bitbuf.Writer.add_bits w ~value:(v land ((1 lsl width) - 1)) ~width
          | 1 -> Bitbuf.Writer.add_unary w (v mod 24)
          | _ -> Bitbuf.Writer.add_varint w v)
        entries;
      let r = Bitbuf.Reader.of_writer w in
      List.for_all
        (fun (kind, v, width) ->
          match kind with
          | 0 -> Bitbuf.Reader.read_bits r ~width = v land ((1 lsl width) - 1)
          | 1 -> Bitbuf.Reader.read_unary r = v mod 24
          | _ -> Bitbuf.Reader.read_varint r = v)
        entries)

let suite =
  [ ("properties",
     List.map QCheck_alcotest.to_alcotest
       [ prop_codec_b_random; prop_greedy_invariants;
         prop_greedy_placement_legal; prop_slots_model; prop_zipf_cdf;
         prop_bitbuf_mixed ]) ]
