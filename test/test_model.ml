(* Model-based property tests: every dictionary is driven with random
   operation sequences and compared, operation by operation, against a
   reference Hashtbl. This catches cross-operation interactions
   (update-after-delete, collision-marker handling, eviction bugs,
   migration races) that the per-feature unit tests cannot. *)

module Pdm = Pdm_sim.Pdm
module Basic = Pdm_dictionary.Basic_dict
module Fragmented = Pdm_dictionary.Fragmented
module Cascade = Pdm_dictionary.Dynamic_cascade
module Rebuild = Pdm_dictionary.Global_rebuild
module Hash_table = Pdm_baselines.Hash_table
module Cuckoo = Pdm_baselines.Cuckoo
module Two_level = Pdm_baselines.Two_level
module Btree = Pdm_baselines.Btree

let universe = 1 lsl 16
let key_count = 40 (* small key space -> plenty of collisions/updates *)

type op = Find of int | Insert of int * int | Delete of int

let op_gen =
  QCheck.Gen.(
    let key = map (fun i -> (i * 131) mod universe) (int_bound (key_count - 1)) in
    frequency
      [ (3, map (fun k -> Find k) key);
        (4, map2 (fun k v -> Insert (k, v)) key (int_bound 255));
        (2, map (fun k -> Delete k) key) ])

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Find k -> Printf.sprintf "F%d" k
             | Insert (k, v) -> Printf.sprintf "I%d=%d" k v
             | Delete k -> Printf.sprintf "D%d" k)
           ops))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

let value_bytes = 4

let encode v = Bytes.of_string (Printf.sprintf "%04d" (v mod 10_000))

(* Drive [ops] against the structure and the model; any divergence
   fails the property. [insert]/[delete] may be missing (static or
   insert-only structures skip those ops). *)
let agrees ~find ?insert ?delete ops =
  let model = Hashtbl.create 64 in
  List.for_all
    (fun op ->
      match op with
      | Find k ->
        let expected = Hashtbl.find_opt model k in
        let got = Option.map Bytes.to_string (find k) in
        got = Option.map Bytes.to_string expected
      | Insert (k, v) ->
        (match insert with
         | None -> true
         | Some insert ->
           insert k (encode v);
           Hashtbl.replace model k (encode v);
           true)
      | Delete k ->
        (match delete with
         | None -> true
         | Some delete ->
           let got = delete k in
           let expected = Hashtbl.mem model k in
           Hashtbl.remove model k;
           got = expected))
    ops

let mk_test name build =
  QCheck.Test.make ~name ~count:60 ops_arbitrary (fun ops -> build ops)

let basic_model =
  mk_test "model: basic dict" (fun ops ->
      let cfg =
        Basic.plan ~universe ~capacity:key_count ~block_words:32 ~degree:6
          ~value_bytes ~seed:1 ()
      in
      let machine =
        Pdm.create ~disks:6 ~block_size:32
          ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
      in
      let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
      agrees ~find:(Basic.find d) ~insert:(Basic.insert d)
        ~delete:(Basic.delete d) ops)

let fragmented_model =
  mk_test "model: fragmented dict" (fun ops ->
      let cfg =
        Fragmented.plan ~universe ~capacity:key_count ~block_words:64
          ~degree:6 ~sigma_bits:(8 * value_bytes) ~seed:2 ()
      in
      let machine =
        Pdm.create ~disks:6 ~block_size:64
          ~blocks_per_disk:(Fragmented.blocks_per_disk cfg) ()
      in
      let d = Fragmented.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
      agrees ~find:(Fragmented.find d) ~insert:(Fragmented.insert d)
        ~delete:(Fragmented.delete d) ops)

let cascade_model =
  mk_test "model: cascade (no deletes)" (fun ops ->
      let t =
        Cascade.create ~block_words:32
          { Cascade.universe; capacity = key_count; degree = 15;
            sigma_bits = 8 * value_bytes; epsilon = 1.0; v_factor = 3;
            seed = 3 }
      in
      agrees ~find:(Cascade.find t) ~insert:(Cascade.insert t) ops)

let rebuild_model =
  mk_test "model: global rebuild" (fun ops ->
      let t =
        Rebuild.create
          { Rebuild.universe; degree = 6; value_bytes; block_words = 32;
            initial_capacity = 8; max_capacity = 4 * key_count;
            transfer_per_op = 2; seed = 4 }
      in
      agrees ~find:(Rebuild.find t) ~insert:(Rebuild.insert t)
        ~delete:(Rebuild.delete t) ops)

let hash_model =
  mk_test "model: striped hash table" (fun ops ->
      let cfg =
        Hash_table.plan ~universe ~capacity:key_count ~block_words:16
          ~disks:4 ~value_bytes ~seed:5 ()
      in
      let machine =
        Pdm.create ~disks:4 ~block_size:16
          ~blocks_per_disk:cfg.Hash_table.superblocks ()
      in
      let h = Hash_table.create ~machine cfg in
      agrees ~find:(Hash_table.find h) ~insert:(Hash_table.insert h)
        ~delete:(Hash_table.delete h) ops)

let cuckoo_model =
  mk_test "model: cuckoo" (fun ops ->
      let cfg =
        Cuckoo.plan ~universe ~capacity:key_count ~block_words:16 ~disks:4
          ~value_bytes ~seed:6 ()
      in
      let machine =
        Pdm.create ~disks:4 ~block_size:16
          ~blocks_per_disk:cfg.Cuckoo.buckets ()
      in
      let c = Cuckoo.create ~machine cfg in
      agrees ~find:(Cuckoo.find c) ~insert:(Cuckoo.insert c)
        ~delete:(Cuckoo.delete c) ops)

let two_level_model =
  mk_test "model: two-level trick" (fun ops ->
      let cfg =
        Two_level.plan ~universe ~capacity:key_count ~block_words:16 ~disks:4
          ~value_bytes ~seed:7 ()
      in
      let machine =
        Pdm.create ~disks:4 ~block_size:16
          ~blocks_per_disk:
            (Two_level.superblocks_needed cfg ~block_words:16 ~disks:4)
          ()
      in
      let d = Two_level.create ~machine cfg in
      agrees ~find:(Two_level.find d) ~insert:(Two_level.insert d)
        ~delete:(Two_level.delete d) ops)

let btree_model =
  mk_test "model: b-tree" (fun ops ->
      let machine =
        Pdm.create ~disks:4 ~block_size:16 ~blocks_per_disk:512 ()
      in
      let t =
        Btree.create ~machine
          { Btree.universe; value_bytes; cache_levels = 0; superblocks = 512 }
      in
      agrees ~find:(Btree.find t) ~insert:(Btree.insert t)
        ~delete:(Btree.delete t) ops)

(* The B-tree must additionally keep its range scans consistent with
   the model after arbitrary updates. *)
let btree_range_model =
  QCheck.Test.make ~name:"model: b-tree ranges" ~count:40 ops_arbitrary
    (fun ops ->
      let machine =
        Pdm.create ~disks:4 ~block_size:16 ~blocks_per_disk:512 ()
      in
      let t =
        Btree.create ~machine
          { Btree.universe; value_bytes; cache_levels = 0; superblocks = 512 }
      in
      let model = Hashtbl.create 64 in
      List.iter
        (function
          | Find _ -> ()
          | Insert (k, v) ->
            Btree.insert t k (encode v);
            Hashtbl.replace model k (encode v)
          | Delete k ->
            ignore (Btree.delete t k);
            Hashtbl.remove model k)
        ops;
      let got = List.map fst (Btree.range t ~lo:0 ~hi:universe) in
      let expected =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) model [])
      in
      got = expected)

let suite =
  [ ("model",
     List.map QCheck_alcotest.to_alcotest
       [ basic_model; fragmented_model; cascade_model; rebuild_model;
         hash_model; cuckoo_model; two_level_model; btree_model;
         btree_range_model ]) ]
