(* Tests for the dynamic structures: the fragmented k = d/2 dictionary
   (Section 4.1 with satellite data), the Section 4.3 cascade, and
   global rebuilding. *)

open Pdm_sim
module Fragmented = Pdm_dictionary.Fragmented
module Cascade = Pdm_dictionary.Dynamic_cascade
module Rebuild = Pdm_dictionary.Global_rebuild
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let universe = 1 lsl 22

let sat_of sigma_bits k =
  Bytes.init ((sigma_bits + 7) / 8) (fun i -> Char.chr ((k + (3 * i)) land 0xff))

(* --- Fragmented --- *)

let mk_frag ?(capacity = 300) ?(degree = 8) ?(sigma_bits = 128)
    ?(block_words = 64) () =
  let cfg =
    Fragmented.plan ~universe ~capacity ~block_words ~degree ~sigma_bits
      ~seed:3 ()
  in
  let machine =
    Pdm.create ~disks:degree ~block_size:block_words
      ~blocks_per_disk:(Fragmented.blocks_per_disk cfg) ()
  in
  (machine, Fragmented.create ~machine ~disk_offset:0 ~block_offset:0 cfg)

let test_frag_roundtrip () =
  let _, d = mk_frag () in
  let rng = Prng.create 1 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  Array.iter (fun k -> Fragmented.insert d k (sat_of 128 k)) members;
  check "size" 300 (Fragmented.size d);
  Array.iter
    (fun k ->
      match Fragmented.find d k with
      | Some v ->
        Alcotest.(check string) "satellite"
          (Bytes.to_string (sat_of 128 k))
          (Bytes.to_string v)
      | None -> Alcotest.failf "member %d missing" k)
    members;
  Array.iter (fun k -> checkb "absent" false (Fragmented.mem d k)) absent

let test_frag_one_io_lookup () =
  let machine, d = mk_frag () in
  let rng = Prng.create 2 in
  let keys = Sampling.distinct rng ~universe ~count:200 in
  Array.iter (fun k -> Fragmented.insert d k (sat_of 128 k)) keys;
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Fragmented.find d k)) keys;
  check "1 I/O per lookup" 200
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let test_frag_insert_two_rounds () =
  let machine, d = mk_frag () in
  Stats.reset (Pdm.stats machine);
  Fragmented.insert d 77 (sat_of 128 77);
  let s = Stats.snapshot (Pdm.stats machine) in
  check "1 read round" 1 s.Stats.parallel_reads;
  check "1 write round" 1 s.Stats.parallel_writes

let test_frag_update_in_place () =
  let _, d = mk_frag () in
  Fragmented.insert d 5 (sat_of 128 5);
  Fragmented.insert d 5 (sat_of 128 99);
  check "size stays 1" 1 (Fragmented.size d);
  Alcotest.(check string) "updated"
    (Bytes.to_string (sat_of 128 99))
    (Bytes.to_string (Option.get (Fragmented.find d 5)))

let test_frag_delete () =
  let _, d = mk_frag () in
  Fragmented.insert d 1 (sat_of 128 1);
  Fragmented.insert d 2 (sat_of 128 2);
  checkb "delete hit" true (Fragmented.delete d 1);
  checkb "gone" false (Fragmented.mem d 1);
  checkb "kept" true (Fragmented.mem d 2);
  checkb "second delete misses" false (Fragmented.delete d 1);
  check "size" 1 (Fragmented.size d)

let test_frag_load_within_bucket () =
  let _, d = mk_frag ~capacity:1000 () in
  let rng = Prng.create 3 in
  Array.iter
    (fun k -> Fragmented.insert d k (sat_of 128 k))
    (Sampling.distinct rng ~universe ~count:1000);
  checkb "max load within slots" true
    (Fragmented.max_load d <= Fragmented.slots_per_bucket d)

let test_frag_bandwidth_scales_with_bd () =
  (* The supported satellite grows ~ linearly with B·D. *)
  let _, small = mk_frag ~block_words:64 () in
  let _, big = mk_frag ~block_words:256 () in
  checkb "bandwidth grows" true
    (Fragmented.bandwidth_bits big ~block_words:256
     > 2 * Fragmented.bandwidth_bits small ~block_words:64)

(* --- Dynamic cascade --- *)

let mk_cascade ?(capacity = 400) ?(degree = 16) ?(sigma_bits = 256)
    ?(epsilon = 1.0) ?(block_words = 64) () =
  Cascade.create ~block_words
    { Cascade.universe; capacity; degree; sigma_bits; epsilon; v_factor = 3;
      seed = 11 }

let test_cascade_roundtrip () =
  let t = mk_cascade () in
  let rng = Prng.create 4 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:400 in
  Array.iter (fun k -> Cascade.insert t k (sat_of 256 k)) members;
  check "size" 400 (Cascade.size t);
  Array.iter
    (fun k ->
      match Cascade.find t k with
      | Some v ->
        Alcotest.(check string) "satellite"
          (Bytes.to_string (sat_of 256 k))
          (Bytes.to_string v)
      | None -> Alcotest.failf "member %d missing" k)
    members;
  Array.iter (fun k -> checkb "absent" false (Cascade.mem t k)) absent

let test_cascade_unsuccessful_one_io () =
  let t = mk_cascade () in
  let rng = Prng.create 5 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  Array.iter (fun k -> Cascade.insert t k (sat_of 256 k)) members;
  let machine = Cascade.machine t in
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Cascade.find t k)) absent;
  check "exactly 1 I/O per unsuccessful search" 300
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let test_cascade_successful_avg_within_eps () =
  let epsilon = 1.0 in
  let t = mk_cascade ~epsilon ~capacity:500 () in
  let rng = Prng.create 6 in
  let members = Sampling.distinct rng ~universe ~count:500 in
  Array.iter (fun k -> Cascade.insert t k (sat_of 256 k)) members;
  let machine = Cascade.machine t in
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Cascade.find t k)) members;
  let total = Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)) in
  let avg = float_of_int total /. 500.0 in
  checkb (Printf.sprintf "avg successful search %.3f <= 1 + eps" avg) true
    (avg <= 1.0 +. epsilon);
  checkb "searches cost at least 1" true (avg >= 1.0)

let test_cascade_insert_avg_within_eps () =
  let epsilon = 1.0 in
  let t = mk_cascade ~epsilon ~capacity:500 () in
  let rng = Prng.create 7 in
  let members = Sampling.distinct rng ~universe ~count:500 in
  let machine = Cascade.machine t in
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> Cascade.insert t k (sat_of 256 k)) members;
  let s = Stats.snapshot (Pdm.stats machine) in
  check "one write round per insert" 500 s.Stats.parallel_writes;
  let avg = float_of_int (Stats.parallel_ios s) /. 500.0 in
  checkb (Printf.sprintf "avg insert %.3f <= 2 + eps" avg) true
    (avg <= 2.0 +. epsilon)

let test_cascade_worst_case_logarithmic () =
  let t = mk_cascade ~capacity:500 () in
  let rng = Prng.create 8 in
  let members = Sampling.distinct rng ~universe ~count:500 in
  let machine = Cascade.machine t in
  let worst = ref 0 in
  Array.iter
    (fun k ->
      let (), cost =
        Stats.measure (Pdm.stats machine) (fun () ->
            Cascade.insert t k (sat_of 256 k))
      in
      worst := max !worst (Stats.parallel_ios cost))
    members;
  checkb
    (Printf.sprintf "worst insert %d <= levels + 1 = %d" !worst
       (Cascade.levels t + 1))
    true
    (!worst <= Cascade.levels t + 1)

let test_cascade_most_keys_level_one () =
  let t = mk_cascade ~capacity:500 () in
  let rng = Prng.create 9 in
  let members = Sampling.distinct rng ~universe ~count:500 in
  Array.iter (fun k -> Cascade.insert t k (sat_of 256 k)) members;
  let level1 =
    Array.fold_left
      (fun acc k -> if Cascade.level_of t k = Some 1 then acc + 1 else acc)
      0 members
  in
  checkb
    (Printf.sprintf "%d/500 at level 1" level1)
    true
    (float_of_int level1 >= 0.5 *. 500.0)

let test_cascade_level_sizes_decrease () =
  let t = mk_cascade () in
  let sizes = Cascade.level_fields t in
  checkb "at least 2 levels" true (Array.length sizes >= 2);
  for i = 0 to Array.length sizes - 2 do
    checkb "monotone decreasing" true (sizes.(i) >= sizes.(i + 1))
  done

let test_cascade_update_in_place () =
  let t = mk_cascade () in
  Cascade.insert t 42 (sat_of 256 1);
  Cascade.insert t 42 (sat_of 256 2);
  check "size 1" 1 (Cascade.size t);
  Alcotest.(check string) "updated"
    (Bytes.to_string (sat_of 256 2))
    (Bytes.to_string (Option.get (Cascade.find t 42)))

let test_cascade_rejects_small_degree () =
  checkb "theorem 7 degree constraint" true
    (try
       ignore (mk_cascade ~degree:8 ~epsilon:1.0 ());
       false
     with Invalid_argument _ -> true)

(* --- Global rebuilding --- *)

let mk_rebuild ?(initial = 32) ?(maxcap = 4096) ?(transfer = 4) () =
  Rebuild.create
    { Rebuild.universe; degree = 8; value_bytes = 8; block_words = 64;
      initial_capacity = initial; max_capacity = maxcap;
      transfer_per_op = transfer; seed = 21 }

let val8 k = Bytes.of_string (Printf.sprintf "%08d" (k mod 100_000_000))

let test_rebuild_grows_past_capacity () =
  let t = mk_rebuild ~initial:32 () in
  let rng = Prng.create 10 in
  let keys = Sampling.distinct rng ~universe ~count:1000 in
  Array.iter (fun k -> Rebuild.insert t k (val8 k)) keys;
  check "all stored" 1000 (Rebuild.size t);
  checkb "rebuilt at least twice" true (Rebuild.rebuilds t >= 2);
  Array.iter
    (fun k ->
      match Rebuild.find t k with
      | Some v ->
        Alcotest.(check string) "value" (Bytes.to_string (val8 k)) (Bytes.to_string v)
      | None -> Alcotest.failf "key %d lost across rebuilds" k)
    keys

let test_rebuild_lookup_one_io () =
  let t = mk_rebuild () in
  let rng = Prng.create 11 in
  let keys = Sampling.distinct rng ~universe ~count:500 in
  Array.iter (fun k -> Rebuild.insert t k (val8 k)) keys;
  let machine = Rebuild.machine t in
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Rebuild.find t k)) keys;
  check "1 I/O per lookup even mid-rebuild" 500
    (Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)))

let test_rebuild_worst_case_constant () =
  let t = mk_rebuild ~initial:32 ~transfer:4 () in
  let rng = Prng.create 12 in
  let keys = Sampling.distinct rng ~universe ~count:2000 in
  let machine = Rebuild.machine t in
  let worst = ref 0 in
  Array.iter
    (fun k ->
      let (), cost =
        Stats.measure (Pdm.stats machine) (fun () -> Rebuild.insert t k (val8 k))
      in
      worst := max !worst (Stats.parallel_ios cost))
    keys;
  (* transfer_per_op entries at (1R + 1W) each, plus the op itself and
     a possible bucket drain: comfortably constant, never linear. *)
  checkb (Printf.sprintf "worst insert %d is O(1)" !worst) true (!worst <= 16)

let test_rebuild_updates_during_migration () =
  let t = mk_rebuild ~initial:32 ~transfer:1 () in
  let rng = Prng.create 13 in
  let keys = Sampling.distinct rng ~universe ~count:200 in
  Array.iter (fun k -> Rebuild.insert t k (val8 k)) keys;
  (* Update every key (many while a migration is running). *)
  Array.iter (fun k -> Rebuild.insert t k (val8 (k + 1))) keys;
  check "no duplicates" 200 (Rebuild.size t);
  Array.iter
    (fun k ->
      Alcotest.(check string) "fresh value" (Bytes.to_string (val8 (k + 1)))
        (Bytes.to_string (Option.get (Rebuild.find t k))))
    keys

let test_rebuild_deletes () =
  let t = mk_rebuild ~initial:32 () in
  let rng = Prng.create 14 in
  let keys = Sampling.distinct rng ~universe ~count:300 in
  Array.iter (fun k -> Rebuild.insert t k (val8 k)) keys;
  Array.iteri
    (fun i k -> if i mod 2 = 0 then checkb "delete hit" true (Rebuild.delete t k))
    keys;
  check "half left" 150 (Rebuild.size t);
  Array.iteri
    (fun i k ->
      checkb "membership after deletes" (i mod 2 = 1) (Rebuild.mem t k))
    keys

let test_rebuild_max_capacity_enforced () =
  let t = mk_rebuild ~initial:16 ~maxcap:64 () in
  let rng = Prng.create 15 in
  let keys = Sampling.distinct rng ~universe ~count:64 in
  Array.iter (fun k -> Rebuild.insert t k (val8 k)) keys;
  checkb "hard cap" true
    (try
       Rebuild.insert t 12345 (val8 1);
       false
     with Invalid_argument _ -> true)

let suite =
  let tc = Alcotest.test_case in
  [ ("dictionary.fragmented",
     [ tc "roundtrip" `Quick test_frag_roundtrip;
       tc "1 I/O lookups" `Quick test_frag_one_io_lookup;
       tc "insert = 2 rounds" `Quick test_frag_insert_two_rounds;
       tc "update in place" `Quick test_frag_update_in_place;
       tc "delete" `Quick test_frag_delete;
       tc "load within bucket" `Quick test_frag_load_within_bucket;
       tc "bandwidth scales with BD" `Quick test_frag_bandwidth_scales_with_bd ]);
    ("dictionary.cascade",
     [ tc "roundtrip" `Quick test_cascade_roundtrip;
       tc "unsuccessful search = 1 I/O" `Quick test_cascade_unsuccessful_one_io;
       tc "successful search avg <= 1+eps" `Quick test_cascade_successful_avg_within_eps;
       tc "insert avg <= 2+eps" `Quick test_cascade_insert_avg_within_eps;
       tc "worst case logarithmic" `Quick test_cascade_worst_case_logarithmic;
       tc "most keys at level 1" `Quick test_cascade_most_keys_level_one;
       tc "level sizes decrease" `Quick test_cascade_level_sizes_decrease;
       tc "update in place" `Quick test_cascade_update_in_place;
       tc "degree constraint" `Quick test_cascade_rejects_small_degree ]);
    ("dictionary.rebuild",
     [ tc "grows past capacity" `Quick test_rebuild_grows_past_capacity;
       tc "lookup is 1 I/O" `Quick test_rebuild_lookup_one_io;
       tc "worst case constant" `Quick test_rebuild_worst_case_constant;
       tc "updates during migration" `Quick test_rebuild_updates_during_migration;
       tc "deletes" `Quick test_rebuild_deletes;
       tc "max capacity enforced" `Quick test_rebuild_max_capacity_enforced ]) ]

(* --- shrinking rebuilds (appended) --- *)

let test_rebuild_shrinks_after_deletions () =
  let t = mk_rebuild ~initial:32 ~maxcap:8192 () in
  let rng = Prng.create 55 in
  let keys = Sampling.distinct rng ~universe ~count:2000 in
  Array.iter (fun k -> Rebuild.insert t k (val8 k)) keys;
  let grown_cap = Rebuild.capacity t in
  checkb "grew" true (grown_cap >= 2000);
  (* Delete almost everything; shrink migrations must bring the
     capacity back down. *)
  Array.iteri (fun i k -> if i < 1990 then ignore (Rebuild.delete t k)) keys;
  (* Let in-flight migrations finish. *)
  for i = 0 to 199 do
    ignore (Rebuild.mem t keys.(i));
    ignore (Rebuild.delete t (universe - 1 - i))
  done;
  checkb
    (Printf.sprintf "capacity %d shrank from %d" (Rebuild.capacity t) grown_cap)
    true
    (Rebuild.capacity t <= grown_cap / 2);
  check "survivors intact" 10 (Rebuild.size t);
  Array.iteri
    (fun i k -> if i >= 1990 then checkb "survivor" true (Rebuild.mem t k))
    keys

let test_rebuild_churn () =
  (* Grow/shrink churn must neither lose keys nor thrash. *)
  let t = mk_rebuild ~initial:16 ~maxcap:4096 ~transfer:4 () in
  let rng = Prng.create 56 in
  let keys = Sampling.distinct rng ~universe ~count:600 in
  for round = 0 to 2 do
    Array.iter (fun k -> Rebuild.insert t k (val8 k)) keys;
    check (Printf.sprintf "round %d full" round) 600 (Rebuild.size t);
    Array.iter (fun k -> checkb "present" true (Rebuild.mem t k)) keys;
    Array.iter (fun k -> ignore (Rebuild.delete t k)) keys;
    check (Printf.sprintf "round %d empty" round) 0 (Rebuild.size t)
  done

let suite =
  suite
  @ [ ("dictionary.rebuild_shrink",
       [ Alcotest.test_case "shrinks after deletions" `Quick
           test_rebuild_shrinks_after_deletions;
         Alcotest.test_case "grow/shrink churn" `Quick test_rebuild_churn ]) ]
