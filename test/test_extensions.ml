(* Tests for the extension structures: tombstone deletion, the
   small-block dictionary, parallel instances, the disk-head-model
   dictionary, and the Section 6 one-probe dynamic structure. *)

open Pdm_sim
module Basic = Pdm_dictionary.Basic_dict
module Small = Pdm_dictionary.Small_block_dict
module Par = Pdm_dictionary.Parallel_instances
module Head = Pdm_dictionary.Head_model_dict
module Opd = Pdm_dictionary.One_probe_dynamic
module Seeded = Pdm_expander.Seeded
module Semi = Pdm_expander.Semi_explicit
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let universe = 1 lsl 20
let val8 k = Bytes.of_string (Printf.sprintf "%08d" (k mod 100_000_000))
let ios m = Stats.parallel_ios (Stats.snapshot (Pdm.stats m))

(* --- tombstone deletion mode --- *)

let mk_tombstone_dict () =
  let cfg =
    Basic.plan ~tombstone:true ~universe ~capacity:200 ~block_words:64
      ~degree:8 ~value_bytes:8 ~seed:1 ()
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:64
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  (machine, Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg)

let test_tombstone_semantics () =
  let _, d = mk_tombstone_dict () in
  Basic.insert d 1 (val8 1);
  Basic.insert d 2 (val8 2);
  checkb "delete hits" true (Basic.delete d 1);
  check "tombstone held" 1 (Basic.tombstones d);
  check "size" 1 (Basic.size d);
  checkb "deleted key gone" false (Basic.mem d 1);
  checkb "other kept" true (Basic.mem d 2);
  checkb "re-delete misses" false (Basic.delete d 1)

let test_tombstone_never_moves_data () =
  (* The whole point of marking: surviving records keep their exact
     slots across arbitrary deletions. *)
  let machine, d = mk_tombstone_dict () in
  let rng = Prng.create 2 in
  let keys = Sampling.distinct rng ~universe ~count:150 in
  Array.iter (fun k -> Basic.insert d k (val8 k)) keys;
  let placement k =
    List.filter_map
      (fun a ->
        let block = Pdm.peek machine a in
        Option.map
          (fun s -> (a, s))
          (Pdm_dictionary.Codec.Slots.find_key block
             ~width:(Basic.record_width d) ~key:k))
      (Basic.addresses d k)
  in
  let survivors = Array.sub keys 0 50 in
  let before = Array.map placement survivors in
  (* Delete the other 100 keys. *)
  Array.iteri (fun i k -> if i >= 50 then ignore (Basic.delete d k)) keys;
  check "100 tombstones" 100 (Basic.tombstones d);
  Array.iteri
    (fun i k ->
      checkb "survivor never moved" true (placement k = before.(i)))
    survivors

let test_tombstone_entries_exclude_dead () =
  let _, d = mk_tombstone_dict () in
  Basic.insert d 1 (val8 1);
  Basic.insert d 2 (val8 2);
  ignore (Basic.delete d 1);
  let live = List.map fst (Basic.entries d) in
  Alcotest.(check (list int)) "only live" [ 2 ] live

let test_tombstone_reinsert () =
  let _, d = mk_tombstone_dict () in
  Basic.insert d 7 (val8 1);
  ignore (Basic.delete d 7);
  Basic.insert d 7 (val8 2);
  checkb "reinserted" true (Basic.mem d 7);
  check "size" 1 (Basic.size d);
  Alcotest.(check string) "fresh value"
    (Bytes.to_string (val8 2))
    (Bytes.to_string (Option.get (Basic.find d 7)))

(* --- small-block dictionary --- *)

let mk_small ?(capacity = 400) ?(block_words = 6) () =
  let cfg =
    Small.plan ~universe ~capacity ~block_words ~degree:8 ~value_bytes:8
      ~seed:3 ()
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:block_words
      ~blocks_per_disk:(Small.blocks_per_disk cfg) ()
  in
  (machine, Small.create ~machine ~disk_offset:0 ~block_offset:0 cfg)

let test_small_roundtrip () =
  let _, d = mk_small () in
  let rng = Prng.create 4 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:400 in
  Array.iter (fun k -> Small.insert d k (val8 k)) members;
  check "size" 400 (Small.size d);
  Array.iter
    (fun k ->
      Alcotest.(check string) "value" (Bytes.to_string (val8 k))
        (Bytes.to_string (Option.get (Small.find d k))))
    members;
  Array.iter (fun k -> checkb "absent" false (Small.mem d k)) absent

let test_small_two_rounds_at_tiny_b () =
  (* B = 6 words holds only 2 records; the flat layout would need many
     rounds, the two-probe layout needs exactly 2. *)
  let machine, d = mk_small ~block_words:6 () in
  let rng = Prng.create 5 in
  let keys = Sampling.distinct rng ~universe ~count:300 in
  Array.iter (fun k -> Small.insert d k (val8 k)) keys;
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Small.find d k)) keys;
  check "2 rounds per lookup" (2 * 300) (ios machine)

let test_small_insert_three_rounds () =
  let machine, d = mk_small () in
  Stats.reset (Pdm.stats machine);
  Small.insert d 42 (val8 42);
  let s = Stats.snapshot (Pdm.stats machine) in
  check "2 read rounds" 2 s.Stats.parallel_reads;
  check "1 write round" 1 s.Stats.parallel_writes

let test_small_update_delete () =
  let _, d = mk_small () in
  Small.insert d 9 (val8 1);
  Small.insert d 9 (val8 2);
  check "size 1" 1 (Small.size d);
  Alcotest.(check string) "updated" (Bytes.to_string (val8 2))
    (Bytes.to_string (Option.get (Small.find d 9)));
  checkb "delete" true (Small.delete d 9);
  checkb "gone" false (Small.mem d 9)

let test_small_load_within_slots () =
  let _, d = mk_small ~capacity:800 () in
  let rng = Prng.create 6 in
  Array.iter
    (fun k -> Small.insert d k (val8 k))
    (Sampling.distinct rng ~universe ~count:800);
  checkb "sub-block load within slots" true
    (Small.max_sub_block_load d <= Small.slots_per_sub_block d)

(* --- parallel instances --- *)

let mk_par ?(instances = 4) () =
  Par.create
    { Par.instances; universe; capacity = 400; degree = 6; value_bytes = 8;
      block_words = 64; seed = 7 }

let test_par_batch_is_two_ios () =
  let t = mk_par () in
  let machine = Par.machine t in
  Stats.reset (Pdm.stats machine);
  Par.insert_batch t [ (1, val8 1); (2, val8 2); (3, val8 3); (4, val8 4) ];
  let s = Stats.snapshot (Pdm.stats machine) in
  check "1 read round for 4 inserts" 1 s.Stats.parallel_reads;
  check "1 write round for 4 inserts" 1 s.Stats.parallel_writes;
  check "all stored" 4 (Par.size t)

let test_par_lookup_one_io () =
  let t = mk_par () in
  Par.insert_batch t [ (10, val8 10); (20, val8 20) ];
  let machine = Par.machine t in
  Stats.reset (Pdm.stats machine);
  checkb "found" true (Par.mem t 10);
  checkb "absent" false (Par.mem t 999);
  check "1 I/O per lookup" 2 (ios machine)

let test_par_roundtrip_and_updates () =
  let t = mk_par () in
  let rng = Prng.create 8 in
  let keys = Sampling.distinct rng ~universe ~count:200 in
  Array.iteri
    (fun i _ ->
      if i mod 4 = 0 && i + 4 <= 200 then
        Par.insert_batch t
          (List.init 4 (fun j -> (keys.(i + j), val8 keys.(i + j)))))
    keys;
  check "size" 200 (Par.size t);
  (* Single-insert updates reach the copy wherever it lives. *)
  Par.insert t keys.(0) (val8 999);
  check "no duplicate" 200 (Par.size t);
  Alcotest.(check string) "updated" (Bytes.to_string (val8 999))
    (Bytes.to_string (Option.get (Par.find t keys.(0))));
  checkb "delete" true (Par.delete t keys.(0));
  check "size after delete" 199 (Par.size t)

let test_par_batch_validation () =
  let t = mk_par ~instances:2 () in
  checkb "oversized batch" true
    (try
       Par.insert_batch t [ (1, val8 1); (2, val8 2); (3, val8 3) ];
       false
     with Invalid_argument _ -> true);
  checkb "duplicate keys" true
    (try
       Par.insert_batch t [ (1, val8 1); (1, val8 2) ];
       false
     with Invalid_argument _ -> true)

(* --- head-model dictionary --- *)

let test_head_model_with_unstriped_graph () =
  let d = 8 and v = 512 in
  let graph = Seeded.unstriped ~seed:9 ~u:universe ~v ~d in
  let machine =
    Pdm.create ~model:Pdm.Parallel_heads ~disks:d ~block_size:64
      ~blocks_per_disk:(v / d) ()
  in
  let t = Head.create ~machine ~graph ~capacity:300 ~value_bytes:8 in
  check "1 round per lookup" 1 (Head.rounds_per_lookup t);
  let rng = Prng.create 10 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  Array.iter (fun k -> Head.insert t k (val8 k)) members;
  Stats.reset (Pdm.stats machine);
  Array.iter
    (fun k ->
      Alcotest.(check string) "value" (Bytes.to_string (val8 k))
        (Bytes.to_string (Option.get (Head.find t k))))
    members;
  check "1 I/O lookups despite no striping" 300 (ios machine);
  Array.iter (fun k -> checkb "absent" false (Head.mem t k)) absent

let test_head_model_rejects_pdm_machine () =
  let graph = Seeded.unstriped ~seed:9 ~u:universe ~v:64 ~d:4 in
  let machine = Pdm.create ~disks:4 ~block_size:64 ~blocks_per_disk:16 () in
  checkb "needs head model" true
    (try
       ignore (Head.create ~machine ~graph ~capacity:10 ~value_bytes:8);
       false
     with Invalid_argument _ -> true)

let test_head_model_with_semi_explicit_graph () =
  (* The Section 5 payoff: a telescope-product (unstriped) expander
     drives a dictionary directly in the head model — no factor-d
     space copy. Small capacity, matching the composed graph's
     effective reach. *)
  let s = Semi.construct ~seed:11 ~capacity:64 ~u:universe ~beta:0.3 ~eps:0.3 in
  let graph = s.Semi.graph in
  let v = Pdm_expander.Bipartite.v graph in
  let disks = 64 in
  let machine =
    Pdm.create ~model:Pdm.Parallel_heads ~disks ~block_size:64
      ~blocks_per_disk:(Pdm_util.Imath.cdiv v disks) ()
  in
  let t = Head.create ~machine ~graph ~capacity:32 ~value_bytes:8 in
  let rng = Prng.create 12 in
  let keys = Sampling.distinct rng ~universe ~count:32 in
  Array.iter (fun k -> Head.insert t k (val8 k)) keys;
  Array.iter (fun k -> checkb "stored" true (Head.mem t k)) keys;
  checkb "rounds = ceil(d/D)" true
    (Head.rounds_per_lookup t
     = Pdm_util.Imath.cdiv (Pdm_expander.Bipartite.d graph) disks)

(* --- one-probe dynamic (Section 6 exploration) --- *)

let mk_opd ?(capacity = 300) () =
  Opd.create ~block_words:64
    { Opd.universe; capacity; degree = 9; sigma_bits = 256; levels = 6;
      v_factor = 3; seed = 13 }

let test_opd_roundtrip () =
  let t = mk_opd () in
  let rng = Prng.create 14 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  let payload k =
    Bytes.init 32 (fun i -> Char.chr (Prng.hash2 ~seed:15 k i land 0xff))
  in
  Array.iter (fun k -> Opd.insert t k (payload k)) members;
  check "size" 300 (Opd.size t);
  Array.iter
    (fun k ->
      Alcotest.(check string) "satellite" (Bytes.to_string (payload k))
        (Bytes.to_string (Option.get (Opd.find t k))))
    members;
  Array.iter (fun k -> checkb "absent" false (Opd.mem t k)) absent

let test_opd_every_lookup_one_io () =
  let t = mk_opd () in
  let rng = Prng.create 16 in
  let members, absent = Sampling.disjoint_pair rng ~universe ~count:300 in
  let payload _ = Bytes.make 32 'x' in
  Array.iter (fun k -> Opd.insert t k (payload k)) members;
  let machine = Opd.machine t in
  Stats.reset (Pdm.stats machine);
  Array.iter (fun k -> ignore (Opd.find t k)) members;
  Array.iter (fun k -> ignore (Opd.find t k)) absent;
  check "every lookup exactly 1 I/O" 600 (ios machine)

let test_opd_every_insert_two_ios () =
  let t = mk_opd () in
  let rng = Prng.create 17 in
  let members = Sampling.distinct rng ~universe ~count:300 in
  let machine = Opd.machine t in
  let worst = ref 0 in
  Array.iter
    (fun k ->
      let (), c =
        Stats.measure (Pdm.stats machine) (fun () ->
            Opd.insert t k (Bytes.make 32 'y'))
      in
      worst := max !worst (Stats.parallel_ios c))
    members;
  check "worst insert = 2 I/Os" 2 !worst

let test_opd_disks_cost () =
  let t = mk_opd () in
  (* The price: (levels + 1) * d disks. *)
  check "disks" ((6 + 1) * 9) (Opd.disks t)

let test_opd_update_in_place () =
  let t = mk_opd () in
  Opd.insert t 5 (Bytes.make 32 'a');
  Opd.insert t 5 (Bytes.make 32 'b');
  check "size 1" 1 (Opd.size t);
  Alcotest.(check string) "updated"
    (String.make 32 'b')
    (Bytes.to_string (Option.get (Opd.find t 5)))

let suite =
  let tc = Alcotest.test_case in
  [ ("extensions.tombstone",
     [ tc "semantics" `Quick test_tombstone_semantics;
       tc "never moves data" `Quick test_tombstone_never_moves_data;
       tc "entries exclude dead" `Quick test_tombstone_entries_exclude_dead;
       tc "reinsert after delete" `Quick test_tombstone_reinsert ]);
    ("extensions.small_block",
     [ tc "roundtrip" `Quick test_small_roundtrip;
       tc "2 rounds at tiny B" `Quick test_small_two_rounds_at_tiny_b;
       tc "insert = 3 rounds" `Quick test_small_insert_three_rounds;
       tc "update and delete" `Quick test_small_update_delete;
       tc "load within slots" `Quick test_small_load_within_slots ]);
    ("extensions.parallel_instances",
     [ tc "batch = 2 I/Os" `Quick test_par_batch_is_two_ios;
       tc "lookup = 1 I/O" `Quick test_par_lookup_one_io;
       tc "roundtrip and updates" `Quick test_par_roundtrip_and_updates;
       tc "batch validation" `Quick test_par_batch_validation ]);
    ("extensions.head_model",
     [ tc "unstriped graph, 1 I/O" `Quick test_head_model_with_unstriped_graph;
       tc "rejects PDM machine" `Quick test_head_model_rejects_pdm_machine;
       tc "semi-explicit graph" `Quick test_head_model_with_semi_explicit_graph ]);
    ("extensions.one_probe_dynamic",
     [ tc "roundtrip" `Quick test_opd_roundtrip;
       tc "every lookup 1 I/O" `Quick test_opd_every_lookup_one_io;
       tc "every insert 2 I/Os" `Quick test_opd_every_insert_two_ios;
       tc "disk cost" `Quick test_opd_disks_cost;
       tc "update in place" `Quick test_opd_update_in_place ]) ]
