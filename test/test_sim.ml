(* Tests for the deterministic simulation-testing subsystem: the
   seeded workload generator, the pure model, the differential runner,
   crash-schedule exploration, shrinking, and repro replay — plus the
   streaming Trace JSONL reader and the shared payload module the sim
   generator reuses. *)

module J = Pdm_simtest.Sim_json
module Gen = Pdm_simtest.Sim_gen
module Model = Pdm_simtest.Sim_model
module Config = Pdm_simtest.Sim_config
module Schedule = Pdm_simtest.Sim_schedule
module Run = Pdm_simtest.Sim_run
module Shrink = Pdm_simtest.Sim_shrink
module Explore = Pdm_simtest.Sim_explore
module Repro = Pdm_simtest.Sim_repro
module W = Pdm_workload.Trace
module Payload = Pdm_workload.Payload
module Iotrace = Pdm_sim.Trace
module Pdm = Pdm_sim.Pdm

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- generator --- *)

let test_gen_deterministic () =
  let spec = { Gen.default with Gen.seed = 17; count = 200 } in
  checkb "same seed, same stream" true (Gen.ops spec = Gen.ops spec);
  let other = Gen.ops { spec with Gen.seed = 18 } in
  checkb "different seed, different stream" false (Gen.ops spec = other);
  check "count honored" 200 (Array.length (Gen.ops spec))

let test_gen_static_lookups_only () =
  let spec = { Gen.default with Gen.static = true; count = 120 } in
  Array.iter
    (function
      | W.Lookup _ -> ()
      | W.Insert _ | W.Delete _ -> Alcotest.fail "static stream must not mutate")
    (Gen.ops spec);
  checkb "static pre-load non-empty" true
    (Array.length (Gen.initial_data spec) > 0);
  check "dynamic pre-load empty" 0
    (Array.length (Gen.initial_data { spec with Gen.static = false }))

let test_gen_dist_roundtrip () =
  List.iter
    (fun d ->
      match Gen.dist_of_string (Gen.dist_to_string d) with
      | Some d' -> checkb "dist roundtrip" true (d = d')
      | None -> Alcotest.fail "dist string did not parse back")
    [ Gen.Uniform; Gen.Zipf_skew 1.25; Gen.Adversarial ];
  checkb "garbage rejected" true (Gen.dist_of_string "pareto" = None)

let test_gen_adversarial_hot_set () =
  let spec =
    { Gen.default with Gen.dist = Gen.Adversarial; count = 400; seed = 3 }
  in
  let keys = Gen.keys spec in
  let hot = Array.sub keys 0 (min 8 (Array.length keys)) in
  let on_hot = ref 0 in
  Array.iter
    (fun op ->
      let k =
        match op with W.Lookup k | W.Insert (k, _) | W.Delete k -> k
      in
      if Array.mem k hot then incr on_hot)
    (Gen.ops spec);
  checkb "adversarial stream hammers the hot set" true
    (!on_hot > 400 * 6 / 10)

(* --- model --- *)

let test_model_semantics () =
  let m = Model.create () in
  checkb "empty find" true (Model.find m 1 = None);
  checkb "insert answer" true (Model.apply m (W.Insert (1, Bytes.of_string "aa")) = `Inserted);
  checkb "find after insert" true (Model.find m 1 = Some (Bytes.of_string "aa"));
  checkb "delete present" true (Model.apply m (W.Delete 1) = `Deleted true);
  checkb "delete absent" true (Model.apply m (W.Delete 1) = `Deleted false);
  checkb "mutates insert" true (Model.mutates m (W.Insert (2, Bytes.empty)));
  checkb "mutates absent delete" false (Model.mutates m (W.Delete 9));
  (* only applied ops mark keys as touched — mutates is a pure probe *)
  ignore (Model.apply m (W.Lookup 9));
  check "touched keys" 2 (List.length (Model.touched_keys m))

(* --- schedule / config serialization --- *)

let test_schedule_roundtrip () =
  let sched =
    [ Schedule.Kill { at = 3; disk = 2 };
      Schedule.Crash { at = 7; point = Pdm_sim.Journal.During_apply 2 };
      Schedule.Damage { at = 3; nth = 11 }; Schedule.Scrub { at = 9 } ]
  in
  (match Schedule.of_json (Schedule.to_json sched) with
   | Ok back ->
     checkb "schedule JSON roundtrip (canonical)" true
       (back = Schedule.canonical sched)
   | Error m -> Alcotest.fail m);
  List.iter
    (fun p ->
      match Schedule.point_of_string (Schedule.point_to_string p) with
      | Some p' -> checkb "crash point roundtrip" true (p = p')
      | None -> Alcotest.fail "crash point did not parse back")
    (Schedule.all_points ~max_partial:3)

let test_config_roundtrip () =
  let cfg =
    { (Config.default Config.Dynamic_cascade) with
      Config.journaled = true; replicas = 2; spares = 1; seed = 9 }
  in
  match Config.of_json (Config.to_json cfg) with
  | Ok back -> checkb "config JSON roundtrip" true (back = cfg)
  | Error m -> Alcotest.fail m

let test_config_validate () =
  let bad =
    { (Config.default Config.Basic) with Config.journaled = true }
  in
  checkb "journal on basic rejected" true (Config.validate bad <> Ok ());
  let bad2 =
    { (Config.default Config.One_probe_dynamic) with Config.cache_blocks = 8 }
  in
  checkb "cache without engine rejected" true (Config.validate bad2 <> Ok ())

(* --- differential runs (clean) --- *)

let clean_run cfg count =
  let r =
    Run.run cfg [] (Gen.ops_seq (Config.gen_spec ~count cfg))
  in
  (match r.Run.divergences with
   | [] -> ()
   | { Run.kind; detail; at } :: _ ->
     Alcotest.fail (Printf.sprintf "divergence at %d [%s]: %s" at kind detail));
  check "all ops ran" count r.Run.ops_run

let test_run_basic_clean () = clean_run (Config.default Config.Basic) 64

let test_run_basic_faulty_clean () =
  clean_run
    { (Config.default Config.Basic) with
      Config.transient = 0.08; straggle = 3; seed = 2 }
    64

let test_run_basic_replicated_clean () =
  clean_run
    { (Config.default Config.Basic) with
      Config.replicas = 2; spares = 1; integrity = true; seed = 4 }
    64

let test_run_static_engine_clean () =
  clean_run
    { (Config.default Config.One_probe_static) with
      Config.engine = true; cache_blocks = 16; seed = 5 }
    64

let test_run_dynamic_journal_clean () =
  clean_run
    { (Config.default Config.One_probe_dynamic) with
      Config.journaled = true; seed = 6 }
    64

let test_run_cascade_journal_clean () =
  clean_run
    { (Config.default Config.Dynamic_cascade) with
      Config.journaled = true; seed = 7 }
    64

(* --- crash exploration --- *)

let test_explore_journaled_clean () =
  let cfg =
    { (Config.default Config.Dynamic_cascade) with
      Config.journaled = true; seed = 11 }
  in
  let o = Explore.explore ~budget:160 ~count:48 cfg in
  checkb "crash schedules enumerated" true (o.Explore.total_space > 100);
  check "no divergences" o.Explore.explored o.Explore.clean;
  checkb "nothing shrunk" true (o.Explore.shrunk = None)

let test_explore_crash_targets () =
  let ops =
    [| W.Insert (1, Bytes.empty); W.Lookup 1; W.Delete 1; W.Delete 1 |]
  in
  (* insert mutates, lookup never, first delete hits, second misses *)
  checkb "mutating indices" true (Explore.mutating_indices ops = [ 0; 2 ])

let test_explore_catches_buggy_adapter () =
  let cfg =
    { (Config.default Config.Dynamic_cascade) with
      Config.journaled = true; buggy = true; seed = 13 }
  in
  let o = Explore.explore ~budget:200 ~count:48 cfg in
  checkb "buggy adapter caught" true (o.Explore.divergent <> []);
  match o.Explore.shrunk with
  | None -> Alcotest.fail "buggy adapter failure did not shrink"
  | Some s ->
    checkb "shrunk to <= 20 ops" true (Array.length s.Shrink.ops <= 20);
    checkb "shrunk schedule non-empty" true (s.Shrink.schedule <> []);
    checkb "shrunk case still fails" false (Run.ok s.Shrink.report);
    (* the repro must replay bit-identically *)
    let path = Filename.temp_file "pdm_sim_buggy" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Repro.write ~path s.Shrink.report ~ops:s.Shrink.ops;
        match Repro.replay ~path with
        | Ok (_, _, bit_identical) ->
          checkb "repro replays bit-identically" true bit_identical
        | Error m -> Alcotest.fail m)

let test_shrink_remap () =
  let ops =
    [| W.Insert (1, Bytes.empty); W.Lookup 1; W.Insert (2, Bytes.empty) |]
  in
  let sched =
    [ Schedule.Crash { at = 0; point = Pdm_sim.Journal.After_log };
      Schedule.Crash { at = 2; point = Pdm_sim.Journal.After_commit } ]
  in
  let ops', sched' = Shrink.remap [| false; true; true |] ops sched in
  check "ops remapped" 2 (Array.length ops');
  checkb "event on dropped op removed, survivor re-pinned" true
    (sched' = [ Schedule.Crash { at = 1; point = Pdm_sim.Journal.After_commit } ])

(* --- repro corpus --- *)

(* resolved at module load, before alcotest chdirs into its log dir;
   dune's (deps (glob_files repros/*.jsonl)) stages the corpus here *)
let repros_dir = Filename.concat (Sys.getcwd ()) "repros"

let test_repro_corpus () =
  let files =
    Sys.readdir repros_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
  in
  checkb "corpus present" true (List.length files >= 3);
  List.iter
    (fun f ->
      let path = Filename.concat repros_dir f in
      match Repro.replay ~path with
      | Error m -> Alcotest.fail (f ^ ": " ^ m)
      | Ok (header, report, bit_identical) ->
        if header.Repro.expected = [] then
          checkb (f ^ " replays clean") true (Run.ok report)
        else checkb (f ^ " replays bit-identically") true bit_identical)
    files

let test_repro_roundtrip () =
  let cfg =
    { (Config.default Config.One_probe_dynamic) with
      Config.journaled = true; seed = 21 }
  in
  let ops = Gen.ops (Config.gen_spec ~count:24 cfg) in
  let r = Run.run cfg [] (Array.to_seq ops) in
  let path = Filename.temp_file "pdm_sim_clean" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repro.write ~path r ~ops;
      match Repro.load ~path with
      | Error m -> Alcotest.fail m
      | Ok (header, ops') ->
        checkb "config survives" true (header.Repro.config = cfg);
        checkb "ops survive" true (ops' = ops);
        check "expected empty on a clean run" 0
          (List.length header.Repro.expected))

(* --- satellite: streaming Trace JSONL reader --- *)

let test_trace_fold_streaming () =
  let trace = Iotrace.create ~capacity:64 () in
  let m =
    Pdm.create ~trace ~disks:4 ~block_size:8 ~blocks_per_disk:8 ()
  in
  for b = 0 to 7 do
    Pdm.write m
      (List.init 4 (fun d ->
           ({ Pdm.disk = d; block = b }, Array.make 8 (Some (d + b)))))
  done;
  ignore (Pdm.read m (List.init 4 (fun d -> { Pdm.disk = d; block = 0 })));
  let path = Filename.temp_file "pdm_sim_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Iotrace.export_jsonl trace path;
      let eager = Iotrace.load_jsonl path in
      let folded =
        List.rev
          (Iotrace.fold_jsonl path ~init:[] ~f:(fun acc e -> e :: acc))
      in
      checkb "fold_jsonl sees what load_jsonl sees" true (folded = eager);
      let count = ref 0 in
      Iotrace.iter_jsonl path (fun _ -> incr count);
      check "iter_jsonl event count" (List.length eager) !count)

(* --- satellite: shared payload module --- *)

let test_payload_shared () =
  (* the experiments' golden outputs depend on these exact bytes *)
  checkb "experiments payload = workload payload" true
    (Pdm_experiments.Common.sigma_payload ~sigma_bits:64 123
     = Payload.sigma_payload ~seed:99 ~sigma_bits:64 123);
  checkb "value_bytes_of length" true
    (Bytes.length (Payload.value_bytes_of 8 42) = 8);
  checkb "payload deterministic" true
    (Payload.value_bytes_of ~seed:5 16 7 = Payload.value_bytes_of ~seed:5 16 7);
  checkb "payload seed matters" false
    (Payload.value_bytes_of ~seed:5 16 7 = Payload.value_bytes_of ~seed:6 16 7)

(* --- json helper --- *)

let test_json_roundtrip () =
  let j =
    J.Obj
      [ ("a", J.Int (-3)); ("b", J.String "x\"y\n"); ("c", J.List [ J.Bool true; J.Null ]);
        ("d", J.Float 0.25) ]
  in
  (match J.of_string (J.to_string j) with
   | Ok j' -> checkb "json roundtrip" true (j = j')
   | Error m -> Alcotest.fail m);
  checks "hex roundtrip" "deadbeef"
    (J.hex_of_bytes
       (match J.bytes_of_hex "deadbeef" with
        | Some b -> b
        | None -> Alcotest.fail "hex did not parse"))

(* --- property: any seed's workload stays differential-clean --- *)

let prop_differential_clean =
  QCheck.Test.make ~name:"differential run clean on any generator seed"
    ~count:12
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cfg = { (Config.default Config.Basic) with Config.seed } in
      let r = Run.run cfg [] (Gen.ops_seq (Config.gen_spec ~count:32 cfg)) in
      Run.ok r)

let prop_gen_keys_in_universe =
  QCheck.Test.make ~name:"generated keys stay inside the universe" ~count:40
    QCheck.(pair (int_bound 1_000) (int_range 1 60))
    (fun (seed, key_count) ->
      let spec = { Gen.default with Gen.seed; key_count; count = 64 } in
      Array.for_all
        (fun op ->
          let k =
            match op with W.Lookup k | W.Insert (k, _) | W.Delete k -> k
          in
          k >= 0 && k < spec.Gen.universe)
        (Gen.ops spec))

let suite =
  [ ( "sim",
      [ Alcotest.test_case "generator determinism" `Quick
          test_gen_deterministic;
        Alcotest.test_case "static stream is lookups-only" `Quick
          test_gen_static_lookups_only;
        Alcotest.test_case "distribution names roundtrip" `Quick
          test_gen_dist_roundtrip;
        Alcotest.test_case "adversarial stream has a hot set" `Quick
          test_gen_adversarial_hot_set;
        Alcotest.test_case "reference model semantics" `Quick
          test_model_semantics;
        Alcotest.test_case "schedule JSON roundtrip" `Quick
          test_schedule_roundtrip;
        Alcotest.test_case "config JSON roundtrip" `Quick
          test_config_roundtrip;
        Alcotest.test_case "config validation" `Quick test_config_validate;
        Alcotest.test_case "differential: basic" `Quick test_run_basic_clean;
        Alcotest.test_case "differential: basic under faults" `Quick
          test_run_basic_faulty_clean;
        Alcotest.test_case "differential: basic r2+integrity" `Quick
          test_run_basic_replicated_clean;
        Alcotest.test_case "differential: static via engine+cache" `Quick
          test_run_static_engine_clean;
        Alcotest.test_case "differential: dynamic journaled" `Quick
          test_run_dynamic_journal_clean;
        Alcotest.test_case "differential: cascade journaled" `Quick
          test_run_cascade_journal_clean;
        Alcotest.test_case "explore: journaled cascade stays clean" `Slow
          test_explore_journaled_clean;
        Alcotest.test_case "explore: crash targets" `Quick
          test_explore_crash_targets;
        Alcotest.test_case "explore: catches + shrinks the buggy adapter"
          `Slow test_explore_catches_buggy_adapter;
        Alcotest.test_case "shrink: schedule remapping" `Quick
          test_shrink_remap;
        Alcotest.test_case "repro corpus replays" `Slow test_repro_corpus;
        Alcotest.test_case "repro file roundtrip" `Quick test_repro_roundtrip;
        Alcotest.test_case "trace fold_jsonl streams the same events" `Quick
          test_trace_fold_streaming;
        Alcotest.test_case "shared payload module" `Quick test_payload_shared;
        Alcotest.test_case "sim json roundtrip" `Quick test_json_roundtrip ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_differential_clean; prop_gen_keys_in_universe ] ) ]
