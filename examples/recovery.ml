(* Crash recovery without a directory.

   Section 1.1: "There is no notion of an index structure or central
   directory of keys. Lookups and updates go directly to the relevant
   blocks, without any knowledge of the current data other than the
   size of the data structure and the size of the universe."

   This example makes that property executable: a dictionary's handle
   is dropped ("the server crashed"), and a fresh process rebuilds a
   fully operational handle from the configuration constants alone —
   one scan over the structure's blocks, no journal, no metadata.

   Run with:  dune exec examples/recovery.exe *)

module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Basic = Pdm_dictionary.Basic_dict
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let () =
  (* The only state a process ever needs: these constants. *)
  let cfg =
    Basic.plan ~universe:(1 lsl 20) ~capacity:5_001 ~block_words:64 ~degree:8
      ~value_bytes:16 ~seed:2026 ()
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:64
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in

  (* Process 1 fills the dictionary... *)
  let before_crash =
    let dict = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
    let rng = Prng.create 1 in
    let keys = Sampling.distinct rng ~universe:(1 lsl 20) ~count:5_000 in
    (* one slot of headroom is reserved for the post-crash write *)
    Array.iter
      (fun k ->
        Basic.insert dict k (Bytes.of_string (Printf.sprintf "payload %06d!" k)))
      keys;
    Printf.printf "process 1: stored %d records, then crashed\n"
      (Basic.size dict);
    keys
  in
  (* ...and its handle is gone. Only the disks and the constants
     survive. *)

  (* Process 2 recovers. *)
  Stats.reset (Pdm.stats machine);
  let dict = Basic.recover ~machine ~disk_offset:0 ~block_offset:0 cfg in
  let scan_cost = Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)) in
  Printf.printf
    "process 2: recovered %d records in %d parallel I/Os (one scan; %d \
     blocks per disk)\n"
    (Basic.size dict) scan_cost (Basic.blocks_per_disk cfg);

  (* The recovered handle serves reads immediately — and the layout is
     the same because placement is deterministic in the seed. *)
  let sample = before_crash.(42) in
  (match Basic.find dict sample with
   | Some v -> Printf.printf "lookup %d -> %S (1 parallel I/O)\n" sample (Bytes.to_string v)
   | None -> print_endline "recovery lost data?!");

  (* And writes. *)
  Basic.insert dict 123_456 (Bytes.of_string "post-crash write");
  Printf.printf "insert after recovery: size %d\n" (Basic.size dict);

  print_endline
    "-> no journal, no index rebuild: the expander IS the directory"
