(* Quickstart: a deterministic dictionary on 8 simulated disks.

   Run with:  dune exec examples/quickstart.exe *)

module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Basic = Pdm_dictionary.Basic_dict

let () =
  (* 1. Plan a dictionary: universe of 2^20 keys, room for 10k of
     them, blocks of 64 words, expander degree 8 (= 8 disks). *)
  let cfg =
    Basic.plan ~universe:(1 lsl 20) ~capacity:10_000 ~block_words:64
      ~degree:8 ~value_bytes:16 ~seed:42 ()
  in

  (* 2. Build the simulated machine it needs and the dictionary on it. *)
  let machine =
    Pdm.create ~disks:8 ~block_size:64
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let dict = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in

  (* 3. Insert a few records. Every operation's I/O is counted. *)
  Basic.insert dict 17 (Bytes.of_string "the answer is 42");
  Basic.insert dict 99 (Bytes.of_string "hello, disks!");
  Printf.printf "stored %d records\n" (Basic.size dict);

  (* 4. Look up — one parallel I/O, guaranteed, worst case. *)
  let (value, cost) =
    Stats.measure (Pdm.stats machine) (fun () -> Basic.find dict 17)
  in
  (match value with
   | Some v -> Printf.printf "find 17 -> %S\n" (Bytes.to_string v)
   | None -> print_endline "find 17 -> not found?!");
  Printf.printf "lookup cost: %d parallel I/O(s)\n" (Stats.parallel_ios cost);

  let (absent, cost) =
    Stats.measure (Pdm.stats machine) (fun () -> Basic.find dict 1234)
  in
  Printf.printf "find 1234 -> %s (cost %d parallel I/O)\n"
    (match absent with Some _ -> "found" | None -> "absent")
    (Stats.parallel_ios cost);

  (* 5. Updates cost one read round + one write round. *)
  let ((), cost) =
    Stats.measure (Pdm.stats machine) (fun () ->
        Basic.insert dict 17 (Bytes.of_string "updated in place"))
  in
  Printf.printf "update cost: %d parallel I/Os (1 read + 1 write)\n"
    (Stats.parallel_ios cost);

  (* 6. Deletion frees the slot. *)
  ignore (Basic.delete dict 99);
  Printf.printf "after delete: %d records, 99 present = %b\n"
    (Basic.size dict) (Basic.mem dict 99);

  (* 7. Everything is deterministic: same seed, same layout, no
     randomness at operation time. *)
  print_endline "done — every number above reproduces exactly on re-run"
