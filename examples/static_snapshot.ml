(* Shipping a read-only index: the Section 4.2 one-probe static
   dictionary.

   A nightly job builds an immutable index over a dataset (here: a
   product catalog) at roughly the cost of sorting it, and serving
   processes answer every query — hit or miss — in exactly one
   parallel I/O, with zero coordination: the structure is static, so
   replicas can be copied byte-for-byte and served without locks.

   Run with:  dune exec examples/static_snapshot.exe *)

module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module One_probe = Pdm_dictionary.One_probe_static
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let products = 5_000
let sigma_bits = 256 (* a 32-byte product record *)

let record_of sku =
  Bytes.of_string (Printf.sprintf "sku=%08d;price=%04d;stock=%03d " sku
                     (sku mod 10_000) (sku mod 1_000))

let () =
  let rng = Prng.create 11 in
  let skus, absent =
    Sampling.disjoint_pair rng ~universe:(1 lsl 26) ~count:products
  in
  let data = Array.map (fun sku -> (sku, record_of sku)) skus in

  (* Build (the nightly job). The report compares the construction's
     I/O with the cost of sorting the same volume. *)
  let cfg =
    { One_probe.universe = 1 lsl 26; capacity = products; degree = 9;
      sigma_bits; v_factor = 3; case = One_probe.Case_b; seed = 2026 }
  in
  let t = One_probe.build ~construction:`Direct ~block_words:64 cfg data in
  let r = One_probe.report t in
  Printf.printf
    "built index over %d products: %d construction I/Os (sorting the input \
     alone: %d), %d peel rounds, %.0f bits/key\n"
    products r.One_probe.construction_ios r.One_probe.sort_nd_ios
    r.One_probe.peel_rounds
    (float_of_int r.One_probe.space_bits /. float_of_int products);

  (* Serve. Every query is one parallel I/O — also the misses, which
     is what makes tail latency a constant. *)
  let machine = One_probe.machine t in
  Stats.reset (Pdm.stats machine);
  let hits = ref 0 in
  Array.iter (fun sku -> if One_probe.mem t sku then incr hits) skus;
  Array.iter (fun sku -> if One_probe.mem t sku then incr hits) absent;
  let ios = Stats.parallel_ios (Stats.snapshot (Pdm.stats machine)) in
  Printf.printf "served %d queries (%d hits) in %d parallel I/Os — %.3f per \
                 query, worst case included\n"
    (2 * products) !hits ios
    (float_of_int ios /. float_of_int (2 * products));

  (match One_probe.find t skus.(123) with
   | Some record ->
     Printf.printf "sample record: %S\n"
       (String.sub (Bytes.to_string record) 0 30)
   | None -> ());
  print_endline
    "-> a static structure: replicate freely, serve without locks, rebuild \
     nightly at ~sort cost"
