(* Degraded reads: the webmail workload on imperfect hardware.

   The paper's bounds assume D ideal disks. Real arrays have a slow
   disk (a straggler rebuilding, or on its last legs) and disks that
   occasionally fail a read and need a retry. This example serves the
   Section 1.2 webmail-style lookup workload — small random point
   reads from a large key set — through the Section 4.1 dictionary
   twice: once on a healthy machine, once with a deterministic fault
   schedule (one 3x straggler, transient read errors on two disks),
   and prints measured vs fault-free parallel I/Os plus the per-disk
   block counts the trace subsystem records.

   The point: correctness never changes, only cost — and because the
   expander spreads load evenly, the per-disk counters stay balanced
   even while faults rage.

   Run with:  dune exec examples/degraded_reads.exe *)

module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Fault = Pdm_sim.Fault
module Iotrace = Pdm_sim.Trace
module Basic = Pdm_dictionary.Basic_dict
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling
module Summary = Pdm_util.Summary
module Zipf = Pdm_util.Zipf

let universe = 1 lsl 26 (* message-id space *)
let mailboxes = 4_000
let lookups = 10_000
let disks = 8
let block_words = 64

let header_of k =
  Bytes.init 16 (fun i -> Char.chr (Prng.hash2 ~seed:5 k i land 0xff))

let () =
  let rng = Prng.create 42 in
  let ids = Sampling.distinct rng ~universe ~count:mailboxes in
  let cfg =
    Basic.plan ~universe ~capacity:mailboxes ~block_words ~degree:disks
      ~value_bytes:16 ~seed:1 ()
  in
  let z = Zipf.create ~n:mailboxes ~s:1.1 in
  let trace = Array.init lookups (fun _ -> ids.(Zipf.sample z rng)) in

  let serve name faults =
    let tr = Iotrace.create ~capacity:(4 * lookups) () in
    let machine =
      Pdm.create ?faults ~trace:tr ~disks ~block_size:block_words
        ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
    in
    let dict = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
    Basic.bulk_load dict (Array.map (fun k -> (k, header_of k)) ids);
    Iotrace.clear tr;
    let before = Stats.snapshot (Pdm.stats machine) in
    let costs = Summary.create () in
    let ok = ref 0 in
    Array.iter
      (fun k ->
        let r, c =
          Stats.measure (Pdm.stats machine) (fun () -> Basic.find dict k)
        in
        Summary.add_int costs (Stats.parallel_ios c);
        if r = Some (header_of k) then incr ok)
      trace;
    let phase =
      Stats.diff ~after:(Stats.snapshot (Pdm.stats machine)) ~before
    in
    let retries =
      List.fold_left
        (fun a (e : Iotrace.event) -> a + e.retries)
        0 (Iotrace.events tr)
    in
    Printf.printf
      "%-28s %d/%d correct, %.3f avg parallel I/Os, worst %d, %d retries\n"
      name !ok lookups (Summary.mean costs)
      (int_of_float (Summary.max costs))
      retries;
    (match Stats.occupancy phase with
     | Some o ->
       Printf.printf "%-28s per-disk blocks: max %d, mean %.0f  [%s]\n" ""
         o.Stats.max_load o.Stats.mean_load
         (String.concat " "
            (Array.to_list (Array.map string_of_int (Stats.disk_totals phase))))
     | None -> ());
    Summary.mean costs
  in

  Printf.printf "serving %d Zipf lookups over %d mailboxes on %d disks:\n\n"
    lookups mailboxes disks;
  let clean = serve "healthy array" None in
  let degraded =
    serve "1 straggler + flaky reads"
      (Some
         (Fault.spec ~seed:13
            ~transient:[ (1, 0.05); (6, 0.05) ]
            ~stragglers:[ (3, 3) ]
            ()))
  in
  Printf.printf
    "\n-> same answers, %.2fx the parallel I/Os: faults cost rounds, never \
     correctness,\n   and the expander keeps every disk equally loaded \
     either way\n"
    (degraded /. clean)
