(* The Section 1.2 webmail/http-server scenario.

   "These typically have to retrieve small quantities of information
   at a time, typically fitting within a block, but from a very large
   data set, in a highly random fashion (depending on the desires of
   an arbitrary set of users)."

   A mailbox-index store: message ids map to 512-bit headers. The
   dynamic cascade (Section 4.3) serves a Zipf-skewed read-mostly
   trace with firm per-operation guarantees — the real-time property
   the paper argues file-system-level services need — next to a
   striped hash table whose guarantees are only probabilistic.

   Run with:  dune exec examples/webmail.exe *)

module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Cascade = Pdm_dictionary.Dynamic_cascade
module Hash_table = Pdm_baselines.Hash_table
module Trace = Pdm_workload.Trace
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling
module Summary = Pdm_util.Summary

let universe = 1 lsl 30 (* message-id space *)
let mailboxes = 3_000
let sigma_bits = 512
let block_words = 64

let header_of k =
  Bytes.init (sigma_bits / 8) (fun i ->
      Char.chr (Prng.hash2 ~seed:11 k i land 0xff))

let () =
  let rng = Prng.create 99 in
  let ids = Sampling.distinct rng ~universe ~count:mailboxes in

  (* Deterministic store: Section 4.3 cascade, epsilon = 1/2. *)
  let cascade =
    Cascade.create ~block_words
      { Cascade.universe; capacity = mailboxes; degree = 24; sigma_bits;
        epsilon = 0.5; v_factor = 3; seed = 1 }
  in
  Array.iter (fun k -> Cascade.insert cascade k (header_of k)) ids;

  (* Randomized baseline: striped hash table on 8 disks. *)
  let cfg =
    Hash_table.plan ~universe ~capacity:mailboxes ~block_words ~disks:8
      ~value_bytes:(sigma_bits / 8) ~seed:2 ()
  in
  let h_machine =
    Pdm.create ~disks:8 ~block_size:block_words
      ~blocks_per_disk:cfg.Hash_table.superblocks ()
  in
  let hash = Hash_table.create ~machine:h_machine cfg in
  Array.iter (fun k -> Hash_table.insert hash k (header_of k)) ids;

  (* A skewed read trace: a handful of hot mailboxes, a long tail. *)
  let trace = Trace.zipf_lookups ~rng ~keys:ids ~count:20_000 ~s:1.1 in

  let drive name stats find =
    let costs = Summary.create () in
    let hits =
      Trace.apply
        ~find:(fun k ->
          let r, c = Stats.measure stats (fun () -> find k) in
          Summary.add_int costs (Stats.parallel_ios c);
          r)
        ~insert:(fun _ _ -> ())
        ~delete:(fun _ -> false)
        trace
    in
    Printf.printf
      "%-22s %d/%d hits, %.3f avg parallel I/Os, worst %d, p99 %.0f\n" name
      hits (Array.length trace) (Summary.mean costs)
      (int_of_float (Summary.max costs))
      (Summary.percentile costs 99.0)
  in
  Printf.printf "serving %d Zipf lookups over %d mailboxes:\n"
    (Array.length trace) mailboxes;
  drive "cascade (det.)"
    (Pdm.stats (Cascade.machine cascade))
    (Cascade.find cascade);
  drive "hash table (rand.)" (Pdm.stats h_machine) (Hash_table.find hash);

  (* The firm-guarantee angle: unsuccessful lookups (mailbox not on
     this shard) are exactly one I/O on the cascade. *)
  let misses = Trace.negative_lookups ~rng ~universe ~avoid:ids ~count:2_000 in
  let costs = Summary.create () in
  ignore
    (Trace.apply
       ~find:(fun k ->
         let r, c =
           Stats.measure
             (Pdm.stats (Cascade.machine cascade))
             (fun () -> Cascade.find cascade k)
         in
         Summary.add_int costs (Stats.parallel_ios c);
         r)
       ~insert:(fun _ _ -> ())
       ~delete:(fun _ -> false)
       misses);
  Printf.printf
    "cascade, absent ids:   every lookup cost exactly %.0f parallel I/O \
     (worst %d)\n"
    (Summary.mean costs)
    (int_of_float (Summary.max costs));
  print_endline
    "-> the deterministic structure gives firm per-request bounds; the hash \
     table is only fast with high probability"
