(* Standalone use of the Section 3 deterministic load balancer.

   Assign jobs to servers on-line, with no randomness and no central
   queue statistics: each job consults only its d candidate servers
   (the neighbors of its id in a fixed expander) and joins a least
   loaded one. Lemma 3 bounds the worst server's load.

   Run with:  dune exec examples/load_balancer.exe *)

module Greedy = Pdm_loadbalance.Greedy
module Baseline = Pdm_loadbalance.Baseline
module Seeded = Pdm_expander.Seeded
module Expansion = Pdm_expander.Expansion
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let servers = 128
let degree = 8
let job_ids_space = 1 lsl 24

let () =
  let graph = Seeded.striped ~seed:7 ~u:job_ids_space ~v:servers ~d:degree in
  let lb = Greedy.create ~graph ~k:1 () in
  let rng = Prng.create 3 in

  (* A burst of 4096 jobs with arbitrary ids. *)
  let jobs = Sampling.distinct rng ~universe:job_ids_space ~count:4096 in
  Array.iter (fun job -> ignore (Greedy.insert lb job)) jobs;

  let avg = Greedy.average_load lb in
  let bound =
    Expansion.lemma3_bound ~n:(Array.length jobs) ~v:servers ~d:degree ~k:1
      ~eps:(1. /. 6.) ~delta:(1. /. 6.)
  in
  Printf.printf "placed %d jobs on %d servers (d = %d choices per job)\n"
    (Array.length jobs) servers degree;
  Printf.printf "average load %.1f, max load %d, Lemma 3 bound %.1f\n" avg
    (Greedy.max_load lb) bound;

  (* Compare with naive single-choice hashing. *)
  let single =
    Baseline.max_load (Baseline.single_choice ~seed:1 ~v:servers ~items:jobs)
  in
  Printf.printf "single-choice hashing would have hit max load %d\n" single;

  (* Weighted jobs: k > 1 units of work placed per job, still spread. *)
  let heavy = Greedy.create ~graph:(Seeded.striped ~seed:8 ~u:job_ids_space ~v:servers ~d:degree) ~k:4 () in
  Array.iter (fun job -> ignore (Greedy.insert heavy job)) jobs;
  Printf.printf
    "with k = 4 units per job: average %.1f, max %d (units may share a \
     server)\n"
    (Greedy.average_load heavy) (Greedy.max_load heavy);

  (* Everything above is deterministic: re-running this binary yields
     byte-identical output, and a crashed scheduler can recompute any
     job's candidate servers from the seed alone. *)
  print_endline "deterministic: no coin flips, no shared state beyond loads"
