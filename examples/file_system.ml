(* The Section 1.2 file-system scenario.

   "A dictionary can be used to implement the basic functionality of a
   file system: let keys consist of a file name and a block number,
   and associate them with the contents of the given block."

   This example builds a synthetic volume, serves it once from a
   striped B-tree (what commercial systems do) and once from the
   expander dictionary, and measures random block reads — the 3-vs-1
   disk-access story of the introduction — plus a sequential scan,
   where the B-tree's leaf chain keeps it competitive.

   Run with:  dune exec examples/file_system.exe *)

module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Basic = Pdm_dictionary.Basic_dict
module Btree = Pdm_baselines.Btree
module Fs = Pdm_workload.Fs_workload
module Prng = Pdm_util.Prng

let block_words = 32
let disks = 8
let payload_bytes = 8

let () =
  let rng = Prng.create 2026 in
  let vol = Fs.generate ~rng ~files:2_000 ~max_blocks_per_file:32 in
  let keys = Fs.all_keys vol in
  let n = Array.length keys in
  Printf.printf "volume: %d files, %d blocks total\n"
    (Array.length (Fs.files vol)) n;

  let payload k = Pdm_util.Prng.mix64 k |> fun h ->
    Bytes.init payload_bytes (fun i -> Char.chr ((h lsr (8 * (i mod 7))) land 0xff))
  in

  (* The incumbent: a B-tree with its root resident in memory. *)
  let superblocks = max 64 (4 * n / block_words) in
  let bt_machine =
    Pdm.create ~disks ~block_size:block_words ~blocks_per_disk:superblocks ()
  in
  let bt =
    Btree.create ~machine:bt_machine
      { Btree.universe = Fs.universe vol; value_bytes = payload_bytes;
        cache_levels = 1; superblocks }
  in
  Array.iter (fun k -> Btree.insert bt k (payload k)) keys;
  Printf.printf "B-tree: height %d (root cached in RAM)\n" (Btree.height bt);

  (* The challenger: the Section 4.1 dictionary. *)
  let cfg =
    Basic.plan ~universe:(Fs.universe vol) ~capacity:n ~block_words
      ~degree:disks ~value_bytes:payload_bytes ~seed:7 ()
  in
  let d_machine =
    Pdm.create ~disks ~block_size:block_words
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let dict = Basic.create ~machine:d_machine ~disk_offset:0 ~block_offset:0 cfg in
  Array.iter (fun k -> Basic.insert dict k (payload k)) keys;

  (* Random block reads: an arbitrary set of users requesting small
     pieces of arbitrary files. *)
  let reads = Fs.random_reads vol ~rng ~count:5_000 in
  let ((), bt_cost) =
    Stats.measure (Pdm.stats bt_machine) (fun () ->
        Array.iter (fun k -> ignore (Btree.find bt k)) reads)
  in
  let ((), dict_cost) =
    Stats.measure (Pdm.stats d_machine) (fun () ->
        Array.iter (fun k -> ignore (Basic.find dict k)) reads)
  in
  let per x = float_of_int (Stats.parallel_ios x) /. 5000.0 in
  Printf.printf "random reads:   B-tree %.2f I/Os per block, dictionary %.2f\n"
    (per bt_cost) (per dict_cost);
  Printf.printf "                -> the dictionary answers every random read \
                 in one disk round trip\n";

  (* Sequential scan of the largest file: the caveat from the paper —
     for scans, B-tree overhead is negligible. *)
  let largest =
    Array.fold_left
      (fun best f -> if f.Fs.blocks > best.Fs.blocks then f else best)
      (Fs.files vol).(0) (Fs.files vol)
  in
  let scan = Fs.sequential_scan vol ~file_id:largest.Fs.file_id in
  let lo = scan.(0) and hi = scan.(Array.length scan - 1) in
  let ((), bt_scan) =
    Stats.measure (Pdm.stats bt_machine) (fun () ->
        ignore (Btree.range bt ~lo ~hi))
  in
  let ((), dict_scan) =
    Stats.measure (Pdm.stats d_machine) (fun () ->
        Array.iter (fun k -> ignore (Basic.find dict k)) scan)
  in
  Printf.printf
    "sequential scan of a %d-block file: B-tree %d I/Os, dictionary %d\n"
    largest.Fs.blocks
    (Stats.parallel_ios bt_scan)
    (Stats.parallel_ios dict_scan);
  print_endline
    "                -> scans favour the B-tree, exactly as Section 1.2 \
     concedes"
