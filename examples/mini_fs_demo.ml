(* The Section 1.2 file system, as an actual file system.

   A dictionary serves as both the name table (no inode-translation
   structure: short names pack straight into keys) and the block store
   (payloads spread over the disks by the k = d/2 scheme). Every
   random read of any position of any file is one parallel I/O.

   Run with:  dune exec examples/mini_fs_demo.exe *)

module Fs = Pdm_fs.Mini_fs
module Prng = Pdm_util.Prng

let show_cost t label before =
  Printf.printf "%-42s %d parallel I/Os\n" label (Fs.io_total t - before)

let () =
  let t = Fs.format Fs.default_config in
  Printf.printf "formatted: %d-file volume, %d data blocks of %d bytes\n"
    Fs.default_config.Fs.max_files Fs.default_config.Fs.max_blocks
    Fs.default_config.Fs.payload_bytes;

  (* Create a mailbox file and fill it. *)
  let c0 = Fs.io_total t in
  let inbox = Fs.create t "inbox" in
  show_cost t "create \"inbox\"" c0;
  let c1 = Fs.io_total t in
  for i = 0 to 63 do
    ignore
      (Fs.append t inbox
         (Bytes.of_string (Printf.sprintf "message %02d: hello parallel disks" i)))
  done;
  show_cost t "append 64 blocks (4 I/Os each)" c1;

  (* The headline: random access into any position, one I/O. *)
  let c2 = Fs.io_total t in
  let rng = Prng.create 7 in
  for _ = 1 to 200 do
    ignore (Fs.read_block t inbox (Prng.int rng 64))
  done;
  show_cost t "200 random block reads" c2;

  (* Opening a file is one I/O — the name IS the key. *)
  let c3 = Fs.io_total t in
  (match Fs.open_file t "inbox" with
   | Some h -> Printf.printf "open \"inbox\": inode %d, %d blocks\n"
                 (Fs.handle_inode h) (Fs.handle_length h)
   | None -> ());
  show_cost t "open by name" c3;

  (* Rename never touches data blocks (inode indirection). *)
  let c4 = Fs.io_total t in
  Fs.rename t ~old_name:"inbox" ~new_name:"archive";
  show_cost t "rename inbox -> archive" c4;
  (match Fs.open_file t "archive" with
   | Some h ->
     (match Fs.read_block t h 5 with
      | Some b ->
        Printf.printf "archive[5] = %S...\n"
          (String.sub (Bytes.to_string b) 0 32)
      | None -> ())
   | None -> ());

  (* A few more files, then the admin view. *)
  List.iter
    (fun name -> ignore (Fs.create t name))
    [ "drafts"; "sent"; "spam" ];
  Printf.printf "volume now holds %d files:\n" (Fs.file_count t);
  List.iter
    (fun (name, blocks) -> Printf.printf "  %-8s %3d blocks\n" name blocks)
    (List.sort compare (Fs.files t));

  ignore (Fs.delete t "spam");
  Printf.printf "deleted \"spam\"; %d files remain\n" (Fs.file_count t);
  print_endline "-> every per-request cost above is a firm bound, not an average"
