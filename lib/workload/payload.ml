let value_bytes_of ?(seed = 99) len k =
  Bytes.init len (fun i ->
      Char.chr (Pdm_util.Prng.hash2 ~seed k i land 0xff))

let sigma_payload ?seed ~sigma_bits k =
  value_bytes_of ?seed ((sigma_bits + 7) / 8) k
