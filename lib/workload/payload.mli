(** Deterministic synthetic payloads, shared by the experiment suite,
    the benchmarks, the test fixtures and the simulation-testing
    workload generator — one definition instead of the per-harness
    copies that used to drift apart.

    Payloads are a pure function of [(seed, key, byte index)] via the
    SplitMix64 keyed hash, so any harness can recompute the expected
    value of a key without storing it. *)

val value_bytes_of : ?seed:int -> int -> int -> Bytes.t
(** [value_bytes_of len k]: deterministic [len]-byte payload for key
    [k]. The default [seed] (99) matches the experiment suite's
    historical payloads bit for bit. *)

val sigma_payload : ?seed:int -> sigma_bits:int -> int -> Bytes.t
(** Payload sized for a [sigma_bits]-bit satellite. *)
