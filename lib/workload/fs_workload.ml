module Prng = Pdm_util.Prng
module Zipf = Pdm_util.Zipf

type file = { file_id : int; blocks : int }

type t = {
  files : file array;
  max_blocks : int;
  total : int;
  flat : int array;  (* prefix sums for size-weighted sampling *)
}

let generate ~rng ~files ~max_blocks_per_file =
  if files < 1 || max_blocks_per_file < 1 then
    invalid_arg "Fs_workload.generate";
  let z = Zipf.create ~n:max_blocks_per_file ~s:1.2 in
  let fs =
    Array.init files (fun file_id ->
        { file_id; blocks = 1 + Zipf.sample z rng })
  in
  let flat = Array.make (files + 1) 0 in
  Array.iteri (fun i f -> flat.(i + 1) <- flat.(i) + f.blocks) fs;
  { files = fs; max_blocks = max_blocks_per_file; total = flat.(files); flat }

let files t = t.files
let total_blocks t = t.total
let max_blocks_per_file t = t.max_blocks

let key_of t ~file_id ~block =
  if file_id < 0 || file_id >= Array.length t.files then
    invalid_arg "Fs_workload.key_of: file";
  if block < 0 || block >= t.files.(file_id).blocks then
    invalid_arg "Fs_workload.key_of: block";
  (file_id * t.max_blocks) + block

let universe t = Array.length t.files * t.max_blocks

let block_payload t ~file_id ~block ~bytes =
  let key = key_of t ~file_id ~block in
  Bytes.init bytes (fun i -> Char.chr (Prng.hash2 ~seed:4242 key i land 0xff))

let all_keys t =
  Array.of_list
    (List.concat_map
       (fun f -> List.init f.blocks (fun b -> key_of t ~file_id:f.file_id ~block:b))
       (Array.to_list t.files))

let random_reads t ~rng ~count =
  Array.init count (fun _ ->
      (* Draw a block uniformly over the volume via the prefix sums. *)
      let target = Prng.int rng t.total in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if t.flat.(mid + 1) > target then search lo mid else search (mid + 1) hi
      in
      let file_id = search 0 (Array.length t.files - 1) in
      let block = target - t.flat.(file_id) in
      key_of t ~file_id ~block)

let sequential_scan t ~file_id =
  if file_id < 0 || file_id >= Array.length t.files then
    invalid_arg "Fs_workload.sequential_scan";
  Array.init t.files.(file_id).blocks (fun b -> key_of t ~file_id ~block:b)
