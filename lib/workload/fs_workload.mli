(** The file-system workload of Section 1.2.

    "Let keys consist of a file name and a block number, and associate
    them with the contents of the given block number of the given
    file" — a dictionary then provides random access to any position
    of any file, the role B-trees play in real file systems.

    A synthetic volume is a set of files with heavy-tailed sizes; keys
    pack (file id, block number) into one integer. Two access
    patterns: random block reads (where the paper's structures shine)
    and sequential whole-file scans (where B-tree caching catches
    up). *)

type file = { file_id : int; blocks : int }

type t

val generate :
  rng:Pdm_util.Prng.t -> files:int -> max_blocks_per_file:int -> t
(** File sizes follow a Zipf(1.2) distribution over
    [1, max_blocks_per_file]. *)

val files : t -> file array

val total_blocks : t -> int

val max_blocks_per_file : t -> int

val key_of : t -> file_id:int -> block:int -> int
(** Pack (file, block) into a dictionary key. *)

val universe : t -> int
(** Exclusive upper bound on packed keys. *)

val block_payload : t -> file_id:int -> block:int -> bytes:int -> Bytes.t
(** Deterministic synthetic contents of a block. *)

val all_keys : t -> int array
(** Every (file, block) key in the volume, file-major. *)

val random_reads : t -> rng:Pdm_util.Prng.t -> count:int -> int array
(** Keys of uniformly random (file, block) reads (files weighted by
    their size, like real random access to a volume). *)

val sequential_scan : t -> file_id:int -> int array
(** The keys of one file's blocks in order. *)
