(** Operation traces for driving dictionaries in experiments.

    A trace is a deterministic (seeded) sequence of dictionary
    operations. Generators cover the access patterns Section 1.2
    motivates: uniformly random point lookups over a huge key
    population (webmail/http servers) and mixed read/write streams. *)

type op =
  | Lookup of int
  | Insert of int * Bytes.t
  | Delete of int

val uniform_lookups :
  rng:Pdm_util.Prng.t -> keys:int array -> count:int -> op array
(** [count] lookups of keys drawn uniformly from [keys]. *)

val zipf_lookups :
  rng:Pdm_util.Prng.t -> keys:int array -> count:int -> s:float -> op array
(** Popularity-skewed lookups: rank r of [keys] drawn with probability
    ∝ 1/(r+1)^s. *)

val mixed :
  rng:Pdm_util.Prng.t ->
  keys:int array ->
  count:int ->
  lookup_fraction:float ->
  delete_fraction:float ->
  value_of:(int -> Bytes.t) ->
  op array
(** A mixed stream: each step is a lookup with probability
    [lookup_fraction], else a delete with probability
    [delete_fraction] of the remainder, else an insert/update. Keys
    drawn uniformly from [keys]. *)

val negative_lookups :
  rng:Pdm_util.Prng.t -> universe:int -> avoid:int array -> count:int ->
  op array
(** Lookups of keys guaranteed absent (not in [avoid]). *)

val apply :
  find:(int -> Bytes.t option) ->
  insert:(int -> Bytes.t -> unit) ->
  delete:(int -> bool) ->
  op array ->
  int
(** Run a trace against dictionary callbacks; returns the number of
    successful lookups (a checksum-style result so the work cannot be
    optimised away). *)
