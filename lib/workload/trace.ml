module Prng = Pdm_util.Prng
module Zipf = Pdm_util.Zipf

type op =
  | Lookup of int
  | Insert of int * Bytes.t
  | Delete of int

let uniform_lookups ~rng ~keys ~count =
  if Array.length keys = 0 then invalid_arg "Trace.uniform_lookups: no keys";
  Array.init count (fun _ -> Lookup keys.(Prng.int rng (Array.length keys)))

let zipf_lookups ~rng ~keys ~count ~s =
  if Array.length keys = 0 then invalid_arg "Trace.zipf_lookups: no keys";
  let z = Zipf.create ~n:(Array.length keys) ~s in
  Array.init count (fun _ -> Lookup keys.(Zipf.sample z rng))

let mixed ~rng ~keys ~count ~lookup_fraction ~delete_fraction ~value_of =
  if Array.length keys = 0 then invalid_arg "Trace.mixed: no keys";
  if lookup_fraction < 0.0 || lookup_fraction > 1.0 then
    invalid_arg "Trace.mixed: lookup_fraction";
  if delete_fraction < 0.0 || delete_fraction > 1.0 then
    invalid_arg "Trace.mixed: delete_fraction";
  Array.init count (fun _ ->
      let k = keys.(Prng.int rng (Array.length keys)) in
      if Prng.float rng 1.0 < lookup_fraction then Lookup k
      else if Prng.float rng 1.0 < delete_fraction then Delete k
      else Insert (k, value_of k))

let negative_lookups ~rng ~universe ~avoid ~count =
  let members = Hashtbl.create (Array.length avoid) in
  Array.iter (fun k -> Hashtbl.replace members k ()) avoid;
  Array.init count (fun _ ->
      let rec draw () =
        let k = Prng.int rng universe in
        if Hashtbl.mem members k then draw () else k
      in
      Lookup (draw ()))

let apply ~find ~insert ~delete ops =
  Array.fold_left
    (fun hits op ->
      match op with
      | Lookup k -> if find k <> None then hits + 1 else hits
      | Insert (k, v) ->
        insert k v;
        hits
      | Delete k ->
        ignore (delete k);
        hits)
    0 ops
