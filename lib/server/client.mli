(** A small blocking/pipelined client for the pdm-serve wire protocol.

    One [t] per TCP connection; request ids are assigned by the client
    (starting at 1 — the server reserves rid 0 for protocol errors on
    undecodable frames) and replies are matched by rid, so pipelined
    requests may complete out of order when they touch different
    shards. Not domain-safe: use one client per domain. *)

type t

val connect : port:int -> t
(** Connect to pdm-serve on loopback. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** For [select]-driven callers (the load generator). *)

val send : t -> Wire.request -> int
(** Write one request frame, returning its rid. Pipelining-safe. *)

val send_raw : t -> Bytes.t -> unit
(** Write arbitrary bytes (the malformed-frame fuzzer's entry). *)

val drain : t -> (int * Wire.reply) list
(** One blocking read, then every complete reply frame buffered so
    far, in arrival order. [[]] only at end-of-stream. Raises
    [Failure] on an undecodable reply. *)

val wait : t -> int -> Wire.reply
(** Block until the reply with this rid arrives (buffering others).
    Raises [Not_found] at end-of-stream. *)

val call : t -> Wire.request -> Wire.reply
(** [send] + [wait]. *)

val pending : t -> int
(** Replies received but not yet {!wait}ed for. *)
