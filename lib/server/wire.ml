let version = 1
let max_frame = 1 lsl 20

type op =
  | Get of int
  | Insert of int * Bytes.t
  | Delete of int

type request =
  | Ping
  | Op of op
  | Batch of op list
  | Stats
  | Kill_disk of { shard : int; disk : int }
  | Scrub of { shard : int }

type req_frame = { rid : int; req : request }

type result_ =
  | Found of Bytes.t
  | Absent
  | Inserted
  | Deleted of bool

type shard_stat = { shard : int; rounds : int; served : int; fetched : int }

type error_code =
  | Bad_version
  | Bad_opcode
  | Bad_length
  | Oversized
  | Server_error

type reply =
  | Pong
  | Result of result_
  | Results of result_ list
  | Stats_reply of shard_stat list
  | Admin_ok
  | Busy
  | Unavailable of string
  | Proto_error of { code : error_code; message : string }

type rep_frame = { rid : int; rep : reply }

let error_code_to_int = function
  | Bad_version -> 1
  | Bad_opcode -> 2
  | Bad_length -> 3
  | Oversized -> 4
  | Server_error -> 5

let error_code_of_int = function
  | 1 -> Some Bad_version
  | 2 -> Some Bad_opcode
  | 3 -> Some Bad_length
  | 4 -> Some Oversized
  | 5 -> Some Server_error
  | _ -> None

(* --- encoding ---------------------------------------------------- *)

(* pdm-lint: domain local — encoding buffers are per-call scratch,
   never shared between domains *)
let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b v;
  put_u8 b (v lsr 8)

let put_u32 b v =
  put_u16 b (v land 0xffff);
  put_u16 b ((v lsr 16) land 0xffff)

let put_u64 b v =
  put_u32 b (v land 0xffffffff);
  put_u32 b ((v lsr 32) land 0x3fffffff)

(* pdm-lint: domain local — see [put_u8] *)
let put_bytes b v =
  put_u32 b (Bytes.length v);
  Buffer.add_bytes b v

let op_code = function Get _ -> 2 | Insert _ -> 3 | Delete _ -> 4

let put_op_body b = function
  | Get k | Delete k -> put_u64 b k
  | Insert (k, v) ->
    put_u64 b k;
    put_bytes b v

let put_result b = function
  | Found v ->
    put_u8 b 1;
    put_bytes b v
  | Absent -> put_u8 b 2
  | Inserted -> put_u8 b 3
  | Deleted present ->
    put_u8 b 4;
    put_u8 b (if present then 1 else 0)

let frame_of_payload payload =
  let n = Bytes.length payload in
  if n > max_frame then invalid_arg "Wire: payload exceeds max_frame";
  let b = Buffer.create (n + 4) in
  put_u32 b n;
  Buffer.add_bytes b payload;
  Buffer.to_bytes b

let check_key k = if k < 0 then invalid_arg "Wire: negative key"

let encode_request { rid; req } =
  if rid < 0 || rid > 0xffffffff then invalid_arg "Wire: rid out of range";
  let b = Buffer.create 32 in
  put_u8 b version;
  let opcode =
    match req with
    | Ping -> 1
    | Op o -> op_code o
    | Batch _ -> 5
    | Stats -> 6
    | Kill_disk _ -> 7
    | Scrub _ -> 8
  in
  put_u8 b opcode;
  put_u32 b rid;
  (match req with
   | Ping | Stats -> ()
   | Op o ->
     check_key (match o with Get k | Delete k | Insert (k, _) -> k);
     put_op_body b o
   | Batch ops ->
     put_u16 b (List.length ops);
     List.iter
       (fun o ->
         check_key (match o with Get k | Delete k | Insert (k, _) -> k);
         put_u8 b (op_code o);
         put_op_body b o)
       ops
   | Kill_disk { shard; disk } ->
     put_u16 b shard;
     put_u16 b disk
   | Scrub { shard } -> put_u16 b shard);
  frame_of_payload (Buffer.to_bytes b)

let encode_reply { rid; rep } =
  let b = Buffer.create 32 in
  put_u8 b version;
  let opcode =
    match rep with
    | Pong -> 0x81
    | Result _ -> 0x82
    | Results _ -> 0x83
    | Stats_reply _ -> 0x84
    | Admin_ok -> 0x85
    | Busy -> 0xe0
    | Unavailable _ -> 0xe1
    | Proto_error _ -> 0xef
  in
  put_u8 b opcode;
  put_u32 b rid;
  (match rep with
   | Pong | Admin_ok | Busy -> ()
   | Result r -> put_result b r
   | Results rs ->
     put_u16 b (List.length rs);
     List.iter (put_result b) rs
   | Stats_reply ss ->
     put_u16 b (List.length ss);
     List.iter
       (fun s ->
         put_u16 b s.shard;
         put_u64 b s.rounds;
         put_u64 b s.served;
         put_u64 b s.fetched)
       ss
   | Unavailable msg ->
     put_bytes b (Bytes.of_string msg)
   | Proto_error { code; message } ->
     put_u16 b (error_code_to_int code);
     put_bytes b (Bytes.of_string message));
  frame_of_payload (Buffer.to_bytes b)

(* --- decoding ---------------------------------------------------- *)

(* Cursor over one frame payload. All reads bounds-check through
   [Short]; the decoders catch it and answer [Bad_length] — the codec
   is total by construction. *)
exception Short

type cursor = { data : Bytes.t; mutable pos : int }

(* pdm-lint: domain local — cursor advances over one frame on one
   connection's reader; never shared *)
let take c n =
  if c.pos + n > Bytes.length c.data then raise Short;
  let p = c.pos in
  c.pos <- p + n;
  p

let get_u8 c = Char.code (Bytes.get c.data (take c 1))

let get_u16 c =
  let a = get_u8 c in
  let b = get_u8 c in
  a lor (b lsl 8)

let get_u32 c =
  let a = get_u16 c in
  let b = get_u16 c in
  a lor (b lsl 16)

let get_u64 c =
  let a = get_u32 c in
  let b = get_u32 c in
  a lor (b lsl 32)

let get_bytes c =
  let n = get_u32 c in
  if n > max_frame then raise Short;
  Bytes.sub c.data (take c n) n

let get_op c code =
  match code with
  | 2 -> Some (Get (get_u64 c))
  | 3 ->
    let k = get_u64 c in
    let v = get_bytes c in
    Some (Insert (k, v))
  | 4 -> Some (Delete (get_u64 c))
  | _ -> None

let get_result c =
  match get_u8 c with
  | 1 -> Found (get_bytes c)
  | 2 -> Absent
  | 3 -> Inserted
  | 4 -> Deleted (get_u8 c <> 0)
  | _ -> raise Short

let finish c v =
  if c.pos <> Bytes.length c.data then
    Error (Bad_length, "trailing bytes after frame body")
  else Ok v

let header payload =
  let c = { data = payload; pos = 0 } in
  let v = get_u8 c in
  if v <> version then
    Error (Bad_version, Printf.sprintf "version %d, expected %d" v version)
  else
    let opcode = get_u8 c in
    let rid = get_u32 c in
    Ok (c, opcode, rid)

let decode_request payload =
  match
    (match header payload with
     | Error _ as e -> e
     | Ok (c, opcode, rid) -> (
       let frame req = finish c { rid; req } in
       match opcode with
       | 1 -> frame Ping
       | 2 | 3 | 4 -> (
         match get_op c opcode with
         | Some o -> frame (Op o)
         | None -> Error (Bad_opcode, "unreachable op code"))
       | 5 ->
         let n = get_u16 c in
         let ops = ref [] in
         for _ = 1 to n do
           let code = get_u8 c in
           match get_op c code with
           | Some o -> ops := o :: !ops
           | None -> raise Short
         done;
         frame (Batch (List.rev !ops))
       | 6 -> frame Stats
       | 7 ->
         let shard = get_u16 c in
         let disk = get_u16 c in
         frame (Kill_disk { shard; disk })
       | 8 ->
         let shard = get_u16 c in
         frame (Scrub { shard })
       | n -> Error (Bad_opcode, Printf.sprintf "unknown opcode 0x%02x" n)))
  with
  | r -> r
  | exception Short -> Error (Bad_length, "truncated frame body")

let decode_reply payload =
  match
    (match header payload with
     | Error _ as e -> e
     | Ok (c, opcode, rid) -> (
       let frame rep = finish c { rid; rep } in
       match opcode with
       | 0x81 -> frame Pong
       | 0x82 -> frame (Result (get_result c))
       | 0x83 ->
         let n = get_u16 c in
         let rs = ref [] in
         for _ = 1 to n do
           rs := get_result c :: !rs
         done;
         frame (Results (List.rev !rs))
       | 0x84 ->
         let n = get_u16 c in
         let ss = ref [] in
         for _ = 1 to n do
           let shard = get_u16 c in
           let rounds = get_u64 c in
           let served = get_u64 c in
           let fetched = get_u64 c in
           ss := { shard; rounds; served; fetched } :: !ss
         done;
         frame (Stats_reply (List.rev !ss))
       | 0x85 -> frame Admin_ok
       | 0xe0 -> frame Busy
       | 0xe1 -> frame (Unavailable (Bytes.to_string (get_bytes c)))
       | 0xef ->
         let code =
           match error_code_of_int (get_u16 c) with
           | Some code -> code
           | None -> raise Short
         in
         let message = Bytes.to_string (get_bytes c) in
         frame (Proto_error { code; message })
       | n -> Error (Bad_opcode, Printf.sprintf "unknown opcode 0x%02x" n)))
  with
  | r -> r
  | exception Short -> Error (Bad_length, "truncated frame body")

(* --- incremental framing ----------------------------------------- *)

module Framing = struct
  type t = { mutable pending : Bytes.t }

  let create () = { pending = Bytes.empty }

  (* pdm-lint: domain local — a Framing.t belongs to one connection,
     fed and drained from the connection's single reader *)
  let feed t buf n =
    let old = t.pending in
    let merged = Bytes.create (Bytes.length old + n) in
    Bytes.blit old 0 merged 0 (Bytes.length old);
    Bytes.blit buf 0 merged (Bytes.length old) n;
    t.pending <- merged

  let peek_len t =
    let b = t.pending in
    if Bytes.length b < 4 then None
    else
      Some
        (Char.code (Bytes.get b 0)
         lor (Char.code (Bytes.get b 1) lsl 8)
         lor (Char.code (Bytes.get b 2) lsl 16)
         lor (Char.code (Bytes.get b 3) lsl 24))

  (* pdm-lint: domain local — see [feed] *)
  let next t =
    match peek_len t with
    | None -> `Await
    | Some n when n > max_frame -> `Oversized n
    | Some n ->
      if Bytes.length t.pending < 4 + n then `Await
      else begin
        let frame = Bytes.sub t.pending 4 n in
        let rest = Bytes.length t.pending - 4 - n in
        t.pending <- Bytes.sub t.pending (4 + n) rest;
        `Frame frame
      end

  let buffered t = Bytes.length t.pending
end
