(** Closed- and open-loop load generation against a running pdm-serve,
    reusing the seeded workload generator ({!Pdm_simtest.Sim_gen}:
    uniform / Zipf / adversarial churn) so every run is replayable.

    Op [i] of the stream goes to connection [i mod conns], so with one
    connection the server replays exactly the generator's op order and
    every per-shard ledger is deterministic — those are the scenarios
    BENCH_serve.json gates on ios/rounds. With several connections the
    interleave is scheduling-dependent; correctness then degrades to
    the no-fabricated-bytes check (every [Found] value must be one the
    trace actually wrote for that key).

    Latency is measured with {!Pdm_util.Clock.wall} per request,
    send-to-reply, and reported as p50/p99/p999 — reporting only,
    never branched on. *)

type event =
  | Kill_disk of { shard : int; disk : int }
  | Scrub of { shard : int }

type mode =
  | Closed          (** one outstanding request per connection *)
  | Open_rate of float  (** arrivals per second, pipelined per connection *)

type scenario = {
  spec : Pdm_simtest.Sim_gen.spec;
  conns : int;
  mode : mode;
  events : (int * event) list;
      (** fired on op [i]'s connection just before op [i] is sent —
          with one connection that pins the event's position in every
          shard's op sequence *)
}

type report = {
  name : string;
  requests : int;       (** data ops sent (admin frames excluded) *)
  wrong : int;          (** replies failing the scenario's check *)
  busy : int;           (** typed [Busy] replies received *)
  unavailable : int;    (** typed [Unavailable] replies received *)
  proto_errors : int;   (** [Proto_error] replies (should be 0) *)
  p50_us : float;
  p99_us : float;
  p999_us : float;
  rounds : int;         (** sum of per-shard [rounds_total] at the end *)
  ios : int;            (** sum of per-shard blocks fetched *)
  shard_stats : Wire.shard_stat list;  (** final ledgers, shard order *)
  answers_digest : string;
      (** hex digest over the reply stream in op-index order — the
          byte-identical-answers witness of the determinism tests *)
}

val run : name:string -> port:int -> scenario -> report
(** Drive the daemon and collect a report. Raises [Invalid_argument]
    on an invalid spec or [conns < 1]. *)

val to_bench_json : report list -> string
(** The BENCH_serve.json payload: one bench-check record per report —
    [name]/[ios]/[rounds] gated exactly, [ns] (the p999 in
    nanoseconds) informational, plus the tail-latency and error
    tallies as extra fields bench-check ignores. *)
