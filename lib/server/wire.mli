(** The pdm-serve wire protocol: small, versioned, length-prefixed
    binary frames.

    Every frame on the wire is [u32-le length] followed by [length]
    payload bytes; the payload starts with a version byte and an
    opcode byte, then a [u32-le] request id the reply echoes, then the
    op-specific body. Integers are little-endian; keys are 62-bit
    non-negative ints carried in 8 bytes; values carry a [u32-le]
    length prefix. The codec is pure — no sockets, no clocks — so the
    qcheck round-trip and malformed-frame properties exercise exactly
    the bytes a connection would.

    Decoding never raises: every malformed input maps to a structured
    {!error_code} the server echoes back as a {!Proto_error} reply,
    keeping the connection alive (only an {!Oversized} length prefix
    poisons the stream, because the frame boundary itself is gone).

    See DESIGN.md §15 for the frame format table. *)

val version : int
(** Protocol version carried in every frame; currently 1. *)

val max_frame : int
(** Hard cap on a frame's payload length (1 MiB). A length prefix
    beyond this is an {!Oversized} protocol error and closes the
    connection after the error reply. *)

type op =
  | Get of int
  | Insert of int * Bytes.t
  | Delete of int

type request =
  | Ping                                  (** liveness probe *)
  | Op of op                              (** one data operation *)
  | Batch of op list                      (** one atomic-per-shard batch *)
  | Stats                                 (** per-shard ledgers *)
  | Kill_disk of { shard : int; disk : int }  (** chaos: fail a disk *)
  | Scrub of { shard : int }              (** chaos: scan-and-repair *)

type req_frame = { rid : int; req : request }

type result_ =
  | Found of Bytes.t
  | Absent
  | Inserted
  | Deleted of bool  (** whether the key was present *)

type shard_stat = {
  shard : int;
  rounds : int;   (** the shard machine's [rounds_total] ledger *)
  served : int;   (** requests served by the shard engine *)
  fetched : int;  (** blocks the shard engine fetched (the ios ledger) *)
}

type error_code =
  | Bad_version
  | Bad_opcode
  | Bad_length   (** truncated or trailing bytes inside a frame *)
  | Oversized    (** length prefix beyond {!max_frame} *)
  | Server_error

type reply =
  | Pong
  | Result of result_
  | Results of result_ list               (** batch, in op order *)
  | Stats_reply of shard_stat list
  | Admin_ok
  | Busy          (** admission queue full — retry later *)
  | Unavailable of string                 (** storage failed the request *)
  | Proto_error of { code : error_code; message : string }

type rep_frame = { rid : int; rep : reply }

val error_code_to_int : error_code -> int
val error_code_of_int : int -> error_code option

val encode_request : req_frame -> Bytes.t
(** Full frame, length prefix included. Raises [Invalid_argument] on
    a negative key/rid or a payload over {!max_frame}. *)

val encode_reply : rep_frame -> Bytes.t

val decode_request : Bytes.t -> (req_frame, error_code * string) result
(** Decode one frame payload (without the length prefix). Total: any
    malformed payload is a structured error, never an exception. *)

val decode_reply : Bytes.t -> (rep_frame, error_code * string) result

(** Incremental frame assembly for a connection's byte stream. *)
module Framing : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** [feed t buf n] appends the first [n] bytes of [buf]. *)

  val next : t -> [ `Frame of Bytes.t | `Await | `Oversized of int ]
  (** Pop the next complete frame payload; [`Await] when more bytes
      are needed; [`Oversized n] when the pending length prefix [n]
      exceeds {!max_frame} (the stream is then poisoned — close the
      connection after replying). *)

  val buffered : t -> int
end
