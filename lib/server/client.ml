type t = {
  sock : Unix.file_descr;
  framing : Wire.Framing.t;
  mutable next_rid : int;
  unclaimed : (int, Wire.reply) Hashtbl.t;
  mutable eof : bool;
}

let connect ~port =
  let sock = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect sock (ADDR_INET (Unix.inet_addr_loopback, port));
  { sock; framing = Wire.Framing.create (); next_rid = 1;
    unclaimed = Hashtbl.create 16; eof = false }

let close t =
  try Unix.close t.sock with Unix.Unix_error _ -> ()

let fd t = t.sock

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let send_raw t bytes = write_all t.sock bytes 0 (Bytes.length bytes)

(* pdm-lint: domain local — rid counter on this connection's single
   owner *)
let send t req =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  send_raw t (Wire.encode_request { Wire.rid; req });
  rid

let pop_frames t =
  let rec go acc =
    match Wire.Framing.next t.framing with
    | `Await -> List.rev acc
    | `Oversized n -> failwith (Printf.sprintf "Client: oversized reply %d" n)
    | `Frame payload -> (
      match Wire.decode_reply payload with
      | Ok { Wire.rid; rep } -> go ((rid, rep) :: acc)
      | Error (_, msg) -> failwith ("Client: undecodable reply: " ^ msg))
  in
  go []

(* pdm-lint: domain local — see [send] *)
let drain t =
  if t.eof then []
  else begin
    let buf = Bytes.create 65536 in
    let n =
      try Unix.read t.sock buf 0 65536
      with Unix.Unix_error (ECONNRESET, _, _) -> 0
    in
    if n = 0 then begin
      t.eof <- true;
      []
    end
    else begin
      Wire.Framing.feed t.framing buf n;
      pop_frames t
    end
  end

let rec wait t rid =
  match Hashtbl.find_opt t.unclaimed rid with
  | Some rep ->
    Hashtbl.remove t.unclaimed rid;
    rep
  | None ->
    if t.eof then raise Not_found;
    let got = drain t in
    if got = [] && t.eof then raise Not_found;
    List.iter (fun (r, rep) -> Hashtbl.replace t.unclaimed r rep) got;
    wait t rid

let call t req = wait t (send t req)

let pending t = Hashtbl.length t.unclaimed
