module Pdm = Pdm_sim.Pdm
module Opd = Pdm_dictionary.One_probe_dynamic
module Engine = Pdm_engine.Engine
module Placement = Pdm_cluster.Placement
module Topology = Pdm_cluster.Topology
module Prng = Pdm_util.Prng

type config = {
  shards : int;
  universe : int;
  shard_capacity : int;
  block_words : int;
  value_bytes : int;
  degree : int;
  levels : int;
  replicas : int;
  spares : int;
  seed : int;
  max_batch : int;
}

let default_config =
  { shards = 2; universe = 1 lsl 20; shard_capacity = 256; block_words = 32;
    value_bytes = 8; degree = 5; levels = 2; replicas = 2; spares = 1;
    seed = 42; max_batch = 64 }

type shard = { id : int; dict : Opd.t; engine : Engine.t }

type t = { cfg : config; topo : Topology.t; shard_tbl : shard array }

(* Mirrors the cluster tier's per-shard construction: structure seed
   keyed by stable shard id, engine batches closed by size or explicit
   drain, never by aging. *)
let make_shard cfg id =
  let dcfg =
    { Opd.universe = cfg.universe; capacity = cfg.shard_capacity;
      degree = cfg.degree; sigma_bits = 8 * cfg.value_bytes;
      levels = cfg.levels; v_factor = 3;
      seed = Prng.hash2 ~seed:cfg.seed 0x5eed id }
  in
  let dict =
    Opd.create ~replicas:cfg.replicas ~spares:cfg.spares
      ~block_words:cfg.block_words dcfg
  in
  let engine =
    Engine.create
      ~config:
        { Engine.max_batch = max 1 cfg.max_batch;
          deadline_rounds = max_int / 2; cache_blocks = 0 }
      { Engine.name = Printf.sprintf "serve-shard-%d" id;
        machine = Opd.machine dict;
        lookup =
          (fun key ->
            Engine.Fetch
              ( Opd.probe_addresses dict key,
                fun blocks -> Engine.Done (Opd.find_in dict key blocks) ));
        insert = Some (Opd.insert dict);
        delete = Some (Opd.delete dict) }
  in
  { id; dict; engine }

let create cfg =
  if cfg.shards < 1 then invalid_arg "Data_plane: shards must be >= 1";
  if cfg.replicas < 1 then invalid_arg "Data_plane: replicas must be >= 1";
  if cfg.shard_capacity < 8 then
    invalid_arg "Data_plane: shard_capacity must be >= 8";
  { cfg; topo = Topology.standard ~shards:cfg.shards;
    shard_tbl = Array.init cfg.shards (make_shard cfg) }

let config t = t.cfg
let shards t = t.cfg.shards

let shard_of_key t key = Placement.primary t.topo ~seed:t.cfg.seed key

let get_shard t id =
  if id < 0 || id >= Array.length t.shard_tbl then
    invalid_arg (Printf.sprintf "Data_plane: unknown shard %d" id);
  t.shard_tbl.(id)

let request_of_op = function
  | Wire.Get k -> Engine.Lookup k
  | Wire.Insert (k, v) -> Engine.Insert (k, v)
  | Wire.Delete k -> Engine.Delete k

let result_of_outcome (o : Engine.outcome) =
  match o.request with
  | Engine.Lookup _ -> (
    match o.value with Some v -> Wire.Found v | None -> Wire.Absent)
  | Engine.Insert _ -> Wire.Inserted
  | Engine.Delete _ -> Wire.Deleted (o.value <> None)

let execute t ~shard ops =
  let sh = get_shard t shard in
  (* Submission can run batches early (queue reaching max_batch), so a
     storage failure may surface mid-submit; the ids admitted so far
     still produce outcomes. *)
  let ids = Array.make (List.length ops) (-1) in
  let failure = ref None in
  (try
     List.iteri
       (fun i op -> ids.(i) <- Engine.submit sh.engine (request_of_op op))
       ops;
     Engine.drain sh.engine
   with Engine.Request_failed _ as e -> failure := Some e);
  let outcomes = Hashtbl.create 64 in
  List.iter
    (fun (o : Engine.outcome) -> Hashtbl.replace outcomes o.id o)
    (Engine.take_outcomes sh.engine);
  let missing () =
    match !failure with
    | Some e -> e
    | None -> Engine.Request_failed { id = -1; key = -1; error = Not_found }
  in
  List.mapi
    (fun i _op ->
      match Hashtbl.find_opt outcomes ids.(i) with
      | Some o -> Ok (result_of_outcome o)
      | None -> Error (missing ()))
    ops

let kill_disk t ~shard ~disk =
  let sh = get_shard t shard in
  Pdm.kill_disk (Opd.machine sh.dict) disk

let scrub t ~shard =
  let sh = get_shard t shard in
  Pdm.scrub (Opd.machine sh.dict)

let shard_stats t =
  Array.to_list
    (Array.map
       (fun sh ->
         (let s = Engine.stats sh.engine in
          { Wire.shard = sh.id;
            rounds = Pdm.rounds_total (Opd.machine sh.dict);
            served = s.Engine.requests_served;
            fetched = s.Engine.blocks_fetched }))
       t.shard_tbl)

let blocks_fetched t =
  Array.fold_left
    (fun acc sh -> acc + (Engine.stats sh.engine).Engine.blocks_fetched)
    0 t.shard_tbl
