(** pdm-serve: the TCP daemon over the deterministic data plane.

    Architecture (DESIGN.md §15): one listener thread runs a
    [select]-based event loop — accepting connections, assembling
    {!Wire} frames, routing operations by {!Data_plane.shard_of_key}
    — and [W] worker domains each own the shards [s] with
    [s mod W = w]. Work travels through per-worker mailboxes
    (mutex + condition), answers come back through a completion queue
    and a self-pipe that wakes the listener. Because a shard is only
    ever touched by its owning domain and mailboxes are FIFO, each
    shard sees the same op sequence whatever the domain count — the
    multi-domain determinism the tests pin down.

    Backpressure is explicit: each mailbox holds at most [queue_cap]
    jobs; a frame that would overflow any target mailbox is answered
    with a typed {!Wire.Busy} immediately and enqueues nothing — the
    daemon never hangs an admission and never silently drops one.
    Storage failures surface as typed {!Wire.Unavailable} replies.
    Malformed frames get structured {!Wire.Proto_error} replies and
    keep the connection (only an oversized length prefix closes it,
    the frame boundary being lost). *)

type config = {
  plane : Data_plane.config;
  domains : int;    (** worker domains, >= 1 *)
  queue_cap : int;  (** max jobs queued per worker mailbox, >= 1 *)
}

val default_config : config
(** [Data_plane.default_config], 1 domain, 1024-job mailboxes. *)

type t

val create : ?port:int -> config -> t
(** Bind a loopback TCP socket ([port] 0, the default, picks an
    ephemeral port) and spawn the worker domains. The listener loop is
    not yet running: call {!run} (blocking) or {!start}. *)

val port : t -> int

val run : t -> unit
(** Run the listener event loop in the calling thread until
    {!request_stop}. On return every accepted frame has been answered,
    worker domains are joined and all sockets are closed. *)

val start : ?port:int -> config -> t
(** {!create} + {!run} in a spawned domain — the in-process harness
    the tests and experiments drive. Pair with {!stop}. *)

val request_stop : t -> unit
(** Signal-safe graceful-stop trigger: flips the stop flag and wakes
    the listener through the self-pipe. Safe from a SIGTERM handler. *)

val stop : t -> unit
(** {!request_stop}, then join the listener (if {!start}ed) and
    worker domains. Idempotent. *)

val plane : t -> Data_plane.t
(** The data plane — read its ledgers only at quiescence (after
    {!stop}, or with no in-flight requests). *)

type counters = {
  conns : int;         (** connections accepted *)
  frames : int;        (** well-formed frames admitted *)
  busy : int;          (** typed [Busy] replies (admission overflow) *)
  unavailable : int;   (** typed [Unavailable] replies *)
  proto_errors : int;  (** structured protocol-error replies *)
  peak_depth : int;    (** deepest any worker mailbox ever got *)
}

val counters : t -> counters
(** Live snapshot (atomics — safe from any thread). *)
