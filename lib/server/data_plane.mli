(** The daemon's deterministic core: one journal-free one-probe
    dynamic dictionary + batched engine per shard behind the same
    weighted-rendezvous placement the cluster tier uses.

    Everything here is seeded and simulation-backed — no sockets, no
    clocks, no randomness — so the multi-domain determinism claim
    reduces to an ordering argument: each shard is owned by exactly
    one worker domain ({!Server}), every shard sees the same op
    sequence whatever the domain count, and therefore answers and
    per-shard [rounds_total] ledgers are byte-identical on 1 vs N
    domains. Durability inside a shard comes from disk-level
    replication + hot spares on the shard's machine, so a
    {!kill_disk} degrades reads to failover replicas and {!scrub}
    restores full redundancy — no cross-shard (hence cross-domain)
    writes exist at all.

    A [t] is created once and its shards are then touched only by
    their owning domains; {!execute}, {!kill_disk} and {!scrub} must
    be called from the shard's owner. {!shard_stats} reads ledgers of
    possibly-running shards and is exact only at quiescence. *)

type config = {
  shards : int;          (** >= 1 *)
  universe : int;
  shard_capacity : int;  (** keys each shard's dictionary plans for *)
  block_words : int;
  value_bytes : int;
  degree : int;          (** per-level disk group, >= 5 *)
  levels : int;
  replicas : int;        (** disk-level copies inside each shard *)
  spares : int;          (** hot-spare disks per shard machine *)
  seed : int;            (** placement + per-shard structure seed *)
  max_batch : int;       (** shard engine batch size *)
}

val default_config : config
(** 2 shards, 2{^20} universe, 256-key shards, 32-word blocks, 8-byte
    values, degree 5, 2 levels, 2 replicas + 1 spare, seed 42,
    batch 64. *)

type t

val create : config -> t
(** Raises [Invalid_argument] on a bad config (shards < 1,
    replicas < 1, shard_capacity < 8). *)

val config : t -> config
val shards : t -> int

val shard_of_key : t -> int -> int
(** Deterministic routing: {!Pdm_cluster.Placement.primary} over a
    standard topology of [config.shards] shards. *)

val execute : t -> shard:int -> Wire.op list -> (Wire.result_, exn) result list
(** Run one batch of operations on one shard, serialized through the
    shard's engine, answers in op order. A structured storage failure
    mid-batch yields [Error] for the failed op and every op of the
    batch that had not completed — never a silent drop. Non-storage
    exceptions propagate. *)

val kill_disk : t -> shard:int -> disk:int -> unit
(** Fail one physical disk of the shard's machine (reads fail over to
    replicas). Raises [Invalid_argument] on an unknown shard/disk. *)

val scrub : t -> shard:int -> Pdm_sim.Pdm.scrub_report
(** Scan-and-repair the shard's machine, restoring redundancy. *)

val shard_stats : t -> Wire.shard_stat list
(** Per-shard [(id, rounds_total, requests_served)] ledgers, in shard
    id order. Exact at quiescence. *)

val blocks_fetched : t -> int
(** Total blocks the shard engines fetched (the ios column of
    BENCH_serve.json). Exact at quiescence. *)
