module Backend = Pdm_sim.Backend
module Engine = Pdm_engine.Engine

(* ------------------------------------------------------------------ *)
(* Cross-domain plumbing: per-worker mailboxes and a completion queue, *)
(* all mutex-guarded; counters are atomics.                            *)

type admin = Kill of int | Scrub_shard

type job =
  | Data of {
      conn : int;
      frame : int;
      shard : int;
      ops : (int * Wire.op) list;  (* (original op index, op) *)
    }
  | Admin of { conn : int; frame : int; shard : int; action : admin }
  | Quit

type completion =
  | C_data of {
      conn : int;
      frame : int;
      results : (int * (Wire.result_, exn) result) list;
    }
  | C_admin of { conn : int; frame : int; outcome : (unit, exn) result }

type mailbox = {
  mb_mu : Mutex.t;
  mb_cond : Condition.t;
  mb_q : job Queue.t;
  mutable mb_depth : int;
  mutable mb_peak : int;
}

let mailbox_create () =
  { mb_mu = Mutex.create (); mb_cond = Condition.create ();
    mb_q = Queue.create (); mb_depth = 0; mb_peak = 0 }

let mailbox_push mb job =
  Mutex.lock mb.mb_mu;
  Queue.add job mb.mb_q;
  mb.mb_depth <- mb.mb_depth + 1;
  if mb.mb_depth > mb.mb_peak then mb.mb_peak <- mb.mb_depth;
  Condition.signal mb.mb_cond;
  Mutex.unlock mb.mb_mu

let mailbox_pop mb =
  Mutex.lock mb.mb_mu;
  while Queue.is_empty mb.mb_q do
    Condition.wait mb.mb_cond mb.mb_mu
  done;
  let job = Queue.pop mb.mb_q in
  mb.mb_depth <- mb.mb_depth - 1;
  Mutex.unlock mb.mb_mu;
  job

(* A racy-but-monotone admission read: only the listener pushes, so a
   stale depth can only over-admit by completed work, never hang. *)
let mailbox_depth mb =
  Mutex.lock mb.mb_mu;
  let d = mb.mb_depth in
  Mutex.unlock mb.mb_mu;
  d

type done_queue = { dq_mu : Mutex.t; dq_q : completion Queue.t }

let done_push dq c =
  Mutex.lock dq.dq_mu;
  Queue.add c dq.dq_q;
  Mutex.unlock dq.dq_mu

let done_drain dq =
  Mutex.lock dq.dq_mu;
  let r = Queue.fold (fun acc c -> c :: acc) [] dq.dq_q in
  Queue.clear dq.dq_q;
  Mutex.unlock dq.dq_mu;
  List.rev r

(* ------------------------------------------------------------------ *)
(* Listener-side connection state (touched only by the listener).      *)

type frame_kind = K_single | K_batch | K_admin

type pending_frame = {
  p_rid : int;
  p_kind : frame_kind;
  p_results : (Wire.result_, exn) result option array;
  mutable p_admin : (unit, exn) result;
  mutable p_remaining : int;
}

type conn = {
  fd : Unix.file_descr;
  cid : int;
  framing : Wire.Framing.t;
  pending : (int, pending_frame) Hashtbl.t;
  mutable next_frame : int;
  mutable alive : bool;
}

type config = {
  plane : Data_plane.config;
  domains : int;
  queue_cap : int;
}

let default_config =
  { plane = Data_plane.default_config; domains = 1; queue_cap = 1024 }

type t = {
  plane : Data_plane.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mailboxes : mailbox array;
  dq : done_queue;
  stopping : bool Atomic.t;
  conns : (int, conn) Hashtbl.t;  (* listener-owned *)
  mutable next_cid : int;         (* listener-owned *)
  c_conns : int Atomic.t;
  c_frames : int Atomic.t;
  c_busy : int Atomic.t;
  c_unavailable : int Atomic.t;
  c_proto : int Atomic.t;
  mutable workers : unit Domain.t array;
  mutable listener : unit Domain.t option;
  mutable stopped : bool;
}

type counters = {
  conns : int;
  frames : int;
  busy : int;
  unavailable : int;
  proto_errors : int;
  peak_depth : int;
}

let counters (t : t) =
  { conns = Atomic.get t.c_conns;
    frames = Atomic.get t.c_frames;
    busy = Atomic.get t.c_busy;
    unavailable = Atomic.get t.c_unavailable;
    proto_errors = Atomic.get t.c_proto;
    peak_depth =
      Array.fold_left
        (fun acc mb ->
          Mutex.lock mb.mb_mu;
          let p = mb.mb_peak in
          Mutex.unlock mb.mb_mu;
          max acc p)
        0 t.mailboxes }

let port t = t.port

let plane t = t.plane

(* ------------------------------------------------------------------ *)
(* Worker domains: each owns the shards [s mod W = w] and is the only  *)
(* domain that ever executes on them.                                  *)

let describe_error e =
  let underlying =
    match e with Engine.Request_failed { error; _ } -> error | e -> e
  in
  match Backend.describe underlying with
  | Some m -> m
  | None -> Printexc.to_string underlying

let worker_loop t w =
  let mb = t.mailboxes.(w) in
  let running = ref true in
  while !running do
    match mailbox_pop mb with
    | Quit -> running := false
    | Data { conn; frame; shard; ops } ->
      let results =
        match Data_plane.execute t.plane ~shard (List.map snd ops) with
        | rs -> List.map2 (fun (i, _) r -> (i, r)) ops rs
        | exception e -> List.map (fun (i, _) -> (i, Error e)) ops
      in
      done_push t.dq (C_data { conn; frame; results });
      ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
    | Admin { conn; frame; shard; action } ->
      let outcome =
        try
          (match action with
           | Kill disk -> Data_plane.kill_disk t.plane ~shard ~disk
           | Scrub_shard -> ignore (Data_plane.scrub t.plane ~shard));
          Ok ()
        with e -> Error e
      in
      done_push t.dq (C_admin { conn; frame; outcome });
      ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  done

(* ------------------------------------------------------------------ *)
(* Listener: socket I/O, framing, routing, reply assembly.             *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

(* pdm-lint: domain local — conn records belong to the listener; a
   failed write just retires the connection *)
let send_reply (t : t) conn rep_frame =
  if conn.alive then
    try write_all conn.fd (Wire.encode_reply rep_frame) 0
          (Bytes.length (Wire.encode_reply rep_frame))
    with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
      conn.alive <- false;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      Hashtbl.remove t.conns conn.cid

let send_proto_error t conn ~rid code message =
  Atomic.incr t.c_proto;
  send_reply t conn
    { Wire.rid; rep = Wire.Proto_error { code; message } }

let owner_of_shard t shard = shard mod Array.length t.mailboxes

(* Group a batch's ops by target shard, preserving op order within
   each shard — the order every domain count replays identically. *)
(* pdm-lint: domain local — grouping scratch lives on the listener *)
let group_by_shard t ops =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iteri
    (fun i op ->
      let key =
        match op with
        | Wire.Get k | Wire.Insert (k, _) | Wire.Delete k -> k
      in
      let shard = Data_plane.shard_of_key t.plane key in
      (match Hashtbl.find_opt tbl shard with
       | Some l -> l := (i, op) :: !l
       | None ->
         Hashtbl.add tbl shard (ref [ (i, op) ]);
         order := shard :: !order))
    ops;
  List.rev_map (fun shard -> (shard, List.rev !(Hashtbl.find tbl shard)))
    !order

(* pdm-lint: domain local — pending-frame assembly is listener-only *)
let admit_data t conn ~rid ~kind groups ~total =
  let jobs =
    List.map
      (fun (shard, ops) -> (t.mailboxes.(owner_of_shard t shard), shard, ops))
      groups
  in
  let fits (mb, _, _) = mailbox_depth mb < t.cfg.queue_cap in
  if not (List.for_all fits jobs) then begin
    Atomic.incr t.c_busy;
    send_reply t conn { Wire.rid; rep = Wire.Busy }
  end
  else begin
    Atomic.incr t.c_frames;
    let frame = conn.next_frame in
    conn.next_frame <- frame + 1;
    Hashtbl.replace conn.pending frame
      { p_rid = rid; p_kind = kind; p_results = Array.make total None;
        p_admin = Ok (); p_remaining = List.length jobs };
    List.iter
      (fun (mb, shard, ops) ->
        mailbox_push mb (Data { conn = conn.cid; frame; shard; ops }))
      jobs
  end

(* pdm-lint: domain local — see [admit_data] *)
let admit_admin t conn ~rid ~shard action =
  if shard < 0 || shard >= Data_plane.shards t.plane then
    send_proto_error t conn ~rid Wire.Server_error
      (Printf.sprintf "unknown shard %d" shard)
  else begin
    let mb = t.mailboxes.(owner_of_shard t shard) in
    if mailbox_depth mb >= t.cfg.queue_cap then begin
      Atomic.incr t.c_busy;
      send_reply t conn { Wire.rid; rep = Wire.Busy }
    end
    else begin
      Atomic.incr t.c_frames;
      let frame = conn.next_frame in
      conn.next_frame <- frame + 1;
      Hashtbl.replace conn.pending frame
        { p_rid = rid; p_kind = K_admin; p_results = [||]; p_admin = Ok ();
          p_remaining = 1 };
      mailbox_push mb (Admin { conn = conn.cid; frame; shard; action })
    end
  end

let handle_frame t conn payload =
  match Wire.decode_request payload with
  | Error (code, message) -> send_proto_error t conn ~rid:0 code message
  | Ok { Wire.rid; req } -> (
    match req with
    | Wire.Ping ->
      Atomic.incr t.c_frames;
      send_reply t conn { Wire.rid; rep = Wire.Pong }
    | Wire.Stats ->
      Atomic.incr t.c_frames;
      send_reply t conn
        { Wire.rid; rep = Wire.Stats_reply (Data_plane.shard_stats t.plane) }
    | Wire.Op op ->
      admit_data t conn ~rid ~kind:K_single (group_by_shard t [ op ]) ~total:1
    | Wire.Batch [] ->
      Atomic.incr t.c_frames;
      send_reply t conn { Wire.rid; rep = Wire.Results [] }
    | Wire.Batch ops ->
      admit_data t conn ~rid ~kind:K_batch (group_by_shard t ops)
        ~total:(List.length ops)
    | Wire.Kill_disk { shard; disk } ->
      admit_admin t conn ~rid ~shard (Kill disk)
    | Wire.Scrub { shard } -> admit_admin t conn ~rid ~shard Scrub_shard)

(* pdm-lint: domain local — reply assembly on listener-owned state *)
let finish_frame t conn p =
  let rep =
    match p.p_kind with
    | K_admin -> (
      match p.p_admin with
      | Ok () -> Wire.Admin_ok
      | Error e ->
        Atomic.incr t.c_unavailable;
        Wire.Unavailable (describe_error e))
    | K_single | K_batch -> (
      let failed = ref None in
      Array.iter
        (fun slot ->
          match slot with
          | Some (Error e) when !failed = None -> failed := Some e
          | _ -> ())
        p.p_results;
      match !failed with
      | Some e ->
        Atomic.incr t.c_unavailable;
        Wire.Unavailable (describe_error e)
      | None -> (
        let results =
          Array.to_list p.p_results
          |> List.map (function
               | Some (Ok r) -> r
               | Some (Error _) | None ->
                 (* a lost slot is a bug in assembly, not in storage *)
                 Wire.Absent)
        in
        match p.p_kind with
        | K_single -> (
          match results with
          | [ r ] -> Wire.Result r
          | _ -> Wire.Results results)
        | _ -> Wire.Results results))
  in
  send_reply t conn { Wire.rid = p.p_rid; rep }

(* pdm-lint: domain local — completions are applied by the listener *)
let apply_completion (t : t) c =
  let resolve cid frame =
    match Hashtbl.find_opt t.conns cid with
    | None -> None
    | Some conn -> (
      match Hashtbl.find_opt conn.pending frame with
      | None -> None
      | Some p -> Some (conn, p))
  in
  match c with
  | C_data { conn = cid; frame; results } -> (
    match resolve cid frame with
    | None -> ()
    | Some (conn, p) ->
      List.iter (fun (i, r) -> p.p_results.(i) <- Some r) results;
      p.p_remaining <- p.p_remaining - 1;
      if p.p_remaining = 0 then begin
        Hashtbl.remove conn.pending frame;
        finish_frame t conn p
      end)
  | C_admin { conn = cid; frame; outcome } -> (
    match resolve cid frame with
    | None -> ()
    | Some (conn, p) ->
      p.p_admin <- outcome;
      p.p_remaining <- p.p_remaining - 1;
      if p.p_remaining = 0 then begin
        Hashtbl.remove conn.pending frame;
        finish_frame t conn p
      end)

(* pdm-lint: domain local — connection teardown on listener state *)
let retire_conn (t : t) conn =
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Hashtbl.remove t.conns conn.cid

let scratch_len = 65536

(* pdm-lint: domain local — read path runs only on the listener *)
let service_conn t conn scratch =
  let n =
    try Unix.read conn.fd scratch 0 scratch_len
    with Unix.Unix_error ((ECONNRESET | EBADF), _, _) -> 0
  in
  if n = 0 then retire_conn t conn
  else begin
    Wire.Framing.feed conn.framing scratch n;
    let continue = ref true in
    while !continue && conn.alive do
      match Wire.Framing.next conn.framing with
      | `Await -> continue := false
      | `Frame payload -> handle_frame t conn payload
      | `Oversized len ->
        send_proto_error t conn ~rid:0 Wire.Oversized
          (Printf.sprintf "frame length %d exceeds %d" len Wire.max_frame);
        retire_conn t conn
    done
  end

(* pdm-lint: domain local — accept path runs only on the listener *)
let accept_conn (t : t) =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | fd, _addr ->
    Atomic.incr t.c_conns;
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    Hashtbl.replace t.conns cid
      { fd; cid; framing = Wire.Framing.create ();
        pending = Hashtbl.create 8; next_frame = 0; alive = true }

let drain_wake t =
  let b = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r b 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()

let pending_total (t : t) =
  Hashtbl.fold (fun _ c acc -> acc + Hashtbl.length c.pending) t.conns 0

(* pdm-lint: domain local — the listener event loop owns all conn
   state; cross-domain traffic goes through the guarded mailboxes,
   the completion queue and the self-pipe *)
let run (t : t) =
  let scratch = Bytes.create scratch_len in
  (* Serve until asked to stop; then keep looping (without accepting
     or reading) until every admitted frame has been answered, so a
     graceful shutdown never drops an in-flight request. *)
  while (not (Atomic.get t.stopping)) || pending_total t > 0 do
    let accepting = not (Atomic.get t.stopping) in
    let conn_fds =
      Hashtbl.fold (fun _ c acc -> if c.alive then c.fd :: acc else acc)
        t.conns []
    in
    let watch =
      t.wake_r :: (if accepting then t.listen_fd :: conn_fds else [])
    in
    let readable, _, _ =
      try Unix.select watch [] [] 0.2
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.wake_r readable then drain_wake t;
    List.iter (apply_completion t) (done_drain t.dq);
    if accepting then begin
      if List.mem t.listen_fd readable then accept_conn t;
      List.iter
        (fun fd ->
          if fd <> t.listen_fd && fd <> t.wake_r then
            match
              Hashtbl.fold
                (fun _ c acc -> if c.fd = fd then Some c else acc)
                t.conns None
            with
            | Some conn when conn.alive -> service_conn t conn scratch
            | _ -> ())
        readable
    end
  done;
  (* Drained: release the workers and close every socket. *)
  Array.iter (fun mb -> mailbox_push mb Quit) t.mailboxes;
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  Hashtbl.reset t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

let create ?(port = 0) cfg =
  if cfg.domains < 1 then invalid_arg "Server: domains must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Server: queue_cap must be >= 1";
  let plane = Data_plane.create cfg.plane in
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  Unix.bind listen_fd (ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  let domains = min cfg.domains cfg.plane.Data_plane.shards in
  let t =
    { plane; cfg; listen_fd; port = bound_port; wake_r; wake_w;
      mailboxes = Array.init domains (fun _ -> mailbox_create ());
      dq = { dq_mu = Mutex.create (); dq_q = Queue.create () };
      stopping = Atomic.make false; conns = Hashtbl.create 16; next_cid = 0;
      c_conns = Atomic.make 0; c_frames = Atomic.make 0;
      c_busy = Atomic.make 0; c_unavailable = Atomic.make 0;
      c_proto = Atomic.make 0; workers = [||]; listener = None;
      stopped = false }
  in
  t.workers <- Array.init domains (fun w -> Domain.spawn (fun () ->
      worker_loop t w));
  t

let request_stop t =
  Atomic.set t.stopping true;
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let start ?port cfg =
  let t = create ?port cfg in
  t.listener <- Some (Domain.spawn (fun () -> run t));
  t

(* pdm-lint: domain local — shutdown bookkeeping runs on the caller
   after every other domain is joined *)
let stop t =
  if not t.stopped then begin
    request_stop t;
    (match t.listener with
     | Some d ->
       Domain.join d;
       t.listener <- None
     | None -> ());
    t.stopped <- true
  end
