module Sim_gen = Pdm_simtest.Sim_gen
module Trace = Pdm_workload.Trace
module Clock = Pdm_util.Clock

type event =
  | Kill_disk of { shard : int; disk : int }
  | Scrub of { shard : int }

type mode = Closed | Open_rate of float

type scenario = {
  spec : Sim_gen.spec;
  conns : int;
  mode : mode;
  events : (int * event) list;
}

type report = {
  name : string;
  requests : int;
  wrong : int;
  busy : int;
  unavailable : int;
  proto_errors : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  rounds : int;
  ios : int;
  shard_stats : Wire.shard_stat list;
  answers_digest : string;
}

let wire_of_trace = function
  | Trace.Lookup k -> Wire.Get k
  | Trace.Insert (k, v) -> Wire.Insert (k, v)
  | Trace.Delete k -> Wire.Delete k

let reply_repr = function
  | Wire.Result (Wire.Found v) -> "F:" ^ Bytes.to_string v
  | Wire.Result Wire.Absent -> "A"
  | Wire.Result Wire.Inserted -> "I"
  | Wire.Result (Wire.Deleted p) -> if p then "D1" else "D0"
  | Wire.Results _ -> "batch"
  | Wire.Busy -> "busy"
  | Wire.Unavailable _ -> "unavailable"
  | Wire.Proto_error _ -> "proto-error"
  | Wire.Pong | Wire.Admin_ok | Wire.Stats_reply _ -> "ctl"

(* Exact sequential check, valid when one connection preserves the
   generator's total order: replay the ops against a model, skipping
   ops whose reply shows they were never applied. *)
let count_wrong_sequential ops replies =
  let model = Hashtbl.create 256 in
  let wrong = ref 0 in
  Array.iteri
    (fun i op ->
      match replies.(i) with
      | None | Some (Wire.Busy | Wire.Unavailable _) -> ()
      | Some reply ->
        let expected =
          match op with
          | Trace.Lookup k -> (
            match Hashtbl.find_opt model k with
            | Some v -> Wire.Result (Wire.Found v)
            | None -> Wire.Result Wire.Absent)
          | Trace.Insert (k, v) ->
            Hashtbl.replace model k v;
            Wire.Result Wire.Inserted
          | Trace.Delete k ->
            let present = Hashtbl.mem model k in
            Hashtbl.remove model k;
            Wire.Result (Wire.Deleted present)
        in
        if reply <> expected then incr wrong)
    ops;
  !wrong

(* Concurrent-connection check: a [Found] must carry bytes some insert
   of the trace actually wrote for that key — no fabricated values. *)
let count_wrong_concurrent ops replies =
  let valid = Hashtbl.create 256 in
  Array.iter
    (function
      | Trace.Insert (k, v) -> Hashtbl.add valid k (Bytes.to_string v)
      | Trace.Lookup _ | Trace.Delete _ -> ())
    ops;
  let wrong = ref 0 in
  Array.iteri
    (fun i op ->
      match (op, replies.(i)) with
      | Trace.Lookup k, Some (Wire.Result (Wire.Found v)) ->
        if not (List.mem (Bytes.to_string v) (Hashtbl.find_all valid k))
        then incr wrong
      | _ -> ())
    ops;
  !wrong

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

let event_request = function
  | Kill_disk { shard; disk } -> Wire.Kill_disk { shard; disk }
  | Scrub { shard } -> Wire.Scrub { shard }

let run ~name ~port scenario =
  (match Sim_gen.validate scenario.spec with
   | Ok () -> ()
   | Error m -> invalid_arg ("Loadgen: " ^ m));
  if scenario.conns < 1 then invalid_arg "Loadgen: conns must be >= 1";
  let ops = Sim_gen.ops scenario.spec in
  let n_ops = Array.length ops in
  let conns = scenario.conns in
  let clients = Array.init conns (fun _ -> Client.connect ~port) in
  let events_at = Hashtbl.create 8 in
  List.iter
    (fun (i, ev) ->
      Hashtbl.replace events_at i
        (ev :: Option.value ~default:[] (Hashtbl.find_opt events_at i)))
    scenario.events;
  (* (conn, rid) -> op index; admin frames are tracked with index -1 *)
  let meta = Hashtbl.create (n_ops * 2) in
  let replies = Array.make n_ops None in
  let sent_at = Array.make n_ops 0.0 in
  let lat_us = Array.make n_ops 0.0 in
  let outstanding = Array.make conns 0 in
  let completed = ref 0 and next = ref 0 in
  let busy = ref 0 and unavailable = ref 0 and proto = ref 0 in
  let start = Clock.wall () in
  let due i =
    match scenario.mode with
    | Closed -> outstanding.(i mod conns) = 0
    | Open_rate rate ->
      Clock.wall () -. start >= float_of_int i /. rate
  in
  let send_op i =
    let c = i mod conns in
    List.iter
      (fun ev ->
        let rid = Client.send clients.(c) (event_request ev) in
        Hashtbl.replace meta (c, rid) (-1))
      (List.rev (Option.value ~default:[] (Hashtbl.find_opt events_at i)));
    sent_at.(i) <- Clock.wall ();
    let rid = Client.send clients.(c) (Wire.Op (wire_of_trace ops.(i))) in
    Hashtbl.replace meta (c, rid) i;
    outstanding.(c) <- outstanding.(c) + 1
  in
  let receive c (rid, rep) =
    match Hashtbl.find_opt meta (c, rid) with
    | None -> ()
    | Some i ->
      Hashtbl.remove meta (c, rid);
      if i >= 0 then begin
        replies.(i) <- Some rep;
        lat_us.(i) <- (Clock.wall () -. sent_at.(i)) *. 1_000_000.0;
        outstanding.(c) <- outstanding.(c) - 1;
        incr completed;
        match rep with
        | Wire.Busy -> incr busy
        | Wire.Unavailable _ -> incr unavailable
        | Wire.Proto_error _ -> incr proto
        | _ -> ()
      end
  in
  while !completed < n_ops do
    while !next < n_ops && due !next do
      send_op !next;
      incr next
    done;
    let fds = Array.to_list (Array.map Client.fd clients) in
    let readable, _, _ =
      try Unix.select fds [] [] 0.05
      with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
    in
    Array.iteri
      (fun c client ->
        if List.mem (Client.fd client) readable then
          List.iter (receive c) (Client.drain client))
      clients
  done;
  let shard_stats =
    match Client.call clients.(0) Wire.Stats with
    | Wire.Stats_reply ss -> ss
    | _ -> []
  in
  Array.iter Client.close clients;
  let wrong =
    if conns = 1 then count_wrong_sequential ops replies
    else count_wrong_concurrent ops replies
  in
  let digest =
    let b = Buffer.create (n_ops * 4) in
    Array.iteri
      (fun i r ->
        Buffer.add_string b (string_of_int i);
        Buffer.add_char b '=';
        Buffer.add_string b
          (match r with Some rep -> reply_repr rep | None -> "?");
        Buffer.add_char b ';')
      replies;
    Digest.to_hex (Digest.string (Buffer.contents b))
  in
  let sorted = Array.copy lat_us in
  Array.sort compare sorted;
  { name;
    requests = n_ops;
    wrong;
    busy = !busy;
    unavailable = !unavailable;
    proto_errors = !proto;
    p50_us = percentile sorted 0.50;
    p99_us = percentile sorted 0.99;
    p999_us = percentile sorted 0.999;
    rounds =
      List.fold_left (fun acc s -> acc + s.Wire.rounds) 0 shard_stats;
    ios = List.fold_left (fun acc s -> acc + s.Wire.fetched) 0 shard_stats;
    shard_stats;
    answers_digest = digest }

let to_bench_json reports =
  let record r =
    Printf.sprintf
      "  {\"name\": \"serve.%s\", \"ios\": %d, \"rounds\": %d, \
       \"ns\": %.1f,\n   \"p50_us\": %.1f, \"p99_us\": %.1f, \
       \"p999_us\": %.1f,\n   \"requests\": %d, \"wrong\": %d, \
       \"busy\": %d, \"unavailable\": %d,\n   \"digest\": \"%s\"}"
      r.name r.ios r.rounds (r.p999_us *. 1000.0) r.p50_us r.p99_us
      r.p999_us r.requests r.wrong r.busy r.unavailable r.answers_digest
  in
  "[\n" ^ String.concat ",\n" (List.map record reports) ^ "\n]\n"
