module Pdm = Pdm_sim.Pdm
module Basic = Pdm_dictionary.Basic_dict
module Fragmented = Pdm_dictionary.Fragmented
module Cascade = Pdm_dictionary.Dynamic_cascade
module Hash_table = Pdm_baselines.Hash_table
module Cuckoo = Pdm_baselines.Cuckoo
module Codec = Pdm_dictionary.Codec
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Summary = Pdm_util.Summary

type point = {
  name : string;
  paper_bandwidth : string;
  bandwidth_bits : int;
  tested_sigma_bits : int;
  lookup_avg : float;
  lookup_ok : bool;
}

type result = { points : point list; block_words : int; disks : int }

let run ?(universe = 1 lsl 22) ?(n = 400) ?(block_words = 64) ?(disks = 8)
    ?(seed = 47) () =
  let rng = Prng.create seed in
  let members = Sampling.distinct rng ~universe ~count:n in
  let points = ref [] in
  let push p = points := p :: !points in
  let measure_lookups stats find =
    Summary.mean
      (Common.per_op_cost stats (fun k -> ignore (find k)) members)
  in

  (* Striped hash table: Figure 1 gives hashing bandwidth O(BD/log n)
     — "no overflow whp" needs ~log n record slots per superblock, so
     records can only be BD/log n words. *)
  (let sb_words = disks * block_words in
   let log_n = max 2 (Pdm_util.Imath.ceil_log2 n) in
   let value_bytes = (sb_words / log_n - 1) * Codec.bits_per_word / 8 in
   let cfg =
     Hash_table.plan ~utilization:0.45 ~universe ~capacity:n ~block_words
       ~disks ~value_bytes ~seed ()
   in
   let machine =
     Pdm.create ~disks ~block_size:block_words
       ~blocks_per_disk:cfg.Hash_table.superblocks ()
   in
   let h = Hash_table.create ~machine cfg in
   let payload = Common.value_bytes_of value_bytes in
   Array.iter (fun k -> Hash_table.insert h k (payload k)) members;
   let avg = measure_lookups (Pdm.stats machine) (Hash_table.find h) in
   push
     { name = "hashing, striped"; paper_bandwidth = "O(BD/log n)";
       bandwidth_bits = (sb_words / log_n) * Codec.bits_per_word;
       tested_sigma_bits = 8 * value_bytes; lookup_avg = avg;
       lookup_ok = avg <= 1.25 });

  (* Cuckoo: bandwidth BD/2. *)
  (let half_words = disks / 2 * block_words in
   let value_bytes = (half_words - 1) * Codec.bits_per_word / 8 / 2 in
   let cfg =
     Cuckoo.plan ~utilization:0.4 ~universe ~capacity:n ~block_words ~disks
       ~value_bytes ~seed ()
   in
   let machine =
     Pdm.create ~disks ~block_size:block_words
       ~blocks_per_disk:cfg.Cuckoo.buckets ()
   in
   let c = Cuckoo.create ~machine cfg in
   let payload = Common.value_bytes_of value_bytes in
   Array.iter (fun k -> Cuckoo.insert c k (payload k)) members;
   let avg = measure_lookups (Pdm.stats machine) (Cuckoo.find c) in
   push
     { name = "cuckoo hashing"; paper_bandwidth = "BD/2";
       bandwidth_bits = Cuckoo.bandwidth_bits c;
       tested_sigma_bits = 8 * value_bytes; lookup_avg = avg;
       lookup_ok = avg = 1.0 });

  (* Basic Section 4.1 with inline values: bandwidth ~ B per key. *)
  (let value_bytes = (block_words / 8) * Codec.bits_per_word / 8 in
   let cfg =
     Basic.plan ~universe ~capacity:n ~block_words ~degree:disks ~value_bytes
       ~seed ()
   in
   let machine =
     Pdm.create ~disks ~block_size:block_words
       ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
   in
   let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
   let payload = Common.value_bytes_of value_bytes in
   Array.iter (fun k -> Basic.insert d k (payload k)) members;
   let avg = measure_lookups (Pdm.stats machine) (Basic.find d) in
   push
     { name = "Section 4.1 (inline values)"; paper_bandwidth = "O(B)";
       bandwidth_bits = (block_words - 1) * Codec.bits_per_word;
       tested_sigma_bits = 8 * value_bytes; lookup_avg = avg;
       lookup_ok = avg = 1.0 });

  (* Fragmented k = d/2: bandwidth O(BD / log n). Find the largest
     sigma that actually carries the whole key set (halving from the
     geometric maximum; an Overflow during the fill means the buckets
     were too tight at that sigma). *)
  (let try_sigma sigma_bits =
     match
       Fragmented.plan ~strategy:(`Average 2.5) ~universe ~capacity:n
         ~block_words ~degree:disks ~sigma_bits ~seed ()
     with
     | exception Invalid_argument _ -> None
     | cfg ->
       let machine =
         Pdm.create ~disks ~block_size:block_words
           ~blocks_per_disk:(Fragmented.blocks_per_disk cfg) ()
       in
       let d = Fragmented.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
       let payload = Common.sigma_payload ~sigma_bits in
       (match
          Array.iter (fun k -> Fragmented.insert d k (payload k)) members
        with
        | () -> Some (machine, d)
        | exception Fragmented.Overflow _ -> None)
   in
   let rec feasible sigma_bits =
     if sigma_bits < 64 then None
     else
       match try_sigma sigma_bits with
       | Some built -> Some (sigma_bits, built)
       | None -> feasible (sigma_bits / 2)
   in
   let geometric_max = disks / 2 * (block_words - 2) * Codec.bits_per_word in
   match feasible geometric_max with
   | None -> ()
   | Some (sigma_bits, (machine, d)) ->
     let avg = measure_lookups (Pdm.stats machine) (Fragmented.find d) in
     push
       { name = "Section 4.1 (k = d/2)"; paper_bandwidth = "O(BD/log n)";
         bandwidth_bits = sigma_bits; tested_sigma_bits = sigma_bits;
         lookup_avg = avg; lookup_ok = avg = 1.0 });

  (* Cascade: bandwidth O(BD) at 1 + e average I/Os. *)
  (let degree = 24 and epsilon = 0.5 in
   let m = 2 * degree / 3 in
   let max_sigma = m * ((Codec.bits_per_word * block_words) - 4) in
   let sigma_bits = max_sigma / 2 in
   let t =
     Cascade.create ~block_words
       { Cascade.universe; capacity = n; degree; sigma_bits; epsilon;
         v_factor = 3; seed }
   in
   let machine = Cascade.machine t in
   let payload = Common.sigma_payload ~sigma_bits in
   Array.iter (fun k -> Cascade.insert t k (payload k)) members;
   let avg = measure_lookups (Pdm.stats machine) (Cascade.find t) in
   push
     { name = "Section 4.3 (cascade)"; paper_bandwidth = "O(BD)";
       bandwidth_bits = max_sigma; tested_sigma_bits = sigma_bits;
       lookup_avg = avg; lookup_ok = avg <= 1.0 +. epsilon });

  { points = List.rev !points; block_words; disks }

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf "Bandwidth — satellite bits per parallel I/O (B = %d \
                       words, D = %d)" r.block_words r.disks)
    ~header:
      [ "method"; "paper"; "bandwidth (bits)"; "tested sigma"; "lookup avg";
        "within bound" ]
    ~notes:
      [ "each structure stores satellites near its limit; 'within bound' \
         checks its stated lookup cost still holds" ]
    (List.map
       (fun p ->
         [ p.name; p.paper_bandwidth; Table.icell p.bandwidth_bits;
           Table.icell p.tested_sigma_bits; Table.fcell p.lookup_avg;
           (if p.lookup_ok then "yes" else "NO") ])
       r.points)
