module Pdm = Pdm_sim.Pdm
module Basic = Pdm_dictionary.Basic_dict
module Rebuild = Pdm_dictionary.Global_rebuild
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Summary = Pdm_util.Summary

type result = {
  operations : int;
  final_size : int;
  rebuilds : int;
  peak_capacity : int;
  capacity_after_purge : int;
  insert_avg : float;
  insert_worst : int;
  lookup_avg : float;
  lookup_worst : int;
  delete_avg : float;
  delete_worst : int;
  baseline_insert_avg : float;
  overhead_factor : float;
}

let value_bytes = 8

let run ?(universe = 1 lsl 22) ?(block_words = 64) ?(degree = 8) ?(seed = 37)
    ?(operations = 3000) () =
  let t =
    Rebuild.create
      { Rebuild.universe; degree; value_bytes; block_words;
        initial_capacity = 64; max_capacity = 4 * operations;
        transfer_per_op = 4; seed }
  in
  let machine = Rebuild.machine t in
  let stats = Pdm.stats machine in
  let rng = Prng.create seed in
  let keys = Sampling.distinct rng ~universe ~count:operations in
  let payload = Common.value_bytes_of value_bytes in
  let ins = Common.per_op_cost stats (fun k -> Rebuild.insert t k (payload k)) keys in
  let look = Common.per_op_cost stats (fun k -> ignore (Rebuild.find t k)) keys in
  let victims = Array.sub keys 0 (operations / 4) in
  let del = Common.per_op_cost stats (fun k -> ignore (Rebuild.delete t k)) victims in
  let peak_capacity = Rebuild.capacity t in
  let final_size = Rebuild.size t in
  (* Purge phase: delete ~95% of what's left; shrink migrations must
     reclaim capacity. *)
  Array.iteri
    (fun i k -> if i >= operations / 4 && i < 24 * operations / 25 then
        ignore (Rebuild.delete t k))
    keys;
  (* A few extra operations let in-flight migrations complete. *)
  for i = 0 to 99 do ignore (Rebuild.mem t keys.(i)); ignore (Rebuild.delete t keys.(i)) done;
  let capacity_after_purge = Rebuild.capacity t in
  (* Baseline: a capacity-bounded basic dictionary sized upfront. *)
  let cfg =
    Basic.plan ~universe ~capacity:operations ~block_words ~degree
      ~value_bytes ~seed ()
  in
  let bmachine =
    Pdm.create ~disks:degree ~block_size:block_words
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let b = Basic.create ~machine:bmachine ~disk_offset:0 ~block_offset:0 cfg in
  let bins =
    Common.per_op_cost (Pdm.stats bmachine)
      (fun k -> Basic.insert b k (payload k))
      keys
  in
  let insert_avg = Summary.mean ins in
  let baseline_insert_avg = Summary.mean bins in
  { operations;
    final_size;
    rebuilds = Rebuild.rebuilds t;
    peak_capacity;
    capacity_after_purge;
    insert_avg;
    insert_worst = Common.worst ins;
    lookup_avg = Summary.mean look;
    lookup_worst = Common.worst look;
    delete_avg = Summary.mean del;
    delete_worst = Common.worst del;
    baseline_insert_avg;
    overhead_factor = insert_avg /. baseline_insert_avg }

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf
         "Global rebuilding — %d inserts growing 64 -> %d (then lookups and \
          deletes)"
         r.operations r.final_size)
    ~header:[ "metric"; "avg I/O"; "worst I/O" ]
    ~notes:
      [ Printf.sprintf "rebuild hand-overs completed: %d" r.rebuilds;
        Printf.sprintf
          "shrink: after purging ~95%% of keys, capacity fell %d -> %d"
          r.peak_capacity r.capacity_after_purge;
        Printf.sprintf
          "insert overhead vs capacity-bounded structure: %.2fx (avg %.2f vs \
           %.2f)"
          r.overhead_factor r.insert_avg r.baseline_insert_avg;
        "lookups stay at one parallel I/O throughout, rebuild in progress or \
         not" ]
    [ [ "insert"; Table.fcell r.insert_avg; Table.icell r.insert_worst ];
      [ "lookup"; Table.fcell r.lookup_avg; Table.icell r.lookup_worst ];
      [ "delete"; Table.fcell r.delete_avg; Table.icell r.delete_worst ] ]
