module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module One_probe = Pdm_dictionary.One_probe_static
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng

type point = {
  case : string;
  construction : string;
  n : int;
  lookups_all_single_io : bool;
  false_positives : int;
  construction_ios : int;
  sort_nd_ios : int;
  ratio : float;
  peel_rounds : int;
  internal_memory_peak : int;
  field_bits : int;
  space_bits : int;
  bits_per_key : float;
}

type result = { points : point list }

let case_name = function
  | One_probe.Case_a -> "a"
  | One_probe.Case_b -> "b"

let run ?(universe = 1 lsl 22) ?(block_words = 64) ?(sigma_bits = 128)
    ?(degree = 9) ?(seed = 23) ?(ns = [ 200; 500; 1000 ]) () =
  let points =
    List.concat_map
      (fun (case, construction) ->
        List.map
          (fun n ->
            let cfg =
              { One_probe.universe; capacity = n; degree; sigma_bits;
                v_factor = 3; case; seed }
            in
            let rng = Prng.create (seed + n) in
            let members, absent =
              Sampling.disjoint_pair rng ~universe ~count:n
            in
            let data =
              Array.map
                (fun k -> (k, Common.sigma_payload ~sigma_bits k))
                members
            in
            let t = One_probe.build ~construction ~block_words cfg data in
            let machine = One_probe.machine t in
            let stats = Pdm.stats machine in
            let all_single = ref true in
            let check_single k =
              let (), c =
                Stats.measure stats (fun () -> ignore (One_probe.find t k))
              in
              if Stats.parallel_ios c <> 1 then all_single := false
            in
            Array.iter check_single members;
            Array.iter check_single absent;
            let fps =
              Array.fold_left
                (fun acc k -> if One_probe.mem t k then acc + 1 else acc)
                0 absent
            in
            let r = One_probe.report t in
            { case = case_name case;
              construction =
                (match construction with `Sorting -> "sorting" | `Direct -> "direct");
              n;
              lookups_all_single_io = !all_single; false_positives = fps;
              construction_ios = r.One_probe.construction_ios;
              sort_nd_ios = r.One_probe.sort_nd_ios;
              ratio =
                float_of_int r.One_probe.construction_ios
                /. float_of_int (max 1 r.One_probe.sort_nd_ios);
              peel_rounds = r.One_probe.peel_rounds;
              internal_memory_peak = r.One_probe.internal_memory_peak;
              field_bits = r.One_probe.field_bits;
              space_bits = r.One_probe.space_bits;
              bits_per_key = float_of_int r.One_probe.space_bits /. float_of_int n })
          ns)
      [ (One_probe.Case_b, `Sorting); (One_probe.Case_b, `Direct);
        (One_probe.Case_a, `Sorting) ]
  in
  { points }

let to_table r =
  Table.make
    ~title:"Theorem 6 — one-probe static dictionary"
    ~header:
      [ "case"; "constr"; "n"; "all lookups 1 I/O"; "false pos";
        "constr I/Os"; "sort(nd) I/Os"; "ratio"; "peel rounds";
        "mem (words)"; "field bits"; "bits/key" ]
    ~notes:
      [ "ratio = construction / sort(nd): Theorem 6 promises a constant";
        "direct = the paper's first O(n)-scan procedure (needs Theta(|S_r| d) \
         internal memory); sorting = the streaming 'improved' one";
        "case (a) = membership + pointer fields on 2d disks; case (b) = \
         identifier fields on d disks" ]
    (List.map
       (fun p ->
         [ p.case; p.construction; Table.icell p.n;
           (if p.lookups_all_single_io then "yes" else "NO");
           Table.icell p.false_positives; Table.icell p.construction_ios;
           Table.icell p.sort_nd_ios; Table.fcell p.ratio;
           Table.icell p.peel_rounds; Table.icell p.internal_memory_peak;
           Table.icell p.field_bits; Table.fcell p.bits_per_key ])
       r.points)
