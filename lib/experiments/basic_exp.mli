(** Experiment E6: the Section 4.1 basic dictionary across block
    sizes.

    Sweeps B (words per block), including a small-B configuration
    where one bucket needs several blocks (the regime the paper covers
    with atomic-heap buckets): operations stay worst-case O(1) —
    [bucket_blocks] read rounds and one write round — at every B, and
    the measured maximum load respects Lemma 3.

    Also verifies the two structural claims of Section 1.1: no index
    structure (operations touch only Γ(x)'s blocks), and — in the
    no-deletions regime — stability: a key's blocks never change after
    insertion. *)

type point = {
  block_words : int;
  bucket_blocks : int;
  lookup_avg : float;
  lookup_worst : int;
  insert_avg : float;
  insert_worst : int;
  max_load : int;
  slots_per_bucket : int;
  bound : float;
  stable_placement : bool;  (** blocks of early keys untouched by later inserts *)
}

type result = { points : point list; n : int }

val run :
  ?universe:int -> ?n:int -> ?degree:int -> ?seed:int ->
  ?block_sizes:int list -> unit -> result
(** Default block sizes: 8 (multi-block buckets), 32, 64, 128. *)

val to_table : result -> Table.t
