module Pdm = Pdm_sim.Pdm
module Basic = Pdm_dictionary.Basic_dict
module Expansion = Pdm_expander.Expansion
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Imath = Pdm_util.Imath
module Summary = Pdm_util.Summary

type point = {
  block_words : int;
  bucket_blocks : int;
  lookup_avg : float;
  lookup_worst : int;
  insert_avg : float;
  insert_worst : int;
  max_load : int;
  slots_per_bucket : int;
  bound : float;
  stable_placement : bool;
}

type result = { points : point list; n : int }

let value_bytes = 8

(* Small blocks need multi-block buckets: grow bucket_blocks until a
   feasible plan exists. *)
let plan_any ~universe ~n ~block_words ~degree ~seed =
  let rec attempt bb =
    if bb > 64 then invalid_arg "basic_exp: no feasible bucket size";
    match
      Basic.plan ~bucket_blocks:bb ~universe ~capacity:n ~block_words ~degree
        ~value_bytes ~seed ()
    with
    | cfg -> cfg
    | exception Invalid_argument _ -> attempt (bb * 2)
  in
  attempt 1

let run ?(universe = 1 lsl 22) ?(n = 1000) ?(degree = 8) ?(seed = 13)
    ?(block_sizes = [ 8; 32; 64; 128 ]) () =
  let points =
    List.map
      (fun block_words ->
        let cfg = plan_any ~universe ~n ~block_words ~degree ~seed in
        let machine =
          Pdm.create ~disks:degree ~block_size:block_words
            ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
        in
        let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
        let rng = Prng.create (seed + block_words) in
        let members = Sampling.distinct rng ~universe ~count:n in
        let stats = Pdm.stats machine in
        let payload = Common.value_bytes_of value_bytes in
        (* Track where the first 50 keys live right after insertion;
           they must never move (Section 1.1's stability claim, valid
           while there are no deletions). *)
        let early = Array.sub members 0 (min 50 n) in
        let ins =
          Common.per_op_cost stats (fun k -> Basic.insert d k (payload k))
            members
        in
        let placement_of k =
          List.map
            (fun a -> (a, Pdm.peek machine a))
            (Basic.addresses d k)
          |> List.filter_map (fun (a, block) ->
                 let width = Basic.record_width d in
                 Option.map
                   (fun s -> (a, s))
                   (Pdm_dictionary.Codec.Slots.find_key block ~width ~key:k))
        in
        let early_placement = Array.map placement_of early in
        let look =
          Common.per_op_cost stats (fun k -> ignore (Basic.find d k)) members
        in
        let stable =
          Array.for_all2
            (fun k before -> placement_of k = before)
            early early_placement
        in
        { block_words; bucket_blocks = cfg.Basic.bucket_blocks;
          lookup_avg = Summary.mean look; lookup_worst = Common.worst look;
          insert_avg = Summary.mean ins; insert_worst = Common.worst ins;
          max_load = Basic.max_load d;
          slots_per_bucket = Basic.slots_per_bucket d;
          bound =
            Expansion.lemma3_bound ~n
              ~v:(degree * cfg.Basic.buckets_per_stripe)
              ~d:degree ~k:1 ~eps:(1. /. 12.) ~delta:(1. /. 12.);
          stable_placement = stable })
      block_sizes
  in
  { points; n }

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf "Section 4.1 — basic dictionary across block sizes \
                       (n = %d)" r.n)
    ~header:
      [ "B (words)"; "blocks/bucket"; "lookup avg"; "lookup max";
        "insert avg"; "insert max"; "max load"; "bucket slots";
        "Lemma3 bound"; "stable placement" ]
    ~notes:
      [ "even at B = 8 the costs stay O(1): blocks/bucket read rounds + 1 \
         write round";
        "stable placement: once inserted (and absent deletions), a record's \
         blocks never change" ]
    (List.map
       (fun p ->
         [ Table.icell p.block_words; Table.icell p.bucket_blocks;
           Table.fcell p.lookup_avg; Table.icell p.lookup_worst;
           Table.fcell p.insert_avg; Table.icell p.insert_worst;
           Table.icell p.max_load; Table.icell p.slots_per_bucket;
           Table.fcell p.bound;
           (if p.stable_placement then "yes" else "NO") ])
       r.points)
