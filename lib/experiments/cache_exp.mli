(** Experiment E15: buffer caching and who it helps.

    The introduction's "3 disk accesses" B-tree figure presumes a RAM
    cache holding the hot top of the tree. This experiment replays the
    same Zipf-skewed lookup trace against both structures through an
    LRU block cache of varying size and reports the {e effective}
    parallel I/Os per lookup (misses only).

    Expected shape: the B-tree's cost falls in steps as the cache
    swallows tree levels, approaching (but, for random accesses over a
    large leaf set, not reaching) 1; the expander dictionary starts at
    1 with {e no} cache — by design its accesses are spread uniformly
    over all buckets, so a small cache cannot help it, and it does not
    need one. *)

type point = {
  cache_blocks : int;
  btree_io_per_lookup : float;
  dict_io_per_lookup : float;
  btree_hit_rate : float;
  dict_hit_rate : float;
}

type result = {
  points : point list;
  n : int;
  lookups : int;
  btree_height : int;
  total_blocks_btree : int;
  total_blocks_dict : int;
}

val run :
  ?universe:int -> ?n:int -> ?lookups:int -> ?zipf:float -> ?seed:int ->
  ?cache_sizes:int list -> unit -> result

val to_table : result -> Table.t
