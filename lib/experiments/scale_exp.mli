(** Experiment E13: the guarantees at scale.

    The unit experiments run at n ≈ 10³ for speed; this experiment
    pushes the two headline dictionaries to tens of thousands of keys
    and re-verifies the worst-case I/O bounds on every single
    operation, while also reporting simulator wall-clock throughput
    (operations per second including simulation overhead) so scaling
    regressions are visible. *)

type point = {
  structure : string;
  n : int;
  lookup_worst : int;
  lookup_bound : int;
  insert_worst : int;
  insert_bound : int;
  ops_per_sec : float;     (** lookups/s wall clock, simulator included *)
  space_blocks : int;
  bound_violations : int;
}

type result = { points : point list }

val run : ?seed:int -> ?ns:int list -> unit -> result
(** Default ns: 10_000, 40_000. *)

val to_table : result -> Table.t
