(** Shared measurement helpers for the experiment suite. *)

module Summary = Pdm_util.Summary

val per_op_cost :
  Pdm_sim.Stats.t -> (int -> unit) -> int array -> Summary.t
(** Run one operation per key, recording each operation's parallel I/O
    cost; returns the summary (mean/max/percentiles). *)

val value_bytes_of : int -> int -> Bytes.t
(** [value_bytes_of len k]: deterministic [len]-byte payload for key
    [k]. *)

val sigma_payload : sigma_bits:int -> int -> Bytes.t
(** Payload sized for a sigma_bits satellite. *)

val avg : Summary.t -> float

val worst : Summary.t -> int
