module Greedy = Pdm_loadbalance.Greedy
module Baseline = Pdm_loadbalance.Baseline
module Seeded = Pdm_expander.Seeded
module Expansion = Pdm_expander.Expansion
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng

type point = {
  n : int;
  v : int;
  d : int;
  k : int;
  average : float;
  greedy_max : int;
  bound : float;
  single_choice_max : int;
  random_d_choice_max : int;
}

type result = { points : point list }

let default_sweep =
  [ (* lightly loaded: n = v *)
    (1024, 1024, 8, 1);
    (4096, 4096, 8, 1);
    (* heavily loaded: n >> v *)
    (4096, 256, 8, 1);
    (16384, 256, 8, 1);
    (* higher degree *)
    (4096, 256, 16, 1);
    (* several items per vertex *)
    (2048, 504, 12, 4);
    (2048, 512, 16, 8) ]

let run ?(universe = 1 lsl 24) ?(seed = 7) ?(sweep = default_sweep) () =
  let points =
    List.map
      (fun (n, v, d, k) ->
        let rng = Prng.create (seed + n + v + d + k) in
        let keys = Sampling.distinct rng ~universe ~count:n in
        let graph = Seeded.striped ~seed ~u:universe ~v ~d in
        let lb = Greedy.create ~graph ~k () in
        Greedy.insert_all lb keys;
        (* Baselines place the same kn items. *)
        let items = Array.concat (List.init k (fun _ -> keys)) in
        let single =
          Baseline.max_load (Baseline.single_choice ~seed ~v ~items)
        in
        let rnd =
          Baseline.max_load (Baseline.random_d_choice ~rng ~v ~d ~items)
        in
        { n; v; d; k;
          average = float_of_int (k * n) /. float_of_int v;
          greedy_max = Greedy.max_load lb;
          bound =
            Expansion.lemma3_bound ~n ~v ~d ~k ~eps:(1. /. 6.)
              ~delta:(1. /. 6.);
          single_choice_max = single;
          random_d_choice_max = rnd })
      sweep
  in
  { points }

let to_table r =
  Table.make
    ~title:"Lemma 3 — deterministic d-choice load balancing (max load)"
    ~header:
      [ "n"; "v"; "d"; "k"; "avg load"; "greedy max"; "Lemma3 bound";
        "1-choice max"; "rand d-choice max" ]
    ~notes:
      [ "bound evaluated at eps = delta = 1/6 (measured eps is smaller; \
         see E3)" ]
    (List.map
       (fun p ->
         [ Table.icell p.n; Table.icell p.v; Table.icell p.d; Table.icell p.k;
           Table.fcell p.average; Table.icell p.greedy_max;
           Table.fcell p.bound; Table.icell p.single_choice_max;
           Table.icell p.random_d_choice_max ])
       r.points)
