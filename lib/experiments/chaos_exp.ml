module Topology = Pdm_cluster.Topology
module Cluster = Pdm_cluster.Cluster
module Transport = Pdm_cluster.Transport

type variant = {
  label : string;
  answered : int;
  availability : float;
  matches_baseline : bool;
  mean_rounds : float;
  p99_rounds : int;
  max_rounds : int;
  retries : int;
  hedges : int;
  failovers : int;
  suspicions : int;
  heals : int;
  queued_repairs : int;
  charge_agrees : bool;
}

type result = {
  keys : int;
  shards : int;
  replicas : int;
  drop : float;
  dup : float;
  partition_shard : int;
  partition_span : int;
  hedged : variant;
  unhedged : variant;
  hedged_ok : bool;
  unhedged_ok : bool;
  tail_improved : bool;
}

let payload_bytes = 8
let value_of k = Common.value_bytes_of payload_bytes k

let cluster_config ~n ~replicas ~shards ~seed ~net =
  { Cluster.default_config with
    Cluster.replicas;
    shard_capacity = max 256 (3 * n * replicas / shards);
    seed; net }

let populate c n =
  for k = 0 to n - 1 do
    Cluster.insert c (k * 3) (value_of (k * 3))
  done

(* the fault-free reference answers: what every faulted variant must
   still serve, byte for byte *)
let baseline_answers ~n ~shards ~replicas ~seed =
  let c =
    Cluster.create
      ~config:(cluster_config ~n ~replicas ~shards ~seed ~net:None)
      (Topology.standard ~shards)
  in
  populate c n;
  Array.init n (fun k -> Cluster.find c (k * 3))

(* One faulted variant: populate under 5% drop + 5% duplication, then
   sweep every key while a symmetric partition cuts one shard off
   mid-sweep and heals before the end. Per-read network rounds are the
   cluster's charged [net_rounds] delta, so the tail directly compares
   the hedged and unhedged retry policies. *)
let run_variant ~label ~n ~shards ~replicas ~seed ~drop ~dup ~hedge
    ~partition_shard ~partition_span baseline =
  let spec =
    Transport.spec ~seed ~drop ~duplicate:dup ~reorder_window:3
      ~max_attempts:6
      ~hedge_after:(if hedge then 1 else -1)
      ()
  in
  let c =
    Cluster.create
      ~config:(cluster_config ~n ~replicas ~shards ~seed ~net:(Some spec))
      (Topology.standard ~shards)
  in
  populate c n;
  let rounds = Array.make n 0 in
  let answered = ref 0 and matches = ref true in
  for k = 0 to n - 1 do
    (* cut the shard off a third of the way into the sweep; the span
       heals it well before the sweep ends *)
    if k = n / 3 then
      Cluster.inject_net c
        { Transport.pin_shard = partition_shard;
          kind = Transport.Pin_partition { span = partition_span;
                                           symmetric = true } };
    let before = (Cluster.stats c).Cluster.net_rounds in
    (match Cluster.find c (k * 3) with
     | answer ->
       incr answered;
       let expected = baseline.(k) in
       let same =
         match (answer, expected) with
         | Some a, Some b -> Bytes.equal a b
         | None, None -> true
         | _ -> false
       in
       if not same then matches := false
     | exception (Cluster.Unavailable _ | Cluster.Retries_exhausted _) -> ());
    rounds.(k) <- (Cluster.stats c).Cluster.net_rounds - before
  done;
  let st = Cluster.stats c in
  let charge_agrees =
    match Cluster.transport_stats c with
    | Some ts -> ts.Transport.ticks = st.Cluster.net_rounds
    | None -> false
  in
  let sorted = Array.copy rounds in
  Array.sort compare sorted;
  let total = Array.fold_left ( + ) 0 rounds in
  { label; answered = !answered;
    availability = float_of_int !answered /. float_of_int n;
    matches_baseline = !matches;
    mean_rounds = float_of_int total /. float_of_int n;
    p99_rounds = sorted.(99 * (n - 1) / 100);
    max_rounds = sorted.(n - 1);
    retries = st.Cluster.retries; hedges = st.Cluster.hedges;
    failovers = st.Cluster.failovers; suspicions = st.Cluster.suspicions;
    heals = st.Cluster.heals; queued_repairs = st.Cluster.queued_repairs;
    charge_agrees }

let run ?(n = 2000) ?(seed = 42) () =
  let shards = 6 and replicas = 2 in
  let drop = 0.05 and dup = 0.05 in
  let partition_shard = seed mod shards and partition_span = 200 in
  let baseline = baseline_answers ~n ~shards ~replicas ~seed in
  let variant ~label ~hedge =
    run_variant ~label ~n ~shards ~replicas ~seed ~drop ~dup ~hedge
      ~partition_shard ~partition_span baseline
  in
  let hedged = variant ~label:"hedged" ~hedge:true in
  let unhedged = variant ~label:"unhedged" ~hedge:false in
  let ok v = v.availability >= 1.0 && v.matches_baseline && v.charge_agrees in
  { keys = n; shards; replicas; drop; dup; partition_shard; partition_span;
    hedged; unhedged; hedged_ok = ok hedged; unhedged_ok = ok unhedged;
    tail_improved = hedged.p99_rounds <= unhedged.p99_rounds }

let to_table r =
  let b = function true -> "yes" | false -> "NO" in
  let vrow name f = [ name; f r.hedged; f r.unhedged ] in
  Table.make
    ~title:"E21: chaos — availability under message faults"
    ~header:[ "metric"; "hedged"; "unhedged" ]
    ~notes:
      [ Printf.sprintf
          "%d keys on %d shards, r=%d; %.0f%% drop + %.0f%% duplication \
           each way; a symmetric partition cuts shard %d off for %d op \
           windows mid-sweep, then heals"
          r.keys r.shards r.replicas (100. *. r.drop) (100. *. r.dup)
          r.partition_shard r.partition_span;
        "rounds are the router's charged network ticks per read \
         (timeouts, latency, backoff); the charge row checks the \
         router's total equals the transport's independent count" ]
    [ vrow "availability" (fun v -> Table.fcell v.availability);
      vrow "availability = 1.0" (fun v -> b (v.availability >= 1.0));
      vrow "answers match fault-free" (fun v -> b v.matches_baseline);
      vrow "mean net rounds / read" (fun v -> Table.fcell v.mean_rounds);
      vrow "p99 net rounds / read" (fun v -> Table.icell v.p99_rounds);
      vrow "max net rounds / read" (fun v -> Table.icell v.max_rounds);
      vrow "retries" (fun v -> Table.icell v.retries);
      vrow "hedged fallbacks" (fun v -> Table.icell v.hedges);
      vrow "failover reads" (fun v -> Table.icell v.failovers);
      vrow "suspicions raised" (fun v -> Table.icell v.suspicions);
      vrow "suspicions healed" (fun v -> Table.icell v.heals);
      vrow "writes parked for repair" (fun v -> Table.icell v.queued_repairs);
      vrow "router charge = transport ticks" (fun v -> b v.charge_agrees);
      [ "variant ok"; b r.hedged_ok; b r.unhedged_ok ];
      [ "hedging improves p99 tail"; b r.tail_improved; "" ] ]
