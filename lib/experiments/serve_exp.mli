(** E23: the pdm-serve daemon under chaos — tail latency, availability
    and multi-domain determinism over real sockets.

    An in-process daemon ({!Pdm_server.Server.start}) on an ephemeral
    loopback port serves a seeded open-loop workload (Zipf key
    popularity, fixed arrival rate, one connection so every shard sees
    the generator's op order) across 4 shards while a disk of one
    shard is killed a third of the way in and scrubbed back at two
    thirds. The run must answer every op correctly — replication
    inside the shard absorbs the kill — and the whole experiment is
    executed twice, with 1 and with 2 worker domains: because each
    shard is owned by exactly one domain and mailboxes are FIFO, the
    answer stream digests and the per-shard round ledgers must be
    byte-identical. Wall-clock p50/p99/p999 are reported (the
    BENCH_serve.json numbers) but never gated. *)

type variant = {
  domains : int;
  wrong : int;          (** replies disagreeing with the replay model *)
  busy : int;
  unavailable : int;
  proto_errors : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  rounds : int;         (** summed per-shard parallel-round ledgers *)
  ios : int;            (** summed blocks fetched *)
  peak_depth : int;     (** deepest any worker mailbox got *)
  digest : string;      (** hex digest of the reply stream in op order *)
  shard_stats : Pdm_server.Wire.shard_stat list;
}

type result = {
  requests : int;
  shards : int;
  rate : float;         (** open-loop arrivals per second *)
  kill_at : int;        (** op index of the disk kill *)
  scrub_at : int;       (** op index of the scrub *)
  chaos_shard : int;
  single : variant;     (** 1 worker domain *)
  multi : variant;      (** 2 worker domains *)
  zero_wrong : bool;
  answers_identical : bool;   (** digests equal across domain counts *)
  ledgers_identical : bool;   (** per-shard ledgers equal *)
}

val run : ?n:int -> ?seed:int -> unit -> result
(** Defaults: 1200 ops, seed 1. *)

val to_table : result -> Table.t
