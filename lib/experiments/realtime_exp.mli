(** Experiment E14: the real-time argument (§1.2).

    "The file system often needs to offer a real-time guarantee for
    the sake of applications, which essentially prohibits randomized
    solutions, as well as amortized bounds."

    Every structure serves the same long mixed trace (lookups,
    updates, deletes) at meaningful utilization; per-operation
    parallel-I/O latencies are recorded and reported as percentiles.
    Averages hide the story — the tail is where amortized (cuckoo) and
    whp (hashing) structures give up their guarantees while the
    deterministic structures' p100 equals their bound. *)

type row = {
  name : string;
  deterministic : bool;
  ops : int;
  p50 : float;
  p99 : float;
  p999 : float;
  worst : int;
}

type result = { rows : row list; trace_ops : int }

val run :
  ?scale:Adapters.scale -> ?trace_ops:int -> ?structures:Adapters.t list ->
  unit -> result
(** Defaults: the four headline structures (cascade, one-probe
    dynamic, cuckoo at 0.8 and hash table at 0.9 utilization with fat
    records) over a 20 000-operation trace (70% lookups, ~20% updates,
    ~10% deletes). *)

val to_table : result -> Table.t
