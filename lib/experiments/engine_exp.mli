(** Experiment E18: the batched concurrent query engine.

    The paper's Theorem 2 bound is about batches — P concurrent
    requests on D disks in O(P/D) parallel rounds. The per-key
    dictionary APIs serve one request per round; this experiment
    drives Q = 4096 random one-probe lookups through
    {!Pdm_engine.Engine} over the Section 4.2 case (b) dictionary on
    D = 16 disks and checks the system-level consequences:

    - the batch completes within 1.25 · ⌈Q/D⌉ engine rounds
      (duplicate coalescing makes it far fewer in practice), versus
      ≈ Q rounds unbatched;
    - mean disk utilization of the fetch rounds is ≥ 0.8 · D;
    - the engine's answers are identical to the per-key path's;
    - with r = 2 replication and one disk killed before the batch,
      the least-loaded replica scheduling finishes within 2× the
      fault-free r = 2 rounds, still with identical answers. *)

type result = {
  queries : int;
  disks : int;
  unbatched_rounds : int;   (** per-key baseline: one lookup per round *)
  engine_rounds : int;      (** engine clock for the whole batch *)
  bound_rounds : int;       (** 1.25 · ⌈Q/D⌉ *)
  within_bound : bool;
  speedup : float;          (** unbatched / engine rounds *)
  coalesced : int;          (** duplicate block fetches avoided *)
  blocks_fetched : int;
  mean_utilization : float; (** blocks per fetch round (≤ D) *)
  utilization_ok : bool;    (** ≥ 0.8 · D *)
  answers_match : bool;
  mean_latency : float;     (** rounds from admission to answer *)
  max_latency : int;
  healthy_r2_rounds : int;  (** fault-free r = 2 reference *)
  degraded_rounds : int;    (** r = 2, one disk killed *)
  degraded_within_2x : bool;
  degraded_match : bool;
}

val run :
  ?universe:int ->
  ?n:int ->
  ?queries:int ->
  ?degree:int ->
  ?seed:int ->
  ?killed_disk:int ->
  unit ->
  result

val to_table : result -> Table.t
