module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Fault = Pdm_sim.Fault
module Iotrace = Pdm_sim.Trace
module Basic = Pdm_dictionary.Basic_dict
module Zipf = Pdm_util.Zipf
module Sampling = Pdm_util.Sampling
module Summary = Pdm_util.Summary
module Prng = Pdm_util.Prng

type point = {
  scenario : string;
  avg_io : float;
  worst_io : int;
  overhead : float;
  max_load : int;
  mean_load : float;
  retries : int;
  correct : bool;
}

type result = {
  points : point list;
  n : int;
  lookups : int;
  transient_prob : float;
  straggle : int;
}

let disks = 8
let block_words = 64
let value_bytes = 8

let run ?(universe = 1 lsl 22) ?(n = 5_000) ?(lookups = 4_000) ?(seed = 31)
    ?(transient_prob = 0.05) ?(straggle = 3) () =
  let rng = Prng.create seed in
  let keys = Sampling.distinct rng ~universe ~count:n in
  let payload = Common.value_bytes_of value_bytes in
  let z = Zipf.create ~n ~s:1.1 in
  let trace_keys = Array.init lookups (fun _ -> keys.(Zipf.sample z rng)) in
  let scenario name faults =
    let cfg =
      Basic.plan ~universe ~capacity:n ~block_words ~degree:disks ~value_bytes
        ~seed ()
    in
    (* Ring sized to hold every lookup round, so retry counts are
       exact, not truncated. *)
    let tr = Iotrace.create ~capacity:(8 * lookups) () in
    let machine =
      Pdm.create ?faults ~trace:tr ~disks ~block_size:block_words
        ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
    in
    let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
    Basic.bulk_load d (Array.map (fun k -> (k, payload k)) keys);
    Iotrace.clear tr;
    let before = Stats.snapshot (Pdm.stats machine) in
    let costs = Summary.create () in
    let correct = ref true in
    Array.iter
      (fun k ->
        let found, cost =
          Stats.measure (Pdm.stats machine) (fun () -> Basic.find d k)
        in
        Summary.add_int costs (Stats.parallel_ios cost);
        if found <> Some (payload k) then correct := false)
      trace_keys;
    let after = Stats.snapshot (Pdm.stats machine) in
    let lookup_phase = Stats.diff ~after ~before in
    let occ = Stats.occupancy lookup_phase in
    let retries =
      List.fold_left
        (fun acc (e : Iotrace.event) -> acc + e.retries)
        0 (Iotrace.events tr)
    in
    ( name, Summary.mean costs, Common.worst costs, occ, retries, !correct )
  in
  let transient = [ (1, transient_prob); (5, transient_prob) ] in
  let stragglers = [ (2, straggle) ] in
  let raw =
    [ scenario "fault-free" None;
      scenario
        (Printf.sprintf "transient p=%.2f on 2 disks" transient_prob)
        (Some (Fault.spec ~seed ~transient ()));
      scenario
        (Printf.sprintf "straggler %dx on 1 disk" straggle)
        (Some (Fault.spec ~seed ~stragglers ()));
      scenario "transient + straggler"
        (Some (Fault.spec ~seed ~transient ~stragglers ())) ]
  in
  let base_avg =
    match raw with (_, avg, _, _, _, _) :: _ -> avg | [] -> 1.0
  in
  let points =
    List.map
      (fun (scenario, avg_io, worst_io, occ, retries, correct) ->
        let max_load, mean_load =
          match occ with
          | Some o -> (o.Stats.max_load, o.Stats.mean_load)
          | None -> (0, 0.0)
        in
        { scenario; avg_io; worst_io;
          overhead = (if base_avg > 0.0 then avg_io /. base_avg else 1.0);
          max_load; mean_load; retries; correct })
      raw
  in
  { points; n; lookups; transient_prob; straggle }

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf
         "Fault injection — lookup degradation and per-disk balance (n = %d, \
          %d Zipf lookups, %d disks)"
         r.n r.lookups disks)
    ~header:
      [ "scenario"; "avg I/O"; "worst"; "x fault-free"; "disk max/mean";
        "retries"; "correct" ]
    ~notes:
      [ "every retry is charged a real round: degraded reads are re-issued, \
         never free";
        "disk max/mean is the per-disk block count over the lookup phase — \
         the Lemma 3 balance, now observable per disk";
        "correctness never degrades, only cost: faulty runs return the same \
         values as the fault-free run" ]
    (List.map
       (fun p ->
         [ p.scenario; Table.fcell p.avg_io; Table.icell p.worst_io;
           Table.fcell p.overhead;
           Printf.sprintf "%d/%.1f" p.max_load p.mean_load;
           Table.icell p.retries;
           (if p.correct then "yes" else "NO") ])
       r.points)
