(** Experiment E1: regenerate Figure 1 (the paper's only figure).

    Figure 1 tabulates, for linear-space dictionaries with constant
    time per operation: lookup I/Os, update I/Os, bandwidth and side
    conditions. This experiment builds every row's structure in the
    simulator at a common scale, drives identical workloads through
    them, and reports measured average and worst-case parallel I/Os
    next to the paper's stated bounds.

    Expected shape (what EXPERIMENTS.md records): the deterministic
    structures hit their worst-case bounds exactly (1 or 2 I/Os, or
    1+ɛ/2+ɛ on average with an O(log n) worst case), while the
    hashing rows match only on average — their worst cases drift with
    load and (for cuckoo) eviction chains. *)

type row = {
  name : string;
  paper_lookup : string;     (** the bound as stated in Figure 1 *)
  paper_update : string;
  lookup_avg : float;
  lookup_worst : int;
  update_avg : float;
  update_worst : int;
  bandwidth_bits : int;      (** satellite bits deliverable in 1 I/O *)
  disks : int;
  deterministic : bool;
}

type result = { rows : row list; n : int; block_words : int }

val run :
  ?n:int -> ?universe:int -> ?block_words:int -> ?seed:int ->
  ?factory:int Pdm_sim.Backend.factory -> unit -> result
(** Defaults: n = 1000, universe = 2²², block_words = 64, seed 42.
    [factory] puts every row's machine on non-default storage (the
    real-I/O backends of {!Pdm_io.Store}) — measured I/O counts are
    identical by the backend contract; only wall time changes. *)

val to_table : result -> Table.t

val find_row : result -> string -> row
(** Row by (prefix of) name; raises [Not_found]. *)
