(** E21: chaos — cluster availability and read tail under deterministic
    message faults.

    A fault-free cluster supplies the reference answers; two faulted
    variants (hedged reads on, hedging off) then serve the same sweep
    under 5% per-direction message drop, 5% write duplication, and a
    symmetric partition that cuts one shard off mid-sweep and heals.
    With replicas >= 2 both variants must answer {e every} read
    (availability 1.0) with answers byte-identical to the fault-free
    run; the hedged variant must beat (or match) the unhedged p99
    per-read network-round tail, and each router's charged network
    rounds must equal the transport's independently assessed tick
    total — the same cross-check the sanitizer enforces. *)

type variant = {
  label : string;
  answered : int;
  availability : float;
  matches_baseline : bool;
  mean_rounds : float;
  p99_rounds : int;
  max_rounds : int;
  retries : int;
  hedges : int;
  failovers : int;
  suspicions : int;
  heals : int;
  queued_repairs : int;
  charge_agrees : bool;
}

type result = {
  keys : int;
  shards : int;
  replicas : int;
  drop : float;
  dup : float;
  partition_shard : int;
  partition_span : int;
  hedged : variant;
  unhedged : variant;
  hedged_ok : bool;
  unhedged_ok : bool;
  tail_improved : bool;
}

val run : ?n:int -> ?seed:int -> unit -> result
(** Defaults: 2000 keys, seed 42, 6 shards, 2 replicas. *)

val to_table : result -> Table.t
