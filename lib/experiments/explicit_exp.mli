(** Experiment E8: the semi-explicit expander construction (§5).

    For a sweep of (universe, capacity, β), builds the Theorem 12
    telescope-product expander and reports the quantities the section
    trades off: level count, composed degree (polylog target), right
    size v vs the O(N·d) target, modelled preprocessing memory vs the
    O(N^β) budget, measured expansion of the composed graph, and the
    factor-d space blowup of trivial striping. *)

type point = {
  u : int;
  capacity : int;
  beta : float;
  levels : int;
  degree : int;
  right_size : int;
  v_over_nd : float;          (** v / (N·d): O(1) target *)
  memory_words : int;
  memory_budget : float;      (** N^β *)
  eps_target : float;
  eps_measured : float;       (** sampled on sets of size ≤ N *)
  striped_v : int;            (** right size after trivial striping *)
}

type result = { points : point list }

val run :
  ?seed:int -> ?trials:int -> ?sweep:(int * int * float) list -> unit ->
  result
(** [sweep] lists (u, capacity, beta). *)

val to_table : result -> Table.t
