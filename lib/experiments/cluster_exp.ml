module Topology = Pdm_cluster.Topology
module Placement = Pdm_cluster.Placement
module Migration = Pdm_cluster.Migration
module Cluster = Pdm_cluster.Cluster
module Journal = Pdm_sim.Journal

type result = {
  placement_keys : int;
  shards : int;
  weighted_ratio : float;
  balance_ok : bool;
  plan_moved : int;
  plan_optimal : int;
  plan_within_bound : bool;
  exec_keys : int;
  exec_moved : int;
  exec_optimal : int;
  exec_within_bound : bool;
  exec_correct : bool;
  migration_rounds : int;
  kill_availability : float;
  kill_ok : bool;
  failovers : int;
  crash_schedules : int;
  crash_fired : int;
  crash_divergences : int;
  crash_ok : bool;
}

let payload_bytes = 8

let value_of k = Common.value_bytes_of payload_bytes k

(* six shards, the first three twice the weight of the rest, two
   hosts per rack *)
let weighted_topology =
  Topology.make
    (List.init 6 (fun i ->
         { Topology.id = i; weight = (if i < 3 then 2 else 1); host = i;
           rack = i / 2 }))

let balance ~keys ~seed =
  let topo = weighted_topology in
  let total_weight = Topology.total_weight topo in
  let counts = Array.make (Topology.count topo) 0 in
  for key = 0 to keys - 1 do
    let p = Placement.primary topo ~seed key in
    counts.(p) <- counts.(p) + 1
  done;
  List.fold_left
    (fun acc (s : Topology.shard) ->
      let expected =
        float_of_int (keys * s.weight) /. float_of_int total_weight
      in
      Float.max acc (float_of_int counts.(s.id) /. expected))
    0.0 (Topology.shards topo)

(* bounded movement on the unweighted bound the issue states: adding a
   unit shard to S unit shards moves ~N/(S+1) keys *)
let plan_movement ~keys ~seed =
  let s = 5 in
  let topo = Topology.standard ~shards:s in
  let grown =
    Topology.add_shard topo
      { Topology.id = s; weight = 1; host = s; rack = s / 2 }
  in
  let plan =
    Migration.plan ~old_topology:topo ~new_topology:grown ~seed ~replicas:1
      ~keys:(List.init keys (fun i -> i))
  in
  (Migration.moved_keys plan, keys / (s + 1))

let cluster_config ~n ~replicas ~shards ~journaled ~seed =
  { Cluster.default_config with
    Cluster.replicas;
    shard_capacity = max 256 (3 * n * replicas / shards);
    journaled; seed }

let populate c n =
  for k = 0 to n - 1 do
    Cluster.insert c (k * 3) (value_of (k * 3))
  done

(* every stored key answers with its value; a probe key never stored
   stays absent *)
let sweep_ok c n =
  let ok = ref true in
  for k = 0 to n - 1 do
    (match Cluster.find c (k * 3) with
     | Some v -> if not (Bytes.equal v (value_of (k * 3))) then ok := false
     | None -> ok := false);
    if Cluster.find c ((k * 3) + 1) <> None then ok := false
  done;
  !ok

let executed_migration ~n ~seed =
  let s = 5 in
  let c =
    Cluster.create
      ~config:(cluster_config ~n ~replicas:1 ~shards:s ~journaled:false ~seed)
      (Topology.standard ~shards:s)
  in
  populate c n;
  let report =
    Cluster.add_shard c { Topology.id = s; weight = 1; host = s; rack = s / 2 }
  in
  (report.Cluster.moved_keys, n / (s + 1), sweep_ok c n,
   report.Cluster.rounds)

let kill_one_shard ~n ~seed =
  let s = 6 in
  let c =
    Cluster.create
      ~config:(cluster_config ~n ~replicas:2 ~shards:s ~journaled:false ~seed)
      (Topology.standard ~shards:s)
  in
  populate c n;
  Cluster.kill_shard c (seed mod s);
  let answered = ref 0 in
  for k = 0 to n - 1 do
    match Cluster.find c (k * 3) with
    | Some v when Bytes.equal v (value_of (k * 3)) -> incr answered
    | Some _ | None -> ()
  done;
  let st = Cluster.stats c in
  (float_of_int !answered /. float_of_int n, st.Cluster.failovers)

(* the full (move index x crash point) grid over a journaled
   migration: crash, recover, sweep *)
let crash_grid ~seed =
  let n = 120 in
  let points =
    [ Journal.Before_log; Journal.During_log 1; Journal.During_log 2;
      Journal.After_log; Journal.After_commit; Journal.During_apply 1;
      Journal.During_apply 2; Journal.After_apply ]
  in
  let move_indices = List.init 13 (fun i -> i) in
  let schedules = ref 0 and fired = ref 0 and divergences = ref 0 in
  List.iter
    (fun point ->
      List.iter
        (fun move_idx ->
          incr schedules;
          let c =
            Cluster.create
              ~config:
                (cluster_config ~n ~replicas:1 ~shards:3 ~journaled:true
                   ~seed)
              (Topology.standard ~shards:3)
          in
          populate c n;
          (match
             Cluster.add_shard c ~crash:(move_idx, point)
               { Topology.id = 3; weight = 1; host = 3; rack = 1 }
           with
           | (_ : Cluster.migration_report) -> ()
           | exception Journal.Crashed ->
             incr fired;
             (* availability holds even mid-wreckage *)
             if not (sweep_ok c n) then incr divergences;
             (match Cluster.recover c with
              | `Clean | `Discarded | `Replayed _ -> ()));
          if not (sweep_ok c n) then incr divergences;
          if Cluster.recover c <> `Clean then incr divergences;
          if Cluster.migration_in_flight c then incr divergences)
        move_indices)
    points;
  (!schedules, !fired, !divergences)

let run ?(placement_keys = 100_000) ?(n = 2000) ?(seed = 42) () =
  let weighted_ratio = balance ~keys:placement_keys ~seed in
  let plan_moved, plan_optimal = plan_movement ~keys:placement_keys ~seed in
  let exec_moved, exec_optimal, exec_correct, migration_rounds =
    executed_migration ~n ~seed
  in
  let kill_availability, failovers = kill_one_shard ~n ~seed in
  let crash_schedules, crash_fired, crash_divergences = crash_grid ~seed in
  let within moved optimal =
    float_of_int moved <= 1.5 *. float_of_int optimal
  in
  { placement_keys; shards = Topology.count weighted_topology;
    weighted_ratio; balance_ok = weighted_ratio <= 1.15;
    plan_moved; plan_optimal;
    plan_within_bound = within plan_moved plan_optimal;
    exec_keys = n; exec_moved; exec_optimal;
    exec_within_bound = within exec_moved exec_optimal;
    exec_correct; migration_rounds;
    kill_availability; kill_ok = kill_availability >= 1.0; failovers;
    crash_schedules; crash_fired; crash_divergences;
    crash_ok = crash_schedules >= 100 && crash_divergences = 0 }

let to_table r =
  let b = function true -> "yes" | false -> "NO" in
  Table.make ~title:"E20: sharded placement tier (weighted rendezvous)"
    ~header:[ "metric"; "value" ]
    ~notes:
      [ "balance: primaries of 10^5 keys over 6 shards weighted 2:1; \
         ratio is the worst shard's load over its weight share";
        Printf.sprintf
          "movement: one unit shard added to 5; optimal is N/(S+1); \
           executed run stores %d keys on a live cluster"
          r.exec_keys;
        "crash grid: (move index x journal crash point) schedules \
         injected into a journaled migration, each recovered and swept" ]
    [ [ "placement keys"; Table.icell r.placement_keys ];
      [ "weighted shards"; Table.icell r.shards ];
      [ "max load / weight share"; Table.fcell r.weighted_ratio ];
      [ "balance <= 1.15"; b r.balance_ok ];
      [ "plan moved keys"; Table.icell r.plan_moved ];
      [ "plan optimal"; Table.icell r.plan_optimal ];
      [ "plan <= 1.5x optimal"; b r.plan_within_bound ];
      [ "executed moved keys"; Table.icell r.exec_moved ];
      [ "executed optimal"; Table.icell r.exec_optimal ];
      [ "executed <= 1.5x optimal"; b r.exec_within_bound ];
      [ "executed sweep correct"; b r.exec_correct ];
      [ "migration rounds"; Table.icell r.migration_rounds ];
      [ "kill-one-shard availability"; Table.fcell r.kill_availability ];
      [ "availability = 1.0"; b r.kill_ok ];
      [ "failover reads"; Table.icell r.failovers ];
      [ "crash schedules"; Table.icell r.crash_schedules ];
      [ "crashes fired"; Table.icell r.crash_fired ];
      [ "crash divergences"; Table.icell r.crash_divergences ];
      [ "crash grid ok"; b r.crash_ok ] ]
