module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Cache = Pdm_sim.Cache
module Basic = Pdm_dictionary.Basic_dict
module Btree = Pdm_baselines.Btree
module Zipf = Pdm_util.Zipf
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng

type point = {
  cache_blocks : int;
  btree_io_per_lookup : float;
  dict_io_per_lookup : float;
  btree_hit_rate : float;
  dict_hit_rate : float;
}

type result = {
  points : point list;
  n : int;
  lookups : int;
  btree_height : int;
  total_blocks_btree : int;
  total_blocks_dict : int;
}

let disks = 8
let block_words = 32
let value_bytes = 8

let run ?(universe = 1 lsl 24) ?(n = 20_000) ?(lookups = 10_000) ?(zipf = 0.9)
    ?(seed = 77) ?(cache_sizes = [ 8; 64; 512; 4096 ]) () =
  let rng = Prng.create seed in
  let keys = Sampling.distinct rng ~universe ~count:n in
  let payload = Common.value_bytes_of value_bytes in
  (* Build both structures. *)
  let superblocks = max 64 (4 * n / block_words) in
  let bt_machine =
    Pdm.create ~disks ~block_size:block_words ~blocks_per_disk:superblocks ()
  in
  let bt =
    Btree.create ~machine:bt_machine
      { Btree.universe; value_bytes; cache_levels = 0; superblocks }
  in
  Array.iter (fun k -> Btree.insert bt k (payload k)) keys;
  let cfg =
    Basic.plan ~universe ~capacity:n ~block_words ~degree:disks ~value_bytes
      ~seed ()
  in
  let d_machine =
    Pdm.create ~disks ~block_size:block_words
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let dict = Basic.create ~machine:d_machine ~disk_offset:0 ~block_offset:0 cfg in
  Basic.bulk_load dict (Array.map (fun k -> (k, payload k)) keys);
  (* A Zipf-skewed lookup trace (hot keys repeat: cache-friendly). *)
  let z = Zipf.create ~n ~s:zipf in
  let trace = Array.init lookups (fun _ -> keys.(Zipf.sample z rng)) in
  (* Replay address traces through LRU caches of varying size. *)
  let replay machine addrs_of cache_blocks =
    let cache = Cache.create machine ~capacity_blocks:cache_blocks in
    let before = Stats.snapshot (Pdm.stats machine) in
    Array.iter (fun k -> ignore (Cache.read cache (addrs_of k))) trace;
    let after = Stats.snapshot (Pdm.stats machine) in
    let ios =
      Stats.parallel_ios (Stats.diff ~after ~before)
    in
    let accesses = Cache.hits cache + Cache.misses cache in
    ( float_of_int ios /. float_of_int lookups,
      float_of_int (Cache.hits cache) /. float_of_int (max 1 accesses) )
  in
  let btree_addrs k =
    List.concat_map
      (fun sbi -> List.init disks (fun i -> { Pdm.disk = i; block = sbi }))
      (Btree.path bt k)
  in
  let dict_addrs k = Basic.addresses dict k in
  let points =
    List.map
      (fun cache_blocks ->
        let btree_io_per_lookup, btree_hit_rate =
          replay bt_machine btree_addrs cache_blocks
        in
        let dict_io_per_lookup, dict_hit_rate =
          replay d_machine dict_addrs cache_blocks
        in
        { cache_blocks; btree_io_per_lookup; dict_io_per_lookup;
          btree_hit_rate; dict_hit_rate })
      cache_sizes
  in
  { points; n; lookups;
    btree_height = Btree.height bt;
    total_blocks_btree = Btree.nodes bt * disks;
    total_blocks_dict = disks * Basic.blocks_per_disk cfg }

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf
         "Buffer caching — effective I/Os per lookup (n = %d, height %d \
          B-tree = %d blocks, dictionary = %d blocks)"
         r.n r.btree_height r.total_blocks_btree r.total_blocks_dict)
    ~header:
      [ "cache (blocks)"; "btree I/O"; "btree hit%"; "dict I/O"; "dict hit%" ]
    ~notes:
      [ "Zipf(0.9) lookups; the B-tree needs the cache to approach 1 I/O — \
         the dictionary starts there with none";
        "the dictionary's uniform spread means small caches cannot help it; \
         it also means it never needed them" ]
    (List.map
       (fun p ->
         [ Table.icell p.cache_blocks; Table.fcell p.btree_io_per_lookup;
           Printf.sprintf "%.0f%%" (100.0 *. p.btree_hit_rate);
           Table.fcell p.dict_io_per_lookup;
           Printf.sprintf "%.0f%%" (100.0 *. p.dict_hit_rate) ])
       r.points)
