(** Experiment E11: ablations over the design choices DESIGN.md calls
    out.

    Four studies:

    - {b tie-breaking} — Lemma 3's "breaking ties arbitrarily": the
      greedy scheme's max load under three tie rules;
    - {b v_factor} — Theorem 6's v = O(nd): how much right-side slack
      the peeling construction needs (rounds, and the failure point);
    - {b degree} — the D = Ω(log u) condition: the smallest expander
      degree at which the basic dictionary's buckets never overflow,
      as the universe grows;
    - {b adversarial keys} — clustered key sets (a contiguous window
      of the universe) against the seeded expander vs single-choice
      hashing by low bits, the pattern that breaks naive schemes. *)

type tie_point = { rule : string; max_load : int }

type vfactor_point = {
  v_factor : int;
  outcome : string;   (** "ok(rounds=r)" or "FAILED(left=…)" *)
  peel_rounds : int;  (** -1 on failure *)
}

type degree_point = {
  log2_universe : int;
  min_degree : int;   (** smallest d with no overflow at slack 1.25 *)
}

type adversarial_point = {
  pattern : string;
  expander_max_load : int;
  low_bits_max_load : int;  (** single choice by key mod v *)
}

type result = {
  ties : tie_point list;
  vfactors : vfactor_point list;
  degrees : degree_point list;
  adversarial : adversarial_point list;
}

val run : ?seed:int -> unit -> result

val to_tables : result -> Table.t list
