module Pdm = Pdm_sim.Pdm
module Basic = Pdm_dictionary.Basic_dict
module Btree = Pdm_baselines.Btree
module Fs = Pdm_workload.Fs_workload
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Summary = Pdm_util.Summary
module Stats = Pdm_sim.Stats

type point = {
  n : int;
  btree_height : int;
  btree_random_avg : float;
  btree_cached_avg : float;
  dict_random_avg : float;
  btree_scan_per_block : float;
  dict_scan_per_block : float;
  speedup_random : float;
}

type result = { points : point list }

let value_bytes = 8

let run ?(block_words = 32) ?(disks = 8) ?(seed = 3) ?(ns = [ 2000; 8000; 20000 ])
    () =
  let points =
    List.map
      (fun target_n ->
        let rng = Prng.create (seed + target_n) in
        let vol =
          Fs.generate ~rng ~files:(max 4 (target_n / 8))
            ~max_blocks_per_file:32
        in
        let keys = Fs.all_keys vol in
        let n = Array.length keys in
        let universe = Fs.universe vol in
        let payload = Common.value_bytes_of value_bytes in
        (* B-tree, uncached and root-cached, on separate machines. *)
        let mk_btree cache_levels =
          let superblocks = max 64 (4 * n / block_words) in
          let machine =
            Pdm.create ~disks ~block_size:block_words
              ~blocks_per_disk:superblocks ()
          in
          let t =
            Btree.create ~machine
              { Btree.universe; value_bytes; cache_levels; superblocks }
          in
          Array.iter (fun k -> Btree.insert t k (payload k)) keys;
          (machine, t)
        in
        let bt_machine, bt = mk_btree 0 in
        let btc_machine, btc = mk_btree 1 in
        (* Expander dictionary. *)
        let cfg =
          Basic.plan ~universe ~capacity:n ~block_words ~degree:disks
            ~value_bytes ~seed ()
        in
        let dmachine =
          Pdm.create ~disks ~block_size:block_words
            ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
        in
        let dict = Basic.create ~machine:dmachine ~disk_offset:0 ~block_offset:0 cfg in
        Array.iter (fun k -> Basic.insert dict k (payload k)) keys;
        (* Random reads over the volume. *)
        let reads = Fs.random_reads vol ~rng ~count:(min n 1000) in
        let c_bt =
          Common.per_op_cost (Pdm.stats bt_machine)
            (fun k -> ignore (Btree.find bt k))
            reads
        in
        let c_btc =
          Common.per_op_cost (Pdm.stats btc_machine)
            (fun k -> ignore (Btree.find btc k))
            reads
        in
        let c_dict =
          Common.per_op_cost (Pdm.stats dmachine)
            (fun k -> ignore (Basic.find dict k))
            reads
        in
        (* Sequential scan of the largest file. *)
        let largest =
          Array.fold_left
            (fun best f -> if f.Fs.blocks > best.Fs.blocks then f else best)
            (Fs.files vol).(0) (Fs.files vol)
        in
        let scan = Fs.sequential_scan vol ~file_id:largest.Fs.file_id in
        let blocks = float_of_int (Array.length scan) in
        let lo = scan.(0) and hi = scan.(Array.length scan - 1) in
        let (), scan_bt =
          Stats.measure (Pdm.stats btc_machine) (fun () ->
              ignore (Btree.range btc ~lo ~hi))
        in
        let (), scan_dict =
          Stats.measure (Pdm.stats dmachine) (fun () ->
              Array.iter (fun k -> ignore (Basic.find dict k)) scan)
        in
        let cached_avg = Summary.mean c_btc in
        let dict_avg = Summary.mean c_dict in
        { n;
          btree_height = Btree.height bt;
          btree_random_avg = Summary.mean c_bt;
          btree_cached_avg = cached_avg;
          dict_random_avg = dict_avg;
          btree_scan_per_block =
            float_of_int (Stats.parallel_ios scan_bt) /. blocks;
          dict_scan_per_block =
            float_of_int (Stats.parallel_ios scan_dict) /. blocks;
          speedup_random = cached_avg /. dict_avg })
      ns
  in
  { points }

let to_table r =
  Table.make
    ~title:"B-tree vs expander dictionary (file-system workload)"
    ~header:
      [ "n (blocks)"; "height"; "btree rnd"; "btree rnd (root cached)";
        "dict rnd"; "speedup"; "btree scan/blk"; "dict scan/blk" ]
    ~notes:
      [ "the introduction's claim: ~3 accesses vs 1 on random reads; \
         sequential scans are where the B-tree catches up" ]
    (List.map
       (fun p ->
         [ Table.icell p.n; Table.icell p.btree_height;
           Table.fcell p.btree_random_avg; Table.fcell p.btree_cached_avg;
           Table.fcell p.dict_random_avg; Table.fcell p.speedup_random;
           Table.fcell p.btree_scan_per_block;
           Table.fcell p.dict_scan_per_block ])
       r.points)
