module Semi = Pdm_expander.Semi_explicit
module Bipartite = Pdm_expander.Bipartite
module Expansion = Pdm_expander.Expansion
module Prng = Pdm_util.Prng

type point = {
  u : int;
  capacity : int;
  beta : float;
  levels : int;
  degree : int;
  right_size : int;
  v_over_nd : float;
  memory_words : int;
  memory_budget : float;
  eps_target : float;
  eps_measured : float;
  striped_v : int;
}

type result = { points : point list }

let default_sweep =
  [ (1 lsl 16, 32, 0.25); (1 lsl 18, 64, 0.25); (1 lsl 20, 128, 0.3);
    (1 lsl 20, 256, 0.3) ]

let run ?(seed = 19) ?(trials = 8) ?(sweep = default_sweep) () =
  let eps = 0.3 in
  let points =
    List.map
      (fun (u, capacity, beta) ->
        let t = Semi.construct ~seed ~capacity ~u ~beta ~eps in
        let rng = Prng.create (seed + capacity) in
        (* Probe at the graph's effective capacity: the composed object
           supports sets of about eps * v / d (Lemma 10's composed
           parameter), which can undershoot the requested N when the
           recursion overshoots — the v/(N d) column exposes this. *)
        let effective =
          int_of_float (eps *. float_of_int t.Semi.right_size)
          / max 1 t.Semi.degree
        in
        let probe = Pdm_util.Imath.clamp ~lo:2 ~hi:(max 2 capacity) (max 2 effective) in
        let eps_measured =
          Expansion.sampled_epsilon t.Semi.graph ~rng ~set_size:probe ~trials
        in
        { u; capacity; beta;
          levels = List.length t.Semi.levels;
          degree = t.Semi.degree;
          right_size = t.Semi.right_size;
          v_over_nd =
            float_of_int t.Semi.right_size
            /. float_of_int (capacity * t.Semi.degree);
          memory_words = t.Semi.memory_words;
          memory_budget = float_of_int capacity ** beta;
          eps_target = t.Semi.epsilon;
          eps_measured;
          striped_v = Bipartite.v (Semi.striped_for_pdm t) })
      sweep
  in
  { points }

let to_table r =
  Table.make
    ~title:"Section 5 — semi-explicit telescope-product expanders"
    ~header:
      [ "u"; "N"; "beta"; "levels"; "degree"; "v"; "v/(N d)"; "memory(w)";
        "N^beta"; "eps target"; "eps measured"; "striped v (x d)" ]
    ~notes:
      [ "memory is the modelled Corollary 1 preprocessing space; the budget \
         comparison is Theorem 12's O(N^beta) claim up to its hidden \
         constant and 1/eps^c factor";
        "striped v = d x v: the trivial striping cost the paper notes for \
         using these graphs in the PDM (the disk head model avoids it)" ]
    (List.map
       (fun p ->
         [ Table.icell p.u; Table.icell p.capacity; Table.fcell p.beta;
           Table.icell p.levels; Table.icell p.degree;
           Table.icell p.right_size; Table.fcell p.v_over_nd;
           Table.icell p.memory_words; Table.fcell p.memory_budget;
           Table.fcell p.eps_target; Table.fcell p.eps_measured;
           Table.icell p.striped_v ])
       r.points)
