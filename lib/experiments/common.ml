module Summary = Pdm_util.Summary
module Stats = Pdm_sim.Stats

let per_op_cost stats f keys =
  let s = Summary.create () in
  Array.iter
    (fun k ->
      let (), cost = Stats.measure stats (fun () -> f k) in
      Summary.add_int s (Stats.parallel_ios cost))
    keys;
  s

(* The shared deterministic payload generator (seed 99 is the
   historical experiment-suite default baked into golden outputs). *)
let value_bytes_of len k = Pdm_workload.Payload.value_bytes_of len k

let sigma_payload ~sigma_bits k =
  Pdm_workload.Payload.sigma_payload ~sigma_bits k

let avg = Summary.mean

let worst s = int_of_float (Summary.max s)
