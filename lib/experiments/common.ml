module Summary = Pdm_util.Summary
module Stats = Pdm_sim.Stats

let per_op_cost stats f keys =
  let s = Summary.create () in
  Array.iter
    (fun k ->
      let (), cost = Stats.measure stats (fun () -> f k) in
      Summary.add_int s (Stats.parallel_ios cost))
    keys;
  s

let value_bytes_of len k =
  Bytes.init len (fun i -> Char.chr (Pdm_util.Prng.hash2 ~seed:99 k i land 0xff))

let sigma_payload ~sigma_bits k = value_bytes_of ((sigma_bits + 7) / 8) k

let avg = Summary.mean

let worst s = int_of_float (Summary.max s)
