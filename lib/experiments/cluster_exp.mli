(** Experiment E20: the sharded placement tier.

    A cluster of S shard machines fronts the paper's dictionaries:
    deterministic weighted-rendezvous placement routes every key to r
    replica shards in distinct failure domains, and topology changes
    move a provably bounded set of keys. This experiment measures the
    four claims end to end:

    - {b balance}: primaries of 10⁵ keys over six shards with 2:1
      weights land within 1.15× of each shard's weight share;
    - {b bounded movement}: adding one shard to S moves ≤ 1.5× the
      optimal N/(S+1) keys — checked on a pure 10⁵-key plan and on an
      executed migration over a live cluster (which must also still
      answer every key afterwards);
    - {b availability}: with r = 2 and one of six shards killed, every
      key still answers from its surviving replica;
    - {b crash safety}: a grid of ≥ 100 (move index × journal crash
      point) schedules injected into a live migration, each followed
      by recovery, produces zero divergences from the expected
      contents. *)

type result = {
  placement_keys : int;       (** balance sample size *)
  shards : int;               (** shards in the weighted topology *)
  weighted_ratio : float;     (** max over shards of load / weight share *)
  balance_ok : bool;          (** ratio <= 1.15 *)
  plan_moved : int;           (** pure-plan moved keys on add-shard *)
  plan_optimal : int;         (** N/(S+1) *)
  plan_within_bound : bool;   (** moved <= 1.5x optimal *)
  exec_keys : int;            (** live-cluster migration: stored keys *)
  exec_moved : int;
  exec_optimal : int;
  exec_within_bound : bool;
  exec_correct : bool;        (** full sweep after the migration *)
  migration_rounds : int;     (** honest parallel rounds the move cost *)
  kill_availability : float;  (** answered fraction after a shard kill *)
  kill_ok : bool;             (** = 1.0 *)
  failovers : int;            (** reads served by a non-primary *)
  crash_schedules : int;      (** (move index x crash point) grid size *)
  crash_fired : int;          (** schedules whose injected crash fired *)
  crash_divergences : int;
  crash_ok : bool;            (** >= 100 schedules, 0 divergences *)
}

val run :
  ?placement_keys:int ->
  ?n:int ->
  ?seed:int ->
  unit ->
  result

val to_table : result -> Table.t
