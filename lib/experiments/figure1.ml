module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Basic = Pdm_dictionary.Basic_dict
module Fragmented = Pdm_dictionary.Fragmented
module Cascade = Pdm_dictionary.Dynamic_cascade
module Hash_table = Pdm_baselines.Hash_table
module Cuckoo = Pdm_baselines.Cuckoo
module Two_level = Pdm_baselines.Two_level
module Codec = Pdm_dictionary.Codec
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Summary = Pdm_util.Summary

type row = {
  name : string;
  paper_lookup : string;
  paper_update : string;
  lookup_avg : float;
  lookup_worst : int;
  update_avg : float;
  update_worst : int;
  bandwidth_bits : int;
  disks : int;
  deterministic : bool;
}

type result = { rows : row list; n : int; block_words : int }

(* Measure a structure: insert all members (recording per-insert
   cost), then look up all members (per-lookup cost). *)
let drive stats ~insert ~find members =
  let ins = Common.per_op_cost stats (fun k -> insert k) members in
  let look = Common.per_op_cost stats (fun k -> ignore (find k)) members in
  (ins, look)

let mk_row ~name ~paper_lookup ~paper_update ~bandwidth_bits ~disks
    ~deterministic (ins, look) =
  { name; paper_lookup; paper_update;
    lookup_avg = Common.avg look; lookup_worst = Common.worst look;
    update_avg = Common.avg ins; update_worst = Common.worst ins;
    bandwidth_bits; disks; deterministic }

let run ?(n = 1000) ?(universe = 1 lsl 22) ?(block_words = 64) ?(seed = 42)
    ?factory () =
  let rng = Prng.create seed in
  let members = Sampling.distinct rng ~universe ~count:n in
  let val8 = Common.value_bytes_of 8 in
  let rows = ref [] in
  let push r = rows := r :: !rows in

  (* Row: hashing with striping (the "Hashing, no overflow" row; also
     stands in for [7], which has the same O(1)-whp profile). *)
  let disks = 8 in
  (let cfg =
     Hash_table.plan ~universe ~capacity:n ~block_words ~disks ~value_bytes:8
       ~seed ()
   in
   let machine =
     Pdm.create ?factory ~disks ~block_size:block_words
       ~blocks_per_disk:cfg.Hash_table.superblocks ()
   in
   let h = Hash_table.create ~machine cfg in
   let costs =
     drive (Pdm.stats machine)
       ~insert:(fun k -> Hash_table.insert h k (val8 k))
       ~find:(Hash_table.find h) members
   in
   let log_n = max 2 (Pdm_util.Imath.ceil_log2 n) in
   push
     (mk_row ~name:"hashing, striped (whp rows)" ~paper_lookup:"1 whp"
        ~paper_update:"2 whp"
        ~bandwidth_bits:(disks * block_words / log_n * Codec.bits_per_word)
        ~disks ~deterministic:false costs));

  (* Row: Section 4.1 basic dictionary. *)
  (let cfg =
     Basic.plan ~universe ~capacity:n ~block_words ~degree:disks
       ~value_bytes:8 ~seed ()
   in
   let machine =
     Pdm.create ?factory ~disks ~block_size:block_words
       ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
   in
   let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
   let costs =
     drive (Pdm.stats machine)
       ~insert:(fun k -> Basic.insert d k (val8 k))
       ~find:(Basic.find d) members
   in
   push
     (mk_row ~name:"Section 4.1 (basic, D = Omega(log u))" ~paper_lookup:"1"
        ~paper_update:"2"
        ~bandwidth_bits:((block_words - 1) * Codec.bits_per_word)
        ~disks ~deterministic:true costs));

  (* Row: Section 4.1 with satellite data, k = d/2 — bandwidth
     O(BD / log n). *)
  (let sigma_bits = 512 in
   let cfg =
     Fragmented.plan ~strategy:(`Average 2.5) ~universe ~capacity:n
       ~block_words ~degree:disks ~sigma_bits ~seed ()
   in
   let machine =
     Pdm.create ?factory ~disks ~block_size:block_words
       ~blocks_per_disk:(Fragmented.blocks_per_disk cfg) ()
   in
   let d = Fragmented.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
   let payload = Common.sigma_payload ~sigma_bits in
   let costs =
     drive (Pdm.stats machine)
       ~insert:(fun k -> Fragmented.insert d k (payload k))
       ~find:(Fragmented.find d) members
   in
   push
     (mk_row ~name:"Section 4.1 (k = d/2, B = Omega(log n))"
        ~paper_lookup:"1" ~paper_update:"2"
        ~bandwidth_bits:(Fragmented.bandwidth_bits d ~block_words)
        ~disks ~deterministic:true costs));

  (* Row: cuckoo hashing [13] — bandwidth BD/2, amortized expected
     updates. Run warmer (higher utilization) so evictions appear. *)
  (let cfg =
     Cuckoo.plan ~utilization:0.8 ~universe ~capacity:n ~block_words ~disks
       ~value_bytes:8 ~seed ()
   in
   let machine =
     Pdm.create ?factory ~disks ~block_size:block_words
       ~blocks_per_disk:cfg.Cuckoo.buckets ()
   in
   let c = Cuckoo.create ~machine cfg in
   let costs =
     drive (Pdm.stats machine)
       ~insert:(fun k -> Cuckoo.insert c k (val8 k))
       ~find:(Cuckoo.find c) members
   in
   push
     (mk_row ~name:"cuckoo hashing [13]" ~paper_lookup:"1"
        ~paper_update:"O(1) am.exp." ~bandwidth_bits:(Cuckoo.bandwidth_bits c)
        ~disks ~deterministic:false costs));

  (* Row: [7] + folklore trick — 1+e / 2+e average whp, bandwidth
     O(BD). *)
  (let cfg =
     Two_level.plan ~universe ~capacity:n ~block_words ~disks ~value_bytes:8
       ~seed ()
   in
   let machine =
     Pdm.create ?factory ~disks ~block_size:block_words
       ~blocks_per_disk:(Two_level.superblocks_needed cfg ~block_words ~disks)
       ()
   in
   let d = Two_level.create ~machine cfg in
   let costs =
     drive (Pdm.stats machine)
       ~insert:(fun k -> Two_level.insert d k (val8 k))
       ~find:(Two_level.find d) members
   in
   push
     (mk_row ~name:"[7] + trick (two-level)" ~paper_lookup:"1+e avg whp"
        ~paper_update:"2+e avg whp"
        ~bandwidth_bits:((disks * block_words - 1) * Codec.bits_per_word)
        ~disks ~deterministic:false costs));

  (* Row: Section 4.3 cascade — 1+e / 2+e average, deterministic. *)
  (let sigma_bits = 512 and epsilon = 0.5 and degree = 24 in
   let t =
     Cascade.create ?factory ~block_words
       { Cascade.universe; capacity = n; degree; sigma_bits; epsilon;
         v_factor = 3; seed }
   in
   let machine = Cascade.machine t in
   let payload = Common.sigma_payload ~sigma_bits in
   let costs =
     drive (Pdm.stats machine)
       ~insert:(fun k -> Cascade.insert t k (payload k))
       ~find:(Cascade.find t) members
   in
   let m = 2 * degree / 3 in
   let max_sigma = m * ((Codec.bits_per_word * block_words) - 4) in
   push
     (mk_row ~name:"Section 4.3 (cascade)" ~paper_lookup:"1+e avg"
        ~paper_update:"2+e avg" ~bandwidth_bits:max_sigma ~disks:(2 * degree)
        ~deterministic:true costs));

  { rows = List.rev !rows; n; block_words }

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf
         "Figure 1 — linear-space dictionaries, measured at n = %d, B = %d \
          words"
         r.n r.block_words)
    ~header:
      [ "method"; "lookup(paper)"; "lookup avg"; "lookup max";
        "update(paper)"; "update avg"; "update max"; "bandwidth(bits)";
        "disks"; "deterministic" ]
    ~notes:
      [ "update bounds include the read-before-write, so 2 is optimal";
        "bandwidth = satellite bits retrievable in one parallel I/O at this \
         geometry" ]
    (List.map
       (fun row ->
         [ row.name; row.paper_lookup; Table.fcell row.lookup_avg;
           Table.icell row.lookup_worst; row.paper_update;
           Table.fcell row.update_avg; Table.icell row.update_worst;
           Table.icell row.bandwidth_bits; Table.icell row.disks;
           (if row.deterministic then "yes" else "no") ])
       r.rows)

let find_row r prefix =
  List.find
    (fun row ->
      String.length row.name >= String.length prefix
      && String.sub row.name 0 (String.length prefix) = prefix)
    r.rows
