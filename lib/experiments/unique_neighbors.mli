(** Experiment E3: expansion and unique-neighbor lemmas (Lemmas 4–5).

    For seeded striped expanders at dictionary-relevant parameters
    (v = c·n·d), measures per sampled key set S:

    - ε̂(S) = 1 − |Γ(S)|/(d|S|) — the witnessed expansion deficiency;
    - |Φ(S)| against Lemma 4's (1 − 2ε̂)d|S|;
    - |S′| (λ = 1/3) against Lemma 5's (1 − 2ε̂/λ)|S|.

    Expected shape: ε̂ well under 1/12 at these sizes, both lemma
    inequalities holding with slack, |S′|/|S| ≥ 1/2 (the peeling
    guarantee behind Theorem 6's O(n) construction). *)

type point = {
  n : int;
  v : int;
  d : int;
  eps_worst : float;       (** worst ε̂ over trials *)
  phi_ratio_min : float;   (** min |Φ(S)| / ((1−2ε̂)d|S|) over trials *)
  s'_ratio_min : float;    (** min |S′| / |S| over trials *)
  lemma4_holds : bool;
  lemma5_holds : bool;
}

type result = { points : point list }

val run :
  ?universe:int -> ?seed:int -> ?trials:int ->
  ?sweep:(int * int * int) list -> unit -> result
(** [sweep] lists (n, v_factor, d). *)

val to_table : result -> Table.t
