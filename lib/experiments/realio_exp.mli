(** E22: real I/O — the batched-vs-unbatched crossover, measured in
    wall-clock time on the file backend.

    The simulator's round counts predict that committing journal
    batches amortizes the redo-log protocol; on real storage the same
    batching also amortizes the fsync barriers, which is where actual
    time goes. The experiment drives the same block updates through
    the write-ahead journal four ways (mem/file x unbatched/batched),
    checks all four end states are byte-identical, and reports the
    file backend's round ratio next to its wall-clock ratio — the
    measured crossover is that batching buys at least the order of
    magnitude the round counts promise. A committed-but-unapplied
    batch is then crashed, the directory reopened by a fresh machine,
    and the recovery replay timed. *)

type run = {
  label : string;  (** ["unbatched"] or ["batched"] *)
  backend : string;  (** ["mem"] or ["file"] *)
  updates : int;
  per_commit : int;  (** updates per [log_and_apply] call *)
  rounds : int;  (** machine rounds charged *)
  block_writes : int;
  wall_s : float;
  updates_per_s : float;
}

type result = {
  updates : int;
  batch : int;
  runs : run list;  (** mem/file x unbatched/batched *)
  states_agree : bool;  (** all four end states byte-identical *)
  rounds_ratio : float;  (** file: unbatched rounds / batched rounds *)
  wall_ratio : float;  (** file: unbatched wall / batched wall *)
  crossover : bool;
      (** [wall_ratio >= 10^floor(log10 rounds_ratio)] *)
  replay_blocks : int;
  replay_wall_s : float;
  replay_ok : bool;  (** recovery replayed and the batch is applied *)
}

val run : ?updates:int -> ?batch:int -> ?seed:int -> unit -> result
(** Defaults: 384 updates, 96 per batched commit, seed 42, 8 disks,
    B = 16 words. *)

val to_table : result -> Table.t
