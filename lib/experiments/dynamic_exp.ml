module Pdm = Pdm_sim.Pdm
module Cascade = Pdm_dictionary.Dynamic_cascade
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Summary = Pdm_util.Summary

type point = {
  epsilon : float;
  degree : int;
  levels : int;
  unsuccessful_avg : float;
  successful_avg : float;
  successful_bound : float;
  insert_avg : float;
  insert_bound : float;
  insert_worst : int;
  delete_avg : float;
  level1_fraction : float;
}

type result = { points : point list; n : int }

let degree_for epsilon =
  (* Smallest multiple of 3 exceeding 6(1 + 1/ɛ), so 2d/3 is exact. *)
  let floor_d = int_of_float (6.0 *. (1.0 +. (1.0 /. epsilon))) in
  Pdm_util.Imath.round_up_to ~multiple:3 (floor_d + 1)

let run ?(universe = 1 lsl 22) ?(block_words = 64) ?(sigma_bits = 256)
    ?(n = 600) ?(seed = 31) ?(epsilons = [ 1.0; 0.5; 0.25 ]) () =
  let points =
    List.map
      (fun epsilon ->
        let degree = degree_for epsilon in
        let t =
          Cascade.create ~block_words
            { Cascade.universe; capacity = n; degree; sigma_bits; epsilon;
              v_factor = 3; seed }
        in
        let machine = Cascade.machine t in
        let stats = Pdm.stats machine in
        let rng = Prng.create (seed + degree) in
        let members, absent = Sampling.disjoint_pair rng ~universe ~count:n in
        let payload = Common.sigma_payload ~sigma_bits in
        let ins =
          Common.per_op_cost stats (fun k -> Cascade.insert t k (payload k))
            members
        in
        let hit =
          Common.per_op_cost stats (fun k -> ignore (Cascade.find t k)) members
        in
        let miss =
          Common.per_op_cost stats (fun k -> ignore (Cascade.find t k)) absent
        in
        let level1 =
          Array.fold_left
            (fun acc k -> if Cascade.level_of t k = Some 1 then acc + 1 else acc)
            0 members
        in
        (* Deletions measured on a quarter of the keys (after the
           lookup measurements, so they do not disturb them). *)
        let victims = Array.sub members 0 (n / 4) in
        let del =
          Common.per_op_cost stats (fun k -> ignore (Cascade.delete t k))
            victims
        in
        { epsilon; degree; levels = Cascade.levels t;
          unsuccessful_avg = Summary.mean miss;
          successful_avg = Summary.mean hit;
          successful_bound = 1.0 +. epsilon;
          insert_avg = Summary.mean ins;
          insert_bound = 2.0 +. epsilon;
          insert_worst = Common.worst ins;
          delete_avg = Summary.mean del;
          level1_fraction = float_of_int level1 /. float_of_int n })
      epsilons
  in
  { points; n }

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf "Theorem 7 — dynamic cascade, n = %d (epsilon sweep)"
         r.n)
    ~header:
      [ "epsilon"; "d"; "levels"; "miss avg"; "hit avg"; "<= 1+e";
        "insert avg"; "<= 2+e"; "insert max"; "delete avg"; "level-1 frac" ]
    ~notes:
      [ "miss avg must be exactly 1 (membership answers in the first round)";
        "insert max is bounded by levels + 1: logarithmic, never linear" ]
    (List.map
       (fun p ->
         [ Table.fcell p.epsilon; Table.icell p.degree; Table.icell p.levels;
           Table.fcell p.unsuccessful_avg; Table.fcell p.successful_avg;
           Table.fcell p.successful_bound; Table.fcell p.insert_avg;
           Table.fcell p.insert_bound; Table.icell p.insert_worst;
           Table.fcell p.delete_avg; Table.fcell p.level1_fraction ])
       r.points)
