(** Experiment E2: the deterministic load balancing scheme (Lemma 3).

    Sweeps (n, v, d, k), measures the maximum bucket load of the
    greedy d-choice scheme on a seeded striped expander, and compares
    it with Lemma 3's closed-form bound (evaluated at ε = δ = 1/6,
    which the seeded graphs comfortably satisfy at these sizes — E3
    measures the actual ε) and with the single-choice and random
    d-choice baselines.

    Expected shape: greedy max ≤ bound everywhere; greedy ≈ average
    load + small additive term; single choice worse by a
    log v / log log v-style gap in the lightly loaded case. *)

type point = {
  n : int;
  v : int;
  d : int;
  k : int;
  average : float;           (** kn / v *)
  greedy_max : int;
  bound : float;             (** Lemma 3 at ε = δ = 1/6 *)
  single_choice_max : int;
  random_d_choice_max : int;
}

type result = { points : point list }

val run : ?universe:int -> ?seed:int -> ?sweep:(int * int * int * int) list ->
  unit -> result
(** [sweep] is a list of (n, v, d, k) configurations; a representative
    default covers the lightly and heavily loaded cases and k > 1. *)

val to_table : result -> Table.t
