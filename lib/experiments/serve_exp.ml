module Server = Pdm_server.Server
module Data_plane = Pdm_server.Data_plane
module Loadgen = Pdm_server.Loadgen
module Wire = Pdm_server.Wire
module Sim_gen = Pdm_simtest.Sim_gen

type variant = {
  domains : int;
  wrong : int;
  busy : int;
  unavailable : int;
  proto_errors : int;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  rounds : int;
  ios : int;
  peak_depth : int;
  digest : string;
  shard_stats : Wire.shard_stat list;
}

type result = {
  requests : int;
  shards : int;
  rate : float;
  kill_at : int;
  scrub_at : int;
  chaos_shard : int;
  single : variant;
  multi : variant;
  zero_wrong : bool;
  answers_identical : bool;
  ledgers_identical : bool;
}

(* One daemon lifetime: start on an ephemeral port with [domains]
   workers, drive the seeded open-loop stream over one connection
   (so every shard sees the generator's op order), kill a disk a
   third of the way in and scrub it back at two thirds, then stop. *)
let run_variant ~domains ~shards ~spec ~rate ~kill_at ~scrub_at
    ~chaos_shard =
  let plane =
    { Data_plane.default_config with
      Data_plane.shards;
      universe = spec.Sim_gen.universe;
      shard_capacity = max 64 (3 * spec.Sim_gen.key_count);
      value_bytes = spec.Sim_gen.value_bytes }
  in
  let t =
    Server.start { Server.default_config with Server.plane; domains }
  in
  let scenario =
    { Loadgen.spec; conns = 1; mode = Loadgen.Open_rate rate;
      events =
        [ (kill_at, Loadgen.Kill_disk { shard = chaos_shard; disk = 0 });
          (scrub_at, Loadgen.Scrub { shard = chaos_shard }) ] }
  in
  let r =
    Fun.protect ~finally:(fun () -> Server.stop t)
      (fun () ->
        Loadgen.run ~name:(Printf.sprintf "d%d" domains)
          ~port:(Server.port t) scenario)
  in
  let c = Server.counters t in
  { domains;
    wrong = r.Loadgen.wrong;
    busy = r.Loadgen.busy;
    unavailable = r.Loadgen.unavailable;
    proto_errors = r.Loadgen.proto_errors;
    p50_us = r.Loadgen.p50_us;
    p99_us = r.Loadgen.p99_us;
    p999_us = r.Loadgen.p999_us;
    rounds = r.Loadgen.rounds;
    ios = r.Loadgen.ios;
    peak_depth = c.Server.peak_depth;
    digest = r.Loadgen.answers_digest;
    shard_stats = r.Loadgen.shard_stats }

let run ?(n = 1200) ?(seed = 1) () =
  let shards = 4 in
  let rate = 20_000.0 in
  let kill_at = n / 3 and scrub_at = 2 * n / 3 in
  let chaos_shard = 1 in
  let spec =
    { Sim_gen.default with
      Sim_gen.seed; count = n; key_count = 192; universe = 1 lsl 20;
      dist = Sim_gen.Zipf_skew 1.1; value_bytes = 8;
      lookup_fraction = 0.55; delete_fraction = 0.2 }
  in
  let variant domains =
    run_variant ~domains ~shards ~spec ~rate ~kill_at ~scrub_at
      ~chaos_shard
  in
  let single = variant 1 in
  let multi = variant 2 in
  { requests = n; shards; rate; kill_at; scrub_at; chaos_shard;
    single; multi;
    zero_wrong = single.wrong = 0 && multi.wrong = 0;
    answers_identical = String.equal single.digest multi.digest;
    ledgers_identical = single.shard_stats = multi.shard_stats }

let to_table r =
  let b = function true -> "yes" | false -> "NO" in
  let vrow name f = [ name; f r.single; f r.multi ] in
  Table.make
    ~title:"E23: pdm-serve daemon under chaos"
    ~header:[ "metric"; "1 domain"; "2 domains" ]
    ~notes:
      [ Printf.sprintf
          "%d seeded open-loop ops (Zipf 1.1, %.0f req/s) over one TCP \
           connection against %d shards; disk 0 of shard %d is killed \
           before op %d and scrubbed back before op %d"
          r.requests r.rate r.shards r.chaos_shard r.kill_at r.scrub_at;
        "each shard is owned by one worker domain and mailboxes are \
         FIFO, so answers and per-shard round ledgers must be \
         byte-identical whatever the domain count; wall-clock \
         latencies are reporting only" ]
    [ vrow "wrong answers" (fun v -> Table.icell v.wrong);
      vrow "busy replies" (fun v -> Table.icell v.busy);
      vrow "unavailable replies" (fun v -> Table.icell v.unavailable);
      vrow "protocol errors" (fun v -> Table.icell v.proto_errors);
      vrow "p50 latency (us)" (fun v -> Table.fcell v.p50_us);
      vrow "p99 latency (us)" (fun v -> Table.fcell v.p99_us);
      vrow "p999 latency (us)" (fun v -> Table.fcell v.p999_us);
      vrow "rounds (all shards)" (fun v -> Table.icell v.rounds);
      vrow "blocks fetched" (fun v -> Table.icell v.ios);
      vrow "peak mailbox depth" (fun v -> Table.icell v.peak_depth);
      vrow "answers digest" (fun v -> v.digest);
      [ "zero wrong answers"; b r.zero_wrong; "" ];
      [ "answers byte-identical"; b r.answers_identical; "" ];
      [ "round ledgers identical"; b r.ledgers_identical; "" ] ]
