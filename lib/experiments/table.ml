type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~header ?(notes = []) rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Table.make: row width mismatch")
    rows;
  { title; header; rows; notes }

let print ?(out = Format.std_formatter) t =
  let cols = List.length t.header in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure t.header;
  List.iter measure t.rows;
  let pad i cell = Printf.sprintf "%-*s" widths.(i) cell in
  let render row = String.concat "  " (List.mapi pad row) in
  Format.fprintf out "@.== %s ==@." t.title;
  Format.fprintf out "%s@." (render t.header);
  Format.fprintf out "%s@."
    (String.concat "  "
       (List.mapi (fun i _ -> String.make widths.(i) '-') t.header));
  List.iter (fun row -> Format.fprintf out "%s@." (render row)) t.rows;
  List.iter (fun n -> Format.fprintf out "  note: %s@." n) t.notes;
  Format.fprintf out "@."

let fcell x =
  if Float.is_integer x && Float.abs x < 1e9 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3f" x

let icell = string_of_int

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let row cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (row t.header :: List.map row t.rows) ^ "\n"

let print_csv ?(out = Format.std_formatter) t =
  Format.fprintf out "%s@?" (to_csv t)
