module Pdm = Pdm_sim.Pdm
module Engine = Pdm_engine.Engine
module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling
module Imath = Pdm_util.Imath

type result = {
  queries : int;
  disks : int;
  unbatched_rounds : int;
  engine_rounds : int;
  bound_rounds : int;
  within_bound : bool;
  speedup : float;
  coalesced : int;
  blocks_fetched : int;
  mean_utilization : float;
  utilization_ok : bool;
  answers_match : bool;
  mean_latency : float;
  max_latency : int;
  healthy_r2_rounds : int;
  degraded_rounds : int;
  degraded_within_2x : bool;
  degraded_match : bool;
}

let payload_bytes = 8

let keys_and_data ~universe ~n ~seed =
  let rng = Prng.create seed in
  let members, _absent = Sampling.disjoint_pair rng ~universe ~count:n in
  let data =
    Array.map (fun k -> (k, Common.value_bytes_of payload_bytes k)) members
  in
  (members, data)

let workload ~members ~queries ~seed =
  let rng = Prng.create (seed + 7) in
  Array.init queries (fun _ -> members.(Prng.int rng (Array.length members)))

(* Run [keys] through a fresh engine over [ad] as one batch (the
   Theorem 2 setting: all P requests are concurrent), returning the
   engine and its outcomes (ticket order = submission order). *)
let engine_run ?max_batch (ad : Adapters.engine_adapter) keys =
  let max_batch =
    match max_batch with Some m -> m | None -> Array.length keys
  in
  let eng =
    Engine.create
      ~config:{ Engine.max_batch; deadline_rounds = 4; cache_blocks = 0 }
      ad.Adapters.engine_dict
  in
  Array.iter (fun k -> ignore (Engine.submit eng (Engine.Lookup k))) keys;
  Engine.drain eng;
  (eng, Engine.take_outcomes eng)

let run ?(universe = 1 lsl 22) ?(n = 2048) ?(queries = 4096) ?(degree = 16)
    ?(seed = 42) ?(killed_disk = 3) () =
  let members, data = keys_and_data ~universe ~n ~seed in
  let keys = workload ~members ~queries ~seed in
  let scale =
    { Adapters.default_scale with universe; capacity = n; seed }
  in
  (* Baseline: the unchanged per-key path, one request per round. *)
  let ad = Adapters.engine_one_probe_static ~scale ~degree ~data () in
  let machine = ad.Adapters.engine_dict.Engine.machine in
  let disks = Pdm.disks machine in
  let before = Pdm.rounds_total machine in
  let direct = Array.map ad.Adapters.direct_find keys in
  let unbatched_rounds = Pdm.rounds_total machine - before in
  (* Batched: same machine, same queries, through the engine. *)
  let eng, outcomes = engine_run ad keys in
  let stats = Engine.stats eng in
  let answers_match =
    List.length outcomes = Array.length keys
    && List.for_all2
         (fun o v -> o.Engine.value = v)
         outcomes (Array.to_list direct)
  in
  let bound_rounds =
    int_of_float (ceil (1.25 *. float_of_int (Imath.cdiv queries disks)))
  in
  let mean_latency =
    if stats.Engine.requests_served = 0 then 0.0
    else
      float_of_int stats.Engine.total_latency
      /. float_of_int stats.Engine.requests_served
  in
  (* Degraded: r = 2, one disk killed before the batch. The fault-free
     r = 2 run is the reference for the <= 2x overhead check. *)
  let ad2 = Adapters.engine_one_probe_static ~scale ~degree ~replicas:2 ~data () in
  let eng2, _ = engine_run ad2 keys in
  let healthy_r2_rounds = (Engine.stats eng2).Engine.rounds in
  let ad3 = Adapters.engine_one_probe_static ~scale ~degree ~replicas:2 ~data () in
  Pdm.kill_disk ad3.Adapters.engine_dict.Engine.machine killed_disk;
  let eng3, outcomes3 = engine_run ad3 keys in
  let degraded_rounds = (Engine.stats eng3).Engine.rounds in
  let degraded_match =
    List.length outcomes3 = Array.length keys
    && List.for_all2
         (fun o v -> o.Engine.value = v)
         outcomes3 (Array.to_list direct)
  in
  {
    queries;
    disks;
    unbatched_rounds;
    engine_rounds = stats.Engine.rounds;
    bound_rounds;
    within_bound = stats.Engine.rounds <= bound_rounds;
    speedup =
      (if stats.Engine.rounds = 0 then 0.0
       else float_of_int unbatched_rounds /. float_of_int stats.Engine.rounds);
    coalesced = stats.Engine.coalesced;
    blocks_fetched = stats.Engine.blocks_fetched;
    mean_utilization = Engine.mean_utilization eng;
    utilization_ok =
      Engine.mean_utilization eng >= 0.8 *. float_of_int disks;
    answers_match;
    mean_latency;
    max_latency = stats.Engine.max_latency;
    healthy_r2_rounds;
    degraded_rounds;
    degraded_within_2x = degraded_rounds <= 2 * healthy_r2_rounds;
    degraded_match;
  }

let to_table r =
  let b = function true -> "yes" | false -> "NO" in
  Table.make ~title:"E18: batched concurrent query engine (one-probe static)"
    ~header:[ "metric"; "value" ]
    ~notes:
      [ Printf.sprintf
          "bound: 1.25 * ceil(Q/D) = %d rounds; unbatched baseline serves \
           one lookup per round"
          r.bound_rounds;
        "degraded: r = 2, one disk killed before the batch; reference is \
         the fault-free r = 2 run" ]
    [ [ "queries (Q)"; Table.icell r.queries ];
      [ "disks (D)"; Table.icell r.disks ];
      [ "unbatched rounds"; Table.icell r.unbatched_rounds ];
      [ "engine rounds"; Table.icell r.engine_rounds ];
      [ "round bound"; Table.icell r.bound_rounds ];
      [ "within bound"; b r.within_bound ];
      [ "speedup"; Table.fcell r.speedup ];
      [ "coalesced fetches"; Table.icell r.coalesced ];
      [ "blocks fetched"; Table.icell r.blocks_fetched ];
      [ "mean utilization"; Table.fcell r.mean_utilization ];
      [ "utilization >= 0.8D"; b r.utilization_ok ];
      [ "answers match direct"; b r.answers_match ];
      [ "mean latency (rounds)"; Table.fcell r.mean_latency ];
      [ "max latency (rounds)"; Table.icell r.max_latency ];
      [ "healthy r=2 rounds"; Table.icell r.healthy_r2_rounds ];
      [ "degraded rounds"; Table.icell r.degraded_rounds ];
      [ "degraded <= 2x"; b r.degraded_within_2x ];
      [ "degraded answers match"; b r.degraded_match ] ]
