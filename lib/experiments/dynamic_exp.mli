(** Experiment E5: the dynamic cascade (Theorem 7), sweeping ɛ.

    For each performance parameter ɛ (with degree chosen to satisfy
    d > 6(1 + 1/ɛ)), inserts n keys and measures:

    - unsuccessful search cost (must be exactly 1 I/O);
    - successful search cost, average vs the 1 + ɛ bound;
    - insertion cost, average vs 2 + ɛ and worst case vs l + 1
      (logarithmic, never linear);
    - deletion cost (fields freed + membership entry dropped in one
      combined write round);
    - the fraction of keys resident at level 1 (first-fit success). *)

type point = {
  epsilon : float;
  degree : int;
  levels : int;
  unsuccessful_avg : float;
  successful_avg : float;
  successful_bound : float;   (** 1 + ɛ *)
  insert_avg : float;
  insert_bound : float;       (** 2 + ɛ *)
  insert_worst : int;
  delete_avg : float;
  level1_fraction : float;
}

type result = { points : point list; n : int }

val run :
  ?universe:int -> ?block_words:int -> ?sigma_bits:int -> ?n:int ->
  ?seed:int -> ?epsilons:float list -> unit -> result
(** Default ɛ sweep: 1.0, 0.5, 0.25. *)

val to_table : result -> Table.t
