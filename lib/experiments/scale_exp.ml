module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Basic = Pdm_dictionary.Basic_dict
module Cascade = Pdm_dictionary.Dynamic_cascade
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Clock = Pdm_util.Clock

type point = {
  structure : string;
  n : int;
  lookup_worst : int;
  lookup_bound : int;
  insert_worst : int;
  insert_bound : int;
  ops_per_sec : float;
  space_blocks : int;
  bound_violations : int;
}

type result = { points : point list }

let universe = 1 lsl 26

let measure_worst stats f keys =
  let worst = ref 0 and violations = ref 0 in
  fun ~bound ->
    Array.iter
      (fun k ->
        let (), c = Stats.measure stats (fun () -> f k) in
        let ios = Stats.parallel_ios c in
        if ios > !worst then worst := ios;
        if ios > bound then incr violations)
      keys;
    (!worst, !violations)

let run ?(seed = 91) ?(ns = [ 10_000; 40_000 ]) () =
  let points = ref [] in
  List.iter
    (fun n ->
      let rng = Prng.create (seed + n) in
      let keys = Sampling.distinct rng ~universe ~count:n in
      let payload = Common.value_bytes_of 8 in

      (* Basic dictionary: bounds 1 (lookup) and 2 (insert). *)
      (let cfg =
         Basic.plan ~universe ~capacity:n ~block_words:64 ~degree:8
           ~value_bytes:8 ~seed ()
       in
       let machine =
         Pdm.create ~disks:8 ~block_size:64
           ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
       in
       let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
       let stats = Pdm.stats machine in
       let ins_worst, ins_viol =
         measure_worst stats (fun k -> Basic.insert d k (payload k)) keys
           ~bound:2
       in
       let (lk_worst, lk_viol), dt =
         Clock.duration (fun () ->
             measure_worst stats (fun k -> ignore (Basic.find d k)) keys
               ~bound:1)
       in
       points :=
         { structure = "Section 4.1 basic"; n; lookup_worst = lk_worst;
           lookup_bound = 1; insert_worst = ins_worst; insert_bound = 2;
           ops_per_sec = float_of_int n /. Float.max 1e-9 dt;
           space_blocks = Pdm.allocated_blocks machine;
           bound_violations = ins_viol + lk_viol }
         :: !points);

      (* Cascade: bounds 2 (lookup) and levels + 1 (insert). *)
      (let t =
         Cascade.create ~block_words:64
           { Cascade.universe; capacity = n; degree = 15; sigma_bits = 128;
             epsilon = 1.0; v_factor = 3; seed }
       in
       let machine = Cascade.machine t in
       let stats = Pdm.stats machine in
       let sat = Common.sigma_payload ~sigma_bits:128 in
       let ins_bound = Cascade.levels t + 1 in
       let ins_worst, ins_viol =
         measure_worst stats (fun k -> Cascade.insert t k (sat k)) keys
           ~bound:ins_bound
       in
       let (lk_worst, lk_viol), dt =
         Clock.duration (fun () ->
             measure_worst stats (fun k -> ignore (Cascade.find t k)) keys
               ~bound:2)
       in
       points :=
         { structure = "Section 4.3 cascade"; n; lookup_worst = lk_worst;
           lookup_bound = 2; insert_worst = ins_worst; insert_bound = ins_bound;
           ops_per_sec = float_of_int n /. Float.max 1e-9 dt;
           space_blocks = Pdm.allocated_blocks machine;
           bound_violations = ins_viol + lk_viol }
         :: !points))
    ns;
  { points = List.rev !points }

let to_table r =
  Table.make ~title:"Scale — worst-case bounds verified per operation"
    ~header:
      [ "structure"; "n"; "lookup max"; "<= bound"; "insert max"; "<= bound";
        "violations"; "lookups/s (sim)"; "blocks used" ]
    ~notes:
      [ "every single operation is measured; 'violations' counts bound \
         breaches (must be 0)";
        "throughput is wall-clock through the simulator (CPU time), not a \
         disk-speed claim" ]
    (List.map
       (fun p ->
         [ p.structure; Table.icell p.n; Table.icell p.lookup_worst;
           Table.icell p.lookup_bound; Table.icell p.insert_worst;
           Table.icell p.insert_bound; Table.icell p.bound_violations;
           Printf.sprintf "%.0f" p.ops_per_sec; Table.icell p.space_blocks ])
       r.points)
