(** Experiment E12: the extension structures.

    Beyond-the-theorems measurements:

    - the Section 6 exploration ({!Pdm_dictionary.One_probe_dynamic}):
      worst-case 1-I/O lookups {e and} 2-I/O updates at full bandwidth,
      for (l+1)·d disks — compared head-to-head with the Section 4.3
      cascade on the same workload;
    - the small-block dictionary vs flat multi-block buckets at tiny
      B (the atomic-heap regime);
    - parallel instances: measured cost of a batch of c insertions
      (the Section 4 preamble's constant-batch claim);
    - the disk-head-model dictionary driven directly by a Section 5
      telescope-product expander, without striping copies. *)

type row = {
  name : string;
  metric : string;
  value : string;
}

type result = { rows : row list }

val run : ?seed:int -> unit -> result

val to_table : result -> Table.t
