(** Experiment E4: the one-probe static dictionary (Theorem 6).

    For both layouts (case (a): membership + unary-pointer retrieval
    on 2d disks; case (b): identifier fields on d disks), across a
    sweep of n:

    - every lookup — successful or not — must cost exactly one
      parallel I/O;
    - no false positives on keys outside S;
    - the measured construction I/O against the measured cost of one
      external sort of nd records (Theorem 6 promises a constant
      ratio), for {e both} of the paper's construction procedures (the
      direct O(n)-scan version and the sorting-based "improved" one);
    - peeling depth (the geometric decrease of Lemma 5);
    - space in bits against the Theorem 6 formulas. *)

type point = {
  case : string;
  construction : string;  (** "sorting" or "direct" *)
  n : int;
  lookups_all_single_io : bool;
  false_positives : int;
  construction_ios : int;
  sort_nd_ios : int;
  ratio : float;
  peel_rounds : int;
  internal_memory_peak : int;
  field_bits : int;
  space_bits : int;
  bits_per_key : float;
}

type result = { points : point list }

val run :
  ?universe:int -> ?block_words:int -> ?sigma_bits:int -> ?degree:int ->
  ?seed:int -> ?ns:int list -> unit -> result

val to_table : result -> Table.t
