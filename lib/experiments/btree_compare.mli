(** Experiment E7: B-tree vs expander dictionary (Sections 1 and 1.2).

    The introduction's claim: a B-tree lookup costs Θ(log_BD n)
    parallel I/Os (about 3 in realistic file systems once the root is
    cached), while the expander dictionary answers any random access
    in 1 — and striping alone cannot close the gap. This experiment
    sweeps n, measures both structures' random-read costs on the same
    file-system volume, and also runs a sequential whole-file scan,
    where the B-tree's leaf chain and caching make the gap
    negligible — matching the paper's caveat that the win is about
    {e random} access. *)

type point = {
  n : int;
  btree_height : int;
  btree_random_avg : float;       (** uncached *)
  btree_cached_avg : float;       (** top level cached *)
  dict_random_avg : float;
  btree_scan_per_block : float;   (** sequential scan, I/Os per block *)
  dict_scan_per_block : float;
  speedup_random : float;         (** cached B-tree avg / dict avg *)
}

type result = { points : point list }

val run :
  ?block_words:int -> ?disks:int -> ?seed:int -> ?ns:int list -> unit ->
  result

val to_table : result -> Table.t
