module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Cascade = Pdm_dictionary.Dynamic_cascade
module Opd = Pdm_dictionary.One_probe_dynamic
module Basic = Pdm_dictionary.Basic_dict
module Small = Pdm_dictionary.Small_block_dict
module Par = Pdm_dictionary.Parallel_instances
module Head = Pdm_dictionary.Head_model_dict
module Semi = Pdm_expander.Semi_explicit
module Bipartite = Pdm_expander.Bipartite
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Summary = Pdm_util.Summary

type row = {
  name : string;
  metric : string;
  value : string;
}

type result = { rows : row list }

let run ?(seed = 83) () =
  let universe = 1 lsl 22 in
  let rows = ref [] in
  let push name metric fmt = Printf.ksprintf (fun value -> rows := { name; metric; value } :: !rows) fmt in

  (* --- Section 6 exploration vs the cascade ----------------------- *)
  (let n = 400 and sigma_bits = 256 and degree = 9 in
   let rng = Prng.create seed in
   let members, absent = Sampling.disjoint_pair rng ~universe ~count:n in
   let payload = Common.sigma_payload ~sigma_bits in
   (* cascade at epsilon = 1 needs d > 12; use 15. *)
   let casc =
     Cascade.create ~block_words:64
       { Cascade.universe; capacity = n; degree = 15; sigma_bits;
         epsilon = 1.0; v_factor = 3; seed }
   in
   let opd =
     Opd.create ~block_words:64
       { Opd.universe; capacity = n; degree; sigma_bits; levels = 6;
         v_factor = 3; seed }
   in
   let worst_of stats f keys =
     Common.worst (Common.per_op_cost stats f keys)
   in
   let c_stats = Pdm.stats (Cascade.machine casc) in
   let o_stats = Pdm.stats (Opd.machine opd) in
   let c_ins = worst_of c_stats (fun k -> Cascade.insert casc k (payload k)) members in
   let o_ins = worst_of o_stats (fun k -> Opd.insert opd k (payload k)) members in
   let c_hit = worst_of c_stats (fun k -> ignore (Cascade.find casc k)) members in
   let o_hit = worst_of o_stats (fun k -> ignore (Opd.find opd k)) members in
   let c_miss = worst_of c_stats (fun k -> ignore (Cascade.find casc k)) absent in
   let o_miss = worst_of o_stats (fun k -> ignore (Opd.find opd k)) absent in
   push "cascade (Thm 7)" "worst lookup hit/miss; worst insert; disks"
     "%d/%d; %d; %d" c_hit c_miss c_ins (Pdm.disks (Cascade.machine casc));
   push "one-probe dynamic (Sec 6)" "worst lookup hit/miss; worst insert; disks"
     "%d/%d; %d; %d" o_hit o_miss o_ins (Opd.disks opd));

  (* --- tiny-B: flat multi-block buckets vs two-probe sub-blocks --- *)
  (let n = 500 and block_words = 6 in
   let rng = Prng.create (seed + 1) in
   let keys = Sampling.distinct rng ~universe ~count:n in
   let val8 = Common.value_bytes_of 8 in
   (* flat: find a feasible bucket_blocks *)
   let rec flat_cfg bb =
     match
       Basic.plan ~bucket_blocks:bb ~universe ~capacity:n ~block_words
         ~degree:8 ~value_bytes:8 ~seed ()
     with
     | cfg -> cfg
     | exception Invalid_argument _ -> flat_cfg (bb * 2)
   in
   let cfg = flat_cfg 1 in
   let fm =
     Pdm.create ~disks:8 ~block_size:block_words
       ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
   in
   let flat = Basic.create ~machine:fm ~disk_offset:0 ~block_offset:0 cfg in
   Array.iter (fun k -> Basic.insert flat k (val8 k)) keys;
   let flat_cost =
     Common.worst
       (Common.per_op_cost (Pdm.stats fm) (fun k -> ignore (Basic.find flat k)) keys)
   in
   let scfg =
     Small.plan ~universe ~capacity:n ~block_words ~degree:8 ~value_bytes:8
       ~seed ()
   in
   let sm =
     Pdm.create ~disks:8 ~block_size:block_words
       ~blocks_per_disk:(Small.blocks_per_disk scfg) ()
   in
   let small = Small.create ~machine:sm ~disk_offset:0 ~block_offset:0 scfg in
   Array.iter (fun k -> Small.insert small k (val8 k)) keys;
   let small_cost =
     Common.worst
       (Common.per_op_cost (Pdm.stats sm) (fun k -> ignore (Small.find small k)) keys)
   in
   push "flat buckets @ B=6 words" "lookup rounds (worst)" "%d (%d blocks/bucket)"
     flat_cost cfg.Basic.bucket_blocks;
   push "two-probe sub-blocks @ B=6 words" "lookup rounds (worst)" "%d" small_cost);

  (* --- parallel instances: batch insertions ------------------------ *)
  (let t =
     Par.create
       { Par.instances = 4; universe; capacity = 400; degree = 6;
         value_bytes = 8; block_words = 64; seed }
   in
   let rng = Prng.create (seed + 2) in
   let keys = Sampling.distinct rng ~universe ~count:400 in
   let machine = Par.machine t in
   let costs = Summary.create () in
   let i = ref 0 in
   while !i + 4 <= 400 do
     let batch = List.init 4 (fun j -> (keys.(!i + j), Common.value_bytes_of 8 keys.(!i + j))) in
     let (), c = Stats.measure (Pdm.stats machine) (fun () -> Par.insert_batch t batch) in
     Summary.add_int costs (Stats.parallel_ios c);
     i := !i + 4
   done;
   push "parallel instances (c = 4)" "I/Os per 4-key batch (avg; worst)"
     "%.2f; %d" (Summary.mean costs) (Common.worst costs);
   let lk =
     Common.per_op_cost (Pdm.stats machine) (fun k -> ignore (Par.find t k)) keys
   in
   push "parallel instances (c = 4)" "lookup I/Os (worst)" "%d" (Common.worst lk));

  (* --- related work [5]: bitvector membership ----------------------- *)
  (let module Bv = Pdm_dictionary.Bitvector_membership in
   let n = 400 and degree = 8 and v_factor = 4 in
   let rng = Prng.create (seed + 4) in
   let members, absent = Sampling.disjoint_pair rng ~universe ~count:n in
   let blocks =
     Bv.blocks_per_disk_needed ~universe ~degree ~v_factor ~block_words:64 ~n
   in
   let machine =
     Pdm.create ~disks:degree ~block_size:64 ~blocks_per_disk:(max 1 blocks) ()
   in
   let bv =
     Bv.build ~machine ~disk_offset:0 ~block_offset:0 ~universe ~degree
       ~v_factor ~seed:(seed + 5) members
   in
   let fns =
     Array.fold_left (fun a k -> if Bv.mem bv k then a else a + 1) 0 members
   in
   let fps =
     Array.fold_left (fun a k -> if Bv.mem bv k then a + 1 else a) 0 absent
   in
   push "bitvector membership [5]" "bits/key; false neg; false pos (of 400)"
     "%d; %d; %d" (Bv.space_bits bv / n) fns fps);

  (* --- Theorem 7's case (b) dynamization ---------------------------- *)
  (let module Cb = Pdm_dictionary.Dynamic_cascade_b in
   let n = 300 in
   let t =
     Cb.create ~block_words:64
       { Cb.universe; capacity = n; degree = 15; sigma_bits = 256;
         epsilon = 1.0; v_factor = 3; seed = seed + 6 }
   in
   let rng = Prng.create (seed + 7) in
   let members, absent = Sampling.disjoint_pair rng ~universe ~count:n in
   let payload = Common.sigma_payload ~sigma_bits:256 in
   Array.iter (fun k -> Cb.insert t k (payload k)) members;
   let machine = Cb.machine t in
   let hit =
     Summary.mean
       (Common.per_op_cost (Pdm.stats machine)
          (fun k -> ignore (Cb.find t k))
          members)
   in
   let miss =
     Summary.mean
       (Common.per_op_cost (Pdm.stats machine)
          (fun k -> ignore (Cb.find t k))
          absent)
   in
   push "cascade case (b) (Thm 7 remark)" "hit avg; miss avg; disks"
     "%.3f; %.0f; %d" hit miss (Pdm.disks machine));

  (* --- head model + Section 5 expander ----------------------------- *)
  (let u5 = 1 lsl 20 in
   let s = Semi.construct ~seed ~capacity:128 ~u:u5 ~beta:0.3 ~eps:0.3 in
   let graph = s.Semi.graph in
   (* One head per graph edge endpoint: D = d gives 1-round lookups. *)
   let disks = Bipartite.d graph in
   let machine =
     Pdm.create ~model:Pdm.Parallel_heads ~disks ~block_size:64
       ~blocks_per_disk:(Pdm_util.Imath.cdiv (Bipartite.v graph) disks) ()
   in
   let t = Head.create ~machine ~graph ~capacity:32 ~value_bytes:8 in
   let rng = Prng.create (seed + 3) in
   let keys = Sampling.distinct rng ~universe:u5 ~count:32 in
   Array.iter (fun k -> Head.insert t k (Common.value_bytes_of 8 k)) keys;
   let lk =
     Common.per_op_cost (Pdm.stats machine) (fun k -> ignore (Head.find t k)) keys
   in
   push "head model + Sec 5 expander" "lookup rounds (worst); space copies"
     "%d; 1x (vs %dx trivially striped)" (Common.worst lk) (Bipartite.d graph));

  { rows = List.rev !rows }

let to_table r =
  Table.make ~title:"Extensions — beyond the paper's theorems"
    ~header:[ "structure"; "metric"; "measured" ]
    ~notes:
      [ "one-probe dynamic: Section 6's open problem answered by adding \
         disks (one group per level)";
        "head model rows need no striping copies — the Section 5 remark" ]
    (List.map (fun row -> [ row.name; row.metric; row.value ]) r.rows)
