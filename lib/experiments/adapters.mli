(** Uniform closures over every dictionary, for experiments that drive
    many structures through identical workloads (E14 real-time
    percentiles, soak tests). Each constructor builds the structure on
    its own machine at a common (universe, capacity, block size)
    scale; deletions are [None] where unsupported. *)

type t = {
  name : string;
  deterministic : bool;
  find : int -> Bytes.t option;
  insert : int -> Bytes.t -> unit;
  delete : (int -> bool) option;
  size : unit -> int;
  stats : Pdm_sim.Stats.t;
  value_bytes : int;  (** payload size this instance stores *)
}

type scale = {
  universe : int;
  capacity : int;
  block_words : int;
  seed : int;
}

val default_scale : scale
(** universe 2²², capacity 1000, B = 64 words, seed 42. *)

(** Constructors below taking [?factory] pass it to {!Pdm_sim.Pdm.create}
    so the structure's machine can run on a real-I/O storage backend
    (see {!Pdm_io.Store.factory}); omitted, storage is in memory. *)

val basic : ?scale:scale -> ?factory:int Pdm_sim.Backend.factory -> unit -> t
val small_block : ?scale:scale -> unit -> t
val cascade_b : ?scale:scale -> unit -> t
val parallel_instances : ?scale:scale -> unit -> t
val fragmented :
  ?scale:scale -> ?factory:int Pdm_sim.Backend.factory -> unit -> t
val cascade : ?scale:scale -> ?factory:int Pdm_sim.Backend.factory -> unit -> t
val one_probe_dynamic :
  ?scale:scale -> ?factory:int Pdm_sim.Backend.factory -> unit -> t
val global_rebuild : ?scale:scale -> unit -> t
val hash_table :
  ?scale:scale -> ?utilization:float -> ?value_bytes:int ->
  ?factory:int Pdm_sim.Backend.factory -> unit -> t
val cuckoo :
  ?scale:scale -> ?utilization:float -> ?value_bytes:int ->
  ?factory:int Pdm_sim.Backend.factory -> unit -> t
val two_level : ?scale:scale -> unit -> t
val btree : ?scale:scale -> ?factory:int Pdm_sim.Backend.factory -> unit -> t

val all : ?scale:scale -> unit -> t list
(** Every structure at moderate settings. *)

(** {2 Engine adapters}

    Probe-plan views of the dictionaries for the batched query engine
    ({!Pdm_engine.Engine}). [engine_dict.lookup] returns the probe
    plan + decode continuation; [direct_find] is the unchanged per-key
    path so experiments can check the engine's answers against it. *)

type engine_adapter = {
  engine_dict : Pdm_engine.Engine.dict;
  direct_find : int -> Bytes.t option;
}

val engine_one_probe_static :
  ?scale:scale -> ?replicas:int -> ?spares:int -> ?degree:int ->
  ?factory:int Pdm_sim.Backend.factory ->
  data:(int * Bytes.t) array -> unit -> engine_adapter
(** Section 4.2 case (b) on [degree] (default 16) disks; static, so
    [insert = None]. *)

val engine_one_probe_dynamic :
  ?scale:scale -> ?replicas:int -> ?spares:int ->
  ?factory:int Pdm_sim.Backend.factory -> unit -> engine_adapter
(** Section 6 exploration: one-probe plans, engine-served inserts. *)

val engine_cascade :
  ?scale:scale -> ?replicas:int -> ?spares:int ->
  ?factory:int Pdm_sim.Backend.factory -> unit -> engine_adapter
(** Section 4.3: a two-step plan (membership + A₁, then the landing
    level) — exercises the engine's multi-round continuations. *)
