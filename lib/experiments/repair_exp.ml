module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Basic = Pdm_dictionary.Basic_dict
module Codec = Pdm_dictionary.Codec
module Zipf = Pdm_util.Zipf
module Sampling = Pdm_util.Sampling
module Summary = Pdm_util.Summary
module Prng = Pdm_util.Prng

type phase = {
  name : string;
  avg_io : float;
  worst_io : int;
  overhead : float;  (* avg over the healthy phase's avg *)
  available : int;  (* lookups answered (no exception) *)
  correct : int;  (* ... with the right value *)
  total : int;
}

type result = {
  phases : phase list;
  scrub_corruption : Pdm.scrub_report;
  scrub_after_kill : Pdm.scrub_report;
  scrub_verify : Pdm.scrub_report;
  n : int;
  lookups : int;
  disks : int;
  replicas : int;
  spares : int;
  killed_disk : int;
  corrupted : int;
  remapped : int;
  all_available : bool;
  all_correct : bool;
  degraded_within_2x : bool;
  repair_ios : int;
}

let disks = 8
let block_words = 64
let value_bytes = 8
let replicas = 2
let spares = 1

(* E17: availability under disk death and silent corruption. One
   r=2-replicated, checksummed basic dictionary lives through the
   whole timeline — healthy lookups, latent corruption, a disk killed
   mid-workload, a scrub that re-replicates onto the hot spare, and a
   verification scrub — with every phase's lookups checked against
   the loaded payloads and every round charged by the scheduler. *)
let run ?(universe = 1 lsl 22) ?(n = 4_000) ?(lookups = 2_000) ?(seed = 47)
    ?(killed_disk = 2) ?(corrupted = 24) () =
  if killed_disk < 0 || killed_disk >= disks then
    invalid_arg "Repair_exp.run: killed_disk out of range";
  let rng = Prng.create seed in
  let keys = Sampling.distinct rng ~universe ~count:n in
  let payload = Common.value_bytes_of value_bytes in
  let z = Zipf.create ~n ~s:1.1 in
  let trace_keys = Array.init lookups (fun _ -> keys.(Zipf.sample z rng)) in
  let cfg =
    Basic.plan ~universe ~capacity:n ~block_words ~degree:disks ~value_bytes
      ~seed ()
  in
  let machine =
    Pdm.create ~disks ~block_size:block_words
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ~replicas ~spares
      ~integrity:Codec.Checksum.integrity ()
  in
  let dict = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
  Basic.bulk_load dict (Array.map (fun k -> (k, payload k)) keys);
  let healthy_avg = ref 0.0 in
  let phase name =
    let costs = Summary.create () in
    let available = ref 0 and correct = ref 0 in
    Array.iter
      (fun k ->
        match
          Stats.measure (Pdm.stats machine) (fun () -> Basic.find dict k)
        with
        | found, cost ->
          incr available;
          Summary.add_int costs (Stats.parallel_ios cost);
          if found = Some (payload k) then incr correct
        | exception
            ( Pdm_sim.Backend.Disk_failed _
            | Pdm_sim.Backend.Retries_exhausted _
            | Pdm_sim.Backend.Corrupt_block _ ) ->
          ())
      trace_keys;
    let avg = Summary.mean costs in
    if name = "healthy" then healthy_avg := avg;
    { name; avg_io = avg; worst_io = Common.worst costs;
      overhead = (if !healthy_avg > 0.0 then avg /. !healthy_avg else 1.0);
      available = !available; correct = !correct; total = lookups }
  in
  let healthy = phase "healthy" in
  (* Latent sector rot on a disk that will survive: replica 0 of the
     first [corrupted] allocated blocks there. Lookups must detect the
     bad checksum and fail over to replica 1. *)
  let damage_disk = (killed_disk + 3) mod disks in
  let damaged = ref 0 in
  Pdm.iter_allocated machine (fun a _ ->
      if a.Pdm.disk = damage_disk && !damaged < corrupted then begin
        Pdm.damage_stored machine a ~replica:0;
        incr damaged
      end);
  let with_rot = phase "latent corruption" in
  (* The scrub catches the rot (lookups only detect what they touch)
     and repairs it in place from the surviving replica. *)
  let scrub_corruption = Pdm.scrub machine in
  (* A disk dies mid-workload: its platters (both block regions — its
     own replicas and its neighbors') are gone. Reads fail over to the
     surviving replica at <= 2x: its disk serves two blocks a round. *)
  Pdm.kill_disk machine killed_disk;
  let degraded = phase "1 disk killed" in
  let scrub_after_kill = Pdm.scrub machine in
  let repaired = phase "after scrub" in
  let scrub_verify = Pdm.scrub machine in
  let phases = [ healthy; with_rot; degraded; repaired ] in
  let all p = List.for_all p phases in
  { phases;
    scrub_corruption;
    scrub_after_kill;
    scrub_verify;
    n;
    lookups;
    disks;
    replicas;
    spares;
    killed_disk;
    corrupted = !damaged;
    remapped = Pdm.remapped_replicas machine;
    all_available = all (fun p -> p.available = p.total);
    all_correct = all (fun p -> p.correct = p.total);
    degraded_within_2x = degraded.overhead <= 2.0 +. 1e-9;
    repair_ios =
      scrub_after_kill.Pdm.scan_rounds + scrub_after_kill.Pdm.repair_rounds }

let pp_scrub (r : Pdm.scrub_report) =
  Printf.sprintf
    "%d blocks: %d intact, %d corrupt, %d missing -> %d repaired (%d to \
     spares), %d unrepairable, %d lost; %d+%d rounds"
    r.Pdm.scanned_blocks r.Pdm.intact_replicas r.Pdm.corrupt_replicas
    r.Pdm.missing_replicas r.Pdm.repaired_replicas r.Pdm.remapped_replicas
    r.Pdm.unrepairable_replicas r.Pdm.lost_blocks r.Pdm.scan_rounds
    r.Pdm.repair_rounds

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf
         "Replication & repair — availability across disk death (n = %d, %d \
          Zipf lookups per phase, %d disks, r = %d, %d spare)"
         r.n r.lookups r.disks r.replicas r.spares)
    ~header:
      [ "phase"; "avg I/O"; "worst"; "x healthy"; "available"; "correct" ]
    ~notes:
      [ Printf.sprintf
          "%d replicas silently corrupted on disk %d, then disk %d killed \
           mid-workload"
          r.corrupted ((r.killed_disk + 3) mod r.disks) r.killed_disk;
        Printf.sprintf "scrub (rot):  %s" (pp_scrub r.scrub_corruption);
        Printf.sprintf "scrub (kill): %s" (pp_scrub r.scrub_after_kill);
        Printf.sprintf "scrub (verify): %s" (pp_scrub r.scrub_verify);
        Printf.sprintf
          "%d replicas now live on the spare disk; repair budget = %d \
           parallel I/Os"
          r.remapped r.repair_ios;
        (if r.degraded_within_2x then
           "degraded reads stayed within 2x: the surviving replica's disk \
            serves two blocks a round"
         else "DEGRADED READS EXCEEDED 2x") ]
    (List.map
       (fun p ->
         [ p.name; Table.fcell p.avg_io; Table.icell p.worst_io;
           Table.fcell p.overhead;
           Printf.sprintf "%d/%d" p.available p.total;
           Printf.sprintf "%d/%d" p.correct p.total ])
       r.phases)
