(** Experiment E16: fault injection — degradation and balance.

    Every bound in the paper is proved for ideal disks; this
    experiment measures what the deterministic dictionary {e does}
    when the disks are not ideal. The same Zipf lookup workload runs
    over the Section 4.1 dictionary on a healthy machine and on
    machines with a seeded fault schedule ({!Pdm_sim.Fault}):
    transient read errors that force retries, and a straggler disk
    whose transfers occupy k rounds each.

    Reported per scenario: average and worst parallel I/Os per lookup,
    the overhead factor over the fault-free run, the per-disk
    occupancy (max/mean — the load-balancing guarantee made visible
    per disk), transient retries actually charged, and whether every
    lookup still returned the correct value (it must: faults degrade
    cost, never correctness). *)

type point = {
  scenario : string;
  avg_io : float;
  worst_io : int;
  overhead : float;  (** avg_io / fault-free avg_io *)
  max_load : int;  (** per-disk blocks, lookup phase *)
  mean_load : float;
  retries : int;  (** transient failures re-issued *)
  correct : bool;  (** all lookups returned the right value *)
}

type result = {
  points : point list;
  n : int;
  lookups : int;
  transient_prob : float;
  straggle : int;
}

val run :
  ?universe:int ->
  ?n:int ->
  ?lookups:int ->
  ?seed:int ->
  ?transient_prob:float ->
  ?straggle:int ->
  unit ->
  result

val to_table : result -> Table.t
