module Stats = Pdm_sim.Stats
module Trace = Pdm_workload.Trace
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng
module Summary = Pdm_util.Summary

type row = {
  name : string;
  deterministic : bool;
  ops : int;
  p50 : float;
  p99 : float;
  p999 : float;
  worst : int;
}

type result = { rows : row list; trace_ops : int }

let default_structures scale =
  (* The baselines carry fat records (few slots per bucket) so their
     variance is visible — the regime where whp fails to mean always. *)
  [ Adapters.cascade ~scale ();
    Adapters.one_probe_dynamic ~scale ();
    Adapters.cuckoo ~scale ~utilization:0.8 ~value_bytes:200 ();
    Adapters.hash_table ~scale ~utilization:0.9 ~value_bytes:200 () ]

let run ?(scale = Adapters.default_scale) ?(trace_ops = 20_000) ?structures ()
    =
  let structures =
    match structures with Some s -> s | None -> default_structures scale
  in
  let rng = Prng.create (scale.Adapters.seed + 1) in
  let keys =
    Sampling.distinct rng ~universe:scale.Adapters.universe
      ~count:scale.Adapters.capacity
  in
  let rows =
    List.map
      (fun (a : Adapters.t) ->
        let payload k = Common.value_bytes_of a.Adapters.value_bytes k in
        (* Warm to ~2/3 of capacity, then serve the trace. *)
        let warm = Array.sub keys 0 (2 * Array.length keys / 3) in
        Array.iter (fun k -> a.Adapters.insert k (payload k)) warm;
        let trace_rng = Prng.create (scale.Adapters.seed + 2) in
        let ops =
          Trace.mixed ~rng:trace_rng ~keys ~count:trace_ops
            ~lookup_fraction:0.7 ~delete_fraction:0.33 ~value_of:payload
        in
        let lat = Summary.create () in
        let wrap f x =
          let r, c = Stats.measure a.Adapters.stats (fun () -> f x) in
          Summary.add_int lat (Stats.parallel_ios c);
          r
        in
        ignore
          (Trace.apply
             ~find:(wrap a.Adapters.find)
             ~insert:(fun k v -> wrap (fun k -> a.Adapters.insert k v) k)
             ~delete:(fun k ->
               match a.Adapters.delete with
               | Some d -> wrap d k
               | None -> false)
             ops);
        { name = a.Adapters.name; deterministic = a.Adapters.deterministic;
          ops = Summary.count lat;
          p50 = Summary.percentile lat 50.0;
          p99 = Summary.percentile lat 99.0;
          p999 = Summary.percentile lat 99.9;
          worst = int_of_float (Summary.max lat) })
      structures
  in
  { rows; trace_ops }

let to_table r =
  Table.make
    ~title:
      (Printf.sprintf
         "Real-time guarantees — per-op parallel-I/O latency over a %d-op \
          mixed trace"
         r.trace_ops)
    ~header:
      [ "structure"; "deterministic"; "p50"; "p99"; "p99.9"; "worst" ]
    ~notes:
      [ "the Section 1.2 argument: whp/amortized structures surrender the \
         tail; the deterministic ones bound it";
        "baselines run with fat records at 0.8-0.9 utilization — the \
         few-slots-per-bucket regime real systems drift into" ]
    (List.map
       (fun row ->
         [ row.name; (if row.deterministic then "yes" else "no");
           Table.fcell row.p50; Table.fcell row.p99; Table.fcell row.p999;
           Table.icell row.worst ])
       r.rows)
