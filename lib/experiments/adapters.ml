module Pdm = Pdm_sim.Pdm
module Engine = Pdm_engine.Engine
module Basic = Pdm_dictionary.Basic_dict
module Fragmented = Pdm_dictionary.Fragmented
module Cascade = Pdm_dictionary.Dynamic_cascade
module Opd = Pdm_dictionary.One_probe_dynamic
module Ops = Pdm_dictionary.One_probe_static
module Rebuild = Pdm_dictionary.Global_rebuild
module Hash_table = Pdm_baselines.Hash_table
module Cuckoo = Pdm_baselines.Cuckoo
module Two_level = Pdm_baselines.Two_level
module Btree = Pdm_baselines.Btree

type t = {
  name : string;
  deterministic : bool;
  find : int -> Bytes.t option;
  insert : int -> Bytes.t -> unit;
  delete : (int -> bool) option;
  size : unit -> int;
  stats : Pdm_sim.Stats.t;
  value_bytes : int;
}

type scale = {
  universe : int;
  capacity : int;
  block_words : int;
  seed : int;
}

let default_scale =
  { universe = 1 lsl 22; capacity = 1000; block_words = 64; seed = 42 }

let value_bytes = 8

let basic ?(scale = default_scale) ?factory () =
  let cfg =
    Basic.plan ~universe:scale.universe ~capacity:scale.capacity
      ~block_words:scale.block_words ~degree:8 ~value_bytes ~seed:scale.seed ()
  in
  let machine =
    Pdm.create ?factory ~disks:8 ~block_size:scale.block_words
      ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
  in
  let d = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
  { name = "basic (4.1)"; deterministic = true; find = Basic.find d;
    insert = Basic.insert d; delete = Some (Basic.delete d);
    size = (fun () -> Basic.size d); stats = Pdm.stats machine; value_bytes }

let small_block ?(scale = default_scale) () =
  let module Small = Pdm_dictionary.Small_block_dict in
  let cfg =
    Small.plan ~universe:scale.universe ~capacity:scale.capacity
      ~block_words:scale.block_words ~degree:8 ~value_bytes ~seed:scale.seed ()
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:scale.block_words
      ~blocks_per_disk:(Small.blocks_per_disk cfg) ()
  in
  let d = Small.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
  { name = "small-block (4.1)"; deterministic = true; find = Small.find d;
    insert = Small.insert d; delete = Some (Small.delete d);
    size = (fun () -> Small.size d); stats = Pdm.stats machine; value_bytes }

let cascade_b ?(scale = default_scale) () =
  let module Cb = Pdm_dictionary.Dynamic_cascade_b in
  let t =
    Cb.create ~block_words:scale.block_words
      { Cb.universe = scale.universe; capacity = scale.capacity; degree = 15;
        sigma_bits = 8 * value_bytes; epsilon = 1.0; v_factor = 3;
        seed = scale.seed }
  in
  { name = "cascade case (b)"; deterministic = true; find = Cb.find t;
    insert = Cb.insert t; delete = Some (Cb.delete t);
    size = (fun () -> Cb.size t); stats = Pdm.stats (Cb.machine t);
    value_bytes }

let parallel_instances ?(scale = default_scale) () =
  let module Par = Pdm_dictionary.Parallel_instances in
  let t =
    Par.create
      { Par.instances = 4; universe = scale.universe;
        capacity = scale.capacity; degree = 6; value_bytes;
        block_words = scale.block_words; seed = scale.seed }
  in
  { name = "parallel instances"; deterministic = true; find = Par.find t;
    insert = Par.insert t; delete = Some (Par.delete t);
    size = (fun () -> Par.size t); stats = Pdm.stats (Par.machine t);
    value_bytes }

let fragmented ?(scale = default_scale) ?factory () =
  let sigma_bits = 8 * value_bytes in
  let cfg =
    Fragmented.plan ~universe:scale.universe ~capacity:scale.capacity
      ~block_words:scale.block_words ~degree:8 ~sigma_bits ~seed:scale.seed ()
  in
  let machine =
    Pdm.create ?factory ~disks:8 ~block_size:scale.block_words
      ~blocks_per_disk:(Fragmented.blocks_per_disk cfg) ()
  in
  let d = Fragmented.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
  { name = "fragmented (4.1 k=d/2)"; deterministic = true;
    find = Fragmented.find d; insert = Fragmented.insert d;
    delete = Some (Fragmented.delete d);
    size = (fun () -> Fragmented.size d); stats = Pdm.stats machine;
    value_bytes }

let cascade ?(scale = default_scale) ?factory () =
  let t =
    Cascade.create ?factory ~block_words:scale.block_words
      { Cascade.universe = scale.universe; capacity = scale.capacity;
        degree = 15; sigma_bits = 8 * value_bytes; epsilon = 1.0;
        v_factor = 3; seed = scale.seed }
  in
  { name = "cascade (4.3)"; deterministic = true; find = Cascade.find t;
    insert = Cascade.insert t; delete = Some (Cascade.delete t);
    size = (fun () -> Cascade.size t); stats = Pdm.stats (Cascade.machine t);
    value_bytes }

let one_probe_dynamic ?(scale = default_scale) ?factory () =
  let t =
    Opd.create ?factory ~block_words:scale.block_words
      { Opd.universe = scale.universe; capacity = scale.capacity; degree = 9;
        sigma_bits = 8 * value_bytes; levels = 8; v_factor = 3;
        seed = scale.seed }
  in
  { name = "one-probe dynamic (6)"; deterministic = true; find = Opd.find t;
    insert = Opd.insert t; delete = Some (Opd.delete t);
    size = (fun () -> Opd.size t); stats = Pdm.stats (Opd.machine t);
    value_bytes }

let global_rebuild ?(scale = default_scale) () =
  let t =
    Rebuild.create
      { Rebuild.universe = scale.universe; degree = 8; value_bytes;
        block_words = scale.block_words; initial_capacity = 64;
        max_capacity = 4 * scale.capacity; transfer_per_op = 4;
        seed = scale.seed }
  in
  { name = "global rebuild"; deterministic = true; find = Rebuild.find t;
    insert = Rebuild.insert t; delete = Some (Rebuild.delete t);
    size = (fun () -> Rebuild.size t); stats = Pdm.stats (Rebuild.machine t);
    value_bytes }

let hash_table ?(scale = default_scale) ?(utilization = 0.5)
    ?(value_bytes = value_bytes) ?factory () =
  let cfg =
    Hash_table.plan ~utilization ~universe:scale.universe
      ~capacity:scale.capacity ~block_words:scale.block_words ~disks:8
      ~value_bytes ~seed:scale.seed ()
  in
  let machine =
    Pdm.create ?factory ~disks:8 ~block_size:scale.block_words
      ~blocks_per_disk:cfg.Hash_table.superblocks ()
  in
  let h = Hash_table.create ~machine cfg in
  { name = "hash table"; deterministic = false; find = Hash_table.find h;
    insert = Hash_table.insert h; delete = Some (Hash_table.delete h);
    size = (fun () -> Hash_table.size h); stats = Pdm.stats machine;
    value_bytes }

let cuckoo ?(scale = default_scale) ?(utilization = 0.4)
    ?(value_bytes = value_bytes) ?factory () =
  let cfg =
    Cuckoo.plan ~utilization ~universe:scale.universe
      ~capacity:scale.capacity ~block_words:scale.block_words ~disks:8
      ~value_bytes ~seed:scale.seed ()
  in
  let machine =
    Pdm.create ?factory ~disks:8 ~block_size:scale.block_words
      ~blocks_per_disk:cfg.Cuckoo.buckets ()
  in
  let c = Cuckoo.create ~machine cfg in
  { name = "cuckoo"; deterministic = false; find = Cuckoo.find c;
    insert = Cuckoo.insert c; delete = Some (Cuckoo.delete c);
    size = (fun () -> Cuckoo.size c); stats = Pdm.stats machine; value_bytes }

let two_level ?(scale = default_scale) () =
  let cfg =
    Two_level.plan ~universe:scale.universe ~capacity:scale.capacity
      ~block_words:scale.block_words ~disks:8 ~value_bytes ~seed:scale.seed ()
  in
  let machine =
    Pdm.create ~disks:8 ~block_size:scale.block_words
      ~blocks_per_disk:
        (Two_level.superblocks_needed cfg ~block_words:scale.block_words
           ~disks:8)
      ()
  in
  let d = Two_level.create ~machine cfg in
  { name = "two-level trick"; deterministic = false; find = Two_level.find d;
    insert = Two_level.insert d; delete = Some (Two_level.delete d);
    size = (fun () -> Two_level.size d); stats = Pdm.stats machine;
    value_bytes }

let btree ?(scale = default_scale) ?factory () =
  let superblocks = max 64 (8 * scale.capacity / scale.block_words) in
  let machine =
    Pdm.create ?factory ~disks:8 ~block_size:scale.block_words
      ~blocks_per_disk:superblocks ()
  in
  let t =
    Btree.create ~machine
      { Btree.universe = scale.universe; value_bytes; cache_levels = 0;
        superblocks }
  in
  { name = "b-tree"; deterministic = true; find = Btree.find t;
    insert = Btree.insert t; delete = Some (Btree.delete t);
    size = (fun () -> Btree.size t); stats = Pdm.stats machine; value_bytes }

(* --- engine adapters: probe-plan dictionaries for the batched query
   engine. The [dict] record carries the plan/decode split; [direct_find]
   is the unchanged per-key path, kept alongside so experiments can
   verify the engine returns identical answers. --- *)

type engine_adapter = {
  engine_dict : Engine.dict;
  direct_find : int -> Bytes.t option;
}

let engine_one_probe_static ?(scale = default_scale) ?(replicas = 1)
    ?(spares = 0) ?(degree = 16) ?factory ~data () =
  let cfg =
    { Ops.universe = scale.universe; capacity = Array.length data; degree;
      sigma_bits = 8 * value_bytes; v_factor = 3; case = Ops.Case_b;
      seed = scale.seed }
  in
  let t =
    Ops.build ?factory ~replicas ~spares ~block_words:scale.block_words cfg
      data
  in
  let lookup key =
    Engine.Fetch
      ( Ops.probe_addresses t key,
        fun blocks -> Engine.Done (Ops.find_in t key blocks) )
  in
  { engine_dict =
      { Engine.name = "one-probe static (4.2)"; machine = Ops.machine t;
        lookup; insert = None; delete = None };
    direct_find = Ops.find t }

let engine_one_probe_dynamic ?(scale = default_scale) ?(replicas = 1)
    ?(spares = 0) ?factory () =
  let t =
    Opd.create ?factory ~replicas ~spares ~block_words:scale.block_words
      { Opd.universe = scale.universe; capacity = scale.capacity; degree = 9;
        sigma_bits = 8 * value_bytes; levels = 8; v_factor = 3;
        seed = scale.seed }
  in
  let lookup key =
    Engine.Fetch
      ( Opd.probe_addresses t key,
        fun blocks -> Engine.Done (Opd.find_in t key blocks) )
  in
  { engine_dict =
      { Engine.name = "one-probe dynamic (6)"; machine = Opd.machine t;
        lookup; insert = Some (Opd.insert t); delete = Some (Opd.delete t) };
    direct_find = Opd.find t }

let engine_cascade ?(scale = default_scale) ?(replicas = 1) ?(spares = 0)
    ?factory () =
  let t =
    Cascade.create ?factory ~replicas ~spares ~block_words:scale.block_words
      { Cascade.universe = scale.universe; capacity = scale.capacity;
        degree = 15; sigma_bits = 8 * value_bytes; epsilon = 1.0;
        v_factor = 3; seed = scale.seed }
  in
  (* Two-phase plan: membership + A₁ first; a hit at a deeper level
     fetches that level's candidate blocks in a second step, which the
     engine coalesces with the rest of its batch. *)
  let lookup key =
    Engine.Fetch
      ( Cascade.first_round_addresses t key,
        fun blocks ->
          match Cascade.membership_in t key blocks with
          | None -> Engine.Done None
          | Some (1, head) ->
            Engine.Done (Cascade.decode_in t key ~level:1 ~head blocks)
          | Some (level, head) ->
            Engine.Fetch
              ( Cascade.level_addresses t key ~level,
                fun blocks2 ->
                  Engine.Done (Cascade.decode_in t key ~level ~head blocks2) )
      )
  in
  { engine_dict =
      { Engine.name = "cascade (4.3)"; machine = Cascade.machine t; lookup;
        insert = Some (Cascade.insert t); delete = Some (Cascade.delete t) };
    direct_find = Cascade.find t }

let all ?(scale = default_scale) () =
  [ basic ~scale (); small_block ~scale (); fragmented ~scale ();
    cascade ~scale (); cascade_b ~scale (); one_probe_dynamic ~scale ();
    parallel_instances ~scale (); global_rebuild ~scale ();
    hash_table ~scale (); cuckoo ~scale (); two_level ~scale ();
    btree ~scale () ]
