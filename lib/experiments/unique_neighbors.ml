module Seeded = Pdm_expander.Seeded
module Expansion = Pdm_expander.Expansion
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng

type point = {
  n : int;
  v : int;
  d : int;
  eps_worst : float;
  phi_ratio_min : float;
  s'_ratio_min : float;
  lemma4_holds : bool;
  lemma5_holds : bool;
}

type result = { points : point list }

let default_sweep = [ (200, 2, 8); (200, 3, 12); (1000, 2, 8); (1000, 3, 16) ]

let run ?(universe = 1 lsl 24) ?(seed = 5) ?(trials = 10)
    ?(sweep = default_sweep) () =
  let lambda = 1.0 /. 3.0 in
  let points =
    List.map
      (fun (n, v_factor, d) ->
        let v = v_factor * n * d in
        let graph = Seeded.striped ~seed ~u:universe ~v ~d in
        let rng = Prng.create (seed + n + d) in
        let eps_worst = ref 0.0 in
        let phi_ratio_min = ref infinity in
        let s'_ratio_min = ref infinity in
        let lemma4 = ref true and lemma5 = ref true in
        for _ = 1 to trials do
          let s = Sampling.distinct rng ~universe ~count:n in
          let eps = Expansion.epsilon_of_set graph s in
          if eps > !eps_worst then eps_worst := eps;
          let phi = float_of_int (Expansion.unique_neighbor_count graph s) in
          let phi_bound = (1.0 -. (2.0 *. eps)) *. float_of_int (d * n) in
          if phi < phi_bound then lemma4 := false;
          if phi_bound > 0.0 then
            phi_ratio_min := Float.min !phi_ratio_min (phi /. phi_bound);
          let s' =
            float_of_int
              (Array.length (Expansion.well_expanded_subset graph ~lambda s))
          in
          let s'_bound = (1.0 -. (2.0 *. eps /. lambda)) *. float_of_int n in
          if s' < s'_bound then lemma5 := false;
          s'_ratio_min := Float.min !s'_ratio_min (s' /. float_of_int n)
        done;
        { n; v; d; eps_worst = !eps_worst; phi_ratio_min = !phi_ratio_min;
          s'_ratio_min = !s'_ratio_min; lemma4_holds = !lemma4;
          lemma5_holds = !lemma5 })
      sweep
  in
  { points }

let to_table r =
  Table.make
    ~title:"Lemmas 4-5 — measured expansion and unique neighbors"
    ~header:
      [ "n"; "v"; "d"; "worst eps^"; "min phi/bound"; "min |S'|/|S|";
        "Lemma4"; "Lemma5" ]
    ~notes:
      [ "phi/bound >= 1 and Lemma4 = ok mean |Phi(S)| >= (1-2eps)d|S| held \
         on every trial";
        "|S'|/|S| >= 1/2 is the peeling guarantee used by Theorem 6's \
         construction" ]
    (List.map
       (fun p ->
         [ Table.icell p.n; Table.icell p.v; Table.icell p.d;
           Printf.sprintf "%.4f" p.eps_worst; Table.fcell p.phi_ratio_min;
           Table.fcell p.s'_ratio_min;
           (if p.lemma4_holds then "ok" else "VIOLATED");
           (if p.lemma5_holds then "ok" else "VIOLATED") ])
       r.points)
