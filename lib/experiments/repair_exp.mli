(** Experiment E17: replication, disk death and repair.

    PR 1 made faults observable and honestly charged; this experiment
    measures the {e survival} path. One Section 4.1 dictionary lives
    on an r = 2 replicated, checksummed machine with a hot spare
    ({!Pdm_sim.Pdm.create} [?replicas ?spares ?integrity]) and runs
    the same Zipf lookup workload through four phases:

    + {b healthy} — the replication baseline;
    + {b latent corruption} — stored replicas silently rotted
      ({!Pdm_sim.Pdm.damage_stored}); lookups must detect the bad
      checksum and fail over. A scrub then repairs the rot in place
      from the surviving replicas;
    + {b 1 disk killed} ({!Pdm_sim.Pdm.kill_disk}) mid-workload —
      lookups must stay 100% available with identical answers at a
      degraded-read overhead of at most 2×. A second scrub
      re-replicates the dead disk's blocks onto the spare;
    + {b after scrub} — costs return to the healthy baseline.

    A final verification scrub proves full replication was restored
    (nothing left to repair), and the report carries the repair I/O
    budget the kill-recovery scrub charged. *)

type phase = {
  name : string;
  avg_io : float;
  worst_io : int;
  overhead : float;  (** avg_io / healthy avg_io *)
  available : int;  (** lookups answered (no storage exception) *)
  correct : int;  (** ... with the right value *)
  total : int;
}

type result = {
  phases : phase list;
  scrub_corruption : Pdm_sim.Pdm.scrub_report;
      (** repaired the latent rot in place *)
  scrub_after_kill : Pdm_sim.Pdm.scrub_report;
      (** re-replicated the dead disk onto the spare *)
  scrub_verify : Pdm_sim.Pdm.scrub_report;  (** found nothing left *)
  n : int;
  lookups : int;
  disks : int;
  replicas : int;
  spares : int;
  killed_disk : int;
  corrupted : int;  (** replicas actually damaged *)
  remapped : int;  (** replicas living on the spare after repair *)
  all_available : bool;
  all_correct : bool;
  degraded_within_2x : bool;
      (** killed-disk phase averaged <= 2x the healthy cost *)
  repair_ios : int;  (** scan + repair rounds of the kill-recovery scrub *)
}

val run :
  ?universe:int ->
  ?n:int ->
  ?lookups:int ->
  ?seed:int ->
  ?killed_disk:int ->
  ?corrupted:int ->
  unit ->
  result

val to_table : result -> Table.t
