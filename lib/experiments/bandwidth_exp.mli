(** Experiment E10: bandwidth — satellite bits per single parallel I/O.

    Section 1.1 defines a method's bandwidth as the largest satellite
    size it can return in one parallel I/O. This experiment fixes the
    machine geometry (B, D) and, for each structure, reports its
    theoretical bandwidth at that geometry and {e verifies} it by
    storing satellites at a high fraction of the limit and measuring
    that successful lookups still cost the structure's stated I/O
    count.

    Expected shape at geometry (B, D): striped hashing and the
    two-level trick ≈ BD; cuckoo ≈ BD/2; Section 4.1 (k = d/2)
    ≈ BD/log n; Section 4.3 ≈ BD at 1+ɛ average I/O. *)

type point = {
  name : string;
  paper_bandwidth : string;
  bandwidth_bits : int;
  tested_sigma_bits : int;
  lookup_avg : float;
  lookup_ok : bool;     (** measured avg within the stated bound *)
}

type result = { points : point list; block_words : int; disks : int }

val run :
  ?universe:int -> ?n:int -> ?block_words:int -> ?disks:int -> ?seed:int ->
  unit -> result

val to_table : result -> Table.t
