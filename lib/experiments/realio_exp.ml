module Pdm = Pdm_sim.Pdm
module Journal = Pdm_sim.Journal
module Prng = Pdm_util.Prng
module Clock = Pdm_util.Clock
module Store = Pdm_io.Store

type run = {
  label : string;
  backend : string;
  updates : int;
  per_commit : int;
  rounds : int;
  block_writes : int;
  wall_s : float;
  updates_per_s : float;
}

type result = {
  updates : int;
  batch : int;
  runs : run list;
  states_agree : bool;
  rounds_ratio : float;
  wall_ratio : float;
  crossover : bool;
  replay_blocks : int;
  replay_wall_s : float;
  replay_ok : bool;
}

let disks = 8
let block_words = 16
let journal_capacity = 160

(* deterministic payload for update [i] — both strategies and both
   backends write the same cells, so end states must agree exactly *)
let payload ~seed i =
  Array.init block_words (fun j -> Some (Prng.hash2 ~seed i j))

let geometry ~updates =
  let jrows = Journal.rows ~disks ~capacity_blocks:journal_capacity in
  let data_rows = (updates + disks - 1) / disks in
  (jrows, jrows + data_rows)

let target ~jrows i =
  { Pdm.disk = i mod disks; block = jrows + (i / disks) }

(* Apply [updates] journaled block updates, [per_commit] per
   [log_and_apply] call. [per_commit = 1] is the unbatched strategy:
   every update pays the full redo-log protocol (log, commit header,
   apply, clear) and, on a real backend, its three fsync barriers. *)
let run_strategy ~label ~backend ~factory ~updates ~per_commit ~seed =
  let jrows, blocks_per_disk = geometry ~updates in
  let m =
    Pdm.create ?factory ~disks ~block_size:block_words ~blocks_per_disk ()
  in
  let jn =
    Journal.create m ~block_offset:0 ~capacity_blocks:journal_capacity
  in
  let batch_of lo hi =
    List.init (hi - lo) (fun k ->
        let i = lo + k in
        (target ~jrows i, payload ~seed i))
  in
  let rounds0 = Pdm.rounds_total m in
  let writes0 = (Pdm_sim.Stats.snapshot (Pdm.stats m)).block_writes in
  let (), wall_s =
    Clock.wall_duration (fun () ->
        let i = ref 0 in
        while !i < updates do
          let hi = min updates (!i + per_commit) in
          Journal.log_and_apply jn (batch_of !i hi);
          i := hi
        done)
  in
  let rounds = Pdm.rounds_total m - rounds0 in
  let block_writes =
    (Pdm_sim.Stats.snapshot (Pdm.stats m)).block_writes - writes0
  in
  let state =
    Array.init updates (fun i -> Pdm.read_one m (target ~jrows i))
  in
  ( { label; backend; updates; per_commit; rounds; block_writes; wall_s;
      updates_per_s =
        (if wall_s > 0. then float_of_int updates /. wall_s else 0.) },
    state )

(* Crash a committed-but-unapplied batch on the file backend, reopen
   the directory with a fresh machine (the "restarted process") and
   time the recovery replay. *)
let replay_timing ~updates ~batch ~seed =
  Store.with_dir ~prefix:"pdm-e22-replay" (fun dir ->
      let jrows, blocks_per_disk = geometry ~updates in
      let factory () = Store.factory (Store.spec ~dir Store.File) in
      let m =
        Pdm.create ~factory:(factory ()) ~disks ~block_size:block_words
          ~blocks_per_disk ()
      in
      let jn =
        Journal.create m ~block_offset:0 ~capacity_blocks:journal_capacity
      in
      let n = min batch updates in
      let batch_items =
        List.init n (fun i -> (target ~jrows i, payload ~seed i))
      in
      (match Journal.log_and_apply jn ~crash:Journal.After_commit batch_items
       with
       | () -> failwith "Realio_exp: injected crash did not fire"
       | exception Journal.Crashed -> ());
      let m2 =
        Pdm.create ~factory:(factory ()) ~disks ~block_size:block_words
          ~blocks_per_disk ()
      in
      let verdict, replay_wall_s =
        Clock.wall_duration (fun () ->
            Journal.recover m2 ~block_offset:0
              ~capacity_blocks:journal_capacity)
      in
      let replayed =
        match verdict with `Replayed k -> k | `Clean | `Discarded -> 0
      in
      let applied =
        List.for_all
          (fun (a, p) -> Pdm.read_one m2 a = p)
          batch_items
      in
      (replayed, replay_wall_s, replayed > 0 && applied))

let pow10_floor x = 10. ** Float.of_int (int_of_float (Float.log10 x))

let run ?(updates = 384) ?(batch = 96) ?(seed = 42) () =
  if updates < batch then invalid_arg "Realio_exp.run: updates >= batch";
  let strategy ~label ~backend ~factory ~per_commit =
    run_strategy ~label ~backend ~factory ~updates ~per_commit ~seed
  in
  let file () = Some (Store.factory (Store.spec Store.File)) in
  let mem_unb, s_mu =
    strategy ~label:"unbatched" ~backend:"mem" ~factory:None ~per_commit:1
  in
  let mem_bat, s_mb =
    strategy ~label:"batched" ~backend:"mem" ~factory:None ~per_commit:batch
  in
  let file_unb, s_fu =
    strategy ~label:"unbatched" ~backend:"file" ~factory:(file ())
      ~per_commit:1
  in
  let file_bat, s_fb =
    strategy ~label:"batched" ~backend:"file" ~factory:(file ())
      ~per_commit:batch
  in
  let states_agree =
    s_mu = s_mb && s_mu = s_fu && s_mu = s_fb
  in
  let rounds_ratio =
    float_of_int file_unb.rounds /. float_of_int (max 1 file_bat.rounds)
  in
  let wall_ratio =
    if file_bat.wall_s > 0. then file_unb.wall_s /. file_bat.wall_s else 0.
  in
  (* the measured crossover: batching must buy at least the order of
     magnitude the round counts promise *)
  let crossover = wall_ratio >= pow10_floor rounds_ratio in
  let replay_blocks, replay_wall_s, replay_ok =
    replay_timing ~updates ~batch ~seed
  in
  { updates; batch; runs = [ mem_unb; mem_bat; file_unb; file_bat ];
    states_agree; rounds_ratio; wall_ratio; crossover; replay_blocks;
    replay_wall_s; replay_ok }

let to_table r =
  let b = function true -> "yes" | false -> "NO" in
  let row (x : run) =
    [ x.backend; x.label; Table.icell x.per_commit; Table.icell x.rounds;
      Table.icell x.block_writes;
      Printf.sprintf "%.1f" (1e3 *. x.wall_s);
      Printf.sprintf "%.0f" x.updates_per_s ]
  in
  Table.make
    ~title:"E22: real I/O — journaled updates, batched vs unbatched"
    ~header:
      [ "backend"; "strategy"; "ops/commit"; "rounds"; "blk writes";
        "wall ms"; "updates/s" ]
    ~notes:
      [ Printf.sprintf
          "%d block updates through the write-ahead journal on %d disks \
           (B = %d words); unbatched commits every update alone, batched \
           commits %d at a time; each commit costs three fsync barriers \
           on the file backend"
          r.updates disks block_words r.batch;
        Printf.sprintf
          "file backend: %.1fx the rounds unbatched, %.1fx the wall \
           clock — crossover (wall ratio >= round ratio's order of \
           magnitude): %s; all four end states byte-identical: %s"
          r.rounds_ratio r.wall_ratio (b r.crossover) (b r.states_agree);
        Printf.sprintf
          "crash after commit, reopen, recover: replayed %d blocks in \
           %.2f ms (%s)"
          r.replay_blocks (1e3 *. r.replay_wall_s) (b r.replay_ok) ]
    (List.map row r.runs)
