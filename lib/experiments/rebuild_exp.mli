(** Experiment E9: global rebuilding overhead (§4 preamble).

    Grows a dictionary from a small initial capacity through several
    doublings under an insert/lookup/delete stream and reports the
    worst-case and average per-operation I/O, the rebuild count, and
    that lookups stay at one parallel I/O throughout — the paper's
    claim that full dynamization costs only constant factors. *)

type result = {
  operations : int;
  final_size : int;
  rebuilds : int;
  peak_capacity : int;
  capacity_after_purge : int;  (** after deleting ~95% of the keys *)
  insert_avg : float;
  insert_worst : int;
  lookup_avg : float;
  lookup_worst : int;
  delete_avg : float;
  delete_worst : int;
  baseline_insert_avg : float;  (** capacity-bounded Basic_dict inserts *)
  overhead_factor : float;      (** insert_avg / baseline_insert_avg *)
}

val run :
  ?universe:int -> ?block_words:int -> ?degree:int -> ?seed:int ->
  ?operations:int -> unit -> result

val to_table : result -> Table.t
