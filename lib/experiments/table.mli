(** Plain-text table rendering for experiment reports.

    Every experiment prints its results in the same aligned format so
    bench output reads like the paper's tables. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make : title:string -> header:string list -> ?notes:string list ->
  string list list -> t

val print : ?out:Format.formatter -> t -> unit
(** Render with column alignment, a rule under the header, and any
    notes below. Defaults to [Format.std_formatter]. *)

val to_csv : t -> string
(** RFC-4180-style CSV: header row then data rows (title and notes are
    omitted). Cells containing commas, quotes or newlines are
    quoted. *)

val print_csv : ?out:Format.formatter -> t -> unit

val fcell : float -> string
(** Format a float compactly (3 significant decimals). *)

val icell : int -> string
