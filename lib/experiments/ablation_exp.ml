module Pdm = Pdm_sim.Pdm
module Greedy = Pdm_loadbalance.Greedy
module Seeded = Pdm_expander.Seeded
module Basic = Pdm_dictionary.Basic_dict
module One_probe = Pdm_dictionary.One_probe_static
module Sampling = Pdm_util.Sampling
module Prng = Pdm_util.Prng

let value_words value_bytes = Pdm_dictionary.Codec.words_for_bits (8 * value_bytes)

type tie_point = { rule : string; max_load : int }

type vfactor_point = {
  v_factor : int;
  outcome : string;
  peel_rounds : int;
}

type degree_point = {
  log2_universe : int;
  min_degree : int;
}

type adversarial_point = {
  pattern : string;
  expander_max_load : int;
  low_bits_max_load : int;
}

type result = {
  ties : tie_point list;
  vfactors : vfactor_point list;
  degrees : degree_point list;
  adversarial : adversarial_point list;
}

(* --- tie-breaking --- *)

let tie_study ~seed =
  let universe = 1 lsl 22 and n = 8192 and v = 512 and d = 8 in
  let rng = Prng.create seed in
  let keys = Sampling.distinct rng ~universe ~count:n in
  List.map
    (fun (rule, tie) ->
      let graph = Seeded.striped ~seed ~u:universe ~v ~d in
      let lb = Greedy.create ~tie ~graph ~k:1 () in
      Greedy.insert_all lb keys;
      { rule; max_load = Greedy.max_load lb })
    [ ("first stripe", Greedy.First_stripe);
      ("last stripe", Greedy.Last_stripe);
      ("rotating", Greedy.Rotating) ]

(* --- v_factor for the one-probe construction --- *)

let vfactor_study ~seed =
  let universe = 1 lsl 22 and n = 400 and degree = 9 in
  let rng = Prng.create (seed + 1) in
  let members = Sampling.distinct rng ~universe ~count:n in
  let data = Array.map (fun k -> (k, Bytes.make 16 'x')) members in
  List.map
    (fun v_factor ->
      let cfg =
        { One_probe.universe; capacity = n; degree; sigma_bits = 128;
          v_factor; case = One_probe.Case_b; seed }
      in
      match One_probe.build ~block_words:64 cfg data with
      | t ->
        let r = One_probe.report t in
        { v_factor;
          outcome = Printf.sprintf "ok (%d rounds)" r.One_probe.peel_rounds;
          peel_rounds = r.One_probe.peel_rounds }
      | exception One_probe.Construction_failure left ->
        { v_factor; outcome = Printf.sprintf "FAILED (%d keys left)" left;
          peel_rounds = -1 })
    [ 1; 2; 3; 4; 6 ]

(* --- minimum degree at a fixed space budget --- *)

let degree_study ~seed =
  (* Hold the space fixed (load factor 0.8 in 5-slot one-block
     buckets) and find the smallest degree whose greedy placement
     never overflows. The paper's D = Omega(log u) condition
    concerns worst-case key sets; on sampled sets the threshold is
     flat in u — the whp behaviour of random(ized) constructions. *)
  let n = 1000 and block_words = 16 and value_bytes = 8 in
  let slots = block_words / (1 + value_words value_bytes) in
  (* load factor 0.8: buckets hold 5 records, average load 4 *)
  let total_buckets = n / (slots - 1) in
  List.map
    (fun log2_u ->
      let universe = 1 lsl log2_u in
      let rng = Prng.create (seed + log2_u) in
      let keys = Sampling.distinct rng ~universe ~count:n in
      let works d =
        if total_buckets mod d <> 0 && total_buckets / d < 1 then false
        else begin
          let w = max 1 (total_buckets / d) in
          let cfg =
            { Basic.universe; capacity = n; degree = d;
              buckets_per_stripe = w; value_bytes; bucket_blocks = 1;
              tombstone = false; seed }
          in
          let machine =
            Pdm.create ~disks:d ~block_size:block_words
              ~blocks_per_disk:(Basic.blocks_per_disk cfg) ()
          in
          let dict = Basic.create ~machine ~disk_offset:0 ~block_offset:0 cfg in
          (try
             Array.iter (fun k -> Basic.insert dict k (Bytes.make 8 'x')) keys;
             true
           with Basic.Overflow _ -> false)
        end
      in
      let rec search d = if d > 64 then d else if works d then d else search (d + 1) in
      { log2_universe = log2_u; min_degree = search 2 })
    [ 14; 18; 22; 26 ]

(* --- adversarial key sets --- *)

let adversarial_study ~seed =
  let universe = 1 lsl 22 and n = 4096 and v = 512 and d = 8 in
  let rng = Prng.create (seed + 2) in
  let run_pattern pattern keys =
    let graph = Seeded.striped ~seed ~u:universe ~v ~d in
    let lb = Greedy.create ~graph ~k:1 () in
    Greedy.insert_all lb keys;
    (* The naive deterministic alternative: bucket = key mod v. *)
    let low = Array.make v 0 in
    Array.iter (fun k -> low.(k mod v) <- low.(k mod v) + 1) keys;
    { pattern;
      expander_max_load = Greedy.max_load lb;
      low_bits_max_load = Array.fold_left max 0 low }
  in
  [ run_pattern "uniform keys" (Sampling.distinct rng ~universe ~count:n);
    run_pattern "clustered window"
      (Sampling.clustered rng ~universe ~count:n ~span:(2 * n));
    run_pattern "arithmetic progression (stride v)"
      (Array.init n (fun i -> (i * v) mod universe)) ]

let run ?(seed = 71) () =
  { ties = tie_study ~seed;
    vfactors = vfactor_study ~seed;
    degrees = degree_study ~seed;
    adversarial = adversarial_study ~seed }

let to_tables r =
  [ Table.make ~title:"Ablation: tie-breaking rule (n = 8192, v = 512, d = 8)"
      ~header:[ "rule"; "max load" ]
      ~notes:[ "Lemma 3 is tie-rule agnostic; so is the measurement" ]
      (List.map (fun p -> [ p.rule; Table.icell p.max_load ]) r.ties);
    Table.make ~title:"Ablation: one-probe right-side slack (v = v_factor * n * d)"
      ~header:[ "v_factor"; "construction" ]
      ~notes:
        [ "Theorem 6 needs v = O(nd) with a sufficient constant; the failure \
           row locates it empirically" ]
      (List.map (fun p -> [ Table.icell p.v_factor; p.outcome ]) r.vfactors);
    Table.make ~title:"Ablation: minimum degree vs universe (n = 1000)"
      ~header:[ "log2 u"; "min d with no overflow" ]
      ~notes:
        [ "space fixed at load factor 0.8 in one-block buckets";
          "worst-case sets need D = Omega(log u); sampled sets show the flat \
           whp threshold" ]
      (List.map
         (fun p -> [ Table.icell p.log2_universe; Table.icell p.min_degree ])
         r.degrees);
    Table.make ~title:"Ablation: adversarial key patterns (n = 4096, v = 512)"
      ~header:[ "pattern"; "expander greedy max"; "key mod v max" ]
      ~notes:
        [ "structured keys break naive deterministic placement; the expander \
           is pattern-oblivious" ]
      (List.map
         (fun p ->
           [ p.pattern; Table.icell p.expander_max_load;
             Table.icell p.low_bits_max_load ])
         r.adversarial) ]
