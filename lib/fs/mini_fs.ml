module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Basic = Pdm_dictionary.Basic_dict
module Fragmented = Pdm_dictionary.Fragmented

type config = {
  max_files : int;
  max_blocks : int;
  blocks_per_file : int;
  payload_bytes : int;
  block_words : int;
  disks_per_dict : int;
  seed : int;
}

let default_config =
  { max_files = 1024; max_blocks = 16_384; blocks_per_file = 256;
    payload_bytes = 256; block_words = 64; disks_per_dict = 8; seed = 1 }

type handle = { inode : int; name_key : int; mutable length : int }

type t = {
  cfg : config;
  names : Basic.t;           (* name key -> (inode, length) *)
  blocks : Fragmented.t;     (* inode * blocks_per_file + idx -> payload *)
  names_machine : int Pdm.t;
  blocks_machine : int Pdm.t;
  mutable next_inode : int;
  mutable live_blocks : int;
}

exception Fs_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Fs_error m)) fmt

(* File names of up to 7 bytes pack directly into a dictionary key —
   the paper's point that the name needs no separate inode translation
   structure. *)
let name_universe = 1 lsl 56

let key_of_name name =
  let len = String.length name in
  if len = 0 then fail "empty file name";
  if len > 7 then fail "file name %S too long (max 7 bytes)" name;
  let k = ref 0 in
  String.iter (fun c -> k := (!k lsl 8) lor Char.code c) name;
  !k

let meta_bytes = 16

let encode_meta ~inode ~length =
  let b = Bytes.create meta_bytes in
  Bytes.set_int64_be b 0 (Int64.of_int inode);
  Bytes.set_int64_be b 8 (Int64.of_int length);
  b

let decode_meta b =
  (Int64.to_int (Bytes.get_int64_be b 0), Int64.to_int (Bytes.get_int64_be b 8))

let format cfg =
  if cfg.max_files < 1 || cfg.max_blocks < 1 || cfg.blocks_per_file < 1 then
    invalid_arg "Mini_fs.format: sizes";
  let names_cfg =
    Basic.plan ~universe:name_universe ~capacity:cfg.max_files
      ~block_words:cfg.block_words ~degree:cfg.disks_per_dict
      ~value_bytes:meta_bytes ~seed:cfg.seed ()
  in
  let names_machine =
    Pdm.create ~disks:cfg.disks_per_dict ~block_size:cfg.block_words
      ~blocks_per_disk:(Basic.blocks_per_disk names_cfg) ()
  in
  let names =
    Basic.create ~machine:names_machine ~disk_offset:0 ~block_offset:0
      names_cfg
  in
  (* The block store carries whole file blocks — near the device's
     bandwidth limit — so it uses the fragmented k = d/2 dictionary:
     each payload is split across the d disks and still loads in one
     parallel I/O (the paper's bandwidth machinery, built for exactly
     this use). *)
  let blocks_cfg =
    Fragmented.plan ~strategy:(`Average 2.5)
      ~universe:(cfg.max_files * cfg.blocks_per_file)
      ~capacity:cfg.max_blocks ~block_words:cfg.block_words
      ~degree:cfg.disks_per_dict ~sigma_bits:(8 * cfg.payload_bytes)
      ~seed:(cfg.seed + 1) ()
  in
  let blocks_machine =
    Pdm.create ~disks:cfg.disks_per_dict ~block_size:cfg.block_words
      ~blocks_per_disk:(Fragmented.blocks_per_disk blocks_cfg) ()
  in
  let blocks =
    Fragmented.create ~machine:blocks_machine ~disk_offset:0 ~block_offset:0
      blocks_cfg
  in
  { cfg; names; blocks; names_machine; blocks_machine; next_inode = 0;
    live_blocks = 0 }

let machines t = [ t.names_machine; t.blocks_machine ]

let io_total t =
  List.fold_left
    (fun acc m -> acc + Stats.parallel_ios (Stats.snapshot (Pdm.stats m)))
    0 (machines t)

let file_count t = Basic.size t.names

let block_key t h idx = (h.inode * t.cfg.blocks_per_file) + idx

let handle_inode h = h.inode

let handle_length h = h.length

let create t name =
  let key = key_of_name name in
  if Basic.mem t.names key then fail "file %S exists" name;
  if Basic.size t.names >= t.cfg.max_files then fail "volume full (files)";
  let inode = t.next_inode in
  t.next_inode <- inode + 1;
  Basic.insert t.names key (encode_meta ~inode ~length:0);
  { inode; name_key = key; length = 0 }

let open_file t name =
  let key = key_of_name name in
  match Basic.find t.names key with
  | None -> None
  | Some meta ->
    let inode, length = decode_meta meta in
    Some { inode; name_key = key; length }

let write_block t h idx data =
  if Bytes.length data > t.cfg.payload_bytes then fail "payload too large";
  if idx < 0 || idx > h.length then
    fail "write at block %d would leave a hole (length %d)" idx h.length;
  if idx >= t.cfg.blocks_per_file then fail "file length limit reached";
  let appending = idx = h.length in
  if appending && t.live_blocks >= t.cfg.max_blocks then
    fail "volume full (blocks)";
  (* Short writes are padded to the block payload size, as on a real
     block device; reads return the whole padded block. *)
  let padded = Bytes.make t.cfg.payload_bytes '\000' in
  Bytes.blit data 0 padded 0 (Bytes.length data);
  Fragmented.insert t.blocks (block_key t h idx) padded;
  if appending then begin
    h.length <- h.length + 1;
    t.live_blocks <- t.live_blocks + 1;
    (* Persist the new length under the handle's name key. *)
    Basic.insert t.names h.name_key
      (encode_meta ~inode:h.inode ~length:h.length)
  end

let read_block t h idx =
  if idx < 0 || idx >= h.length then None
  else Fragmented.find t.blocks (block_key t h idx)

let append t h data =
  let idx = h.length in
  write_block t h idx data;
  idx

let delete t name =
  let key = key_of_name name in
  match Basic.find t.names key with
  | None -> false
  | Some meta ->
    let inode, length = decode_meta meta in
    let h = { inode; name_key = key; length } in
    for idx = 0 to length - 1 do
      ignore (Fragmented.delete t.blocks (block_key t h idx))
    done;
    t.live_blocks <- t.live_blocks - length;
    ignore (Basic.delete t.names key);
    true

let rename t ~old_name ~new_name =
  let old_key = key_of_name old_name in
  let new_key = key_of_name new_name in
  (match Basic.find t.names new_key with
   | Some _ -> fail "target %S exists" new_name
   | None -> ());
  match Basic.find t.names old_key with
  | None -> fail "no such file %S" old_name
  | Some meta ->
    Basic.insert t.names new_key meta;
    ignore (Basic.delete t.names old_key)

let stat t name =
  match Basic.find t.names (key_of_name name) with
  | None -> None
  | Some meta -> Some (snd (decode_meta meta))

let files t =
  List.filter_map
    (fun (key, meta) ->
      let rec unpack k acc =
        if k = 0 then acc else unpack (k lsr 8) (String.make 1 (Char.chr (k land 0xff)) ^ acc)
      in
      let name = unpack key "" in
      Some (name, snd (decode_meta meta)))
    (Basic.entries t.names)

(* --- persistence --- *)

type volume_image = {
  i_names : string;  (* machine snapshots via Pdm marshalling *)
  i_blocks : string;
  i_next_inode : int;
  i_live_blocks : int;
}

let save t path =
  let snap machine =
    let tmp = Filename.temp_file "pdm_fs" ".img" in
    Pdm.save_to_file machine tmp;
    let ic = open_in_bin tmp in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Sys.remove tmp;
    s
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Marshal.to_channel oc
        { i_names = snap t.names_machine; i_blocks = snap t.blocks_machine;
          i_next_inode = t.next_inode; i_live_blocks = t.live_blocks }
        [])

let load cfg path =
  let ic = open_in_bin path in
  let image : volume_image =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        Marshal.from_channel ic)
  in
  let unsnap s =
    let tmp = Filename.temp_file "pdm_fs" ".img" in
    let oc = open_out_bin tmp in
    output_string oc s;
    close_out oc;
    let m : int Pdm.t = Pdm.load_from_file tmp in
    Sys.remove tmp;
    m
  in
  let names_machine = unsnap image.i_names in
  let blocks_machine = unsnap image.i_blocks in
  let names_cfg =
    Basic.plan ~universe:name_universe ~capacity:cfg.max_files
      ~block_words:cfg.block_words ~degree:cfg.disks_per_dict
      ~value_bytes:meta_bytes ~seed:cfg.seed ()
  in
  let blocks_cfg =
    Fragmented.plan ~strategy:(`Average 2.5)
      ~universe:(cfg.max_files * cfg.blocks_per_file)
      ~capacity:cfg.max_blocks ~block_words:cfg.block_words
      ~degree:cfg.disks_per_dict ~sigma_bits:(8 * cfg.payload_bytes)
      ~seed:(cfg.seed + 1) ()
  in
  { cfg;
    names = Basic.recover ~machine:names_machine ~disk_offset:0 ~block_offset:0 names_cfg;
    blocks =
      Fragmented.recover ~machine:blocks_machine ~disk_offset:0
        ~block_offset:0 blocks_cfg;
    names_machine; blocks_machine;
    next_inode = image.i_next_inode; live_blocks = image.i_live_blocks }
