(** A miniature file system on the expander dictionary (§1.2).

    "Note that a dictionary can be used to implement the basic
    functionality of a file system: let keys consist of a file name
    and a block number, and associate them with the contents of the
    given block number of the given file. Note that this
    implementation gives random access to any position in a file. ...
    using a hash table can eliminate the overhead of translating the
    file name into an inode, since the name can be easily hashed as
    well."

    Two Section 4.1 dictionaries implement exactly that:

    - the {b name table} maps a file name (≤ 7 bytes, packed directly
      into a key — no hashing needed at this size) to its inode id and
      current length;
    - the {b block store} maps (inode, block number) to the block's
      contents.

    Costs, in parallel I/Os: opening a file = 1; reading any block of
    an open file = 1 (the paper's headline); a cold random read
    (name + block) = 2 — still under a root-cached B-tree's cost for
    any three-level tree. Renames touch only the name table; data
    blocks never move (inode indirection + the dictionaries'
    stable-placement property). *)

type config = {
  max_files : int;
  max_blocks : int;          (** total data blocks across all files *)
  blocks_per_file : int;     (** maximum file length in blocks *)
  payload_bytes : int;       (** contents per file block *)
  block_words : int;         (** simulated device block size *)
  disks_per_dict : int;      (** expander degree of each dictionary *)
  seed : int;
}

val default_config : config
(** 1024 files, 16384 data blocks, 256 blocks/file, 256-byte payloads,
    B = 64 words, 8 disks per dictionary (16 total). *)

type t

type handle
(** An open file (caches the inode, name key, and current length). *)

val handle_inode : handle -> int

val handle_length : handle -> int
(** Current size in blocks. *)

exception Fs_error of string

val format : config -> t
(** A fresh, empty volume (the machines are created inside). *)

val machines : t -> int Pdm_sim.Pdm.t list
(** The name-table machine and the block-store machine (their stats
    hold all I/O). *)

val io_total : t -> int
(** Parallel I/Os across both machines since [format]. *)

val file_count : t -> int

val create : t -> string -> handle
(** Create an empty file. Raises {!Fs_error} when the name is taken,
    too long (> 7 bytes), empty, or the volume is at [max_files]. *)

val open_file : t -> string -> handle option
(** 1 parallel I/O. *)

val write_block : t -> handle -> int -> Bytes.t -> unit
(** [write_block t h idx data] writes block [idx] (≤ current length —
    writing at [length] appends). In-place overwrites touch only the
    block store (2 I/Os); appends also persist the new length in the
    name table (4 I/Os). Raises {!Fs_error} on holes, length overflow,
    a full volume, or oversized payloads. *)

val read_block : t -> handle -> int -> Bytes.t option
(** 1 parallel I/O: the paper's random access into any file position. *)

val append : t -> handle -> Bytes.t -> int
(** [append t h data] = [write_block] at the current length; returns
    the new block's index. *)

val delete : t -> string -> bool
(** Remove the file and free all its blocks. Costs O(length) I/Os. *)

val rename : t -> old_name:string -> new_name:string -> unit
(** Only the name table is touched; all data blocks stay in place.
    Raises {!Fs_error} when the source is missing or the target
    exists. *)

val stat : t -> string -> int option
(** Length in blocks, or [None]. 1 parallel I/O. *)

val files : t -> (string * int) list
(** Uncounted administrative scan (names and lengths) — deliberately
    not a counted operation: the structures have no directory, which
    is the point. *)

val save : t -> string -> unit
(** Persist the volume (both machines and the allocator counters) to a
    file; [Marshal] caveats apply. *)

val load : config -> string -> t
(** Reopen a saved volume. The dictionaries are recovered from the
    disk images (a scan each), so a crash between [save]s loses only
    what a real unsynced volume would. The config must match the one
    the volume was formatted with. *)
