(* The interprocedural rules (R5/R6/R7) on top of Callgraph/Dataflow.
   This module returns plain records; Lint converts them into findings
   and applies suppressions, keeping the finding/suppression machinery
   in one place. *)

type v_finding = {
  vf_file : string;
  vf_line : int;
  vf_col : int;
  vf_rule : string;  (* "R5" | "R6" | "R7" *)
  vf_message : string;
}

type site = {
  st_file : string;
  st_line : int;
  st_col : int;
  st_unit : string;
  st_def : string;
  st_kind : string;
  st_target : string;
  st_status : string;  (* "atomic" | "local" | "mutex" | "annotated"
                          | "unguarded" *)
  st_reason : string option;  (* annotation reason when annotated *)
}

(* ------------------------------------------------------------------ *)
(* R5: determinism taint frontier.

   A definition in a deterministic component whose callee transitively
   reaches a nondeterminism source is flagged at the call site — but
   only when the callee lives *outside* the deterministic components.
   Sources inside deterministic code are R2's per-file findings (and a
   deterministic-component callee on the path is itself flagged at its
   own frontier), so each escape is reported exactly once, where the
   taint crosses the boundary. *)
let r5 (g : Callgraph.graph) taint ~deterministic_components =
  let det c = List.mem c deterministic_components in
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  Array.iter
    (fun (d : Callgraph.def) ->
      if det d.component then
        List.iter
          (fun (callee, (pos : Callgraph.pos)) ->
            let cd = g.Callgraph.defs.(callee) in
            if
              (not (det cd.component))
              && taint.(callee) <> None
              && not (Hashtbl.mem seen (d.id, callee))
            then begin
              Hashtbl.replace seen (d.id, callee) ();
              out :=
                { vf_file = d.file; vf_line = pos.line; vf_col = pos.col;
                  vf_rule = "R5";
                  vf_message =
                    Printf.sprintf
                      "deterministic code calls %s, which reaches a \
                       nondeterminism source: %s; thread a seeded \
                       Pdm_util.Prng through instead"
                      (Callgraph.def_label cd)
                      (Dataflow.chain g taint callee) }
                :: !out
            end)
          d.calls)
    g.defs;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* R6: domain-safety inventory of shared mutable state reachable from
   the round-loop / scatter-gather entry points.

   Guard precedence: atomic > local > mutex > annotated > unguarded.
   Only unguarded sites become findings; everything reachable lands in
   the report either way, because the report is the precondition
   artifact for the multicore server. *)
let r6 (g : Callgraph.graph) ~entries ~annotated =
  let entry_ids =
    List.filter_map (fun name -> Callgraph.find g name) entries
  in
  let resolved =
    List.sort_uniq compare
      (List.map
         (fun id -> Callgraph.def_label g.Callgraph.defs.(id))
         entry_ids)
  in
  let reach = Dataflow.reachable g ~entries:entry_ids in
  let sites = ref [] in
  let findings = ref [] in
  Array.iter
    (fun (d : Callgraph.def) ->
      if reach.(d.id) then
        List.iter
          (fun (m : Callgraph.mutation) ->
            let status, reason =
              match m.m_guard with
              | Callgraph.Guard_atomic -> ("atomic", None)
              | Callgraph.Guard_local -> ("local", None)
              | Callgraph.Guard_none ->
                if d.uses_mutex then ("mutex", None)
                else (
                  match annotated ~file:d.file ~line:m.m_pos.line with
                  | Some why -> ("annotated", Some why)
                  | None -> ("unguarded", None))
            in
            sites :=
              { st_file = d.file; st_line = m.m_pos.line;
                st_col = m.m_pos.col; st_unit = d.unit_name;
                st_def = d.def_name; st_kind = m.m_kind;
                st_target = m.m_target; st_status = status;
                st_reason = reason }
              :: !sites;
            if status = "unguarded" then
              findings :=
                { vf_file = d.file; vf_line = m.m_pos.line;
                  vf_col = m.m_pos.col; vf_rule = "R6";
                  vf_message =
                    Printf.sprintf
                      "shared mutable write (%s to %s in %s) reachable \
                       from a round-loop entry point without a guard; \
                       use Atomic/Mutex or annotate (* pdm-lint: %s — \
                       why single-domain *)"
                      m.m_kind m.m_target (Callgraph.def_label d)
                      ("domain" ^ " local") }
                :: !findings)
          d.mutations)
    g.defs;
  let order (a : site) (b : site) =
    match compare a.st_file b.st_file with
    | 0 -> compare (a.st_line, a.st_col, a.st_target)
             (b.st_line, b.st_col, b.st_target)
    | c -> c
  in
  (List.sort order !sites, List.rev !findings, resolved)

(* ------------------------------------------------------------------ *)
(* R7: charge completeness. Every Backend.read/write site must live in
   a definition covered by round accounting (see Dataflow.covered). *)
let r7 (g : Callgraph.graph) cov =
  let out = ref [] in
  Array.iter
    (fun (d : Callgraph.def) ->
      if not cov.(d.id) then
        List.iter
          (fun (what, (pos : Callgraph.pos)) ->
            out :=
              { vf_file = d.file; vf_line = pos.line; vf_col = pos.col;
                vf_rule = "R7";
                vf_message =
                  Printf.sprintf
                    "%s in %s is not dominated by round accounting (no \
                     path from a rounds_done-charging entry point); \
                     route it through Pdm.read/write or a charging \
                     scheduler path"
                    what (Callgraph.def_label d) }
              :: !out)
          d.io_sites)
    g.defs;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Shared-state report: the machine-readable artifact for ROADMAP
   item 3. Byte-stable: sites are sorted, counts are derived from the
   sorted list, and no hash-table iteration order leaks into the
   output. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report ~entry_points sites =
  let count status =
    List.length (List.filter (fun s -> s.st_status = status) sites)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"version\": 1,\n  \"entry_points\": [";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun e -> Printf.sprintf "\"%s\"" (json_escape e))
          entry_points));
  Buffer.add_string buf "],\n  \"summary\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun st -> Printf.sprintf "\"%s\": %d" st (count st))
          [ "atomic"; "local"; "mutex"; "annotated"; "unguarded" ]));
  Buffer.add_string buf
    (Printf.sprintf ", \"total\": %d},\n  \"sites\": [\n" (List.length sites));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"unit\": \
            \"%s\", \"def\": \"%s\", \"kind\": \"%s\", \"target\": \
            \"%s\", \"status\": \"%s\"%s}"
           (json_escape s.st_file) s.st_line s.st_col
           (json_escape s.st_unit) (json_escape s.st_def)
           (json_escape s.st_kind) (json_escape s.st_target)
           (json_escape s.st_status)
           (match s.st_reason with
            | Some why ->
              Printf.sprintf ", \"reason\": \"%s\"" (json_escape why)
            | None -> "")))
    sites;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
