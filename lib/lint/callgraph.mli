(** Whole-program call graph over the repository's parsetrees, with the
    per-definition facts the interprocedural rules (R5/R6/R7) consume.

    Resolution is module-qualified: unit-local names, nested modules,
    [module P = Lib.Unit] aliases, and dune library wrappers
    ([Pdm_sim.Pdm.f] resolves to unit [Pdm]). Unresolvable references
    contribute no edge, so the downstream analyses are conservative
    exactly where the graph is blind. *)

type pos = { line : int; col : int }

type guard =
  | Guard_atomic  (** mutation through [Atomic] — safe by construction *)
  | Guard_local   (** subject is a let-bound allocation in the same def *)
  | Guard_none    (** needs a mutex, or a reasoned domain-local annotation *)

type mutation = {
  m_kind : string;    (** "setfield", "ref-assign", "hashtbl-mut", ... *)
  m_target : string;  (** rendered subject, e.g. ["t.served"] *)
  m_pos : pos;
  m_guard : guard;
}

type def = {
  id : int;
  unit_name : string;  (** capitalized file basename, e.g. ["Engine"] *)
  def_name : string;   (** ["run_batch"], or ["Sub.f"] for nested modules *)
  file : string;
  pos : pos;
  component : string;  (** path segment after [lib/]; [""] elsewhere *)
  sources : (string * pos) list;
      (** direct nondeterminism sources, e.g. [("Random.int", pos)] *)
  charges : bool;      (** body assigns a [rounds_done] field *)
  io_sites : (string * pos) list;
      (** ["Backend.read"] / ["Backend.write"] use sites *)
  mutations : mutation list;
  uses_mutex : bool;
  calls : (int * pos) list;  (** resolved callee ids with call position *)
}

type graph = {
  defs : def array;
  callers : int list array;  (** reverse edges, deduplicated and sorted *)
  by_name : (string, int) Hashtbl.t;  (** "Unit.def" -> id *)
}

val qualified : string -> string -> string
(** [qualified unit def] is ["Unit.def"]. *)

val find : graph -> string -> int option
(** Look up a definition id by its qualified ["Unit.def"] name. *)

val def_label : def -> string
(** ["Unit.def"] display form of a definition. *)

val module_of_path : string -> string
(** Capitalized basename: the unit name dune gives the file. *)

val component_of_path : string -> string
(** Path segment after [lib/], or [""] for bin/bench/examples/test. *)

val build :
  wrappers:string list -> (string * Parsetree.structure) list -> graph
(** [build ~wrappers units] constructs the graph from
    [(path, parsetree)] pairs. [wrappers] are dune wrapper-module names
    whose qualification prefix is stripped during resolution. *)
