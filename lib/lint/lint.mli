(** pdm-lint — AST-based honesty and determinism checker.

    Parses every [.ml] under a directory with compiler-libs and enforces
    the repository's simulator-honesty rules:

    - {b R1 no-pdm-bypass}: outside [lib/pdm], no direct [Backend.*] I/O
      and no [Pdm.backend]; [Pdm.peek]/[Pdm.poke] only in allowlisted
      diagnostic modules.
    - {b R2 determinism}: no [Random.*], [Hashtbl.hash],
      [Hashtbl.create ~random:true], [Sys.time] or [Unix.*] in the
      deterministic components ([lib/pdm], [lib/expander],
      [lib/loadbalance], [lib/dictionary], [lib/engine]); [Sys.time]
      and [Unix.*] are flagged everywhere (the one sanctioned clock is
      [Pdm_util.Clock]).
    - {b R3 totality}: flags [List.hd], [List.nth], [Option.get],
      [Array.unsafe_*] and [assert false] in library code.
    - {b R4 interface hygiene}: every library [.ml] has an [.mli]; no
      [open] of another library's wrapper module.

    Findings are suppressed inline with
    [(* pdm-lint: allow <rule> — reason *)]; the reason is mandatory and
    the suppression covers the comment through one line past its close.
    Unused or malformed suppressions are themselves reported. *)

type rule = R1 | R2 | R3 | R4

val all_rules : rule list
val rule_id : rule -> string
val rule_name : rule -> string

val rule_of_string : string -> rule option
(** Accepts "R1".."R4" (any case) or the long names. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** "R1".."R4", or "syntax"/"parse" for meta findings *)
  name : string;
  message : string;
}

type config = {
  enabled : rule list;
  peek_allowlist : string list;
      (** module basenames allowed to call [Pdm.peek]/[Pdm.poke] *)
}

val default_config : config
val default_peek_allowlist : string list

val check_source :
  ?config:config -> ?has_mli:bool -> path:string -> string -> finding list
(** Lint one compilation unit given as a string. [path] determines the
    component (the segment after [lib/]) and module name; [has_mli]
    (default [true]) feeds the R4 missing-interface check. *)

val check_file : ?config:config -> string -> finding list
(** Read, then [check_source]; the sibling [.mli]'s existence is probed
    on disk. I/O errors become a ["parse"] finding. *)

val ml_files_under : string -> string list
(** All [.ml] files under a file or directory, sorted, skipping
    dot-directories and [_build]. *)

val sort_findings : finding list -> finding list

val to_text : finding -> string
(** [file:line:col: [rule name] message] — one line per finding. *)

val to_json : finding list -> string

val exit_code : finding list -> int
(** 0 clean, 1 findings, 2 when any file failed to read or parse. *)
