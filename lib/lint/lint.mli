(** pdm-lint — AST-based honesty and determinism checker.

    Parses every [.ml] under a directory with compiler-libs and enforces
    the repository's simulator-honesty rules. R1-R4 are per-file; R5-R7
    are interprocedural, running fixpoint passes over a whole-program
    call graph ({!Callgraph}, {!Dataflow}, {!Rules_v2}):

    - {b R1 no-pdm-bypass}: outside [lib/pdm], no direct [Backend.*] I/O
      and no [Pdm.backend]; [Pdm.peek]/[Pdm.poke] only in allowlisted
      diagnostic modules.
    - {b R2 determinism}: no [Random.*], [Hashtbl.hash],
      [Hashtbl.create ~random:true], [Sys.time] or [Unix.*] in the
      deterministic components ([lib/pdm], [lib/expander],
      [lib/loadbalance], [lib/dictionary], [lib/engine], [lib/sim],
      [lib/cluster], [lib/io]); [Sys.time] and [Unix.*] are flagged
      everywhere (the one sanctioned clock is [Pdm_util.Clock]).
    - {b R3 totality}: flags [List.hd], [List.nth], [Option.get],
      [Array.unsafe_*] and [assert false] in library code.
    - {b R4 interface hygiene}: every [lib/] module has an [.mli]; no
      [open] of another library's wrapper module (list derived from the
      dune files by {!analyze_paths}).
    - {b R5 determinism-taint}: nondeterminism sources propagate through
      the call graph; a deterministic-component call site whose callee
      transitively reaches one is flagged with the witness chain.
    - {b R6 domain-safety}: every shared-mutable write reachable from
      the engine round loop / router scatter-gather entry points must
      be [Atomic], function-local, mutex-guarded, or carry a reasoned
      domain-local annotation; the full inventory is emitted as a
      byte-stable JSON report (the multicore-server precondition
      artifact, ROADMAP item 3).
    - {b R7 charge-completeness}: every [Backend.read]/[write] call site
      must live in a definition dominated by round accounting (a path
      through a [rounds_done]-charging scheduler entry point).

    Findings are suppressed inline with
    [(* pdm-lint: allow <rule> — reason *)]; the reason is mandatory and
    the suppression covers the comment through one line past its close,
    widened to the end of a multi-line expression starting in range.
    R6 sites are annotated with [(* pdm-lint: domain local — reason *)]
    under the same range rules. Unused or malformed suppressions are
    themselves reported, quoting their reason. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7

val all_rules : rule list
val rule_id : rule -> string
val rule_name : rule -> string

val rule_of_string : string -> rule option
(** Accepts "R1".."R7" (any case) or the long names. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** "R1".."R7", or "syntax"/"parse" for meta findings *)
  name : string;
  message : string;
}

type config = {
  enabled : rule list;
  peek_allowlist : string list;
      (** module basenames allowed to call [Pdm.peek]/[Pdm.poke] *)
  library_wrappers : string list;
      (** dune wrapper modules for R4 hygiene and call resolution;
          {!analyze_paths} unions this with the dune-derived list *)
  r6_entries : string list;
      (** ["Unit.def"] roots of the R6 reachability pass *)
}

val default_config : config
val default_peek_allowlist : string list
val default_library_wrappers : string list
val default_r6_entries : string list

type source_unit = {
  u_path : string;
  u_source : string;
  u_has_mli : bool;
}

type analysis = {
  a_findings : finding list;  (** sorted, suppressions applied *)
  a_report : string option;   (** shared-state JSON when R6 ran *)
}

val analyze : ?config:config -> source_unit list -> analysis
(** Lint a set of compilation units as one program: per-file rules on
    each unit, then the interprocedural rules over the whole-program
    call graph, then suppressions. *)

val analyze_paths : ?config:config -> string list -> analysis
(** [analyze] over every [.ml] under the given paths, with the wrapper
    list derived from the [dune] files found there (unioned with
    [config.library_wrappers]). Unreadable files become ["parse"]
    findings. *)

val wrappers_from_dune : string list -> string list
(** Capitalized [(library (name ...))] values from every [dune] file
    under the given paths, sorted and deduplicated. *)

val check_source :
  ?config:config -> ?has_mli:bool -> path:string -> string -> finding list
(** Lint one compilation unit given as a string. [path] determines the
    component (the segment after [lib/]) and module name; [has_mli]
    (default [true]) feeds the R4 missing-interface check, which only
    applies to [lib/] paths. The interprocedural rules run over the
    single-unit graph. *)

val check_file : ?config:config -> string -> finding list
(** Read, then [check_source]; the sibling [.mli]'s existence is probed
    on disk. I/O errors become a ["parse"] finding. *)

val ml_files_under : string -> string list
(** All [.ml] files under a file or directory, sorted, skipping
    dot-directories and [_build]. *)

val sort_findings : finding list -> finding list

val to_text : finding -> string
(** [file:line:col: [rule name] message] — one line per finding. *)

val to_json : finding list -> string

val exit_code : finding list -> int
(** 0 clean, 1 findings, 2 when any file failed to read or parse. *)
