type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7

let all_rules = [ R1; R2; R3; R4; R5; R6; R7 ]

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"

let rule_name = function
  | R1 -> "no-pdm-bypass"
  | R2 -> "determinism"
  | R3 -> "totality"
  | R4 -> "interface-hygiene"
  | R5 -> "determinism-taint"
  | R6 -> "domain-safety"
  | R7 -> "charge-completeness"

let rule_of_string s =
  match String.lowercase_ascii s with
  | "r1" | "no-pdm-bypass" -> Some R1
  | "r2" | "determinism" -> Some R2
  | "r3" | "totality" -> Some R3
  | "r4" | "interface-hygiene" -> Some R4
  | "r5" | "determinism-taint" -> Some R5
  | "r6" | "domain-safety" -> Some R6
  | "r7" | "charge-completeness" -> Some R7
  | _ -> None

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;  (* "R1".."R7", or "syntax" / "parse" for meta findings *)
  name : string;
  message : string;
}

type config = {
  enabled : rule list;
  peek_allowlist : string list;
      (* module basenames allowed to call Pdm.peek / Pdm.poke *)
  library_wrappers : string list;
      (* dune wrapper modules; R4 open-hygiene and call resolution *)
  r6_entries : string list;
      (* "Unit.def" roots of the R6 reachability pass *)
}

(* Modules whose uncounted Pdm.peek/poke uses are sanctioned
   diagnostics (max-load scans, probe-distance walks, documented
   cache-simulation reads) or construction-time bulk loads. Audited in
   DESIGN.md §9; extend via --allow-peek only with a written
   justification there. *)
let default_peek_allowlist =
  [ "basic_dict"; "basic_exp"; "bitvector_membership"; "btree";
    "dynamic_cascade"; "field_store"; "fragmented"; "hash_table";
    "head_model_dict"; "one_probe_dynamic"; "small_block_dict" ]

(* Fallback wrapper-module list for callers that lint source strings
   with no dune files in sight (fixtures, tests). The path-based driver
   derives the live list from the dune files and unions it with this
   one, so a new library cannot silently skip the hygiene checks. *)
let default_library_wrappers =
  [ "Pdm_util"; "Pdm_sim"; "Pdm_expander"; "Pdm_loadbalance";
    "Pdm_dictionary"; "Pdm_engine"; "Pdm_baselines"; "Pdm_extsort";
    "Pdm_fs"; "Pdm_workload"; "Pdm_simtest"; "Pdm_cluster"; "Pdm_experiments";
    "Pdm_lint_core"; "Pdm_io" ]

(* The engine round loop and the router scatter-gather path: the code
   that a multicore pdm-serve would drive from several domains at once
   (ROADMAP item 3). Everything call-reachable from here is in scope
   for the R6 shared-state inventory. *)
let default_r6_entries =
  [ "Engine.submit"; "Engine.pump"; "Engine.drain"; "Engine.idle_round";
    "Engine.run_batch"; "Cluster.find"; "Cluster.find_batch";
    "Cluster.insert"; "Cluster.delete"; "Cluster.execute_plan";
    (* pdm-serve: the listener event loop and the per-domain worker
       loop are the roots that actually run on different domains at
       once; everything they reach (mailboxes, completion queue,
       shard engines) is shared-state inventory. *)
    "Server.run"; "Server.worker_loop"; "Data_plane.execute" ]

let default_config =
  { enabled = all_rules;
    peek_allowlist = default_peek_allowlist;
    library_wrappers = default_library_wrappers;
    r6_entries = default_r6_entries }

(* Directories whose code must be bit-for-bit deterministic: the
   simulator itself and everything whose placements or costs the paper
   claims are deterministic. Experiments/bench may read a clock for
   reporting (through Util.Clock) but still may not use randomness
   outside seeded Prng. *)
let deterministic_components =
  [ "pdm"; "expander"; "loadbalance"; "dictionary"; "engine"; "sim";
    "cluster"; "io" ]

(* Audited per-component Unix allowlists. lib/io is the storage
   subsystem and must open, size, sync and map its disk files —
   nothing else (pread/pwrite are C stubs, not Unix calls). lib/server
   is the daemon shell and may touch exactly the socket and event-loop
   syscalls its accept/select loop needs — the deterministic data
   plane behind it never sees a file descriptor. Time, environment and
   process control stay banned in both, and any Unix.* outside these
   two components is flagged unconditionally. Audited in DESIGN.md
   §13 (io) and §15 (server); extend only with a written justification
   there. *)
let unix_io_allowlist =
  [ "openfile"; "close"; "ftruncate"; "fsync"; "map_file"; "getpid";
    "error_message" ]

let unix_server_allowlist =
  [ "socket"; "setsockopt"; "bind"; "listen"; "accept"; "connect";
    "getsockname"; "select"; "read"; "write"; "close"; "shutdown";
    "pipe"; "set_nonblock"; "inet_addr_loopback"; "error_message" ]

let unix_component_allowlists =
  [ ("io", unix_io_allowlist); ("server", unix_server_allowlist) ]

(* The Backend record fields / constructors that move or expose raw
   block data. Calling these outside lib/pdm bypasses the scheduler's
   round charging. Error-shaped members (describe, the exception
   payloads' disk/block/round fields, cost, max_retries, blocks) are
   fine to touch anywhere. *)
let backend_io_members =
  [ "read"; "write"; "poke"; "peek"; "dump"; "of_store"; "memory"; "dead";
    "wrap" ]

let component_of_path = Callgraph.component_of_path

let module_of_path path = Filename.remove_extension (Filename.basename path)

(* ------------------------------------------------------------------ *)
(* Suppressions and domain-local annotations.                          *)

type suppression = {
  s_rule : string;
  s_reason : string;
  s_line_start : int;
  mutable s_line_end : int;
      (* inclusive; seeded one line past the comment close, then widened
         to the end of any multi-line expression starting in range *)
  mutable s_used : bool;
}

type annotation = {
  a_reason : string;
  a_line_start : int;
  mutable a_line_end : int;  (* same widening as suppressions *)
  mutable a_used : bool;
}

(* Concatenated so the scanner never matches this file's own literals. *)
let marker = "pdm-lint: " ^ "allow"
let marker_domain = "pdm-lint: " ^ "domain local"

let line_starts source =
  let starts = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' then starts := (i + 1) :: !starts) source;
  Array.of_list (List.rev !starts)

let line_of_offset starts off =
  (* last line whose start <= off, 1-based *)
  let n = Array.length starts in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if starts.(mid) <= off then bsearch mid hi else bsearch lo (mid - 1)
  in
  1 + bsearch 0 (n - 1)

let find_all source pat =
  let out = ref [] in
  let n = String.length source and m = String.length pat in
  let i = ref 0 in
  while !i + m <= n do
    if String.sub source !i m = pat then begin
      out := !i :: !out;
      i := !i + m
    end
    else incr i
  done;
  List.rev !out

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* Strip whitespace and the leading separator of the reason text: an
   em-dash, hyphen or colon between the rule id and the prose. *)
let clean_reason s =
  let s = String.trim s in
  let s =
    if String.length s >= 3 && String.sub s 0 3 = "\xe2\x80\x94" then
      String.sub s 3 (String.length s - 3)
    else if String.length s >= 1 && (s.[0] = '-' || s.[0] = ':') then
      String.sub s 1 (String.length s - 1)
    else s
  in
  String.trim s

(* End offset of the comment enclosing [from] (first close; the
   annotation comments do not nest). *)
let comment_close source from =
  let n = String.length source in
  let rec find i =
    if i + 2 > n then n
    else if source.[i] = '*' && i + 1 < n && source.[i + 1] = ')' then i
    else find (i + 1)
  in
  find from

let scan_suppressions ~path source =
  let starts = line_starts source in
  let bad = ref [] in
  let sups =
    List.filter_map
      (fun off ->
        let line = line_of_offset starts off in
        let after = off + String.length marker in
        let n = String.length source in
        let tok_start = ref after in
        while !tok_start < n && is_space source.[!tok_start] do
          incr tok_start
        done;
        let tok_end = ref !tok_start in
        while
          !tok_end < n
          && (match source.[!tok_end] with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
              | _ -> false)
        do
          incr tok_end
        done;
        let token = String.sub source !tok_start (!tok_end - !tok_start) in
        let close = comment_close source !tok_end in
        let close_line = line_of_offset starts (min close (n - 1)) in
        let reason =
          clean_reason (String.sub source !tok_end (close - !tok_end))
        in
        match rule_of_string token with
        | None ->
          bad :=
            { file = path; line; col = 0; rule = "syntax";
              name = "bad-suppression";
              message =
                Printf.sprintf
                  "suppression names unknown rule %S (expected R1-R7)" token }
            :: !bad;
          None
        | Some r ->
          if reason = "" then begin
            bad :=
              { file = path; line; col = 0; rule = "syntax";
                name = "bad-suppression";
                message =
                  Printf.sprintf
                    "suppression of %s has no reason; write (* %s %s — why \
                     this is safe *)"
                    (rule_id r) marker (rule_id r) }
              :: !bad;
            None
          end
          else
            Some
              { s_rule = rule_id r; s_reason = reason; s_line_start = line;
                s_line_end = close_line + 1; s_used = false })
      (find_all source marker)
  in
  (sups, List.rev !bad)

let scan_annotations ~path source =
  let starts = line_starts source in
  let bad = ref [] in
  let anns =
    List.filter_map
      (fun off ->
        let line = line_of_offset starts off in
        let after = off + String.length marker_domain in
        let n = String.length source in
        let close = comment_close source after in
        let close_line = line_of_offset starts (min close (n - 1)) in
        let reason = clean_reason (String.sub source after (close - after)) in
        if reason = "" then begin
          bad :=
            { file = path; line; col = 0; rule = "syntax";
              name = "bad-annotation";
              message =
                Printf.sprintf
                  "domain-local annotation has no reason; write (* %s — why \
                   this state stays single-domain *)"
                  marker_domain }
            :: !bad;
          None
        end
        else
          Some
            { a_reason = reason; a_line_start = line;
              a_line_end = close_line + 1; a_used = false })
      (find_all source marker_domain)
  in
  (anns, List.rev !bad)

(* Multi-line expression spans, for widening comment ranges: a
   suppression above a multi-line [let] must cover the whole binding,
   not just its first line. [Pexp_let]/[Pexp_sequence] (and friends)
   are excluded because their spans run to the end of the enclosing
   body — covering the rest of a function from one comment would be far
   too broad; the tight per-binding spans come from [value_binding]. *)
let multiline_spans structure =
  let spans = ref [] in
  let add loc =
    let s = loc.Location.loc_start.Lexing.pos_lnum in
    let e = loc.Location.loc_end.Lexing.pos_lnum in
    if e > s then spans := (s, e) :: !spans
  in
  let iter =
    { Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          add vb.Parsetree.pvb_loc;
          Ast_iterator.default_iterator.value_binding self vb);
      case =
        (fun self c ->
          add c.Parsetree.pc_rhs.pexp_loc;
          Ast_iterator.default_iterator.case self c);
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
           | Pexp_let _ | Pexp_sequence _ | Pexp_letmodule _
           | Pexp_letexception _ | Pexp_open _ -> ()
           | _ -> add e.pexp_loc);
          Ast_iterator.default_iterator.expr self e) }
  in
  iter.structure iter structure;
  List.sort_uniq compare !spans

(* Widen [stop] over every span chain starting inside the range. Spans
   are sorted by start line, so one left-to-right pass reaches the
   fixpoint. *)
let widen spans ~start ~stop =
  List.fold_left
    (fun acc (s, e) -> if s >= start && s <= acc then max acc e else acc)
    stop spans

let widen_ranges structure sups anns =
  let spans = multiline_spans structure in
  if spans <> [] then begin
    List.iter
      (fun s ->
        s.s_line_end <- widen spans ~start:s.s_line_start ~stop:s.s_line_end)
      sups;
    List.iter
      (fun a ->
        a.a_line_end <- widen spans ~start:a.a_line_start ~stop:a.a_line_end)
      anns
  end

(* ------------------------------------------------------------------ *)
(* AST checks (the per-file rules R1-R4)                               *)

let flatten lid = try Longident.flatten lid with _ -> []

let last2 parts =
  match List.rev parts with
  | f :: m :: _ -> Some (m, f)
  | _ -> None

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let pos_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let check_ast ~config ~path ~component ~module_name structure =
  let findings = ref [] in
  let enabled r = List.mem r config.enabled in
  let deterministic = List.mem component deterministic_components in
  let add r ~loc name message =
    if enabled r then begin
      let line, col = pos_of loc in
      findings :=
        { file = path; line; col; rule = rule_id r; name; message }
        :: !findings
    end
  in
  let check_ident ~loc lid =
    let parts = flatten lid in
    (match last2 parts with
     | Some ("Backend", f)
       when enabled R1 && component <> "pdm"
            && List.mem f backend_io_members ->
       add R1 ~loc (rule_name R1)
         (Printf.sprintf
            "direct Backend.%s outside lib/pdm bypasses the scheduler's \
             round charging; go through Pdm.read/write"
            f)
     | Some ("Pdm", "backend") when enabled R1 && component <> "pdm" ->
       add R1 ~loc (rule_name R1)
         "Pdm.backend hands out a raw backend; all I/O outside lib/pdm \
          must go through Pdm.read/write"
     | Some ("Pdm", (("peek" | "poke") as f))
       when enabled R1 && component <> "pdm"
            && not (List.mem module_name config.peek_allowlist) ->
       add R1 ~loc (rule_name R1)
         (Printf.sprintf
            "Pdm.%s is uncounted I/O; only allowlisted diagnostic modules \
             may use it (see DESIGN.md §9)"
            f)
     | _ -> ());
    (match parts with
     | "Random" :: _ when deterministic ->
       add R2 ~loc (rule_name R2)
         "Random.* in deterministic code; derive pseudo-randomness from a \
          seeded Pdm_util.Prng"
     | "Unix" :: _ ->
       let allowed =
         match List.assoc_opt component unix_component_allowlists with
         | None -> false
         | Some fns -> (
           match last2 parts with
           | Some ("Unix", f) -> List.mem f fns
           | _ -> false)
       in
       if not allowed then
         add R2 ~loc (rule_name R2)
           (match component with
            | "io" ->
              "Unix.* outside the audited lib/io storage allowlist \
               (openfile/close/ftruncate/fsync/map_file/getpid; see \
               DESIGN.md §13)"
            | "server" ->
              "Unix.* outside the audited lib/server socket allowlist \
               (socket/bind/listen/accept/connect/select/read/write/...; \
               see DESIGN.md §15)"
            | _ ->
              "Unix.* reads ambient system state; simulated results must \
               not depend on it")
     | _ -> ());
    (match last2 parts with
     | Some ("Sys", "time") ->
       add R2 ~loc (rule_name R2)
         "Sys.time is wall-clock; report timings through Pdm_util.Clock \
          (the single allowlisted site)"
     | Some ("Hashtbl", ("hash" | "seeded_hash")) when deterministic ->
       add R2 ~loc (rule_name R2)
         "polymorphic Hashtbl.hash is representation-dependent; \
          deterministic placements must use an explicit hash"
     | Some ("Hashtbl", "randomize") when deterministic ->
       add R2 ~loc (rule_name R2)
         "Hashtbl.randomize makes iteration order run-dependent"
     | Some ("List", "hd") ->
       add R3 ~loc (rule_name R3)
         "List.hd raises bare Failure on []; match and return a structured \
          error (or annotate with a proof the list is non-empty)"
     | Some ("List", "nth") ->
       add R3 ~loc (rule_name R3)
         "List.nth raises on out-of-range; use List.nth_opt and handle None"
     | Some ("Option", "get") ->
       add R3 ~loc (rule_name R3)
         "Option.get raises bare Invalid_argument; match on the option"
     | Some ("Array", f) when has_prefix ~prefix:"unsafe_" f ->
       add R3 ~loc (rule_name R3)
         (Printf.sprintf
            "Array.%s skips bounds checks; library code must stay memory-safe"
            f)
     | _ -> ())
  in
  let is_false_lit e =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_construct ({ txt = Longident.Lident "false"; _ }, None)
      ->
      true
    | _ -> false
  in
  let check_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ~loc txt
    | Pexp_field (_, { txt; loc }) ->
      (match last2 (flatten txt) with
       | Some ("Backend", f)
         when enabled R1 && component <> "pdm"
              && List.mem f backend_io_members ->
         add R1 ~loc (rule_name R1)
           (Printf.sprintf
              "direct use of the Backend.%s closure outside lib/pdm \
               bypasses round charging"
              f)
       | _ -> ())
    | Pexp_assert inner when is_false_lit inner ->
      add R3 ~loc:e.pexp_loc (rule_name R3)
        "assert false in library code; prove the branch impossible in an \
         allow annotation or return a structured error"
    | Pexp_apply (fn, args) ->
      (match fn.pexp_desc with
       | Pexp_ident { txt; loc } when deterministic ->
         (match last2 (flatten txt) with
          | Some ("Hashtbl", "create") ->
            List.iter
              (fun (label, arg) ->
                match label with
                | (Asttypes.Labelled "random" | Asttypes.Optional "random")
                  when not (is_false_lit arg) ->
                  add R2 ~loc (rule_name R2)
                    "Hashtbl.create ~random:true randomizes iteration \
                     order; deterministic code must not opt in"
                | _ -> ())
              args
          | _ -> ())
       | _ -> ())
    | _ -> ()
  in
  let check_open (od : Parsetree.open_declaration) =
    match od.popen_expr.pmod_desc with
    | Pmod_ident { txt; loc } ->
      (match flatten txt with
       | head :: _ when List.mem head config.library_wrappers ->
         add R4 ~loc (rule_name R4)
           (Printf.sprintf
              "open of another library's module (%s); alias it instead \
               (module M = %s...)"
              head head)
       | _ -> ())
    | _ -> ()
  in
  let iter =
    { Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check_expr e;
          Ast_iterator.default_iterator.expr self e);
      open_declaration =
        (fun self od ->
          check_open od;
          Ast_iterator.default_iterator.open_declaration self od) }
  in
  iter.structure iter structure;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Whole-tree analysis: parse every unit, run the per-file rules, build
   the call graph, run the interprocedural rules, then apply each
   file's suppressions to the merged finding set. *)

type source_unit = {
  u_path : string;
  u_source : string;
  u_has_mli : bool;
}

type analysis = {
  a_findings : finding list;
  a_report : string option;  (* shared-state JSON when R6 ran *)
}

let parse_structure ~path source =
  let lexbuf = Lexing.from_string source in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  Parse.implementation lexbuf

type parsed = {
  p_path : string;
  p_sups : suppression list;
  p_anns : annotation list;
  p_pre : finding list;  (* meta + per-file findings, pre-suppression *)
  p_structure : Parsetree.structure option;
}

let parse_unit ~config u =
  let path = u.u_path in
  let component = component_of_path path in
  let module_name = module_of_path path in
  let sups, bad_sups = scan_suppressions ~path u.u_source in
  let anns, bad_anns = scan_annotations ~path u.u_source in
  match parse_structure ~path u.u_source with
  | exception exn ->
    let line, msg =
      match exn with
      | Syntaxerr.Error err ->
        let loc = Syntaxerr.location_of_error err in
        (fst (pos_of loc), "syntax error")
      | _ -> (1, Printexc.to_string exn)
    in
    { p_path = path; p_sups = []; p_anns = [];
      p_pre =
        [ { file = path; line; col = 0; rule = "parse";
            name = "parse-error"; message = msg } ];
      p_structure = None }
  | structure ->
    widen_ranges structure sups anns;
    let ast_findings =
      check_ast ~config ~path ~component ~module_name structure
    in
    let mli_findings =
      if
        List.mem R4 config.enabled && component <> "" && not u.u_has_mli
      then
        [ { file = path; line = 1; col = 0; rule = rule_id R4;
            name = rule_name R4;
            message =
              "library module without an .mli; every lib/ module declares \
               its interface" } ]
      else []
    in
    { p_path = path; p_sups = sups; p_anns = anns;
      p_pre = bad_sups @ bad_anns @ ast_findings @ mli_findings;
      p_structure = Some structure }

let name_of_rule_string r =
  match rule_of_string r with Some r -> rule_name r | None -> r

let convert_v (vf : Rules_v2.v_finding) =
  { file = vf.vf_file; line = vf.vf_line; col = vf.vf_col;
    rule = vf.vf_rule; name = name_of_rule_string vf.vf_rule;
    message = vf.vf_message }

let apply_suppressions sups_of findings =
  List.filter
    (fun f ->
      match
        List.find_opt
          (fun s ->
            s.s_rule = f.rule && s.s_line_start <= f.line
            && f.line <= s.s_line_end)
          (sups_of f.file)
      with
      | Some s ->
        s.s_used <- true;
        false
      | None -> true)
    findings

let sort_findings fs =
  List.sort
    (fun a b ->
      match compare a.file b.file with
      | 0 -> compare (a.line, a.col) (b.line, b.col)
      | c -> c)
    fs

let analyze ?(config = default_config) units =
  let enabled r = List.mem r config.enabled in
  let parsed = List.map (parse_unit ~config) units in
  let graph_units =
    List.filter_map
      (fun p ->
        match p.p_structure with
        | Some st -> Some (p.p_path, st)
        | None -> None)
      parsed
  in
  let need_graph = enabled R5 || enabled R6 || enabled R7 in
  let v_findings = ref [] in
  let report = ref None in
  if need_graph then begin
    let g = Callgraph.build ~wrappers:config.library_wrappers graph_units in
    if enabled R5 then begin
      let taint = Dataflow.taint g in
      v_findings :=
        !v_findings @ Rules_v2.r5 g taint ~deterministic_components
    end;
    if enabled R6 then begin
      let anns_by_file = Hashtbl.create 16 in
      List.iter
        (fun p -> Hashtbl.replace anns_by_file p.p_path p.p_anns)
        parsed;
      let annotated ~file ~line =
        match Hashtbl.find_opt anns_by_file file with
        | None -> None
        | Some anns ->
          (match
             List.find_opt
               (fun a -> a.a_line_start <= line && line <= a.a_line_end)
               anns
           with
           | Some a ->
             a.a_used <- true;
             Some a.a_reason
           | None -> None)
      in
      let sites, v6, entry_points =
        Rules_v2.r6 g ~entries:config.r6_entries ~annotated
      in
      report := Some (Rules_v2.report ~entry_points sites);
      v_findings := !v_findings @ v6
    end;
    if enabled R7 then
      v_findings := !v_findings @ Rules_v2.r7 g (Dataflow.covered g)
  end;
  let all =
    List.concat_map (fun p -> p.p_pre) parsed
    @ List.map convert_v !v_findings
  in
  let sups_by_file = Hashtbl.create 16 in
  List.iter
    (fun p -> Hashtbl.replace sups_by_file p.p_path p.p_sups)
    parsed;
  let sups_of file =
    Option.value (Hashtbl.find_opt sups_by_file file) ~default:[]
  in
  let kept = apply_suppressions sups_of all in
  let unused =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun s ->
            match rule_of_string s.s_rule with
            | Some r when List.mem r config.enabled && not s.s_used ->
              Some
                { file = p.p_path; line = s.s_line_start; col = 0;
                  rule = "syntax"; name = "unused-suppression";
                  message =
                    Printf.sprintf
                      "suppression of %s (%S) matches no finding on lines \
                       %d-%d; delete it"
                      s.s_rule s.s_reason s.s_line_start s.s_line_end }
            | _ -> None)
          p.p_sups)
      parsed
  in
  { a_findings = sort_findings (kept @ unused); a_report = !report }

(* ------------------------------------------------------------------ *)
(* Single-unit compatibility wrappers                                  *)

let check_source ?(config = default_config) ?(has_mli = true) ~path source =
  (analyze ~config
     [ { u_path = path; u_source = source; u_has_mli = has_mli } ])
    .a_findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let unit_of_file path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | source ->
    Ok
      { u_path = path; u_source = source;
        u_has_mli =
          Sys.file_exists (Filename.remove_extension path ^ ".mli") }

let check_file ?(config = default_config) path =
  match unit_of_file path with
  | Error msg ->
    [ { file = path; line = 1; col = 0; rule = "parse"; name = "io-error";
        message = msg } ]
  | Ok u -> (analyze ~config [ u ]).a_findings

let rec files_under ~keep path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
        if String.length entry = 0 || entry.[0] = '.' || entry = "_build"
        then []
        else files_under ~keep (Filename.concat path entry))
  else if keep path then [ path ]
  else []

let ml_files_under path =
  files_under ~keep:(fun p -> Filename.check_suffix p ".ml") path

(* ------------------------------------------------------------------ *)
(* Wrapper-module discovery from the dune files (satellite of the v2
   pass: the hygiene list must not be hand-maintained).               *)

type sexp = SAtom of string | SList of sexp list

(* Minimal s-expression reader, good enough for dune files: atoms,
   parens, "..." strings, and ; comments. Unbalanced input yields what
   was read — a truncated list never crashes the lint. *)
let parse_sexps src =
  let n = String.length src in
  let rec skip i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip (i + 1)
      | ';' ->
        let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
        skip (eol i)
      | _ -> i
  in
  let atom i =
    let rec go j =
      if j >= n then j
      else
        match src.[j] with
        | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> j
        | _ -> go (j + 1)
    in
    let j = go i in
    (SAtom (String.sub src i (j - i)), j)
  in
  let rec one i =
    match src.[i] with
    | '(' ->
      let items, j = many (i + 1) [] in
      (SList items, j)
    | '"' ->
      let rec str j =
        if j >= n then j
        else if src.[j] = '"' && src.[j - 1] <> '\\' then j + 1
        else str (j + 1)
      in
      let j = str (i + 1) in
      (SAtom (String.sub src i (j - i)), j)
    | _ -> atom i
  and many i acc =
    let i = skip i in
    if i >= n then (List.rev acc, i)
    else if src.[i] = ')' then (List.rev acc, i + 1)
    else
      let s, j = one i in
      many j (s :: acc)
  in
  fst (many 0 [])

let library_names_of_dune src =
  List.concat_map
    (function
      | SList (SAtom "library" :: fields) ->
        List.filter_map
          (function
            | SList [ SAtom "name"; SAtom nm ] ->
              Some (String.capitalize_ascii nm)
            | _ -> None)
          fields
      | _ -> [])
    (parse_sexps src)

let wrappers_from_dune paths =
  paths
  |> List.concat_map
       (files_under ~keep:(fun p -> Filename.basename p = "dune"))
  |> List.concat_map (fun p ->
         match read_file p with
         | exception Sys_error _ -> []
         | src -> library_names_of_dune src)
  |> List.sort_uniq compare

let analyze_paths ?(config = default_config) paths =
  let wrappers =
    List.sort_uniq compare
      (config.library_wrappers @ wrappers_from_dune paths)
  in
  let config = { config with library_wrappers = wrappers } in
  let io_errors = ref [] in
  let units =
    List.concat_map ml_files_under paths
    |> List.filter_map (fun path ->
           match unit_of_file path with
           | Ok u -> Some u
           | Error msg ->
             io_errors :=
               { file = path; line = 1; col = 0; rule = "parse";
                 name = "io-error"; message = msg }
               :: !io_errors;
             None)
  in
  let result = analyze ~config units in
  { result with
    a_findings = sort_findings (!io_errors @ result.a_findings) }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s %s] %s" f.file f.line f.col f.rule f.name
    f.message

let json_escape = Rules_v2.json_escape

let to_json findings =
  let one f =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"name\":\"%s\",\"message\":\"%s\"}"
      (json_escape f.file) f.line f.col (json_escape f.rule)
      (json_escape f.name) (json_escape f.message)
  in
  "[" ^ String.concat "," (List.map one findings) ^ "]"

(* Exit-code semantics for CI: 0 clean, 1 findings, 2 when any file
   could not be read or parsed (the tree is not even checkable). *)
let exit_code findings =
  if findings = [] then 0
  else if List.exists (fun f -> f.rule = "parse") findings then 2
  else 1
