(* Fixpoint passes over the call graph. All three analyses are simple
   monotone closures, so plain worklist BFS reaches the least fixpoint;
   graph sizes here are a few hundred definitions, so no indexing
   cleverness is needed. *)

type witness = {
  w_origin : string;   (* the concrete source, e.g. "Random.int" *)
  w_via : int option;  (* tainted callee the taint arrived through *)
}

(* Taint: a definition is tainted if it contains a direct source or
   calls a tainted definition. Propagates from sources up the caller
   edges; each newly tainted def records one witness (first discovery
   wins — deterministic because seeds and caller lists are in fixed
   order). *)
let taint (g : Callgraph.graph) =
  let n = Array.length g.defs in
  let w = Array.make n None in
  let queue = Queue.create () in
  Array.iter
    (fun (d : Callgraph.def) ->
      match d.sources with
      | (origin, _) :: _ ->
        w.(d.id) <- Some { w_origin = origin; w_via = None };
        Queue.add d.id queue
      | [] -> ())
    g.defs;
  while not (Queue.is_empty queue) do
    let id = Queue.take queue in
    let origin =
      match w.(id) with Some x -> x.w_origin | None -> "?"
    in
    List.iter
      (fun caller ->
        if w.(caller) = None then begin
          w.(caller) <- Some { w_origin = origin; w_via = Some id };
          Queue.add caller queue
        end)
      g.callers.(id)
  done;
  w

(* Render the taint chain "Engine.f -> Helper.g -> Random.int" for a
   tainted definition. *)
let chain (g : Callgraph.graph) w id =
  let buf = Buffer.create 64 in
  let rec follow id depth =
    Buffer.add_string buf (Callgraph.def_label g.defs.(id));
    match w.(id) with
    | Some { w_via = Some next; _ } when depth < 32 ->
      Buffer.add_string buf " -> ";
      follow next (depth + 1)
    | Some { w_origin; _ } ->
      Buffer.add_string buf " -> ";
      Buffer.add_string buf w_origin
    | None -> ()
  in
  follow id 0;
  Buffer.contents buf

(* Forward reachability along call edges from a set of entry points. *)
let reachable (g : Callgraph.graph) ~entries =
  let n = Array.length g.defs in
  let seen = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun id ->
      if id >= 0 && id < n && not seen.(id) then begin
        seen.(id) <- true;
        Queue.add id queue
      end)
    entries;
  while not (Queue.is_empty queue) do
    let id = Queue.take queue in
    List.iter
      (fun (callee, _) ->
        if not seen.(callee) then begin
          seen.(callee) <- true;
          Queue.add callee queue
        end)
      g.defs.(id).Callgraph.calls
  done;
  seen

(* R7 coverage. A definition is covered when every execution of its
   body is accounted against the round ledger:

     covered(f) = reaches_charger(f)
                \/ (callers(f) <> [] /\ forall c in callers(f). covered(c))

   where reaches_charger holds when f transitively calls a definition
   that assigns [rounds_done] (f charges on its own behalf — the
   scheduled-I/O paths, whose perform closures run under [schedule]),
   and the second disjunct covers helpers that never charge themselves
   but are only ever invoked from covered code. Iterated to the least
   fixpoint; an uncalled, non-charging definition stays uncovered, which
   is the conservative answer for entry points. *)
let covered (g : Callgraph.graph) =
  let n = Array.length g.defs in
  let chargers =
    Array.to_list g.defs
    |> List.filter_map (fun (d : Callgraph.def) ->
           if d.charges then Some d.id else None)
  in
  (* Backward BFS from chargers over caller edges marks everything that
     transitively calls a charger. *)
  let reaches = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun id ->
      reaches.(id) <- true;
      Queue.add id queue)
    chargers;
  while not (Queue.is_empty queue) do
    let id = Queue.take queue in
    List.iter
      (fun caller ->
        if not reaches.(caller) then begin
          reaches.(caller) <- true;
          Queue.add caller queue
        end)
      g.callers.(id)
  done;
  let cov = Array.copy reaches in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (d : Callgraph.def) ->
        if not cov.(d.id) then begin
          let callers = g.callers.(d.id) in
          if callers <> [] && List.for_all (fun c -> cov.(c)) callers
          then begin
            cov.(d.id) <- true;
            changed := true
          end
        end)
      g.defs
  done;
  cov
