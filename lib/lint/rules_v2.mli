(** The interprocedural rules (R5 determinism taint, R6 domain safety,
    R7 charge completeness) over {!Callgraph} and {!Dataflow}. Returns
    plain records; {!Lint} converts them into findings and applies
    suppressions. *)

type v_finding = {
  vf_file : string;
  vf_line : int;
  vf_col : int;
  vf_rule : string;  (** "R5" | "R6" | "R7" *)
  vf_message : string;
}

type site = {
  st_file : string;
  st_line : int;
  st_col : int;
  st_unit : string;
  st_def : string;
  st_kind : string;
  st_target : string;
  st_status : string;
      (** "atomic" | "local" | "mutex" | "annotated" | "unguarded" *)
  st_reason : string option;
}

val r5 :
  Callgraph.graph ->
  Dataflow.witness option array ->
  deterministic_components:string list ->
  v_finding list
(** Flag each call site where a deterministic-component definition calls
    a tainted callee outside the deterministic components — the point
    where hidden nondeterminism crosses the boundary. Direct sources
    are R2's per-file findings. One finding per (caller, callee). *)

val r6 :
  Callgraph.graph ->
  entries:string list ->
  annotated:(file:string -> line:int -> string option) ->
  site list * v_finding list * string list
(** Inventory every shared-mutable write reachable from the entry
    points ("Unit.def" names; unresolved ones are ignored). [annotated]
    reports (and marks used) a domain-local annotation covering a line.
    Returns (sorted sites, findings for unguarded sites, resolved entry
    labels sorted). *)

val r7 : Callgraph.graph -> bool array -> v_finding list
(** Given {!Dataflow.covered}, flag every [Backend.read]/[write] site
    in an uncovered definition. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal. *)

val report : entry_points:string list -> site list -> string
(** Render the shared-state JSON report. Byte-stable for a fixed input:
    sorted sites, derived summary counts, no hash-order dependence. *)
