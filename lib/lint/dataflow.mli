(** Fixpoint dataflow passes over the {!Callgraph}. *)

type witness = {
  w_origin : string;   (** the concrete source, e.g. ["Random.int"] *)
  w_via : int option;  (** tainted callee the taint arrived through;
                           [None] when the source is in this def *)
}

val taint : Callgraph.graph -> witness option array
(** Least fixpoint of "contains a nondeterminism source or calls a
    tainted definition", indexed by definition id. Each tainted def
    carries one witness for chain rendering. *)

val chain : Callgraph.graph -> witness option array -> int -> string
(** Render ["Engine.f -> Helper.g -> Random.int"] for a tainted def. *)

val reachable : Callgraph.graph -> entries:int list -> bool array
(** Forward reachability along call edges from the given entry ids. *)

val covered : Callgraph.graph -> bool array
(** R7 charge coverage: a def is covered when it transitively calls a
    round-charging definition, or when it has callers and all of them
    are covered. Least fixpoint; uncalled non-charging defs stay
    uncovered. *)
