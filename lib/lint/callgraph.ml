(* Whole-program call graph over the repository's parsetrees.

   Resolution is module-qualified and good enough for this codebase's
   style: every compilation unit is a module named after its file,
   references are either local ([f]), alias-qualified ([P.f] after
   [module P = Pdm_sim.Pdm]), wrapper-qualified ([Pdm_sim.Pdm.f]) or
   nested ([Sub.f] for a module defined in the same file). Anything
   else (stdlib, closures, functor tricks) resolves to nothing and
   simply contributes no edge — the interprocedural rules stay
   conservative where the graph is blind, and the per-file rules
   (R1-R4) still see every direct use.

   Besides edges, each definition carries the facts the v2 rules need:
   direct nondeterminism sources (R5), shared-mutable-state writes with
   a local/atomic pre-classification (R6), [Backend.read]/[write] call
   sites and whether the body charges the round ledger (R7). *)

type pos = { line : int; col : int }

type guard = Guard_atomic | Guard_local | Guard_none

type mutation = {
  m_kind : string;      (* "setfield", "ref-assign", "hashtbl-mut", ... *)
  m_target : string;    (* rendered subject, e.g. "t.served" *)
  m_pos : pos;
  m_guard : guard;
}

type def = {
  id : int;
  unit_name : string;   (* capitalized file basename, e.g. "Engine" *)
  def_name : string;    (* "run_batch", or "Sub.f" for nested modules *)
  file : string;
  pos : pos;
  component : string;   (* segment after lib/, "" elsewhere *)
  sources : (string * pos) list;   (* direct taint sources, e.g. "Random.int" *)
  charges : bool;       (* assigns a [rounds_done] field: round accounting *)
  io_sites : (string * pos) list;  (* "Backend.read" / "Backend.write" *)
  mutations : mutation list;
  uses_mutex : bool;
  calls : (int * pos) list;        (* resolved callee ids with call-site *)
}

type graph = {
  defs : def array;
  callers : int list array;           (* reverse edges, deduplicated *)
  by_name : (string, int) Hashtbl.t;  (* "Unit.def" -> id *)
}

let qualified unit_name def_name = unit_name ^ "." ^ def_name

let find g name = Hashtbl.find_opt g.by_name name

let def_label d = qualified d.unit_name d.def_name

let component_of_path path =
  let rec after_lib = function
    | [] -> ""
    | "lib" :: comp :: _ -> comp
    | _ :: rest -> after_lib rest
  in
  after_lib
    (String.split_on_char '/'
       (String.map
          (fun c -> if c = Filename.dir_sep.[0] then '/' else c)
          path))

let module_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let pos_of loc =
  let p = loc.Location.loc_start in
  { line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol }

let flatten lid = try Longident.flatten lid with _ -> []

(* ------------------------------------------------------------------ *)
(* Pass 1: per-unit skeleton — aliases and named top-level bindings.   *)

type raw_def = {
  rd_name : string;
  rd_pos : pos;
  rd_expr : Parsetree.expression;
}

type raw_unit = {
  ru_path : string;
  ru_unit : string;
  ru_component : string;
  ru_aliases : (string, string list) Hashtbl.t;
  mutable ru_defs : raw_def list;  (* reverse source order *)
}

let rec pattern_name (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (inner, _) -> pattern_name inner
  | _ -> None

let rec collect_items ru ~prefix items =
  List.iter
    (fun (it : Parsetree.structure_item) ->
      match it.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let pos = pos_of vb.pvb_loc in
            let name =
              match pattern_name vb.pvb_pat with
              | Some n -> prefix ^ n
              | None -> Printf.sprintf "%s__item_%d" prefix pos.line
            in
            ru.ru_defs <-
              { rd_name = name; rd_pos = pos; rd_expr = vb.pvb_expr }
              :: ru.ru_defs)
          vbs
      | Pstr_module mb ->
        let mname = Option.value mb.pmb_name.txt ~default:"_" in
        (match mb.pmb_expr.pmod_desc with
         | Pmod_structure items ->
           collect_items ru ~prefix:(prefix ^ mname ^ ".") items
         | Pmod_ident { txt; _ } ->
           Hashtbl.replace ru.ru_aliases mname (flatten txt)
         | _ -> ())
      | _ -> ())
    items

(* ------------------------------------------------------------------ *)
(* Fact tables                                                         *)

let taint_source parts =
  match parts with
  | "Random" :: _ :: _ -> Some (String.concat "." parts)
  | [ "Hashtbl"; ("hash" | "seeded_hash") ]
  | [ "Sys"; "time" ]
  | [ "Unix"; ("gettimeofday" | "time" | "gmtime" | "localtime" | "times") ]
    ->
    Some (String.concat "." parts)
  | _ -> None

(* Module-level mutators of shared containers: (module, function) ->
   mutation kind. [Atomic] members are recognized but classified as
   guarded. *)
let mutator_kind m f =
  match m, f with
  | "Hashtbl",
    ( "add" | "replace" | "remove" | "reset" | "clear"
    | "filter_map_inplace" ) ->
    Some "hashtbl-mut"
  | "Queue",
    ("add" | "push" | "pop" | "take" | "clear" | "transfer" | "add_seq") ->
    Some "queue-mut"
  | "Stack", ("push" | "pop" | "clear") -> Some "stack-mut"
  | "Buffer",
    ( "add_char" | "add_string" | "add_bytes" | "add_substring" | "clear"
    | "reset" | "truncate" ) ->
    Some "buffer-mut"
  | "Array",
    ( "set" | "unsafe_set" | "fill" | "blit" | "sort" | "fast_sort"
    | "stable_sort" ) ->
    Some "array-set"
  | "Bytes", ("set" | "unsafe_set" | "fill" | "blit" | "blit_string") ->
    Some "bytes-set"
  | ("Array1" | "Array2" | "Array3" | "Genarray"),
    ("set" | "unsafe_set" | "fill" | "blit") ->
    Some "bigarray-set"
  | "Atomic",
    ( "set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr"
    | "decr" ) ->
    Some "atomic"
  | _ -> None

(* RHS shapes that allocate fresh state: a mutation whose subject is a
   let-bound allocation inside the same definition is function-local,
   not shared. *)
let allocator (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_record _ | Pexp_array _ -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    (match flatten txt with
     | [ "ref" ] -> true
     | [ ("Hashtbl" | "Queue" | "Stack" | "Buffer"); "create" ] -> true
     | [ "Array"; ("make" | "init" | "make_matrix" | "copy") ] -> true
     | [ "Bytes"; ("create" | "make" | "copy") ] -> true
     | _ -> false)
  | _ -> false

(* Render the mutated subject compactly: [t.served], [seen],
   [t.backends[]], or [_] when the shape is out of reach. *)
let rec subject (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (flatten txt)
  | Pexp_field (b, { txt; _ }) ->
    let f =
      match List.rev (flatten txt) with f :: _ -> f | [] -> "_"
    in
    subject b ^ "." ^ f
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
    (match flatten txt with
     | [ ("Array" | "Bytes" | "String"); "get" ] ->
       (match args with
        | (_, base) :: _ -> subject base ^ "[]"
        | [] -> "_")
     | _ -> "_")
  | _ -> "_"

let subject_head s =
  match String.index_opt s '.' with
  | Some i -> String.sub s 0 i
  | None -> (match String.index_opt s '[' with
             | Some i -> String.sub s 0 i
             | None -> s)

(* ------------------------------------------------------------------ *)
(* Pass 2: per-definition facts with cross-unit resolution.            *)

type builder = {
  mutable b_sources : (string * pos) list;
  mutable b_charges : bool;
  mutable b_io : (string * pos) list;
  mutable b_mutations : mutation list;
  mutable b_mutex : bool;
  mutable b_calls : (int * pos) list;
}

let expand_alias aliases parts =
  match parts with
  | h :: rest ->
    (match Hashtbl.find_opt aliases h with
     | Some target -> target @ rest
     | None -> parts)
  | [] -> parts

let strip_wrapper wrappers parts =
  match parts with
  | w :: (_ :: _ as rest) when List.mem w wrappers -> rest
  | _ -> parts

let resolve ~wrappers ~ids ~(ru : raw_unit) ~scope parts =
  let parts = strip_wrapper wrappers (expand_alias ru.ru_aliases parts) in
  let lookup name = Hashtbl.find_opt ids name in
  match parts with
  | [] -> None
  | [ f ] ->
    let scoped =
      if scope = "" then None
      else lookup (qualified ru.ru_unit (scope ^ f))
    in
    (match scoped with
     | Some _ -> scoped
     | None -> lookup (qualified ru.ru_unit f))
  | m :: rest ->
    let tail = String.concat "." rest in
    (match lookup (qualified m tail) with
     | Some _ as hit -> hit
     | None -> lookup (qualified ru.ru_unit (m ^ "." ^ tail)))

(* Collect the set of let-bound allocations in a definition body, so
   mutations of them classify as local. Flat per definition — shadowing
   across scopes is ignored, which errs toward "shared" only when a
   local name shadows a parameter (rare in this tree). *)
let collect_locals expr =
  let locals = Hashtbl.create 8 in
  let iter =
    { Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
           | Pexp_let (_, vbs, _) ->
             List.iter
               (fun (vb : Parsetree.value_binding) ->
                 match pattern_name vb.pvb_pat with
                 | Some n when allocator vb.pvb_expr ->
                   Hashtbl.replace locals n ()
                 | _ -> ())
               vbs
           | _ -> ());
          Ast_iterator.default_iterator.expr self e) }
  in
  iter.expr iter expr;
  locals

let first_positional_arg args =
  let positional =
    List.filter_map
      (fun (label, (a : Parsetree.expression)) ->
        match label with
        | Asttypes.Nolabel ->
          (match a.pexp_desc with
           | Pexp_fun _ | Pexp_function _ -> None
           | _ -> Some a)
        | _ -> None)
      args
  in
  match positional with a :: _ -> Some a | [] -> None

let collect_facts ~wrappers ~ids ~ru ~scope (rd : raw_def) =
  let b =
    { b_sources = []; b_charges = false; b_io = []; b_mutations = [];
      b_mutex = false; b_calls = [] }
  in
  let locals = collect_locals rd.rd_expr in
  let add_mutation ?(guard = Guard_none) ~kind ~target pos =
    let guard =
      if guard <> Guard_none then guard
      else if Hashtbl.mem locals (subject_head target) then Guard_local
      else Guard_none
    in
    b.b_mutations <-
      { m_kind = kind; m_target = target; m_pos = pos; m_guard = guard }
      :: b.b_mutations
  in
  let handle_path ~loc raw_parts =
    let parts = expand_alias ru.ru_aliases raw_parts in
    (match taint_source parts with
     | Some src -> b.b_sources <- (src, pos_of loc) :: b.b_sources
     | None -> ());
    (match parts with
     | "Mutex" :: _ -> b.b_mutex <- true
     | _ -> ());
    (match List.rev parts with
     | f :: "Backend" :: _ when f = "read" || f = "write" ->
       b.b_io <- ("Backend." ^ f, pos_of loc) :: b.b_io
     | _ -> ());
    match resolve ~wrappers ~ids ~ru ~scope raw_parts with
    | Some callee -> b.b_calls <- (callee, pos_of loc) :: b.b_calls
    | None -> ()
  in
  let handle_apply (fn : Parsetree.expression) args loc =
    match fn.pexp_desc with
    | Pexp_ident { txt; _ } ->
      let parts = strip_wrapper wrappers (expand_alias ru.ru_aliases
                                            (flatten txt)) in
      let mut =
        match parts with
        | [ ":=" ] -> Some ("ref-assign", Guard_none)
        | [ ("incr" | "decr") ] -> Some ("ref-assign", Guard_none)
        | [ m; f ] | [ "Bigarray"; m; f ] ->
          (match mutator_kind m f with
           | Some "atomic" -> Some ("atomic", Guard_atomic)
           | Some kind -> Some (kind, Guard_none)
           | None -> None)
        | _ -> None
      in
      (match mut with
       | None -> ()
       | Some (kind, guard) ->
         let target =
           match first_positional_arg args with
           | Some a -> subject a
           | None -> "_"
         in
         add_mutation ~guard ~kind ~target (pos_of loc))
    | _ -> ()
  in
  let iter =
    { Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
           | Pexp_ident { txt; loc } -> handle_path ~loc (flatten txt)
           | Pexp_field (_, { txt; loc }) ->
             (match List.rev (flatten txt) with
              | f :: "Backend" :: _ when f = "read" || f = "write" ->
                b.b_io <- ("Backend." ^ f, pos_of loc) :: b.b_io
              | _ -> ())
           | Pexp_setfield (base, { txt; loc }, _) ->
             let field =
               match List.rev (flatten txt) with f :: _ -> f | [] -> "_"
             in
             if field = "rounds_done" then b.b_charges <- true;
             add_mutation ~kind:"setfield"
               ~target:(subject base ^ "." ^ field)
               (pos_of loc)
           | Pexp_apply (fn, args) -> handle_apply fn args e.pexp_loc
           | _ -> ());
          Ast_iterator.default_iterator.expr self e) }
  in
  iter.expr iter rd.rd_expr;
  b

(* ------------------------------------------------------------------ *)

let scope_of_name name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name 0 (i + 1)
  | None -> ""

let build ~wrappers units =
  let raw_units =
    List.map
      (fun (path, structure) ->
        let ru =
          { ru_path = path;
            ru_unit = module_of_path path;
            ru_component = component_of_path path;
            ru_aliases = Hashtbl.create 8;
            ru_defs = [] }
        in
        collect_items ru ~prefix:"" structure;
        ru.ru_defs <- List.rev ru.ru_defs;
        ru)
      units
  in
  let ids = Hashtbl.create 256 in
  let flat = ref [] in
  let n = ref 0 in
  List.iter
    (fun ru ->
      List.iter
        (fun rd ->
          let id = !n in
          incr n;
          Hashtbl.replace ids (qualified ru.ru_unit rd.rd_name) id;
          flat := (id, ru, rd) :: !flat)
        ru.ru_defs)
    raw_units;
  let flat = List.rev !flat in
  let defs =
    Array.make (max 1 !n)
      { id = 0; unit_name = ""; def_name = ""; file = ""; component = "";
        pos = { line = 0; col = 0 }; sources = []; charges = false;
        io_sites = []; mutations = []; uses_mutex = false; calls = [] }
  in
  List.iter
    (fun (id, ru, rd) ->
      let scope = scope_of_name rd.rd_name in
      let b = collect_facts ~wrappers ~ids ~ru ~scope rd in
      defs.(id) <-
        { id;
          unit_name = ru.ru_unit;
          def_name = rd.rd_name;
          file = ru.ru_path;
          pos = rd.rd_pos;
          component = ru.ru_component;
          sources = List.rev b.b_sources;
          charges = b.b_charges;
          io_sites = List.rev b.b_io;
          mutations = List.rev b.b_mutations;
          uses_mutex = b.b_mutex;
          calls = List.rev b.b_calls })
    flat;
  let total = !n in
  let callers = Array.make (max 1 total) [] in
  let seen = Hashtbl.create 256 in
  Array.iteri
    (fun caller d ->
      if caller < total then
        List.iter
          (fun (callee, _) ->
            if not (Hashtbl.mem seen (caller, callee)) then begin
              Hashtbl.replace seen (caller, callee) ();
              callers.(callee) <- caller :: callers.(callee)
            end)
          d.calls)
    defs;
  Array.iteri
    (fun i cs -> callers.(i) <- List.sort compare cs)
    callers;
  { defs = (if total = 0 then [||] else Array.sub defs 0 total);
    callers = (if total = 0 then [||] else Array.sub callers 0 total);
    by_name = ids }
