type t = {
  mutable values : float array;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  { values = Array.make 16 0.0; n = 0; sum = 0.0; sumsq = 0.0;
    vmin = infinity; vmax = neg_infinity }

let add s x =
  if s.n = Array.length s.values then begin
    let values' = Array.make (2 * s.n) 0.0 in
    Array.blit s.values 0 values' 0 s.n;
    s.values <- values'
  end;
  s.values.(s.n) <- x;
  s.n <- s.n + 1;
  s.sum <- s.sum +. x;
  s.sumsq <- s.sumsq +. (x *. x);
  if x < s.vmin then s.vmin <- x;
  if x > s.vmax then s.vmax <- x

let add_int s x = add s (float_of_int x)

let count s = s.n

let total s = s.sum

let mean s = if s.n = 0 then 0.0 else s.sum /. float_of_int s.n

let min s = s.vmin

let max s = s.vmax

let stddev s =
  if s.n = 0 then 0.0
  else
    let m = mean s in
    let var = (s.sumsq /. float_of_int s.n) -. (m *. m) in
    sqrt (Float.max 0.0 var)

let percentile s p =
  if s.n = 0 then invalid_arg "Summary.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of range";
  let sorted = Array.sub s.values 0 s.n in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int s.n)) in
  sorted.(Imath.clamp ~lo:0 ~hi:(s.n - 1) (rank - 1))

let to_string s =
  Printf.sprintf "n=%d mean=%.3f max=%.0f" s.n (mean s) (max s)
