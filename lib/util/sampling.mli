(** Sampling key sets from a large universe.

    Dictionary experiments need sets of [n] *distinct* keys drawn from a
    universe of size [u] with u ≫ n, deterministically from a seed. *)

val distinct : Prng.t -> universe:int -> count:int -> int array
(** [distinct g ~universe ~count] draws [count] distinct keys uniformly
    from [0, universe-1]. Requires [count <= universe]. O(count)
    expected time when [count] ≪ [universe]; falls back to a shuffled
    prefix when the universe is small. *)

val disjoint_pair :
  Prng.t -> universe:int -> count:int -> int array * int array
(** [disjoint_pair g ~universe ~count] draws two disjoint sets of
    [count] distinct keys each (members vs. non-members for lookup
    experiments). Requires [2 * count <= universe]. *)

val clustered : Prng.t -> universe:int -> count:int -> span:int -> int array
(** [clustered g ~universe ~count ~span] draws [count] distinct keys
    confined to a random aligned window of [span] consecutive universe
    values — an adversarial-ish input for structures that exploit key
    locality. Requires [count <= span <= universe]. *)
