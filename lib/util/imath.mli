(** Small integer arithmetic helpers used throughout the parameter
    calculations of the expander and dictionary constructions. *)

val cdiv : int -> int -> int
(** [cdiv a b] is ⌈a / b⌉ for [a >= 0], [b > 0]. *)

val floor_log2 : int -> int
(** [floor_log2 n] is ⌊log₂ n⌋ for [n >= 1]. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is ⌈log₂ n⌉ for [n >= 1]; [ceil_log2 1 = 0]. *)

val is_pow2 : int -> bool
(** Whether [n] is a positive power of two. *)

val next_pow2 : int -> int
(** [next_pow2 n] is the least power of two ≥ [n], for [n >= 1]. *)

val pow : int -> int -> int
(** [pow b e] is [b]{^ [e]} for [e >= 0] (no overflow check). *)

val ilog : base:int -> int -> int
(** [ilog ~base n] is ⌊log_base n⌋ for [n >= 1], [base >= 2]. *)

val clamp : lo:int -> hi:int -> int -> int
(** Clamp a value to an inclusive range. *)

val log2f : int -> float
(** [log2f n] is log₂ n as a float, for [n >= 1]. *)

val round_up_to : multiple:int -> int -> int
(** [round_up_to ~multiple n] is the least multiple of [multiple] that
    is ≥ [n]; [multiple] must be positive. *)
