let distinct_in g ~lo ~span ~count =
  if count > span then invalid_arg "Sampling.distinct: count > universe";
  if count * 2 >= span then begin
    (* Dense case: shuffle the whole window and take a prefix. *)
    let all = Array.init span (fun i -> lo + i) in
    Prng.shuffle g all;
    Array.sub all 0 count
  end
  else begin
    let seen = Hashtbl.create (2 * count) in
    let out = Array.make count 0 in
    let filled = ref 0 in
    while !filled < count do
      let k = lo + Prng.int g span in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        out.(!filled) <- k;
        incr filled
      end
    done;
    out
  end

let distinct g ~universe ~count =
  if universe < 1 then invalid_arg "Sampling.distinct: empty universe";
  distinct_in g ~lo:0 ~span:universe ~count

let disjoint_pair g ~universe ~count =
  if 2 * count > universe then
    invalid_arg "Sampling.disjoint_pair: universe too small";
  let both = distinct g ~universe ~count:(2 * count) in
  (Array.sub both 0 count, Array.sub both count count)

let clustered g ~universe ~count ~span =
  if span > universe then invalid_arg "Sampling.clustered: span > universe";
  if count > span then invalid_arg "Sampling.clustered: count > span";
  let lo = if universe = span then 0 else Prng.int g (universe - span) in
  distinct_in g ~lo ~span ~count
