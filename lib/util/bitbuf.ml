module Writer = struct
  type t = { mutable buf : Bytes.t; mutable bits : int }

  let create () = { buf = Bytes.make 16 '\000'; bits = 0 }

  let length_bits w = w.bits

  (* pdm-lint: domain local — writer cursor is stack-local codec state, never shared *)
  let ensure w extra_bits =
    let needed = Imath.cdiv (w.bits + extra_bits) 8 in
    let cap = Bytes.length w.buf in
    if needed > cap then begin
      let cap' = max needed (2 * cap) in
      let buf' = Bytes.make cap' '\000' in
      Bytes.blit w.buf 0 buf' 0 cap;
      w.buf <- buf'
    end

  (* pdm-lint: domain local — writer cursor is stack-local codec state, never shared *)
  let add_bit w b =
    ensure w 1;
    if b then begin
      let byte = w.bits lsr 3 and off = w.bits land 7 in
      let cur = Char.code (Bytes.get w.buf byte) in
      Bytes.set w.buf byte (Char.chr (cur lor (0x80 lsr off)))
    end;
    w.bits <- w.bits + 1

  let add_bits w ~value ~width =
    if width < 0 || width > 62 then invalid_arg "Bitbuf.add_bits: width";
    if width < 62 && value lsr width <> 0 then
      invalid_arg "Bitbuf.add_bits: value does not fit width";
    if value < 0 then invalid_arg "Bitbuf.add_bits: negative value";
    for i = width - 1 downto 0 do
      add_bit w ((value lsr i) land 1 = 1)
    done

  let add_unary w n =
    if n < 0 then invalid_arg "Bitbuf.add_unary";
    for _ = 1 to n do add_bit w true done;
    add_bit w false

  let add_varint w n =
    if n < 0 then invalid_arg "Bitbuf.add_varint";
    let rec groups n =
      let low = n land 0x7f and rest = n lsr 7 in
      if rest = 0 then add_bits w ~value:low ~width:8
      else begin
        add_bits w ~value:(0x80 lor low) ~width:8;
        groups rest
      end
    in
    groups n

  let contents w = Bytes.sub w.buf 0 (Imath.cdiv w.bits 8)
end

module Reader = struct
  type t = { data : Bytes.t; len_bits : int; mutable pos : int }

  let of_bytes b = { data = b; len_bits = 8 * Bytes.length b; pos = 0 }

  let of_writer w =
    { data = Writer.contents w; len_bits = Writer.length_bits w; pos = 0 }

  let pos r = r.pos

  let remaining r = r.len_bits - r.pos

  (* pdm-lint: domain local — reader cursor is stack-local codec state, never shared *)
  let read_bit r =
    if r.pos >= r.len_bits then invalid_arg "Bitbuf.read_bit: end of buffer";
    let byte = r.pos lsr 3 and off = r.pos land 7 in
    r.pos <- r.pos + 1;
    Char.code (Bytes.get r.data byte) land (0x80 lsr off) <> 0

  let read_bits r ~width =
    if width < 0 || width > 62 then invalid_arg "Bitbuf.read_bits: width";
    if remaining r < width then invalid_arg "Bitbuf.read_bits: end of buffer";
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if read_bit r then 1 else 0)
    done;
    !v

  let read_unary r =
    let n = ref 0 in
    while read_bit r do incr n done;
    !n

  let read_varint r =
    let rec groups acc shift =
      let g = read_bits r ~width:8 in
      let acc = acc lor ((g land 0x7f) lsl shift) in
      if g land 0x80 = 0 then acc else groups acc (shift + 7)
    in
    groups 0 0

  let seek r p =
    if p < 0 || p > r.len_bits then invalid_arg "Bitbuf.seek";
    r.pos <- p
end
