(** The single sanctioned wall-clock site.

    Every result in this repository is deterministic: simulated I/O
    costs, placements and answers must never depend on real time. The
    only legitimate use of a clock is *reporting* — ops/sec columns in
    experiment tables — and all of it goes through this module, so the
    [pdm-lint] determinism rule (R2) has exactly one allowlisted call
    site to audit. Never branch on these values. *)

val now : unit -> float
(** Processor time in seconds ([Sys.time]); subtract two samples for a
    duration. Reporting only. *)

val duration : (unit -> 'a) -> 'a * float
(** [duration f] runs [f] and returns its result with the elapsed
    processor time in seconds. *)
