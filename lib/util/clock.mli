(** The single sanctioned wall-clock site.

    Every result in this repository is deterministic: simulated I/O
    costs, placements and answers must never depend on real time. The
    only legitimate use of a clock is *reporting* — ops/sec columns in
    experiment tables — and all of it goes through this module, so the
    [pdm-lint] determinism rule (R2) has exactly one allowlisted call
    site to audit. Never branch on these values. *)

val now : unit -> float
(** Processor time in seconds ([Sys.time]); subtract two samples for a
    duration. Reporting only. *)

val duration : (unit -> 'a) -> 'a * float
(** [duration f] runs [f] and returns its result with the elapsed
    processor time in seconds. *)

val wall : unit -> float
(** Real time in seconds since the epoch. Processor time undercounts
    the real-I/O backends, whose dominant cost is time spent blocked
    in [fsync]/[pread]; wall-clock figures (E22, the bench ns columns
    under [--backend file]) use this instead. Reporting only. *)

val wall_duration : (unit -> 'a) -> 'a * float
(** [wall_duration f] runs [f] and returns its result with the elapsed
    real time in seconds. *)
