let cdiv a b =
  if b <= 0 then invalid_arg "Imath.cdiv: divisor must be positive";
  if a < 0 then invalid_arg "Imath.cdiv: dividend must be non-negative";
  (a + b - 1) / b

let floor_log2 n =
  if n < 1 then invalid_arg "Imath.floor_log2";
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let ceil_log2 n =
  if n < 1 then invalid_arg "Imath.ceil_log2";
  let f = floor_log2 n in
  if 1 lsl f = n then f else f + 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  if n < 1 then invalid_arg "Imath.next_pow2";
  1 lsl ceil_log2 n

let pow b e =
  if e < 0 then invalid_arg "Imath.pow: negative exponent";
  let rec loop acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then loop (acc * b) (b * b) (e lsr 1)
    else loop acc (b * b) (e lsr 1)
  in
  loop 1 b e

let ilog ~base n =
  if base < 2 then invalid_arg "Imath.ilog: base must be >= 2";
  if n < 1 then invalid_arg "Imath.ilog: n must be >= 1";
  let rec loop n acc = if n < base then acc else loop (n / base) (acc + 1) in
  loop n 0

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let log2f n =
  if n < 1 then invalid_arg "Imath.log2f";
  log (float_of_int n) /. log 2.0

let round_up_to ~multiple n =
  if multiple <= 0 then invalid_arg "Imath.round_up_to";
  cdiv n multiple * multiple
