(** Running summaries of measured quantities (I/O counts, loads).

    Experiments accumulate per-operation costs here and report mean,
    maximum and percentiles; the paper's bounds are stated either in the
    worst case (max) or "on average over all elements" (mean), so both
    are first-class. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_int : t -> int -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** Mean of the added values; 0 when empty. *)

val min : t -> float
(** Minimum added value; [infinity] when empty. *)

val max : t -> float
(** Maximum added value; [neg_infinity] when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when empty. *)

val percentile : t -> float -> float
(** [percentile s p] for [p] in [0, 100], by nearest-rank on the sorted
    sample. Raises [Invalid_argument] when empty. Costs a sort per
    call. *)

val to_string : t -> string
(** One-line rendering: count, mean, max. *)
