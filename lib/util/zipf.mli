(** Zipf-distributed sampling over ranks [0, n-1].

    Used by the workload generators for the webmail/http-server access
    patterns of Section 1.2: a very large key population accessed with a
    heavy-tailed popularity distribution. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over [n] ranks with exponent
    [s >= 0]. Rank [k] (0-based) has probability proportional to
    1/(k+1){^ s}. [s = 0] degenerates to the uniform distribution.
    Preprocessing is O(n). *)

val n : t -> int

val exponent : t -> float

val sample : t -> Prng.t -> int
(** Draw a rank in O(log n) by binary search on the precomputed CDF. *)

val pmf : t -> int -> float
(** [pmf z k] is the probability of rank [k]. *)
