(** Bit-exact encoding buffers.

    The one-probe dictionary of Section 4.2 stores, inside each array
    field, identifiers of ⌈lg n⌉ bits (case (b)) or unary-coded relative
    pointers terminated by a 0-bit followed by record data (case (a)).
    Checking Theorem 6's space bounds *in bits* requires an encoder and
    decoder that work at single-bit granularity; this module provides
    them.

    Bits are appended most-significant-first within each byte, so the
    concatenation order of writes equals the order of reads. *)

module Writer : sig
  type t

  val create : unit -> t

  val length_bits : t -> int
  (** Number of bits written so far. *)

  val add_bit : t -> bool -> unit

  val add_bits : t -> value:int -> width:int -> unit
  (** [add_bits w ~value ~width] appends the [width] low bits of
      [value], most significant first. [0 <= width <= 62] and [value]
      must fit in [width] bits. *)

  val add_unary : t -> int -> unit
  (** [add_unary w n] appends [n] one-bits followed by a terminating
      zero-bit (so the empty value costs one bit). [n >= 0]. *)

  val add_varint : t -> int -> unit
  (** LEB128-style: 7 value bits per group, high bit = continuation.
      Costs 8·⌈bits(n)/7⌉ bits; efficient for skewed small values
      where unary would explode. [n >= 0]. *)

  val contents : t -> Bytes.t
  (** The written bits, zero-padded to a whole number of bytes. *)
end

module Reader : sig
  type t

  val of_bytes : Bytes.t -> t

  val of_writer : Writer.t -> t
  (** Read back exactly what was written, without copying through an
      intermediate representation of your own. *)

  val pos : t -> int
  (** Current read position in bits. *)

  val remaining : t -> int
  (** Bits left before the end of the underlying buffer. *)

  val read_bit : t -> bool

  val read_bits : t -> width:int -> int
  (** Inverse of {!Writer.add_bits}. Raises [Invalid_argument] when
      fewer than [width] bits remain. *)

  val read_unary : t -> int
  (** Inverse of {!Writer.add_unary}. *)

  val read_varint : t -> int
  (** Inverse of {!Writer.add_varint}. *)

  val seek : t -> int -> unit
  (** [seek r pos] moves the read head to absolute bit position [pos]. *)
end
