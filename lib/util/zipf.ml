type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if s < 0.0 then invalid_arg "Zipf.create: s must be >= 0";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { n; s; cdf }

let n z = z.n

let exponent z = z.s

let sample z g =
  let u = Prng.float g 1.0 in
  (* Least index k with cdf.(k) >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if z.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (z.n - 1)

let pmf z k =
  if k < 0 || k >= z.n then invalid_arg "Zipf.pmf: rank out of range";
  if k = 0 then z.cdf.(0) else z.cdf.(k) -. z.cdf.(k - 1)
