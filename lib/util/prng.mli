(** Deterministic pseudo-random number generation.

    All randomness in this repository flows through this module so that
    every experiment is reproducible bit-for-bit from a seed. The
    generator is SplitMix64 (Steele, Lea, Flood 2014): a tiny, fast,
    splittable generator with 64-bit state whose output passes BigCrush.

    Two interfaces are provided:

    - a mutable stream ({!t}) for workload generation, and
    - a stateless keyed hash ({!mix64}, {!hash2}, {!hash3}) used as the
      neighbor function of seeded expander graphs, where evaluating
      neighbor [i] of vertex [x] must not depend on evaluation order. *)

type t
(** A mutable generator stream. *)

val create : int -> t
(** [create seed] makes a fresh stream from a 63-bit seed. *)

val copy : t -> t
(** [copy g] is an independent clone with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new stream whose future output
    is independent of [g]'s (in the SplitMix sense). *)

val next : t -> int
(** [next g] returns the next value, uniform over 62-bit non-negative
    OCaml ints. *)

val int : t -> int -> int
(** [int g bound] is uniform over [0, bound-1]. [bound] must be
    positive. Uses rejection sampling, so it is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform over the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float g x] is uniform over [0, x). *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val mix64 : int -> int
(** [mix64 z] is the SplitMix64 finalizer: a fixed bijective mixing of a
    63-bit int with strong avalanche behaviour. *)

val hash2 : seed:int -> int -> int -> int
(** [hash2 ~seed a b] hashes the pair [(a, b)] to a non-negative int,
    deterministically in [seed]. *)

val hash3 : seed:int -> int -> int -> int -> int
(** [hash3 ~seed a b c] hashes the triple [(a, b, c)]. *)

val hash_to_range : seed:int -> int -> int -> int -> int
(** [hash_to_range ~seed a b range] is [hash2 ~seed a b mod range], with
    the modulo bias removed by remixing; [range] must be positive. *)
