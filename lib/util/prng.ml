(* SplitMix64. State and arithmetic are Int64; outputs are truncated to
   the 62 low bits so they fit a non-negative OCaml int on 64-bit
   platforms.

   The mixers sit on every probe's addressing path (and, via the
   keyed checksum, on every sealed write), so the small functions are
   marked [@inline]: inlined, the intermediate Int64s stay unboxed and
   the per-probe hash allocates nothing. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let[@inline] mix64_i64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let[@inline] to_nonneg_int z = Int64.to_int z land max_int

let[@inline] mix64 x = to_nonneg_int (mix64_i64 (Int64.of_int x))

let create seed = { state = mix64_i64 (Int64.of_int seed) }

let copy g = { state = g.state }

let next_i64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64_i64 g.state

let next g = to_nonneg_int (next_i64 g)

let split g = { state = next_i64 g }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the smallest power-of-two envelope. *)
  let mask =
    let rec grow m = if m >= bound - 1 then m else grow ((m lsl 1) lor 1) in
    grow 1
  in
  let rec draw () =
    let v = next g land mask in
    if v < bound then v else draw ()
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g x = x *. (Int64.to_float (Int64.shift_right_logical (next_i64 g) 11) /. 9007199254740992.0)

let bool g = next g land 1 = 1

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let[@inline] hash2 ~seed a b =
  let z = Int64.of_int seed in
  let z = mix64_i64 (Int64.add z (Int64.mul (Int64.of_int a) golden_gamma)) in
  let z = mix64_i64 (Int64.add z (Int64.mul (Int64.of_int b) 0xC2B2AE3D27D4EB4FL)) in
  to_nonneg_int z

let hash3 ~seed a b c =
  let z = Int64.of_int (hash2 ~seed a b) in
  let z = mix64_i64 (Int64.add z (Int64.mul (Int64.of_int c) golden_gamma)) in
  to_nonneg_int z

let hash_to_range ~seed a b range =
  if range <= 0 then invalid_arg "Prng.hash_to_range: range must be positive";
  (* A second mixing round decorrelates the modulo classes. *)
  mix64 (hash2 ~seed a b) mod range
