let now () =
  (* pdm-lint: allow R2 — the one sanctioned wall-clock read in the
     tree. Every throughput figure flows through this wrapper, so a
     determinism audit has a single site to inspect; simulated I/O
     costs never depend on it. *)
  Sys.time ()

let duration f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
