let now () =
  (* pdm-lint: allow R2 — the one sanctioned wall-clock read in the
     tree. Every throughput figure flows through this wrapper, so a
     determinism audit has a single site to inspect; simulated I/O
     costs never depend on it. *)
  Sys.time ()

let duration f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let wall () =
  (* pdm-lint: allow R2 — the real-time companion to [now], for
     reporting on the real-I/O backends where the interesting cost is
     time spent *blocked* (fsync, pread) that processor time cannot
     see. Reporting only; never branch on it. *)
  Unix.gettimeofday ()

let wall_duration f =
  let t0 = wall () in
  let r = f () in
  (r, wall () -. t0)
