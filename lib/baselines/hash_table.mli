(** The striped hash table baseline (Section 1.1).

    The D disks are treated as one disk with block size BD (striping);
    the table is an array of superblocks and key x hashes to
    superblock h(x). With BD = Ω(log n) and a suitable constant on the
    linear space, no superblock overflows with high probability, so
    lookups take 1 parallel I/O and updates 2 {e whp} — but only with
    high probability: overflowing superblocks spill to their linear-
    probing successors, and adversarial or unlucky key sets degrade.
    This is the randomized structure the deterministic dictionaries
    are measured against in Figure 1.

    Deletions use tombstones (linear probing must not break chains);
    tombstoned slots are reused by later inserts. *)

type config = {
  universe : int;
  capacity : int;
  value_bytes : int;
  superblocks : int;
  base : int;       (** first superblock of the table's window *)
  seed : int;
}

type t

val plan :
  ?utilization:float ->
  universe:int ->
  capacity:int ->
  block_words:int ->
  disks:int ->
  value_bytes:int ->
  seed:int ->
  unit ->
  config
(** Size the table for the given load factor (default 0.5) in record
    slots. *)

val create : machine:int Pdm_sim.Pdm.t -> config -> t
(** Uses the whole machine through striping. *)

val config : t -> config

val size : t -> int

val find : t -> int -> Bytes.t option
(** 1 I/O + 1 per overflow hop. *)

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit
(** Read-probe then one write. *)

val delete : t -> int -> bool

val overflowing_lookups : t -> int array -> int
(** Diagnostic: how many of these keys' lookups need more than one
    I/O right now. *)

val max_probe_distance : t -> int
(** Uncounted diagnostic: longest current probe chain (0 = everything
    home). *)
