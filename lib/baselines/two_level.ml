module Pdm = Pdm_sim.Pdm
module Striping = Pdm_sim.Striping
module Prng = Pdm_util.Prng
module Imath = Pdm_util.Imath
module Codec = Pdm_dictionary.Codec

type config = {
  universe : int;
  capacity : int;
  value_bytes : int;
  primary_slots : int;
  seed : int;
}

type t = {
  cfg : config;
  view : int Striping.t;
  secondary : Hash_table.t;
  width : int;
  slots_per_sb : int;
  marker : int;          (* sentinel key: a collision happened here *)
  mutable collided : int;
  mutable size : int;
}

let width_of cfg = 1 + Codec.words_for_bits (8 * cfg.value_bytes)

let plan ?(slot_factor = 8) ~universe ~capacity ~block_words ~disks
    ~value_bytes ~seed () =
  ignore block_words;
  ignore disks;
  if slot_factor < 2 then invalid_arg "Two_level.plan: slot_factor >= 2";
  { universe; capacity; value_bytes; primary_slots = slot_factor * capacity;
    seed }

let primary_superblocks cfg ~block_words ~disks =
  Imath.cdiv cfg.primary_slots (disks * block_words / width_of cfg)

let secondary_plan cfg ~block_words ~disks =
  (* The secondary must be able to absorb every key in the worst case
     (all colliding); [7]'s dictionary has the same property. *)
  Hash_table.plan ~universe:cfg.universe ~capacity:cfg.capacity ~block_words
    ~disks ~value_bytes:cfg.value_bytes ~seed:(cfg.seed + 7919) ()

let superblocks_needed cfg ~block_words ~disks =
  primary_superblocks cfg ~block_words ~disks
  + (secondary_plan cfg ~block_words ~disks).Hash_table.superblocks

let create ~machine cfg =
  let view = Striping.create machine in
  let block_words = Pdm.block_size machine and disks = Pdm.disks machine in
  let p = primary_superblocks cfg ~block_words ~disks in
  let sec_cfg = { (secondary_plan cfg ~block_words ~disks) with base = p } in
  if p + sec_cfg.Hash_table.superblocks > Striping.superblocks view then
    invalid_arg "Two_level.create: machine too small";
  let width = width_of cfg in
  let slots_per_sb = Striping.superblock_size view / width in
  if slots_per_sb < 1 then
    invalid_arg "Two_level.create: record exceeds superblock";
  { cfg; view; secondary = Hash_table.create ~machine sec_cfg; width;
    slots_per_sb; marker = cfg.universe; collided = 0; size = 0 }

let config t = t.cfg
let size t = t.size
let collided_slots t = t.collided

let slot_of t key =
  let p = Prng.hash_to_range ~seed:t.cfg.seed key 1 t.cfg.primary_slots in
  (p / t.slots_per_sb, p mod t.slots_per_sb)

let value_of t record =
  Codec.bytes_of_words_len
    (Array.sub record 1 (t.width - 1))
    ~len:t.cfg.value_bytes

let record_of t key value =
  if Bytes.length value > t.cfg.value_bytes then
    invalid_arg "Two_level: value too large";
  let padded = Bytes.make t.cfg.value_bytes '\000' in
  Bytes.blit value 0 padded 0 (Bytes.length value);
  Array.append [| key |] (Codec.words_of_bytes padded)

let find t key =
  let sb, s = slot_of t key in
  let block = Striping.read t.view sb in
  match Codec.Slots.read block ~width:t.width s with
  | None -> None
  | Some record when record.(0) = key -> Some (value_of t record)
  | Some record when record.(0) = t.marker -> Hash_table.find t.secondary key
  | Some _ -> None (* someone else lives here and no collision occurred *)

let mem t key = find t key <> None

let insert t key value =
  if key < 0 || key >= t.cfg.universe then invalid_arg "Two_level: key range";
  let sb, s = slot_of t key in
  let block = Striping.read t.view sb in
  match Codec.Slots.read block ~width:t.width s with
  | None ->
    Codec.Slots.write block ~width:t.width s (Some (record_of t key value));
    Striping.write t.view sb block;
    t.size <- t.size + 1
  | Some record when record.(0) = key ->
    Codec.Slots.write block ~width:t.width s (Some (record_of t key value));
    Striping.write t.view sb block
  | Some record when record.(0) = t.marker ->
    let had = Hash_table.mem t.secondary key in
    Hash_table.insert t.secondary key value;
    if not had then t.size <- t.size + 1
  | Some record ->
    (* First collision at this slot: evict the resident, mark it, and
       send both keys to the secondary dictionary. *)
    let resident_key = record.(0) and resident_value = value_of t record in
    let marker_record = Array.make t.width 0 in
    marker_record.(0) <- t.marker;
    Codec.Slots.write block ~width:t.width s (Some marker_record);
    Striping.write t.view sb block;
    t.collided <- t.collided + 1;
    Hash_table.insert t.secondary resident_key resident_value;
    Hash_table.insert t.secondary key value;
    t.size <- t.size + 1

let delete t key =
  let sb, s = slot_of t key in
  let block = Striping.read t.view sb in
  match Codec.Slots.read block ~width:t.width s with
  | None -> false
  | Some record when record.(0) = key ->
    Codec.Slots.write block ~width:t.width s None;
    Striping.write t.view sb block;
    t.size <- t.size - 1;
    true
  | Some record when record.(0) = t.marker ->
    let hit = Hash_table.delete t.secondary key in
    if hit then t.size <- t.size - 1;
    hit
  | Some _ -> false
