module Pdm = Pdm_sim.Pdm
module Striping = Pdm_sim.Striping
module Prng = Pdm_util.Prng
module Imath = Pdm_util.Imath
module Codec = Pdm_dictionary.Codec

type config = {
  universe : int;
  capacity : int;
  value_bytes : int;
  superblocks : int;
  base : int;
  seed : int;
}

type t = {
  cfg : config;
  view : int Striping.t;
  width : int;
  slots : int;           (* record slots per superblock *)
  tomb : int;            (* sentinel key marking a tombstone *)
  mutable size : int;
}

let width_of cfg = 1 + Codec.words_for_bits (8 * cfg.value_bytes)

let plan ?(utilization = 0.5) ~universe ~capacity ~block_words ~disks
    ~value_bytes ~seed () =
  if utilization <= 0.0 || utilization >= 1.0 then
    invalid_arg "Hash_table.plan: utilization in (0,1)";
  let cfg0 =
    { universe; capacity; value_bytes; superblocks = 1; base = 0; seed }
  in
  let slots = disks * block_words / width_of cfg0 in
  if slots < 1 then invalid_arg "Hash_table.plan: record exceeds superblock";
  let total_slots =
    int_of_float (ceil (float_of_int capacity /. utilization))
  in
  { cfg0 with superblocks = max 1 (Imath.cdiv total_slots slots) }

let create ~machine cfg =
  let view = Striping.create machine in
  if cfg.base < 0 || cfg.base + cfg.superblocks > Striping.superblocks view
  then invalid_arg "Hash_table.create: window out of machine";
  let width = width_of cfg in
  let slots = Striping.superblock_size view / width in
  if slots < 1 then invalid_arg "Hash_table.create: record exceeds superblock";
  { cfg; view; width; slots; tomb = cfg.universe; size = 0 }

let config t = t.cfg

let size t = t.size

let home t key = Prng.hash_to_range ~seed:t.cfg.seed key 0 t.cfg.superblocks

let value_of t record =
  Codec.bytes_of_words_len
    (Array.sub record 1 (t.width - 1))
    ~len:t.cfg.value_bytes

let record_of t key value =
  if Bytes.length value > t.cfg.value_bytes then
    invalid_arg "Hash_table: value too large";
  let padded = Bytes.make t.cfg.value_bytes '\000' in
  Bytes.blit value 0 padded 0 (Bytes.length value);
  Array.append [| key |] (Codec.words_of_bytes padded)

(* Probe superblocks from home until [stop] decides; each hop is one
   parallel I/O. *)
let probe t key stop =
  let rec hop sb dist =
    if dist >= t.cfg.superblocks then None
    else begin
      let block = Striping.read t.view (t.cfg.base + sb) in
      match stop sb block dist with
      | Some r -> Some r
      | None ->
        (* An empty (never-used) slot terminates every probe chain. *)
        let has_virgin = ref false in
        for s = 0 to t.slots - 1 do
          if block.(s * t.width) = None then has_virgin := true
        done;
        if !has_virgin then None
        else hop ((sb + 1) mod t.cfg.superblocks) (dist + 1)
    end
  in
  hop (home t key) 0

let find_slot block t key =
  let rec loop s =
    if s >= t.slots then None
    else
      match block.(s * t.width) with
      | Some k when k = key -> Some s
      | Some _ | None -> loop (s + 1)
  in
  loop 0

let find t key =
  probe t key (fun _ block _ ->
      match find_slot block t key with
      | Some s ->
        (match Codec.Slots.read block ~width:t.width s with
         | Some record -> Some (value_of t record)
         | None -> None)
      | None -> None)

let mem t key = find t key <> None

let insert t key value =
  if key < 0 || key >= t.cfg.universe then invalid_arg "Hash_table: key range";
  if t.size >= t.slots * t.cfg.superblocks then
    invalid_arg "Hash_table.insert: table full";
  let record = record_of t key value in
  (* One probe pass: update in place when the key is found, otherwise
     place into the first free slot seen — but only once a virgin slot
     proves the key cannot appear further down the chain. Tombstoned
     slots are remembered for reuse. *)
  let candidate = ref None in
  let remember sb s block =
    if !candidate = None then candidate := Some (sb, s, block)
  in
  let rec walk sb dist =
    if dist >= t.cfg.superblocks then `Chain_exhausted
    else begin
      let block = Striping.read t.view (t.cfg.base + sb) in
      match find_slot block t key with
      | Some s ->
        Codec.Slots.write block ~width:t.width s (Some record);
        Striping.write t.view (t.cfg.base + sb) block;
        `Updated
      | None ->
        let virgin = ref false in
        for s = 0 to t.slots - 1 do
          match block.(s * t.width) with
          | None ->
            virgin := true;
            remember sb s block
          | Some k when k = t.tomb -> remember sb s block
          | Some _ -> ()
        done;
        if !virgin then `Absent
        else walk ((sb + 1) mod t.cfg.superblocks) (dist + 1)
    end
  in
  match walk (home t key) 0 with
  | `Updated -> ()
  | `Absent | `Chain_exhausted ->
    (match !candidate with
     | None -> invalid_arg "Hash_table.insert: table full"
     | Some (sb, s, block) ->
       (* The block image from the probe is still current. *)
       Codec.Slots.write block ~width:t.width s (Some record);
       Striping.write t.view (t.cfg.base + sb) block;
       t.size <- t.size + 1)

let delete t key =
  let hit =
    probe t key (fun sb block _ ->
        match find_slot block t key with
        | Some s ->
          let tombstone = Array.make t.width 0 in
          tombstone.(0) <- t.tomb;
          Codec.Slots.write block ~width:t.width s (Some tombstone);
          Striping.write t.view (t.cfg.base + sb) block;
          Some ()
        | None -> None)
  in
  match hit with
  | Some () ->
    t.size <- t.size - 1;
    true
  | None -> false

let probe_distance_now t key =
  (* Uncounted: walk with peeks. *)
  let machine = Striping.machine t.view in
  let b = Pdm.block_size machine and d = Pdm.disks machine in
  let peek_sb sb =
    let out = Array.make (b * d) None in
    for disk = 0 to d - 1 do
      let blk = Pdm.peek machine { Pdm.disk; block = t.cfg.base + sb } in
      Array.blit blk 0 out (disk * b) b
    done;
    out
  in
  let rec hop sb dist =
    if dist >= t.cfg.superblocks then dist
    else begin
      let block = peek_sb sb in
      match find_slot block t key with
      | Some _ -> dist
      | None ->
        let has_virgin = ref false in
        for s = 0 to t.slots - 1 do
          if block.(s * t.width) = None then has_virgin := true
        done;
        if !has_virgin then dist
        else hop ((sb + 1) mod t.cfg.superblocks) (dist + 1)
    end
  in
  hop (home t key) 0

let overflowing_lookups t keys =
  Array.fold_left
    (fun acc k -> if probe_distance_now t k > 0 then acc + 1 else acc)
    0 keys

let max_probe_distance t =
  (* Uncounted diagnostic: the longest run of superblocks with no
     never-used slot bounds every probe chain's length. *)
  let machine = Striping.machine t.view in
  let b = Pdm.block_size machine and d = Pdm.disks machine in
  let full sb =
    let out = Array.make (b * d) None in
    for disk = 0 to d - 1 do
      Array.blit
        (Pdm.peek machine { Pdm.disk; block = t.cfg.base + sb })
        0 out (disk * b) b
    done;
    let virgin = ref false in
    for s = 0 to t.slots - 1 do
      if out.(s * t.width) = None then virgin := true
    done;
    not !virgin
  in
  let best = ref 0 and run = ref 0 in
  for sb = 0 to (2 * t.cfg.superblocks) - 1 do
    if full (sb mod t.cfg.superblocks) then begin
      incr run;
      if !run > !best then best := !run
    end
    else run := 0
  done;
  min !best t.cfg.superblocks
