(** The folklore two-level trick (Section 1.1).

    A primary hash table stores every key that does not collide with
    another key at its hashed slot; slots where a collision ever
    happened are marked, and all colliding keys go to a secondary
    dictionary (standing in for the dictionary of [7], here a striped
    hash table with an independent seed). Sizing the primary table
    with a suitably large constant makes the fraction of operations
    touching the secondary arbitrarily small, so lookups and updates
    cost 1 + ɛ and 2 + ɛ I/Os on average, whp — at full bandwidth
    Θ(BD). This is the strongest hashing row of Figure 1.

    Primary slots use a sentinel key ([universe]) as the collision
    marker. Deleting a key never unmarks a slot (the marker must keep
    redirecting lookups of the other colliding keys). *)

type config = {
  universe : int;
  capacity : int;
  value_bytes : int;
  primary_slots : int;
  seed : int;
}

type t

val plan :
  ?slot_factor:int ->
  universe:int ->
  capacity:int ->
  block_words:int ->
  disks:int ->
  value_bytes:int ->
  seed:int ->
  unit ->
  config
(** [slot_factor] (default 8) primary slots per expected key: larger
    means fewer collisions, i.e. smaller ɛ. *)

val create : machine:int Pdm_sim.Pdm.t -> config -> t
(** The primary table uses a leading range of superblocks, the
    secondary the rest of the machine. *)

val superblocks_needed : config -> block_words:int -> disks:int -> int

val config : t -> config

val size : t -> int

val collided_slots : t -> int
(** Diagnostic: primary slots bearing the collision marker. *)

val find : t -> int -> Bytes.t option
(** 1 I/O when the slot answers; +1 when redirected. *)

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit

val delete : t -> int -> bool
