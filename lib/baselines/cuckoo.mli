(** Cuckoo hashing in the parallel disk model (the [13] row of
    Figure 1).

    Two tables of buckets, T₁ striped over the first D/2 disks and T₂
    over the other D/2, so reading T₁[h₁(x)] and T₂[h₂(x)] together is
    {b one} parallel I/O and the usable bandwidth is BD/2 — the
    trade-off the paper quotes. Lookups are worst-case 1 I/O;
    insertions are amortized expected O(1) but evict chains can grow
    long, and a failed chain forces a full rehash whose cost is linear
    — the behaviour the deterministic structures eliminate.

    This is a bucketized cuckoo: each table slot is a bucket of
    records filling half a stripe group's block row. Eviction picks a
    rotating victim; randomness comes from a seeded stream, so runs
    are reproducible. *)

type config = {
  universe : int;
  capacity : int;
  value_bytes : int;
  buckets : int;    (** per table *)
  max_kicks : int;
  seed : int;
}

type t

val plan :
  ?utilization:float ->
  universe:int ->
  capacity:int ->
  block_words:int ->
  disks:int ->
  value_bytes:int ->
  seed:int ->
  unit ->
  config
(** Default utilization 0.4 (bucketized cuckoo is safe well above
    this; the default keeps rehashes rare at bench scale). [disks]
    must be even. *)

val create : machine:int Pdm_sim.Pdm.t -> config -> t

val config : t -> config

val size : t -> int

val rehashes : t -> int
(** Full-table rehashes triggered so far. *)

val find : t -> int -> Bytes.t option
(** Exactly 1 parallel I/O. *)

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit
(** Amortized expected O(1); a single call can cost O(max_kicks) or —
    on rehash — O(table size) I/Os. *)

val delete : t -> int -> bool

val bandwidth_bits : t -> int
(** Largest value this geometry can carry: half a superblock minus the
    key word. *)
