module Pdm = Pdm_sim.Pdm
module Striping = Pdm_sim.Striping
module Codec = Pdm_dictionary.Codec

type config = {
  universe : int;
  value_bytes : int;
  cache_levels : int;
  superblocks : int;
}

(* Node layout, in superblock words:
     [0] kind (1 = leaf, 0 = internal)
     [1] entry count m
     [2] leaf: next-leaf index + 1 (0 = none); internal: unused
     leaf entry e:      3 + e·(1+vw) : key, value words
     internal:          children at 3+2i, separator keys at 3+2i+1;
                        m keys, m+1 children. *)
type t = {
  cfg : config;
  view : int Striping.t;
  vw : int;                    (* value words *)
  leaf_cap : int;              (* max entries per leaf *)
  int_cap : int;               (* max keys per internal node *)
  mutable root : int;
  mutable height : int;
  mutable next_free : int;
  mutable size : int;
}

let header = 3

let create ~machine cfg =
  let view = Striping.create machine in
  if cfg.superblocks > Striping.superblocks view then
    invalid_arg "Btree.create: machine too small";
  let sb = Striping.superblock_size view in
  let vw = Codec.words_for_bits (8 * cfg.value_bytes) in
  (* One spare entry per node: splits insert first and divide after,
     so a node must briefly hold capacity + 1 entries. *)
  let leaf_cap = ((sb - header) / (1 + vw)) - 1 in
  let int_cap = (sb - header - 3) / 2 in
  if leaf_cap < 2 || int_cap < 2 then
    invalid_arg "Btree.create: superblock too small for a node";
  let t =
    { cfg; view; vw; leaf_cap; int_cap; root = 0; height = 1; next_free = 1;
      size = 0 }
  in
  (* Empty root leaf. *)
  let node = Array.make sb None in
  node.(0) <- Some 1;
  node.(1) <- Some 0;
  node.(2) <- Some 0;
  Striping.write view 0 node;
  t

let config t = t.cfg
let size t = t.size
let height t = t.height
let nodes t = t.next_free

let alloc t =
  if t.next_free >= t.cfg.superblocks then
    invalid_arg "Btree: node arena exhausted";
  let n = t.next_free in
  t.next_free <- n + 1;
  n

let get_w node i =
  match node.(i) with
  | Some w -> w
  | None -> invalid_arg "Btree: corrupt node"

let is_leaf node = get_w node 0 = 1
let count node = get_w node 1

(* Reads of the top [cache_levels] levels simulate an internal-memory
   cache: they use peek (uncounted). Writes are always counted. *)
let read_node t ~depth idx =
  if depth < t.cfg.cache_levels then begin
    let machine = Striping.machine t.view in
    let b = Pdm.block_size machine and d = Pdm.disks machine in
    let out = Array.make (b * d) None in
    for disk = 0 to d - 1 do
      Array.blit (Pdm.peek machine { Pdm.disk; block = idx }) 0 out (disk * b) b
    done;
    out
  end
  else Striping.read t.view idx

(* --- leaf entry accessors --- *)

let leaf_key node t e = get_w node (header + (e * (1 + t.vw)))

let leaf_value node t e =
  let base = header + (e * (1 + t.vw)) + 1 in
  Codec.bytes_of_words_len
    (Array.init t.vw (fun i -> get_w node (base + i)))
    ~len:t.cfg.value_bytes

let leaf_set t node e key value_words =
  let base = header + (e * (1 + t.vw)) in
  node.(base) <- Some key;
  Array.iteri (fun i w -> node.(base + 1 + i) <- Some w) value_words

let leaf_blank t node e =
  let base = header + (e * (1 + t.vw)) in
  for i = 0 to t.vw do
    node.(base + i) <- None
  done

(* --- internal entry accessors --- *)

let child node i = get_w node (header + (2 * i))
let sep_key node i = get_w node (header + (2 * i) + 1)

let set_child node i c = node.(header + (2 * i)) <- Some c
let set_sep node i k = node.(header + (2 * i) + 1) <- Some k

(* Index of the child to follow for [key]: first separator > key. *)
let child_index node key =
  let m = count node in
  let rec loop i = if i >= m then m else if key < sep_key node i then i else loop (i + 1) in
  loop 0

(* Position of key (or insertion point) in a leaf. *)
let leaf_position t node key =
  let m = count node in
  let rec loop e =
    if e >= m then (e, false)
    else
      let k = leaf_key node t e in
      if k = key then (e, true) else if k > key then (e, false) else loop (e + 1)
  in
  loop 0

let peek_node t idx =
  let machine = Striping.machine t.view in
  let b = Pdm.block_size machine and d = Pdm.disks machine in
  let out = Array.make (b * d) None in
  for disk = 0 to d - 1 do
    Array.blit (Pdm.peek machine { Pdm.disk; block = idx }) 0 out (disk * b) b
  done;
  out

let path t key =
  let rec descend idx acc =
    let node = peek_node t idx in
    if is_leaf node then List.rev (idx :: acc)
    else descend (child node (child_index node key)) (idx :: acc)
  in
  descend t.root []

let find t key =
  let rec descend idx depth =
    let node = read_node t ~depth idx in
    if is_leaf node then
      let e, found = leaf_position t node key in
      if found then Some (leaf_value node t e) else None
    else descend (child node (child_index node key)) (depth + 1)
  in
  descend t.root 0

let mem t key = find t key <> None

let value_words_of t value =
  if Bytes.length value > t.cfg.value_bytes then
    invalid_arg "Btree: value too large";
  let padded = Bytes.make t.cfg.value_bytes '\000' in
  Bytes.blit value 0 padded 0 (Bytes.length value);
  Codec.words_of_bytes padded

(* Insert into the subtree at [idx]; on split return
   (separator, new right sibling index). *)
let rec insert_at t idx depth key vwords =
  let node = read_node t ~depth idx in
  if is_leaf node then begin
    let e, found = leaf_position t node key in
    let m = count node in
    if found then begin
      leaf_set t node e key vwords;
      Striping.write t.view idx node;
      None
    end
    else begin
      (* Shift entries right and place. *)
      for j = m - 1 downto e do
        let k = leaf_key node t j in
        let base = header + (j * (1 + t.vw)) + 1 in
        let vws = Array.init t.vw (fun i -> get_w node (base + i)) in
        leaf_set t node (j + 1) k vws
      done;
      leaf_set t node e key vwords;
      node.(1) <- Some (m + 1);
      t.size <- t.size + 1;
      if m + 1 <= t.leaf_cap then begin
        Striping.write t.view idx node;
        None
      end
      else begin
        (* Split the leaf. *)
        let total = m + 1 in
        let left_n = total / 2 in
        let right_idx = alloc t in
        let sb = Striping.superblock_size t.view in
        let right = Array.make sb None in
        right.(0) <- Some 1;
        right.(1) <- Some (total - left_n);
        right.(2) <- node.(2);
        for j = left_n to total - 1 do
          let k = leaf_key node t j in
          let base = header + (j * (1 + t.vw)) + 1 in
          let vws = Array.init t.vw (fun i -> get_w node (base + i)) in
          leaf_set t right (j - left_n) k vws
        done;
        for j = left_n to total - 1 do
          leaf_blank t node j
        done;
        node.(1) <- Some left_n;
        node.(2) <- Some (right_idx + 1);
        Striping.write t.view idx node;
        Striping.write t.view right_idx right;
        Some (leaf_key right t 0, right_idx)
      end
    end
  end
  else begin
    let ci = child_index node key in
    match insert_at t (child node ci) (depth + 1) key vwords with
    | None -> None
    | Some (sep, right_child) ->
      let m = count node in
      (* Shift separators/children right of position ci. *)
      for j = m - 1 downto ci do
        set_sep node (j + 1) (sep_key node j);
        set_child node (j + 2) (child node (j + 1))
      done;
      set_sep node ci sep;
      set_child node (ci + 1) right_child;
      node.(1) <- Some (m + 1);
      if m + 1 <= t.int_cap then begin
        Striping.write t.view idx node;
        None
      end
      else begin
        (* Split the internal node: middle key moves up. *)
        let total = m + 1 in
        let mid = total / 2 in
        let up = sep_key node mid in
        let right_idx = alloc t in
        let sb = Striping.superblock_size t.view in
        let right = Array.make sb None in
        right.(0) <- Some 0;
        right.(1) <- Some (total - mid - 1);
        right.(2) <- Some 0;
        for j = mid + 1 to total - 1 do
          set_sep right (j - mid - 1) (sep_key node j)
        done;
        for j = mid + 1 to total do
          set_child right (j - mid - 1) (child node j)
        done;
        (* Truncate the left node. *)
        for j = mid to total - 1 do
          node.(header + (2 * j) + 1) <- None
        done;
        for j = mid + 1 to total do
          node.(header + (2 * j)) <- None
        done;
        node.(1) <- Some mid;
        Striping.write t.view idx node;
        Striping.write t.view right_idx right;
        Some (up, right_idx)
      end
  end

let insert t key value =
  if key < 0 || key >= t.cfg.universe then invalid_arg "Btree: key range";
  let vwords = value_words_of t value in
  match insert_at t t.root 0 key vwords with
  | None -> ()
  | Some (sep, right_idx) ->
    let new_root = alloc t in
    let sb = Striping.superblock_size t.view in
    let node = Array.make sb None in
    node.(0) <- Some 0;
    node.(1) <- Some 1;
    node.(2) <- Some 0;
    set_child node 0 t.root;
    set_sep node 0 sep;
    set_child node 1 right_idx;
    Striping.write t.view new_root node;
    t.root <- new_root;
    t.height <- t.height + 1

let delete t key =
  let rec descend idx depth =
    let node = read_node t ~depth idx in
    if is_leaf node then begin
      let e, found = leaf_position t node key in
      if not found then false
      else begin
        let m = count node in
        for j = e to m - 2 do
          let k = leaf_key node t (j + 1) in
          let base = header + ((j + 1) * (1 + t.vw)) + 1 in
          let vws = Array.init t.vw (fun i -> get_w node (base + i)) in
          leaf_set t node j k vws
        done;
        leaf_blank t node (m - 1);
        node.(1) <- Some (m - 1);
        Striping.write t.view idx node;
        t.size <- t.size - 1;
        true
      end
    end
    else descend (child node (child_index node key)) (depth + 1)
  in
  descend t.root 0

let range t ~lo ~hi =
  (* Descend to the leaf containing lo, then walk the chain. *)
  let rec descend idx depth =
    let node = read_node t ~depth idx in
    if is_leaf node then (idx, node) else descend (child node (child_index node lo)) (depth + 1)
  in
  let _, first = descend t.root 0 in
  let out = ref [] in
  let rec walk node =
    let m = count node in
    let past = ref false in
    for e = 0 to m - 1 do
      let k = leaf_key node t e in
      if k > hi then past := true
      else if k >= lo then out := (k, leaf_value node t e) :: !out
    done;
    if not !past then
      match get_w node 2 with
      | 0 -> ()
      | next -> walk (Striping.read t.view (next - 1))
  in
  walk first;
  List.rev !out
