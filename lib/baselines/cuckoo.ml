module Pdm = Pdm_sim.Pdm

let log = Logs.Src.create "pdm_dict.cuckoo" ~doc:"cuckoo hashing events"

module Log = (val Logs.src_log log : Logs.LOG)
module Prng = Pdm_util.Prng
module Imath = Pdm_util.Imath
module Codec = Pdm_dictionary.Codec

type config = {
  universe : int;
  capacity : int;
  value_bytes : int;
  buckets : int;
  max_kicks : int;
  seed : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  width : int;
  slots : int;              (* records per bucket *)
  half : int;               (* disks per table *)
  mutable seed : int;       (* current hash seed (changes on rehash) *)
  mutable size : int;
  mutable rehashes : int;
  kick_rng : Prng.t;
}

let width_of cfg = 1 + Codec.words_for_bits (8 * cfg.value_bytes)

let plan ?(utilization = 0.4) ~universe ~capacity ~block_words ~disks
    ~value_bytes ~seed () =
  if disks < 2 || disks mod 2 <> 0 then
    invalid_arg "Cuckoo.plan: disks must be even";
  let cfg0 =
    { universe; capacity; value_bytes; buckets = 1; max_kicks = 64; seed }
  in
  let slots = disks / 2 * block_words / width_of cfg0 in
  if slots < 1 then invalid_arg "Cuckoo.plan: record exceeds half-superblock";
  let total = int_of_float (ceil (float_of_int capacity /. utilization)) in
  { cfg0 with buckets = max 1 (Imath.cdiv (Imath.cdiv total slots) 2) }

let create ~machine cfg =
  let disks = Pdm.disks machine in
  if disks mod 2 <> 0 then invalid_arg "Cuckoo.create: disks must be even";
  if cfg.buckets > Pdm.blocks_per_disk machine then
    invalid_arg "Cuckoo.create: machine too small";
  let width = width_of cfg in
  let half = disks / 2 in
  let slots = half * Pdm.block_size machine / width in
  if slots < 1 then invalid_arg "Cuckoo.create: record exceeds bucket";
  { cfg; machine; width; slots; half; seed = cfg.seed; size = 0; rehashes = 0;
    kick_rng = Prng.create (cfg.seed + 17) }

let config t = t.cfg
let size t = t.size
let rehashes t = t.rehashes

let bandwidth_bits t =
  (t.half * Pdm.block_size t.machine - 1) * Codec.bits_per_word

let hash t g key = Prng.hash_to_range ~seed:(t.seed + g) key g t.cfg.buckets

let bucket_addrs t g pos =
  List.init t.half (fun i -> { Pdm.disk = (g * t.half) + i; block = pos })

let assemble t blocks g pos =
  let b = Pdm.block_size t.machine in
  let out = Array.make (t.half * b) None in
  List.iter
    (fun (a : Pdm.addr) ->
      match List.assoc_opt a blocks with
      | Some blk -> Array.blit blk 0 out ((a.disk - (g * t.half)) * b) b
      | None -> invalid_arg "Cuckoo: missing block")
    (bucket_addrs t g pos);
  out

let write_bucket t g pos image =
  let b = Pdm.block_size t.machine in
  Pdm.write t.machine
    (List.map
       (fun (a : Pdm.addr) ->
         (a, Array.sub image ((a.disk - (g * t.half)) * b) b))
       (bucket_addrs t g pos))

let read_both t key =
  let p0 = hash t 0 key and p1 = hash t 1 key in
  let blocks = Pdm.read t.machine (bucket_addrs t 0 p0 @ bucket_addrs t 1 p1) in
  ((p0, assemble t blocks 0 p0), (p1, assemble t blocks 1 p1))

let value_of t record =
  Codec.bytes_of_words_len
    (Array.sub record 1 (t.width - 1))
    ~len:t.cfg.value_bytes

let record_of t key value =
  if Bytes.length value > t.cfg.value_bytes then
    invalid_arg "Cuckoo: value too large";
  let padded = Bytes.make t.cfg.value_bytes '\000' in
  Bytes.blit value 0 padded 0 (Bytes.length value);
  Array.append [| key |] (Codec.words_of_bytes padded)

let find t key =
  let (_, img0), (_, img1) = read_both t key in
  let in_image img =
    Option.bind
      (Codec.Slots.find_key img ~width:t.width ~key)
      (fun s -> Codec.Slots.read img ~width:t.width s)
  in
  match in_image img0 with
  | Some r -> Some (value_of t r)
  | None -> Option.map (value_of t) (in_image img1)

let mem t key = find t key <> None

let read_one_bucket t g pos =
  let blocks = Pdm.read t.machine (bucket_addrs t g pos) in
  assemble t blocks g pos

let rec insert_record t record =
  let key = record.(0) in
  let (p0, img0), (p1, img1) = read_both t key in
  let try_update img g pos =
    match Codec.Slots.find_key img ~width:t.width ~key with
    | Some s ->
      Codec.Slots.write img ~width:t.width s (Some record);
      write_bucket t g pos img;
      true
    | None -> false
  in
  if try_update img0 0 p0 || try_update img1 1 p1 then false
  else begin
    let try_place img g pos =
      match Codec.Slots.first_free img ~width:t.width with
      | Some s ->
        Codec.Slots.write img ~width:t.width s (Some record);
        write_bucket t g pos img;
        true
      | None -> false
    in
    if try_place img0 0 p0 || try_place img1 1 p1 then true
    else kick_loop t record 0 p0 img0 t.cfg.max_kicks
  end

and kick_loop t record g pos img kicks =
  if kicks = 0 then rehash_with t record
  else begin
    (* Evict a random victim, place the new record, re-insert the
       victim on its other side. *)
    let victim_slot = Prng.int t.kick_rng t.slots in
    let victim =
      match Codec.Slots.read img ~width:t.width victim_slot with
      | Some r -> r
      | None ->
        (* pdm-lint: allow R3 — unreachable: [kick_loop] is entered
           only when the bucket had no free slot, so every slot
           (including the random victim) is occupied. *)
        assert false
    in
    Codec.Slots.write img ~width:t.width victim_slot (Some record);
    write_bucket t g pos img;
    let g' = 1 - g in
    let pos' = hash t g' victim.(0) in
    let img' = read_one_bucket t g' pos' in
    match Codec.Slots.first_free img' ~width:t.width with
    | Some s ->
      Codec.Slots.write img' ~width:t.width s (Some victim);
      write_bucket t g' pos' img';
      true
    | None -> kick_loop t victim g' pos' img' (kicks - 1)
  end

and rehash_with t record =
  (* Collect everything (a full scan, counted), clear, and rebuild
     with fresh hash functions — the linear-worst-case event. *)
  t.rehashes <- t.rehashes + 1;
  Log.info (fun f ->
      f "rehash #%d at %d keys (eviction chain exhausted)" t.rehashes t.size);
  let all = ref [ record ] in
  let b = Pdm.block_size t.machine in
  for g = 0 to 1 do
    for pos = 0 to t.cfg.buckets - 1 do
      let img = read_one_bucket t g pos in
      for s = 0 to t.slots - 1 do
        match Codec.Slots.read img ~width:t.width s with
        | Some r -> all := r :: !all
        | None -> ()
      done;
      (* Clear as we go. *)
      write_bucket t g pos (Array.make (t.half * b) None)
    done
  done;
  t.seed <- t.seed + 101;
  List.iter (fun r -> ignore (insert_record t r)) !all;
  true

let insert t key value =
  if key < 0 || key >= t.cfg.universe then invalid_arg "Cuckoo: key range";
  if insert_record t (record_of t key value) then t.size <- t.size + 1

let delete t key =
  let (p0, img0), (p1, img1) = read_both t key in
  let try_remove img g pos =
    match Codec.Slots.find_key img ~width:t.width ~key with
    | Some s ->
      Codec.Slots.write img ~width:t.width s None;
      write_bucket t g pos img;
      true
    | None -> false
  in
  if try_remove img0 0 p0 || try_remove img1 1 p1 then begin
    t.size <- t.size - 1;
    true
  end
  else false
