(** A striped B-tree: the structure the paper's dictionaries are an
    alternative to (Sections 1 and 1.2).

    Nodes are superblocks (fan-out Θ(BD)), so a lookup costs the tree
    height Θ(log_BD n) parallel I/Os — striping does not reduce the
    number of round trips below the height, which is the point the
    paper makes against B-trees for random accesses. [cache_levels]
    simulates keeping the top levels of the tree resident in internal
    memory (as every real file system does with the root): reads of
    those levels are not charged, reproducing the "3 disk accesses in
    most settings" figure of Section 1.2.

    Insertions split nodes on the way back up; deletions are by
    tombstone-free removal from the leaf without rebalancing
    (underfull leaves persist — standard for benchmarking file-system
    style workloads and irrelevant to the lookup-cost comparison).
    Leaves are chained for range scans. *)

type config = {
  universe : int;
  value_bytes : int;
  cache_levels : int;
  superblocks : int;   (** capacity of the node arena *)
}

type t

val create : machine:int Pdm_sim.Pdm.t -> config -> t

val config : t -> config

val size : t -> int

val height : t -> int
(** Levels from root to leaf inclusive; lookups cost
    max(0, height − cache_levels) parallel I/Os. *)

val nodes : t -> int
(** Superblocks allocated. *)

val path : t -> int -> int list
(** Uncounted diagnostic: the superblock indices a lookup of [key]
    visits, root first — used to replay lookups through a buffer
    cache (experiment E15). *)

val find : t -> int -> Bytes.t option

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit

val delete : t -> int -> bool

val range : t -> lo:int -> hi:int -> (int * Bytes.t) list
(** All entries with lo ≤ key ≤ hi, via the leaf chain (sequential
    scan — the access pattern where B-trees shine). *)
