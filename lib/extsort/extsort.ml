module Striping = Pdm_sim.Striping
module Imath = Pdm_util.Imath

type 'a t = {
  view : 'a Striping.t;
  compare : 'a -> 'a -> int;
  memory_items : int;
  sb : int;
}

let create view ~compare ~memory_items =
  let sb = Striping.superblock_size view in
  if memory_items < 2 * sb then
    invalid_arg "Extsort.create: memory must hold at least two superblocks";
  (* Rounding M down to a whole number of superblocks aligns every run
     to a superblock boundary, so partial-block writes never clobber a
     neighbouring run's records. *)
  { view; compare; memory_items = memory_items / sb * sb; sb }

let superblock_size t = t.sb

let region_superblocks t ~items = Imath.cdiv items t.sb

(* Item [i] of the region starting at superblock [region] lives in
   superblock region + i/sb, slot i mod sb. *)

let write_region t ~region items =
  let n = Array.length items in
  let blocks = Imath.cdiv n t.sb in
  for b = 0 to blocks - 1 do
    let block = Array.make t.sb None in
    let base = b * t.sb in
    for s = 0 to min t.sb (n - base) - 1 do
      block.(s) <- Some items.(base + s)
    done;
    Striping.write t.view (region + b) block
  done

let read_region t ~region ~count =
  let blocks = Imath.cdiv count t.sb in
  let out = Array.make count None in
  for b = 0 to blocks - 1 do
    let block = Striping.read t.view (region + b) in
    let base = b * t.sb in
    for s = 0 to min t.sb (count - base) - 1 do
      out.(base + s) <- block.(s)
    done
  done;
  Array.map
    (function
      | Some x -> x
      | None -> invalid_arg "Extsort.read_region: hole in region")
    out

(* A streaming reader over a sub-range [lo, hi) of a region, pulling
   one superblock per refill. *)
type 'a cursor = {
  mutable next : int;            (* absolute item index of next record *)
  hi : int;
  mutable buf : 'a option array;
  mutable buf_block : int;       (* superblock index buf came from, -1 = none *)
}

let cursor_peek t ~region cur =
  if cur.next >= cur.hi then None
  else begin
    let block = region + (cur.next / t.sb) in
    if block <> cur.buf_block then begin
      cur.buf <- Striping.read t.view block;
      cur.buf_block <- block
    end;
    match cur.buf.(cur.next mod t.sb) with
    | Some x -> Some x
    | None -> invalid_arg "Extsort: hole in run"
  end

let cursor_advance cur = cur.next <- cur.next + 1

(* A streaming writer appending to a region from absolute item index
   [start], flushing one superblock at a time. *)
type 'a out_stream = {
  mutable pos : int;
  mutable out_buf : 'a option array;
  o_region : int;
}

let out_create t ~region ~start =
  ignore t;
  { pos = start; out_buf = [||]; o_region = region }

let out_push t o x =
  if o.pos mod t.sb = 0 || Array.length o.out_buf = 0 then
    o.out_buf <- Array.make t.sb None;
  o.out_buf.(o.pos mod t.sb) <- Some x;
  o.pos <- o.pos + 1;
  if o.pos mod t.sb = 0 then begin
    Striping.write t.view (o.o_region + ((o.pos - 1) / t.sb)) o.out_buf;
    o.out_buf <- [||]
  end

let out_flush t o =
  if o.pos mod t.sb <> 0 && Array.length o.out_buf > 0 then
    Striping.write t.view (o.o_region + (o.pos / t.sb)) o.out_buf

(* Merge the runs [(lo, hi); ...] of [src] into [dst] starting at item
   [start]. Runs are sorted ranges of absolute item indices. *)
let merge_runs t ~src ~dst ~start runs =
  let cursors =
    List.map (fun (lo, hi) -> { next = lo; hi; buf = [||]; buf_block = -1 }) runs
  in
  let o = out_create t ~region:dst ~start in
  let rec loop () =
    let best = ref None in
    List.iter
      (fun cur ->
        match cursor_peek t ~region:src cur with
        | None -> ()
        | Some x ->
          (match !best with
           | None -> best := Some (x, cur)
           | Some (y, _) -> if t.compare x y < 0 then best := Some (x, cur)))
      cursors;
    match !best with
    | None -> ()
    | Some (x, cur) ->
      cursor_advance cur;
      out_push t o x;
      loop ()
  in
  loop ();
  out_flush t o

let form_runs t ~src_region ~dst_region ~items =
  let runs = ref [] in
  let pos = ref 0 in
  while !pos < items do
    let len = min t.memory_items (items - !pos) in
    (* Runs start at multiples of memory_items, which is a multiple of
       the superblock size, so each run owns its superblocks outright. *)
    let lo_block = !pos / t.sb and hi_block = (!pos + len - 1) / t.sb in
    let chunk = Array.make len None in
    for b = lo_block to hi_block do
      let block = Striping.read t.view (src_region + b) in
      for s = 0 to t.sb - 1 do
        let idx = (b * t.sb) + s in
        if idx >= !pos && idx < !pos + len then chunk.(idx - !pos) <- block.(s)
      done
    done;
    let chunk =
      Array.map
        (function
          | Some x -> x
          | None -> invalid_arg "Extsort.sort: hole in input")
        chunk
    in
    Array.sort t.compare chunk;
    let o = out_create t ~region:dst_region ~start:!pos in
    Array.iter (fun x -> out_push t o x) chunk;
    out_flush t o;
    runs := (!pos, !pos + len) :: !runs;
    pos := !pos + len
  done;
  List.rev !runs

let rec take n = function
  | [] -> ([], [])
  | x :: rest when n > 0 ->
    let got, left = take (n - 1) rest in
    (x :: got, left)
  | rest -> ([], rest)

let sort t ~src_region ~scratch_region ~items =
  if items < 0 then invalid_arg "Extsort.sort: items";
  if items <= 1 then `Src
  else begin
    (* Run formation writes into the scratch region. *)
    let runs = form_runs t ~src_region ~dst_region:scratch_region ~items in
    let fan_in = max 2 ((t.memory_items / t.sb) - 1) in
    let rec passes runs ~cur ~other =
      match runs with
      | [] ->
        (* pdm-lint: allow R3 — unreachable: [form_runs] with
           items >= 2 produces >= 1 run, and merging groups of >= 2
           runs never empties the list. *)
        assert false
      | [ _ ] -> if cur = scratch_region then `Scratch else `Src
      | _ ->
        let rec merge_groups runs acc =
          match runs with
          | [] -> List.rev acc
          | _ ->
            let group, rest = take fan_in runs in
            let lo = List.fold_left (fun a (l, _) -> min a l) max_int group in
            let hi = List.fold_left (fun a (_, h) -> max a h) 0 group in
            merge_runs t ~src:cur ~dst:other ~start:lo group;
            merge_groups rest ((lo, hi) :: acc)
        in
        let runs' = merge_groups runs [] in
        passes runs' ~cur:other ~other:cur
    in
    passes runs ~cur:scratch_region ~other:src_region
  end

let theoretical_parallel_ios ~superblock ~memory_items ~items =
  if items <= 1 then 0
  else begin
    let blocks = Imath.cdiv items superblock in
    let runs = Imath.cdiv items memory_items in
    let fan_in = max 2 ((memory_items / superblock) - 1) in
    let passes =
      if runs <= 1 then 0
      else
        int_of_float
          (ceil (log (float_of_int runs) /. log (float_of_int fan_in)))
    in
    2 * blocks * (1 + passes)
  end
