(** External multiway merge sort in the parallel disk model.

    Theorem 6 bounds the one-probe dictionary's construction time by
    the cost of sorting nd records; this module provides that sorting
    substrate, with all I/O charged to the underlying machine, so the
    construction-vs-sort ratio can be measured (experiment E4).

    The sorter works on the striped view (logical block size BD): run
    formation reads [memory_items] records at a time, sorts them
    internally, and writes sorted runs; merge passes then combine runs
    with fan-in ⌈memory_items / BD⌉ − 1 until a single run remains.
    This is the standard striped external sort, which costs
    O((n/BD)·log_{M/BD}(n/M)) parallel I/Os — a factor D shy of the
    optimal multi-disk sort, but the paper's constructions only need
    *a* sorting bound to compare against, and we use the same sorter
    on both sides of the comparison.

    Records live in *regions*: contiguous runs of superblocks
    addressed by their starting superblock index, packed densely
    (item i of a region occupies slot i mod BD of superblock
    start + i/BD). *)

type 'a t

val create :
  'a Pdm_sim.Striping.t -> compare:('a -> 'a -> int) -> memory_items:int -> 'a t
(** [memory_items] is the internal-memory capacity M in records; it
    must be at least twice the superblock size. *)

val superblock_size : 'a t -> int

val region_superblocks : 'a t -> items:int -> int
(** Superblocks needed to hold [items] records. *)

val write_region : 'a t -> region:int -> 'a array -> unit
(** Store records densely starting at superblock [region], counting
    one parallel I/O per superblock written. *)

val read_region : 'a t -> region:int -> count:int -> 'a array
(** Fetch [count] records, one parallel I/O per superblock. *)

val sort :
  'a t -> src_region:int -> scratch_region:int -> items:int ->
  [ `Src | `Scratch ]
(** Sort the [items] records of the source region. The two regions
    must not overlap and each must have room for [items] records; the
    sorted output lands in whichever region the final pass wrote, as
    reported by the return value. *)

val theoretical_parallel_ios :
  superblock:int -> memory_items:int -> items:int -> int
(** The textbook cost 2·⌈n/BD⌉·(1 + ⌈log_f ⌈n/M⌉⌉) with fan-in
    f = max(2, M/BD − 1): the yardstick experiments compare against. *)
