(** Seeded pseudorandom expander graphs.

    The paper assumes free access to optimal expanders, notes that
    random graphs achieve the optimal parameters (even striped ones,
    Section 2), and conjectures in Section 6 that "a subset of d
    functions from some efficient family of hash functions" could be a
    practical explicit construction. This module instantiates exactly
    that: neighbor [i] of vertex [x] is a keyed SplitMix64 hash of
    (x, i) mapped into stripe [i]. The function is evaluated in O(1)
    time with O(1) words of internal memory (the seed), performs no
    I/O, and is deterministic at run time once the seed is fixed.

    These graphs are *presumed* expanders; {!Expansion} measures their
    actual expansion, and experiment E3 confirms the unique-neighbor
    lemmas hold on them at the sizes we run. *)

val striped : seed:int -> u:int -> v:int -> d:int -> Bipartite.t
(** Striped graph: requires d | v; neighbor [i] is uniform over stripe
    [i]. No multi-edges (each neighbor lies in a distinct stripe). *)

val unstriped : seed:int -> u:int -> v:int -> d:int -> Bipartite.t
(** Unstriped graph: each neighbor uniform over all of V; multi-edges
    possible, as in the explicit constructions of Section 5 that this
    stands in for. *)
