(** Trivial striping of an arbitrary expander (end of Section 5).

    Explicit constructions — including the telescope product — are not
    striped. The paper's fallback for the parallel disk model is to
    make d copies V₀, …, V_{d−1} of the right side and send neighbor i
    of x to the copy of F(x, i) inside V_i. This preserves expansion
    (each copy sees the original neighbor multiset) at the cost of a
    factor-d larger right side, hence factor-d more external space. *)

val stripe : Bipartite.t -> Bipartite.t
(** [stripe g] is striped, with right size [d * v] and the same left
    size and degree. *)
