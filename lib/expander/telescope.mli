(** The telescope product of two expanders (Lemma 10).

    Given F₁ : U₁ × [d₁] → V₁, a (c₁v₁/d₁, ε₁)-expander, and
    F₂ : V₁ × [d₂] → V₂, a (c₂v₂/d₂, ε₂)-expander with c₁ ≥ c₂, the
    composition x, (e₁, e₂) ↦ F₂(F₁(x, e₁), e₂) is a
    (c₂v₂/(d₁d₂), 1−(1−ε₁)(1−ε₂))-expander after remapping
    multi-edges. Section 5 composes a family of these to turn slightly
    unbalanced expanders into an arbitrarily unbalanced one.

    Multi-edge remapping: the duplicate occurrences of a target are
    redirected to the next free right vertices (linear probing from the
    duplicate, in a fixed order). Each original target keeps one edge,
    so — as the paper observes — the remap cannot decrease expansion.
    Because remapping is defined over the whole neighbor list, every
    single-neighbor evaluation internally evaluates all d₁d₂ neighbors;
    the paper notes the same cost for its construction. A one-element
    memo keeps [Bipartite.neighbors] at one list evaluation per x. *)

val compose : Bipartite.t -> Bipartite.t -> Bipartite.t
(** [compose f1 f2] requires [Bipartite.v f1 = Bipartite.u f2] and
    [d1 * d2 <= v2] (so the remap can always find free targets). The
    result has left size u₁, right size v₂ and degree d₁·d₂. *)

val composed_epsilon : float -> float -> float
(** [composed_epsilon e1 e2 = 1 − (1−e1)(1−e2)], Lemma 10's error. *)
