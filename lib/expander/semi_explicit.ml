let c = 2.0
(* The fixed constant of Corollary 1. *)

type level = {
  level_u : int;
  level_v : int;
  level_d : int;
  level_memory : int;
}

type t = {
  graph : Bipartite.t;
  levels : level list;
  degree : int;
  right_size : int;
  capacity : int;
  epsilon : float;
  memory_words : int;
}

let fpow_int base expo = int_of_float (ceil (float_of_int base ** expo))

(* A concrete representative of Corollary 1's poly(log u / eps)
   degree. The exponent 1/2 keeps composed degrees small enough that
   the telescope product stays runnable at experiment scale while
   remaining a polynomial in log u / eps. *)
let base_degree ~u ~eps =
  max 2 (int_of_float (ceil (sqrt (Pdm_util.Imath.log2f u /. eps))))

let corollary1 ~seed ~u ~beta ~eps =
  if u < 2 then invalid_arg "Semi_explicit.corollary1: u too small";
  if beta <= 0.0 || beta >= 1.0 then
    invalid_arg "Semi_explicit.corollary1: beta must be in (0, 1)";
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Semi_explicit.corollary1: eps must be in (0, 1)";
  let v = max 2 (fpow_int u (1.0 -. (beta /. c))) in
  let d = base_degree ~u ~eps in
  let memory = int_of_float (ceil (float_of_int u ** beta /. (eps ** c))) in
  let graph = Seeded.unstriped ~seed ~u ~v ~d in
  (graph, { level_u = u; level_v = v; level_d = d; level_memory = memory })

(* Simulate Lemma 11's recursion to find the level count: right sides
   shrink as u^{(1-beta/c)^i} until within a degree factor of N. *)
let plan_levels ~capacity ~u ~beta ~eps =
  let rec loop cur_u d_total count =
    if count > 64 then
      invalid_arg "Semi_explicit.construct: recursion does not converge";
    let v = max 2 (fpow_int cur_u (1.0 -. (beta /. c))) in
    let d = base_degree ~u:cur_u ~eps in
    let d_total = d_total * d in
    let count = count + 1 in
    if v <= capacity * d_total || v <= 2 then count else loop v d_total count
  in
  loop u 1 0

let construct ~seed ~capacity ~u ~beta ~eps =
  if capacity < 1 then invalid_arg "Semi_explicit.construct: capacity";
  if u < capacity then invalid_arg "Semi_explicit.construct: u < capacity";
  (* Split the error budget evenly: (1 - eps')^k = 1 - eps. The level
     count depends (weakly) on eps' through the degrees, so iterate the
     plan once with the refined error. *)
  let per_level k = 1.0 -. ((1.0 -. eps) ** (1.0 /. float_of_int k)) in
  let k0 = plan_levels ~capacity ~u ~beta ~eps in
  let k = plan_levels ~capacity ~u ~beta ~eps:(per_level k0) in
  let eps' = per_level k in
  let rec build i cur_u seed_i graphs levels =
    if i = k then (List.rev graphs, List.rev levels)
    else begin
      let graph, level = corollary1 ~seed:seed_i ~u:cur_u ~beta ~eps:eps' in
      build (i + 1) level.level_v (seed_i + 1) (graph :: graphs)
        (level :: levels)
    end
  in
  let graphs, levels = build 0 u seed [] [] in
  let composed =
    match graphs with
    | [] ->
      (* pdm-lint: allow R3 — unreachable: [build] runs k >= 1 levels
         (k = 0 is rejected by the caller's validation), producing one
         graph per level. *)
      assert false
    | first :: rest ->
      (try List.fold_left Telescope.compose first rest
       with Invalid_argument _ ->
         invalid_arg
           "Semi_explicit.construct: composed degree exceeds right side \
            (eps too small or capacity too small for this universe)")
  in
  { graph = composed;
    levels;
    degree = Bipartite.d composed;
    right_size = Bipartite.v composed;
    capacity;
    epsilon = eps;
    memory_words = List.fold_left (fun a l -> a + l.level_memory) 0 levels }

let striped_for_pdm t = Trivial_stripe.stripe t.graph
