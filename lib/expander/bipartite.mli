(** Bipartite left-regular graphs given by their neighbor function.

    A graph G = (U, V, E) with |U| = [u], |V| = [v] and left degree [d]
    is represented by its neighbor function F : U × [d] → V (the
    representation used throughout Section 5 of the paper). Evaluating
    F costs no I/O — this is exactly the paper's requirement on an
    expander usable by external-memory algorithms.

    A graph is *striped* when V is partitioned into [d] equal
    contiguous stripes and the i-th neighbor of every left vertex lands
    in stripe [i] (Section 2). Striped graphs have no multi-edges, and
    the dictionary constructions place stripe [i] on disk [i] so that
    fetching all d neighbors of a key is one parallel I/O. *)

type t

val create :
  ?striped:bool -> u:int -> v:int -> d:int -> (int -> int -> int) -> t
(** [create ~striped ~u ~v ~d f] wraps neighbor function [f]; [f x i]
    must return a vertex in [0, v) for all [x] in [0, u) and [i] in
    [0, d). When [striped] is [true] (default [false]), [d] must
    divide [v] and [f x i] must lie in stripe [i] — this is checked
    lazily on every evaluation. *)

val u : t -> int
(** Size of the left part (the key universe). *)

val v : t -> int
(** Size of the right part (the bucket/field array). *)

val d : t -> int
(** Left degree. *)

val is_striped : t -> bool

val stripe_width : t -> int
(** [v / d]; only meaningful for striped graphs. *)

val neighbor : t -> int -> int -> int
(** [neighbor g x i] is F(x, i) as a global right-vertex index.
    Raises [Invalid_argument] on out-of-range arguments or when a
    striped graph's function leaves its stripe. *)

val neighbors : t -> int -> int array
(** All d neighbors of [x], in stripe order ([i] = 0..d-1). *)

val neighbor_in_stripe : t -> int -> int -> int * int
(** [neighbor_in_stripe g x i] is the pair (i, j): stripe index and
    offset within the stripe — the "(i, j)" form required of explicit
    striped constructions (Section 2). Only for striped graphs. *)

val stripe_of : t -> int -> int * int
(** Decompose a global right-vertex index into (stripe, offset). Only
    for striped graphs. *)
