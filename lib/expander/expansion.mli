(** Measured expansion properties.

    The dictionaries' correctness rests on three set-expansion
    quantities (Section 2 and Lemmas 4–5):

    - Γ(S): the neighborhood of a left set S;
    - Φ(S): the *unique neighbor* nodes — right vertices with exactly
      one incident edge from S;
    - S′ ⊆ S: the vertices owning at least (1−λ)d unique neighbors.

    This module computes all three exactly for a given S, and
    estimates the expansion deficiency ε̂ of a graph by sampling left
    sets. Counts treat the edge list of each x as a multiset, so a
    multi-edge to y makes y non-unique, matching Definition 1's
    neighbor-set semantics for Γ. *)

val gamma_size : Bipartite.t -> int array -> int
(** |Γ(S)|. The array is a set of distinct left vertices. *)

val gamma : Bipartite.t -> int array -> (int, unit) Hashtbl.t
(** Γ(S) as a hash set keyed by right-vertex index. *)

val unique_neighbors : Bipartite.t -> int array -> (int, int) Hashtbl.t
(** Φ(S) as a map from right vertex to its unique left neighbor. *)

val unique_neighbor_count : Bipartite.t -> int array -> int
(** |Φ(S)|. Lemma 4 proves ≥ (1−2ε)d|S| on an (N, ε)-expander. *)

val epsilon_of_set : Bipartite.t -> int array -> float
(** ε̂(S) = 1 − |Γ(S)|/(d|S|): the expansion deficiency witnessed by
    S (an (N, ε)-expander has ε̂(S) ≤ ε for all |S| ≤ N). *)

val exact_epsilon : Bipartite.t -> set_size:int -> float
(** The true ε for sets of exactly [set_size]: maximum deficiency over
    {e all} C(u, set_size) subsets. Exponential — intended for tiny
    graphs in tests (it refuses u > 30 or more than ~10⁷ subsets). *)

val certify : Bipartite.t -> capacity:int -> eps:float -> bool
(** [certify g ~capacity ~eps]: exhaustively check that [g] is an
    (capacity, eps)-expander (every set of size ≤ capacity expands to
    ≥ (1−eps)·d·|S| neighbors). Same size limits as
    {!exact_epsilon}. *)

val sampled_epsilon :
  Bipartite.t -> rng:Pdm_util.Prng.t -> set_size:int -> trials:int -> float
(** Worst ε̂ over [trials] uniformly sampled left sets of the given
    size — a lower bound on the graph's true ε for that size. *)

val well_expanded_subset :
  Bipartite.t -> lambda:float -> int array -> int array
(** Lemma 5's S′ = \{x ∈ S : |Γ(x) ∩ Φ(S)| ≥ (1−λ)d\}, as a fresh
    array preserving input order. Lemma 5 proves |S′| ≥ (1−2ε/λ)|S|. *)

val lemma3_bound :
  n:int -> v:int -> d:int -> k:int -> eps:float -> delta:float -> float
(** The closed-form max-load bound of Lemma 3:
    kn/((1−δ)v) + log_{(1−ε)d/k} v, for d(1−ε) > k. *)
