type t = {
  u : int;
  v : int;
  d : int;
  striped : bool;
  f : int -> int -> int;
}

let create ?(striped = false) ~u ~v ~d f =
  if u < 1 || v < 1 || d < 1 then invalid_arg "Bipartite.create: sizes";
  if striped && v mod d <> 0 then
    invalid_arg "Bipartite.create: striped graph needs d | v";
  { u; v; d; striped; f }

let u g = g.u
let v g = g.v
let d g = g.d
let is_striped g = g.striped
let stripe_width g = g.v / g.d

let neighbor g x i =
  if x < 0 || x >= g.u then invalid_arg "Bipartite.neighbor: x out of range";
  if i < 0 || i >= g.d then invalid_arg "Bipartite.neighbor: i out of range";
  let y = g.f x i in
  if y < 0 || y >= g.v then invalid_arg "Bipartite.neighbor: f out of range";
  if g.striped then begin
    let w = stripe_width g in
    if y / w <> i then invalid_arg "Bipartite.neighbor: f leaves its stripe"
  end;
  y

let neighbors g x = Array.init g.d (fun i -> neighbor g x i)

let require_striped g fn =
  if not g.striped then invalid_arg (fn ^ ": graph is not striped")

let neighbor_in_stripe g x i =
  require_striped g "Bipartite.neighbor_in_stripe";
  let y = neighbor g x i in
  (i, y mod stripe_width g)

let stripe_of g y =
  require_striped g "Bipartite.stripe_of";
  if y < 0 || y >= g.v then invalid_arg "Bipartite.stripe_of: out of range";
  let w = stripe_width g in
  (y / w, y mod w)
