let stripe g =
  let v = Bipartite.v g and d = Bipartite.d g in
  Bipartite.create ~striped:true ~u:(Bipartite.u g) ~v:(d * v) ~d
    (fun x i -> (i * v) + Bipartite.neighbor g x i)
