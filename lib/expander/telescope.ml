let composed_epsilon e1 e2 = 1.0 -. ((1.0 -. e1) *. (1.0 -. e2))

let compose f1 f2 =
  if Bipartite.v f1 <> Bipartite.u f2 then
    invalid_arg "Telescope.compose: middle layers do not match";
  let d1 = Bipartite.d f1 and d2 = Bipartite.d f2 in
  let d = d1 * d2 in
  let v2 = Bipartite.v f2 in
  if d > v2 then
    invalid_arg "Telescope.compose: degree exceeds right size";
  (* Raw product targets of x, then deterministic multi-edge remap:
     later duplicates probe linearly for the next target unused in this
     x's list. *)
  let targets_of x =
    let raw =
      Array.init d (fun e ->
          let e1 = e / d2 and e2 = e mod d2 in
          Bipartite.neighbor f2 (Bipartite.neighbor f1 x e1) e2)
    in
    let used = Hashtbl.create d in
    Array.map
      (fun y ->
        let rec place y =
          if Hashtbl.mem used y then place ((y + 1) mod v2)
          else begin
            Hashtbl.add used y ();
            y
          end
        in
        place y)
      raw
  in
  let memo : (int * int array) option ref = ref None in
  let neighbor x e =
    let targets =
      match !memo with
      | Some (x0, t) when x0 = x -> t
      | Some _ | None ->
        let t = targets_of x in
        memo := Some (x, t);
        t
    in
    targets.(e)
  in
  Bipartite.create ~u:(Bipartite.u f1) ~v:v2 ~d neighbor
