module Prng = Pdm_util.Prng

let striped ~seed ~u ~v ~d =
  if v mod d <> 0 then invalid_arg "Seeded.striped: d must divide v";
  let w = v / d in
  Bipartite.create ~striped:true ~u ~v ~d (fun x i ->
      (i * w) + Prng.hash_to_range ~seed x i w)

let unstriped ~seed ~u ~v ~d =
  Bipartite.create ~u ~v ~d (fun x i -> Prng.hash_to_range ~seed x i v)
