module Prng = Pdm_util.Prng
module Sampling = Pdm_util.Sampling

let gamma g s =
  let set = Hashtbl.create (Array.length s * Bipartite.d g) in
  Array.iter
    (fun x ->
      for i = 0 to Bipartite.d g - 1 do
        Hashtbl.replace set (Bipartite.neighbor g x i) ()
      done)
    s;
  set

let gamma_size g s = Hashtbl.length (gamma g s)

(* Right vertex -> (incident edge count from S, one left endpoint). *)
let edge_counts g s =
  let counts = Hashtbl.create (Array.length s * Bipartite.d g) in
  Array.iter
    (fun x ->
      for i = 0 to Bipartite.d g - 1 do
        let y = Bipartite.neighbor g x i in
        match Hashtbl.find_opt counts y with
        | None -> Hashtbl.add counts y (1, x)
        | Some (c, x0) -> Hashtbl.replace counts y (c + 1, x0)
      done)
    s;
  counts

let unique_neighbors g s =
  let counts = edge_counts g s in
  let phi = Hashtbl.create (Hashtbl.length counts) in
  Hashtbl.iter (fun y (c, x) -> if c = 1 then Hashtbl.add phi y x) counts;
  phi

let unique_neighbor_count g s = Hashtbl.length (unique_neighbors g s)

let epsilon_of_set g s =
  let n = Array.length s in
  if n = 0 then invalid_arg "Expansion.epsilon_of_set: empty set";
  let dn = float_of_int (Bipartite.d g * n) in
  1.0 -. (float_of_int (gamma_size g s) /. dn)

(* Enumerate subsets of [0, u) of a given size, calling [f] on each
   (reusing one scratch array). *)
let iter_subsets ~u ~size f =
  let subset = Array.make size 0 in
  let rec fill pos lo =
    if pos = size then f subset
    else
      for x = lo to u - (size - pos) do
        subset.(pos) <- x;
        fill (pos + 1) (x + 1)
      done
  in
  if size >= 1 && size <= u then fill 0 0

let binom u k =
  let rec loop acc i =
    if i > k then acc else loop (acc * (u - i + 1) / i) (i + 1)
  in
  if k < 0 || k > u then 0 else loop 1 1

let check_enumerable g ~set_size fn =
  let u = Bipartite.u g in
  if u > 30 then invalid_arg (fn ^ ": universe too large to enumerate");
  if binom u set_size > 10_000_000 then
    invalid_arg (fn ^ ": too many subsets to enumerate")

let exact_epsilon g ~set_size =
  check_enumerable g ~set_size "Expansion.exact_epsilon";
  let worst = ref neg_infinity in
  iter_subsets ~u:(Bipartite.u g) ~size:set_size (fun s ->
      let e = epsilon_of_set g s in
      if e > !worst then worst := e);
  !worst

let certify g ~capacity ~eps =
  let ok = ref true in
  for size = 1 to capacity do
    check_enumerable g ~set_size:size "Expansion.certify";
    if !ok then
      iter_subsets ~u:(Bipartite.u g) ~size (fun s ->
          if !ok && epsilon_of_set g s > eps then ok := false)
  done;
  !ok

let sampled_epsilon g ~rng ~set_size ~trials =
  if trials < 1 then invalid_arg "Expansion.sampled_epsilon: trials";
  let worst = ref neg_infinity in
  for _ = 1 to trials do
    let s = Sampling.distinct rng ~universe:(Bipartite.u g) ~count:set_size in
    let e = epsilon_of_set g s in
    if e > !worst then worst := e
  done;
  !worst

let well_expanded_subset g ~lambda s =
  if lambda <= 0.0 then invalid_arg "Expansion.well_expanded_subset: lambda";
  let phi = unique_neighbors g s in
  let d = Bipartite.d g in
  let threshold = (1.0 -. lambda) *. float_of_int d in
  let good x =
    let owned = ref 0 in
    for i = 0 to d - 1 do
      match Hashtbl.find_opt phi (Bipartite.neighbor g x i) with
      | Some x0 when x0 = x -> incr owned
      | Some _ | None -> ()
    done;
    float_of_int !owned >= threshold
  in
  Array.of_list (List.filter good (Array.to_list s))

let lemma3_bound ~n ~v ~d ~k ~eps ~delta =
  if k < 1 then invalid_arg "Expansion.lemma3_bound: k >= 1";
  let base = (1.0 -. eps) *. float_of_int d /. float_of_int k in
  if base <= 1.0 then
    invalid_arg "Expansion.lemma3_bound: requires (1-eps) d > k";
  let avg =
    float_of_int (k * n) /. ((1.0 -. delta) *. float_of_int v)
  in
  avg +. (log (float_of_int v) /. log base)
