(** The semi-explicit expander construction of Section 5.

    Section 5 builds, for u = poly(N) and any constant 0 < β < 1, an
    (N, ε)-expander of degree polylog(u) whose neighbor function is
    evaluated with no I/O using O(N^β) words of pre-processed internal
    memory — by recursively applying the telescope product (Lemma 10)
    to a family of slightly-unbalanced base expanders obtained from
    Capalbo et al. (Corollary 1).

    We reproduce the construction's *shape* exactly — the level
    recursion of Lemma 11, the parameter arithmetic (degrees multiply,
    errors compose as 1−Π(1−ε′), right sizes shrink as
    u^{(1−β′/c)^i}, memory grows linearly in the level count) — while
    the base expanders themselves are seeded pseudorandom graphs
    standing in for the Capalbo et al. objects (see DESIGN.md §2).
    Internal-memory usage is *modelled* with the Corollary 1 formula
    O(u^β/ε^c) and charged to an {!Pdm_sim.Internal_memory}-style
    count in the report, so Theorem 12's space claim can be checked.

    The fixed constant [c] of Corollary 1 is taken to be 2. *)

type level = {
  level_u : int;       (** left size u_i of the i-th base expander *)
  level_v : int;       (** right size u_{i+1} *)
  level_d : int;       (** degree of the i-th base expander *)
  level_memory : int;  (** modelled preprocessing words, ⌈u_i^β/ε^c⌉ *)
}

type t = {
  graph : Bipartite.t;      (** the composed expander F : [u]×[d] → [v] *)
  levels : level list;      (** base family, outermost (largest u) first *)
  degree : int;             (** composed degree d = Π dᵢ *)
  right_size : int;         (** composed v *)
  capacity : int;           (** N: sets up to this size expand *)
  epsilon : float;          (** composed error 1 − Π(1−ε′) *)
  memory_words : int;       (** total modelled preprocessing space *)
}

val corollary1 :
  seed:int -> u:int -> beta:float -> eps:float -> Bipartite.t * level
(** One base expander per Corollary 1: right size ⌈u^{1−β/c}⌉, degree
    ⌈log₂(u)/ε⌉ (a concrete representative of poly(log u / ε)), and
    modelled space ⌈u^β/ε^c⌉ words. *)

val construct :
  seed:int -> capacity:int -> u:int -> beta:float -> eps:float -> t
(** Theorem 12: build an (N, ε)-expander for [capacity] = N left-set
    size, universe [u] (must satisfy u ≥ N), target error [eps].
    Applies Lemma 11's recursion until the right side is within a
    degree factor of N, then reports the composed object. Raises
    [Invalid_argument] when the parameters make the recursion
    impossible (e.g. eps so small the base degree exceeds the right
    side). *)

val striped_for_pdm : t -> Bipartite.t
(** The trivially striped version for use in the parallel disk model
    (factor-d space blowup, end of Section 5). In the parallel disk
    head model, [t.graph] can be used directly. *)
