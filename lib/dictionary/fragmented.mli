(** The Section 4.1 dictionary with large satellite data (k = d/2).

    To return satellite data of up to O(BD / log N) bits in a single
    parallel I/O, the record of a key is split into k = d/2 fragments
    and the load-balancing scheme of Section 3 runs with k items per
    vertex: each fragment goes to a currently least-loaded bucket
    among the key's d neighbor buckets (several fragments may share a
    bucket). A lookup reads the d buckets — one block per disk, one
    parallel I/O — collects the key's fragments and reassembles them
    in fragment order.

    Fragments are tagged records [key; index; payload], so no
    head-pointer machinery is needed; the price relative to
    Section 4.2(a) is the per-fragment key copy, exactly the trade-off
    the paper describes. Updates cost one read round plus one write
    round (all touched buckets sit on distinct disks). *)

type config = {
  universe : int;
  capacity : int;      (** N *)
  degree : int;        (** d; k = d/2 fragments per key, d even, ≥ 4 *)
  sigma_bits : int;    (** satellite bits per key *)
  buckets_per_stripe : int;
  seed : int;
}

type t

exception Overflow of int
(** A fragment found every candidate bucket full: parameters violate
    the Lemma 3 guarantee. *)

val plan :
  ?load_slack:float ->
  ?strategy:[ `Bound | `Average of float ] ->
  universe:int ->
  capacity:int ->
  block_words:int ->
  degree:int ->
  sigma_bits:int ->
  seed:int ->
  unit ->
  config
(** Size buckets (one block each) so the fragment slots accommodate
    the expected load. [`Bound] (default) uses Lemma 3's closed form
    padded by [load_slack] (default 1.25) — fully worst-case safe, but
    the bound's additive log term is loose, so it needs large blocks.
    [`Average f] sizes buckets at [f] times the average load kN/v —
    the paper's own parameterization (v = kN/log N with load
    Θ(log N)), relying on the measured concentration of the greedy
    scheme; {!insert} still raises {!Overflow} if the assumption ever
    fails, so experiments remain sound. *)

val create :
  machine:int Pdm_sim.Pdm.t -> disk_offset:int -> block_offset:int ->
  config -> t

val recover :
  machine:int Pdm_sim.Pdm.t -> disk_offset:int -> block_offset:int ->
  config -> t
(** Rebuild a handle over existing disk contents (cf.
    {!Basic_dict.recover}): one counted scan recounts the stored keys
    (fragments ÷ k). *)

val blocks_per_disk : config -> int

val frag_count : config -> int
(** k = d/2. *)

val frag_bits : config -> int
(** ⌈σ / k⌉ payload bits per fragment. *)

val config : t -> config

val machine : t -> int Pdm_sim.Pdm.t

val size : t -> int

val slots_per_bucket : t -> int

val bandwidth_bits : t -> block_words:int -> int
(** Largest σ this geometry supports: k × (payload capacity of a
    fragment slot that still fits the block). Diagnostic for E10. *)

val find : t -> int -> Bytes.t option
(** One parallel I/O. *)

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit
(** Insert or update in place; 1 read + 1 write round. *)

val delete : t -> int -> bool

val max_load : t -> int
(** Uncounted diagnostic: maximum bucket load in fragments. *)
