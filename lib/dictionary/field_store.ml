module Pdm = Pdm_sim.Pdm
module Bipartite = Pdm_expander.Bipartite
module Imath = Pdm_util.Imath

(* A field of more than one block's worth of bits is spread over
   [groups] disks (the paper: "If the size of the satellite data is too
   large, more disks are needed to transfer the data in one probe...
   the number of disks should be a multiple of d"). Stripe i then owns
   disks [disk_offset + i·groups, disk_offset + (i+1)·groups): every
   field still loads in one parallel round. *)
type t = {
  machine : int Pdm.t;
  disk_offset : int;
  block_offset : int;
  graph : Bipartite.t;
  field_bits : int;
  field_words : int;
  groups : int;            (* blocks (= disks) per field *)
  seg_words : int;         (* words of a field stored per group block *)
  fields_per_row : int;    (* fields sharing one block row *)
  blocks_per_disk : int;
}

let plan_groups ~block_words ~field_bits =
  Imath.cdiv (Codec.words_for_bits field_bits) block_words

let create ~machine ~disk_offset ~block_offset ~graph ~field_bits =
  if not (Bipartite.is_striped graph) then
    invalid_arg "Field_store.create: graph must be striped";
  if field_bits < 1 then invalid_arg "Field_store.create: field_bits";
  let field_words = Codec.words_for_bits field_bits in
  let block_words = Pdm.block_size machine in
  let groups = Imath.cdiv field_words block_words in
  let seg_words = Imath.cdiv field_words groups in
  let fields_per_row = block_words / seg_words in
  assert (fields_per_row >= 1);
  let d = Bipartite.d graph in
  if disk_offset < 0 || disk_offset + (d * groups) > Pdm.disks machine then
    invalid_arg "Field_store.create: disk range out of machine";
  let stripe_width = Bipartite.stripe_width graph in
  let blocks_per_disk = Imath.cdiv stripe_width fields_per_row in
  if block_offset < 0
     || block_offset + blocks_per_disk > Pdm.blocks_per_disk machine
  then invalid_arg "Field_store.create: block range out of machine";
  { machine; disk_offset; block_offset; graph; field_bits; field_words;
    groups; seg_words; fields_per_row; blocks_per_disk }

let graph t = t.graph
let field_bits t = t.field_bits
let field_words t = t.field_words
let fields_per_block t = t.fields_per_row
let groups t = t.groups
let disk_span t = Bipartite.d t.graph * t.groups
let blocks_per_disk t = t.blocks_per_disk
let total_bits t = Bipartite.v t.graph * t.field_bits

(* Global field index -> (per-group addresses, word base within each
   block). *)
let locate t y =
  let stripe, j = Bipartite.stripe_of t.graph y in
  let row = t.block_offset + (j / t.fields_per_row) in
  let base = j mod t.fields_per_row * t.seg_words in
  let addrs =
    List.init t.groups (fun q ->
        { Pdm.disk = t.disk_offset + (stripe * t.groups) + q; block = row })
  in
  (addrs, base)

let addrs_of_field t y = fst (locate t y)

let addr_of_field t y =
  match addrs_of_field t y with
  | a :: _ -> a
  | [] -> invalid_arg "Field_store.addr_of_field: store has zero groups"

let addresses t key =
  List.concat
    (List.init (Bipartite.d t.graph) (fun i ->
         addrs_of_field t (Bipartite.neighbor t.graph key i)))

(* The field's words, gathered group by group. Occupancy is judged by
   the first word of the first segment. *)
let decode_field t segs base =
  match segs with
  | [] -> invalid_arg "Field_store: field with no segments"
  | first :: _ ->
    (match first.(base) with
     | None -> None
     | Some _ ->
       let words =
         Array.init t.field_words (fun w ->
             let q = w / t.seg_words and off = w mod t.seg_words in
             let seg =
               match List.nth_opt segs q with
               | Some s -> s
               | None -> invalid_arg "Field_store: missing segment"
             in
             match seg.(base + off) with
             | Some x -> x
             | None -> invalid_arg "Field_store: corrupt field")
       in
       Some (Codec.bytes_of_words words ~nbits:t.field_bits))

let segs_in t blocks y =
  let addrs, base = locate t y in
  let segs =
    List.map
      (fun a ->
        match List.assoc_opt a blocks with
        | Some block -> block
        | None -> invalid_arg "Field_store.field_in: block not supplied")
      addrs
  in
  (segs, base)

let field_in t blocks y =
  let segs, base = segs_in t blocks y in
  decode_field t segs base

let read_fields t ys =
  let addrs = List.concat_map (addrs_of_field t) ys in
  let blocks = Pdm.read t.machine addrs in
  List.map (fun y -> (y, field_in t blocks y)) ys

(* pdm-lint: domain local — field codec mutates a per-call scratch copy of the block *)
let poke_field t segs base = function
  | None ->
    List.iteri
      (fun q block ->
        let seg_len =
          min t.seg_words (t.field_words - (q * t.seg_words))
        in
        for off = 0 to seg_len - 1 do
          block.(base + off) <- None
        done)
      segs
  | Some bytes ->
    let words = Codec.words_of_bits bytes ~nbits:t.field_bits in
    if Array.length words <> t.field_words then
      invalid_arg "Field_store: field content has wrong size";
    List.iteri
      (fun q block ->
        let seg_len =
          min t.seg_words (t.field_words - (q * t.seg_words))
        in
        for off = 0 to seg_len - 1 do
          block.(base + off) <- Some words.((q * t.seg_words) + off)
        done)
      segs

let prepare_updates t ~images updates =
  let touched = Hashtbl.create 8 in
  List.iter
    (fun (y, content) ->
      let addrs, base = locate t y in
      let segs =
        List.map
          (fun a ->
            match List.assoc_opt a images with
            | Some block -> block
            | None ->
              invalid_arg "Field_store.prepare_updates: block not supplied")
          addrs
      in
      poke_field t segs base content;
      List.iter2 (fun a b -> Hashtbl.replace touched a b) addrs segs)
    updates;
  Hashtbl.fold (fun a b acc -> (a, b) :: acc) touched []

let write_fields_in t ~images updates =
  let blocks = prepare_updates t ~images updates in
  if blocks <> [] then Pdm.write t.machine blocks

let write_fields t updates =
  let addrs = List.concat_map (fun (y, _) -> addrs_of_field t y) updates in
  let images = Pdm.read t.machine addrs in
  write_fields_in t ~images updates

let bulk_write t fields =
  let seen = Hashtbl.create (List.length fields) in
  List.iter
    (fun (y, _) ->
      if Hashtbl.mem seen y then
        invalid_arg "Field_store.bulk_write: duplicate field";
      Hashtbl.add seen y ())
    fields;
  write_fields t (List.map (fun (y, b) -> (y, Some b)) fields)

let count_occupied t =
  let v = Bipartite.v t.graph in
  let occ = ref 0 in
  for y = 0 to v - 1 do
    let _, base = locate t y in
    let block = Pdm.peek t.machine (addr_of_field t y) in
    if block.(base) <> None then incr occ
  done;
  !occ
