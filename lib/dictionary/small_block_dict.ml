module Pdm = Pdm_sim.Pdm
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Prng = Pdm_util.Prng
module Imath = Pdm_util.Imath

type config = {
  universe : int;
  capacity : int;
  degree : int;
  buckets_per_stripe : int;
  sub_blocks : int;
  probes : int;
  value_bytes : int;
  seed : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  disk_offset : int;
  block_offset : int;
  graph : Bipartite.t;
  width : int;
  slots : int;            (* record slots per sub-block *)
  mutable size : int;
}

exception Overflow of int

let width_of cfg = 1 + Codec.words_for_bits (8 * cfg.value_bytes)

let blocks_per_disk cfg = cfg.buckets_per_stripe * cfg.sub_blocks

let plan ?(avg_slack = 3.0) ?(probes = 2) ~universe ~capacity ~block_words
    ~degree ~value_bytes ~seed () =
  if probes < 1 then invalid_arg "Small_block_dict.plan: probes >= 1";
  let cfg0 =
    { universe; capacity; degree; buckets_per_stripe = 1; sub_blocks = 1;
      probes; value_bytes; seed }
  in
  let slots = block_words / width_of cfg0 in
  if slots < 1 then
    invalid_arg "Small_block_dict.plan: a record must fit a block";
  (* Total sub-blocks s so that avg_slack * n / (d * s) <= slots; use
     a few sub-blocks per bucket so the within-bucket choices exist. *)
  let total_needed =
    int_of_float (ceil (avg_slack *. float_of_int capacity /. float_of_int slots))
  in
  let sub_blocks = max (2 * probes) 4 in
  let buckets_per_stripe =
    max 1 (Imath.cdiv total_needed (degree * sub_blocks))
  in
  { cfg0 with buckets_per_stripe; sub_blocks }

let create ~machine ~disk_offset ~block_offset cfg =
  if cfg.degree < 2 then invalid_arg "Small_block_dict.create: degree";
  if disk_offset < 0 || disk_offset + cfg.degree > Pdm.disks machine then
    invalid_arg "Small_block_dict.create: disk range out of machine";
  if block_offset < 0
     || block_offset + blocks_per_disk cfg > Pdm.blocks_per_disk machine
  then invalid_arg "Small_block_dict.create: block range out of machine";
  let width = width_of cfg in
  let slots = Pdm.block_size machine / width in
  if slots < 1 then invalid_arg "Small_block_dict.create: record exceeds block";
  let v = cfg.degree * cfg.buckets_per_stripe in
  let graph = Seeded.striped ~seed:cfg.seed ~u:cfg.universe ~v ~d:cfg.degree in
  { cfg; machine; disk_offset; block_offset; graph; width; slots; size = 0 }

let config t = t.cfg
let size t = t.size
let slots_per_sub_block t = t.slots

(* Candidate sub-blocks of key x within neighbor bucket i (distinct
   probes when sub_blocks allows). *)
let sub_choices t key i =
  let m = t.cfg.sub_blocks in
  let first = Prng.hash3 ~seed:(t.cfg.seed + 7) key i 0 mod m in
  List.init t.cfg.probes (fun p -> (first + p * ((m / t.cfg.probes) + 1)) mod m)
  |> List.sort_uniq compare

let addr_of t ~stripe ~local ~sub =
  { Pdm.disk = t.disk_offset + stripe;
    block = t.block_offset + (local * t.cfg.sub_blocks) + sub }

let addresses t key =
  List.concat
    (List.init t.cfg.degree (fun i ->
         let stripe, local = Bipartite.neighbor_in_stripe t.graph key i in
         List.map (fun sub -> addr_of t ~stripe ~local ~sub) (sub_choices t key i)))

let fetch t key = Pdm.read t.machine (addresses t key)

let value_of t record =
  Codec.bytes_of_words_len
    (Array.sub record 1 (t.width - 1))
    ~len:t.cfg.value_bytes

let record_of t key value =
  if Bytes.length value > t.cfg.value_bytes then
    invalid_arg "Small_block_dict: value too large";
  let padded = Bytes.make t.cfg.value_bytes '\000' in
  Bytes.blit value 0 padded 0 (Bytes.length value);
  Array.append [| key |] (Codec.words_of_bytes padded)

let find_slot t blocks key =
  List.fold_left
    (fun acc (addr, block) ->
      match acc with
      | Some _ -> acc
      | None ->
        Option.map
          (fun s -> (addr, block, s))
          (Codec.Slots.find_key block ~width:t.width ~key))
    None blocks

let find t key =
  match find_slot t (fetch t key) key with
  | Some (_, block, s) ->
    Option.map (value_of t) (Codec.Slots.read block ~width:t.width s)
  | None -> None

let mem t key = find t key <> None

let insert t key value =
  let record = record_of t key value in
  let blocks = fetch t key in
  match find_slot t blocks key with
  | Some (addr, block, s) ->
    Codec.Slots.write block ~width:t.width s (Some record);
    Pdm.write t.machine [ (addr, block) ]
  | None ->
    if t.size >= t.cfg.capacity then
      invalid_arg "Small_block_dict.insert: at capacity";
    (* Greedy over every candidate sub-block. *)
    let best = ref None in
    List.iter
      (fun (addr, block) ->
        let load = Codec.Slots.count block ~width:t.width in
        match !best with
        | Some (_, _, l) when l <= load -> ()
        | Some _ | None -> best := Some (addr, block, load))
      blocks;
    (match !best with
     | None ->
       (* pdm-lint: allow R3 — unreachable: [blocks] holds one image
          per candidate sub-block and [plan] enforces degree >= 1, so
          the greedy scan always selects something. *)
       assert false
     | Some (addr, block, _) ->
       (match Codec.Slots.first_free block ~width:t.width with
        | None -> raise (Overflow key)
        | Some s ->
          Codec.Slots.write block ~width:t.width s (Some record);
          Pdm.write t.machine [ (addr, block) ];
          t.size <- t.size + 1))

let delete t key =
  match find_slot t (fetch t key) key with
  | Some (addr, block, s) ->
    Codec.Slots.write block ~width:t.width s None;
    Pdm.write t.machine [ (addr, block) ];
    t.size <- t.size - 1;
    true
  | None -> false

let max_sub_block_load t =
  let worst = ref 0 in
  for stripe = 0 to t.cfg.degree - 1 do
    for local = 0 to t.cfg.buckets_per_stripe - 1 do
      for sub = 0 to t.cfg.sub_blocks - 1 do
        let block = Pdm.peek t.machine (addr_of t ~stripe ~local ~sub) in
        worst := max !worst (Codec.Slots.count block ~width:t.width)
      done
    done
  done;
  !worst
