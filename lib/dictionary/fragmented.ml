module Pdm = Pdm_sim.Pdm
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Expansion = Pdm_expander.Expansion
module Imath = Pdm_util.Imath

type config = {
  universe : int;
  capacity : int;
  degree : int;
  sigma_bits : int;
  buckets_per_stripe : int;
  seed : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  disk_offset : int;
  block_offset : int;
  graph : Bipartite.t;
  width : int;          (* fragment record width in words *)
  slots : int;          (* fragment slots per bucket (one block) *)
  mutable size : int;
}

exception Overflow of int

let frag_count cfg =
  if cfg.degree < 4 || cfg.degree mod 2 <> 0 then
    invalid_arg "Fragmented: degree must be even and >= 4";
  cfg.degree / 2

let frag_bits cfg = Imath.cdiv cfg.sigma_bits (frag_count cfg)

let width_of cfg = 2 + Codec.words_for_bits (frag_bits cfg)

let blocks_per_disk cfg = cfg.buckets_per_stripe

let plan ?(load_slack = 1.25) ?(strategy = `Bound) ~universe ~capacity
    ~block_words ~degree ~sigma_bits ~seed () =
  let cfg0 =
    { universe; capacity; degree; sigma_bits; buckets_per_stripe = 1; seed }
  in
  let k = frag_count cfg0 in
  let slots = block_words / width_of cfg0 in
  if slots < 1 then
    invalid_arg "Fragmented.plan: a fragment must fit a block";
  let fits v =
    match strategy with
    | `Average f ->
      f *. float_of_int (k * capacity) /. float_of_int v
      <= float_of_int slots
    | `Bound ->
      (match
         Expansion.lemma3_bound ~n:capacity ~v ~d:degree ~k
           ~eps:(1.0 /. 12.0) ~delta:(1.0 /. 12.0)
       with
       | bound -> load_slack *. bound <= float_of_int slots
       | exception Invalid_argument _ -> false)
  in
  let rec search w =
    if w > 64 * (capacity + 1) * k then
      invalid_arg "Fragmented.plan: no feasible bucket count (B too small?)"
    else if fits (degree * w) then w
    else search (max (w + 1) (w * 3 / 2))
  in
  { cfg0 with buckets_per_stripe = search 1 }

let create ~machine ~disk_offset ~block_offset cfg =
  let k = frag_count cfg in
  if k > Pdm.block_size machine then invalid_arg "Fragmented.create: degree";
  if disk_offset < 0 || disk_offset + cfg.degree > Pdm.disks machine then
    invalid_arg "Fragmented.create: disk range out of machine";
  if block_offset < 0
     || block_offset + blocks_per_disk cfg > Pdm.blocks_per_disk machine
  then invalid_arg "Fragmented.create: block range out of machine";
  let width = width_of cfg in
  let slots = Pdm.block_size machine / width in
  if slots < 1 then invalid_arg "Fragmented.create: fragment exceeds block";
  let v = cfg.degree * cfg.buckets_per_stripe in
  let graph = Seeded.striped ~seed:cfg.seed ~u:cfg.universe ~v ~d:cfg.degree in
  { cfg; machine; disk_offset; block_offset; graph; width; slots; size = 0 }

let recover ~machine ~disk_offset ~block_offset cfg =
  let t = create ~machine ~disk_offset ~block_offset cfg in
  let k = frag_count cfg in
  let fragments = ref 0 in
  for b = 0 to blocks_per_disk cfg - 1 do
    let addrs =
      List.init cfg.degree (fun i ->
          { Pdm.disk = disk_offset + i; block = block_offset + b })
    in
    List.iter
      (fun (_, block) -> fragments := !fragments + Codec.Slots.count block ~width:t.width)
      (Pdm.read machine addrs)
  done;
  if !fragments mod k <> 0 then
    invalid_arg "Fragmented.recover: fragment count not divisible by k";
  t.size <- !fragments / k;
  t

let config t = t.cfg
let machine t = t.machine
let size t = t.size
let slots_per_bucket t = t.slots

let bandwidth_bits t ~block_words =
  (* A fragment slot must fit the block: width = 2 + payload words. *)
  let max_payload_words = max 0 (block_words - 2) in
  frag_count t.cfg * max_payload_words * Codec.bits_per_word

let addr_of_bucket t i key =
  let stripe, local = Bipartite.neighbor_in_stripe t.graph key i in
  { Pdm.disk = t.disk_offset + stripe; block = t.block_offset + local }

let addresses t key = List.init t.cfg.degree (fun i -> addr_of_bucket t i key)

let fetch t key = Pdm.read t.machine (addresses t key)

(* Collect (frag_idx, payload words) of [key] from a block image. *)
let fragments_in t block key =
  let out = ref [] in
  for s = 0 to t.slots - 1 do
    match Codec.Slots.read block ~width:t.width s with
    | Some record when record.(0) = key ->
      out := (record.(1), Array.sub record 2 (t.width - 2), s) :: !out
    | Some _ | None -> ()
  done;
  !out

let find_in t key blocks =
  let frags =
    List.concat_map
      (fun addr ->
        match List.assoc_opt addr blocks with
        | Some block -> fragments_in t block key
        | None -> invalid_arg "Fragmented: missing block in fetch")
      (addresses t key)
  in
  let k = frag_count t.cfg in
  if List.length frags <> k then None
  else begin
    let ordered = List.sort (fun (a, _, _) (b, _, _) -> compare a b) frags in
    let fb = frag_bits t.cfg in
    let out = Bytes.make (Imath.cdiv (k * fb) 8) '\000' in
    (* Concatenate fragment payloads at fb-bit granularity. *)
    let w = Pdm_util.Bitbuf.Writer.create () in
    List.iter
      (fun (_, words, _) ->
        let bytes = Codec.bytes_of_words words ~nbits:fb in
        let r = Pdm_util.Bitbuf.Reader.of_bytes bytes in
        for _ = 1 to fb do
          Pdm_util.Bitbuf.Writer.add_bit w (Pdm_util.Bitbuf.Reader.read_bit r)
        done)
      ordered;
    let src = Pdm_util.Bitbuf.Writer.contents w in
    let len = Imath.cdiv t.cfg.sigma_bits 8 in
    Bytes.blit src 0 out 0 (min (Bytes.length src) (Bytes.length out));
    Some (Bytes.sub out 0 len)
  end

let find t key = find_in t key (fetch t key)

let mem t key = find t key <> None

(* Split satellite into k payload word-arrays. *)
let split_satellite t satellite =
  let k = frag_count t.cfg and fb = frag_bits t.cfg in
  if 8 * Bytes.length satellite < t.cfg.sigma_bits then
    invalid_arg "Fragmented: satellite shorter than sigma_bits";
  let r = Pdm_util.Bitbuf.Reader.of_bytes satellite in
  List.init k (fun f ->
      let w = Pdm_util.Bitbuf.Writer.create () in
      for b = 0 to fb - 1 do
        let bit_index = (f * fb) + b in
        let bit =
          bit_index < t.cfg.sigma_bits
          && (Pdm_util.Bitbuf.Reader.seek r bit_index;
              Pdm_util.Bitbuf.Reader.read_bit r)
        in
        Pdm_util.Bitbuf.Writer.add_bit w bit
      done;
      Codec.words_of_bits (Pdm_util.Bitbuf.Writer.contents w) ~nbits:fb)

let remove_key_from_images t key images =
  let touched = ref [] in
  List.iter
    (fun (addr, block) ->
      let frags = fragments_in t block key in
      if frags <> [] then begin
        List.iter
          (fun (_, _, slot) -> Codec.Slots.write block ~width:t.width slot None)
          frags;
        touched := addr :: !touched
      end)
    images;
  !touched

let insert t key satellite =
  if key < 0 || key >= t.cfg.universe then invalid_arg "Fragmented: key range";
  let images = fetch t key in
  let was_present = find_in t key images <> None in
  if (not was_present) && t.size >= t.cfg.capacity then
    invalid_arg "Fragmented.insert: at capacity";
  let touched_by_removal = remove_key_from_images t key images in
  (* Greedy k-item placement over the (already updated) images. *)
  let buckets = addresses t key in
  let load_of addr =
    Codec.Slots.count (List.assoc addr images) ~width:t.width
  in
  let payloads = split_satellite t satellite in
  let touched = ref touched_by_removal in
  List.iteri
    (fun idx payload ->
      let best =
        List.fold_left
          (fun acc addr ->
            match acc with
            | Some (_, l) when l <= load_of addr -> acc
            | Some _ | None -> Some (addr, load_of addr))
          None buckets
      in
      match best with
      | None ->
        (* pdm-lint: allow R3 — unreachable: [buckets] lists the key's
           d candidate buckets and [plan] enforces degree >= 1, so the
           fold always selects a least-loaded bucket. *)
        assert false
      | Some (addr, _) ->
        let block = List.assoc addr images in
        (match Codec.Slots.first_free block ~width:t.width with
         | None -> raise (Overflow key)
         | Some s ->
           Codec.Slots.write block ~width:t.width s
             (Some (Array.concat [ [| key; idx |]; payload ]));
           if not (List.mem addr !touched) then touched := addr :: !touched))
    payloads;
  Pdm.write t.machine
    (List.map (fun addr -> (addr, List.assoc addr images)) !touched);
  if not was_present then t.size <- t.size + 1

let delete t key =
  let images = fetch t key in
  let touched = remove_key_from_images t key images in
  if touched = [] then false
  else begin
    Pdm.write t.machine
      (List.map (fun addr -> (addr, List.assoc addr images)) touched);
    t.size <- t.size - 1;
    true
  end

let max_load t =
  let worst = ref 0 in
  for stripe = 0 to t.cfg.degree - 1 do
    for local = 0 to t.cfg.buckets_per_stripe - 1 do
      let block =
        Pdm.peek t.machine
          { Pdm.disk = t.disk_offset + stripe; block = t.block_offset + local }
      in
      worst := max !worst (Codec.Slots.count block ~width:t.width)
    done
  done;
  !worst
