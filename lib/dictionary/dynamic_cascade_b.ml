module Pdm = Pdm_sim.Pdm
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Imath = Pdm_util.Imath

type config = {
  universe : int;
  capacity : int;
  degree : int;
  sigma_bits : int;
  epsilon : float;
  v_factor : int;
  seed : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  arrays : Field_store.t array;
  m : int;
  field_bits : int;
  id_bits : int;
  mutable next_id : int;
  mutable size : int;
}

exception Overflow of int

let frag_count cfg = 2 * cfg.degree / 3

let id_bits_of cfg = max 1 (Imath.ceil_log2 (max 2 (8 * cfg.capacity)))

let field_bits_of cfg =
  id_bits_of cfg + Imath.cdiv cfg.sigma_bits (frag_count cfg)

let shrink_ratio cfg = min 0.5 (0.95 /. (1.0 +. (1.0 /. cfg.epsilon)))

let level_count cfg =
  let r = shrink_ratio cfg in
  max 1
    (int_of_float
       (ceil (log (float_of_int (max 2 cfg.capacity)) /. log (1.0 /. r))))

let min_stripe = 16

let level_sizes cfg =
  let r = shrink_ratio cfg in
  let d = cfg.degree in
  let v1 = float_of_int (cfg.v_factor * cfg.capacity * d) in
  Array.init (level_count cfg) (fun i ->
      let v = v1 *. (r ** float_of_int i) in
      max (d * min_stripe) (Imath.round_up_to ~multiple:d (int_of_float v)))

let create ~block_words cfg =
  if cfg.degree < 5 || 2 * frag_count cfg <= cfg.degree then
    invalid_arg "Dynamic_cascade_b: degree";
  if cfg.epsilon <= 0.0 then invalid_arg "Dynamic_cascade_b: epsilon";
  if cfg.v_factor < 2 then invalid_arg "Dynamic_cascade_b: v_factor";
  let d = cfg.degree in
  let field_bits = field_bits_of cfg in
  let field_words = Codec.words_for_bits field_bits in
  let fields_per_block = block_words / field_words in
  if fields_per_block < 1 then
    invalid_arg "Dynamic_cascade_b: field exceeds block";
  let sizes = level_sizes cfg in
  let level_blocks =
    Array.map (fun v -> Imath.cdiv (v / d) fields_per_block) sizes
  in
  let machine =
    Pdm.create ~disks:d ~block_size:block_words
      ~blocks_per_disk:(Array.fold_left ( + ) 0 level_blocks) ()
  in
  let offset = ref 0 in
  let arrays =
    Array.mapi
      (fun i v ->
        let graph = Seeded.striped ~seed:(cfg.seed + i) ~u:cfg.universe ~v ~d in
        let fs =
          Field_store.create ~machine ~disk_offset:0 ~block_offset:!offset
            ~graph ~field_bits
        in
        offset := !offset + level_blocks.(i);
        fs)
      sizes
  in
  { cfg; machine; arrays; m = frag_count cfg; field_bits;
    id_bits = id_bits_of cfg; next_id = 0; size = 0 }

let config t = t.cfg
let machine t = t.machine
let levels t = Array.length t.arrays
let size t = t.size

let getter t level blocks key i =
  let fs = t.arrays.(level - 1) in
  Field_store.field_in fs blocks (Bipartite.neighbor (Field_store.graph fs) key i)

let read_level t level key =
  Pdm.read t.machine (Field_store.addresses t.arrays.(level - 1) key)

(* Probe levels in order; [f level blocks decoded] on the first level
   whose majority vote succeeds. *)
let probe t key ~found ~missing =
  let l = Array.length t.arrays in
  let rec go level =
    if level > l then missing ()
    else begin
      let blocks = read_level t level key in
      match
        Field_codec.decode_b ~field_bits:t.field_bits ~id_bits:t.id_bits
          ~sigma_bits:t.cfg.sigma_bits ~d:t.cfg.degree
          (getter t level blocks key)
      with
      | Some (id, satellite) -> found level blocks id satellite
      | None -> go (level + 1)
    end
  in
  go 1

let find t key =
  probe t key
    ~found:(fun _ _ _ satellite -> Some satellite)
    ~missing:(fun () -> None)

let mem t key = find t key <> None

(* The stripes whose field carries [id] — the key's own fields at its
   level (expansion makes the majority unambiguous). *)
let stripes_of_id t level blocks key id =
  let get = getter t level blocks key in
  List.filter
    (fun i ->
      match get i with
      | None -> false
      | Some bytes ->
        let r = Pdm_util.Bitbuf.Reader.of_bytes bytes in
        Pdm_util.Bitbuf.Reader.read_bits r ~width:t.id_bits = id)
    (List.init t.cfg.degree (fun i -> i))

let write_encoding t level blocks key ~id ~stripes satellite =
  let fs = t.arrays.(level - 1) in
  let enc =
    Field_codec.encode_b ~field_bits:t.field_bits ~id_bits:t.id_bits ~id
      ~satellite ~sigma_bits:t.cfg.sigma_bits ~indices:stripes
  in
  let graph = Field_store.graph fs in
  let updates =
    List.map (fun (i, b) -> (Bipartite.neighbor graph key i, Some b)) enc
  in
  Field_store.write_fields_in fs ~images:blocks updates

let insert t key satellite =
  if 8 * Bytes.length satellite < t.cfg.sigma_bits then
    invalid_arg "Dynamic_cascade_b.insert: satellite shorter than sigma_bits";
  probe t key
    ~found:(fun level blocks id _old ->
      (* Update in place on the key's own stripes. *)
      let stripes = stripes_of_id t level blocks key id in
      write_encoding t level blocks key ~id ~stripes satellite)
    ~missing:(fun () ->
      if t.size >= t.cfg.capacity then
        invalid_arg "Dynamic_cascade_b.insert: at capacity";
      if t.next_id >= 1 lsl t.id_bits then
        invalid_arg "Dynamic_cascade_b.insert: identifier space exhausted \
                     (rebuild the structure)";
      let l = Array.length t.arrays in
      let rec place level =
        if level > l then raise (Overflow key)
        else begin
          let blocks = read_level t level key in
          let get = getter t level blocks key in
          let empties =
            List.filter
              (fun i -> get i = None)
              (List.init t.cfg.degree (fun i -> i))
          in
          if List.length empties >= t.m then begin
            let stripes = List.filteri (fun i _ -> i < t.m) empties in
            let id = t.next_id in
            t.next_id <- id + 1;
            write_encoding t level blocks key ~id ~stripes satellite;
            t.size <- t.size + 1
          end
          else place (level + 1)
        end
      in
      place 1)

let delete t key =
  probe t key
    ~found:(fun level blocks id _ ->
      let stripes = stripes_of_id t level blocks key id in
      let fs = t.arrays.(level - 1) in
      let graph = Field_store.graph fs in
      let updates =
        List.map (fun i -> (Bipartite.neighbor graph key i, None)) stripes
      in
      Field_store.write_fields_in fs ~images:blocks updates;
      t.size <- t.size - 1;
      true)
    ~missing:(fun () -> false)
