module Pdm = Pdm_sim.Pdm
module Journal = Pdm_sim.Journal
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Imath = Pdm_util.Imath

type config = {
  universe : int;
  capacity : int;
  degree : int;
  sigma_bits : int;
  levels : int;
  v_factor : int;
  seed : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  mutable membership : Basic_dict.t;  (* disks [0, d) *)
  arrays : Field_store.t array; (* level i on disks [(i+1)d, (i+2)d) *)
  m : int;
  field_bits : int;
  journal : Journal.t option;
  mutable crash : Journal.crash_point option;
  mutable size : int;
}

exception Overflow of int

let frag_count cfg = 2 * cfg.degree / 3

let field_bits_of cfg = Imath.cdiv cfg.sigma_bits (frag_count cfg) + 4

let min_stripe = 16

let level_sizes cfg =
  let d = cfg.degree in
  let v1 = float_of_int (cfg.v_factor * cfg.capacity * d) in
  Array.init cfg.levels (fun i ->
      let v = v1 *. (0.5 ** float_of_int i) in
      max (d * min_stripe) (Imath.round_up_to ~multiple:d (int_of_float v)))

let membership_value_bytes = 2

(* Worst update batch under the journal: the membership bucket plus
   one block per claimed field. *)
let journal_capacity cfg ~block_words =
  let entries = 1 + frag_count cfg in
  Imath.cdiv (entries * (block_words + 2)) block_words

let create ?(journaled = false) ?(replicas = 1) ?(spares = 0) ?factory
    ~block_words cfg =
  if cfg.degree < 5 || 2 * frag_count cfg <= cfg.degree then
    invalid_arg "One_probe_dynamic: degree";
  if cfg.levels < 1 || cfg.levels > 254 then
    invalid_arg "One_probe_dynamic: levels";
  if cfg.degree > 255 then invalid_arg "One_probe_dynamic: degree > 255";
  let d = cfg.degree in
  let field_bits = field_bits_of cfg in
  let field_words = Codec.words_for_bits field_bits in
  let fields_per_block = block_words / field_words in
  if fields_per_block < 1 then
    invalid_arg "One_probe_dynamic: field exceeds block";
  let sizes = level_sizes cfg in
  let level_blocks =
    Array.map (fun v -> Imath.cdiv (v / d) fields_per_block) sizes
  in
  let mem_cfg =
    Basic_dict.plan ~universe:cfg.universe ~capacity:cfg.capacity
      ~block_words ~degree:d ~value_bytes:membership_value_bytes
      ~seed:(cfg.seed + 1000) ()
  in
  let data_blocks =
    max
      (Array.fold_left max 1 level_blocks)
      (Basic_dict.blocks_per_disk mem_cfg)
  in
  let disks = (cfg.levels + 1) * d in
  let jcap = journal_capacity cfg ~block_words in
  let blocks_per_disk =
    if journaled then data_blocks + Journal.rows ~disks ~capacity_blocks:jcap
    else data_blocks
  in
  let machine =
    Pdm.create ?factory ~replicas ~spares ~disks ~block_size:block_words
      ~blocks_per_disk ()
  in
  let journal =
    if journaled then
      Some
        (Journal.create machine ~block_offset:data_blocks
           ~capacity_blocks:jcap)
    else None
  in
  let membership =
    Basic_dict.create ~machine ~disk_offset:0 ~block_offset:0 mem_cfg
  in
  let arrays =
    Array.mapi
      (fun i v ->
        let graph = Seeded.striped ~seed:(cfg.seed + i) ~u:cfg.universe ~v ~d in
        Field_store.create ~machine ~disk_offset:((i + 1) * d) ~block_offset:0
          ~graph ~field_bits)
      sizes
  in
  { cfg; machine; membership; arrays; m = frag_count cfg; field_bits;
    journal; crash = None; size = 0 }

let config t = t.cfg
let machine t = t.machine
let disks t = Pdm.disks t.machine
let size t = t.size
let journaled t = t.journal <> None

(* pdm-lint: domain local — crash-injection toggle flipped only by the driving test harness *)
let set_crash t crash =
  if t.journal = None && crash <> None then
    invalid_arg "One_probe_dynamic.set_crash: dictionary is not journaled";
  t.crash <- crash

(* Every multi-block update flows through here: journaled
   dictionaries get the write-ahead protocol (and the injected crash
   point, if any), plain ones the direct combined write round. *)
let write_batch t blocks =
  match t.journal with
  | None -> Pdm.write t.machine blocks
  | Some j -> Journal.log_and_apply j ?crash:t.crash blocks

let recover t =
  match t.journal with
  | None -> `Clean
  | Some j ->
    t.crash <- None;
    let outcome =
      Journal.recover t.machine ~block_offset:(Journal.block_offset j)
        ~capacity_blocks:(Journal.capacity_blocks j)
    in
    (* In-memory counters may be torn even when the disk state is
       whole (a crash before the commit point still interrupted
       [prepare_insert]'s accounting): rebuild the membership handle
       from disk and trust it, whatever the journal said. *)
    let mc = Basic_dict.config t.membership in
    t.membership <-
      Basic_dict.recover ~machine:t.machine ~disk_offset:0 ~block_offset:0 mc;
    t.size <- Basic_dict.size t.membership;
    outcome

let decode_membership bytes =
  (Char.code (Bytes.get bytes 0), Char.code (Bytes.get bytes 1))

let encode_membership ~level ~head =
  let b = Bytes.make membership_value_bytes '\000' in
  Bytes.set b 0 (Char.chr level);
  Bytes.set b 1 (Char.chr head);
  b

(* Every operation's single read round: membership + every level's
   candidate blocks — all on pairwise disjoint disk groups. *)
let all_addresses t key =
  Basic_dict.addresses t.membership key
  @ List.concat_map
      (fun fs -> Field_store.addresses fs key)
      (Array.to_list t.arrays)

let getter t level blocks key i =
  let fs = t.arrays.(level - 1) in
  Field_store.field_in fs blocks (Bipartite.neighbor (Field_store.graph fs) key i)

let probe_addresses = all_addresses

let find_in t key blocks =
  match Basic_dict.find_in t.membership key blocks with
  | None -> None
  | Some v ->
    let level, head = decode_membership v in
    Field_codec.decode_a ~field_bits:t.field_bits ~head
      ~sigma_bits:t.cfg.sigma_bits (getter t level blocks key)

let find t key = find_in t key (Pdm.read t.machine (all_addresses t key))

let mem t key =
  let blocks = Pdm.read t.machine (all_addresses t key) in
  Basic_dict.find_in t.membership key blocks <> None

let level_of t key =
  let addrs = Basic_dict.addresses t.membership key in
  let blocks = List.map (fun a -> (a, Pdm.peek t.machine a)) addrs in
  Option.map
    (fun v -> fst (decode_membership v))
    (Basic_dict.find_in t.membership key blocks)

let empty_stripes t level blocks key =
  let get = getter t level blocks key in
  List.filter (fun i -> get i = None) (List.init t.cfg.degree (fun i -> i))

(* pdm-lint: domain local — dictionary bookkeeping mutated under the single-threaded engine loop *)
let insert t key satellite =
  if 8 * Bytes.length satellite < t.cfg.sigma_bits then
    invalid_arg "One_probe_dynamic.insert: satellite shorter than sigma_bits";
  let blocks = Pdm.read t.machine (all_addresses t key) in
  match Basic_dict.find_in t.membership key blocks with
  | Some v ->
    (* Rewrite in place on the key's level. *)
    let level, head = decode_membership v in
    let fs = t.arrays.(level - 1) in
    (match
       Field_codec.indices_a ~field_bits:t.field_bits ~head
         (getter t level blocks key)
     with
     | None -> invalid_arg "One_probe_dynamic: corrupt pointer chain"
     | Some stripes ->
       let enc =
         Field_codec.encode_a ~field_bits:t.field_bits ~indices:stripes
           ~satellite ~sigma_bits:t.cfg.sigma_bits
       in
       let graph = Field_store.graph fs in
       let updates =
         List.map (fun (i, b) -> (Bipartite.neighbor graph key i, Some b)) enc
       in
       write_batch t (Field_store.prepare_updates fs ~images:blocks updates))
  | None ->
    if t.size >= t.cfg.capacity then
      invalid_arg "One_probe_dynamic.insert: at capacity";
    (* First-fit over the levels — all images already in hand. *)
    let rec place level =
      if level > Array.length t.arrays then raise (Overflow key)
      else begin
        let empties = empty_stripes t level blocks key in
        if List.length empties >= t.m then begin
          let stripes = List.filteri (fun i _ -> i < t.m) empties in
          let enc =
            Field_codec.encode_a ~field_bits:t.field_bits ~indices:stripes
              ~satellite ~sigma_bits:t.cfg.sigma_bits
          in
          let fs = t.arrays.(level - 1) in
          let graph = Field_store.graph fs in
          let updates =
            List.map (fun (i, b) -> (Bipartite.neighbor graph key i, Some b)) enc
          in
          let field_blocks = Field_store.prepare_updates fs ~images:blocks updates in
          let head =
            match stripes with
            | s :: _ -> s
            | [] ->
              invalid_arg "One_probe_dynamic: insert needs m >= 1 stripes"
          in
          let mem_block =
            Basic_dict.prepare_insert t.membership key
              (encode_membership ~level ~head)
              blocks
          in
          write_batch t (mem_block :: field_blocks);
          t.size <- t.size + 1
        end
        else place (level + 1)
      end
    in
    place 1

(* pdm-lint: domain local — dictionary bookkeeping mutated under the single-threaded engine loop *)
let delete t key =
  let blocks = Pdm.read t.machine (all_addresses t key) in
  match Basic_dict.find_in t.membership key blocks with
  | None -> false
  | Some v ->
    let level, head = decode_membership v in
    let fs = t.arrays.(level - 1) in
    (match
       Field_codec.indices_a ~field_bits:t.field_bits ~head
         (getter t level blocks key)
     with
     | None -> invalid_arg "One_probe_dynamic: corrupt pointer chain"
     | Some stripes ->
       let graph = Field_store.graph fs in
       let updates =
         List.map (fun i -> (Bipartite.neighbor graph key i, None)) stripes
       in
       let field_blocks = Field_store.prepare_updates fs ~images:blocks updates in
       (match Basic_dict.prepare_delete t.membership key blocks with
        | None ->
          (* pdm-lint: allow R3 — unreachable: this branch runs only
             when the membership lookup just found the key in these
             same block images, so [prepare_delete] must find it too. *)
          assert false
        | Some mem_block ->
          write_batch t (mem_block :: field_blocks);
          t.size <- t.size - 1;
          true))
