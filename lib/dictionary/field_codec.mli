(** The two field layouts of Theorem 6.

    A stored key's satellite data (σ bits) is split across m assigned
    fields of a {!Field_store}. Two encodings are used:

    {b Case (b)} — small blocks: every field carries an identifier of
    [id_bits] = ⌈lg n⌉ bits followed by a fixed-size data chunk. On
    lookup, the identifier appearing in more than half of the d
    fetched fields marks the fields to merge; expansion guarantees the
    majority is unambiguous.

    {b Case (a)} — large blocks: fields carry no identifier. Instead
    each field starts with the unary-coded relative pointer to the
    next assigned field (delta ones then a zero; the tail field starts
    with the zero alone), and the satellite bit stream fills whatever
    space each field has left — so the pointer overhead per key is
    under 2d bits total, at the cost of needing the head pointer
    (⌈lg d⌉ bits, kept in the membership sub-dictionary) to start
    decoding.

    All functions are pure; field contents are byte strings of
    ⌈field_bits/8⌉ bytes as stored by {!Field_store}. *)

type encoded = (int * Bytes.t) list
(** (assigned index, field content) pairs. The index is whatever
    keyspace the caller uses — stripe index i for lookups via Γ(x, i),
    or a global field index during construction. *)

val encode_b :
  field_bits:int ->
  id_bits:int ->
  id:int ->
  satellite:Bytes.t ->
  sigma_bits:int ->
  indices:int list ->
  encoded
(** Case (b). Splits [sigma_bits] of satellite into
    [List.length indices] chunks of [field_bits - id_bits] bits (the
    last chunk zero-padded), prefixing each with [id]. Raises
    [Invalid_argument] when the capacity is insufficient or the id
    does not fit. *)

val decode_b :
  field_bits:int ->
  id_bits:int ->
  sigma_bits:int ->
  d:int ->
  (int -> Bytes.t option) ->
  (int * Bytes.t) option
(** Case (b) lookup over the d candidate fields ([get i] = field at
    Γ(x, i), [None] = empty). Returns the majority identifier (> d/2
    occurrences) and the merged satellite, or [None] when there is no
    majority — i.e. the key is absent. *)

val encode_a :
  field_bits:int ->
  indices:int list ->
  satellite:Bytes.t ->
  sigma_bits:int ->
  encoded
(** Case (a). [indices] must be strictly increasing (positions within
    [0, d)). Raises [Invalid_argument] when a unary pointer does not
    fit its field or the total capacity is short. *)

val decode_a :
  field_bits:int ->
  head:int ->
  sigma_bits:int ->
  (int -> Bytes.t option) ->
  Bytes.t option
(** Case (a) lookup: follow the pointer list starting at index [head],
    concatenating each visited field's data remainder. Returns [None]
    if a visited field is empty or the stream ends short — both mean
    the structure does not hold the key (callers consult the
    membership dictionary first, so this is defensive). *)

val indices_a :
  field_bits:int -> head:int -> (int -> Bytes.t option) -> int list option
(** Follow only the unary pointers from [head], returning the full
    index list (used to rewrite a stored key's satellite in place). *)

val a_capacity_bits : field_bits:int -> indices:int list -> int
(** Data bits case (a) can store in these fields (capacity minus
    pointer overhead); useful for sizing checks and tests. *)
