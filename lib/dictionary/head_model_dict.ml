module Pdm = Pdm_sim.Pdm
module Bipartite = Pdm_expander.Bipartite
module Imath = Pdm_util.Imath

type t = {
  machine : int Pdm.t;
  graph : Bipartite.t;
  capacity : int;
  value_bytes : int;
  width : int;
  slots : int;
  mutable size : int;
}

exception Overflow of int

let create ~machine ~graph ~capacity ~value_bytes =
  if Pdm.model machine <> Pdm.Parallel_heads then
    invalid_arg "Head_model_dict.create: needs a Parallel_heads machine";
  let width = 1 + Codec.words_for_bits (8 * value_bytes) in
  let slots = Pdm.block_size machine / width in
  if slots < 1 then invalid_arg "Head_model_dict.create: record exceeds block";
  let v = Bipartite.v graph in
  if Imath.cdiv v (Pdm.disks machine) > Pdm.blocks_per_disk machine then
    invalid_arg "Head_model_dict.create: machine too small for v buckets";
  { machine; graph; capacity; value_bytes; width; slots; size = 0 }

let config_capacity t = t.capacity
let size t = t.size

let rounds_per_lookup t =
  Imath.cdiv (Bipartite.d t.graph) (Pdm.disks t.machine)

(* Bucket j lives at disk j mod D, block j / D — no striping needed. *)
let addr_of t j =
  let disks = Pdm.disks t.machine in
  { Pdm.disk = j mod disks; block = j / disks }

let addresses t key =
  Array.to_list (Array.map (addr_of t) (Bipartite.neighbors t.graph key))

let fetch t key = Pdm.read t.machine (addresses t key)

let value_of t record =
  Codec.bytes_of_words_len
    (Array.sub record 1 (t.width - 1))
    ~len:t.value_bytes

let record_of t key value =
  if Bytes.length value > t.value_bytes then
    invalid_arg "Head_model_dict: value too large";
  let padded = Bytes.make t.value_bytes '\000' in
  Bytes.blit value 0 padded 0 (Bytes.length value);
  Array.append [| key |] (Codec.words_of_bytes padded)

let find_slot t blocks key =
  List.fold_left
    (fun acc (addr, block) ->
      match acc with
      | Some _ -> acc
      | None ->
        Option.map
          (fun s -> (addr, block, s))
          (Codec.Slots.find_key block ~width:t.width ~key))
    None blocks

let find t key =
  match find_slot t (fetch t key) key with
  | Some (_, block, s) ->
    Option.map (value_of t) (Codec.Slots.read block ~width:t.width s)
  | None -> None

let mem t key = find t key <> None

let insert t key value =
  let record = record_of t key value in
  let blocks = fetch t key in
  match find_slot t blocks key with
  | Some (addr, block, s) ->
    Codec.Slots.write block ~width:t.width s (Some record);
    Pdm.write t.machine [ (addr, block) ]
  | None ->
    if t.size >= t.capacity then
      invalid_arg "Head_model_dict.insert: at capacity";
    let best = ref None in
    List.iter
      (fun (addr, block) ->
        let load = Codec.Slots.count block ~width:t.width in
        match !best with
        | Some (_, _, l) when l <= load -> ()
        | Some _ | None -> best := Some (addr, block, load))
      blocks;
    (match !best with
     | None ->
       (* pdm-lint: allow R3 — unreachable: [blocks] holds one image
          per candidate bucket and the configuration has >= 1 buckets,
          so the greedy scan always selects something. *)
       assert false
     | Some (addr, block, _) ->
       (match Codec.Slots.first_free block ~width:t.width with
        | None -> raise (Overflow key)
        | Some s ->
          Codec.Slots.write block ~width:t.width s (Some record);
          Pdm.write t.machine [ (addr, block) ];
          t.size <- t.size + 1))

let delete t key =
  match find_slot t (fetch t key) key with
  | Some (addr, block, s) ->
    Codec.Slots.write block ~width:t.width s None;
    Pdm.write t.machine [ (addr, block) ];
    t.size <- t.size - 1;
    true
  | None -> false

let max_load t =
  let v = Bipartite.v t.graph in
  let worst = ref 0 in
  for j = 0 to v - 1 do
    let block = Pdm.peek t.machine (addr_of t j) in
    worst := max !worst (Codec.Slots.count block ~width:t.width)
  done;
  !worst
