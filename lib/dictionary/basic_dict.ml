module Pdm = Pdm_sim.Pdm
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Expansion = Pdm_expander.Expansion
module Imath = Pdm_util.Imath

type config = {
  universe : int;
  capacity : int;
  degree : int;
  buckets_per_stripe : int;
  value_bytes : int;
  bucket_blocks : int;
  tombstone : bool;
  seed : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  disk_offset : int;
  block_offset : int;
  graph : Bipartite.t;
  width : int;               (* record width in words *)
  slots_per_block : int;
  mutable size : int;
  mutable tombstones : int;
}

exception Overflow of int

let record_width_of cfg = 1 + Codec.words_for_bits (8 * cfg.value_bytes)

let blocks_per_disk cfg = cfg.buckets_per_stripe * cfg.bucket_blocks

let plan ?(load_slack = 1.25) ?(bucket_blocks = 1) ?(tombstone = false)
    ~universe ~capacity ~block_words ~degree ~value_bytes ~seed () =
  if degree < 2 then invalid_arg "Basic_dict.plan: degree must be >= 2";
  if bucket_blocks < 1 then invalid_arg "Basic_dict.plan: bucket_blocks >= 1";
  let width = 1 + Codec.words_for_bits (8 * value_bytes) in
  let slots = block_words / width * bucket_blocks in
  if slots < 1 then invalid_arg "Basic_dict.plan: a record must fit a block";
  (* Find the least v (multiple of degree) whose Lemma 3 bound, padded
     by the slack factor, fits in a one-block bucket. *)
  let fits v =
    match
      Expansion.lemma3_bound ~n:capacity ~v ~d:degree ~k:1 ~eps:(1.0 /. 12.0)
        ~delta:(1.0 /. 12.0)
    with
    | bound -> load_slack *. bound <= float_of_int slots
    | exception Invalid_argument _ -> false
  in
  let rec search w =
    if w > 16 * (capacity + degree) then
      invalid_arg "Basic_dict.plan: no feasible bucket count (B too small?)"
    else if fits (degree * w) then w
    else search (max (w + 1) (w * 3 / 2))
  in
  let buckets_per_stripe = search 1 in
  { universe; capacity; degree; buckets_per_stripe; value_bytes;
    bucket_blocks; tombstone; seed }

let create ~machine ~disk_offset ~block_offset cfg =
  if cfg.degree < 2 then invalid_arg "Basic_dict.create: degree";
  if disk_offset < 0 || disk_offset + cfg.degree > Pdm.disks machine then
    invalid_arg "Basic_dict.create: disk range out of machine";
  if block_offset < 0
     || block_offset + blocks_per_disk cfg > Pdm.blocks_per_disk machine
  then invalid_arg "Basic_dict.create: block range out of machine";
  let width = record_width_of cfg in
  let slots_per_block = Pdm.block_size machine / width in
  if slots_per_block < 1 then
    invalid_arg "Basic_dict.create: a record must fit a block";
  let v = cfg.degree * cfg.buckets_per_stripe in
  let graph =
    Seeded.striped ~seed:cfg.seed ~u:cfg.universe ~v ~d:cfg.degree
  in
  { cfg; machine; disk_offset; block_offset; graph; width; slots_per_block;
    size = 0; tombstones = 0 }

let recover ~machine ~disk_offset ~block_offset cfg =
  let t = create ~machine ~disk_offset ~block_offset cfg in
  (* One counted pass over the structure's blocks: blocks_per_disk
     rounds (all d disks are read in parallel each round). *)
  for b = 0 to blocks_per_disk cfg - 1 do
    let addrs =
      List.init cfg.degree (fun i ->
          { Pdm.disk = disk_offset + i; block = block_offset + b })
    in
    List.iter
      (fun (_, block) ->
        let slots =
          Codec.Slots.per_block ~block_words:(Array.length block) ~width:t.width
        in
        for s = 0 to slots - 1 do
          match Codec.Slots.read block ~width:t.width s with
          | Some r when r.(0) = cfg.universe ->
            t.tombstones <- t.tombstones + 1
          | Some _ -> t.size <- t.size + 1
          | None -> ()
        done)
      (Pdm.read machine addrs)
  done;
  t

let config t = t.cfg

let graph t = t.graph

let machine t = t.machine

let size t = t.size

let record_width t = t.width

let slots_per_bucket t = t.slots_per_block * t.cfg.bucket_blocks

(* Bucket (stripe i, local j) occupies blocks
   [block_offset + j·bucket_blocks, …+bucket_blocks) of disk
   disk_offset + i. *)
let bucket_addrs t ~stripe ~local =
  List.init t.cfg.bucket_blocks (fun b ->
      { Pdm.disk = t.disk_offset + stripe;
        block = t.block_offset + (local * t.cfg.bucket_blocks) + b })

let bucket_of_key t key i =
  let stripe, local = Bipartite.neighbor_in_stripe t.graph key i in
  (stripe, local)

let addresses t key =
  List.concat
    (List.init t.cfg.degree (fun i ->
         let stripe, local = bucket_of_key t key i in
         bucket_addrs t ~stripe ~local))

(* In-memory image of one bucket: the list of its blocks, outer index =
   block within bucket. *)
let bucket_image blocks_by_addr t ~stripe ~local =
  List.map
    (fun a ->
      match List.assoc_opt a blocks_by_addr with
      | Some b -> (a, b)
      | None -> invalid_arg "Basic_dict: missing block in supplied fetch")
    (bucket_addrs t ~stripe ~local)

let value_of_record t record =
  Codec.bytes_of_words_len
    (Array.sub record 1 (t.width - 1))
    ~len:t.cfg.value_bytes

(* Search one bucket image for a key: (block addr, block, slot). *)
let find_slot_in_bucket t image key =
  let rec loop = function
    | [] -> None
    | (addr, block) :: rest ->
      (match Codec.Slots.find_key block ~width:t.width ~key with
       | Some s -> Some (addr, block, s)
       | None -> loop rest)
  in
  loop image

let find_in t key blocks =
  let rec over_buckets i =
    if i >= t.cfg.degree then None
    else begin
      let stripe, local = bucket_of_key t key i in
      let image = bucket_image blocks t ~stripe ~local in
      match find_slot_in_bucket t image key with
      | Some (_, block, s) ->
        (match Codec.Slots.read block ~width:t.width s with
         | Some record -> Some (value_of_record t record)
         | None ->
           (* pdm-lint: allow R3 — unreachable: [find_slot_in_bucket]
              only answers slots it just read as occupied from this
              same image. *)
           assert false)
      | None -> over_buckets (i + 1)
    end
  in
  over_buckets 0

let fetch t key = Pdm.read t.machine (addresses t key)

let find t key = find_in t key (fetch t key)

let mem t key = find t key <> None

(* pdm-lint: domain local — decode scratch buffer confined to the calling operation *)
let record_of t key value =
  if Bytes.length value > t.cfg.value_bytes then
    invalid_arg "Basic_dict: value too large";
  let padded = Bytes.make t.cfg.value_bytes '\000' in
  Bytes.blit value 0 padded 0 (Bytes.length value);
  Array.append [| key |] (Codec.words_of_bytes padded)

let bucket_load t image =
  List.fold_left
    (fun acc (_, block) -> acc + Codec.Slots.count block ~width:t.width)
    0 image

(* pdm-lint: domain local — staged block edits on per-operation scratch copies *)
let prepare_insert t key value blocks =
  let record = record_of t key value in
  let images =
    List.init t.cfg.degree (fun i ->
        let stripe, local = bucket_of_key t key i in
        bucket_image blocks t ~stripe ~local)
  in
  (* Update in place when present. *)
  let existing =
    List.fold_left
      (fun acc image ->
        match acc with
        | Some _ -> acc
        | None -> find_slot_in_bucket t image key)
      None images
  in
  match existing with
  | Some (addr, block, s) ->
    Codec.Slots.write block ~width:t.width s (Some record);
    (addr, block)
  | None ->
    if t.size >= t.cfg.capacity then
      invalid_arg "Basic_dict.insert: at capacity";
    (* Greedy k = 1: least-loaded neighbor bucket, ties to stripe 0. *)
    let best = ref None in
    List.iter
      (fun image ->
        let load = bucket_load t image in
        match !best with
        | Some (_, l) when l <= load -> ()
        | Some _ | None -> best := Some (image, load))
      images;
    (match !best with
     | None ->
       (* pdm-lint: allow R3 — unreachable: [images] holds one image
          per neighbor bucket and the graph degree is >= 1, so the
          greedy scan always selects a least-loaded bucket. *)
       assert false
     | Some (image, _) ->
       let rec place = function
         | [] -> raise (Overflow key)
         | (addr, block) :: rest ->
           (match Codec.Slots.first_free block ~width:t.width with
            | Some s ->
              Codec.Slots.write block ~width:t.width s (Some record);
              t.size <- t.size + 1;
              (addr, block)
            | None -> place rest)
       in
       place image)

let insert t key value =
  let blocks = fetch t key in
  let addr, block = prepare_insert t key value blocks in
  Pdm.write t.machine [ (addr, block) ]

let bulk_load t data =
  if t.size > 0 then invalid_arg "Basic_dict.bulk_load: dictionary not empty";
  let seen = Hashtbl.create (Array.length data) in
  Array.iter
    (fun (k, _) ->
      if Hashtbl.mem seen k then
        invalid_arg "Basic_dict.bulk_load: duplicate key";
      Hashtbl.add seen k ())
    data;
  if Array.length data > t.cfg.capacity then
    invalid_arg "Basic_dict.bulk_load: over capacity";
  (* Greedy placement in memory, mirroring insert's choice exactly. *)
  let v = t.cfg.degree * t.cfg.buckets_per_stripe in
  let loads = Array.make v 0 in
  let cap = slots_per_bucket t in
  let images : (Pdm.addr, int option array) Hashtbl.t = Hashtbl.create 64 in
  let image_of addr =
    match Hashtbl.find_opt images addr with
    | Some b -> b
    | None ->
      let b = Array.make (Pdm.block_size t.machine) None in
      Hashtbl.add images addr b;
      b
  in
  Array.iter
    (fun (key, value) ->
      let record = record_of t key value in
      let nbrs = Bipartite.neighbors t.graph key in
      let best = ref nbrs.(0) in
      Array.iter (fun b -> if loads.(b) < loads.(!best) then best := b) nbrs;
      if loads.(!best) >= cap then raise (Overflow key);
      let slot = loads.(!best) in
      loads.(!best) <- slot + 1;
      (* Slot -> (block within bucket, slot within block). *)
      let stripe, local = Bipartite.stripe_of t.graph !best in
      let block_in_bucket = slot / t.slots_per_block in
      let addr =
        { Pdm.disk = t.disk_offset + stripe;
          block =
            t.block_offset + (local * t.cfg.bucket_blocks) + block_in_bucket }
      in
      Codec.Slots.write (image_of addr) ~width:t.width
        (slot mod t.slots_per_block)
        (Some record);
      t.size <- t.size + 1)
    data;
  let blocks = Hashtbl.fold (fun a b acc -> (a, b) :: acc) images [] in
  if blocks <> [] then Pdm.write t.machine blocks

let tombstones t = t.tombstones

(* Tombstone sentinel: the universe size is never a legal key. *)
let tombstone_record t =
  let r = Array.make t.width 0 in
  r.(0) <- t.cfg.universe;
  r

(* pdm-lint: domain local — staged block edits on per-operation scratch copies *)
let prepare_delete t key blocks =
  let rec over_buckets i =
    if i >= t.cfg.degree then None
    else begin
      let stripe, local = bucket_of_key t key i in
      let image = bucket_image blocks t ~stripe ~local in
      match find_slot_in_bucket t image key with
      | Some (addr, block, s) ->
        if t.cfg.tombstone then begin
          Codec.Slots.write block ~width:t.width s (Some (tombstone_record t));
          t.tombstones <- t.tombstones + 1
        end
        else Codec.Slots.write block ~width:t.width s None;
        t.size <- t.size - 1;
        Some (addr, block)
      | None -> over_buckets (i + 1)
    end
  in
  over_buckets 0

let delete t key =
  match prepare_delete t key (fetch t key) with
  | Some (addr, block) ->
    Pdm.write t.machine [ (addr, block) ];
    true
  | None -> false

let records_of_blocks t blocks =
  List.concat_map
    (fun (_, block) ->
      let out = ref [] in
      let n = Codec.Slots.per_block ~block_words:(Array.length block) ~width:t.width in
      for s = n - 1 downto 0 do
        match Codec.Slots.read block ~width:t.width s with
        | Some record when record.(0) <> t.cfg.universe ->
          out := (record.(0), value_of_record t record) :: !out
        | Some _ | None -> ()
      done;
      !out)
    blocks

let bucket_count t = t.cfg.degree * t.cfg.buckets_per_stripe

let global_bucket_addrs t g =
  let stripe = g / t.cfg.buckets_per_stripe in
  let local = g mod t.cfg.buckets_per_stripe in
  bucket_addrs t ~stripe ~local

let read_bucket_entries t g =
  if g < 0 || g >= bucket_count t then
    invalid_arg "Basic_dict.read_bucket_entries: bucket out of range";
  let addrs = global_bucket_addrs t g in
  records_of_blocks t (Pdm.read t.machine addrs)

let drain_bucket t g =
  if g < 0 || g >= bucket_count t then
    invalid_arg "Basic_dict.drain_bucket: bucket out of range";
  let addrs = global_bucket_addrs t g in
  let blocks = Pdm.read t.machine addrs in
  (* Draining physically empties the bucket, releasing tombstones. *)
  let dead = ref 0 in
  List.iter
    (fun (_, block) ->
      let slots = Codec.Slots.per_block ~block_words:(Array.length block) ~width:t.width in
      for s = 0 to slots - 1 do
        match Codec.Slots.read block ~width:t.width s with
        | Some r when r.(0) = t.cfg.universe -> incr dead
        | Some _ | None -> ()
      done)
    blocks;
  let records = records_of_blocks t blocks in
  if records <> [] || !dead > 0 then begin
    let empty = Array.make (Pdm.block_size t.machine) None in
    Pdm.write t.machine (List.map (fun a -> (a, Array.copy empty)) addrs);
    t.size <- t.size - List.length records;
    t.tombstones <- t.tombstones - !dead
  end;
  records

let entries t =
  let out = ref [] in
  for g = bucket_count t - 1 downto 0 do
    let blocks =
      List.map (fun a -> (a, Pdm.peek t.machine a)) (global_bucket_addrs t g)
    in
    out := records_of_blocks t blocks @ !out
  done;
  !out

let clear t =
  let empty = Array.make (Pdm.block_size t.machine) None in
  for g = 0 to bucket_count t - 1 do
    List.iter (fun a -> Pdm.poke t.machine a empty) (global_bucket_addrs t g)
  done;
  t.size <- 0;
  t.tombstones <- 0

let bucket_loads t =
  Array.init
    (t.cfg.degree * t.cfg.buckets_per_stripe)
    (fun g ->
      let stripe = g / t.cfg.buckets_per_stripe in
      let local = g mod t.cfg.buckets_per_stripe in
      List.fold_left
        (fun acc a -> acc + Codec.Slots.count (Pdm.peek t.machine a) ~width:t.width)
        0
        (bucket_addrs t ~stripe ~local))

let max_load t = Array.fold_left max 0 (bucket_loads t)
