(** An exploration of the Section 6 open problem: full bandwidth,
    worst-case 1-I/O lookups {e and} efficient updates.

    Section 6 asks whether full bandwidth can be achieved with lookup
    in one I/O while supporting efficient updates, and sketches
    applying the load-balancing scheme recursively. This module
    demonstrates that the answer is {b yes, if one extends parallelism
    once more} (the paper's own central trade): take the Section 4.3
    cascade but place every level on its {e own} group of d disks.
    All l levels and the membership dictionary are then read in a
    single parallel round, so

    - every lookup — hit, miss, any level — costs exactly 1 I/O;
    - every insertion costs exactly 2 I/Os (the same combined read,
      then one combined write of the claimed fields + membership);
    - bandwidth is the cascade's Θ(BD_group);

    at the price of (l+1)·d disks and l× the field-array space — a
    concrete data point for the randomness/parallelism trade-off the
    paper proposes, measured in experiment E5's extension. *)

type config = {
  universe : int;
  capacity : int;
  degree : int;        (** d per level group *)
  sigma_bits : int;
  levels : int;        (** l ≥ 1; disks used = (l+1)·d *)
  v_factor : int;
  seed : int;
}

type t

exception Overflow of int

val create :
  ?journaled:bool -> ?replicas:int -> ?spares:int ->
  ?factory:int Pdm_sim.Backend.factory ->
  block_words:int -> config -> t
(** [journaled] (default false) reserves a write-ahead journal region
    ({!Pdm_sim.Journal}) on the machine and routes every multi-block
    update through it, making updates atomic across crashes at the
    cost of the journal's extra write rounds. [replicas] and [spares]
    (defaults 1 and 0) are forwarded to the machine so a batched
    scheduler can spread reads over replica disks. [factory] selects
    non-default storage for the machine (see {!Pdm_sim.Pdm.create}). *)

val config : t -> config

val machine : t -> int Pdm_sim.Pdm.t

val disks : t -> int

val size : t -> int

val find : t -> int -> Bytes.t option
(** Exactly 1 parallel I/O, worst case. *)

val probe_addresses : t -> int -> Pdm_sim.Pdm.addr list
(** The blocks {!find} fetches in its single parallel I/O (membership
    buckets + every level's candidate blocks). For batched schedulers
    that fetch themselves and decode with {!find_in}. *)

val find_in :
  t -> int -> (Pdm_sim.Pdm.addr * int option array) list -> Bytes.t option
(** Decode a lookup from blocks already fetched (a superset of
    {!probe_addresses} is fine — extra blocks are ignored). *)

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit
(** Exactly 2 parallel I/Os (1 read + 1 write), worst case. *)

val delete : t -> int -> bool
(** Exactly 2 parallel I/Os when present (1 when absent): the combined
    read, then one combined write clearing the fields and the
    membership entry. *)

val level_of : t -> int -> int option
(** Uncounted diagnostic. *)

val journaled : t -> bool

val set_crash : t -> Pdm_sim.Journal.crash_point option -> unit
(** Arm (or disarm) a crash injection for the next journaled update:
    it will raise {!Pdm_sim.Journal.Crashed} at the given point.
    [Invalid_argument] on a non-journaled dictionary. *)

val recover : t -> [ `Clean | `Discarded | `Replayed of int ]
(** Crash recovery: run {!Pdm_sim.Journal.recover} on the journal
    region, then rebuild the membership handle from disk so the size
    counters match what actually survived. A no-op [`Clean] on a
    non-journaled dictionary. *)
