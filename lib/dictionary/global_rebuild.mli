(** Global rebuilding (Section 4 preamble): a fully dynamic dictionary
    without a fixed capacity, from capacity-bounded instances.

    The capacity-bounded basic dictionary (Section 4.1) is wrapped in
    the standard worst-case global rebuilding technique of Overmars
    and van Leeuwen, with the paper's parallel-disk twists:

    - {b two structures active at any time}, on disjoint disk groups
      of one machine, so a lookup queries both in a single combined
      parallel I/O;
    - when the active instance passes half its capacity, a shadow of
      twice the capacity starts on the other group, and every
      subsequent update migrates a bounded number of entries
      ([transfer_per_op]), so no operation ever stalls on a full
      rebuild — worst-case O(1) I/Os per operation;
    - when occupancy falls below 1/8 of capacity, a half-size shadow
      starts instead, reclaiming space after deletion waves (the
      1/8-vs-1/2 hysteresis prevents grow/shrink thrashing);
    - inserts go to the shadow while it exists (fresh data wins);
      deletes are applied to both. *)

type config = {
  universe : int;
  degree : int;            (** d; each instance uses d disks *)
  value_bytes : int;
  block_words : int;
  initial_capacity : int;
  max_capacity : int;      (** disk space is provisioned for this *)
  transfer_per_op : int;   (** entries migrated per update (≥ 1) *)
  seed : int;
}

type t

val create : config -> t

val machine : t -> int Pdm_sim.Pdm.t

val config : t -> config

val size : t -> int

val capacity : t -> int
(** Current active instance's capacity bound. *)

val rebuilds : t -> int
(** Completed hand-overs so far. *)

val rebuilding : t -> bool

val find : t -> int -> Bytes.t option
(** One parallel I/O, rebuild in progress or not. *)

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit
(** O(1) worst-case I/Os: the operation itself plus at most
    [transfer_per_op] migrated entries. Raises [Invalid_argument] once
    the structure would outgrow [max_capacity]. *)

val delete : t -> int -> bool
