(** The dynamic dictionary of Section 4.3 (Theorem 7): full bandwidth
    with 1 + ɛ average-cost lookups.

    The static retrieval structure of Section 4.2(a) is dynamized by
    keeping l = ⌈log N / log(1/(6ε))⌉ field arrays A₁ ⊃ A₂ ⊃ … of
    geometrically decreasing size ((6ε)^{i-1}·v₁ fields), each indexed
    by its own striped expander over the same universe. Insertion is
    first-fit: the key claims ⌊2d/3⌋ currently-empty fields among its
    neighbors in the first array that offers them. Lemma 5 guarantees
    the fraction of keys forced past level i decays like (6ε)^i, so:

    - an unsuccessful search costs exactly 1 parallel I/O (the
      membership dictionary answers in the same round as A₁);
    - a successful search costs 1 I/O for level-1 keys and 2 I/Os
      otherwise — at most 1 + ɛ on average over the stored set;
    - an insertion costs i read rounds (its landing level) plus one
      combined write round — at most 2 + ɛ on average;
    - the worst case is l + 1 = O(log N) I/Os, never linear.

    The membership dictionary (Section 4.1, on d additional disks)
    stores each key's level and head pointer, so every operation's
    first read round covers membership + A₁ together on 2d disks.

    ε is derived from the requested ɛ as the largest value with
    6ε < 1/(1 + 1/ɛ) (and ≤ 1/12), as in the theorem's proof. *)

type config = {
  universe : int;
  capacity : int;        (** N *)
  degree : int;          (** d > 6(1 + 1/ɛ) per Theorem 7 *)
  sigma_bits : int;
  epsilon : float;       (** ɛ: the performance parameter *)
  v_factor : int;        (** v₁ = v_factor · N · d *)
  seed : int;
}

type t

exception Overflow of int
(** No level could offer ⌊2d/3⌋ empty fields — the capacity/expansion
    assumptions are violated. *)

val create :
  ?journaled:bool -> ?replicas:int -> ?spares:int ->
  ?factory:int Pdm_sim.Backend.factory ->
  block_words:int -> config -> t
(** Builds the machine (2d disks) and all levels. [journaled]
    (default false) reserves a write-ahead journal region
    ({!Pdm_sim.Journal}) on the machine and routes every multi-block
    update through it, making updates atomic across crashes at the
    cost of the journal's extra write rounds. [replicas] and [spares]
    (defaults 1 and 0) are forwarded to the machine so a batched
    scheduler can spread reads over replica disks. [factory] selects
    non-default storage for the machine (see {!Pdm_sim.Pdm.create}). *)

val config : t -> config

val machine : t -> int Pdm_sim.Pdm.t

val levels : t -> int
(** l: number of field arrays. *)

val level_fields : t -> int array
(** Fields per level (v₁, v₂, …). *)

val size : t -> int

val level_of : t -> int -> int option
(** Uncounted diagnostic: which level holds a key (1-based). *)

val find : t -> int -> Bytes.t option
(** 1 I/O when absent or stored at level 1; 2 I/Os otherwise. *)

(** {2 Two-phase lookup pieces}

    For schedulers that fetch blocks themselves (the batched query
    engine): fetch {!first_round_addresses}, decode the membership
    answer with {!membership_in}; a hit at level 1 resolves from the
    same blocks via {!decode_in}, deeper levels need one more fetch of
    {!level_addresses} first. *)

val first_round_addresses : t -> int -> Pdm_sim.Pdm.addr list
(** Membership buckets + A₁ candidate blocks (what {!find}'s first
    round reads). *)

val membership_in :
  t -> int -> (Pdm_sim.Pdm.addr * int option array) list ->
  (int * int) option
(** [(level, head)] when present; extra blocks are ignored. *)

val level_addresses : t -> int -> level:int -> Pdm_sim.Pdm.addr list
(** Candidate blocks of A{_level} for the key (1-based level). *)

val decode_in :
  t -> int -> level:int -> head:int ->
  (Pdm_sim.Pdm.addr * int option array) list -> Bytes.t option
(** Reconstruct the record from fetched blocks covering
    {!level_addresses} (level 1: {!first_round_addresses}). *)

val mem : t -> int -> bool
(** Always 1 I/O (membership only... also fetches A₁ in the same
    round, which is free). *)

val insert : t -> int -> Bytes.t -> unit
(** First-fit insertion; updates rewrite the key's existing fields in
    place at its current level. *)

val delete : t -> int -> bool
(** Remove a key: its fields become empty (reusable by first-fit) and
    the membership entry is dropped — one combined write round after
    the usual reads (2 I/Os total for level-1 keys, 3 otherwise). *)

val space_bits : t -> int
(** Total bits across all field arrays plus the membership blocks. *)

val journaled : t -> bool

val set_crash : t -> Pdm_sim.Journal.crash_point option -> unit
(** Arm (or disarm) a crash injection for the next journaled update:
    it will raise {!Pdm_sim.Journal.Crashed} at the given point.
    [Invalid_argument] on a non-journaled dictionary. *)

val recover : t -> [ `Clean | `Discarded | `Replayed of int ]
(** Crash recovery: run {!Pdm_sim.Journal.recover} on the journal
    region, then rebuild the membership handle from disk so the size
    counters match what actually survived. A no-op [`Clean] on a
    non-journaled dictionary. *)
