(** A dictionary for the parallel disk {e head} model (end of §5).

    Explicit expander constructions — including the Section 5
    telescope product — are not striped, so using them in the parallel
    disk model costs a factor d in space (one copy of the right side
    per stripe). The paper notes the alternative: in the parallel disk
    head model (one disk, D independent heads; Aggarwal–Vitter) the
    striped property is unnecessary, because any d blocks can be
    fetched in ⌈d/D⌉ rounds wherever they live.

    This dictionary is the Section 4.1 scheme over an {e arbitrary}
    (possibly unstriped) expander on a [Parallel_heads] machine:
    buckets are laid out row-major over the disks, lookups read the d
    neighbor buckets in ⌈d/D⌉ rounds (1 when D ≥ d), and no right-side
    copies are needed. Combined with {!Pdm_expander.Semi_explicit},
    this realises the paper's "semi-explicit expanders suffice in the
    disk head model without the factor-d space penalty". *)

type t

exception Overflow of int

val create :
  machine:int Pdm_sim.Pdm.t ->
  graph:Pdm_expander.Bipartite.t ->
  capacity:int ->
  value_bytes:int ->
  t
(** The machine must use the [Parallel_heads] model and have at least
    ⌈v / blocks_per_disk⌉ disks... precisely: bucket j lives at disk
    j mod D, block j / D; the machine must fit all v buckets. The
    graph may be striped or not. *)

val config_capacity : t -> int

val size : t -> int

val rounds_per_lookup : t -> int
(** ⌈d / D⌉: the guaranteed lookup cost. *)

val find : t -> int -> Bytes.t option

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit

val delete : t -> int -> bool

val max_load : t -> int
