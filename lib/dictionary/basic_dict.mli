(** The basic expander dictionary (Section 4.1, k = 1).

    An array of v buckets is split across d = D disks according to the
    stripes of a striped expander graph; key x may live in any of the
    d buckets Γ(x), one per disk. Insertion runs the deterministic
    load-balancing scheme of Section 3 with k = 1: the key (with its
    inline satellite data) goes to a currently least-loaded neighbor
    bucket. By Lemma 3 the maximum load stays within a constant factor
    of the average, so with v = O(N/B) chosen suitably every bucket
    fits its blocks and:

    - lookups read the d buckets Γ(x) — one block per disk — in
      exactly [bucket_blocks] parallel I/Os (1 when a bucket is one
      block);
    - insertions and deletions add one write round.

    Several dictionaries can share one machine at different disk and
    block offsets; {!addresses} and {!find_in} let a composite
    structure (Sections 4.2a, 4.3, global rebuilding) fetch many
    sub-dictionaries' blocks in a single combined parallel I/O. *)

type config = {
  universe : int;          (** size u of the key universe *)
  capacity : int;          (** N: maximum number of keys *)
  degree : int;            (** d: expander degree = disks used *)
  buckets_per_stripe : int;(** w: v = d·w buckets in total *)
  value_bytes : int;       (** inline satellite bytes per key *)
  bucket_blocks : int;     (** blocks per bucket *)
  tombstone : bool;        (** mark deletions instead of freeing slots *)
  seed : int;              (** expander seed *)
}

type t

exception Overflow of int
(** Raised by {!insert} when every bucket of Γ(x) is full — i.e. the
    chosen parameters violate the expansion assumption behind
    Lemma 3. The payload is the offending key. *)

val plan :
  ?load_slack:float ->
  ?bucket_blocks:int ->
  ?tombstone:bool ->
  universe:int ->
  capacity:int ->
  block_words:int ->
  degree:int ->
  value_bytes:int ->
  seed:int ->
  unit ->
  config
(** Compute a configuration whose buckets ([bucket_blocks] blocks
    each, default 1) are sized so that Lemma 3's bound times
    [load_slack] (default 1.25) fits the per-bucket slot count; v is
    the smallest multiple of [degree] that achieves this. Multi-block
    buckets serve the small-B regime: operations then cost
    [bucket_blocks] read rounds — still O(1). *)

val create :
  machine:int Pdm_sim.Pdm.t -> disk_offset:int -> block_offset:int ->
  config -> t
(** The dictionary occupies disks [disk_offset, disk_offset+degree)
    and blocks [block_offset, block_offset + blocks_per_disk config)
    of each. *)

val recover :
  machine:int Pdm_sim.Pdm.t -> disk_offset:int -> block_offset:int ->
  config -> t
(** Rebuild a handle over existing disk contents — the Section 1.1
    claim that there is "no notion of an index structure or central
    directory": everything needed at run time is the configuration
    (universe, sizes, seed). The recovery scan reads every block once
    (⌈blocks_per_disk⌉ parallel I/Os) to recount live records and
    tombstones. *)

val blocks_per_disk : config -> int
(** buckets_per_stripe × bucket_blocks. *)

val config : t -> config

val graph : t -> Pdm_expander.Bipartite.t

val machine : t -> int Pdm_sim.Pdm.t

val size : t -> int

val record_width : t -> int
(** Words per record: 1 (key) + ⌈value bits / 32⌉. *)

val slots_per_bucket : t -> int

val addresses : t -> int -> Pdm_sim.Pdm.addr list
(** The blocks a lookup of [key] must read (d × bucket_blocks
    addresses, one bucket per disk). *)

val find_in :
  t -> int -> (Pdm_sim.Pdm.addr * int option array) list -> Bytes.t option
(** Decode a lookup from blocks already fetched (a superset of
    {!addresses} is fine — extra blocks are ignored). *)

val find : t -> int -> Bytes.t option
(** [find t key] = fetch + decode; [bucket_blocks] parallel I/Os. *)

val mem : t -> int -> bool

val prepare_insert :
  t -> int -> Bytes.t -> (Pdm_sim.Pdm.addr * int option array) list ->
  Pdm_sim.Pdm.addr * int option array
(** Place (or update) the key inside already-fetched block images and
    return the one modified block. The caller {b must} write that
    block — composite structures include it in a combined write round
    so a membership update shares the round with their own writes.
    Size accounting happens here, so do not drop the result. *)

val bulk_load : t -> (int * Bytes.t) array -> unit
(** Load many records into an {e empty} dictionary at construction
    cost instead of 2 I/Os each: greedy placement is computed in
    internal memory (in array order — the layout matches inserting the
    same sequence one by one), then every touched block is written in
    ⌈blocks/d⌉ parallel write rounds. Raises [Invalid_argument] if the
    dictionary is non-empty or keys repeat, {!Overflow} if placement
    fails. *)

val insert : t -> int -> Bytes.t -> unit
(** Insert, or update in place when the key is present. Worst case
    [bucket_blocks] read rounds + 1 write round. Raises {!Overflow}
    when the load balancing guarantee is violated, and
    [Invalid_argument] when the value exceeds [value_bytes] or the
    dictionary is at capacity. *)

val prepare_delete :
  t -> int -> (Pdm_sim.Pdm.addr * int option array) list ->
  (Pdm_sim.Pdm.addr * int option array) option
(** Remove the key from already-fetched block images, returning the
    modified block (the caller {b must} write it) or [None] when
    absent. Honors tombstone mode; size accounting happens here. *)

val delete : t -> int -> bool
(** Remove a key; reports whether it was present. In the default mode
    the slot is freed for reuse. With [tombstone = true] the slot is
    only marked (the paper's alternative that preserves the
    never-move-data property: no record ever changes blocks, at the
    cost of not reclaiming space until a rebuild); tombstones count
    against bucket capacity but never match a lookup. *)

val tombstones : t -> int
(** Marked-deleted slots currently held (0 in reuse mode). *)

val entries : t -> (int * Bytes.t) list
(** Uncounted diagnostic: all (key, value) pairs, bucket order. *)

val read_bucket_entries : t -> int -> (int * Bytes.t) list
(** [read_bucket_entries t g] reads bucket [g] (stripe-major global
    index), counting its block reads, and returns its records — the
    building block of the global-rebuilding transfer cursor. *)

val drain_bucket : t -> int -> (int * Bytes.t) list
(** Like {!read_bucket_entries}, but also empties the bucket (one
    write round) and adjusts the size: the returned records now live
    only with the caller. *)

val bucket_count : t -> int
(** degree × buckets_per_stripe. *)

val clear : t -> unit
(** Uncounted deallocation: empty every bucket and reset the size, as
    when a retired instance's disks are handed back. *)

val bucket_loads : t -> int array
(** Uncounted diagnostic: current load of every bucket (stripe-major
    order), read via [peek]. *)

val max_load : t -> int
(** Uncounted diagnostic: maximum bucket load. *)
