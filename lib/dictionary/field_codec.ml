module Bitbuf = Pdm_util.Bitbuf
module Imath = Pdm_util.Imath

type encoded = (int * Bytes.t) list

let field_bytes field_bits = Imath.cdiv field_bits 8

(* Pad a writer's content out to exactly field_bits and return it. *)
(* pdm-lint: domain local — field codec mutates per-call encode buffers *)
let finish_field ~field_bits w =
  if Bitbuf.Writer.length_bits w > field_bits then
    invalid_arg "Field_codec: content exceeds field size";
  let out = Bytes.make (field_bytes field_bits) '\000' in
  let src = Bitbuf.Writer.contents w in
  Bytes.blit src 0 out 0 (Bytes.length src);
  out

let copy_bits ~from ~into ~count =
  for _ = 1 to count do
    Bitbuf.Writer.add_bit into (Bitbuf.Reader.read_bit from)
  done

let satellite_reader satellite sigma_bits =
  if 8 * Bytes.length satellite < sigma_bits then
    invalid_arg "Field_codec: satellite shorter than sigma_bits";
  Bitbuf.Reader.of_bytes satellite

let encode_b ~field_bits ~id_bits ~id ~satellite ~sigma_bits ~indices =
  if id_bits < 1 || id_bits >= field_bits then
    invalid_arg "Field_codec.encode_b: id_bits";
  if id < 0 || (id_bits < 62 && id lsr id_bits <> 0) then
    invalid_arg "Field_codec.encode_b: id does not fit";
  let m = List.length indices in
  let chunk_bits = field_bits - id_bits in
  if m * chunk_bits < sigma_bits then
    invalid_arg "Field_codec.encode_b: fields cannot hold sigma bits";
  let data = satellite_reader satellite sigma_bits in
  List.mapi
    (fun f idx ->
      let w = Bitbuf.Writer.create () in
      Bitbuf.Writer.add_bits w ~value:id ~width:id_bits;
      let remaining = sigma_bits - (f * chunk_bits) in
      copy_bits ~from:data ~into:w ~count:(Imath.clamp ~lo:0 ~hi:chunk_bits remaining);
      (idx, finish_field ~field_bits w))
    indices

let decode_b ~field_bits ~id_bits ~sigma_bits ~d get =
  let counts = Hashtbl.create d in
  for i = 0 to d - 1 do
    match get i with
    | None -> ()
    | Some bytes ->
      let r = Bitbuf.Reader.of_bytes bytes in
      let id = Bitbuf.Reader.read_bits r ~width:id_bits in
      Hashtbl.replace counts id
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts id))
  done;
  let majority =
    Hashtbl.fold
      (fun id c acc -> if 2 * c > d then Some id else acc)
      counts None
  in
  match majority with
  | None -> None
  | Some id ->
    let out = Bitbuf.Writer.create () in
    let chunk_bits = field_bits - id_bits in
    for i = 0 to d - 1 do
      match get i with
      | None -> ()
      | Some bytes ->
        if Bitbuf.Writer.length_bits out < sigma_bits then begin
          let r = Bitbuf.Reader.of_bytes bytes in
          if Bitbuf.Reader.read_bits r ~width:id_bits = id then begin
            let want =
              min chunk_bits (sigma_bits - Bitbuf.Writer.length_bits out)
            in
            copy_bits ~from:r ~into:out ~count:want
          end
        end
    done;
    if Bitbuf.Writer.length_bits out < sigma_bits then None
    else begin
      let bytes = Bytes.make (Imath.cdiv sigma_bits 8) '\000' in
      let src = Bitbuf.Writer.contents out in
      Bytes.blit src 0 bytes 0 (Bytes.length bytes);
      Some (id, bytes)
    end

let check_increasing indices =
  let rec loop = function
    | a :: (b :: _ as rest) ->
      if a >= b then invalid_arg "Field_codec: indices must increase";
      loop rest
    | [ _ ] | [] -> ()
  in
  if indices = [] then invalid_arg "Field_codec: no indices";
  loop indices

let pointer_bits ~indices =
  (* Each non-tail field spends delta+1 bits; the tail spends 1. *)
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (acc + (b - a) + 1) rest
    | [ _ ] -> acc + 1
    | [] -> acc
  in
  loop 0 indices

let a_capacity_bits ~field_bits ~indices =
  (List.length indices * field_bits) - pointer_bits ~indices

let encode_a ~field_bits ~indices ~satellite ~sigma_bits =
  check_increasing indices;
  if a_capacity_bits ~field_bits ~indices < sigma_bits then
    invalid_arg "Field_codec.encode_a: fields cannot hold sigma bits";
  let data = satellite_reader satellite sigma_bits in
  let consumed = ref 0 in
  let rec build = function
    | [] -> []
    | idx :: rest ->
      let w = Bitbuf.Writer.create () in
      (match rest with
       | next :: _ -> Bitbuf.Writer.add_unary w (next - idx)
       | [] -> Bitbuf.Writer.add_unary w 0);
      if Bitbuf.Writer.length_bits w > field_bits then
        invalid_arg
          "Field_codec.encode_a: unary pointer exceeds field size (satellite \
           too small for this degree)";
      let room = field_bits - Bitbuf.Writer.length_bits w in
      let want = Imath.clamp ~lo:0 ~hi:room (sigma_bits - !consumed) in
      copy_bits ~from:data ~into:w ~count:want;
      consumed := !consumed + want;
      (idx, finish_field ~field_bits w) :: build rest
  in
  let fields = build indices in
  assert (!consumed = sigma_bits);
  fields

let indices_a ~field_bits ~head get =
  ignore field_bits;
  let rec follow idx acc guard =
    if guard < 0 then None
    else
      match get idx with
      | None -> None
      | Some bytes ->
        let r = Bitbuf.Reader.of_bytes bytes in
        let delta = Bitbuf.Reader.read_unary r in
        if delta = 0 then Some (List.rev (idx :: acc))
        else follow (idx + delta) (idx :: acc) (guard - 1)
  in
  follow head [] 4096

(* pdm-lint: domain local — field codec mutates per-call decode buffers *)
let decode_a ~field_bits ~head ~sigma_bits get =
  let out = Bitbuf.Writer.create () in
  let rec follow idx guard =
    if guard < 0 then None
    else
      match get idx with
      | None -> None
      | Some bytes ->
        let r = Bitbuf.Reader.of_bytes bytes in
        let delta = Bitbuf.Reader.read_unary r in
        let room = field_bits - Bitbuf.Reader.pos r in
        let want =
          Imath.clamp ~lo:0 ~hi:room (sigma_bits - Bitbuf.Writer.length_bits out)
        in
        copy_bits ~from:r ~into:out ~count:want;
        if delta = 0 then
          if Bitbuf.Writer.length_bits out >= sigma_bits then begin
            let bytes = Bytes.make (Imath.cdiv sigma_bits 8) '\000' in
            let src = Bitbuf.Writer.contents out in
            Bytes.blit src 0 bytes 0 (Bytes.length bytes);
            Some bytes
          end
          else None
        else follow (idx + delta) (guard - 1)
  in
  (* The list has at most one entry per candidate field; 4096 bounds
     any realistic degree and keeps a corrupt pointer chain finite. *)
  follow head 4096
