(** The almost-optimal static dictionary of Section 4.2 (Theorem 6).

    n keys with σ bits of satellite data each are stored in an array A
    of v = O(nd) fields so that a lookup fetches the d candidate
    fields A[Γ(x)] — one block per disk — in {b one parallel I/O} and
    reconstructs the record from the ⌈2d/3⌉... (here ⌊2d/3⌋) fields
    assigned to the key.

    Construction peels the key set by unique neighbors: by Lemma 5
    (with λ = 1/3 and ε ≤ 1/12), at least half the remaining keys own
    ≥ 2d/3 unique neighbor fields; those keys are assigned and the
    procedure recurses on the rest, geometrically. Each round is
    realised with external sorts of (neighbor, key) pairs as in the
    paper's "improving the construction" paragraph, so the measured
    construction cost can be compared against the cost of sorting nd
    records (experiment E4).

    Case (a) (B = Ω(log n)): two sub-dictionaries on 2d disks — a
    membership dictionary (Section 4.1) holding each key with its
    ⌈lg d⌉-bit head pointer, and a retrieval array with unary-pointer
    fields ({!Field_codec.encode_a}). Case (b): d disks, identifier
    fields ({!Field_codec.encode_b}). *)

type case = Case_a | Case_b

type config = {
  universe : int;
  capacity : int;     (** n *)
  degree : int;       (** d; must satisfy 2·⌊2d/3⌋ > d, i.e. d ≥ 5 *)
  sigma_bits : int;   (** satellite bits per key *)
  v_factor : int;     (** v = v_factor · capacity · degree (≥ 1) *)
  case : case;
  seed : int;
}

type report = {
  peel_rounds : int;          (** recursion depth of the assignment *)
  construction_ios : int;     (** parallel I/Os: scratch sorts + scans + fill *)
  sort_nd_ios : int;          (** measured cost of one extsort of nd pairs *)
  internal_memory_peak : int; (** words of construction-time internal memory *)
  field_bits : int;           (** size of one field of A *)
  space_bits : int;           (** total bits of A (+ membership, case a) *)
  disks : int;                (** d or 2d *)
}

type t

exception Construction_failure of int
(** Raised when a peeling round assigns no keys (the expander's ε is
    too large for these parameters); carries the number of keys left. *)

val build :
  ?construction:[ `Sorting | `Direct ] ->
  ?replicas:int ->
  ?spares:int ->
  ?factory:int Pdm_sim.Backend.factory ->
  block_words:int -> config -> (int * Bytes.t) array -> t
(** [build ~block_words cfg data] constructs the dictionary over its
    own machine. Keys must be distinct and in [0, universe); each
    satellite must supply at least ⌈sigma_bits/8⌉ bytes. [replicas]
    and [spares] (defaults 1 and 0) are forwarded to the machine:
    with [replicas = r] every block lives on r disks and a batched
    scheduler can serve lookups from whichever replica disk is least
    loaded ({!Pdm_sim.Pdm.read_preferring}).

    [`Sorting] (default) is the paper's "improved" construction: every
    peeling round runs external sorts of (neighbor, key) pairs, so
    internal memory stays at a few blocks. [`Direct] is the paper's
    first construction ("Construction in O(n) I/Os"): each round scans
    the remaining records once (counted) and resolves unique neighbors
    with in-memory tables — fewer I/Os, but Θ(|S_r|·d) words of
    internal memory per round. Both produce the same dictionary;
    experiment E4 compares their measured I/O. *)

val find : t -> int -> Bytes.t option
(** One parallel I/O, always. *)

val probe_addresses : t -> int -> Pdm_sim.Pdm.addr list
(** The blocks {!find} fetches in its single parallel I/O (candidate
    fields + membership buckets, one per disk). A batched scheduler
    fetches these itself — coalescing duplicates across concurrent
    lookups — and decodes with {!find_in}. *)

val find_in : t -> int -> (Pdm_sim.Pdm.addr * int option array) list -> Bytes.t option
(** Decode a lookup from blocks already fetched (a superset of
    {!probe_addresses} is fine — extra blocks are ignored). *)

val mem : t -> int -> bool

val machine : t -> int Pdm_sim.Pdm.t
(** The machine holding the structure (its stats count lookups). *)

val report : t -> report

val config : t -> config

val frag_count : config -> int
(** ⌊2d/3⌋: fields assigned per key. *)
