(** The small-block regime of Section 4.1 (B = o(log N)).

    When a block holds fewer than Θ(log N) records, a one-block bucket
    cannot absorb the load deviation of Lemma 3, and a flat
    multi-block bucket costs ⌈load/B⌉ read rounds. The paper's answer
    is an atomic heap inside each bucket — a word-RAM structure giving
    constant-time bucket operations. In I/O terms we realise the same
    constant-rounds guarantee with a second level of choices:

    - each bucket spans [sub_blocks] blocks on its disk;
    - a key has [probes] candidate sub-blocks per bucket (seeded
      hashes), so a lookup reads probes × d blocks — at most [probes]
      per disk — in exactly [probes] parallel rounds for {e any} B;
    - insertion runs greedy placement over all probes × d candidate
      sub-blocks (a (probes·d)-choice balancing scheme at sub-block
      granularity), keeping every sub-block within its slots.

    With [probes] = 2 (the default) this gives 2-round lookups and
    3-round updates at block sizes where the flat layout needs 4+
    rounds — experiment E6 shows the crossover. *)

type config = {
  universe : int;
  capacity : int;
  degree : int;
  buckets_per_stripe : int;
  sub_blocks : int;       (** blocks per bucket *)
  probes : int;           (** candidate sub-blocks per bucket *)
  value_bytes : int;
  seed : int;
}

type t

exception Overflow of int

val plan :
  ?avg_slack:float ->
  ?probes:int ->
  universe:int ->
  capacity:int ->
  block_words:int ->
  degree:int ->
  value_bytes:int ->
  seed:int ->
  unit ->
  config
(** Choose bucket and sub-block counts so each sub-block's expected
    load is its slot count divided by [avg_slack] (default 3.0 — the
    multi-choice scheme concentrates hard, and {!insert} still raises
    {!Overflow} if the assumption fails). *)

val create :
  machine:int Pdm_sim.Pdm.t -> disk_offset:int -> block_offset:int ->
  config -> t

val blocks_per_disk : config -> int

val config : t -> config

val size : t -> int

val slots_per_sub_block : t -> int

val find : t -> int -> Bytes.t option
(** [probes] parallel read rounds, worst case, for any B. *)

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit
(** [probes] read rounds + 1 write round. *)

val delete : t -> int -> bool

val max_sub_block_load : t -> int
(** Uncounted diagnostic. *)
