(** The array A of Section 4.2: v small fields packed into disk blocks.

    Stripe i of a striped expander indexes the fields stored on disk
    [disk_offset + i], so fetching the d candidate fields A[Γ(x)] of a
    key — one per disk — is a single parallel I/O even though each
    block holds many fields.

    A field is a fixed-size bit string ([field_bits] bits, stored as
    ⌈field_bits/32⌉ words); an empty field (the paper's "empty-field
    marker") is represented by its first word being unset. Writes are
    read-modify-write at block granularity, as on a real device; the
    batch operations below group fields by block so composite
    structures pay the minimal number of rounds.

    Fields larger than a block are spread across ⌈field_words/B⌉
    {e groups} of disks — the paper's "if the size of the satellite
    data is too large, more disks are needed to transfer the data in
    one probe... the number of disks should be a multiple of d". The
    store then uses d × groups disks, and every lookup is still one
    parallel round. *)

type t

val plan_groups : block_words:int -> field_bits:int -> int
(** Disk groups a field of this size needs: ⌈field words / B⌉. *)

val create :
  machine:int Pdm_sim.Pdm.t ->
  disk_offset:int ->
  block_offset:int ->
  graph:Pdm_expander.Bipartite.t ->
  field_bits:int ->
  t
(** The graph must be striped; its right side indexes the fields. The
    store occupies disks
    [disk_offset, disk_offset + d × plan_groups ...). *)

val graph : t -> Pdm_expander.Bipartite.t

val field_bits : t -> int

val field_words : t -> int

val fields_per_block : t -> int

val groups : t -> int
(** Disks (= blocks) per field. *)

val disk_span : t -> int
(** d × groups: total disks the store occupies. *)

val blocks_per_disk : t -> int
(** Blocks this store occupies on each of its d disks. *)

val total_bits : t -> int
(** v × field_bits: the space usage Theorem 6 accounts. *)

val addresses : t -> int -> Pdm_sim.Pdm.addr list
(** The d × groups blocks containing A[Γ(key)], one per disk. *)

val addr_of_field : t -> int -> Pdm_sim.Pdm.addr
(** First block of a given field (its occupancy marker). *)

val addrs_of_field : t -> int -> Pdm_sim.Pdm.addr list
(** All [groups] blocks of a field. *)

val field_in :
  t -> (Pdm_sim.Pdm.addr * int option array) list -> int -> Bytes.t option
(** Decode field [y] from fetched blocks ([None] = empty). Raises when
    the containing block is not among those supplied. *)

val read_fields : t -> int list -> (int * Bytes.t option) list
(** Fetch the given fields, reading each containing block once. *)

val prepare_updates :
  t ->
  images:(Pdm_sim.Pdm.addr * int option array) list ->
  (int * Bytes.t option) list ->
  (Pdm_sim.Pdm.addr * int option array) list
(** Apply field updates to already-fetched block images and return the
    touched blocks {b without writing them} — the caller folds them
    into a combined write round. *)

val write_fields_in :
  t ->
  images:(Pdm_sim.Pdm.addr * int option array) list ->
  (int * Bytes.t option) list ->
  unit
(** Update fields inside already-fetched block images and write the
    touched blocks back (one write request; rounds as scheduled by the
    machine). Use after a read of {!addresses} for read-modify-write
    costing 1 + 1 rounds. *)

val write_fields : t -> (int * Bytes.t option) list -> unit
(** Read-modify-write without pre-fetched images. *)

val bulk_write : t -> (int * Bytes.t) list -> unit
(** Construction-time fill: group all fields by block, then write every
    touched block in one request (≈ blocks/d parallel write rounds,
    plus one read round for partially-updated blocks). Fields must be
    distinct. *)

val count_occupied : t -> int
(** Uncounted diagnostic: occupied fields. *)
