module Pdm = Pdm_sim.Pdm
module Journal = Pdm_sim.Journal
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Imath = Pdm_util.Imath

type config = {
  universe : int;
  capacity : int;
  degree : int;
  sigma_bits : int;
  epsilon : float;
  v_factor : int;
  seed : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  mutable membership : Basic_dict.t;
  arrays : Field_store.t array;  (* A_1 .. A_l *)
  m : int;                       (* fields per key, 2d/3 *)
  field_bits : int;
  journal : Journal.t option;
  mutable crash : Journal.crash_point option;
  mutable size : int;
}

exception Overflow of int

let frag_count cfg = 2 * cfg.degree / 3

let field_bits_of cfg = Imath.cdiv cfg.sigma_bits (frag_count cfg) + 4

(* 6ε < 1/(1 + 1/ɛ), and ε <= 1/12 to keep the expanders in the regime
   Lemma 5 needs. *)
let shrink_ratio cfg = min 0.5 (0.95 /. (1.0 +. (1.0 /. cfg.epsilon)))

let level_count cfg =
  let r = shrink_ratio cfg in
  max 1
    (int_of_float
       (ceil (log (float_of_int (max 2 cfg.capacity)) /. log (1.0 /. r))))

let min_stripe = 16

let level_sizes cfg =
  let r = shrink_ratio cfg in
  let d = cfg.degree in
  let v1 = float_of_int (cfg.v_factor * cfg.capacity * d) in
  Array.init (level_count cfg) (fun i ->
      let v = v1 *. (r ** float_of_int i) in
      max (d * min_stripe) (Imath.round_up_to ~multiple:d (int_of_float v)))

let membership_value_bytes = 2 (* level byte, head-stripe byte *)

let validate cfg =
  if cfg.degree < 5 then invalid_arg "Dynamic_cascade: degree too small";
  if 2 * frag_count cfg <= cfg.degree then
    invalid_arg "Dynamic_cascade: 2 * (2d/3) must exceed d";
  if cfg.epsilon <= 0.0 then invalid_arg "Dynamic_cascade: epsilon > 0";
  if float_of_int cfg.degree <= 6.0 *. (1.0 +. (1.0 /. cfg.epsilon)) then
    invalid_arg "Dynamic_cascade: Theorem 7 needs d > 6(1 + 1/epsilon)";
  if cfg.degree > 255 then
    invalid_arg "Dynamic_cascade: head pointer is one byte";
  if level_count cfg > 255 then
    invalid_arg "Dynamic_cascade: level index is one byte";
  if cfg.v_factor < 2 then invalid_arg "Dynamic_cascade: v_factor >= 2"

(* Worst update batch under the journal: the membership bucket plus
   one block per claimed field. *)
let journal_capacity cfg ~block_words =
  let entries = 1 + frag_count cfg in
  Imath.cdiv (entries * (block_words + 2)) block_words

let create ?(journaled = false) ?(replicas = 1) ?(spares = 0) ?factory
    ~block_words cfg =
  validate cfg;
  let d = cfg.degree in
  let field_bits = field_bits_of cfg in
  let field_words = Codec.words_for_bits field_bits in
  let fields_per_block = block_words / field_words in
  if fields_per_block < 1 then
    invalid_arg "Dynamic_cascade: field exceeds block";
  let sizes = level_sizes cfg in
  let level_blocks =
    Array.map (fun v -> Imath.cdiv (v / d) fields_per_block) sizes
  in
  let fields_total_blocks = Array.fold_left ( + ) 0 level_blocks in
  let mem_cfg =
    Basic_dict.plan ~universe:cfg.universe ~capacity:cfg.capacity ~block_words
      ~degree:d ~value_bytes:membership_value_bytes ~seed:(cfg.seed + 1000) ()
  in
  let data_blocks =
    max fields_total_blocks (Basic_dict.blocks_per_disk mem_cfg)
  in
  let disks = 2 * d in
  let jcap = journal_capacity cfg ~block_words in
  let blocks_per_disk =
    if journaled then data_blocks + Journal.rows ~disks ~capacity_blocks:jcap
    else data_blocks
  in
  let machine =
    Pdm.create ?factory ~replicas ~spares ~disks ~block_size:block_words
      ~blocks_per_disk ()
  in
  let journal =
    if journaled then
      Some
        (Journal.create machine ~block_offset:data_blocks
           ~capacity_blocks:jcap)
    else None
  in
  let membership =
    Basic_dict.create ~machine ~disk_offset:d ~block_offset:0 mem_cfg
  in
  let offset = ref 0 in
  let arrays =
    Array.mapi
      (fun i v ->
        let graph = Seeded.striped ~seed:(cfg.seed + i) ~u:cfg.universe ~v ~d in
        let fs =
          Field_store.create ~machine ~disk_offset:0 ~block_offset:!offset
            ~graph ~field_bits
        in
        offset := !offset + level_blocks.(i);
        fs)
      sizes
  in
  { cfg; machine; membership; arrays; m = frag_count cfg; field_bits;
    journal; crash = None; size = 0 }

let config t = t.cfg
let machine t = t.machine
let levels t = Array.length t.arrays
let level_fields t = Array.map (fun fs -> Bipartite.v (Field_store.graph fs)) t.arrays
let size t = t.size
let journaled t = t.journal <> None

let set_crash t crash =
  if t.journal = None && crash <> None then
    invalid_arg "Dynamic_cascade.set_crash: dictionary is not journaled";
  t.crash <- crash

(* Every multi-block update flows through here: journaled
   dictionaries get the write-ahead protocol (and the injected crash
   point, if any), plain ones the direct combined write round. *)
let write_batch t blocks =
  match t.journal with
  | None -> Pdm.write t.machine blocks
  | Some j -> Journal.log_and_apply j ?crash:t.crash blocks

let recover t =
  match t.journal with
  | None -> `Clean
  | Some j ->
    t.crash <- None;
    let outcome =
      Journal.recover t.machine ~block_offset:(Journal.block_offset j)
        ~capacity_blocks:(Journal.capacity_blocks j)
    in
    (* In-memory counters may be torn even when the disk state is
       whole (a crash before the commit point still interrupted
       [prepare_insert]'s accounting): rebuild the membership handle
       from disk and trust it, whatever the journal said. *)
    let mc = Basic_dict.config t.membership in
    t.membership <-
      Basic_dict.recover ~machine:t.machine ~disk_offset:t.cfg.degree
        ~block_offset:0 mc;
    t.size <- Basic_dict.size t.membership;
    outcome

let decode_membership bytes =
  (Char.code (Bytes.get bytes 0), Char.code (Bytes.get bytes 1))

let encode_membership ~level ~head =
  let b = Bytes.make membership_value_bytes '\000' in
  Bytes.set b 0 (Char.chr level);
  Bytes.set b 1 (Char.chr head);
  b

(* The first read round: membership buckets + A_1 candidate blocks,
   on disjoint disk groups — one parallel I/O. *)
let first_round_addrs t key =
  Basic_dict.addresses t.membership key @ Field_store.addresses t.arrays.(0) key

let getter t level blocks key i =
  let fs = t.arrays.(level - 1) in
  Field_store.field_in fs blocks (Bipartite.neighbor (Field_store.graph fs) key i)

(* Two-phase lookup pieces for schedulers that fetch blocks
   themselves (the batched query engine): phase 1 fetches
   [first_round_addresses] and feeds them to [membership_in]; a [Some]
   at level > 1 needs a second fetch of [level_addresses] before
   [decode_in] can reconstruct the record. *)
let first_round_addresses = first_round_addrs

let membership_in t key blocks =
  Option.map decode_membership (Basic_dict.find_in t.membership key blocks)

let level_addresses t key ~level =
  if level < 1 || level > Array.length t.arrays then
    invalid_arg "Dynamic_cascade.level_addresses: level";
  Field_store.addresses t.arrays.(level - 1) key

let decode_in t key ~level ~head blocks =
  Field_codec.decode_a ~field_bits:t.field_bits ~head
    ~sigma_bits:t.cfg.sigma_bits (getter t level blocks key)

let find t key =
  let blocks = Pdm.read t.machine (first_round_addrs t key) in
  match membership_in t key blocks with
  | None -> None
  | Some (level, head) ->
    let blocks =
      if level = 1 then blocks
      else Pdm.read t.machine (Field_store.addresses t.arrays.(level - 1) key)
    in
    decode_in t key ~level ~head blocks

let mem t key =
  let blocks = Pdm.read t.machine (first_round_addrs t key) in
  Basic_dict.find_in t.membership key blocks <> None

let level_of t key =
  (* Uncounted diagnostic: peek the membership buckets. *)
  let addrs = Basic_dict.addresses t.membership key in
  let blocks = List.map (fun a -> (a, Pdm.peek t.machine a)) addrs in
  Option.map
    (fun v -> fst (decode_membership v))
    (Basic_dict.find_in t.membership key blocks)

(* Stripes of currently-empty candidate fields at a level, ascending. *)
let empty_stripes t level blocks key =
  let get = getter t level blocks key in
  List.filter (fun i -> get i = None) (List.init t.cfg.degree (fun i -> i))

let insert t key satellite =
  if 8 * Bytes.length satellite < t.cfg.sigma_bits then
    invalid_arg "Dynamic_cascade.insert: satellite shorter than sigma_bits";
  let round1 = Pdm.read t.machine (first_round_addrs t key) in
  match Basic_dict.find_in t.membership key round1 with
  | Some v ->
    (* Update in place: rewrite the key's existing fields. *)
    let level, head = decode_membership v in
    let fs = t.arrays.(level - 1) in
    let blocks =
      if level = 1 then round1 else Pdm.read t.machine (Field_store.addresses fs key)
    in
    (match
       Field_codec.indices_a ~field_bits:t.field_bits ~head
         (getter t level blocks key)
     with
     | None -> invalid_arg "Dynamic_cascade: corrupt pointer chain"
     | Some stripes ->
       let enc =
         Field_codec.encode_a ~field_bits:t.field_bits ~indices:stripes
           ~satellite ~sigma_bits:t.cfg.sigma_bits
       in
       let graph = Field_store.graph fs in
       let updates =
         List.map (fun (i, b) -> (Bipartite.neighbor graph key i, Some b)) enc
       in
       write_batch t (Field_store.prepare_updates fs ~images:blocks updates))
  | None ->
    if t.size >= t.cfg.capacity then
      invalid_arg "Dynamic_cascade.insert: at capacity";
    (* First-fit level search. *)
    let l = Array.length t.arrays in
    let rec place level blocks =
      let empties = empty_stripes t level blocks key in
      if List.length empties >= t.m then begin
        let stripes = List.filteri (fun i _ -> i < t.m) empties in
        let enc =
          Field_codec.encode_a ~field_bits:t.field_bits ~indices:stripes
            ~satellite ~sigma_bits:t.cfg.sigma_bits
        in
        let fs = t.arrays.(level - 1) in
        let graph = Field_store.graph fs in
        let updates =
          List.map (fun (i, b) -> (Bipartite.neighbor graph key i, Some b)) enc
        in
        let field_blocks = Field_store.prepare_updates fs ~images:blocks updates in
        let head =
          match stripes with
          | s :: _ -> s
          | [] ->
            invalid_arg "Dynamic_cascade: insert needs m >= 1 stripes"
        in
        let mem_block =
          Basic_dict.prepare_insert t.membership key
            (encode_membership ~level ~head)
            round1
        in
        (* One combined write round: field blocks (disks [0,d)) and the
           membership bucket (disks [d,2d)). *)
        write_batch t (mem_block :: field_blocks);
        t.size <- t.size + 1
      end
      else if level >= l then raise (Overflow key)
      else begin
        let next = level + 1 in
        let blocks =
          Pdm.read t.machine (Field_store.addresses t.arrays.(next - 1) key)
        in
        place next blocks
      end
    in
    place 1 round1

let delete t key =
  let round1 = Pdm.read t.machine (first_round_addrs t key) in
  match Basic_dict.find_in t.membership key round1 with
  | None -> false
  | Some v ->
    let level, head = decode_membership v in
    let fs = t.arrays.(level - 1) in
    let blocks =
      if level = 1 then round1
      else Pdm.read t.machine (Field_store.addresses fs key)
    in
    (match
       Field_codec.indices_a ~field_bits:t.field_bits ~head
         (getter t level blocks key)
     with
     | None -> invalid_arg "Dynamic_cascade: corrupt pointer chain"
     | Some stripes ->
       let graph = Field_store.graph fs in
       let updates =
         List.map (fun i -> (Bipartite.neighbor graph key i, None)) stripes
       in
       let field_blocks = Field_store.prepare_updates fs ~images:blocks updates in
       (match Basic_dict.prepare_delete t.membership key round1 with
        | None ->
          (* pdm-lint: allow R3 — unreachable: this branch runs only
             when the membership lookup just found the key in these
             same round-1 images, so [prepare_delete] must find it
             too. *)
          assert false
        | Some mem_block ->
          (* Fields live on disks [0, d), membership on [d, 2d): one
             combined write round. *)
          write_batch t (mem_block :: field_blocks);
          t.size <- t.size - 1;
          true))

let space_bits t =
  let fields =
    Array.fold_left (fun acc fs -> acc + Field_store.total_bits fs) 0 t.arrays
  in
  let mc = Basic_dict.config t.membership in
  fields
  + Basic_dict.blocks_per_disk mc * mc.Basic_dict.degree
    * Pdm.block_size t.machine * Codec.bits_per_word
