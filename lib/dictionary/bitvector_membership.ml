module Pdm = Pdm_sim.Pdm
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Prng = Pdm_util.Prng
module Imath = Pdm_util.Imath

type t = {
  machine : int Pdm.t;
  disk_offset : int;
  block_offset : int;
  graph : Bipartite.t;
  bits_per_block : int;
  mutable ones : int;
}

let bits_per_word = 32

let v_of ~degree ~v_factor ~n =
  Imath.round_up_to ~multiple:degree (max degree (v_factor * (max 1 n) * degree))

let blocks_per_disk_needed ~universe ~degree ~v_factor ~block_words ~n =
  ignore universe;
  let v = v_of ~degree ~v_factor ~n in
  Imath.cdiv (v / degree) (block_words * bits_per_word)

(* Bit y: stripe s = y / w lives on disk disk_offset + s; offset j
   within the stripe sits at block j / bits_per_block, word
   (j mod bits_per_block) / 32, bit j mod 32. *)
let locate t y =
  let stripe, j = Bipartite.stripe_of t.graph y in
  let addr =
    { Pdm.disk = t.disk_offset + stripe;
      block = t.block_offset + (j / t.bits_per_block) }
  in
  let within = j mod t.bits_per_block in
  (addr, within / bits_per_word, within mod bits_per_word)

let build ~machine ~disk_offset ~block_offset ~universe ~degree ~v_factor
    ~seed keys =
  if degree < 2 then invalid_arg "Bitvector_membership.build: degree";
  if v_factor < 1 then invalid_arg "Bitvector_membership.build: v_factor";
  let n = Array.length keys in
  let v = v_of ~degree ~v_factor ~n in
  let graph = Seeded.striped ~seed ~u:universe ~v ~d:degree in
  let block_words = Pdm.block_size machine in
  let bits_per_block = block_words * bits_per_word in
  let blocks = Imath.cdiv (v / degree) bits_per_block in
  if disk_offset < 0 || disk_offset + degree > Pdm.disks machine then
    invalid_arg "Bitvector_membership.build: disk range";
  if block_offset < 0 || block_offset + blocks > Pdm.blocks_per_disk machine
  then invalid_arg "Bitvector_membership.build: block range";
  let t =
    { machine; disk_offset; block_offset; graph; bits_per_block; ones = 0 }
  in
  (* Compute all blocks in memory, then write them in ⌈blocks/d⌉
     rounds (a bulk load). *)
  let images = Hashtbl.create 64 in
  let image_of addr =
    match Hashtbl.find_opt images addr with
    | Some b -> b
    | None ->
      let b = Array.make block_words (Some 0) in
      Hashtbl.add images addr b;
      b
  in
  Array.iter
    (fun x ->
      for i = 0 to degree - 1 do
        let addr, word, bit = locate t (Bipartite.neighbor graph x i) in
        let img = image_of addr in
        let cur = match img.(word) with Some w -> w | None -> 0 in
        if cur land (1 lsl bit) = 0 then begin
          img.(word) <- Some (cur lor (1 lsl bit));
          t.ones <- t.ones + 1
        end
      done)
    keys;
  let blocks = Hashtbl.fold (fun a b acc -> (a, b) :: acc) images [] in
  if blocks <> [] then Pdm.write machine blocks;
  t

let read_bit_in blocks t y =
  let addr, word, bit = locate t y in
  match List.assoc_opt addr blocks with
  | None -> invalid_arg "Bitvector_membership: block not fetched"
  | Some img ->
    let w = match img.(word) with Some w -> w | None -> 0 in
    w land (1 lsl bit) <> 0

let mem t key =
  let d = Bipartite.d t.graph in
  let addrs =
    List.init d (fun i ->
        let addr, _, _ = locate t (Bipartite.neighbor t.graph key i) in
        addr)
  in
  let blocks = Pdm.read t.machine addrs in
  let rec all i =
    i >= d
    || (read_bit_in blocks t (Bipartite.neighbor t.graph key i) && all (i + 1))
  in
  all 0

let space_bits t = Bipartite.v t.graph

let ones t = t.ones

let false_positive_rate t ~trials ~seed =
  if trials < 1 then invalid_arg "Bitvector_membership.false_positive_rate";
  let g = Prng.create seed in
  let u = Bipartite.u t.graph in
  let fp = ref 0 in
  for _ = 1 to trials do
    (* Uniform keys are non-members with overwhelming probability at
       the u >> n regime this structure targets; members only deflate
       the measured rate slightly. *)
    let x = Prng.int g u in
    let d = Bipartite.d t.graph in
    let all_set = ref true in
    for i = 0 to d - 1 do
      let addr, word, bit = locate t (Bipartite.neighbor t.graph x i) in
      let img = Pdm.peek t.machine addr in
      let w = match img.(word) with Some w -> w | None -> 0 in
      if w land (1 lsl bit) = 0 then all_set := false
    done;
    if !all_set then incr fp
  done;
  float_of_int !fp /. float_of_int trials
