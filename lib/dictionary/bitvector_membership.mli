(** One-probe static membership by bit vector (the [5] of the related
    work: Buhrman, Miltersen, Radhakrishnan, Venkatesh, "Are
    bitvectors optimal?").

    The paper credits [5] with the first expander-based static
    dictionary answering in one parallel I/O. The simplest variant of
    that idea stores only membership: a bit array of v = O(nd) bits,
    with bit y set iff y ∈ Γ(S). A query for x reads the d bits of
    Γ(x) — one block per disk, one parallel I/O — and answers yes iff
    {e all} of them are set.

    Guarantees: no false negatives ever; false positives only for x
    whose entire neighborhood happens to fall inside Γ(S), which
    expansion makes rare — the measured rate drops geometrically with
    the space factor (tested, and reported by {!false_positive_rate}).
    Compare with the exact structures of Section 4: this one needs
    only {e bits} (no identifiers or fragments) but answers
    approximately — the classic space/exactness trade the paper's
    Figure 1 sits on the other side of.

    Bits are packed 32 per word; stripe i lives on disk i. *)

type t

val build :
  machine:int Pdm_sim.Pdm.t ->
  disk_offset:int ->
  block_offset:int ->
  universe:int ->
  degree:int ->
  v_factor:int ->
  seed:int ->
  int array ->
  t
(** [build ... keys] sets the bits of Γ(keys) on a right side of
    v = v_factor × |keys| × degree bits (rounded up; at least one
    block row). The fill costs ⌈blocks/d⌉ write rounds. *)

val blocks_per_disk_needed :
  universe:int -> degree:int -> v_factor:int -> block_words:int -> n:int ->
  int

val mem : t -> int -> bool
(** One parallel I/O. *)

val space_bits : t -> int
(** v: the whole structure, in bits. *)

val ones : t -> int
(** Bits currently set (≤ d·n). *)

val false_positive_rate : t -> trials:int -> seed:int -> float
(** Measured on uniform non-member queries (uncounted; diagnostic). *)
