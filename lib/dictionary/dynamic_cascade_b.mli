(** The case (b) dynamization Theorem 7 alludes to ("a slightly weaker
    result is possible in the more general case as well").

    Without the B = Ω(log n) assumption there is no membership
    sub-dictionary; the cascade's levels use the identifier fields of
    Theorem 6(b) instead. A lookup probes A₁, A₂, … until some level's
    majority vote succeeds; insertion is the same first-fit as the
    case (a) cascade.

    The weakening, measured in experiment E12's companion test:

    - {e successful} searches still average 1 + ɛ I/Os (geometric
      level decay), worst case l;
    - {e unsuccessful} searches cost l I/Os — every level must fail
      its majority — instead of the case (a) structure's guaranteed 1;
    - d disks instead of 2d, and no per-key head pointers.

    Identifiers are ⌈lg N⌉-bit values issued from an insertion
    counter; as in Theorem 6, expansion (no two keys share more than
    εd neighbors) makes the majority unambiguous, which the tests
    check empirically. Updates rewrite in place; deletions clear the
    key's fields. *)

type config = {
  universe : int;
  capacity : int;
  degree : int;
  sigma_bits : int;
  epsilon : float;
  v_factor : int;
  seed : int;
}

type t

exception Overflow of int

val create : block_words:int -> config -> t

val config : t -> config

val machine : t -> int Pdm_sim.Pdm.t

val levels : t -> int

val size : t -> int

val find : t -> int -> Bytes.t option
(** ≤ levels I/Os; 1 + ɛ on average over stored keys. *)

val mem : t -> int -> bool

val insert : t -> int -> Bytes.t -> unit

val delete : t -> int -> bool
