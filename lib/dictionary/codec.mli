(** Word- and record-level encodings shared by the dictionaries.

    The simulated disks store one machine word (an [int]) per cell;
    block size B is measured in words, as in the paper ("a data item
    is assumed to be sufficiently large to hold a pointer value or a
    key value"). Satellite data enters and leaves the public dictionary
    APIs as [Bytes.t]; internally it is packed into 32-bit words so
    that space accounting stays exact.

    Two layouts are provided:

    - packed bit strings ↔ word arrays ({!words_of_bits},
      {!bytes_of_words}) for the bit-exact fields of Section 4.2;
    - fixed-width records inside a block ({!Slots}) for the bucket
      dictionaries: a record of [width] words occupies [width]
      consecutive cells, the first cell holding the key; an empty slot
      has its first cell equal to [None]. *)

val bits_per_word : int
(** 32: each stored word carries 32 bits of packed payload. *)

val words_for_bits : int -> int
(** ⌈bits / 32⌉. *)

val words_of_bits : Bytes.t -> nbits:int -> int array
(** Pack the first [nbits] bits of the buffer (most significant bit of
    byte 0 first) into 32-bit words. *)

val bytes_of_words : int array -> nbits:int -> Bytes.t
(** Inverse of {!words_of_bits}; the result has ⌈nbits/8⌉ bytes with
    any trailing pad bits cleared. *)

val words_of_bytes : Bytes.t -> int array
(** Pack a whole byte string ([nbits] = 8 × length). *)

val bytes_of_words_len : int array -> len:int -> Bytes.t
(** Unpack exactly [len] bytes. *)

module Slots : sig
  val per_block : block_words:int -> width:int -> int
  (** Records of [width] words that fit in one block (remainder cells
      are wasted, as on a real device). *)

  val read : int option array -> width:int -> int -> int array option
  (** [read block ~width i] is record [i], or [None] for an empty
      slot. Raises if the slot is corrupt (partially filled). *)

  val write : int option array -> width:int -> int -> int array option -> unit
  (** Store or clear record [i] in the in-memory block image. *)

  val count : int option array -> width:int -> int
  (** Occupied slots in the block. *)

  val find_key : int option array -> width:int -> key:int -> int option
  (** Index of the slot whose first word is [key], if any. *)

  val first_free : int option array -> width:int -> int option
end

(** The standard block-integrity envelope for [int] machines: one
    extra cell holding a position-sensitive keyed checksum of the
    payload, so silent corruption — a flipped value, a swapped or
    rotated cell, a damaged checksum — is detected on read and the
    machine fails over to another replica ({!Pdm_sim.Pdm.create}
    [?integrity]). *)
module Checksum : sig
  val overhead : int
  (** 1: a sealed block is [block_size + 1] cells. *)

  val sum : int option array -> int
  (** The keyed checksum of a payload. *)

  val seal : int option array -> int option array
  (** Payload + checksum cell (fresh array). *)

  val check : int option array -> int option array option
  (** [Some payload] when the stored image is intact, else [None]. *)

  val integrity : int Pdm_sim.Pdm.integrity
  (** The envelope, ready to pass to [Pdm.create ?integrity]. *)
end
