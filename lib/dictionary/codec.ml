module Imath = Pdm_util.Imath
module Prng = Pdm_util.Prng

let bits_per_word = 32

let words_for_bits nbits = Imath.cdiv nbits bits_per_word

let get_bit bytes i =
  let byte = i lsr 3 and off = i land 7 in
  if byte >= Bytes.length bytes then false
  else Char.code (Bytes.get bytes byte) land (0x80 lsr off) <> 0

(* pdm-lint: domain local — codec writes target freshly decoded per-call scratch blocks *)
let set_bit bytes i =
  let byte = i lsr 3 and off = i land 7 in
  Bytes.set bytes byte
    (Char.chr (Char.code (Bytes.get bytes byte) lor (0x80 lsr off)))

let words_of_bits bytes ~nbits =
  if nbits < 0 then invalid_arg "Codec.words_of_bits";
  let nwords = words_for_bits nbits in
  Array.init nwords (fun w ->
      let acc = ref 0 in
      for b = 0 to bits_per_word - 1 do
        let i = (w * bits_per_word) + b in
        acc := (!acc lsl 1) lor (if i < nbits && get_bit bytes i then 1 else 0)
      done;
      !acc)

let bytes_of_words words ~nbits =
  if nbits < 0 || words_for_bits nbits > Array.length words then
    invalid_arg "Codec.bytes_of_words";
  let out = Bytes.make (Imath.cdiv nbits 8) '\000' in
  for i = 0 to nbits - 1 do
    let w = i / bits_per_word and b = i mod bits_per_word in
    if words.(w) lsr (bits_per_word - 1 - b) land 1 = 1 then set_bit out i
  done;
  out

let words_of_bytes bytes = words_of_bits bytes ~nbits:(8 * Bytes.length bytes)

let bytes_of_words_len words ~len = bytes_of_words words ~nbits:(8 * len)

module Slots = struct
  let per_block ~block_words ~width =
    if width < 1 then invalid_arg "Codec.Slots.per_block: width";
    block_words / width

  let read block ~width i =
    let base = i * width in
    match block.(base) with
    | None -> None
    | Some _ ->
      Some
        (Array.init width (fun j ->
             match block.(base + j) with
             | Some w -> w
             | None -> invalid_arg "Codec.Slots.read: corrupt slot"))

  (* pdm-lint: domain local — codec writes target freshly decoded per-call scratch blocks *)
  let write block ~width i record =
    let base = i * width in
    (match record with
     | None -> for j = 0 to width - 1 do block.(base + j) <- None done
     | Some words ->
       if Array.length words <> width then
         invalid_arg "Codec.Slots.write: record has wrong width";
       for j = 0 to width - 1 do block.(base + j) <- Some words.(j) done)

  let count block ~width =
    let n = per_block ~block_words:(Array.length block) ~width in
    let c = ref 0 in
    for i = 0 to n - 1 do
      if block.(i * width) <> None then incr c
    done;
    !c

  let find_key block ~width ~key =
    let n = per_block ~block_words:(Array.length block) ~width in
    let rec loop i =
      if i >= n then None
      else
        match block.(i * width) with
        | Some k when k = key -> Some i
        | Some _ | None -> loop (i + 1)
    in
    loop 0

  let first_free block ~width =
    let n = per_block ~block_words:(Array.length block) ~width in
    let rec loop i =
      if i >= n then None
      else if block.(i * width) = None then Some i
      else loop (i + 1)
    in
    loop 0
end

module Checksum = struct
  let overhead = 1

  (* Position-sensitive keyed fold, so swapped, rotated or altered
     cells all change the sum; empty and zero-valued cells are kept
     distinct by the odd/even encoding. Summing a prefix of a wider
     array gives the same value as summing a copy of that prefix, so
     [check] can verify before allocating the payload — this fold and
     [seal] sit on the per-write sealing path of every checksummed
     machine. *)
  let sum_prefix stored n =
    let h = ref 0x5cab5 in
    for i = 0 to n - 1 do
      let enc =
        match stored.(i) with
        | None -> 0
        | Some v -> (2 * Prng.mix64 v) + 1
      in
      h := Prng.hash2 ~seed:!h i enc
    done;
    !h

  let sum payload = sum_prefix payload (Array.length payload)

  (* One allocation, no intermediate singleton (Array.append built —
     and threw away — a [| Some (sum ...) |] per sealed block). *)
  let seal payload =
    let n = Array.length payload in
    let out = Array.make (n + 1) None in
    Array.blit payload 0 out 0 n;
    out.(n) <- Some (sum payload);
    out

  let check stored =
    let n = Array.length stored in
    if n < 1 then None
    else
      match stored.(n - 1) with
      | None -> None
      | Some c ->
        (* verify first: a damaged block costs no allocation *)
        if sum_prefix stored (n - 1) = c then Some (Array.sub stored 0 (n - 1))
        else None

  let integrity : int Pdm_sim.Pdm.integrity =
    { Pdm_sim.Pdm.tag = "keyed-checksum"; overhead; seal; check }
end
