module Pdm = Pdm_sim.Pdm
module Stats = Pdm_sim.Stats
module Striping = Pdm_sim.Striping
module Bipartite = Pdm_expander.Bipartite
module Seeded = Pdm_expander.Seeded
module Extsort = Pdm_extsort.Extsort
module Imath = Pdm_util.Imath

type case = Case_a | Case_b

type config = {
  universe : int;
  capacity : int;
  degree : int;
  sigma_bits : int;
  v_factor : int;
  case : case;
  seed : int;
}

type report = {
  peel_rounds : int;
  construction_ios : int;
  sort_nd_ios : int;
  internal_memory_peak : int;
  field_bits : int;
  space_bits : int;
  disks : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  fields : Field_store.t;
  membership : Basic_dict.t option;  (* Case_a only *)
  id_bits : int;                      (* Case_b only *)
  mutable rep : report;
}

exception Construction_failure of int

let frag_count cfg = 2 * cfg.degree / 3

let id_bits_of cfg = max 1 (Imath.ceil_log2 (max 2 cfg.capacity))

let field_bits_of cfg =
  let m = frag_count cfg in
  match cfg.case with
  | Case_b -> id_bits_of cfg + Imath.cdiv cfg.sigma_bits m
  | Case_a -> Imath.cdiv cfg.sigma_bits m + 4

let validate cfg =
  if cfg.degree < 5 then
    invalid_arg "One_probe_static: degree must be >= 5 for a strict majority";
  if 2 * frag_count cfg <= cfg.degree then
    invalid_arg "One_probe_static: 2 * (2d/3) must exceed d";
  if cfg.v_factor < 1 then invalid_arg "One_probe_static: v_factor >= 1";
  if cfg.sigma_bits < 1 then invalid_arg "One_probe_static: sigma_bits >= 1";
  if cfg.capacity < 1 then invalid_arg "One_probe_static: capacity >= 1";
  if cfg.case = Case_a && cfg.degree > 255 then
    invalid_arg "One_probe_static: head pointer is stored in one byte"

(* --- construction-time external sorting of pair streams ----------- *)

(* The peeling procedure materialises (neighbor, key) and (key,
   neighbor) pair arrays on a scratch machine and sorts them there, so
   that the construction's I/O complexity is measured, not assumed.
   The scratch machine mirrors the main machine's geometry. *)
type scratch = {
  sorter : (int * int) Extsort.t;
  s_machine : (int * int) Pdm.t;
  half : int;  (* superblock index where the ping-pong region starts *)
}

let make_scratch ~disks ~block_words ~pairs =
  let sb = disks * block_words in
  let region = max 1 (Imath.cdiv pairs sb) in
  let s_machine =
    Pdm.create ~disks ~block_size:block_words ~blocks_per_disk:(2 * region) ()
  in
  let view = Striping.create s_machine in
  let memory_items = max (2 * sb) (8 * sb) in
  { sorter = Extsort.create view ~compare ~memory_items;
    s_machine; half = region }

let scratch_sort scratch arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    Extsort.write_region scratch.sorter ~region:0 arr;
    let where =
      Extsort.sort scratch.sorter ~src_region:0 ~scratch_region:scratch.half
        ~items:n
    in
    let region = if where = `Src then 0 else scratch.half in
    Extsort.read_region scratch.sorter ~region ~count:n
  end

let scratch_ios scratch =
  Stats.parallel_ios (Stats.snapshot (Pdm.stats scratch.s_machine))

(* --- assignment by unique-neighbor peeling ------------------------ *)

(* One peeling round: given the remaining keys, return
   (assigned : (key, global field indices in stripe order) list,
    remaining keys). All sorting happens on the scratch machine. *)
let peel_round scratch graph m keys =
  (* (y, x) pairs, sorted by neighbor. *)
  let d = Bipartite.d graph in
  let pairs =
    Array.concat
      (List.map
         (fun x -> Array.init d (fun i -> (Bipartite.neighbor graph x i, x)))
         (Array.to_list keys))
  in
  let by_y = scratch_sort scratch pairs in
  (* Keep y that appear exactly once: unique neighbor fields. *)
  let uniq = ref [] in
  let n = Array.length by_y in
  let i = ref 0 in
  while !i < n do
    let y, x = by_y.(!i) in
    let j = ref (!i + 1) in
    while !j < n && fst by_y.(!j) = y do incr j done;
    if !j = !i + 1 then uniq := (x, y) :: !uniq;
    i := !j
  done;
  (* Group by key; a key with >= m unique fields is assigned its first
     m of them (ascending y = ascending stripe). *)
  let by_x = scratch_sort scratch (Array.of_list !uniq) in
  let assigned = ref [] and remaining = ref [] in
  let n = Array.length by_x in
  let i = ref 0 in
  let seen = Hashtbl.create (Array.length keys) in
  while !i < n do
    let x, _ = by_x.(!i) in
    let j = ref !i in
    while !j < n && fst by_x.(!j) = x do incr j done;
    Hashtbl.add seen x ();
    if !j - !i >= m then begin
      let fields = List.init m (fun k -> snd by_x.(!i + k)) in
      assigned := (x, fields) :: !assigned
    end
    else remaining := x :: !remaining;
    i := !j
  done;
  (* Keys with no unique neighbor at all never reached by_x. *)
  Array.iter
    (fun x -> if not (Hashtbl.mem seen x) then remaining := x :: !remaining)
    keys;
  (List.rev !assigned, Array.of_list (List.rev !remaining))

(* The paper's first construction: per round, one counted scan of the
   remaining records, then in-memory unique-neighbor resolution
   (Θ(|S_r|·d) words of internal memory — the trade against the
   sorting version). *)
let peel_round_direct ~memory scratch graph m keys =
  (* Counted pass over the round's records. *)
  let pass = Array.map (fun x -> (x, 0)) keys in
  Extsort.write_region scratch.sorter ~region:0 pass;
  ignore (Extsort.read_region scratch.sorter ~region:0 ~count:(Array.length pass));
  (* The in-memory unique-neighbor table: ~2 words per edge. *)
  let d = Bipartite.d graph in
  let table_words = 2 * d * Array.length keys in
  Pdm_sim.Internal_memory.alloc memory ~words:table_words;
  let phi = Pdm_expander.Expansion.unique_neighbors graph keys in
  let assigned = ref [] and remaining = ref [] in
  Array.iter
    (fun x ->
      let owned = ref [] in
      for i = d - 1 downto 0 do
        let y = Bipartite.neighbor graph x i in
        match Hashtbl.find_opt phi y with
        | Some x0 when x0 = x -> owned := y :: !owned
        | Some _ | None -> ()
      done;
      if List.length !owned >= m then
        assigned := (x, List.filteri (fun i _ -> i < m) !owned) :: !assigned
      else remaining := x :: !remaining)
    keys;
  Pdm_sim.Internal_memory.free memory ~words:table_words;
  (List.rev !assigned, Array.of_list (List.rev !remaining))

let assign ~construction ~memory scratch graph m keys =
  (match construction with
   | `Sorting ->
     (* The streaming construction holds only the sorter's buffers. *)
     Pdm_sim.Internal_memory.alloc memory
       ~words:(2 * Extsort.superblock_size scratch.sorter * 10);
     Pdm_sim.Internal_memory.free memory
       ~words:(2 * Extsort.superblock_size scratch.sorter * 10)
   | `Direct -> ());
  let round =
    match construction with
    | `Sorting -> peel_round scratch graph m
    | `Direct -> peel_round_direct ~memory scratch graph m
  in
  let rec rounds keys acc depth =
    if Array.length keys = 0 then (acc, depth)
    else begin
      let assigned, remaining = round keys in
      if assigned = [] then raise (Construction_failure (Array.length keys));
      (* The recursion ignores earlier assignments: Γ(S_r+1) does not
         meet the fields already claimed (they were unique to S'_r). *)
      rounds remaining (acc @ assigned) (depth + 1)
    end
  in
  rounds keys [] 0

(* --- building the stores ------------------------------------------ *)

let membership_value_bytes = 1 (* head pointer: stripe index < d <= 255 *)

let build ?(construction = `Sorting) ?(replicas = 1) ?(spares = 0) ?factory
    ~block_words cfg data =
  validate cfg;
  let n = Array.length data in
  if n > cfg.capacity then invalid_arg "One_probe_static.build: too many keys";
  let d = cfg.degree in
  let m = frag_count cfg in
  let field_bits = field_bits_of cfg in
  let v = Imath.round_up_to ~multiple:d (cfg.v_factor * cfg.capacity * d) in
  let graph = Seeded.striped ~seed:cfg.seed ~u:cfg.universe ~v ~d in
  (* Machine geometry. Fields larger than a block spread over
     [groups] disk groups (the paper: disks a multiple of d). *)
  let field_words = Codec.words_for_bits field_bits in
  let groups = Field_store.plan_groups ~block_words ~field_bits in
  let span = d * groups in
  let seg_words = Imath.cdiv field_words groups in
  let fields_per_row = block_words / seg_words in
  let field_blocks = Imath.cdiv (v / d) fields_per_row in
  let disks, mem_cfg =
    match cfg.case with
    | Case_b -> (span, None)
    | Case_a ->
      let mc =
        Basic_dict.plan ~universe:cfg.universe ~capacity:cfg.capacity
          ~block_words ~degree:d ~value_bytes:membership_value_bytes
          ~seed:(cfg.seed + 1) ()
      in
      (span + d, Some mc)
  in
  let blocks_per_disk =
    match mem_cfg with
    | None -> field_blocks
    | Some mc -> max field_blocks (Basic_dict.blocks_per_disk mc)
  in
  let machine =
    Pdm.create ?factory ~replicas ~spares ~disks ~block_size:block_words
      ~blocks_per_disk ()
  in
  let fields =
    Field_store.create ~machine ~disk_offset:0 ~block_offset:0 ~graph
      ~field_bits
  in
  let membership =
    Option.map
      (fun mc ->
        Basic_dict.create ~machine ~disk_offset:span ~block_offset:0 mc)
      mem_cfg
  in
  (* Assignment (peeling with external sorts). *)
  let keys = Array.map fst data in
  let satellite_of = Hashtbl.create n in
  Array.iteri (fun idx (x, s) -> Hashtbl.replace satellite_of x (idx, s)) data;
  if Hashtbl.length satellite_of <> n then
    invalid_arg "One_probe_static.build: duplicate keys";
  let scratch = make_scratch ~disks:d ~block_words ~pairs:(max 1 (n * d)) in
  let memory = Pdm_sim.Internal_memory.unbounded () in
  let assignments, peel_rounds =
    assign ~construction ~memory scratch graph m keys
  in
  (* Encode every key's fields; collect the global array B of (field,
     content) pairs, plus membership inserts for case (a). *)
  let id_bits = id_bits_of cfg in
  let stripe_w = Bipartite.stripe_width graph in
  let b_pairs = ref [] in
  let heads = ref [] in
  List.iter
    (fun (x, field_ids) ->
      let idx, satellite = Hashtbl.find satellite_of x in
      let encoded =
        match cfg.case with
        | Case_b ->
          Field_codec.encode_b ~field_bits ~id_bits ~id:idx ~satellite
            ~sigma_bits:cfg.sigma_bits ~indices:field_ids
        | Case_a ->
          let stripes = List.map (fun y -> y / stripe_w) field_ids in
          (match stripes with
           | head :: _ -> heads := (x, head) :: !heads
           | [] ->
             invalid_arg "One_probe_static: key assigned zero fields");
          let enc =
            Field_codec.encode_a ~field_bits ~indices:stripes ~satellite
              ~sigma_bits:cfg.sigma_bits
          in
          (* Map stripe indices back to global field ids. *)
          List.map2 (fun y (_, bytes) -> (y, bytes)) field_ids enc
      in
      b_pairs := encoded @ !b_pairs)
    assignments;
  (* Sort B by field index — "the most expensive operation" — on the
     scratch machine, then fill A. *)
  let _counted_sort_of_b =
    scratch_sort scratch
      (Array.of_list (List.map (fun (y, _) -> (y, 0)) !b_pairs))
  in
  let ordered =
    List.sort (fun (a, _) (b, _) -> compare a b) !b_pairs
  in
  (* bulk_write rejects duplicate field indices, enforcing the paper's
     claim that later peeling rounds never touch earlier assignments. *)
  Field_store.bulk_write fields ordered;
  (* Membership entries (case a). *)
  (match membership with
   | None -> ()
   | Some memb ->
     List.iter
       (fun (x, head) ->
         Basic_dict.insert memb x (Bytes.make 1 (Char.chr head)))
       !heads);
  let construction_ios =
    scratch_ios scratch
    + Stats.parallel_ios (Stats.snapshot (Pdm.stats machine))
  in
  (* Yardstick: one external sort of nd pair records on an identical
     scratch machine. *)
  let sort_nd_ios =
    let yard = make_scratch ~disks:d ~block_words ~pairs:(max 1 (n * d)) in
    let g = Pdm_util.Prng.create (cfg.seed + 7) in
    let arr =
      Array.init (max 1 (n * d)) (fun _ ->
          (Pdm_util.Prng.next g, Pdm_util.Prng.next g))
    in
    ignore (scratch_sort yard arr);
    scratch_ios yard
  in
  let space_bits =
    Field_store.total_bits fields
    + (match membership with
       | None -> 0
       | Some memb ->
         let mc = Basic_dict.config memb in
         Basic_dict.blocks_per_disk mc * mc.Basic_dict.degree * block_words
         * Codec.bits_per_word)
  in
  Stats.reset (Pdm.stats machine);
  { cfg; machine; fields; membership; id_bits;
    rep =
      { peel_rounds; construction_ios; sort_nd_ios;
        internal_memory_peak = Pdm_sim.Internal_memory.peak memory;
        field_bits; space_bits; disks } }

let config t = t.cfg

let machine t = t.machine

let report t = t.rep

let probe_addresses t key =
  Field_store.addresses t.fields key
  @ (match t.membership with
     | None -> []
     | Some memb -> Basic_dict.addresses memb key)

let find_in t key blocks =
  let graph = Field_store.graph t.fields in
  let get i =
    Field_store.field_in t.fields blocks (Bipartite.neighbor graph key i)
  in
  match t.cfg.case with
  | Case_b ->
    Option.map snd
      (Field_codec.decode_b ~field_bits:(Field_store.field_bits t.fields)
         ~id_bits:t.id_bits ~sigma_bits:t.cfg.sigma_bits ~d:t.cfg.degree get)
  | Case_a ->
    (match t.membership with
     | None ->
       (* pdm-lint: allow R3 — unreachable: [build] always constructs
          the membership dictionary for a [Case_a] configuration; only
          [Case_b] stores [None] here. *)
       assert false
     | Some memb ->
       (match Basic_dict.find_in memb key blocks with
        | None -> None
        | Some head_bytes ->
          let head = Char.code (Bytes.get head_bytes 0) in
          Field_codec.decode_a ~field_bits:(Field_store.field_bits t.fields)
            ~head ~sigma_bits:t.cfg.sigma_bits get))

let find t key = find_in t key (Pdm.read t.machine (probe_addresses t key))

let mem t key = find t key <> None
