(** Parallel dictionary instances (Section 4 preamble).

    "We can make any constant number of parallel instances of our
    dictionaries. This allows insertions of a constant number of
    elements in the same number of parallel I/Os as one insertion, and
    does not influence lookup time."

    [c] basic dictionaries live on disjoint disk groups of one
    machine. A batch of up to [c] insertions routes one key to each
    instance and executes as {b one} combined read round plus {b one}
    combined write round. A lookup reads all instances' candidate
    blocks in one round and decodes each; deletion likewise. Space and
    disks grow by the factor [c], exactly as the paper says. *)

type config = {
  instances : int;        (** c ≥ 1 *)
  universe : int;
  capacity : int;         (** total keys across all instances *)
  degree : int;           (** d per instance; disks used = c·d *)
  value_bytes : int;
  block_words : int;
  seed : int;
}

type t

val create : config -> t
(** Builds its own machine with [instances × degree] disks. *)

val machine : t -> int Pdm_sim.Pdm.t

val config : t -> config

val size : t -> int

val find : t -> int -> Bytes.t option
(** One parallel I/O, regardless of [instances]. *)

val mem : t -> int -> bool

val insert_batch : t -> (int * Bytes.t) list -> unit
(** Insert up to [instances] distinct keys in 2 parallel I/Os total
    (1 read round + 1 write round). Keys already present are updated
    in place in whichever instance holds them. Raises
    [Invalid_argument] on oversized or duplicate-key batches. *)

val insert : t -> int -> Bytes.t -> unit
(** [insert_batch] of one. *)

val delete : t -> int -> bool
(** One read round + at most one write round. *)
