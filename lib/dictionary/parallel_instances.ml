module Pdm = Pdm_sim.Pdm

type config = {
  instances : int;
  universe : int;
  capacity : int;
  degree : int;
  value_bytes : int;
  block_words : int;
  seed : int;
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  members : Basic_dict.t array;
}

let create cfg =
  if cfg.instances < 1 then
    invalid_arg "Parallel_instances.create: instances >= 1";
  let per_instance =
    (cfg.capacity / cfg.instances) + cfg.capacity (* slack: routing is
      by batch position, so one instance may take more than its share *)
  in
  let plan i =
    Basic_dict.plan ~universe:cfg.universe ~capacity:per_instance
      ~block_words:cfg.block_words ~degree:cfg.degree
      ~value_bytes:cfg.value_bytes ~seed:(cfg.seed + i) ()
  in
  let plans = Array.init cfg.instances plan in
  let blocks_per_disk =
    Array.fold_left
      (fun acc p -> max acc (Basic_dict.blocks_per_disk p))
      1 plans
  in
  let machine =
    Pdm.create ~disks:(cfg.instances * cfg.degree)
      ~block_size:cfg.block_words ~blocks_per_disk ()
  in
  let members =
    Array.mapi
      (fun i p ->
        Basic_dict.create ~machine ~disk_offset:(i * cfg.degree)
          ~block_offset:0 p)
      plans
  in
  { cfg; machine; members }

let machine t = t.machine
let config t = t.cfg

let size t =
  Array.fold_left (fun acc d -> acc + Basic_dict.size d) 0 t.members

let all_addresses t key =
  List.concat_map
    (fun d -> Basic_dict.addresses d key)
    (Array.to_list t.members)

(* Which instance holds the key, given a combined fetch. *)
let locate t key blocks =
  let rec loop i =
    if i >= Array.length t.members then None
    else
      match Basic_dict.find_in t.members.(i) key blocks with
      | Some v -> Some (i, v)
      | None -> loop (i + 1)
  in
  loop 0

let find t key =
  let blocks = Pdm.read t.machine (all_addresses t key) in
  Option.map snd (locate t key blocks)

let mem t key = find t key <> None

let insert_batch t entries =
  let c = t.cfg.instances in
  if List.length entries > c then
    invalid_arg "Parallel_instances.insert_batch: batch exceeds instances";
  let keys = List.map fst entries in
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    invalid_arg "Parallel_instances.insert_batch: duplicate keys in batch";
  (* One combined read round: batch key j's candidate buckets in
     instance j — each instance contributes blocks on its own disk
     group, so the whole request is a single parallel I/O. *)
  let addrs =
    List.concat
      (List.mapi (fun j (k, _) -> Basic_dict.addresses t.members.(j) k) entries)
  in
  let blocks = Pdm.read t.machine addrs in
  (* One combined write round: each instance modifies one block. *)
  let writes =
    List.mapi
      (fun j (k, v) -> Basic_dict.prepare_insert t.members.(j) k v blocks)
      entries
  in
  if writes <> [] then Pdm.write t.machine writes

let insert t key value =
  (* Single inserts are duplicate-safe: the combined read sees every
     instance, so an existing copy is updated wherever it lives. *)
  let blocks = Pdm.read t.machine (all_addresses t key) in
  match locate t key blocks with
  | Some (i, _) ->
    let w = Basic_dict.prepare_insert t.members.(i) key value blocks in
    Pdm.write t.machine [ w ]
  | None ->
    (* Place into the least-loaded instance (by size). *)
    let best = ref 0 in
    Array.iteri
      (fun i d ->
        if Basic_dict.size d < Basic_dict.size t.members.(!best) then best := i)
      t.members;
    let w = Basic_dict.prepare_insert t.members.(!best) key value blocks in
    Pdm.write t.machine [ w ]

let delete t key =
  let blocks = Pdm.read t.machine (all_addresses t key) in
  match locate t key blocks with
  | None -> false
  | Some (i, _) -> Basic_dict.delete t.members.(i) key
