module Pdm = Pdm_sim.Pdm

let log = Logs.Src.create "pdm_dict.rebuild" ~doc:"global rebuilding events"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  universe : int;
  degree : int;
  value_bytes : int;
  block_words : int;
  initial_capacity : int;
  max_capacity : int;
  transfer_per_op : int;
  seed : int;
}

type migration = {
  shadow : Basic_dict.t;
  mutable cursor : int;          (* next bucket of the active to drain *)
  mutable pending : (int * Bytes.t) list;  (* entries read, not yet moved *)
}

type t = {
  cfg : config;
  machine : int Pdm.t;
  mutable active : Basic_dict.t;
  mutable active_group : int;    (* 0 or 1: which disk group holds it *)
  mutable migration : migration option;
  mutable rebuilds : int;
  mutable seed_counter : int;
}

let plan_for cfg ~capacity ~seed =
  Basic_dict.plan ~universe:cfg.universe ~capacity
    ~block_words:cfg.block_words ~degree:cfg.degree
    ~value_bytes:cfg.value_bytes ~seed ()

let create cfg =
  if cfg.transfer_per_op < 1 then
    invalid_arg "Global_rebuild.create: transfer_per_op >= 1";
  if cfg.initial_capacity < 1 || cfg.max_capacity < cfg.initial_capacity then
    invalid_arg "Global_rebuild.create: capacities";
  let max_plan = plan_for cfg ~capacity:cfg.max_capacity ~seed:cfg.seed in
  let blocks_per_disk = Basic_dict.blocks_per_disk max_plan in
  let machine =
    Pdm.create ~disks:(2 * cfg.degree) ~block_size:cfg.block_words
      ~blocks_per_disk ()
  in
  let first = plan_for cfg ~capacity:cfg.initial_capacity ~seed:cfg.seed in
  let active = Basic_dict.create ~machine ~disk_offset:0 ~block_offset:0 first in
  { cfg; machine; active; active_group = 0; migration = None; rebuilds = 0;
    seed_counter = cfg.seed + 1 }

let machine t = t.machine
let config t = t.cfg

(* Invariant: every live key resides in exactly one of the active
   instance, the in-flight pending list, or the shadow. *)
let size t =
  Basic_dict.size t.active
  + (match t.migration with
     | None -> 0
     | Some m -> Basic_dict.size m.shadow + List.length m.pending)

let capacity t =
  match t.migration with
  | None -> (Basic_dict.config t.active).Basic_dict.capacity
  | Some m -> (Basic_dict.config m.shadow).Basic_dict.capacity

let rebuilds t = t.rebuilds
let rebuilding t = t.migration <> None

let combined_addrs t key =
  let a = Basic_dict.addresses t.active key in
  match t.migration with
  | None -> a
  | Some m -> Basic_dict.addresses m.shadow key @ a

let find t key =
  let blocks = Pdm.read t.machine (combined_addrs t key) in
  match t.migration with
  | None -> Basic_dict.find_in t.active key blocks
  | Some m ->
    (* Fresh data lives in the shadow; fall back to pending entries in
       flight, then the active instance. *)
    (match Basic_dict.find_in m.shadow key blocks with
     | Some v -> Some v
     | None ->
       (match List.assoc_opt key m.pending with
        | Some v -> Some v
        | None -> Basic_dict.find_in t.active key blocks))

let mem t key = find t key <> None

(* Move up to [budget] entries from the active instance to the shadow;
   when the active is drained, complete the hand-over. *)
let migrate_step t =
  match t.migration with
  | None -> ()
  | Some m ->
    let budget = ref t.cfg.transfer_per_op in
    let continue_ = ref true in
    while !budget > 0 && !continue_ do
      match m.pending with
      | (k, v) :: rest ->
        m.pending <- rest;
        (* The exactly-one-residence invariant means k cannot already
           be in the shadow. *)
        Basic_dict.insert m.shadow k v;
        decr budget
      | [] ->
        if m.cursor >= Basic_dict.bucket_count t.active then begin
          (* Drained: the shadow takes over. *)
          Log.debug (fun f ->
              f "hand-over #%d complete: capacity %d, %d keys"
                (t.rebuilds + 1)
                (Basic_dict.config m.shadow).Basic_dict.capacity
                (Basic_dict.size m.shadow));
          Basic_dict.clear t.active;
          t.active <- m.shadow;
          t.active_group <- 1 - t.active_group;
          t.migration <- None;
          t.rebuilds <- t.rebuilds + 1;
          continue_ := false
        end
        else begin
          (* Draining moves the bucket's records out of the active
             instance, preserving the invariant. At most one bucket is
             drained per step, so the per-operation I/O stays O(1). *)
          m.pending <- Basic_dict.drain_bucket t.active m.cursor;
          m.cursor <- m.cursor + 1;
          decr budget
        end
    done

let start_migration t ~next_cap =
  Log.debug (fun f ->
      f "migration started: %d -> %d capacity (size %d)"
        (Basic_dict.config t.active).Basic_dict.capacity next_cap (size t));
  t.seed_counter <- t.seed_counter + 1;
  let plan = plan_for t.cfg ~capacity:next_cap ~seed:t.seed_counter in
  let shadow =
    Basic_dict.create ~machine:t.machine
      ~disk_offset:((1 - t.active_group) * t.cfg.degree)
      ~block_offset:0 plan
  in
  t.migration <- Some { shadow; cursor = 0; pending = [] }

let maybe_start_migration t =
  if t.migration = None then begin
    let cap = (Basic_dict.config t.active).Basic_dict.capacity in
    let n = size t in
    if 2 * n >= cap && cap < t.cfg.max_capacity then
      (* Growing: double before the active instance fills. *)
      start_migration t ~next_cap:(min t.cfg.max_capacity (2 * cap))
    else if
      8 * n < cap && cap > t.cfg.initial_capacity
      (* Shrinking: reclaim space once occupancy falls below 1/8; the
         1/8-vs-1/2 hysteresis keeps grow/shrink cycles from
         thrashing. *)
    then
      start_migration t
        ~next_cap:(max t.cfg.initial_capacity (cap / 2))
  end

let insert t key value =
  if size t >= t.cfg.max_capacity then
    invalid_arg "Global_rebuild.insert: max capacity reached";
  (match t.migration with
   | None -> Basic_dict.insert t.active key value
   | Some m ->
     (* Fresh data goes to the shadow. Remove any other residence of
        the key so exactly one copy remains. *)
     m.pending <- List.remove_assoc key m.pending;
     ignore (Basic_dict.delete t.active key);
     Basic_dict.insert m.shadow key value);
  maybe_start_migration t;
  migrate_step t

let delete t key =
  let hit =
    match t.migration with
    | None -> Basic_dict.delete t.active key
    | Some m ->
      let in_shadow = Basic_dict.delete m.shadow key in
      let in_pending = List.mem_assoc key m.pending in
      if in_pending then m.pending <- List.remove_assoc key m.pending;
      let in_active = Basic_dict.delete t.active key in
      in_shadow || in_pending || in_active
  in
  maybe_start_migration t;
  migrate_step t;
  hit
