module Prng = Pdm_util.Prng

let single_choice ~seed ~v ~items =
  if v < 1 then invalid_arg "Baseline.single_choice: v";
  let loads = Array.make v 0 in
  Array.iter
    (fun x ->
      let b = Prng.hash_to_range ~seed x 0 v in
      loads.(b) <- loads.(b) + 1)
    items;
  loads

let random_d_choice ~rng ~v ~d ~items =
  if v < 1 || d < 1 then invalid_arg "Baseline.random_d_choice";
  let loads = Array.make v 0 in
  Array.iter
    (fun _ ->
      let best = ref (Prng.int rng v) in
      for _ = 2 to d do
        let b = Prng.int rng v in
        if loads.(b) < loads.(!best) then best := b
      done;
      loads.(!best) <- loads.(!best) + 1)
    items;
  loads

let max_load loads = Array.fold_left max 0 loads
