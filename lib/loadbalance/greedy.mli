(** Deterministic d-choice load balancing on an expander (Section 3).

    An unknown set of left vertices arrives on-line; each vertex
    carries [k] items, and every item must be assigned to one of the
    vertex's d neighboring buckets. The greedy strategy places the k
    items one by one, each into a currently least-loaded neighbor
    (ties broken towards the lowest bucket index — "arbitrarily" in
    the paper). Multiple items of one vertex may share a bucket.

    Lemma 3: on a (d, ε, δ)-expander with d(1−ε) > k, the maximum
    load is at most kn/((1−δ)v) + log_{(1−ε)d/k} v. The closed form
    is {!Pdm_expander.Expansion.lemma3_bound}; experiment E2 compares
    it with the measured maximum. *)

type t

type tie_break =
  | First_stripe   (** lowest neighbor index wins (default) *)
  | Last_stripe    (** highest neighbor index wins *)
  | Rotating       (** start the scan at a rotating offset *)
(** Lemma 3 holds for {e any} tie-breaking rule ("breaking ties
    arbitrarily"); the ablation experiment confirms the measured max
    load is insensitive to the choice. *)

val create :
  ?tie:tie_break -> graph:Pdm_expander.Bipartite.t -> k:int -> unit -> t
(** Fresh balancer over the graph's right side as buckets. Requires
    [1 <= k]. *)

val graph : t -> Pdm_expander.Bipartite.t

val k : t -> int

val insert : t -> int -> int array
(** [insert t x] places the k items of left vertex [x] and returns the
    chosen bucket of each item (length k, in placement order). A
    vertex may be inserted more than once; each insertion places k
    fresh items (useful for weighted streams). *)

val insert_all : t -> int array -> unit

val load : t -> int -> int
(** Current load of one bucket. *)

val loads : t -> int array
(** Copy of all bucket loads. *)

val max_load : t -> int

val items : t -> int
(** Total items placed so far. *)

val average_load : t -> float
(** items / v. *)

val buckets_with_load_above : t -> int -> int
(** [buckets_with_load_above t i] = B(i) in Lemma 3's proof: the
    number of buckets holding more than [i] items. *)
