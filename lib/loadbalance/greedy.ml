module Bipartite = Pdm_expander.Bipartite

type tie_break = First_stripe | Last_stripe | Rotating

type t = {
  graph : Bipartite.t;
  k : int;
  tie : tie_break;
  loads : int array;
  mutable items : int;
  mutable rotation : int;
}

let create ?(tie = First_stripe) ~graph ~k () =
  if k < 1 then invalid_arg "Greedy.create: k must be >= 1";
  { graph; k; tie; loads = Array.make (Bipartite.v graph) 0; items = 0;
    rotation = 0 }

let graph t = t.graph

let k t = t.k

let insert t x =
  let nbrs = Bipartite.neighbors t.graph x in
  let d = Array.length nbrs in
  let choose () =
    let order i =
      match t.tie with
      | First_stripe -> i
      | Last_stripe -> d - 1 - i
      | Rotating -> (i + t.rotation) mod d
    in
    let best = ref (order 0) in
    for i = 1 to d - 1 do
      let c = order i in
      if t.loads.(nbrs.(c)) < t.loads.(nbrs.(!best)) then best := c
    done;
    t.rotation <- (t.rotation + 1) mod d;
    nbrs.(!best)
  in
  Array.init t.k (fun _ ->
      let b = choose () in
      t.loads.(b) <- t.loads.(b) + 1;
      t.items <- t.items + 1;
      b)

let insert_all t xs = Array.iter (fun x -> ignore (insert t x)) xs

let load t b = t.loads.(b)

let loads t = Array.copy t.loads

let max_load t = Array.fold_left max 0 t.loads

let items t = t.items

let average_load t = float_of_int t.items /. float_of_int (Array.length t.loads)

let buckets_with_load_above t i =
  Array.fold_left (fun acc l -> if l > i then acc + 1 else acc) 0 t.loads
