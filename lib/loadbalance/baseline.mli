(** Load-balancing baselines for experiment E2.

    The special case the paper cites (Azar–Broder–Karlin–Upfal,
    Berenbrink et al.): random graphs with small degree, where the
    2-choice greedy deviates from the average load by only
    O(log log n) whp. These baselines calibrate how the deterministic
    expander scheme compares with one random choice and with random
    d-choice. *)

val single_choice : seed:int -> v:int -> items:int array -> int array
(** Each item hashed to one uniform bucket; returns the bucket loads.
    Classical maximum ≈ ln v / ln ln v above average when n = v. *)

val random_d_choice :
  rng:Pdm_util.Prng.t -> v:int -> d:int -> items:int array -> int array
(** Each item draws d independent uniform buckets and joins a least
    loaded one (ties to the first drawn); returns the bucket loads. *)

val max_load : int array -> int
