type t = {
  threshold : int;
  mutable misses : (int * int) list;  (* shard -> consecutive misses *)
  mutable suspicions : int;
  mutable heals : int;
}

let create ?(threshold = 2) () =
  if threshold < 1 then
    invalid_arg "Detector.create: threshold must be >= 1";
  { threshold; misses = []; suspicions = 0; heals = 0 }

let threshold t = t.threshold

let misses t shard =
  match List.assoc_opt shard t.misses with Some n -> n | None -> 0

let suspected t shard = misses t shard >= t.threshold

(* pdm-lint: domain local — failure-detector tallies are router-local *)
let record_miss t shard =
  let n = misses t shard + 1 in
  if n = t.threshold then t.suspicions <- t.suspicions + 1;
  t.misses <- (shard, n) :: List.remove_assoc shard t.misses

(* pdm-lint: domain local — failure-detector tallies are router-local *)
let record_reply t shard =
  if suspected t shard then t.heals <- t.heals + 1;
  if misses t shard > 0 then
    t.misses <- List.remove_assoc shard t.misses

let forget t shard = t.misses <- List.remove_assoc shard t.misses

let suspects t =
  List.sort compare
    (List.filter_map
       (fun (shard, n) -> if n >= t.threshold then Some shard else None)
       t.misses)

let suspicions t = t.suspicions
let heals t = t.heals
