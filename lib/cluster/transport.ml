module Prng = Pdm_util.Prng

type partition = {
  shard : int;
  from_op : int;
  to_op : int;
  symmetric : bool;
}

type spec = {
  seed : int;
  drop : float;
  duplicate : float;
  reorder_window : int;
  gray : (int * int) list;
  partitions : partition list;
  max_attempts : int;
  timeout_base : int;
  hedge_after : int;
  drop_tokens : bool;
}

let perfect =
  { seed = 0; drop = 0.0; duplicate = 0.0; reorder_window = 3; gray = [];
    partitions = []; max_attempts = 4; timeout_base = 2; hedge_after = 1;
    drop_tokens = false }

let spec ?(seed = 0) ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder_window = 3)
    ?(gray = []) ?(partitions = []) ?(max_attempts = 4) ?(timeout_base = 2)
    ?(hedge_after = 1) ?(drop_tokens = false) () =
  if drop < 0.0 || drop > 0.2 then
    invalid_arg "Transport.spec: drop must be in [0, 0.2] (retries must win)";
  if duplicate < 0.0 || duplicate > 0.2 then
    invalid_arg "Transport.spec: duplicate must be in [0, 0.2]";
  if reorder_window < 1 || reorder_window > 16 then
    invalid_arg "Transport.spec: reorder_window must be in [1, 16]";
  if max_attempts < 1 || max_attempts > 10 then
    invalid_arg "Transport.spec: max_attempts must be in [1, 10]";
  if timeout_base < 1 then
    invalid_arg "Transport.spec: timeout_base must be >= 1";
  if hedge_after <> -1 && (hedge_after < 1 || hedge_after > max_attempts)
  then
    invalid_arg
      "Transport.spec: hedge_after must be -1 (never) or in [1, max_attempts]";
  List.iter
    (fun (_, k) ->
      if k < 1 then invalid_arg "Transport.spec: gray factor must be >= 1")
    gray;
  List.iter
    (fun p ->
      if p.from_op < 0 || p.to_op < p.from_op then
        invalid_arg "Transport.spec: partition span must be well-formed")
    partitions;
  { seed; drop; duplicate; reorder_window; gray; partitions; max_attempts;
    timeout_base; hedge_after; drop_tokens }

let is_noop s =
  s.drop = 0.0 && s.duplicate = 0.0 && s.gray = [] && s.partitions = []
  && not s.drop_tokens

type pin_kind =
  | Pin_drop
  | Pin_dup
  | Pin_partition of { span : int; symmetric : bool }

type pin = { pin_shard : int; kind : pin_kind }

type stats = {
  attempts : int;
  drops : int;
  duplicates : int;
  timeouts : int;
  ticks : int;
}

type t = {
  spec : spec;
  mutable window_start : int;  (* first op index of the current window *)
  mutable window_len : int;
  mutable msg : int;  (* messages ever attempted (keyed-hash freshness) *)
  mutable pins : (int * pin) list;  (* (op index, pin), unordered *)
  mutable live_partitions : partition list;
      (* spec partitions plus any opened by a Pin_partition *)
  mutable attempts : int;
  mutable drops : int;
  mutable duplicates : int;
  mutable timeouts : int;
  mutable ticks : int;
}

let create spec =
  { spec; window_start = 0; window_len = 1; msg = 0; pins = [];
    live_partitions = spec.partitions; attempts = 0; drops = 0;
    duplicates = 0; timeouts = 0; ticks = 0 }

let spec_of t = t.spec
let drop_tokens t = t.spec.drop_tokens

let stats t =
  { attempts = t.attempts; drops = t.drops; duplicates = t.duplicates;
    timeouts = t.timeouts; ticks = t.ticks }

let inject t ~at pin = t.pins <- (at, pin) :: t.pins

(* Advance the logical clock to the window [start, start + len): a
   single client op is a window of length 1, a scatter-gathered batch
   covers its whole key span so schedule events pinned anywhere inside
   it take effect. Pinned partitions whose op falls in the window open
   here. *)
(* pdm-lint: domain local — window bounds set between rounds by the router domain *)
let set_window t ~start ~len =
  t.window_start <- start;
  t.window_len <- max 1 len;
  List.iter
    (fun (at, pin) ->
      match pin.kind with
      | Pin_partition { span; symmetric } ->
        if at >= start && at < start + t.window_len then
          t.live_partitions <-
            { shard = pin.pin_shard; from_op = at; to_op = at + span;
              symmetric }
            :: t.live_partitions
      | Pin_drop | Pin_dup -> ())
    t.pins

let window_start t = t.window_start

let pinned t ~shard kind_match =
  List.exists
    (fun (at, pin) ->
      pin.pin_shard = shard
      && at >= t.window_start
      && at < t.window_start + t.window_len
      && kind_match pin.kind)
    t.pins

let active_partition t ~shard =
  List.find_opt
    (fun p ->
      p.shard = shard
      && p.from_op < t.window_start + t.window_len
      && t.window_start < p.to_op)
    t.live_partitions

(* Per-attempt timeout ladder: fixed exponential, no jitter — the
   cutoff a waiting router charges itself when the reply never lands. *)
let timeout spec ~attempt = spec.timeout_base lsl min attempt 6

(* Seeded exponential backoff before retry [attempt + 1]: exponential
   base plus a keyed jitter so synchronized retries spread out, yet the
   whole schedule is a pure function of (seed, op, attempt). *)
let backoff spec ~op ~attempt =
  (spec.timeout_base lsl min attempt 6)
  + (Prng.hash3 ~seed:(spec.seed + 0xb4c0ff) op attempt 0
     mod spec.timeout_base)

let resolution = 1 lsl 30

let keyed_hit ~seed ~salt ~prob a b =
  prob > 0.0
  && (let h = Prng.hash3 ~seed:(seed + salt) a b 0 land (resolution - 1) in
      float_of_int h < prob *. float_of_int resolution)

type delivery = {
  request_delivered : bool;
  replied : bool;
  duplicate_lag : int option;
  cost : int;
}

(* One attempt of one logical exchange with [shard]. Pure in the keyed
   hashes of a fresh message id, so the schedule does not depend on
   float evaluation order; every call charges its cost into the
   transport's own tick counter — the independent total the cluster's
   sanitizer check compares its charged rounds against. *)
(* pdm-lint: domain local — in-flight window and retry ledgers belong to the router's domain *)
let attempt t ~shard ~write ~attempt:a =
  let s = t.spec in
  let msg = t.msg in
  t.msg <- msg + 1;
  t.attempts <- t.attempts + 1;
  let lost_request, lost_reply =
    match active_partition t ~shard with
    | Some p when p.symmetric -> (true, true)
    | Some _ -> (false, true)  (* asymmetric: requests pass, replies die *)
    | None ->
      let pin_dropped =
        a = 0 && pinned t ~shard (fun k -> k = Pin_drop)
      in
      ( pin_dropped || keyed_hit ~seed:s.seed ~salt:0 ~prob:s.drop msg shard,
        keyed_hit ~seed:s.seed ~salt:0x4e9d ~prob:s.drop msg shard )
  in
  let latency =
    match List.assoc_opt shard s.gray with
    | Some factor -> factor
    | None -> 0
  in
  let cutoff = timeout s ~attempt:a in
  if lost_request then begin
    t.drops <- t.drops + 1;
    t.timeouts <- t.timeouts + 1;
    t.ticks <- t.ticks + cutoff;
    { request_delivered = false; replied = false; duplicate_lag = None;
      cost = cutoff }
  end
  else begin
    let duplicate_lag =
      if
        write
        && (pinned t ~shard (fun k -> k = Pin_dup)
            || keyed_hit ~seed:s.seed ~salt:0xd0b1e ~prob:s.duplicate msg
                 shard)
      then begin
        t.duplicates <- t.duplicates + 1;
        (* redelivery lands at least two windows later, bounded by the
           reorder window, so an interleaved overwrite can expose a
           missing idempotency check *)
        Some
          (2
           + (Prng.hash3 ~seed:(s.seed + 0x5e0) msg shard 1
              mod max 1 s.reorder_window))
      end
      else None
    in
    let replied = (not lost_reply) && latency <= cutoff in
    let cost = if replied then latency else cutoff in
    if not replied then t.timeouts <- t.timeouts + 1;
    t.ticks <- t.ticks + cost;
    { request_delivered = true; replied; duplicate_lag; cost }
  end

(* pdm-lint: domain local — backoff ledger owned by the router domain *)
let charge_backoff t ~op ~attempt:a =
  let b = backoff t.spec ~op ~attempt:a in
  t.ticks <- t.ticks + b;
  b

let ticks t = t.ticks
