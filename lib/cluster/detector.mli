(** Heartbeat-free, fully deterministic failure suspicion.

    The omniscient [alive] flag of the fail-stop model cannot see gray
    failures or partitions, so routing decisions instead consult this
    counter: every exchange that times out records a miss against the
    shard, every reply clears it. A shard whose {e consecutive} misses
    reach the threshold is {e suspected} — reads prefer unsuspected
    replicas — but suspicion is a routing hint, never a death
    sentence: writes still attempt every replica, and the first reply
    after a partition heals clears the suspicion (a recorded {e heal},
    i.e. recovery from a false suspicion).

    No timers, no randomness: the state is a pure fold over the
    deterministic sequence of exchange outcomes, so the same seed
    replays the same suspicions. *)

type t

val create : ?threshold:int -> unit -> t
(** Default threshold 2: a single dropped message never triggers a
    failover storm, a partitioned shard is suspected within two
    exchanges. Raises [Invalid_argument] if [threshold < 1]. *)

val threshold : t -> int

val misses : t -> int -> int
(** Current consecutive-miss count for the shard (0 if unknown). *)

val suspected : t -> int -> bool

val record_miss : t -> int -> unit

val record_reply : t -> int -> unit
(** Clears the shard's misses; counts a heal if it was suspected. *)

val forget : t -> int -> unit
(** Drop all state for a shard leaving the topology. *)

val suspects : t -> int list
(** Currently suspected shards, ascending. *)

val suspicions : t -> int
(** Times any shard crossed the threshold (ever). *)

val heals : t -> int
(** Times a suspected shard answered again (false-suspicion
    recoveries). *)
